examples/manual_overlays.ml: Isa List Machine Printf Softcache Workloads
