examples/manual_overlays.mli:
