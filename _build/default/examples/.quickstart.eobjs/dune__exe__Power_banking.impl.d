examples/power_banking.ml: List Powermodel Printf Profiler Softcache Workloads
