examples/power_banking.mli:
