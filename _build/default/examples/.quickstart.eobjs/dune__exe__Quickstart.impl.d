examples/quickstart.ml: Format Isa List Machine Printf Softcache String
