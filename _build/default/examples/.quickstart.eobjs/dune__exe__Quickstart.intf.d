examples/quickstart.mli:
