examples/remote_paging.ml: Format Isa List Machine Netmodel Option Printf Softcache Workloads
