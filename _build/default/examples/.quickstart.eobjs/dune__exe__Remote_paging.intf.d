examples/remote_paging.mli:
