examples/sensor_modes.ml: Format Isa List Printf Softcache Workloads
