examples/sensor_modes.mli:
