; 4-tap FIR filter over a synthesised signal, in ERISC assembly.
; Run it through the CLI (natively and under the SoftCache):
;
;   dune exec bin/softcache_cli.exe -- asm examples/fir.s
;
; Registers: r16 sample index, r17 accumulator/checksum, r20-r23 delay
; line, r5-r9 temporaries.

.data
taps:   .word 3, 7, 7, 3          ; symmetric low-pass, sum 20
nsamp:  .word 4096

.text
.entry main

; synthesise the next input sample from the index in r1 -> r2
.func next_sample
next_sample:
    andi r5, r1, 255
    slli r2, r5, 3                ; ramp
    andi r6, r1, 64
    beq  r6, zero, ns_done
    sub  r2, zero, r2             ; flip phase every 64 samples
ns_done:
    ret
.endfunc

; one FIR step: input in r1, result -> r2; delay line r20-r23
.func fir_step
fir_step:
    la   r9, taps
    ld   r5, 0(r9)
    mul  r2, r1, r5
    ld   r5, 4(r9)
    mul  r6, r20, r5
    add  r2, r2, r6
    ld   r5, 8(r9)
    mul  r6, r21, r5
    add  r2, r2, r6
    ld   r5, 12(r9)
    mul  r6, r22, r5
    add  r2, r2, r6
    srai r2, r2, 5                ; normalise by ~sum(taps)
    ; shift the delay line
    mov  r22, r21
    mov  r21, r20
    mov  r20, r1
    ret
.endfunc

.func main
main:
    li   r16, 0
    li   r17, 0
    li   r20, 0
    li   r21, 0
    li   r22, 0
    la   r9, nsamp
    ld   r18, 0(r9)
loop:
    mov  r1, r16
    ; save ra around the nested calls
    addi sp, sp, -8
    st   ra, 4(sp)
    jal  next_sample
    mov  r1, r2
    jal  fir_step
    ld   ra, 4(sp)
    addi sp, sp, 8
    ; checksum = checksum * 31 + y
    li   r5, 31
    mul  r17, r17, r5
    add  r17, r17, r2
    addi r16, r16, 1
    bne  r16, r18, loop
    out  r17
    out  r16
    halt
.endfunc
