(* Section 4, first discussion point: "Manual vs. automatic management.
   Manual management of the memory hierarchy, like assembly language
   programming, offers the highest performance but the most difficult
   programming model."

   This example plays the manual programmer: it knows the sensor
   application's mode schedule, so before the run it preloads and pins
   exactly the code each phase needs — an overlay scheme expressed
   through the SoftCache's pin/preload API. The automatic configuration
   gets the same memory and no hints.

     dune exec examples/manual_overlays.exe *)

let () =
  let img = Workloads.Sensor.image () in
  let native = Softcache.Runner.native img in
  let budget = 2 * 1024 in

  (* procedure chunking on both sides: overlay units = procedures,
     which is what a manual overlay scheme would use *)
  let chunking = Softcache.Config.Procedure in

  (* automatic: let the cache discover the working set by missing *)
  let auto_cfg = Softcache.Config.make ~tcache_bytes:budget ~chunking () in
  let auto, auto_ctrl = Softcache.Runner.cached auto_cfg img in
  assert (auto.outputs = native.outputs);

  (* manual: preload every mode up front and pin the two
     performance-critical ones (daytime / nighttime), exactly the
     Figure 2 playbook *)
  let man_ctrl =
    Softcache.Controller.create
      (Softcache.Config.make ~tcache_bytes:budget ~chunking ())
      img
  in
  (* the overlay schedule covers main too *)
  (match Isa.Image.find_symbol img "main" with
  | Some s ->
    Softcache.Controller.preload man_ctrl ~lo:s.sym_addr
      ~hi:(s.sym_addr + s.sym_size)
  | None -> ());
  List.iter
    (fun name ->
      match Isa.Image.find_symbol img name with
      | Some s ->
        Softcache.Controller.preload man_ctrl ~lo:s.sym_addr
          ~hi:(s.sym_addr + s.sym_size)
      | None -> ())
    Workloads.Sensor.mode_symbols;
  List.iter
    (fun name ->
      match Isa.Image.find_symbol img name with
      | Some s -> Softcache.Controller.pin man_ctrl s.sym_addr
      | None -> ())
    [ "daytime"; "nighttime" ];
  let preloads = man_ctrl.stats.translations in
  let outcome = Softcache.Controller.run man_ctrl in
  assert (outcome = Machine.Cpu.Halted);
  assert (Machine.Cpu.outputs man_ctrl.cpu = native.outputs);

  Printf.printf "sensor_modes in a %d B tcache (native = 1.000):\n\n" budget;
  Printf.printf
    "  automatic: slowdown %.4f, %d translations (all demand misses), %d \
     evictions\n"
    (Softcache.Runner.slowdown ~native ~cached:auto)
    auto_ctrl.stats.translations auto_ctrl.stats.evicted_blocks;
  Printf.printf
    "  manual:    slowdown %.4f, %d translations, %d preloaded up front -> \
     %d demand misses while running, %d evictions\n"
    (float_of_int man_ctrl.cpu.cycles /. float_of_int native.cycles)
    man_ctrl.stats.translations preloads
    (man_ctrl.stats.translations - preloads)
    man_ctrl.stats.evicted_blocks;
  Printf.printf
    "\nThe manual overlay schedule removes the demand misses from the\n\
     running phases (they happen before the run instead), at the cost of\n\
     the programmer knowing the schedule — the paper's point that manual\n\
     management buys determinism, and automatic management buys\n\
     programmability, on the same machinery.\n"
