(* Section 4's novel capability: "we could dynamically deduce the
   working set and shut down unneeded memory banks to reduce power
   consumption." The fully associative software cache can compact the
   working set into the fewest banks; a conventional cache keeps every
   bank powered.

     dune exec examples/power_banking.exe *)

let () =
  Printf.printf
    "StrongARM component power (Montanaro et al.): I-cache %.0f%%, D-cache \
     %.0f%%, write buffer %.0f%% -> %.0f%% of chip power in the caches\n\n"
    (100. *. Powermodel.Strongarm.icache_fraction)
    (100. *. Powermodel.Strongarm.dcache_fraction)
    (100. *. Powermodel.Strongarm.write_buffer_fraction)
    (100. *. Powermodel.Strongarm.cache_total_fraction);

  (* 32 KB of on-chip SRAM in 4 KB banks *)
  let banks = Powermodel.Banks.make ~bank_bytes:4096 ~banks:8 () in
  Printf.printf "on-chip memory: %d B in %d banks of %d B\n\n"
    (Powermodel.Banks.total_bytes banks)
    8 4096;

  Printf.printf "%-14s %10s %12s %14s %12s\n" "workload" "hot code"
    "active banks" "memory power" "chip saving";
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let img = e.build () in
      let prof, _ = Profiler.profile img in
      (* the deduced working set: hot code plus its emitted overhead *)
      let ws = Profiler.hot_bytes prof * 5 / 4 in
      Printf.printf "%-14s %9dB %12d %11.0f%% %11.1f%%\n" e.name ws
        (Powermodel.Banks.active_banks banks ~working_set:ws)
        (100. *. Powermodel.Banks.memory_power_fraction banks ~working_set:ws)
        (100. *. Powermodel.Banks.chip_saving banks ~working_set:ws))
    Workloads.Registry.all;

  (* tag-check energy: hardware pays a tag read per access; the
     software cache pays instructions instead *)
  Printf.printf "\ntag-check energy (direct-mapped 16 B blocks vs softcache):\n";
  let img = Workloads.Compress.image () in
  let native = Softcache.Runner.native img in
  let cached, ctrl =
    Softcache.Runner.cached (Softcache.Config.sparc_prototype ()) img
  in
  let overhead_instrs = cached.retired - native.retired in
  List.iter
    (fun size ->
      let t = Powermodel.Tag_energy.of_cache ~size_bytes:size ~block_bytes:16 ~assoc:1 in
      Printf.printf
        "  %3d KB cache: %+.1f%% memory energy saved by software caching\n"
        (size / 1024)
        (100.
        *. Powermodel.Tag_energy.sw_saving t ~accesses:native.retired
             ~overhead_instrs))
    [ 8 * 1024; 32 * 1024; 128 * 1024 ];
  ignore ctrl
