(* Quickstart: build a small ERISC program with the builder DSL, run it
   natively, then run it under the SoftCache and compare.

     dune exec examples/quickstart.exe *)

let reg = Isa.Reg.r

(* A program with a loop and a procedure call: sum of squares 1..n. *)
let program n =
  let b = Isa.Builder.create "sum_of_squares" in
  let square = Isa.Builder.new_label b in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  Isa.Builder.func b "square" square (fun () ->
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 2, reg 1, reg 1));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.li b (reg 16) n;
      Isa.Builder.li b (reg 17) 0;
      let loop = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 16, Isa.Reg.zero));
      Isa.Builder.jal b square;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 17, reg 17, reg 2));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 16, reg 16, -1));
      Isa.Builder.br b Ne (reg 16) Isa.Reg.zero loop;
      Isa.Builder.ins b (Isa.Instr.Out (reg 17));
      Isa.Builder.ins b Isa.Instr.Halt);
  Isa.Builder.build b

let () =
  let img = program 1000 in
  Format.printf "program: %a@.@." Isa.Image.pp_summary img;

  (* native execution: the paper's "ideal" baseline *)
  let native = Softcache.Runner.native img in
  Printf.printf "native:    output=%s, %d instructions, %d cycles\n"
    (String.concat "," (List.map string_of_int native.outputs))
    native.retired native.cycles;

  (* the same image under the software instruction cache *)
  let cfg = Softcache.Config.sparc_prototype ~tcache_bytes:2048 () in
  let cached, ctrl = Softcache.Runner.cached cfg img in
  Printf.printf "softcache: output=%s, %d instructions, %d cycles\n"
    (String.concat "," (List.map string_of_int cached.outputs))
    cached.retired cached.cycles;
  Printf.printf "relative execution time: %.3f\n"
    (Softcache.Runner.slowdown ~native ~cached);
  Format.printf "cache behaviour: %a@." Softcache.Stats.pp ctrl.stats;

  (* the 100%%-hit-rate guarantee: once the loop's blocks are in the
     tcache, re-running translates nothing new *)
  let more, ctrl2 = Softcache.Runner.cached cfg (program 100_000) in
  Printf.printf
    "\n100x longer run: %d translations (same working set -> same misses)\n"
    ctrl2.stats.translations;
  assert (ctrl2.stats.translations = ctrl.stats.translations);
  assert (more.outcome = Machine.Cpu.Halted)
