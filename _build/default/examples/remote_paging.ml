(* The networked-embedded-device scenario (Figure 1): a cheap client
   (CC) executes out of a small translation cache while a server (MC)
   holds the program image and ships rewritten chunks over 10 Mbps
   Ethernet — the ARM/Skiff prototype. Also demonstrates server-pushed
   code updates via invalidation.

     dune exec examples/remote_paging.exe *)

let () =
  let img = Workloads.Adpcm.encode_image () in
  Format.printf "%a@.@." Isa.Image.pp_summary img;
  let native = Softcache.Runner.native img in

  (* the ARM prototype: procedure chunking over Ethernet *)
  Printf.printf "CC memory sweep (procedure chunks, 10 Mbps MC link):\n";
  List.iter
    (fun bytes ->
      let net = Netmodel.ethernet_10mbps () in
      let cfg =
        Softcache.Config.make ~tcache_bytes:bytes
          ~chunking:Softcache.Config.Procedure ~net ()
      in
      let cached, ctrl = Softcache.Runner.cached cfg img in
      assert (cached.outputs = native.outputs);
      Printf.printf
        "  %5d B: %5d chunk downloads, %7d B over the wire (%d B protocol \
         overhead), slowdown %.2f\n"
        bytes ctrl.stats.translations
        (Netmodel.total_bytes net)
        (Netmodel.messages net * Netmodel.overhead_bytes_per_message net)
        (Softcache.Runner.slowdown ~native ~cached))
    [ 800; 900; 1024; 4096 ];

  (* server-side code update: the MC pushes a new version of a
     procedure; the CC invalidates its cached copy and transparently
     refetches on next use *)
  Printf.printf "\nserver-pushed code update while running:\n";
  let ctrl =
    Softcache.Controller.create
      (Softcache.Config.make ~tcache_bytes:4096
         ~chunking:Softcache.Config.Procedure
         ~net:(Netmodel.ethernet_10mbps ()) ())
      img
  in
  let kernel = Option.get (Isa.Image.find_symbol img "adpcm_coder") in
  let rec run_slices n =
    match Softcache.Controller.run ~fuel:200_000 ctrl with
    | Machine.Cpu.Halted -> n
    | Machine.Cpu.Out_of_fuel ->
      (* the server announces a new kernel image for this range *)
      Softcache.Controller.invalidate ctrl ~lo:kernel.sym_addr
        ~hi:(kernel.sym_addr + kernel.sym_size);
      run_slices (n + 1)
  in
  let updates = run_slices 0 in
  Printf.printf
    "  applied %d invalidations mid-run; outputs still correct: %b\n" updates
    (Machine.Cpu.outputs ctrl.cpu = native.outputs);
  Printf.printf "  total refetches: %d translations\n"
    ctrl.stats.translations
