(* The paper's Figure 2 scenario: a sensor node whose code has
   initialization / calibration / daytime / nighttime modules, only one
   active at a time. Because the software cache is fully associative,
   local memory sized to the largest single mode gives zero conflict
   misses within a mode — paging happens only at the infrequent mode
   transitions.

     dune exec examples/sensor_modes.exe *)

let () =
  let img = Workloads.Sensor.image () in
  Format.printf "%a@." Isa.Image.pp_summary img;
  List.iter
    (fun n ->
      match Isa.Image.find_symbol img n with
      | Some s -> Printf.printf "  %-12s %5d B\n" n s.sym_size
      | None -> ())
    Workloads.Sensor.mode_symbols;
  let largest = Workloads.Sensor.largest_mode_bytes img in
  Printf.printf "largest mode: %d B -> \"minimum memory required\"\n\n" largest;

  let native = Softcache.Runner.native img in

  (* size the tcache to the largest mode plus rewriting overhead room *)
  let fits = (largest * 3 / 2) + 256 in
  let run label bytes =
    let cfg = Softcache.Config.make ~tcache_bytes:bytes () in
    let cached, ctrl = Softcache.Runner.cached cfg img in
    assert (cached.outputs = native.outputs);
    Printf.printf
      "%-26s %6d B: %4d translations, %4d evictions, slowdown %.3f\n" label
      bytes ctrl.stats.translations ctrl.stats.evicted_blocks
      (Softcache.Runner.slowdown ~native ~cached)
  in
  run "whole program fits" (4 * 1024);
  run "sized to largest mode" fits;
  (* just the mode, with no room for rewriting overhead: thrashes *)
  run "mode, no headroom (pages)" (largest + 100);
  print_newline ();

  (* within a mode there are no misses at all once it is resident:
     translations do not grow with the number of samples processed *)
  let translations samples =
    let img = Workloads.Sensor.image ~samples_per_mode:samples () in
    let cfg = Softcache.Config.make ~tcache_bytes:fits () in
    let _, ctrl = Softcache.Runner.cached cfg img in
    ctrl.stats.translations
  in
  let t1 = translations 500 and t2 = translations 5000 in
  Printf.printf
    "translations at 500 samples/mode: %d, at 5000: %d (identical -> 100%%
   hit rate inside a mode; only mode transitions page)\n"
    t1 t2;
  assert (t1 = t2)
