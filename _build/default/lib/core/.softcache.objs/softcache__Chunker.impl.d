lib/core/chunker.ml: Array Config Format Isa List
