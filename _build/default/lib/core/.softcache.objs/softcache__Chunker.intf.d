lib/core/chunker.mli: Config Format Isa
