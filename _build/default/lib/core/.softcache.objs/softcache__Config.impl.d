lib/core/config.ml: Format Netmodel
