lib/core/config.mli: Format Netmodel
