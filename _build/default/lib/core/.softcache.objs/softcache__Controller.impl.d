lib/core/controller.ml: Array Bytes Chunker Config Hashtbl Isa List Logs Machine Netmodel Printf Rewriter Stats String Stub Sys Tcache
