lib/core/controller.mli: Config Hashtbl Isa Machine Stats Stub Tcache
