lib/core/debug.ml: Buffer Config Controller Format Isa List Machine Printf Stats Tcache
