lib/core/debug.mli: Controller
