lib/core/rewriter.ml: Array Chunker Format Isa Stub
