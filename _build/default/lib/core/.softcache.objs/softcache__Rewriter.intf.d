lib/core/rewriter.mli: Chunker Stub
