lib/core/runner.ml: Controller Machine
