lib/core/runner.mli: Config Controller Isa Machine
