lib/core/stub.ml: Format Isa
