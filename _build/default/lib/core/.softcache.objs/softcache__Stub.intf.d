lib/core/stub.mli: Format Isa
