lib/core/tcache.ml: Format Hashtbl List
