lib/core/tcache.mli: Format
