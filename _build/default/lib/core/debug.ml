let symbol_of (t : Controller.t) vaddr =
  match Isa.Image.symbol_at t.image vaddr with
  | Some s when s.sym_addr = vaddr -> s.sym_name
  | Some s -> Printf.sprintf "%s+0x%x" s.sym_name (vaddr - s.sym_addr)
  | None -> "?"

let dump_blocks (t : Controller.t) =
  let blocks =
    List.sort
      (fun (a : Tcache.block) b -> compare a.paddr b.paddr)
      (Tcache.blocks t.tc)
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (b : Tcache.block) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  #%-5d v=0x%06x (%-20s) @0x%06x  %3d->%3d words%s  in:%d\n" b.id
           b.vaddr (symbol_of t b.vaddr) b.paddr b.orig_words b.words
           (if Tcache.is_pinned t.tc b.id then " [pinned]" else "")
           (List.length b.incoming)))
    blocks;
  Buffer.contents buf

let disasm_block (t : Controller.t) vaddr =
  match Tcache.lookup t.tc vaddr with
  | None -> None
  | Some b ->
    Some
      (Isa.Disasm.range
         ~read:(Machine.Memory.read32 t.cpu.mem)
         ~lo:b.paddr
         ~hi:(b.paddr + (4 * b.words)))

let summary (t : Controller.t) =
  Format.asprintf
    "%a@.  resident: %d blocks, %d B occupied, %d map entries, %d stubs \
     (%d B metadata)@.  stats: %a"
    Config.pp t.cfg
    (Tcache.resident_blocks t.tc)
    (Tcache.occupied_bytes t.tc)
    (Tcache.map_entries t.tc)
    t.nstubs
    (Controller.metadata_bytes t)
    Stats.pp t.stats
