(** Inspection helpers for the translation cache.

    These are read-only views over controller state, meant for the CLI,
    for tests and for understanding what the rewriter produced — the
    software-cache equivalent of dumping a JIT's code cache. *)

val dump_blocks : Controller.t -> string
(** One line per resident block: id, source vaddr (with symbol, when
    the image has one), placement, sizes, pin state, incoming-pointer
    count. Sorted by tcache address. *)

val disasm_block : Controller.t -> int -> string option
(** Disassemble the translated code of the chunk at a virtual address,
    if resident — rewritten branches, traps, pads and islands included. *)

val summary : Controller.t -> string
(** Occupancy, map entries, stub counts and statistics in one blob. *)
