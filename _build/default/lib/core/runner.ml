type result = {
  outcome : Machine.Cpu.outcome;
  outputs : int list;
  cycles : int;
  retired : int;
}

let of_cpu outcome (cpu : Machine.Cpu.t) =
  {
    outcome;
    outputs = Machine.Cpu.outputs cpu;
    cycles = cpu.cycles;
    retired = cpu.retired;
  }

let native ?cost ?fuel img =
  let cpu = Machine.Cpu.of_image ?cost img in
  let outcome = Machine.Cpu.run ?fuel cpu in
  of_cpu outcome cpu

let cached ?cost ?fuel cfg img =
  let ctrl = Controller.create ?cost cfg img in
  let outcome = Controller.run ?fuel ctrl in
  (of_cpu outcome ctrl.cpu, ctrl)

let slowdown ~native ~cached =
  if native.cycles = 0 then nan
  else float_of_int cached.cycles /. float_of_int native.cycles
