(** Convenience drivers used by tests, examples and benches. *)

type result = {
  outcome : Machine.Cpu.outcome;
  outputs : int list;  (** the program's observable output *)
  cycles : int;
  retired : int;
}

val native : ?cost:Machine.Cost.t -> ?fuel:int -> Isa.Image.t -> result
(** Run the image directly, with no caching — the paper's "ideal"
    baseline. *)

val cached :
  ?cost:Machine.Cost.t ->
  ?fuel:int ->
  Config.t ->
  Isa.Image.t ->
  result * Controller.t
(** Run the image under the SoftCache; also returns the controller for
    statistics inspection. *)

val slowdown : native:result -> cached:result -> float
(** Relative execution time, cached cycles / native cycles — the Fig. 5
    metric. *)
