lib/dcache/assoc.ml: Array
