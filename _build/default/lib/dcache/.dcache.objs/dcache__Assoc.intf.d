lib/dcache/assoc.mli:
