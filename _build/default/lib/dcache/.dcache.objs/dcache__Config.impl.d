lib/dcache/config.ml: Format Netmodel
