lib/dcache/config.mli: Format Netmodel
