lib/dcache/fullsystem.ml: Config Machine Sim Softcache
