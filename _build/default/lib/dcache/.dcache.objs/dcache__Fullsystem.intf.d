lib/dcache/fullsystem.mli: Config Isa Machine Sim Softcache
