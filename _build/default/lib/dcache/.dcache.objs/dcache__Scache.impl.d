lib/dcache/scache.ml:
