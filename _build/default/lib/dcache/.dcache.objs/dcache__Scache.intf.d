lib/dcache/scache.mli:
