lib/dcache/sim.ml: Assoc Bytes Config Format Hashtbl Isa Machine Netmodel Scache
