lib/dcache/sim.mli: Config Format Isa Machine
