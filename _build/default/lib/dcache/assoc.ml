type t = {
  tags : int array; (* sorted; only [0, n) live *)
  stamps : int array; (* recency, parallel to tags *)
  mutable n : int;
  mutable clock : int;
}

type outcome = Fast_hit | Slow_hit of int | Miss

let create ~blocks =
  if blocks <= 0 then invalid_arg "Dcache.Assoc.create";
  { tags = Array.make blocks 0; stamps = Array.make blocks 0; n = 0; clock = 0 }

let capacity t = Array.length t.tags
let occupancy t = t.n

(* binary search over the live prefix; returns (found, index) where
   index is the match or the insertion point, plus the probe count *)
let search t tag =
  let lo = ref 0 and hi = ref t.n and probes = ref 0 in
  let found = ref false in
  while (not !found) && !lo < !hi do
    incr probes;
    let mid = (!lo + !hi) / 2 in
    let v = t.tags.(mid) in
    if v = tag then begin
      lo := mid;
      found := true
    end
    else if v < tag then lo := mid + 1
    else hi := mid
  done;
  (!found, !lo, !probes)

let touch t i =
  t.clock <- t.clock + 1;
  t.stamps.(i) <- t.clock

let lookup t ~pred ~tag =
  if t.n > 0 && pred >= 0 && pred < t.n && t.tags.(pred) = tag then begin
    touch t pred;
    (Fast_hit, pred)
  end
  else
    let found, idx, probes = search t tag in
    if found then begin
      touch t idx;
      (Slow_hit probes, idx)
    end
    else (Miss, idx)

let probe2 t ~pred ~tag =
  let i = pred + 1 in
  t.n > 0 && i >= 0 && i < t.n && t.tags.(i) = tag

let mem t ~tag =
  let found, _, _ = search t tag in
  found

let insert t ~tag =
  let evicted =
    if t.n = capacity t then begin
      (* evict the least recently used *)
      let victim = ref 0 in
      for i = 1 to t.n - 1 do
        if t.stamps.(i) < t.stamps.(!victim) then victim := i
      done;
      let etag = t.tags.(!victim) in
      Array.blit t.tags (!victim + 1) t.tags !victim (t.n - !victim - 1);
      Array.blit t.stamps (!victim + 1) t.stamps !victim (t.n - !victim - 1);
      t.n <- t.n - 1;
      Some etag
    end
    else None
  in
  let _, idx, _ = search t tag in
  Array.blit t.tags idx t.tags (idx + 1) (t.n - idx);
  Array.blit t.stamps idx t.stamps (idx + 1) (t.n - idx);
  t.tags.(idx) <- tag;
  t.n <- t.n + 1;
  touch t idx;
  (idx, evicted)
