(** The fully associative block store of the software data cache.

    "The data cache is fully associative using fixed-size blocks with
    tags. The blocks and corresponding tags are kept in sorted order"
    (§3.1). Lookup first probes a predicted index; a mismatch falls
    back to binary search over the sorted tag array (a "slow hit");
    absence is a miss. Replacement evicts the least recently used
    block, and the array is re-sorted on insert — predictions are
    allowed to go stale, exactly as the paper allows. *)

type t

type outcome =
  | Fast_hit  (** predicted index was right *)
  | Slow_hit of int  (** found by binary search; carries probe count *)
  | Miss

val create : blocks:int -> t
(** Capacity in blocks. @raise Invalid_argument if not positive. *)

val lookup : t -> pred:int -> tag:int -> outcome * int
(** [lookup t ~pred ~tag] probes the predicted index then searches.
    Returns the outcome and the index where the tag now resides (for
    hits) or would be inserted (for misses). Updates recency. *)

val probe2 : t -> pred:int -> tag:int -> bool
(** Second-chance probe: true if the tag sits at [pred + 1]. *)

val insert : t -> tag:int -> int * int option
(** Insert a missing tag, evicting the LRU block if full. Returns the
    new index of the tag and the evicted tag, if any. Keeps the array
    sorted. *)

val occupancy : t -> int
val capacity : t -> int
val mem : t -> tag:int -> bool
