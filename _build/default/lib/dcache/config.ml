type prediction = Same_index | Second_chance

type t = {
  dcache_bytes : int;
  block_bytes : int;
  scache_frames : int;
  prediction : prediction;
  specialise_constants : bool;
  const_cycles : int;
  predicted_hit_cycles : int;
  search_step_cycles : int;
  miss_fixed_cycles : int;
  scache_check_cycles : int;
  spill_refill_cycles : int;
  specialise_threshold : int;
  net : Netmodel.t;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let make ?(dcache_bytes = 8 * 1024) ?(block_bytes = 32) ?(scache_frames = 16)
    ?(prediction = Same_index) ?(specialise_constants = true)
    ?(const_cycles = 2) ?(predicted_hit_cycles = 9) ?(search_step_cycles = 6)
    ?(miss_fixed_cycles = 40) ?(scache_check_cycles = 3)
    ?(spill_refill_cycles = 64) ?(specialise_threshold = 32) ?net () =
  if not (is_pow2 block_bytes) then
    invalid_arg "Dcache.Config.make: block size must be a power of two";
  if dcache_bytes < block_bytes then
    invalid_arg "Dcache.Config.make: dcache smaller than one block";
  if scache_frames < 2 then
    invalid_arg
      "Dcache.Config.make: the stack cache must hold at least two frames";
  let net = match net with Some n -> n | None -> Netmodel.local () in
  {
    dcache_bytes;
    block_bytes;
    scache_frames;
    prediction;
    specialise_constants;
    const_cycles;
    predicted_hit_cycles;
    search_step_cycles;
    miss_fixed_cycles;
    scache_check_cycles;
    spill_refill_cycles;
    specialise_threshold;
    net;
  }

let pp ppf t =
  Format.fprintf ppf "dcache %dB/%dB blocks, scache %d frames, %s%s"
    t.dcache_bytes t.block_bytes t.scache_frames
    (match t.prediction with
    | Same_index -> "same-index"
    | Second_chance -> "second-chance")
    (if t.specialise_constants then ", const-specialising" else "")
