(** Configuration of the Section 3 software data cache.

    Cycle prices follow the instruction sequences of Figure 10:
    - a specialised (rewritten) constant-address access is a single
      load;
    - a predicted hit runs the 9-instruction check-and-index sequence;
    - a slow hit adds a binary search of the sorted dcache;
    - a miss adds the server round trip and block transfer;
    - stack-cache presence checks run at procedure entry/exit. *)

type prediction =
  | Same_index  (** predict the previously used block index *)
  | Second_chance
      (** on a failed prediction, probe index+1 before searching *)

type t = {
  dcache_bytes : int;
  block_bytes : int;  (** power of two *)
  scache_frames : int;  (** frames the circular stack buffer holds *)
  prediction : prediction;
  specialise_constants : bool;
      (** rewrite accesses that have shown a constant address into
          direct loads (deoptimised on the first conflicting access) *)
  const_cycles : int;  (** specialised access (1 load) *)
  predicted_hit_cycles : int;  (** Fig. 10 sequence, ~9 instructions *)
  search_step_cycles : int;  (** per binary-search probe of a slow hit *)
  miss_fixed_cycles : int;
  scache_check_cycles : int;  (** presence check at entry/exit *)
  spill_refill_cycles : int;  (** per frame moved to/from the server *)
  specialise_threshold : int;
      (** accesses with a stable address before a site is rewritten *)
  net : Netmodel.t;
}

val make :
  ?dcache_bytes:int ->
  ?block_bytes:int ->
  ?scache_frames:int ->
  ?prediction:prediction ->
  ?specialise_constants:bool ->
  ?const_cycles:int ->
  ?predicted_hit_cycles:int ->
  ?search_step_cycles:int ->
  ?miss_fixed_cycles:int ->
  ?scache_check_cycles:int ->
  ?spill_refill_cycles:int ->
  ?specialise_threshold:int ->
  ?net:Netmodel.t ->
  unit ->
  t
(** Defaults: 8 KiB dcache of 32-byte blocks, 16-frame scache,
    [Same_index] prediction, constant specialisation on (threshold 32),
    costs 2 / 9 / 6 / 40 / 3 / 64 cycles, local interconnect. *)

val pp : Format.formatter -> t -> unit
