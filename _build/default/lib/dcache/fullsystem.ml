type result = {
  outcome : Machine.Cpu.outcome;
  outputs : int list;
  cycles : int;
  retired : int;
  icache_stats : Softcache.Stats.t;
  dcache_stats : Sim.stats;
}

let run ?cost ?(fuel = max_int) (icfg : Softcache.Config.t)
    (dcfg : Config.t) img =
  let ctrl = Softcache.Controller.create ?cost icfg img in
  let cpu = ctrl.cpu in
  let dstats, after_step = Sim.attach dcfg cpu in
  Softcache.Controller.start ctrl;
  let steps = ref 0 in
  while not cpu.halted && !steps < fuel do
    Machine.Cpu.step cpu;
    incr steps;
    after_step ()
  done;
  cpu.cycles <- cpu.cycles + dstats.extra_cycles;
  ( {
      outcome =
        (if cpu.halted then Machine.Cpu.Halted else Machine.Cpu.Out_of_fuel);
      outputs = Machine.Cpu.outputs cpu;
      cycles = cpu.cycles;
      retired = cpu.retired;
      icache_stats = ctrl.stats;
      dcache_stats = dstats;
    },
    ctrl )

let local_memory_bytes (icfg : Softcache.Config.t) (dcfg : Config.t) =
  icfg.tcache_bytes + dcfg.dcache_bytes + (dcfg.scache_frames * 64)
