(** The complete Section 3 memory system.

    "We propose to implement data caching in two pieces: a specialized
    stack cache (scache) and a general-purpose data cache (dcache).
    Local memory is thus statically divided into three regions: tcache,
    scache and dcache."

    This driver runs a program with instruction caching through the
    SoftCache controller *and* data caching through the Section 3
    design at the same time — the paper's full vision for the embedded
    client. *)

type result = {
  outcome : Machine.Cpu.outcome;
  outputs : int list;
  cycles : int;  (** including both caches' overheads *)
  retired : int;
  icache_stats : Softcache.Stats.t;
  dcache_stats : Sim.stats;
}

val run :
  ?cost:Machine.Cost.t ->
  ?fuel:int ->
  Softcache.Config.t ->
  Config.t ->
  Isa.Image.t ->
  result * Softcache.Controller.t
(** Execute under both caches. Observable behaviour must equal native
    execution (tested); the cycle count reflects local memory sized as
    tcache + scache + dcache. *)

val local_memory_bytes : Softcache.Config.t -> Config.t -> int
(** Total client memory the configuration implies: tcache region plus
    dcache blocks plus the scache frame buffer (64 B frames). *)
