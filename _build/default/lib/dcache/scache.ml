type t = {
  frames : int;
  mutable depth : int; (* logical call depth *)
  mutable resident : int; (* topmost frames held in the buffer *)
  mutable spills : int;
  mutable refills : int;
}

type event = Entered | Entered_spilling of int | Left | Left_refilling

let create ~frames =
  if frames < 2 then invalid_arg "Dcache.Scache.create: need >= 2 frames";
  { frames; depth = 0; resident = 0; spills = 0; refills = 0 }

let enter t =
  t.depth <- t.depth + 1;
  if t.resident < t.frames then begin
    t.resident <- t.resident + 1;
    Entered
  end
  else begin
    (* buffer full: the deepest resident frame spills to the server *)
    t.spills <- t.spills + 1;
    Entered_spilling 1
  end

let leave t =
  if t.depth > 0 then t.depth <- t.depth - 1;
  if t.resident > 0 then t.resident <- t.resident - 1;
  if t.resident = 0 && t.depth > 0 then begin
    (* the frame being returned into had been spilled: refill it *)
    t.refills <- t.refills + 1;
    t.resident <- 1;
    Left_refilling
  end
  else Left

let depth t = t.depth
let resident t = t.resident
let spills t = t.spills
let refills t = t.refills
