(** The specialised stack cache (§3.1).

    "The stack cache holds stack frames in a circular buffer managed as
    a linked list. A presence check is made at procedure entrance and
    exit time. The stack cache is assumed to hold at least two frames
    so leaf procedures can avoid the exit check."

    Frames are pushed on procedure entry and popped on exit; when the
    buffer overflows, the deepest frames spill to the server, and a
    pop of a spilled frame refills it. *)

type t

type event =
  | Entered  (** frame fits, no traffic *)
  | Entered_spilling of int  (** had to spill this many frames *)
  | Left  (** frame resident, no traffic *)
  | Left_refilling  (** frame had been spilled; refilled *)

val create : frames:int -> t
(** @raise Invalid_argument if [frames < 2]. *)

val enter : t -> event
val leave : t -> event
(** Leaving below an empty logical stack is tolerated (the initial
    frame is implicit) and counts as [Left]. *)

val depth : t -> int
(** Current logical call depth. *)

val resident : t -> int
(** Frames actually held in the buffer. *)

val spills : t -> int
val refills : t -> int
