(** Hardware cache simulator — the paper's comparison baseline.

    Models a single-level cache with configurable size, block size and
    associativity (LRU replacement), fed with an address trace (the
    interpreter's fetch or data hooks). Figure 6 uses a direct-mapped
    instruction cache with 16-byte blocks; the tag-overhead model backs
    the paper's "tags for 32-bit addresses would add an extra 11-18%"
    claim. *)

type t

val create : ?assoc:int -> ?block_bytes:int -> size_bytes:int -> unit -> t
(** [create ~size_bytes ()] is a direct-mapped cache with 16-byte
    blocks. [assoc = 0] means fully associative. Sizes and block sizes
    must be powers of two; [size_bytes >= block_bytes].
    @raise Invalid_argument on malformed geometry. *)

val size_bytes : t -> int
val block_bytes : t -> int
val assoc : t -> int
(** Effective associativity (number of ways; = number of blocks when
    fully associative). *)

val access : t -> int -> bool
(** [access t addr] touches the block containing byte [addr]; true on
    hit. Updates LRU state and statistics. *)

val accesses : t -> int
val misses : t -> int
val miss_rate : t -> float
(** Misses per access; 0 when no accesses yet. *)

val reset_stats : t -> unit

val invalidate_all : t -> unit
(** Empty the cache (keeps statistics). *)

val tag_overhead : ?addr_bits:int -> ?valid_bits:int -> t -> float
(** Fraction of extra storage the tag array adds on top of the data
    array: [(tag_bits + valid_bits) / (8 * block_bytes)] per block, with
    [tag_bits = addr_bits - log2 sets - log2 block_bytes]. Defaults:
    32-bit addresses, 1 valid bit. *)

val pp : Format.formatter -> t -> unit
