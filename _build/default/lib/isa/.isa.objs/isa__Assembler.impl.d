lib/isa/assembler.ml: Array Buffer Char Encode Format Hashtbl Image Instr Int32 List Printf Reg String
