lib/isa/assembler.mli: Image
