lib/isa/builder.ml: Array Buffer Encode Image Instr Int32 List Printf Reg String
