lib/isa/builder.mli: Image Instr Reg
