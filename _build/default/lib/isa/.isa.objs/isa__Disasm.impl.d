lib/isa/disasm.ml: Array Buffer Encode Image Instr List Printf
