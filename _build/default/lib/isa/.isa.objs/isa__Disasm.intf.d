lib/isa/disasm.mli: Image
