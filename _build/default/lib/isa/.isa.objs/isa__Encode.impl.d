lib/isa/encode.ml: Format Instr Reg
