lib/isa/image.ml: Array Bytes Encode Format Instr List Printf
