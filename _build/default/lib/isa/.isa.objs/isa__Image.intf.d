lib/isa/image.mli: Bytes Format Instr
