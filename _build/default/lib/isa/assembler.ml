type section = Text | Data

type operand =
  | Oreg of Reg.t
  | Oimm of int
  | Omem of int * Reg.t (* imm(reg) *)
  | Oname of string (* label reference *)
  | Ooff of int (* +n / -n raw branch offset *)

type line = {
  lnum : int;
  mnemonic : string;
  operands : operand list;
}

exception Asm_error of int * string

let err lnum fmt = Format.kasprintf (fun s -> raise (Asm_error (lnum, s))) fmt

let parse_int s =
  let s, neg =
    if String.length s > 0 && s.[0] = '-' then
      (String.sub s 1 (String.length s - 1), true)
    else (s, false)
  in
  match int_of_string_opt s with
  | Some v -> Some (if neg then -v else v)
  | None -> None

let parse_operand lnum s =
  let s = String.trim s in
  if s = "" then err lnum "empty operand"
  else
    match Reg.of_string s with
    | Some r -> Oreg r
    | None -> (
      if s.[0] = '+' && String.length s > 1 then
        match parse_int (String.sub s 1 (String.length s - 1)) with
        | Some v -> Ooff v
        | None -> err lnum "bad offset %S" s
      else
        match parse_int s with
        | Some v -> Oimm v
        | None ->
          (* imm(reg) ? *)
          (match String.index_opt s '(' with
          | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
            let imm_str = String.trim (String.sub s 0 i) in
            let reg_str = String.sub s (i + 1) (String.length s - i - 2) in
            let imm =
              if imm_str = "" then 0
              else
                match parse_int imm_str with
                | Some v -> v
                | None -> err lnum "bad displacement %S" imm_str
            in
            (match Reg.of_string (String.trim reg_str) with
            | Some r -> Omem (imm, r)
            | None -> err lnum "bad base register %S" reg_str)
          | Some _ | None ->
            if
              String.length s > 0
              && (s.[0] = '_' || (s.[0] >= 'a' && s.[0] <= 'z')
                 || (s.[0] >= 'A' && s.[0] <= 'Z'))
            then Oname s
            else err lnum "cannot parse operand %S" s))

let split_operands s =
  if String.trim s = "" then []
  else String.split_on_char ',' s |> List.map String.trim

let strip_comment s =
  let cut c s = match String.index_opt s c with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  cut ';' (cut '#' s)

let aluops =
  [
    ("add", Instr.Add); ("sub", Sub); ("mul", Mul); ("div", Div);
    ("and", And); ("or", Or); ("xor", Xor); ("sll", Sll); ("srl", Srl);
    ("sra", Sra); ("slt", Slt); ("sltu", Sltu);
  ]

let conds =
  [ ("beq", Instr.Eq); ("bne", Ne); ("blt", Lt); ("bge", Ge);
    ("bltu", Ltu); ("bgeu", Geu) ]

(* Size in words of one parsed instruction line (pass 1). *)
let size_of lnum mnemonic operands =
  match mnemonic with
  | "la" -> 2
  | "li" -> (
    match operands with
    | [ Oreg _; Oimm v ] ->
      if Encode.imm16_fits v then 1
      else if v land 0xFFFF = 0 then 1
      else 2
    | _ -> err lnum "li expects: li rd, imm"
  )
  | _ -> 1

type env = {
  labels : (string, section * int) Hashtbl.t; (* word idx / data offset *)
  code_base : int;
  data_base : int;
}

let resolve_code env lnum name =
  match Hashtbl.find_opt env.labels name with
  | Some (Text, idx) -> (idx, env.code_base + (idx * Instr.word_size))
  | Some (Data, _) -> err lnum "label %s is a data label" name
  | None -> err lnum "undefined label %s" name

let resolve_any env lnum name =
  match Hashtbl.find_opt env.labels name with
  | Some (Text, idx) -> env.code_base + (idx * Instr.word_size)
  | Some (Data, off) -> env.data_base + off
  | None -> err lnum "undefined label %s" name

let sext16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

(* Emit instructions for one line (pass 2). [idx] is the word index of
   the line's first instruction. *)
let emit env idx { lnum; mnemonic; operands } : Instr.t list =
  let reg = function Oreg r -> r | _ -> err lnum "expected register" in
  match (mnemonic, operands) with
  | "nop", [] -> [ Nop ]
  | "halt", [] -> [ Halt ]
  | "ret", [] -> [ Jr Reg.ra ]
  | "out", [ r ] -> [ Out (reg r) ]
  | "trap", [ Oimm k ] -> [ Trap k ]
  | "jr", [ r ] -> [ Jr (reg r) ]
  | "jalr", [ rd; rs ] -> [ Jalr (reg rd, reg rs) ]
  | "mov", [ rd; rs ] -> [ Alu (Add, reg rd, reg rs, Reg.zero) ]
  | "lui", [ rd; Oimm v ] -> [ Lui (reg rd, v) ]
  | "ld", [ rd; Omem (imm, rs) ] -> [ Ld (reg rd, rs, imm) ]
  | "st", [ rv; Omem (imm, rs) ] -> [ St (reg rv, rs, imm) ]
  | "ldb", [ rd; Omem (imm, rs) ] -> [ Ldb (reg rd, rs, imm) ]
  | "stb", [ rv; Omem (imm, rs) ] -> [ Stb (reg rv, rs, imm) ]
  | "jmp", [ Oname n ] -> [ Jmp (snd (resolve_code env lnum n)) ]
  | "jmp", [ Oimm a ] -> [ Jmp a ]
  | "jal", [ Oname n ] -> [ Jal (snd (resolve_code env lnum n)) ]
  | "jal", [ Oimm a ] -> [ Jal a ]
  | "li", [ Oreg rd; Oimm v ] ->
    let v32 = v land 0xFFFFFFFF in
    if Encode.imm16_fits v then [ Alui (Add, rd, Reg.zero, v) ]
    else if v32 land 0xFFFF = 0 then [ Lui (rd, (v32 lsr 16) land 0xFFFF) ]
    else
      [ Lui (rd, (v32 lsr 16) land 0xFFFF);
        Alui (Or, rd, rd, sext16 (v32 land 0xFFFF)) ]
  | "la", [ Oreg rd; Oname n ] ->
    let a = resolve_any env lnum n in
    [ Lui (rd, (a lsr 16) land 0xFFFF); Alui (Or, rd, rd, sext16 (a land 0xFFFF)) ]
  | _, _ -> (
    (* ALU reg / immediate forms and branches *)
    match List.assoc_opt mnemonic aluops with
    | Some op -> (
      match operands with
      | [ rd; rs1; Oreg rs2 ] -> [ Alu (op, reg rd, reg rs1, rs2) ]
      | _ -> err lnum "%s expects: %s rd, rs1, rs2" mnemonic mnemonic)
    | None -> (
      let immop =
        if String.length mnemonic > 1 && mnemonic.[String.length mnemonic - 1] = 'i'
        then
          List.assoc_opt
            (String.sub mnemonic 0 (String.length mnemonic - 1))
            aluops
        else None
      in
      match immop with
      | Some op -> (
        match operands with
        | [ rd; rs1; Oimm v ] -> [ Alui (op, reg rd, reg rs1, v) ]
        | _ -> err lnum "%s expects: %s rd, rs1, imm" mnemonic mnemonic)
      | None -> (
        match List.assoc_opt mnemonic conds with
        | Some c -> (
          match operands with
          | [ rs1; rs2; Oname n ] ->
            let tgt_idx, _ = resolve_code env lnum n in
            [ Br (c, reg rs1, reg rs2, tgt_idx - idx) ]
          | [ rs1; rs2; (Ooff o | Oimm o) ] ->
            [ Br (c, reg rs1, reg rs2, o) ]
          | _ -> err lnum "%s expects: %s rs1, rs2, label" mnemonic mnemonic)
        | None -> err lnum "unknown mnemonic %S" mnemonic)))

let assemble ?(name = "asm") ?(code_base = 0x1000) ?(data_base = 0x100000)
    source =
  try
    let labels = Hashtbl.create 64 in
    let env = { labels; code_base; data_base } in
    let lines = String.split_on_char '\n' source in
    let code_lines = ref [] (* (word_idx, line) reversed *) in
    let nwords = ref 0 in
    let data = Buffer.create 256 in
    let entry_name = ref None in
    let section = ref Text in
    let symbols = ref [] in
    let open_func = ref None (* (name, start_idx, lnum) *) in
    let close_func lnum =
      match !open_func with
      | None -> err lnum ".endfunc without .func"
      | Some (fname, start, _) ->
        symbols :=
          {
            Image.sym_name = fname;
            sym_addr = code_base + (start * Instr.word_size);
            sym_size = (!nwords - start) * Instr.word_size;
          }
          :: !symbols;
        open_func := None
    in
    let align4_data () =
      while Buffer.length data land 3 <> 0 do Buffer.add_char data '\000' done
    in
    let def_label lnum l =
      if Hashtbl.mem labels l then err lnum "duplicate label %s" l;
      match !section with
      | Text -> Hashtbl.add labels l (Text, !nwords)
      | Data ->
        align4_data ();
        Hashtbl.add labels l (Data, Buffer.length data)
    in
    (* pass 1: label addresses, sizes, data contents *)
    List.iteri
      (fun i raw ->
        let lnum = i + 1 in
        let s = String.trim (strip_comment raw) in
        if s <> "" then begin
          (* label definitions, possibly followed by an instruction *)
          let s =
            match String.index_opt s ':' with
            | Some ci
              when (not (String.contains s ' ')
                   || ci < String.index s ' ') ->
              def_label lnum (String.trim (String.sub s 0 ci));
              String.trim (String.sub s (ci + 1) (String.length s - ci - 1))
            | Some _ | None -> s
          in
          if s <> "" then
            let mnemonic, rest =
              match String.index_opt s ' ' with
              | Some i ->
                ( String.lowercase_ascii (String.sub s 0 i),
                  String.sub s i (String.length s - i) )
              | None -> (String.lowercase_ascii s, "")
            in
            match mnemonic with
            | ".text" -> section := Text
            | ".data" -> section := Data
            | ".entry" -> entry_name := Some (lnum, String.trim rest)
            | ".func" ->
              if !open_func <> None then err lnum "nested .func";
              if !section <> Text then err lnum ".func outside .text";
              open_func := Some (String.trim rest, !nwords, lnum)
            | ".endfunc" -> close_func lnum
            | ".word" ->
              if !section <> Data then err lnum ".word outside .data";
              align4_data ();
              List.iter
                (fun tok ->
                  match parse_int tok with
                  | Some v -> Buffer.add_int32_le data (Int32.of_int v)
                  | None -> err lnum "bad .word value %S" tok)
                (split_operands rest)
            | ".byte" ->
              if !section <> Data then err lnum ".byte outside .data";
              List.iter
                (fun tok ->
                  match parse_int tok with
                  | Some v -> Buffer.add_char data (Char.chr (v land 0xFF))
                  | None -> err lnum "bad .byte value %S" tok)
                (split_operands rest)
            | ".space" -> (
              if !section <> Data then err lnum ".space outside .data";
              align4_data ();
              match parse_int (String.trim rest) with
              | Some n when n >= 0 ->
                Buffer.add_string data (String.make n '\000')
              | Some _ | None -> err lnum "bad .space size")
            | m when String.length m > 0 && m.[0] = '.' ->
              err lnum "unknown directive %s" m
            | _ ->
              if !section <> Text then
                err lnum "instruction outside .text";
              let operands =
                List.map (parse_operand lnum) (split_operands rest)
              in
              let line = { lnum; mnemonic; operands } in
              code_lines := (!nwords, line) :: !code_lines;
              nwords := !nwords + size_of lnum mnemonic operands
        end)
      lines;
    (match !open_func with
    | Some (_, _, lnum) -> err lnum ".func not closed"
    | None -> ());
    (* pass 2: emit *)
    let code = Array.make !nwords (Encode.encode Instr.Nop) in
    List.iter
      (fun (idx, line) ->
        let instrs = emit env idx line in
        List.iteri
          (fun j i ->
            try code.(idx + j) <- Encode.encode i
            with Encode.Encode_error m -> err line.lnum "%s" m)
          instrs)
      !code_lines;
    let entry =
      match !entry_name with
      | None -> code_base
      | Some (lnum, n) -> snd (resolve_code env lnum n)
    in
    if !nwords = 0 then Error "no code"
    else
      Ok
        (Image.make ~name ~code_base ~code ~data_base
           ~data:(Buffer.to_bytes data) ~entry
           ~symbols:
             (List.sort
                (fun a b -> compare a.Image.sym_addr b.Image.sym_addr)
                !symbols))
  with
  | Asm_error (lnum, msg) -> Error (Printf.sprintf "line %d: %s" lnum msg)
  | Invalid_argument msg -> Error msg

let assemble_exn ?name ?code_base ?data_base source =
  match assemble ?name ?code_base ?data_base source with
  | Ok img -> img
  | Error msg -> failwith ("assembler: " ^ msg)
