(** Textual ERISC assembler.

    A small two-pass assembler, useful for tests, the CLI (which can run
    [.s] files) and writing workloads outside OCaml. Syntax, one
    instruction per line:

    {v
    ; comment (also #)
    .text                 ; switch to text section (default)
    .data                 ; switch to data section
    .entry main           ; set entry point
    .func compress        ; open a procedure symbol
    .endfunc
    label:                ; define a label (code or data section)
        li   r1, 1000     ; pseudo: load 32-bit constant (1-2 words)
        la   r2, table    ; pseudo: load label address (always 2 words)
        mov  r3, r1       ; pseudo: add r3, r1, zero
        addi r1, r1, -1
        add  r4, r1, r2
        ld   r5, 8(r2)
        st   r5, 0(r2)
        beq  r1, zero, label
        jmp  label
        jal  compress
        jr   r5
        ret               ; pseudo: jr ra
        out  r1
        trap 3
        nop
        halt
    table:
        .word 1, 2, 3
        .byte 65, 66
        .space 64
    v}

    Numeric literals accept decimal and [0x] hexadecimal. Branch targets
    may also be written as [+n]/[-n] raw word offsets. *)

val assemble :
  ?name:string -> ?code_base:int -> ?data_base:int -> string ->
  (Image.t, string) result
(** Assemble a full source text. Errors carry a line number. *)

val assemble_exn :
  ?name:string -> ?code_base:int -> ?data_base:int -> string -> Image.t
(** @raise Failure on assembly errors. *)
