type label = int

type item =
  | Ins of Instr.t
  | Br_to of Instr.cond * Reg.t * Reg.t * label
  | Jmp_to of label
  | Jal_to of label
  | La_hi of Reg.t * label (* lui part of [la] *)
  | La_lo of Reg.t * label (* ori part of [la] *)

type t = {
  name : string;
  code_base : int;
  data_base : int;
  mutable items : item list; (* reversed *)
  mutable nitems : int;
  mutable label_pos : int option array; (* word index *)
  mutable label_names : string array;
  mutable nlabels : int;
  data : Buffer.t;
  mutable entry : label option;
  mutable symbols : Image.symbol list; (* reversed *)
  mutable open_symbol : bool;
}

let create ?(code_base = 0x1000) ?(data_base = 0x100000) name =
  if code_base land 3 <> 0 then invalid_arg "Builder.create: unaligned code_base";
  {
    name;
    code_base;
    data_base;
    items = [];
    nitems = 0;
    label_pos = Array.make 16 None;
    label_names = Array.make 16 "";
    nlabels = 0;
    data = Buffer.create 256;
    entry = None;
    symbols = [];
    open_symbol = false;
  }

let new_label ?(name = "") t =
  if t.nlabels = Array.length t.label_pos then begin
    let pos = Array.make (2 * t.nlabels) None in
    Array.blit t.label_pos 0 pos 0 t.nlabels;
    t.label_pos <- pos;
    let names = Array.make (2 * t.nlabels) "" in
    Array.blit t.label_names 0 names 0 t.nlabels;
    t.label_names <- names
  end;
  let l = t.nlabels in
  t.label_names.(l) <- name;
  t.nlabels <- t.nlabels + 1;
  l

let here t l =
  match t.label_pos.(l) with
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Builder.here: label %s#%d already placed"
         t.label_names.(l) l)
  | None -> t.label_pos.(l) <- Some t.nitems

let label t =
  let l = new_label t in
  here t l;
  l

let push t item =
  t.items <- item :: t.items;
  t.nitems <- t.nitems + 1

let ins t i = push t (Ins i)
let br t c rs1 rs2 l = push t (Br_to (c, rs1, rs2, l))
let jmp t l = push t (Jmp_to l)
let jal t l = push t (Jal_to l)

let la t rd l =
  push t (La_hi (rd, l));
  push t (La_lo (rd, l))

let sext16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

let li t rd v =
  let v32 = v land 0xFFFFFFFF in
  if Encode.imm16_fits v then ins t (Alui (Add, rd, Reg.zero, v))
  else begin
    ins t (Lui (rd, (v32 lsr 16) land 0xFFFF));
    if v32 land 0xFFFF <> 0 then
      ins t (Alui (Or, rd, rd, sext16 (v32 land 0xFFFF)))
  end

let align4 t =
  while Buffer.length t.data land 3 <> 0 do
    Buffer.add_char t.data '\000'
  done

let word t v =
  align4 t;
  let addr = t.data_base + Buffer.length t.data in
  Buffer.add_int32_le t.data (Int32.of_int v);
  addr

let words t arr =
  align4 t;
  let addr = t.data_base + Buffer.length t.data in
  Array.iter (fun v -> Buffer.add_int32_le t.data (Int32.of_int v)) arr;
  addr

let space t n =
  align4 t;
  let addr = t.data_base + Buffer.length t.data in
  Buffer.add_string t.data (String.make n '\000');
  addr

let func t name l body =
  if t.open_symbol then invalid_arg "Builder.func: symbols must not nest";
  t.open_symbol <- true;
  here t l;
  let start = t.nitems in
  body ();
  t.open_symbol <- false;
  t.symbols <-
    {
      Image.sym_name = name;
      sym_addr = t.code_base + (start * Instr.word_size);
      sym_size = (t.nitems - start) * Instr.word_size;
    }
    :: t.symbols

let entry t l = t.entry <- Some l

let code_size_bytes t = t.nitems * Instr.word_size

let build t =
  let items = Array.of_list (List.rev t.items) in
  let resolve what l =
    match t.label_pos.(l) with
    | Some pos -> pos
    | None ->
      invalid_arg
        (Printf.sprintf "Builder.build: %s references unplaced label %s#%d"
           what t.label_names.(l) l)
  in
  let addr_of_idx idx = t.code_base + (idx * Instr.word_size) in
  let instr_at idx = function
    | Ins i -> i
    | Br_to (c, rs1, rs2, l) ->
      let off = resolve "branch" l - idx in
      if not (Encode.branch_offset_fits off) then
        invalid_arg
          (Printf.sprintf "Builder.build: branch offset %d out of range" off);
      Instr.Br (c, rs1, rs2, off)
    | Jmp_to l -> Instr.Jmp (addr_of_idx (resolve "jmp" l))
    | Jal_to l -> Instr.Jal (addr_of_idx (resolve "jal" l))
    | La_hi (rd, l) ->
      let a = addr_of_idx (resolve "la" l) in
      Instr.Lui (rd, (a lsr 16) land 0xFFFF)
    | La_lo (rd, l) ->
      let a = addr_of_idx (resolve "la" l) in
      Instr.Alui (Or, rd, rd, sext16 (a land 0xFFFF))
  in
  let code = Array.mapi (fun idx item -> Encode.encode (instr_at idx item)) items in
  let entry =
    match t.entry with
    | Some l -> addr_of_idx (resolve "entry" l)
    | None -> t.code_base
  in
  let symbols =
    List.sort
      (fun a b -> compare a.Image.sym_addr b.Image.sym_addr)
      t.symbols
  in
  Image.make ~name:t.name ~code_base:t.code_base ~code
    ~data_base:t.data_base
    ~data:(Buffer.to_bytes t.data)
    ~entry ~symbols
