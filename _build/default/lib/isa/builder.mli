(** Program-builder DSL.

    A two-pass builder for ERISC images: instructions are appended to
    the text segment, labels may be referenced before they are placed,
    and data is allocated at known addresses in the data segment. The
    synthetic workloads (lib/workloads) are written against this
    interface.

    Code layout is linear: the image's text segment is exactly the
    sequence of emitted instructions. *)

type t
type label

val create : ?code_base:int -> ?data_base:int -> string -> t
(** [create name] starts an empty program. Defaults: code at [0x1000],
    data at [0x100000]. *)

val new_label : ?name:string -> t -> label
(** A fresh, not-yet-placed label. *)

val here : t -> label -> unit
(** Place [label] at the current end of the text segment.
    @raise Invalid_argument if already placed. *)

val label : t -> label
(** [label t] is [new_label] + [here]. *)

val ins : t -> Instr.t -> unit
(** Append a fixed instruction. *)

val br : t -> Instr.cond -> Reg.t -> Reg.t -> label -> unit
(** Conditional branch to a label (offset resolved at [build] time). *)

val jmp : t -> label -> unit
val jal : t -> label -> unit

val la : t -> Reg.t -> label -> unit
(** Load the byte address of a code label into a register. Always emits
    two instructions ([lui] + [ori]). *)

val li : t -> Reg.t -> int -> unit
(** Load a 32-bit constant, emitting one or two instructions. *)

val word : t -> int -> int
(** Append an initialised 32-bit word to the data segment; returns its
    byte address. *)

val words : t -> int array -> int
(** Append several words; returns the address of the first. *)

val space : t -> int -> int
(** Reserve [n] zeroed bytes in the data segment (4-aligned start);
    returns the start address. *)

val func : t -> string -> label -> (unit -> unit) -> unit
(** [func t name entry body] places [entry] here, runs [body] to emit
    the procedure's instructions, and records a symbol covering the
    emitted range. Symbols must not nest. *)

val entry : t -> label -> unit
(** Set the image entry point (defaults to the first instruction). *)

val code_size_bytes : t -> int
(** Bytes of code emitted so far. *)

val build : t -> Image.t
(** Resolve all labels and produce the image.
    @raise Invalid_argument if a label was never placed or a branch
    offset does not fit. *)
