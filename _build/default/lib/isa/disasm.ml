let word ?addr w =
  match Encode.decode w with
  | None -> Printf.sprintf ".word 0x%08x" w
  | Some i -> (
    match (i, addr) with
    | Instr.Br (_, _, _, off), Some a ->
      Printf.sprintf "%s\t; -> 0x%x" (Instr.to_string i) (a + (4 * off))
    | _ -> Instr.to_string i)

let line addr w = Printf.sprintf "%08x:  %08x  %s" addr w (word ~addr w)

let image ?(with_symbols = true) (img : Image.t) =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun idx w ->
      let addr = img.code_base + (4 * idx) in
      if with_symbols then begin
        match List.find_opt (fun s -> s.Image.sym_addr = addr) img.symbols with
        | Some s -> Buffer.add_string buf (Printf.sprintf "\n<%s>:\n" s.sym_name)
        | None -> ()
      end;
      Buffer.add_string buf (line addr w);
      Buffer.add_char buf '\n')
    img.code;
  Buffer.contents buf

let range ~read ~lo ~hi =
  let buf = Buffer.create 256 in
  let addr = ref (lo land lnot 3) in
  while !addr < hi do
    Buffer.add_string buf (line !addr (read !addr));
    Buffer.add_char buf '\n';
    addr := !addr + 4
  done;
  Buffer.contents buf
