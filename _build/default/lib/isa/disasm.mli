(** Disassembler for ERISC images and memory ranges. *)

val word : ?addr:int -> int -> string
(** Disassemble one encoded word; undecodable words render as
    [.word 0x...]. [addr] is used to annotate branch targets with
    absolute addresses. *)

val image : ?with_symbols:bool -> Image.t -> string
(** Full listing of an image's text segment: address, raw word,
    mnemonic; procedure symbols become section headers (default on). *)

val range :
  read:(int -> int) -> lo:int -> hi:int -> string
(** Disassemble an arbitrary 4-aligned byte range through a word-read
    function (e.g. simulated memory) — used to inspect rewritten code
    in the translation cache. *)
