exception Encode_error of string

let err fmt = Format.kasprintf (fun s -> raise (Encode_error s)) fmt
let imm16_fits v = v >= -32768 && v <= 32767
let branch_offset_fits = imm16_fits
let jump_target_fits a = a >= 0 && a land 3 = 0 && a lsr 2 < 1 lsl 26

(* Opcode assignments. Opcodes 1..12 are the immediate forms of the
   twelve ALU operations, in [aluop_code] order. *)
let op_r_alu = 0
let op_alui_base = 1
let op_lui = 13
let op_ld = 14
let op_st = 15
let op_ldb = 16
let op_stb = 17
let op_br_base = 18 (* 18..23: Eq Ne Lt Ge Ltu Geu *)
let op_jmp = 24
let op_jal = 25
let op_jr = 26
let op_jalr = 27
let op_trap = 28
let op_halt = 29
let op_nop = 30
let op_out = 31

let aluop_code : Instr.aluop -> int = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | And -> 4
  | Or -> 5
  | Xor -> 6
  | Sll -> 7
  | Srl -> 8
  | Sra -> 9
  | Slt -> 10
  | Sltu -> 11

let aluop_of_code : int -> Instr.aluop option = function
  | 0 -> Some Add
  | 1 -> Some Sub
  | 2 -> Some Mul
  | 3 -> Some Div
  | 4 -> Some And
  | 5 -> Some Or
  | 6 -> Some Xor
  | 7 -> Some Sll
  | 8 -> Some Srl
  | 9 -> Some Sra
  | 10 -> Some Slt
  | 11 -> Some Sltu
  | _ -> None

let cond_code : Instr.cond -> int = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Ge -> 3
  | Ltu -> 4
  | Geu -> 5

let cond_of_code : int -> Instr.cond option = function
  | 0 -> Some Eq
  | 1 -> Some Ne
  | 2 -> Some Lt
  | 3 -> Some Ge
  | 4 -> Some Ltu
  | 5 -> Some Geu
  | _ -> None

let reg r = Reg.to_int r

let imm16 what v =
  if imm16_fits v then v land 0xFFFF else err "%s immediate %d out of range" what v

let uimm16 what v =
  if v >= 0 && v <= 0xFFFF then v else err "%s immediate %d out of range" what v

let jtarget what a =
  if jump_target_fits a then a lsr 2
  else err "%s target 0x%x invalid (alignment or range)" what a

let mk op f25 f20 f15_0 = (op lsl 26) lor (f25 lsl 21) lor (f20 lsl 16) lor f15_0

let encode : Instr.t -> int = function
  | Alu (op, rd, rs1, rs2) ->
    mk op_r_alu (reg rd) (reg rs1) ((reg rs2 lsl 11) lor aluop_code op)
  | Alui (op, rd, rs1, imm) ->
    mk (op_alui_base + aluop_code op) (reg rd) (reg rs1)
      (imm16 "alui" imm)
  | Lui (rd, imm) -> mk op_lui (reg rd) 0 (uimm16 "lui" imm)
  | Ld (rd, rs, imm) -> mk op_ld (reg rd) (reg rs) (imm16 "ld" imm)
  | St (rv, rs, imm) -> mk op_st (reg rv) (reg rs) (imm16 "st" imm)
  | Ldb (rd, rs, imm) -> mk op_ldb (reg rd) (reg rs) (imm16 "ldb" imm)
  | Stb (rv, rs, imm) -> mk op_stb (reg rv) (reg rs) (imm16 "stb" imm)
  | Br (c, rs1, rs2, off) ->
    mk (op_br_base + cond_code c) (reg rs1) (reg rs2) (imm16 "branch" off)
  | Jmp target -> (op_jmp lsl 26) lor jtarget "jmp" target
  | Jal target -> (op_jal lsl 26) lor jtarget "jal" target
  | Jr rs -> mk op_jr (reg rs) 0 0
  | Jalr (rd, rs) -> mk op_jalr (reg rd) (reg rs) 0
  | Trap k ->
    if k >= 0 && k < 1 lsl 26 then (op_trap lsl 26) lor k
    else err "trap index %d out of range" k
  | Out rs -> mk op_out (reg rs) 0 0
  | Nop -> op_nop lsl 26
  | Halt -> op_halt lsl 26

let sext16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

let decode (w : int) : Instr.t option =
  if w < 0 || w > 0xFFFFFFFF then None
  else
    let op = (w lsr 26) land 0x3F in
    let f25 = (w lsr 21) land 0x1F in
    let f20 = (w lsr 16) land 0x1F in
    let imm = w land 0xFFFF in
    let r25 = Reg.r f25 and r20 = Reg.r f20 in
    if op = op_r_alu then
      let rs2 = Reg.r ((w lsr 11) land 0x1F) in
      match aluop_of_code (w land 0x3F) with
      | Some a ->
        if w land 0x7C0 <> 0 then None else Some (Alu (a, r25, r20, rs2))
      | None -> None
    else if op >= op_alui_base && op < op_alui_base + 12 then
      match aluop_of_code (op - op_alui_base) with
      | Some a -> Some (Alui (a, r25, r20, sext16 imm))
      | None -> None
    else if op >= op_br_base && op < op_br_base + 6 then
      match cond_of_code (op - op_br_base) with
      | Some c -> Some (Br (c, r25, r20, sext16 imm))
      | None -> None
    else if op = op_lui then if f20 = 0 then Some (Lui (r25, imm)) else None
    else if op = op_ld then Some (Ld (r25, r20, sext16 imm))
    else if op = op_st then Some (St (r25, r20, sext16 imm))
    else if op = op_ldb then Some (Ldb (r25, r20, sext16 imm))
    else if op = op_stb then Some (Stb (r25, r20, sext16 imm))
    else if op = op_jmp then Some (Jmp ((w land 0x3FFFFFF) lsl 2))
    else if op = op_jal then Some (Jal ((w land 0x3FFFFFF) lsl 2))
    else if op = op_jr then
      if w land 0x1FFFFF = 0 then Some (Jr r25) else None
    else if op = op_jalr then
      if w land 0xFFFF = 0 then Some (Jalr (r25, r20)) else None
    else if op = op_trap then Some (Trap (w land 0x3FFFFFF))
    else if op = op_halt then if w land 0x3FFFFFF = 0 then Some Halt else None
    else if op = op_nop then if w land 0x3FFFFFF = 0 then Some Nop else None
    else if op = op_out then
      if w land 0x1FFFFF = 0 then Some (Out r25) else None
    else None

let decode_exn w =
  match decode w with
  | Some i -> i
  | None -> err "invalid instruction word 0x%08x" w
