(** Binary encoding of ERISC instructions.

    Instructions encode to 32-bit words. The SoftCache rewriter operates
    on encoded words in the translation cache, so [encode]/[decode] must
    round-trip exactly; this is enforced by property tests.

    Encoding layout (bit 31 is the MSB):
    - bits [31:26]: opcode;
    - R-type ALU (opcode 0): rd [25:21], rs1 [20:16], rs2 [15:11],
      funct [5:0];
    - I-type (immediate ALU, loads, stores, [Lui]): rd/rv [25:21],
      rs1 [20:16], imm16 [15:0];
    - branches: rs1 [25:21], rs2 [20:16], signed word offset [15:0];
    - [Jmp]/[Jal]/[Trap]: 26-bit word index [25:0];
    - [Jr]: rs [25:21]; [Jalr]: rd [25:21], rs [20:16];
    - [Out]: rs [25:21]. *)

exception Encode_error of string
(** Raised when an operand does not fit its field (e.g. an immediate
    outside 16 bits or a misaligned jump target). *)

val imm16_fits : int -> bool
(** True if the value fits a signed 16-bit immediate. *)

val branch_offset_fits : int -> bool
(** True if the word offset fits a branch's signed 16-bit field. *)

val jump_target_fits : int -> bool
(** True if the byte address is 4-aligned and its word index fits
    26 bits. *)

val encode : Instr.t -> int
(** [encode i] is the 32-bit word encoding [i].
    @raise Encode_error if an operand does not fit. *)

val decode : int -> Instr.t option
(** [decode w] decodes a 32-bit word; [None] for invalid encodings. *)

val decode_exn : int -> Instr.t
(** @raise Encode_error on invalid encodings. *)
