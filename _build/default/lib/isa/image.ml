type symbol = { sym_name : string; sym_addr : int; sym_size : int }

type t = {
  name : string;
  code_base : int;
  code : int array;
  data_base : int;
  data : Bytes.t;
  entry : int;
  symbols : symbol list;
}

let code_end t = t.code_base + (Array.length t.code * Instr.word_size)
let contains_code t addr = addr >= t.code_base && addr < code_end t

let make ~name ~code_base ~code ~data_base ~data ~entry ~symbols =
  if code_base land 3 <> 0 then invalid_arg "Image.make: unaligned code_base";
  if entry land 3 <> 0 then invalid_arg "Image.make: unaligned entry";
  let t = { name; code_base; code; data_base; data; entry; symbols } in
  if not (contains_code t entry) then
    invalid_arg "Image.make: entry outside text segment";
  let rec check_syms = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
      if a.sym_addr + a.sym_size > b.sym_addr then
        invalid_arg
          (Printf.sprintf "Image.make: symbols %s and %s overlap" a.sym_name
             b.sym_name);
      check_syms rest
  in
  List.iter
    (fun s ->
      if s.sym_addr < code_base || s.sym_addr + s.sym_size > code_end t then
        invalid_arg
          (Printf.sprintf "Image.make: symbol %s outside text" s.sym_name))
    symbols;
  check_syms symbols;
  t

let static_text_bytes t = Array.length t.code * Instr.word_size

let fetch t addr =
  if not (contains_code t addr) then
    invalid_arg (Printf.sprintf "Image.fetch: 0x%x outside text" addr);
  if addr land 3 <> 0 then
    invalid_arg (Printf.sprintf "Image.fetch: unaligned 0x%x" addr);
  Encode.decode_exn t.code.((addr - t.code_base) lsr 2)

let symbol_at t addr =
  List.find_opt
    (fun s -> addr >= s.sym_addr && addr < s.sym_addr + s.sym_size)
    t.symbols

let find_symbol t name = List.find_opt (fun s -> s.sym_name = name) t.symbols

let pp_summary ppf t =
  Format.fprintf ppf
    "%s: text %d B @ 0x%x, data %d B @ 0x%x, entry 0x%x, %d symbols" t.name
    (static_text_bytes t) t.code_base (Bytes.length t.data) t.data_base
    t.entry (List.length t.symbols)
