(** Program images.

    An image is the MC-side representation of an application: an encoded
    text segment, an initialised data segment (including zeroed BSS
    space), an entry point and a symbol table of procedures. It is the
    unit handed to the memory controller, the native machine loader and
    the profiler. *)

type symbol = {
  sym_name : string;
  sym_addr : int;  (** byte address of first instruction *)
  sym_size : int;  (** size in bytes *)
}

type t = {
  name : string;
  code_base : int;  (** byte address of the first code word *)
  code : int array;  (** encoded instruction words *)
  data_base : int;  (** byte address of the data segment *)
  data : Bytes.t;  (** initial data contents (BSS included, zeroed) *)
  entry : int;  (** entry-point byte address *)
  symbols : symbol list;  (** sorted by address, non-overlapping *)
}

val make :
  name:string ->
  code_base:int ->
  code:int array ->
  data_base:int ->
  data:Bytes.t ->
  entry:int ->
  symbols:symbol list ->
  t
(** Validates alignment, entry within code, symbol sort order and
    bounds. @raise Invalid_argument when malformed. *)

val static_text_bytes : t -> int
(** Size of the text segment in bytes — the paper's "static .text". *)

val code_end : t -> int
(** One past the last code byte. *)

val contains_code : t -> int -> bool
(** True if the byte address points into the text segment. *)

val fetch : t -> int -> Instr.t
(** Decode the instruction at a byte address.
    @raise Invalid_argument if outside the text segment or unaligned.
    @raise Encode.Encode_error if the word is not a valid encoding. *)

val symbol_at : t -> int -> symbol option
(** The procedure symbol covering a byte address, if any. *)

val find_symbol : t -> string -> symbol option
val pp_summary : Format.formatter -> t -> unit
