type aluop =
  | Add
  | Sub
  | Mul
  | Div
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Slt
  | Sltu

type cond = Eq | Ne | Lt | Ge | Ltu | Geu

type t =
  | Alu of aluop * Reg.t * Reg.t * Reg.t
  | Alui of aluop * Reg.t * Reg.t * int
  | Lui of Reg.t * int
  | Ld of Reg.t * Reg.t * int
  | St of Reg.t * Reg.t * int
  | Ldb of Reg.t * Reg.t * int
  | Stb of Reg.t * Reg.t * int
  | Br of cond * Reg.t * Reg.t * int
  | Jmp of int
  | Jal of int
  | Jr of Reg.t
  | Jalr of Reg.t * Reg.t
  | Trap of int
  | Out of Reg.t
  | Nop
  | Halt

let word_size = 4

let is_control_flow = function
  | Br _ | Jmp _ | Jal _ | Jr _ | Jalr _ | Trap _ | Halt -> true
  | Alu _ | Alui _ | Lui _ | Ld _ | St _ | Ldb _ | Stb _ | Out _ | Nop ->
    false

let is_block_terminator = is_control_flow
let equal (a : t) (b : t) = a = b

let aluop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"
  | Slt -> "slt"
  | Sltu -> "sltu"

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Ltu -> "ltu"
  | Geu -> "geu"

let pp_aluop ppf op = Format.pp_print_string ppf (aluop_name op)
let pp_cond ppf c = Format.pp_print_string ppf (cond_name c)

let pp ppf = function
  | Alu (op, rd, rs1, rs2) ->
    Format.fprintf ppf "%s %a, %a, %a" (aluop_name op) Reg.pp rd Reg.pp rs1
      Reg.pp rs2
  | Alui (op, rd, rs1, imm) ->
    Format.fprintf ppf "%si %a, %a, %d" (aluop_name op) Reg.pp rd Reg.pp rs1
      imm
  | Lui (rd, imm) -> Format.fprintf ppf "lui %a, 0x%x" Reg.pp rd imm
  | Ld (rd, rs, imm) ->
    Format.fprintf ppf "ld %a, %d(%a)" Reg.pp rd imm Reg.pp rs
  | St (rv, rs, imm) ->
    Format.fprintf ppf "st %a, %d(%a)" Reg.pp rv imm Reg.pp rs
  | Ldb (rd, rs, imm) ->
    Format.fprintf ppf "ldb %a, %d(%a)" Reg.pp rd imm Reg.pp rs
  | Stb (rv, rs, imm) ->
    Format.fprintf ppf "stb %a, %d(%a)" Reg.pp rv imm Reg.pp rs
  | Br (c, rs1, rs2, off) ->
    Format.fprintf ppf "b%s %a, %a, %+d" (cond_name c) Reg.pp rs1 Reg.pp rs2
      off
  | Jmp target -> Format.fprintf ppf "jmp 0x%x" target
  | Jal target -> Format.fprintf ppf "jal 0x%x" target
  | Jr rs -> Format.fprintf ppf "jr %a" Reg.pp rs
  | Jalr (rd, rs) -> Format.fprintf ppf "jalr %a, %a" Reg.pp rd Reg.pp rs
  | Trap k -> Format.fprintf ppf "trap %d" k
  | Out rs -> Format.fprintf ppf "out %a" Reg.pp rs
  | Nop -> Format.pp_print_string ppf "nop"
  | Halt -> Format.pp_print_string ppf "halt"

let to_string t = Format.asprintf "%a" pp t
