(** ERISC instructions.

    ERISC is a 32-bit, word-aligned RISC instruction set in the SPARC /
    MIPS mould, designed so that the SoftCache's dynamic binary
    rewriting has the same material to work with as the paper's SPARC
    and ARM prototypes: fixed-width encoded instructions, PC-relative
    conditional branches, absolute jumps and calls, computed jumps, and
    a trap instruction used by the software cache for miss stubs.

    Conventions:
    - all addresses are byte addresses; instructions are 4 bytes and
      must be 4-aligned;
    - conditional branch targets are encoded as signed word offsets
      relative to the branch instruction itself;
    - jump and call targets are absolute byte addresses (encoded as
      26-bit word indices, reaching 256 MB);
    - [Trap k] transfers control to the runtime (the cache controller)
      with a 26-bit stub index [k]. *)

type aluop =
  | Add
  | Sub
  | Mul
  | Div  (** signed division; division by zero faults *)
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Slt  (** set-if-less-than, signed *)
  | Sltu (** set-if-less-than, unsigned *)

type cond = Eq | Ne | Lt | Ge | Ltu | Geu

type t =
  | Alu of aluop * Reg.t * Reg.t * Reg.t
      (** [Alu (op, rd, rs1, rs2)]: [rd <- rs1 op rs2]. *)
  | Alui of aluop * Reg.t * Reg.t * int
      (** [Alui (op, rd, rs1, imm)]: [rd <- rs1 op imm], signed 16-bit
          immediate. Shift amounts use the low 5 bits. *)
  | Lui of Reg.t * int
      (** [Lui (rd, imm)]: [rd <- imm lsl 16], unsigned 16-bit [imm]. *)
  | Ld of Reg.t * Reg.t * int  (** [rd <- mem32\[rs + imm\]] *)
  | St of Reg.t * Reg.t * int  (** [mem32\[rs + imm\] <- rv]; [St (rv, rs, imm)] *)
  | Ldb of Reg.t * Reg.t * int (** [rd <- zero-extended mem8\[rs + imm\]] *)
  | Stb of Reg.t * Reg.t * int (** [mem8\[rs + imm\] <- low byte of rv] *)
  | Br of cond * Reg.t * Reg.t * int
      (** [Br (c, rs1, rs2, off)]: if [c (rs1, rs2)] then
          [pc <- pc + 4 * off]. [off] is a signed 16-bit word offset
          relative to the branch instruction. *)
  | Jmp of int  (** absolute byte address *)
  | Jal of int  (** call: [ra <- pc + 4; pc <- target] *)
  | Jr of Reg.t (** computed jump / return: [pc <- rs] *)
  | Jalr of Reg.t * Reg.t
      (** [Jalr (rd, rs)]: indirect call: [rd <- pc + 4; pc <- rs]. *)
  | Trap of int (** software-cache trap with 26-bit stub index *)
  | Out of Reg.t (** emit [rs] to the observable output channel *)
  | Nop
  | Halt

val word_size : int
(** Bytes per instruction (4). *)

val is_control_flow : t -> bool
(** True for instructions that may transfer control ([Br], [Jmp],
    [Jal], [Jr], [Jalr], [Trap], [Halt]). *)

val is_block_terminator : t -> bool
(** True for instructions that always end a basic block: every control
    flow transfer. Conditional branches terminate blocks even though
    they may fall through. *)

val equal : t -> t -> bool
val pp_aluop : Format.formatter -> aluop -> unit
val pp_cond : Format.formatter -> cond -> unit

val pp : Format.formatter -> t -> unit
(** Assembly syntax, e.g. [add r1, r2, r3], [beq r1, zero, +12],
    [jmp 0x1040]. *)

val to_string : t -> string
