type t = int

let count = 32

let r n =
  if n < 0 || n >= count then
    invalid_arg (Printf.sprintf "Reg.r: %d out of range" n)
  else n

let to_int t = t
let zero = 0
let sp = 30
let ra = 31
let equal = Int.equal
let compare = Int.compare

let pp ppf t =
  match t with
  | 0 -> Format.pp_print_string ppf "zero"
  | 30 -> Format.pp_print_string ppf "sp"
  | 31 -> Format.pp_print_string ppf "ra"
  | n -> Format.fprintf ppf "r%d" n

let of_string s =
  match s with
  | "zero" -> Some zero
  | "sp" -> Some sp
  | "ra" -> Some ra
  | _ ->
    if String.length s >= 2 && s.[0] = 'r' then
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some n when n >= 0 && n < count -> Some n
      | Some _ | None -> None
    else None
