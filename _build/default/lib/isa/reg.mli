(** Registers of the ERISC ISA.

    ERISC has 32 general-purpose registers. Register 0 is hardwired to
    zero (writes are ignored), register 30 is the stack pointer by
    convention and register 31 is the link register written by [Jal] /
    [Jalr]. *)

type t
(** A register number in [0, 31]. *)

val count : int
(** Number of architectural registers (32). *)

val r : int -> t
(** [r n] is register [n]. @raise Invalid_argument if [n] is not in
    [0, 31]. *)

val to_int : t -> int
(** Architectural register number. *)

val zero : t
(** Register 0: hardwired zero. *)

val sp : t
(** Register 30: stack pointer (software convention). *)

val ra : t
(** Register 31: link register, written by call instructions. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [r4], or [zero]/[sp]/[ra] for the conventional registers. *)

val of_string : string -> t option
(** Parses ["r7"], ["zero"], ["sp"], ["ra"]. *)
