lib/machine/cpu.ml: Array Cost Format Isa List Memory
