lib/machine/cpu.mli: Cost Format Isa Memory
