lib/machine/memory.ml: Array Bytes Char Int32 Isa
