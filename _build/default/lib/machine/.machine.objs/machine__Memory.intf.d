lib/machine/memory.mli: Isa
