type t = {
  alu : int;
  load : int;
  store : int;
  branch_not_taken : int;
  branch_taken : int;
  jump : int;
  trap_dispatch : int;
}

let default =
  {
    alu = 1;
    load = 2;
    store = 2;
    branch_not_taken = 1;
    branch_taken = 2;
    jump = 2;
    trap_dispatch = 8;
  }

let uniform c =
  {
    alu = c;
    load = c;
    store = c;
    branch_not_taken = c;
    branch_taken = c;
    jump = c;
    trap_dispatch = c;
  }

let pp ppf t =
  Format.fprintf ppf
    "{alu=%d; load=%d; store=%d; br=%d/%d; jump=%d; trap=%d}" t.alu t.load
    t.store t.branch_not_taken t.branch_taken t.jump t.trap_dispatch
