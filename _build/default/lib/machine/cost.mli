(** Cycle cost model for the interpreter.

    The paper reports relative execution times (Fig. 5); a deterministic
    per-class cycle price makes native and softcached runs comparable on
    equal terms. All prices are in cycles per retired instruction; the
    SoftCache additionally charges miss-handling and lookup costs
    through the trap interface. *)

type t = {
  alu : int;  (** ALU, [Lui], [Out], [Nop] *)
  load : int;
  store : int;
  branch_not_taken : int;
  branch_taken : int;
  jump : int;  (** [Jmp], [Jal], [Jr], [Jalr], [Halt] *)
  trap_dispatch : int;
      (** charged when a [Trap] reaches the runtime, before the handler
          adds its own cost — models the exception/upcall price on the
          embedded core *)
}

val default : t
(** A single-issue embedded core: alu 1, load 2, store 2, branches 1/2
    (taken costs 2), jump 2, trap dispatch 8. *)

val uniform : int -> t
(** Every class costs the same; useful in tests. *)

val pp : Format.formatter -> t -> unit
