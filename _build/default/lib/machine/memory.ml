type t = Bytes.t

exception Out_of_bounds of int
exception Unaligned of int

let create n = Bytes.make n '\000'
let size = Bytes.length

let check32 t addr =
  if addr < 0 || addr + 4 > Bytes.length t then raise (Out_of_bounds addr);
  if addr land 3 <> 0 then raise (Unaligned addr)

let read32 t addr =
  check32 t addr;
  Int32.to_int (Bytes.get_int32_le t addr)

let write32 t addr v =
  check32 t addr;
  Bytes.set_int32_le t addr (Int32.of_int v)

let read8 t addr =
  if addr < 0 || addr >= Bytes.length t then raise (Out_of_bounds addr);
  Char.code (Bytes.get t addr)

let write8 t addr v =
  if addr < 0 || addr >= Bytes.length t then raise (Out_of_bounds addr);
  Bytes.set t addr (Char.chr (v land 0xFF))

let blit_code t ~addr (img : Isa.Image.t) =
  Array.iteri
    (fun i w -> write32 t (addr + (i * Isa.Instr.word_size)) w)
    img.code

let load_data t (img : Isa.Image.t) =
  let len = Bytes.length img.data in
  if len > 0 then begin
    if img.data_base < 0 || img.data_base + len > Bytes.length t then
      raise (Out_of_bounds img.data_base);
    Bytes.blit img.data 0 t img.data_base len
  end

let load_image t (img : Isa.Image.t) =
  blit_code t ~addr:img.code_base img;
  load_data t img

let hash t ~lo ~hi =
  let h = ref 0x811C9DC5 in
  for i = lo to hi - 1 do
    h := (!h lxor Char.code (Bytes.get t i)) * 0x01000193 land 0x3FFFFFFFFFFFFFFF
  done;
  !h
