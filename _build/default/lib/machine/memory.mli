(** Flat byte-addressed memory.

    Little-endian, fixed size. 32-bit reads return sign-extended values
    (the machine's registers hold signed 32-bit values represented as
    OCaml ints); byte reads are zero-extended. *)

type t

exception Out_of_bounds of int
(** Raised with the offending byte address. *)

exception Unaligned of int
(** Raised by 32-bit accesses to addresses that are not 4-aligned. *)

val create : int -> t
(** [create n] is [n] bytes of zeroed memory. *)

val size : t -> int
val read32 : t -> int -> int
val write32 : t -> int -> int -> unit
val read8 : t -> int -> int
val write8 : t -> int -> int -> unit

val load_image : t -> Isa.Image.t -> unit
(** Copy an image's text and data segments into memory. *)

val load_data : t -> Isa.Image.t -> unit
(** Copy only the data segment (the SoftCache CC has no native text). *)

val blit_code : t -> addr:int -> Isa.Image.t -> unit
(** Copy the text segment to an arbitrary 4-aligned address. *)

val hash : t -> lo:int -> hi:int -> int
(** FNV-1a hash of the byte range [lo, hi); used by equivalence tests. *)
