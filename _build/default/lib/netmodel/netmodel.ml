type t = {
  latency_cycles : int;
  cycles_per_byte : int;
  overhead_bytes : int;
  mutable messages : int;
  mutable payload : int;
}

let create ?(latency_cycles = 0) ?(cycles_per_byte = 0) ?(overhead_bytes = 0)
    () =
  { latency_cycles; cycles_per_byte; overhead_bytes; messages = 0; payload = 0 }

let local () = create ()

let ethernet_10mbps ?(cpu_mhz = 200) () =
  let cycles_per_byte = cpu_mhz * 1_000_000 * 8 / 10_000_000 in
  create ~latency_cycles:(cpu_mhz * 500) ~cycles_per_byte ~overhead_bytes:60 ()

let request t ~payload_bytes =
  t.messages <- t.messages + 1;
  t.payload <- t.payload + payload_bytes;
  t.latency_cycles + (t.cycles_per_byte * (payload_bytes + t.overhead_bytes))

let messages t = t.messages
let payload_bytes t = t.payload
let total_bytes t = t.payload + (t.messages * t.overhead_bytes)
let overhead_bytes_per_message t = t.overhead_bytes

let reset_stats t =
  t.messages <- 0;
  t.payload <- 0

let pp ppf t =
  Format.fprintf ppf
    "net: %d msgs, %d payload B, %d total B (latency %d cyc, %d cyc/B)"
    t.messages t.payload (total_bytes t) t.latency_cycles t.cycles_per_byte
