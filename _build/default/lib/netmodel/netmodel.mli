(** MC <-> CC interconnect model.

    The ARM prototype measured "60 application bytes (not counting
    Ethernet framing)" of protocol overhead per code chunk exchanged
    between cache controller and memory controller. This channel charges
    a fixed request/response latency plus a per-byte cost, and accounts
    messages, payload bytes and total bytes, so benches can report the
    paper's network-overhead numbers. *)

type t

val create :
  ?latency_cycles:int ->
  ?cycles_per_byte:int ->
  ?overhead_bytes:int ->
  unit ->
  t
(** Defaults are the [local] preset (all zeros). *)

val local : unit -> t
(** The SPARC prototype: MC and CC in the same address space —
    communication "by jumping back and forth", no network cost. *)

val ethernet_10mbps : ?cpu_mhz:int -> unit -> t
(** The ARM prototype's link: two Skiff boards on 10 Mbps Ethernet,
     200 MHz SA-110 by default. 10 Mbps = 1.25 MB/s = 160 cycles/byte at
    200 MHz; round-trip latency modelled as 0.5 ms = 100k cycles;
    60 bytes protocol overhead per chunk. *)

val request : t -> payload_bytes:int -> int
(** Cost in cycles of one MC round trip delivering [payload_bytes] of
    application data; accounts the message. *)

val messages : t -> int
val payload_bytes : t -> int
val total_bytes : t -> int
(** Payload plus per-message protocol overhead. *)

val overhead_bytes_per_message : t -> int
val reset_stats : t -> unit
val pp : Format.formatter -> t -> unit
