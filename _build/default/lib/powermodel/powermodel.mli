(** Power model for the paper's Section 4 claims.

    Three pieces:
    - the published StrongARM SA-110 component breakdown the paper
      quotes (Montanaro et al. [10]): "I-cache 27%, D-cache 16%, Write
      Buffer 2% ... 45% of the total power consumption lies in the
      cache alone";
    - a tag-check energy model: a hardware cache reads its tag array on
      every access, a software cache spends instructions instead —
      "even though a program using the software cache likely requires
      additional cycles it can avoid a larger fraction of tag checks
      for a net savings in memory system power";
    - a multi-bank SRAM sleep model for the novel capability of
      powering down banks outside the working set. *)

module Strongarm : sig
  val icache_fraction : float
  (** 0.27 *)

  val dcache_fraction : float
  (** 0.16 *)

  val write_buffer_fraction : float
  (** 0.02 *)

  val cache_total_fraction : float
  (** 0.45 — the share of chip power a software cache can attack. *)
end

module Tag_energy : sig
  type t = {
    tag_bits : int;  (** tag + valid bits read per access *)
    data_bits : int;  (** data bits read per access (e.g. 32) *)
  }

  val of_cache : size_bytes:int -> block_bytes:int -> assoc:int -> t
  (** Derive tag-array geometry for 32-bit addresses; [assoc] ways all
      probe their tags in parallel. *)

  val hw_energy : t -> accesses:int -> float
  (** Energy of a hardware cache in data-bit-read units: every access
      reads tags and data. *)

  val sw_energy : t -> accesses:int -> overhead_instrs:int -> float
  (** Software cache: accesses read data only; each overhead
      instruction costs one data-width read (its fetch). *)

  val sw_saving :
    t -> accesses:int -> overhead_instrs:int -> float
  (** Fractional memory-energy saving of software over hardware
      caching; negative when the overhead instructions outweigh the
      avoided tag checks. *)
end

module Banks : sig
  type t = {
    bank_bytes : int;
    banks : int;
    sleep_fraction : float;
        (** residual power of a sleeping bank (e.g. 0.08) — data is
            retained, per the drowsy-SRAM work the paper cites *)
  }

  val make : ?sleep_fraction:float -> bank_bytes:int -> banks:int -> unit -> t
  (** Default sleep fraction 0.08.
      @raise Invalid_argument on non-positive geometry. *)

  val total_bytes : t -> int

  val active_banks : t -> working_set:int -> int
  (** Banks that must stay awake to hold a compacted working set (at
      least one). The fully associative software cache can place the
      working set contiguously; a conventional cache cannot. *)

  val memory_power_fraction : t -> working_set:int -> float
  (** Memory power with power-down, as a fraction of all-banks-on. *)

  val chip_saving : t -> working_set:int -> float
  (** Fraction of total chip power saved, assuming on-chip memory
      accounts for {!Strongarm.cache_total_fraction} of it. *)
end
