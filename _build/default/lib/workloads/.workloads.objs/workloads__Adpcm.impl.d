lib/workloads/adpcm.ml: Gen Isa List
