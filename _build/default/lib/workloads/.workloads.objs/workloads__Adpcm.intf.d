lib/workloads/adpcm.mli: Isa
