lib/workloads/cjpegw.ml: Array Dctgen Gen Isa List
