lib/workloads/cjpegw.mli: Isa
