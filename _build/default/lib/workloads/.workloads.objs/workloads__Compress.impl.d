lib/workloads/compress.ml: Array Gen Isa List
