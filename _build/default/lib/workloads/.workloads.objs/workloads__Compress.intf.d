lib/workloads/compress.mli: Isa
