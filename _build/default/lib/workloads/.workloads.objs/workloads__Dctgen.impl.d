lib/workloads/dctgen.ml: Array Float Isa
