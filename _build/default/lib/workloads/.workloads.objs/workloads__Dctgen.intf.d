lib/workloads/dctgen.mli: Isa
