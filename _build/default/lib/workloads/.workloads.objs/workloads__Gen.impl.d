lib/workloads/gen.ml: Array Isa Printf
