lib/workloads/gen.mli: Isa
