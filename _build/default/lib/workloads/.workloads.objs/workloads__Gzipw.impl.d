lib/workloads/gzipw.ml: Gen Isa List
