lib/workloads/gzipw.mli: Isa
