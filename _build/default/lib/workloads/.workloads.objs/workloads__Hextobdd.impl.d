lib/workloads/hextobdd.ml: Gen Isa
