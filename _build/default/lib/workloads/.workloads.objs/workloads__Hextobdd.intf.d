lib/workloads/hextobdd.mli: Isa
