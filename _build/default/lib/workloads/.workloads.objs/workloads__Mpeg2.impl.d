lib/workloads/mpeg2.ml: Array Dctgen Gen Isa List
