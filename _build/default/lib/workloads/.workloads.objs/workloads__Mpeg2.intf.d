lib/workloads/mpeg2.mli: Isa
