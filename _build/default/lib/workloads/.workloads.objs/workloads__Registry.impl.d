lib/workloads/registry.ml: Adpcm Cjpegw Compress Gzipw Hextobdd Isa List Mpeg2 Sensor
