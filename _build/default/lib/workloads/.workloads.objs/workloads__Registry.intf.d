lib/workloads/registry.mli: Isa
