lib/workloads/sensor.ml: Gen Isa List
