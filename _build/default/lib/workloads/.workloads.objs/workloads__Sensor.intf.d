lib/workloads/sensor.mli: Isa
