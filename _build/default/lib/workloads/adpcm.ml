let name_encode = "adpcm_encode"
let name_decode = "adpcm_decode"

let reg = Isa.Reg.r

let step_table =
  [|
    7; 8; 9; 10; 11; 12; 13; 14; 16; 17; 19; 21; 23; 25; 28; 31; 34; 37; 41;
    45; 50; 55; 60; 66; 73; 80; 88; 97; 107; 118; 130; 143; 157; 173; 190;
    209; 230; 253; 279; 307; 337; 371; 408; 449; 494; 544; 598; 658; 724;
    796; 876; 963; 1060; 1166; 1282; 1411; 1552; 1707; 1878; 2066; 2272;
    2499; 2749; 3024; 3327; 3660; 4026; 4428; 4871; 5358; 5894; 6484; 7132;
    7845; 8630; 9493; 10442; 11487; 12635; 13899; 15289; 16818; 18500;
    20350; 22385; 24623; 27086; 29794; 32767;
  |]

let index_table =
  [| -1; -1; -1; -1; 2; 4; 6; 8; -1; -1; -1; -1; 2; 4; 6; 8 |]

(* Clamp r_v into [lo, hi] using r_t as scratch. *)
let emit_clamp b r_v r_t lo hi =
  let ok1 = Isa.Builder.new_label b in
  Isa.Builder.li b r_t lo;
  Isa.Builder.br b Ge r_v r_t ok1;
  Isa.Builder.ins b (Isa.Instr.Alu (Add, r_v, r_t, Isa.Reg.zero));
  Isa.Builder.here b ok1;
  let ok2 = Isa.Builder.new_label b in
  Isa.Builder.li b r_t hi;
  Isa.Builder.br b Lt r_v r_t ok2;
  Isa.Builder.ins b (Isa.Instr.Alu (Add, r_v, r_t, Isa.Reg.zero));
  Isa.Builder.here b ok2

(* Shared tail: cold app code, terminal stats, library padding. *)
let finish_image b r ~l_stats ~vars ~app_bytes ~static_bytes =
  (* terminal statistics routine: cold, runs once at the very end —
     the source of Fig. 8's end-of-run paging blip *)
  Isa.Builder.func b "print_stats" l_stats (fun () ->
      List.iter
        (fun v ->
          Isa.Builder.li b (reg 5) v;
          Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
          (* a little summarisation work, as real stats code would do *)
          Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 7, reg 6, 16));
          Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 7, reg 7, reg 6));
          Isa.Builder.ins b (Isa.Instr.Out (reg 6));
          Isa.Builder.ins b (Isa.Instr.Out (reg 7)))
        vars;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Gen.pad_cold_to b r ~prefix:"app_cold" ~target_bytes:app_bytes;
  Gen.pad_cold_to b r ~prefix:"libc_pad" ~target_bytes:static_bytes

let encode_image ?(samples = 20000) ?(app_bytes = 9900)
    ?(static_bytes = 18 * 1024) () =
  let b = Isa.Builder.create "adpcm_encode" in
  let r = Gen.rng 0xADC0DE in
  let steps = Isa.Builder.words b step_table in
  let idxadj = Isa.Builder.words b index_table in
  let inbuf = Isa.Builder.space b (samples * 4) in
  let var_cksum = Isa.Builder.word b 0 in
  let var_energy = Isa.Builder.word b 0 in
  let var_bytes = Isa.Builder.word b 0 in
  let var_hist1 = Isa.Builder.word b 0 in
  let var_hist2 = Isa.Builder.word b 0 in
  let var_dc = Isa.Builder.word b 0 in
  let l_main = Isa.Builder.new_label b in
  let l_init = Isa.Builder.new_label b in
  let l_kernel = Isa.Builder.new_label b in
  let l_quant = Isa.Builder.new_label b in
  let l_prefilter = Isa.Builder.new_label b in
  let l_bias = Isa.Builder.new_label b in
  let l_emit = Isa.Builder.new_label b in
  let l_stats = Isa.Builder.new_label b in
  Isa.Builder.entry b l_main;

  (* --- prefilter: r1 = raw sample -> r2 = conditioned sample.
         Weighted moving average over the last two samples, slow DC
         tracker subtraction, and a soft clip — the front half of a real
         speech coder's conditioning chain. Clobbers r5-r9. --- *)
  Isa.Builder.func b "adpcm_prefilter" l_prefilter (fun () ->
      Isa.Builder.li b (reg 5) var_hist1;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.li b (reg 7) var_hist2;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 8, reg 7, 0));
      (* y = (2x + h1 + h2) >> 2 *)
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 2, reg 1, 1));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 6));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 8));
      Isa.Builder.ins b (Isa.Instr.Alui (Sra, reg 2, reg 2, 2));
      (* history shift *)
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 7, 0));
      Isa.Builder.ins b (Isa.Instr.St (reg 1, reg 5, 0));
      (* dc tracker: dc += (y - dc) >> 6; y -= dc *)
      Isa.Builder.li b (reg 5) var_dc;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 8, reg 2, reg 6));
      Isa.Builder.ins b (Isa.Instr.Alui (Sra, reg 8, reg 8, 6));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 6, reg 6, reg 8));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 2, reg 2, reg 6));
      (* soft clip to +/- 30000 with 3/4 compression above the knee *)
      let pos_ok = Isa.Builder.new_label b in
      Isa.Builder.li b (reg 9) 24000;
      Isa.Builder.br b Lt (reg 2) (reg 9) pos_ok;
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 5, reg 2, reg 9));
      Isa.Builder.ins b (Isa.Instr.Alui (Sra, reg 5, reg 5, 2));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 9, reg 5));
      Isa.Builder.here b pos_ok;
      let neg_ok = Isa.Builder.new_label b in
      Isa.Builder.li b (reg 9) (-24000);
      Isa.Builder.br b Ge (reg 2) (reg 9) neg_ok;
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 5, reg 2, reg 9));
      Isa.Builder.ins b (Isa.Instr.Alui (Sra, reg 5, reg 5, 2));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 9, reg 5));
      Isa.Builder.here b neg_ok;
      (* pre-emphasis: y = y - (prev_y >> 2), prev_y in hist2's mate *)
      Isa.Builder.li b (reg 5) var_dc;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Sra, reg 7, reg 6, 2));
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 2, reg 2, reg 7));
      (* dither: triangular PDF from a tiny LCG kept in var_hist2's
         high half — decorrelates quantisation error *)
      Isa.Builder.li b (reg 5) var_hist2;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.li b (reg 7) 1103515245;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 8, reg 6, reg 7));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 8, reg 8, 12345));
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 9, reg 8, 18));
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 9, reg 9, 3));
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 7, reg 8, 22));
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 7, reg 7, 3));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 9, reg 9, reg 7));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 9, reg 9, -3));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 9));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- quantise: r1 = diff (>= 0), r2 = step -> r2 = delta(0..7),
         r3 = vpdiff; clobbers r5-r7 --- *)
  Isa.Builder.func b "adpcm_quantize" l_quant (fun () ->
      Isa.Builder.li b (reg 5) 0 (* delta *);
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 3, reg 2, 3));
      let no4 = Isa.Builder.new_label b in
      Isa.Builder.br b Lt (reg 1) (reg 2) no4;
      Isa.Builder.ins b (Isa.Instr.Alui (Or, reg 5, reg 5, 4));
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 1, reg 1, reg 2));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 3, reg 3, reg 2));
      Isa.Builder.here b no4;
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 2, reg 2, 1));
      let no2 = Isa.Builder.new_label b in
      Isa.Builder.br b Lt (reg 1) (reg 2) no2;
      Isa.Builder.ins b (Isa.Instr.Alui (Or, reg 5, reg 5, 2));
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 1, reg 1, reg 2));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 3, reg 3, reg 2));
      Isa.Builder.here b no2;
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 2, reg 2, 1));
      let no1 = Isa.Builder.new_label b in
      Isa.Builder.br b Lt (reg 1) (reg 2) no1;
      Isa.Builder.ins b (Isa.Instr.Alui (Or, reg 5, reg 5, 1));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 3, reg 3, reg 2));
      Isa.Builder.here b no1;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 5, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- index bias: r1 = index, r2 = energy -> r2 = biased index.
         Nudges adaptation toward the long-term signal level. --- *)
  Isa.Builder.func b "adpcm_index_bias" l_bias (fun () ->
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 5, reg 2, 14));
      Isa.Builder.li b (reg 6) 4;
      let capped = Isa.Builder.new_label b in
      Isa.Builder.br b Lt (reg 5) (reg 6) capped;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 6, Isa.Reg.zero));
      Isa.Builder.here b capped;
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 7, reg 1, 1));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 1, reg 7));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 5));
      Isa.Builder.ins b (Isa.Instr.Alui (Sra, reg 5, reg 2, 1));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 1, Isa.Reg.zero));
      let no_adj = Isa.Builder.new_label b in
      Isa.Builder.li b (reg 6) 80;
      Isa.Builder.br b Lt (reg 5) (reg 6) no_adj;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 2, reg 2, -1));
      Isa.Builder.here b no_adj;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- emit byte: r1 = byte; checksum and count; clobbers r5-r7 --- *)
  Isa.Builder.func b "adpcm_emit" l_emit (fun () ->
      Isa.Builder.li b (reg 5) var_cksum;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.li b (reg 7) 13;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 6, reg 6, reg 7));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 6, reg 6, reg 1));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      Isa.Builder.li b (reg 5) var_bytes;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 6, reg 6, 1));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- encode kernel --- *)
  Isa.Builder.func b "adpcm_coder" l_kernel (fun () ->
      Gen.prologue b;
      Isa.Builder.li b (reg 16) inbuf;
      Isa.Builder.li b (reg 17) (inbuf + (samples * 4));
      Isa.Builder.li b (reg 18) 0 (* valprev *);
      Isa.Builder.li b (reg 19) 0 (* index *);
      Isa.Builder.li b (reg 20) steps;
      Isa.Builder.li b (reg 21) idxadj;
      Isa.Builder.li b (reg 22) 0 (* pending nibble flag/value *);
      Isa.Builder.li b (reg 23) 0 (* energy accumulator *);
      Isa.Builder.li b (reg 13) 0 (* sign run length *);
      Isa.Builder.li b (reg 14) 0 (* previous sign *);
      Isa.Builder.li b (reg 11) 32767 (* envelope min *);
      Isa.Builder.li b (reg 12) (-32768) (* envelope max *);
      let loop = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Ld (reg 1, reg 16, 0));
      Isa.Builder.jal b l_prefilter;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 4, reg 2, Isa.Reg.zero));
      (* energy += |sample| >> 4 *)
      Isa.Builder.ins b (Isa.Instr.Alui (Sra, reg 5, reg 4, 31));
      Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 6, reg 4, reg 5));
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 6, reg 6, reg 5));
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 6, reg 6, 4));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 23, reg 23, reg 6));
      (* windowed min/max envelope over the conditioned signal *)
      let env_min_ok = Isa.Builder.new_label b in
      Isa.Builder.br b Ge (reg 4) (reg 11) env_min_ok;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 11, reg 4, Isa.Reg.zero));
      Isa.Builder.here b env_min_ok;
      let env_max_ok = Isa.Builder.new_label b in
      Isa.Builder.br b Lt (reg 4) (reg 12) env_max_ok;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 12, reg 4, Isa.Reg.zero));
      Isa.Builder.here b env_max_ok;
      (* decay the envelope toward each other *)
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 5, reg 12, reg 11));
      Isa.Builder.ins b (Isa.Instr.Alui (Sra, reg 5, reg 5, 9));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 11, reg 11, reg 5));
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 12, reg 12, reg 5));
      (* zero-crossing detector feeds the energy metric *)
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 7, reg 4, 31));
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 8, reg 18, 31));
      Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 7, reg 7, reg 8));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 23, reg 23, reg 7));
      (* step = steps[index] *)
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 5, reg 19, 2));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 5, reg 20));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 2, reg 5, 0));
      (* diff = sample - valprev; sign in r15 *)
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 1, reg 4, reg 18));
      Isa.Builder.li b (reg 15) 0;
      let pos = Isa.Builder.new_label b in
      Isa.Builder.br b Ge (reg 1) Isa.Reg.zero pos;
      Isa.Builder.li b (reg 15) 8;
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 1, Isa.Reg.zero, reg 1));
      Isa.Builder.here b pos;
      Isa.Builder.jal b l_quant;
      (* r2 = delta, r3 = vpdiff *)
      let subtract = Isa.Builder.new_label b in
      let upd_done = Isa.Builder.new_label b in
      Isa.Builder.br b Ne (reg 15) Isa.Reg.zero subtract;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 18, reg 18, reg 3));
      Isa.Builder.jmp b upd_done;
      Isa.Builder.here b subtract;
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 18, reg 18, reg 3));
      Isa.Builder.here b upd_done;
      emit_clamp b (reg 18) (reg 5) (-32768) 32767;
      (* index += idxadj[delta]; clamp 0..88 *)
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 5, reg 2, 2));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 5, reg 21));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 19, reg 19, reg 6));
      emit_clamp b (reg 19) (reg 5) 0 88;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 19, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 23, Isa.Reg.zero));
      Isa.Builder.jal b l_bias;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 19, reg 2, Isa.Reg.zero));
      emit_clamp b (reg 19) (reg 5) 0 88;
      (* noise-gate hysteresis: damp tiny deltas when energy is low *)
      let no_gate = Isa.Builder.new_label b in
      Isa.Builder.li b (reg 5) 3;
      Isa.Builder.br b Ge (reg 2) (reg 5) no_gate;
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 6, reg 23, 12));
      Isa.Builder.br b Ne (reg 6) Isa.Reg.zero no_gate;
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 2, reg 2, 6));
      Isa.Builder.here b no_gate;
      (* sign run-length feeds the adaptation bias *)
      let run_done = Isa.Builder.new_label b in
      let run_reset = Isa.Builder.new_label b in
      Isa.Builder.br b Ne (reg 15) (reg 14) run_reset;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 13, reg 13, 1));
      Isa.Builder.li b (reg 5) 16;
      Isa.Builder.br b Lt (reg 13) (reg 5) run_done;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 19, reg 19, 1));
      emit_clamp b (reg 19) (reg 5) 0 88;
      Isa.Builder.li b (reg 13) 0;
      Isa.Builder.jmp b run_done;
      Isa.Builder.here b run_reset;
      Isa.Builder.li b (reg 13) 0;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 14, reg 15, Isa.Reg.zero));
      Isa.Builder.here b run_done;
      (* code = delta | sign; pack two per byte *)
      Isa.Builder.ins b (Isa.Instr.Alu (Or, reg 2, reg 2, reg 15));
      let second = Isa.Builder.new_label b in
      let packed = Isa.Builder.new_label b in
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 5, reg 22, 0x100));
      Isa.Builder.br b Ne (reg 5) Isa.Reg.zero second;
      (* first nibble: remember it *)
      Isa.Builder.ins b (Isa.Instr.Alui (Or, reg 22, reg 2, 0x100));
      Isa.Builder.jmp b packed;
      Isa.Builder.here b second;
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 1, reg 22, 0x0F));
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 1, reg 1, 4));
      Isa.Builder.ins b (Isa.Instr.Alu (Or, reg 1, reg 1, reg 2));
      Isa.Builder.li b (reg 22) 0;
      Isa.Builder.jal b l_emit;
      Isa.Builder.here b packed;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 16, reg 16, 4));
      Isa.Builder.br b Ne (reg 16) (reg 17) loop;
      (* store energy (folded with the envelope) for the stats pass *)
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 12, reg 12, reg 11));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 23, reg 23, reg 12));
      Isa.Builder.li b (reg 5) var_energy;
      Isa.Builder.ins b (Isa.Instr.St (reg 23, reg 5, 0));
      Gen.epilogue b);

  (* --- input synthesis: jittered triangle wave --- *)
  Isa.Builder.func b "init_input" l_init (fun () ->
      Isa.Builder.li b (reg 5) inbuf;
      Isa.Builder.li b (reg 6) (inbuf + (samples * 4));
      Isa.Builder.li b (reg 7) 0 (* n *);
      Isa.Builder.li b (reg 8) 0x5EED2 (* noise state *);
      let top = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 9, reg 7, 1023));
      let down = Isa.Builder.new_label b in
      let store = Isa.Builder.new_label b in
      Isa.Builder.li b (reg 10) 512;
      Isa.Builder.br b Ge (reg 9) (reg 10) down;
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 11, reg 9, 6));
      Isa.Builder.jmp b store;
      Isa.Builder.here b down;
      Isa.Builder.li b (reg 11) 1023;
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 11, reg 11, reg 9));
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 11, reg 11, 6));
      Isa.Builder.here b store;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 11, reg 11, -16384));
      (* jitter: xorshift low bits *)
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 12, reg 8, 13));
      Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 8, reg 8, reg 12));
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 12, reg 8, 17));
      Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 8, reg 8, reg 12));
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 12, reg 8, 255));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 11, reg 11, reg 12));
      Isa.Builder.ins b (Isa.Instr.St (reg 11, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 7, reg 7, 1));
      Isa.Builder.br b Ne (reg 5) (reg 6) top;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  Isa.Builder.func b "main" l_main (fun () ->
      Isa.Builder.jal b l_init;
      Isa.Builder.jal b l_kernel;
      Isa.Builder.jal b l_stats;
      Isa.Builder.ins b Isa.Instr.Halt);

  finish_image b r ~l_stats
    ~vars:[ var_bytes; var_cksum; var_energy ]
    ~app_bytes ~static_bytes;
  Isa.Builder.build b

let decode_image ?(nibbles = 40000) ?(app_bytes = 5400)
    ?(static_bytes = 17 * 1024) () =
  let b = Isa.Builder.create "adpcm_decode" in
  let r = Gen.rng 0xDEC0DE in
  let steps = Isa.Builder.words b step_table in
  let idxadj = Isa.Builder.words b index_table in
  let inbuf = Isa.Builder.space b (nibbles / 2) in
  let var_cksum = Isa.Builder.word b 0 in
  let var_peak = Isa.Builder.word b 0 in
  let var_smooth = Isa.Builder.word b 0 in
  let var_outsum = Isa.Builder.word b 0 in
  let l_main = Isa.Builder.new_label b in
  let l_init = Isa.Builder.new_label b in
  let l_kernel = Isa.Builder.new_label b in
  let l_recon = Isa.Builder.new_label b in
  let l_post = Isa.Builder.new_label b in
  let l_stats = Isa.Builder.new_label b in
  Isa.Builder.entry b l_main;

  (* --- postfilter: r1 = reconstructed sample. One-pole smoother plus
         an output checksum over the smoothed signal — the playback
         half of a decoder. Clobbers r5-r8. --- *)
  Isa.Builder.func b "adpcm_postfilter" l_post (fun () ->
      Isa.Builder.li b (reg 5) var_smooth;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      (* s += (x - s) >> 3 *)
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 7, reg 1, reg 6));
      Isa.Builder.ins b (Isa.Instr.Alui (Sra, reg 7, reg 7, 3));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 6, reg 6, reg 7));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      (* outsum = outsum * 7 + (s >> 2), with overflow fold *)
      Isa.Builder.li b (reg 5) var_outsum;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 7, reg 5, 0));
      Isa.Builder.li b (reg 8) 7;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 7, reg 7, reg 8));
      Isa.Builder.ins b (Isa.Instr.Alui (Sra, reg 8, reg 6, 2));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 7, reg 7, reg 8));
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 8, reg 7, 24));
      Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 7, reg 7, reg 8));
      Isa.Builder.ins b (Isa.Instr.St (reg 7, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- reconstruct: r1 = delta(0..7), r2 = step -> r3 = vpdiff --- *)
  Isa.Builder.func b "adpcm_recon" l_recon (fun () ->
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 3, reg 2, 3));
      let no4 = Isa.Builder.new_label b in
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 5, reg 1, 4));
      Isa.Builder.br b Eq (reg 5) Isa.Reg.zero no4;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 3, reg 3, reg 2));
      Isa.Builder.here b no4;
      let no2 = Isa.Builder.new_label b in
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 5, reg 1, 2));
      Isa.Builder.br b Eq (reg 5) Isa.Reg.zero no2;
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 6, reg 2, 1));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 3, reg 3, reg 6));
      Isa.Builder.here b no2;
      let no1 = Isa.Builder.new_label b in
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 5, reg 1, 1));
      Isa.Builder.br b Eq (reg 5) Isa.Reg.zero no1;
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 6, reg 2, 2));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 3, reg 3, reg 6));
      Isa.Builder.here b no1;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- decode kernel --- *)
  Isa.Builder.func b "adpcm_decoder" l_kernel (fun () ->
      Gen.prologue b;
      Isa.Builder.li b (reg 16) inbuf;
      Isa.Builder.li b (reg 17) (inbuf + (nibbles / 2));
      Isa.Builder.li b (reg 18) 0 (* valprev *);
      Isa.Builder.li b (reg 19) 0 (* index *);
      Isa.Builder.li b (reg 20) steps;
      Isa.Builder.li b (reg 21) idxadj;
      Isa.Builder.li b (reg 22) 0 (* checksum *);
      Isa.Builder.li b (reg 23) 0 (* peak *);
      let loop = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Ldb (reg 14, reg 16, 0));
      (* two nibbles per byte, high first *)
      Isa.Builder.li b (reg 13) 2;
      let nibble_loop = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 4, reg 14, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 4, reg 4, 0x0F));
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 14, reg 14, 4));
      (* delta = code & 7, sign = code & 8 *)
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 1, reg 4, 7));
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 15, reg 4, 8));
      (* step = steps[index] *)
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 5, reg 19, 2));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 5, reg 20));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 2, reg 5, 0));
      Isa.Builder.jal b l_recon;
      let subtract = Isa.Builder.new_label b in
      let upd_done = Isa.Builder.new_label b in
      Isa.Builder.br b Ne (reg 15) Isa.Reg.zero subtract;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 18, reg 18, reg 3));
      Isa.Builder.jmp b upd_done;
      Isa.Builder.here b subtract;
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 18, reg 18, reg 3));
      Isa.Builder.here b upd_done;
      emit_clamp b (reg 18) (reg 5) (-32768) 32767;
      (* index += idxadj[delta of full code]; clamp *)
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 5, reg 1, 2));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 5, reg 21));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 19, reg 19, reg 6));
      emit_clamp b (reg 19) (reg 5) 0 88;
      (* playback-side smoothing *)
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 18, Isa.Reg.zero));
      Isa.Builder.jal b l_post;
      (* checksum and peak tracking *)
      Isa.Builder.li b (reg 5) 29;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 22, reg 22, reg 5));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 22, reg 22, reg 18));
      let no_peak = Isa.Builder.new_label b in
      Isa.Builder.br b Lt (reg 18) (reg 23) no_peak;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 23, reg 18, Isa.Reg.zero));
      Isa.Builder.here b no_peak;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 13, reg 13, -1));
      Isa.Builder.br b Ne (reg 13) Isa.Reg.zero nibble_loop;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 16, reg 16, 1));
      Isa.Builder.br b Ne (reg 16) (reg 17) loop;
      Isa.Builder.li b (reg 5) var_cksum;
      Isa.Builder.ins b (Isa.Instr.St (reg 22, reg 5, 0));
      Isa.Builder.li b (reg 5) var_peak;
      Isa.Builder.ins b (Isa.Instr.St (reg 23, reg 5, 0));
      Gen.epilogue b);

  Isa.Builder.func b "init_input" l_init (fun () ->
      Gen.fill_xorshift b ~buf_addr:inbuf ~bytes:(nibbles / 2) ~seed:0x5EED3;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  Isa.Builder.func b "main" l_main (fun () ->
      Isa.Builder.jal b l_init;
      Isa.Builder.jal b l_kernel;
      Isa.Builder.jal b l_stats;
      Isa.Builder.ins b Isa.Instr.Halt);

  finish_image b r ~l_stats
    ~vars:[ var_cksum; var_peak; var_outsum ]
    ~app_bytes ~static_bytes;
  Isa.Builder.build b
