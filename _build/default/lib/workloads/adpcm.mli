(** MediaBench-like IMA ADPCM encoder and decoder workloads.

    Real IMA ADPCM arithmetic: the standard 89-entry step-size table,
    the 4-bit quantiser with sign handling, predictor update with
    clamping, and index adaptation. The encoder synthesises a jittered
    triangle-wave input; the decoder consumes a deterministic nibble
    stream. Both emit checksums.

    Their code shape matches the paper's ARM experiments: a small hot
    working set split across a kernel and two helper procedures
    (quantise, byte emit) — sized so that the steady state fits in
    roughly 900 bytes of CC memory but not 800 (Fig. 8) — plus a
    terminal statistics routine that causes the end-of-run paging blip
    the paper describes, and cold application + library code giving the
    Fig. 9 footprint ratios (≈ 0.09 encode, ≈ 0.07 decode). *)

val name_encode : string
val name_decode : string

val encode_image :
  ?samples:int -> ?app_bytes:int -> ?static_bytes:int -> unit -> Isa.Image.t
(** Defaults: 20000 samples, ≈ 9.9 KB application text, ≈ 18 KB total
    static text. *)

val decode_image :
  ?nibbles:int -> ?app_bytes:int -> ?static_bytes:int -> unit -> Isa.Image.t
(** Defaults: 40000 nibbles, ≈ 5.4 KB application text, ≈ 17 KB total
    static text. *)
