let name = "cjpeg"

let reg = Isa.Reg.r

let zigzag = Dctgen.zigzag
let qshift = Array.init 64 (fun i -> 1 + (i / 12))

let image ?(width = 48) ?(height = 32) ?(passes = 6)
    ?(app_bytes = 16500) ?(static_bytes = 30 * 1024) () =
  if width mod 8 <> 0 || height mod 8 <> 0 then
    invalid_arg "Cjpegw.image: dimensions must be multiples of 8";
  let b = Isa.Builder.create "cjpeg" in
  let r = Gen.rng 0xC19E6 in
  let rgb = Isa.Builder.space b (width * height * 3) in
  let blockbuf = Isa.Builder.space b (64 * 4) in
  let dctbuf = Isa.Builder.space b (64 * 4) in
  let dct2 = Isa.Builder.space b (64 * 4) in
  let zz = Isa.Builder.words b zigzag in
  let qs = Isa.Builder.words b qshift in
  let var_cksum = Isa.Builder.word b 0 in
  let var_bits = Isa.Builder.word b 0 in
  let var_cb = Isa.Builder.word b 0 in
  let var_cr = Isa.Builder.word b 0 in
  let l_main = Isa.Builder.new_label b in
  let l_init = Isa.Builder.new_label b in
  let l_ycc = Isa.Builder.new_label b in
  let l_dctrow = Isa.Builder.new_label b in
  let l_dctcol = Isa.Builder.new_label b in
  let l_dctblk = Isa.Builder.new_label b in
  let l_entropy = Isa.Builder.new_label b in
  let l_image = Isa.Builder.new_label b in
  Isa.Builder.entry b l_main;

  Dctgen.emit_pass b ~name:"cj_dct_row" ~in_stride:4 ~out_stride:4 l_dctrow;
  Dctgen.emit_pass b ~name:"cj_dct_col" ~in_stride:32 ~out_stride:32 l_dctcol;
  Dctgen.emit_block_driver b ~name:"cj_dct_block" ~src:blockbuf ~tmp:dctbuf
    ~dst:dct2 ~row_pass:l_dctrow ~col_pass:l_dctcol l_dctblk;

  (* --- colour conversion of one 8x8 block:
         r1 = RGB byte address of the block's top-left pixel.
         Luma goes to blockbuf; chroma accumulates into vars. --- *)
  Isa.Builder.func b "rgb_to_ycc" l_ycc (fun () ->
      Isa.Builder.li b (reg 2) blockbuf;
      Isa.Builder.li b (reg 5) 8 (* rows *);
      let row = Isa.Builder.label b in
      Isa.Builder.li b (reg 6) 8 (* cols *);
      let col = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Ldb (reg 7, reg 1, 0));
      Isa.Builder.ins b (Isa.Instr.Ldb (reg 8, reg 1, 1));
      Isa.Builder.ins b (Isa.Instr.Ldb (reg 9, reg 1, 2));
      (* y = (77 r + 150 g + 29 b) >> 8, centred *)
      Isa.Builder.li b (reg 10) 77;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 10, reg 10, reg 7));
      Isa.Builder.li b (reg 11) 150;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 11, reg 11, reg 8));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 10, reg 10, reg 11));
      Isa.Builder.li b (reg 11) 29;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 11, reg 11, reg 9));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 10, reg 10, reg 11));
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 10, reg 10, 8));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 10, reg 10, -128));
      Isa.Builder.ins b (Isa.Instr.St (reg 10, reg 2, 0));
      (* cb += b - y', cr += r - y' (subsampled accumulation) *)
      Isa.Builder.li b (reg 11) var_cb;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 12, reg 11, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 13, reg 9, reg 10));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 12, reg 12, reg 13));
      Isa.Builder.ins b (Isa.Instr.St (reg 12, reg 11, 0));
      Isa.Builder.li b (reg 11) var_cr;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 12, reg 11, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 13, reg 7, reg 10));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 12, reg 12, reg 13));
      Isa.Builder.ins b (Isa.Instr.St (reg 12, reg 11, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, 3));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 2, reg 2, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 6, reg 6, -1));
      Isa.Builder.br b Ne (reg 6) Isa.Reg.zero col;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, (width - 8) * 3));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, -1));
      Isa.Builder.br b Ne (reg 5) Isa.Reg.zero row;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- quantise + entropy size estimate over the zigzag scan --- *)
  Isa.Builder.func b "entropy_block" l_entropy (fun () ->
      Isa.Builder.li b (reg 5) 0 (* i *);
      Isa.Builder.li b (reg 6) 0 (* bits *);
      Isa.Builder.li b (reg 7) 0 (* cksum *);
      Isa.Builder.li b (reg 8) 0 (* zero run *);
      let loop = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 9, reg 5, 2));
      Isa.Builder.li b (reg 10) zz;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 10, reg 10, reg 9));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 11, reg 10, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 11, reg 11, 2));
      Isa.Builder.li b (reg 10) dct2;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 10, reg 10, reg 11));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 12, reg 10, 0));
      Isa.Builder.li b (reg 10) qs;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 10, reg 10, reg 9));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 13, reg 10, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Sra, reg 12, reg 12, reg 13));
      let zero = Isa.Builder.new_label b in
      let cont = Isa.Builder.new_label b in
      Isa.Builder.br b Eq (reg 12) Isa.Reg.zero zero;
      (* |q| magnitude bits *)
      Isa.Builder.ins b (Isa.Instr.Alui (Sra, reg 13, reg 12, 31));
      Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 14, reg 12, reg 13));
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 14, reg 14, reg 13));
      let bits = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 6, reg 6, 1));
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 14, reg 14, 1));
      Isa.Builder.br b Ne (reg 14) Isa.Reg.zero bits;
      (* fold (run, level) *)
      Isa.Builder.li b (reg 13) 41;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 7, reg 7, reg 13));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 7, reg 7, reg 12));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 7, reg 7, reg 8));
      Isa.Builder.li b (reg 8) 0;
      Isa.Builder.jmp b cont;
      Isa.Builder.here b zero;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 8, reg 8, 1));
      Isa.Builder.here b cont;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, 1));
      Isa.Builder.li b (reg 9) 64;
      Isa.Builder.br b Ne (reg 5) (reg 9) loop;
      Isa.Builder.li b (reg 5) var_cksum;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 9, reg 5, 0));
      Isa.Builder.li b (reg 10) 8191;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 9, reg 9, reg 10));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 9, reg 9, reg 7));
      Isa.Builder.ins b (Isa.Instr.St (reg 9, reg 5, 0));
      Isa.Builder.li b (reg 5) var_bits;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 9, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 9, reg 9, reg 6));
      Isa.Builder.ins b (Isa.Instr.St (reg 9, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- sweep all blocks of the image --- *)
  Isa.Builder.func b "compress_image" l_image (fun () ->
      Gen.prologue b;
      Isa.Builder.li b (reg 16) 0 (* by *);
      let byloop = Isa.Builder.label b in
      Isa.Builder.li b (reg 17) 0 (* bx *);
      let bxloop = Isa.Builder.label b in
      Isa.Builder.li b (reg 5) (8 * width * 3);
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 5, reg 5, reg 16));
      Isa.Builder.li b (reg 6) 24;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 6, reg 6, reg 17));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 5, reg 6));
      Isa.Builder.li b (reg 1) rgb;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 1, reg 5));
      Isa.Builder.jal b l_ycc;
      Isa.Builder.jal b l_dctblk;
      Isa.Builder.jal b l_entropy;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 17, reg 17, 1));
      Isa.Builder.li b (reg 5) (width / 8);
      Isa.Builder.br b Ne (reg 17) (reg 5) bxloop;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 16, reg 16, 1));
      Isa.Builder.li b (reg 5) (height / 8);
      Isa.Builder.br b Ne (reg 16) (reg 5) byloop;
      Gen.epilogue b);

  Isa.Builder.func b "init_image" l_init (fun () ->
      Gen.fill_xorshift b ~buf_addr:rgb ~bytes:(width * height * 3)
        ~seed:0x5EED7;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  Isa.Builder.func b "main" l_main (fun () ->
      Isa.Builder.jal b l_init;
      Isa.Builder.li b (reg 20) passes;
      let ploop = Isa.Builder.label b in
      Isa.Builder.jal b l_image;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 20, reg 20, -1));
      Isa.Builder.br b Ne (reg 20) Isa.Reg.zero ploop;
      List.iter
        (fun v ->
          Isa.Builder.li b (reg 5) v;
          Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
          Isa.Builder.ins b (Isa.Instr.Out (reg 6)))
        [ var_cksum; var_bits; var_cb; var_cr ];
      Isa.Builder.ins b Isa.Instr.Halt);

  Gen.pad_cold_to b r ~prefix:"app_cold" ~target_bytes:app_bytes;
  Gen.pad_cold_to b r ~prefix:"libc_pad" ~target_bytes:static_bytes;
  Isa.Builder.build b
