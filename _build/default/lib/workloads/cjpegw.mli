(** cjpeg-like workload (ARM prototype benchmark).

    A JPEG-compression front end: per 8x8 block, fixed-point RGB to
    YCbCr conversion with chroma accumulation, the shared unrolled 2-D
    DCT, quantisation, and a bit-size entropy estimate (magnitude bits
    plus zero-run statistics) standing in for Huffman coding. The
    unrolled DCT makes its hot set the largest of the four Fig. 9
    programs (≈ 0.13 of application text). *)

val name : string

val image :
  ?width:int ->
  ?height:int ->
  ?passes:int ->
  ?app_bytes:int ->
  ?static_bytes:int ->
  unit ->
  Isa.Image.t
(** Defaults: a 48x32 image swept 6 times, ≈ 16.5 KB application text,
    ≈ 30 KB total static text. *)
