let name = "compress95"

let reg = Isa.Reg.r

(* hash table geometry *)
let hsize = 1024
let hmask = hsize - 1

let image ?(input_bytes = 12000) ?(stages = 24) ?(stage_instrs = 55)
    ?(static_bytes = 56 * 1024) () =
  let b = Isa.Builder.create "compress95" in
  let r = Gen.rng 0xC0135 in
  (* data *)
  let input = Isa.Builder.space b input_bytes in
  let table = Isa.Builder.space b (hsize * 8) in
  let state = Isa.Builder.space b (stages * 8) in
  let var_checksum = Isa.Builder.word b 0 in
  let var_outsum = Isa.Builder.word b 0 in
  let var_count = Isa.Builder.word b 0 in
  let var_bitbuf = Isa.Builder.word b 0 in
  let var_bitcnt = Isa.Builder.word b 0 in
  (* labels *)
  let l_main = Isa.Builder.new_label b in
  let l_init = Isa.Builder.new_label b in
  let l_clear = Isa.Builder.new_label b in
  let l_lookup = Isa.Builder.new_label b in
  let l_insert = Isa.Builder.new_label b in
  let l_emit = Isa.Builder.new_label b in
  let l_run = Isa.Builder.new_label b in
  let l_flush = Isa.Builder.new_label b in
  Isa.Builder.entry b l_main;

  (* --- hot generated stages --- *)
  let stage_labels =
    Gen.stage_functions b r ~prefix:"stage" ~state_addr:state ~count:stages
      ~body_instrs:stage_instrs
  in

  (* --- hash_lookup: r1 = key -> r2 = code or -1, r3 = slot addr --- *)
  Isa.Builder.func b "hash_lookup" l_lookup (fun () ->
      Isa.Builder.li b (reg 5) 0x9E3779B1;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 5, reg 1, reg 5));
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 5, reg 5, 20));
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 5, reg 5, hmask));
      Isa.Builder.li b (reg 6) table;
      let probe = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 3, reg 5, 3));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 3, reg 3, reg 6));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 7, reg 3, 0));
      let found = Isa.Builder.new_label b in
      let missing = Isa.Builder.new_label b in
      Isa.Builder.br b Eq (reg 7) (reg 1) found;
      Isa.Builder.li b (reg 8) (-1);
      Isa.Builder.br b Eq (reg 7) (reg 8) missing;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, 1));
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 5, reg 5, hmask));
      Isa.Builder.jmp b probe;
      Isa.Builder.here b found;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 2, reg 3, 4));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra);
      Isa.Builder.here b missing;
      Isa.Builder.li b (reg 2) (-1);
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- table_insert: r1 = key, r2 = code, r3 = slot addr --- *)
  Isa.Builder.func b "table_insert" l_insert (fun () ->
      Isa.Builder.ins b (Isa.Instr.St (reg 1, reg 3, 0));
      Isa.Builder.ins b (Isa.Instr.St (reg 2, reg 3, 4));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- emit_code: r1 = code; 9-bit pack + running checksums --- *)
  Isa.Builder.func b "emit_code" l_emit (fun () ->
      (* checksum = checksum * 31 + code *)
      Isa.Builder.li b (reg 5) var_checksum;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.li b (reg 7) 31;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 6, reg 6, reg 7));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 6, reg 6, reg 1));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      (* count++ *)
      Isa.Builder.li b (reg 5) var_count;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 6, reg 6, 1));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      (* bitbuf |= code << bitcnt; bitcnt += 9 *)
      Isa.Builder.li b (reg 5) var_bitbuf;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.li b (reg 8) var_bitcnt;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 9, reg 8, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Sll, reg 7, reg 1, reg 9));
      Isa.Builder.ins b (Isa.Instr.Alu (Or, reg 6, reg 6, reg 7));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 9, reg 9, 9));
      (* while bitcnt >= 8: outsum = outsum*17 + (bitbuf & 255) *)
      let drain = Isa.Builder.label b in
      let done_ = Isa.Builder.new_label b in
      Isa.Builder.li b (reg 10) 8;
      Isa.Builder.br b Lt (reg 9) (reg 10) done_;
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 10, reg 6, 255));
      Isa.Builder.li b (reg 11) var_outsum;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 12, reg 11, 0));
      Isa.Builder.li b (reg 13) 17;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 12, reg 12, reg 13));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 12, reg 12, reg 10));
      Isa.Builder.ins b (Isa.Instr.St (reg 12, reg 11, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 6, reg 6, 8));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 9, reg 9, -8));
      Isa.Builder.jmp b drain;
      Isa.Builder.here b done_;
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.St (reg 9, reg 8, 0));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- clear_table: keys := -1 --- *)
  Isa.Builder.func b "clear_table" l_clear (fun () ->
      Isa.Builder.li b (reg 5) table;
      Isa.Builder.li b (reg 6) (table + (hsize * 8));
      Isa.Builder.li b (reg 7) (-1);
      let top = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.St (reg 7, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, 8));
      Isa.Builder.br b Ne (reg 5) (reg 6) top;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- init_input: fill the buffer, touch a little library code --- *)
  let crt = Gen.cold_functions b r ~prefix:"libc_crt" ~count:3 ~body_instrs:25 in
  Isa.Builder.func b "init_input" l_init (fun () ->
      Gen.prologue b;
      Gen.fill_xorshift b ~buf_addr:input ~bytes:input_bytes ~seed:0x5EED1;
      Array.iter (fun l -> Isa.Builder.jal b l) crt;
      Gen.epilogue b);

  (* --- compress_run: the hot kernel --- *)
  Isa.Builder.func b "compress_run" l_run (fun () ->
      Gen.prologue b;
      Isa.Builder.li b (reg 16) input;
      Isa.Builder.li b (reg 17) (input + input_bytes);
      Isa.Builder.li b (reg 18) 0 (* prefix *);
      Isa.Builder.li b (reg 19) 1 (* stage accumulator *);
      Isa.Builder.li b (reg 22) 256 (* next_code *);
      Isa.Builder.li b (reg 23) 0 (* table fill *);
      let loop = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Ldb (reg 5, reg 16, 0));
      (* key = prefix << 8 | byte *)
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 20, reg 18, 8));
      Isa.Builder.ins b (Isa.Instr.Alu (Or, reg 20, reg 20, reg 5));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 20, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.St (reg 5, Isa.Reg.sp, 0) (* save byte *));
      Isa.Builder.jal b l_lookup;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 5, Isa.Reg.sp, 0));
      let miss = Isa.Builder.new_label b in
      let next = Isa.Builder.new_label b in
      Isa.Builder.li b (reg 6) (-1);
      Isa.Builder.br b Eq (reg 2) (reg 6) miss;
      (* hit: extend prefix *)
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 18, reg 2, Isa.Reg.zero));
      Isa.Builder.jmp b next;
      Isa.Builder.here b miss;
      (* emit prefix, insert (key -> next_code), restart at byte *)
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 21, reg 3, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 18, Isa.Reg.zero));
      Isa.Builder.jal b l_emit;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 20, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 22, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 3, reg 21, Isa.Reg.zero));
      Isa.Builder.jal b l_insert;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 22, reg 22, 1));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 23, reg 23, 1));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 5, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 18, reg 5, Isa.Reg.zero));
      (* dictionary reset when the table gets crowded *)
      Isa.Builder.li b (reg 6) 700;
      let no_reset = Isa.Builder.new_label b in
      Isa.Builder.br b Lt (reg 23) (reg 6) no_reset;
      Isa.Builder.jal b l_clear;
      Isa.Builder.li b (reg 22) 256;
      Isa.Builder.li b (reg 23) 0;
      Isa.Builder.here b no_reset;
      Isa.Builder.here b next;
      (* run the transform stages on every 16th byte *)
      let skip_stages = Isa.Builder.new_label b in
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 6, reg 16, 0x3C));
      Isa.Builder.br b Ne (reg 6) Isa.Reg.zero skip_stages;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 19, Isa.Reg.zero));
      Gen.call_stages b stage_labels;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 19, reg 1, Isa.Reg.zero));
      Isa.Builder.here b skip_stages;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 16, reg 16, 1));
      Isa.Builder.br b Ne (reg 16) (reg 17) loop;
      (* final emit of the last prefix *)
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 18, Isa.Reg.zero));
      Isa.Builder.jal b l_emit;
      Gen.epilogue b);

  (* --- flush_stats: observable outputs --- *)
  Isa.Builder.func b "flush_stats" l_flush (fun () ->
      List.iter
        (fun v ->
          Isa.Builder.li b (reg 5) v;
          Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
          Isa.Builder.ins b (Isa.Instr.Out (reg 6)))
        [ var_count; var_checksum; var_outsum; var_bitcnt ];
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- main --- *)
  Isa.Builder.func b "main" l_main (fun () ->
      (* reserve one scratch slot used by compress_run *)
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, -16));
      Isa.Builder.jal b l_clear;
      Isa.Builder.jal b l_init;
      Isa.Builder.jal b l_run;
      Isa.Builder.jal b l_flush;
      Isa.Builder.ins b Isa.Instr.Halt);

  (* --- cold library padding up to the static target --- *)
  Gen.pad_cold_to b r ~prefix:"libc_pad" ~target_bytes:static_bytes;
  Isa.Builder.build b
