(** 129.compress-like workload.

    An LZW-style compressor matched in structure to SPEC95's
    129.compress: a byte-at-a-time main loop probing an open-addressing
    hash table of (prefix, char) strings, code emission with bit
    packing, periodic dictionary resets, plus generated hot transform
    stages that size the steady-state working set and cold library
    padding that sizes the static footprint (Table 1's 21 KB dynamic /
    193 KB static shape, scaled).

    The program fills its own input with biased deterministic noise,
    compresses it, and emits four checksums ([Out]) that equivalence
    tests compare against native execution. *)

val name : string

val image :
  ?input_bytes:int ->
  ?stages:int ->
  ?stage_instrs:int ->
  ?static_bytes:int ->
  unit ->
  Isa.Image.t
(** Defaults: 12000 input bytes, 24 stages of ~55 instructions
    (≈ 6 KB hot code), 56 KB static text. *)
