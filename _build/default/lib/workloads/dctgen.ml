let reg = Isa.Reg.r

(* zigzag scan order for an 8x8 block *)
let zigzag =
  [|
    0; 1; 8; 16; 9; 2; 3; 10; 17; 24; 32; 25; 18; 11; 4; 5; 12; 19; 26; 33;
    40; 48; 41; 34; 27; 20; 13; 6; 7; 14; 21; 28; 35; 42; 49; 56; 57; 50;
    43; 36; 29; 22; 15; 23; 30; 37; 44; 51; 58; 59; 52; 45; 38; 31; 39; 46;
    53; 60; 61; 54; 47; 55; 62; 63;
  |]

(* DCT-II coefficients scaled by 64: c.(k).(n) for output k, input n. *)
let coeffs =
  Array.init 8 (fun k ->
      Array.init 8 (fun n ->
          let c =
            cos (Float.pi *. float_of_int ((2 * n) + 1) *. float_of_int k /. 16.0)
          in
          int_of_float (Float.round (64.0 *. c))))

let emit_pass b ~name ~in_stride ~out_stride label =
  Isa.Builder.func b name label (fun () ->
      (* load the 8 inputs into r5..r12 *)
      for n = 0 to 7 do
        Isa.Builder.ins b (Isa.Instr.Ld (reg (5 + n), reg 1, n * in_stride))
      done;
      (* each output: unrolled multiply-accumulate chain *)
      for k = 0 to 7 do
        Isa.Builder.li b (reg 13) 0;
        for n = 0 to 7 do
          let c = coeffs.(k).(n) in
          if c <> 0 then begin
            Isa.Builder.li b (reg 14) c;
            Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 14, reg 14, reg (5 + n)));
            Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 13, reg 13, reg 14))
          end
        done;
        Isa.Builder.ins b (Isa.Instr.Alui (Sra, reg 13, reg 13, 6));
        Isa.Builder.ins b (Isa.Instr.St (reg 13, reg 2, k * out_stride))
      done;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra))

let sad8 b ~name label =
  Isa.Builder.func b name label (fun () ->
      Isa.Builder.li b (reg 15) 0;
      for n = 0 to 7 do
        Isa.Builder.ins b (Isa.Instr.Ld (reg 5, reg 1, n * 4));
        Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 2, n * 4));
        Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 5, reg 5, reg 6));
        Isa.Builder.ins b (Isa.Instr.Alui (Sra, reg 7, reg 5, 31));
        Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 5, reg 5, reg 7));
        Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 5, reg 5, reg 7));
        Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 15, reg 15, reg 5))
      done;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 15, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra))

let emit_block_driver b ~name ~src ~tmp ~dst ~row_pass ~col_pass label =
  Isa.Builder.func b name label (fun () ->
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, -8));
      Isa.Builder.ins b (Isa.Instr.St (Isa.Reg.ra, Isa.Reg.sp, 4));
      let emit_loop src dst shift pass =
        Isa.Builder.ins b (Isa.Instr.St (Isa.Reg.zero, Isa.Reg.sp, 0));
        let loop = Isa.Builder.label b in
        Isa.Builder.ins b (Isa.Instr.Ld (reg 5, Isa.Reg.sp, 0));
        Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 6, reg 5, shift));
        Isa.Builder.li b (reg 1) src;
        Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 1, reg 6));
        Isa.Builder.li b (reg 2) dst;
        Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 6));
        Isa.Builder.jal b pass;
        Isa.Builder.ins b (Isa.Instr.Ld (reg 5, Isa.Reg.sp, 0));
        Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, 1));
        Isa.Builder.ins b (Isa.Instr.St (reg 5, Isa.Reg.sp, 0));
        Isa.Builder.li b (reg 6) 8;
        Isa.Builder.br b Ne (reg 5) (reg 6) loop
      in
      emit_loop src tmp 5 row_pass;
      emit_loop tmp dst 2 col_pass;
      Isa.Builder.ins b (Isa.Instr.Ld (Isa.Reg.ra, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra))
