(** Emitter for unrolled 8-point DCT passes.

    Real fixed-point DCT-II arithmetic (coefficients scaled by 64,
    accumulator renormalised by an arithmetic shift), fully unrolled the
    way performance-tuned codecs ship it — which is exactly what gives
    MPEG- and JPEG-class programs their large hot code footprints. Used
    by the mpeg2enc and cjpeg workloads. *)

val zigzag : int array
(** The canonical zigzag scan order of an 8x8 coefficient block. *)

val emit_pass :
  Isa.Builder.t ->
  name:string ->
  in_stride:int ->
  out_stride:int ->
  Isa.Builder.label ->
  unit
(** Emit a procedure transforming 8 32-bit values: r1 = source base,
    r2 = destination base (distinct buffers), elements [in_stride] /
    [out_stride] bytes apart. Clobbers r5-r15. Roughly 250
    instructions (~1 KB). *)

val emit_block_driver :
  Isa.Builder.t ->
  name:string ->
  src:int ->
  tmp:int ->
  dst:int ->
  row_pass:Isa.Builder.label ->
  col_pass:Isa.Builder.label ->
  Isa.Builder.label ->
  unit
(** Emit a procedure running a full 2-D 8x8 transform: 8 row passes
    [src] -> [tmp], then 8 column passes [tmp] -> [dst]. The buffers
    are fixed data addresses (64 words each). Non-leaf; keeps its loop
    counter in its frame because the passes clobber r5-r15. *)

val sad8 :
  Isa.Builder.t -> name:string -> Isa.Builder.label -> unit
(** Emit a procedure computing the sum of absolute differences of two
    8-word vectors: r1 = base a, r2 = base b -> r2 = SAD. Unrolled. *)
