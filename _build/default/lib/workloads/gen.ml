type rng = { mutable s : int }

let rng seed = { s = (if seed = 0 then 0x9E3779B9 else seed land 0x3FFFFFFF) }

let next r =
  let x = r.s in
  let x = x lxor (x lsl 13) land 0x3FFFFFFF in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) land 0x3FFFFFFF in
  r.s <- x;
  x

let range r n =
  if n <= 0 then invalid_arg "Gen.range";
  next r mod n

let reg = Isa.Reg.r

let prologue b =
  Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, -8));
  Isa.Builder.ins b (Isa.Instr.St (Isa.Reg.ra, Isa.Reg.sp, 4))

let epilogue b =
  Isa.Builder.ins b (Isa.Instr.Ld (Isa.Reg.ra, Isa.Reg.sp, 4));
  Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, 8));
  Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra)

(* One random ALU operation over the working registers. Division is
   avoided (fault risk); multiplication is rationed (cost). *)
let emit_mix_op b r regs acc =
  let pick () = regs.(range r (Array.length regs)) in
  let dst = pick () and src = pick () in
  match range r 8 with
  | 0 -> Isa.Builder.ins b (Isa.Instr.Alu (Add, dst, src, acc))
  | 1 -> Isa.Builder.ins b (Isa.Instr.Alu (Xor, dst, dst, src))
  | 2 -> Isa.Builder.ins b (Isa.Instr.Alui (Add, dst, src, range r 256 - 128))
  | 3 -> Isa.Builder.ins b (Isa.Instr.Alui (Sll, dst, src, 1 + range r 4))
  | 4 -> Isa.Builder.ins b (Isa.Instr.Alui (Srl, dst, src, 1 + range r 8))
  | 5 -> Isa.Builder.ins b (Isa.Instr.Alu (Sub, dst, acc, src))
  | 6 -> Isa.Builder.ins b (Isa.Instr.Alui (Xor, dst, src, range r 4096))
  | _ -> Isa.Builder.ins b (Isa.Instr.Alu (Or, dst, dst, src))

(* A data-dependent forward skip over a few operations. *)
let emit_skip b r regs acc =
  let skip = Isa.Builder.new_label b in
  let t = regs.(range r (Array.length regs)) in
  Isa.Builder.ins b (Isa.Instr.Alui (And, reg 12, t, 1 + range r 3));
  Isa.Builder.br b Ne (reg 12) Isa.Reg.zero skip;
  for _ = 0 to 1 + range r 2 do
    emit_mix_op b r regs acc
  done;
  Isa.Builder.here b skip

(* A short counted loop. *)
let emit_mini_loop b r regs acc =
  let n = 2 + range r 4 in
  Isa.Builder.li b (reg 13) n;
  let top = Isa.Builder.label b in
  for _ = 0 to range r 2 do
    emit_mix_op b r regs acc
  done;
  Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 13, reg 13, -1));
  Isa.Builder.br b Ne (reg 13) Isa.Reg.zero top

let stage_functions b r ~prefix ~state_addr ~count ~body_instrs =
  let labels = Array.init count (fun _ -> Isa.Builder.new_label b) in
  Array.iteri
    (fun i l ->
      Isa.Builder.func b (Printf.sprintf "%s%d" prefix i) l (fun () ->
          let regs = [| reg 1; reg 6; reg 7; reg 8; reg 9; reg 10 |] in
          let acc = reg 1 in
          Isa.Builder.li b (reg 5) (state_addr + (8 * i));
          Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
          Isa.Builder.ins b (Isa.Instr.Ld (reg 7, reg 5, 4));
          let budget = ref body_instrs in
          while !budget > 0 do
            (match range r 10 with
            | 0 | 1 ->
              emit_skip b r regs acc;
              budget := !budget - 6
            | 2 ->
              emit_mini_loop b r regs acc;
              budget := !budget - 5
            | _ ->
              emit_mix_op b r regs acc;
              decr budget)
          done;
          (* fold the temporaries back into state and the result *)
          Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 6, reg 6, reg 9));
          Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 7, reg 7, reg 10));
          Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
          Isa.Builder.ins b (Isa.Instr.St (reg 7, reg 5, 4));
          Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 1, reg 8));
          Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 2, reg 2, reg 6));
          Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra)))
    labels;
  labels

let call_stages b labels =
  Array.iter
    (fun l ->
      Isa.Builder.jal b l;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 2, Isa.Reg.zero)))
    labels

let cold_functions b r ~prefix ~count ~body_instrs =
  let labels = Array.init count (fun _ -> Isa.Builder.new_label b) in
  Array.iteri
    (fun i l ->
      Isa.Builder.func b (Printf.sprintf "%s%d" prefix i) l (fun () ->
          let regs = [| reg 5; reg 6; reg 7; reg 8; reg 9 |] in
          Isa.Builder.li b (reg 5) (next r land 0xFFFF);
          for _ = 2 to body_instrs do
            emit_mix_op b r regs (reg 5)
          done;
          Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 5, reg 9));
          Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra)))
    labels;
  labels

let pad_cold_to b r ~prefix ~target_bytes =
  let i = ref 0 in
  while Isa.Builder.code_size_bytes b < target_bytes - 200 do
    let body = 30 + range r 40 in
    ignore
      (cold_functions b r
         ~prefix:(Printf.sprintf "%s_%d_" prefix !i)
         ~count:1 ~body_instrs:body);
    incr i
  done

let fill_xorshift b ~buf_addr ~bytes ~seed =
  Isa.Builder.li b (reg 5) buf_addr;
  Isa.Builder.li b (reg 6) (buf_addr + bytes);
  Isa.Builder.li b (reg 7) seed;
  let top = Isa.Builder.label b in
  (* xorshift step *)
  Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 8, reg 7, 13));
  Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 7, reg 7, reg 8));
  Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 8, reg 7, 17));
  Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 7, reg 7, reg 8));
  Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 8, reg 7, 5));
  Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 7, reg 7, reg 8));
  (* bias towards few distinct bytes so the data compresses *)
  Isa.Builder.ins b (Isa.Instr.Alui (And, reg 9, reg 7, 0x0F));
  Isa.Builder.ins b (Isa.Instr.Alui (And, reg 8, reg 7, 0x300));
  Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 8, reg 8, 4));
  Isa.Builder.ins b (Isa.Instr.Alu (Or, reg 9, reg 9, reg 8));
  Isa.Builder.ins b (Isa.Instr.Stb (reg 9, reg 5, 0));
  Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, 1));
  Isa.Builder.br b Ne (reg 5) (reg 6) top
