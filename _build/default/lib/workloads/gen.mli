(** Shared machinery for the synthetic workload suite.

    The paper evaluates on 129.compress (SPEC95), MediaBench codecs and
    local applications. Those binaries and inputs are not available
    here, so each workload is a synthetic ERISC program whose *code
    shape* is controlled: a hand-written semantic kernel (real LZW
    hashing, real ADPCM quantisation, real DCT arithmetic, ...) plus
    generated hot "stage" procedures that bulk the steady-state working
    set to the intended size, plus generated cold library code that
    sets the static footprint. All generation is driven by a seeded
    deterministic PRNG, so images are reproducible and executions are
    checkable against native runs.

    Register convention used by all workloads: r1-r4 arguments and
    results, r5-r15 caller-saved temporaries, r16-r23 callee-saved,
    r24-r29 workload globals, [sp]/[ra] as architected. *)

type rng

val rng : int -> rng
(** Seeded xorshift generator. *)

val next : rng -> int
(** Next 30-bit non-negative value. *)

val range : rng -> int -> int
(** [range r n] is uniform-ish in [0, n). [n > 0]. *)

val prologue : Isa.Builder.t -> unit
(** Non-leaf function entry: push [ra] (8-byte frame). *)

val epilogue : Isa.Builder.t -> unit
(** Pop [ra] and return. *)

val stage_functions :
  Isa.Builder.t ->
  rng ->
  prefix:string ->
  state_addr:int ->
  count:int ->
  body_instrs:int ->
  Isa.Builder.label array
(** Generate [count] hot leaf procedures named [prefix0..]. Each takes
    a value in r1, mixes it with two words of per-stage state at
    [state_addr + 8*i] through ~[body_instrs] ALU operations seasoned
    with data-dependent forward branches and small counted loops, and
    returns the mixed value in r2. The state reads/writes make stages
    genuine dataflow, not dead code. *)

val call_stages :
  Isa.Builder.t -> Isa.Builder.label array -> unit
(** Emit direct calls to every stage in order, threading r2 back into
    r1 — the "wide hot loop body" pattern that sets a workload's
    steady-state footprint. Caller must have pushed [ra]. *)

val cold_functions :
  Isa.Builder.t ->
  rng ->
  prefix:string ->
  count:int ->
  body_instrs:int ->
  Isa.Builder.label array
(** Generate cold leaf procedures (straight-line arithmetic on
    temporaries, no memory traffic). They exist to give images
    realistic static footprints; callers may invoke a few during
    initialisation so that "cold" is not "dead". *)

val pad_cold_to :
  Isa.Builder.t -> rng -> prefix:string -> target_bytes:int -> unit
(** Append cold functions until the text segment reaches
    [target_bytes] (approximately; it never overshoots by more than
    one small function). *)

val fill_xorshift :
  Isa.Builder.t -> buf_addr:int -> bytes:int -> seed:int -> unit
(** Emit an initialisation loop that fills a byte buffer with a
    deterministic xorshift sequence, byte-reduced with a bias that
    creates repetitions (compressible data). Clobbers r5-r9. *)
