let name = "gzip"

let reg = Isa.Reg.r
let hsize = 512
let hmask = hsize - 1
let wsize = 2048 (* prev-chain table entries *)
let wmask = wsize - 1
let window = 4096
let max_match = 64
let max_chain = 8

let image ?(input_bytes = 16 * 1024) ?(app_bytes = 4800)
    ?(static_bytes = 20 * 1024) () =
  let b = Isa.Builder.create "gzip" in
  let r = Gen.rng 0x621B5 in
  let input = Isa.Builder.space b (input_bytes + 8) in
  let head = Isa.Builder.space b (hsize * 4) in
  let prev = Isa.Builder.space b (wsize * 4) in
  let var_cksum = Isa.Builder.word b 0 in
  let var_lits = Isa.Builder.word b 0 in
  let var_matches = Isa.Builder.word b 0 in
  let var_matched_bytes = Isa.Builder.word b 0 in
  let l_main = Isa.Builder.new_label b in
  let l_init = Isa.Builder.new_label b in
  let l_matchlen = Isa.Builder.new_label b in
  let l_emit = Isa.Builder.new_label b in
  let l_deflate = Isa.Builder.new_label b in
  let l_stats = Isa.Builder.new_label b in
  Isa.Builder.entry b l_main;

  (* --- match length: r1 = addr a, r2 = addr b -> r2 = common prefix
         length, capped at max_match. Clobbers r5-r7. --- *)
  Isa.Builder.func b "gz_match_len" l_matchlen (fun () ->
      Isa.Builder.li b (reg 5) 0;
      let loop = Isa.Builder.label b in
      let fin = Isa.Builder.new_label b in
      Isa.Builder.ins b (Isa.Instr.Ldb (reg 6, reg 1, 0));
      Isa.Builder.ins b (Isa.Instr.Ldb (reg 7, reg 2, 0));
      Isa.Builder.br b Ne (reg 6) (reg 7) fin;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, 1));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, 1));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 2, reg 2, 1));
      Isa.Builder.li b (reg 6) max_match;
      Isa.Builder.br b Ne (reg 5) (reg 6) loop;
      Isa.Builder.here b fin;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 5, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- emit token: r1 = tag (0 literal / 1 match), r2 = a, r3 = b.
         Folds into the checksum and counters. Clobbers r5-r8. --- *)
  Isa.Builder.func b "gz_emit" l_emit (fun () ->
      Isa.Builder.li b (reg 5) var_cksum;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.li b (reg 7) 131;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 6, reg 6, reg 7));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 6, reg 6, reg 2));
      Isa.Builder.li b (reg 7) 7;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 8, reg 3, reg 7));
      Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 6, reg 6, reg 8));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 6, reg 6, reg 1));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      let is_match = Isa.Builder.new_label b in
      let fin = Isa.Builder.new_label b in
      Isa.Builder.br b Ne (reg 1) Isa.Reg.zero is_match;
      Isa.Builder.li b (reg 5) var_lits;
      Isa.Builder.jmp b fin;
      Isa.Builder.here b is_match;
      Isa.Builder.li b (reg 5) var_matches;
      Isa.Builder.here b fin;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 6, reg 6, 1));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- the deflate kernel --- *)
  Isa.Builder.func b "deflate_run" l_deflate (fun () ->
      Gen.prologue b;
      Isa.Builder.li b (reg 16) 0 (* pos *);
      Isa.Builder.li b (reg 17) (input_bytes - 2) (* limit *);
      Isa.Builder.li b (reg 18) input;
      let loop = Isa.Builder.label b in
      let fin = Isa.Builder.new_label b in
      Isa.Builder.br b Ge (reg 16) (reg 17) fin;
      (* rolling hash of 3 bytes *)
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 18, reg 16));
      Isa.Builder.ins b (Isa.Instr.Ldb (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Ldb (reg 7, reg 5, 1));
      Isa.Builder.ins b (Isa.Instr.Ldb (reg 8, reg 5, 2));
      Isa.Builder.li b (reg 9) 131;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 9, reg 9, reg 6));
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 10, reg 7, 5));
      Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 9, reg 9, reg 10));
      Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 9, reg 9, reg 8));
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 9, reg 9, hmask));
      (* candidate = head[h] - 1; install pos *)
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 9, reg 9, 2));
      Isa.Builder.li b (reg 10) head;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 9, reg 9, reg 10));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 19, reg 9, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 19, reg 19, -1));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 16, 1));
      Isa.Builder.ins b (Isa.Instr.St (reg 5, reg 9, 0));
      (* prev[pos & wmask] = old candidate + 1 *)
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 5, reg 16, wmask));
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 5, reg 5, 2));
      Isa.Builder.li b (reg 10) prev;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 5, reg 10));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 6, reg 19, 1));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      (* chain walk *)
      Isa.Builder.li b (reg 20) 0 (* best length *);
      Isa.Builder.li b (reg 21) max_chain;
      let chain = Isa.Builder.label b in
      let chain_done = Isa.Builder.new_label b in
      Isa.Builder.br b Lt (reg 19) Isa.Reg.zero chain_done;
      Isa.Builder.br b Eq (reg 21) Isa.Reg.zero chain_done;
      (* window check: pos - cand <= window *)
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 5, reg 16, reg 19));
      Isa.Builder.li b (reg 6) window;
      let in_window = Isa.Builder.new_label b in
      Isa.Builder.br b Lt (reg 5) (reg 6) in_window;
      Isa.Builder.jmp b chain_done;
      Isa.Builder.here b in_window;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 18, reg 19));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 18, reg 16));
      Isa.Builder.jal b l_matchlen;
      let not_better = Isa.Builder.new_label b in
      Isa.Builder.br b Ge (reg 20) (reg 2) not_better;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 20, reg 2, Isa.Reg.zero));
      Isa.Builder.here b not_better;
      (* next candidate *)
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 5, reg 19, wmask));
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 5, reg 5, 2));
      Isa.Builder.li b (reg 10) prev;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 5, reg 10));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 19, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 19, reg 19, -1));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 21, reg 21, -1));
      Isa.Builder.jmp b chain;
      Isa.Builder.here b chain_done;
      (* match or literal? *)
      let literal = Isa.Builder.new_label b in
      let advanced = Isa.Builder.new_label b in
      Isa.Builder.li b (reg 5) 3;
      Isa.Builder.br b Lt (reg 20) (reg 5) literal;
      Isa.Builder.li b (reg 1) 1;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 20, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 3, reg 16, Isa.Reg.zero));
      Isa.Builder.jal b l_emit;
      (* matched bytes counter *)
      Isa.Builder.li b (reg 5) var_matched_bytes;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 6, reg 6, reg 20));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 16, reg 16, reg 20));
      Isa.Builder.jmp b advanced;
      Isa.Builder.here b literal;
      Isa.Builder.li b (reg 1) 0;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 18, reg 16));
      Isa.Builder.ins b (Isa.Instr.Ldb (reg 2, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 3, reg 16, Isa.Reg.zero));
      Isa.Builder.jal b l_emit;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 16, reg 16, 1));
      Isa.Builder.here b advanced;
      Isa.Builder.jmp b loop;
      Isa.Builder.here b fin;
      Gen.epilogue b);

  Isa.Builder.func b "init_input" l_init (fun () ->
      Gen.fill_xorshift b ~buf_addr:input ~bytes:input_bytes ~seed:0x5EED6;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  Isa.Builder.func b "print_stats" l_stats (fun () ->
      List.iter
        (fun v ->
          Isa.Builder.li b (reg 5) v;
          Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
          Isa.Builder.ins b (Isa.Instr.Out (reg 6)))
        [ var_cksum; var_lits; var_matches; var_matched_bytes ];
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  Isa.Builder.func b "main" l_main (fun () ->
      Isa.Builder.jal b l_init;
      Isa.Builder.jal b l_deflate;
      Isa.Builder.jal b l_stats;
      Isa.Builder.ins b Isa.Instr.Halt);

  Gen.pad_cold_to b r ~prefix:"app_cold" ~target_bytes:app_bytes;
  Gen.pad_cold_to b r ~prefix:"libc_pad" ~target_bytes:static_bytes;
  Isa.Builder.build b
