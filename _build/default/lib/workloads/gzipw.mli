(** gzip-like workload (ARM prototype benchmark).

    A real greedy LZ77 deflate front-end: a 3-byte rolling hash into a
    head table, hash-chain candidate walking through a prev table,
    match extension against a 4 KB window, and (literal | match)
    emission folded into running checksums. The hot set is the match
    finder; Fig. 9 reports its footprint at ≈ 0.09 of the application
    text. *)

val name : string

val image :
  ?input_bytes:int -> ?app_bytes:int -> ?static_bytes:int -> unit ->
  Isa.Image.t
(** Defaults: 16 KB of compressible input, ≈ 4.8 KB application text,
    ≈ 20 KB total static text. *)
