let name = "hextobdd"

let reg = Isa.Reg.r
let node_cap = 4096
let hsize = 4096
let hmask = hsize - 1
let msize = 1024
let mmask = msize - 1

(* Terminals are node indices 0 (FALSE) and 1 (TRUE); arena slots hold
   nodes with index >= 2. *)
let image ?(vars = 12) ?(ops = 2600) ?(stages = 20)
    ?(static_bytes = 58 * 1024) () =
  let b = Isa.Builder.create "hextobdd" in
  let r = Gen.rng 0xB0DD5 in
  let arena = Isa.Builder.space b (node_cap * 12) in
  let unique = Isa.Builder.space b (hsize * 4) in
  let memo = Isa.Builder.space b (msize * 16) in
  let varnodes = Isa.Builder.space b (vars * 4) in
  let ring = Isa.Builder.space b (8 * 4) in
  let state = Isa.Builder.space b (stages * 8) in
  let var_next = Isa.Builder.word b 2 in
  let var_cksum = Isa.Builder.word b 0 in
  let l_main = Isa.Builder.new_label b in
  let l_mk = Isa.Builder.new_label b in
  let l_apply = Isa.Builder.new_label b in
  let l_clear_memo = Isa.Builder.new_label b in
  let l_checksum = Isa.Builder.new_label b in
  Isa.Builder.entry b l_main;

  let stage_labels =
    Gen.stage_functions b r ~prefix:"an_stage" ~state_addr:state
      ~count:stages ~body_instrs:55
  in

  (* arena field address of node r_idx into r_dst (clobbers r_dst) *)
  let arena_addr r_dst r_idx =
    Isa.Builder.ins b (Isa.Instr.Alui (Add, r_dst, r_idx, -2));
    Isa.Builder.li b (reg 15) 12;
    Isa.Builder.ins b (Isa.Instr.Alu (Mul, r_dst, r_dst, reg 15));
    Isa.Builder.li b (reg 15) arena;
    Isa.Builder.ins b (Isa.Instr.Alu (Add, r_dst, r_dst, reg 15))
  in

  (* --- mk_node: r1 = var, r2 = lo, r3 = hi -> r2 = node index.
         Hash-consing through the unique table. Clobbers r5-r15. --- *)
  Isa.Builder.func b "mk_node" l_mk (fun () ->
      let ret = Isa.Builder.new_label b in
      (* reduction rule: lo = hi -> lo *)
      let reduce = Isa.Builder.new_label b in
      Isa.Builder.br b Eq (reg 2) (reg 3) reduce;
      (* h = (var*31 + lo*7 + hi*131071) & hmask *)
      Isa.Builder.li b (reg 5) 31;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 5, reg 5, reg 1));
      Isa.Builder.li b (reg 6) 7;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 6, reg 6, reg 2));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 5, reg 6));
      Isa.Builder.li b (reg 6) 131071;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 6, reg 6, reg 3));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 5, reg 6));
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 5, reg 5, hmask));
      let probe = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 6, reg 5, 2));
      Isa.Builder.li b (reg 7) unique;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 6, reg 6, reg 7));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 8, reg 6, 0));
      let empty = Isa.Builder.new_label b in
      Isa.Builder.br b Eq (reg 8) Isa.Reg.zero empty;
      (* match? *)
      arena_addr (reg 9) (reg 8);
      Isa.Builder.ins b (Isa.Instr.Ld (reg 10, reg 9, 0));
      let next_probe = Isa.Builder.new_label b in
      Isa.Builder.br b Ne (reg 10) (reg 1) next_probe;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 10, reg 9, 4));
      Isa.Builder.br b Ne (reg 10) (reg 2) next_probe;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 10, reg 9, 8));
      Isa.Builder.br b Ne (reg 10) (reg 3) next_probe;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 8, Isa.Reg.zero));
      Isa.Builder.jmp b ret;
      Isa.Builder.here b next_probe;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, 1));
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 5, reg 5, hmask));
      Isa.Builder.jmp b probe;
      Isa.Builder.here b empty;
      (* allocate a fresh node, or degrade to lo when the arena is
         full (deterministic, keeps long runs bounded) *)
      Isa.Builder.li b (reg 9) var_next;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 10, reg 9, 0));
      Isa.Builder.li b (reg 11) node_cap;
      let room = Isa.Builder.new_label b in
      Isa.Builder.br b Lt (reg 10) (reg 11) room;
      Isa.Builder.jmp b ret (* r2 already = lo *);
      Isa.Builder.here b room;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 11, reg 10, 1));
      Isa.Builder.ins b (Isa.Instr.St (reg 11, reg 9, 0));
      Isa.Builder.ins b (Isa.Instr.St (reg 10, reg 6, 0));
      arena_addr (reg 9) (reg 10);
      Isa.Builder.ins b (Isa.Instr.St (reg 1, reg 9, 0));
      Isa.Builder.ins b (Isa.Instr.St (reg 2, reg 9, 4));
      Isa.Builder.ins b (Isa.Instr.St (reg 3, reg 9, 8));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 10, Isa.Reg.zero));
      Isa.Builder.jmp b ret;
      Isa.Builder.here b reduce;
      (* r2 already = lo *)
      Isa.Builder.here b ret;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- bdd_apply: r1 = op (0 and, 1 or, 2 xor), r2 = u, r3 = v ->
         r2 = result. Recursive with memoisation. --- *)
  Isa.Builder.func b "bdd_apply" l_apply (fun () ->
      let ret = Isa.Builder.new_label b in
      let terminal_done = Isa.Builder.new_label b in
      (* terminal case: both u and v constant *)
      let not_terminal = Isa.Builder.new_label b in
      Isa.Builder.li b (reg 5) 2;
      Isa.Builder.br b Ge (reg 2) (reg 5) not_terminal;
      Isa.Builder.br b Ge (reg 3) (reg 5) not_terminal;
      let op_or = Isa.Builder.new_label b in
      let op_xor = Isa.Builder.new_label b in
      Isa.Builder.br b Eq (reg 1) (reg 5) op_xor;
      Isa.Builder.li b (reg 6) 1;
      Isa.Builder.br b Eq (reg 1) (reg 6) op_or;
      Isa.Builder.ins b (Isa.Instr.Alu (And, reg 2, reg 2, reg 3));
      Isa.Builder.jmp b terminal_done;
      Isa.Builder.here b op_or;
      Isa.Builder.ins b (Isa.Instr.Alu (Or, reg 2, reg 2, reg 3));
      Isa.Builder.jmp b terminal_done;
      Isa.Builder.here b op_xor;
      Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 2, reg 2, reg 3));
      Isa.Builder.here b terminal_done;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra);
      Isa.Builder.here b not_terminal;
      (* memo probe: slot = (op*3 + u*97 + v*89) & mmask *)
      Isa.Builder.li b (reg 5) 97;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 5, reg 5, reg 2));
      Isa.Builder.li b (reg 6) 89;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 6, reg 6, reg 3));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 5, reg 6));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 5, reg 1));
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 5, reg 5, mmask));
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 5, reg 5, 4));
      Isa.Builder.li b (reg 6) memo;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 5, reg 6));
      (* entry: [op+1; u; v; res] *)
      Isa.Builder.ins b (Isa.Instr.Ld (reg 7, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 8, reg 1, 1));
      let memo_miss = Isa.Builder.new_label b in
      Isa.Builder.br b Ne (reg 7) (reg 8) memo_miss;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 7, reg 5, 4));
      Isa.Builder.br b Ne (reg 7) (reg 2) memo_miss;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 7, reg 5, 8));
      Isa.Builder.br b Ne (reg 7) (reg 3) memo_miss;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 2, reg 5, 12));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra);
      Isa.Builder.here b memo_miss;
      (* frame: ra, op, u, v, m, rlo, memo slot *)
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, -28));
      Isa.Builder.ins b (Isa.Instr.St (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.St (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.St (reg 2, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.St (reg 3, Isa.Reg.sp, 12));
      Isa.Builder.ins b (Isa.Instr.St (reg 5, Isa.Reg.sp, 24));
      (* vu / vv, 9999 for terminals *)
      let vu_done = Isa.Builder.new_label b in
      Isa.Builder.li b (reg 9) 9999;
      Isa.Builder.li b (reg 5) 2;
      Isa.Builder.br b Lt (reg 2) (reg 5) vu_done;
      arena_addr (reg 9) (reg 2);
      Isa.Builder.ins b (Isa.Instr.Ld (reg 9, reg 9, 0));
      Isa.Builder.here b vu_done;
      let vv_done = Isa.Builder.new_label b in
      Isa.Builder.li b (reg 10) 9999;
      Isa.Builder.br b Lt (reg 3) (reg 5) vv_done;
      arena_addr (reg 10) (reg 3);
      Isa.Builder.ins b (Isa.Instr.Ld (reg 10, reg 10, 0));
      Isa.Builder.here b vv_done;
      (* m = min(vu, vv) *)
      let m_done = Isa.Builder.new_label b in
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 11, reg 9, Isa.Reg.zero));
      Isa.Builder.br b Ge (reg 10) (reg 9) m_done;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 11, reg 10, Isa.Reg.zero));
      Isa.Builder.here b m_done;
      Isa.Builder.ins b (Isa.Instr.St (reg 11, Isa.Reg.sp, 16));
      (* cofactors of u into r12 (lo), r13 (hi) *)
      let u_cof_done = Isa.Builder.new_label b in
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 12, reg 2, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 13, reg 2, Isa.Reg.zero));
      Isa.Builder.br b Ne (reg 9) (reg 11) u_cof_done;
      arena_addr (reg 14) (reg 2);
      Isa.Builder.ins b (Isa.Instr.Ld (reg 12, reg 14, 4));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 13, reg 14, 8));
      Isa.Builder.here b u_cof_done;
      (* cofactors of v into r9 (lo), r14 (hi); vv still in r10 *)
      let v_cof_done = Isa.Builder.new_label b in
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 9, reg 3, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 14, reg 3, Isa.Reg.zero));
      Isa.Builder.br b Ne (reg 10) (reg 11) v_cof_done;
      arena_addr (reg 5) (reg 3);
      Isa.Builder.ins b (Isa.Instr.Ld (reg 9, reg 5, 4));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 14, reg 5, 8));
      Isa.Builder.here b v_cof_done;
      (* stash the hi cofactors in the callee half of the frame:
         recurse on (lo_u, lo_v) *)
      Isa.Builder.ins b (Isa.Instr.St (reg 13, Isa.Reg.sp, 20) (* hi_u *));
      (* rlo = apply(op, lo_u, lo_v); hi_v must survive: keep it in the
         memo-slot frame word temporarily *)
      Isa.Builder.ins b (Isa.Instr.Ld (reg 5, Isa.Reg.sp, 24));
      Isa.Builder.ins b (Isa.Instr.St (reg 14, Isa.Reg.sp, 24));
      Isa.Builder.ins b (Isa.Instr.St (reg 5, Isa.Reg.sp, 16));
      (* NOTE: frame word 16 now holds the memo slot; m is recomputed
         from the saved operands after the recursions *)
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 12, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 3, reg 9, Isa.Reg.zero));
      Isa.Builder.jal b l_apply;
      (* rhi = apply(op, hi_u, hi_v) *)
      Isa.Builder.ins b (Isa.Instr.Ld (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 5, Isa.Reg.sp, 20));
      Isa.Builder.ins b (Isa.Instr.St (reg 2, Isa.Reg.sp, 20) (* rlo *));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 3, Isa.Reg.sp, 24) (* hi_v *));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 5, Isa.Reg.zero));
      Isa.Builder.jal b l_apply;
      (* m: recompute min var of the saved operands *)
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, Isa.Reg.sp, 8) (* u *));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 7, Isa.Reg.sp, 12) (* v *));
      let vu2_done = Isa.Builder.new_label b in
      Isa.Builder.li b (reg 9) 9999;
      Isa.Builder.li b (reg 5) 2;
      Isa.Builder.br b Lt (reg 6) (reg 5) vu2_done;
      arena_addr (reg 9) (reg 6);
      Isa.Builder.ins b (Isa.Instr.Ld (reg 9, reg 9, 0));
      Isa.Builder.here b vu2_done;
      let vv2_done = Isa.Builder.new_label b in
      Isa.Builder.li b (reg 10) 9999;
      Isa.Builder.br b Lt (reg 7) (reg 5) vv2_done;
      arena_addr (reg 10) (reg 7);
      Isa.Builder.ins b (Isa.Instr.Ld (reg 10, reg 10, 0));
      Isa.Builder.here b vv2_done;
      let m2_done = Isa.Builder.new_label b in
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 9, Isa.Reg.zero));
      Isa.Builder.br b Ge (reg 10) (reg 9) m2_done;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 10, Isa.Reg.zero));
      Isa.Builder.here b m2_done;
      (* r = mk_node(m, rlo, rhi) *)
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 3, reg 2, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 2, Isa.Reg.sp, 20));
      Isa.Builder.jal b l_mk;
      (* memo insert *)
      Isa.Builder.ins b (Isa.Instr.Ld (reg 5, Isa.Reg.sp, 16));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 6, reg 6, 1));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 4));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, Isa.Reg.sp, 12));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 8));
      Isa.Builder.ins b (Isa.Instr.St (reg 2, reg 5, 12));
      Isa.Builder.ins b (Isa.Instr.Ld (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, 28));
      Isa.Builder.here b ret;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- clear_memo --- *)
  Isa.Builder.func b "clear_memo" l_clear_memo (fun () ->
      Isa.Builder.li b (reg 5) memo;
      Isa.Builder.li b (reg 6) (memo + (msize * 16));
      let top = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.St (Isa.Reg.zero, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, 16));
      Isa.Builder.br b Ne (reg 5) (reg 6) top;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- checksum walk over the arena --- *)
  Isa.Builder.func b "arena_checksum" l_checksum (fun () ->
      Isa.Builder.li b (reg 5) var_next;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 5, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, -2));
      Isa.Builder.li b (reg 6) arena;
      Isa.Builder.li b (reg 7) 0;
      let top = Isa.Builder.label b in
      let fin = Isa.Builder.new_label b in
      Isa.Builder.br b Eq (reg 5) Isa.Reg.zero fin;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 8, reg 6, 0));
      Isa.Builder.li b (reg 9) 5;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 7, reg 7, reg 9));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 7, reg 7, reg 8));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 8, reg 6, 4));
      Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 7, reg 7, reg 8));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 8, reg 6, 8));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 7, reg 7, reg 8));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 6, reg 6, 12));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, -1));
      Isa.Builder.jmp b top;
      Isa.Builder.here b fin;
      Isa.Builder.li b (reg 5) var_cksum;
      Isa.Builder.ins b (Isa.Instr.St (reg 7, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- main --- *)
  Isa.Builder.func b "main" l_main (fun () ->
      Isa.Builder.jal b l_clear_memo;
      (* build variable nodes: mk_node(i, 0, 1) *)
      Isa.Builder.li b (reg 16) 0;
      let vloop = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 16, Isa.Reg.zero));
      Isa.Builder.li b (reg 2) 0;
      Isa.Builder.li b (reg 3) 1;
      Isa.Builder.jal b l_mk;
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 5, reg 16, 2));
      Isa.Builder.li b (reg 6) varnodes;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 5, reg 6));
      Isa.Builder.ins b (Isa.Instr.St (reg 2, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 16, reg 16, 1));
      Isa.Builder.li b (reg 5) vars;
      Isa.Builder.br b Ne (reg 16) (reg 5) vloop;
      (* f = x0; ring primed with x0 *)
      Isa.Builder.li b (reg 5) varnodes;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 17, reg 5, 0));
      Isa.Builder.li b (reg 5) ring;
      Isa.Builder.li b (reg 6) (ring + 32);
      let prime = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.St (reg 17, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, 4));
      Isa.Builder.br b Ne (reg 5) (reg 6) prime;
      (* operation loop *)
      Isa.Builder.li b (reg 16) 1 (* i *);
      let oloop = Isa.Builder.label b in
      (* op = i mod 3 *)
      Isa.Builder.li b (reg 5) 3;
      Isa.Builder.ins b (Isa.Instr.Alu (Div, reg 6, reg 16, reg 5));
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 6, reg 6, reg 5));
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 1, reg 16, reg 6));
      (* g: odd i -> variable node, even i -> ring entry *)
      let from_ring = Isa.Builder.new_label b in
      let g_done = Isa.Builder.new_label b in
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 5, reg 16, 1));
      Isa.Builder.br b Eq (reg 5) Isa.Reg.zero from_ring;
      Isa.Builder.li b (reg 5) vars;
      Isa.Builder.ins b (Isa.Instr.Alu (Div, reg 6, reg 16, reg 5));
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 6, reg 6, reg 5));
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 6, reg 16, reg 6));
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 6, reg 6, 2));
      Isa.Builder.li b (reg 5) varnodes;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 6, reg 6, reg 5));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 3, reg 6, 0));
      Isa.Builder.jmp b g_done;
      Isa.Builder.here b from_ring;
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 6, reg 16, 28));
      Isa.Builder.li b (reg 5) ring;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 6, reg 6, reg 5));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 3, reg 6, 0));
      Isa.Builder.here b g_done;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 17, Isa.Reg.zero));
      Isa.Builder.jal b l_apply;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 17, reg 2, Isa.Reg.zero));
      (* ring[i & 7] = f *)
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 5, reg 16, 28));
      Isa.Builder.li b (reg 6) ring;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 5, reg 6));
      Isa.Builder.ins b (Isa.Instr.St (reg 17, reg 5, 0));
      (* analysis stages over the node index *)
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 17, Isa.Reg.zero));
      Gen.call_stages b stage_labels;
      (* periodic memo flush *)
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 5, reg 16, 31));
      let no_flush = Isa.Builder.new_label b in
      Isa.Builder.br b Ne (reg 5) Isa.Reg.zero no_flush;
      Isa.Builder.jal b l_clear_memo;
      Isa.Builder.here b no_flush;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 16, reg 16, 1));
      Isa.Builder.li b (reg 5) ops;
      Isa.Builder.br b Ne (reg 16) (reg 5) oloop;
      (* final checksum *)
      Isa.Builder.jal b l_checksum;
      Isa.Builder.li b (reg 5) var_cksum;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Out (reg 6));
      Isa.Builder.ins b (Isa.Instr.Out (reg 17));
      Isa.Builder.li b (reg 5) var_next;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Out (reg 6));
      Isa.Builder.ins b Isa.Instr.Halt);

  Gen.pad_cold_to b r ~prefix:"libc_pad" ~target_bytes:static_bytes;
  Isa.Builder.build b
