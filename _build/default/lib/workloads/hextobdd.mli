(** hextobdd-like workload — graph manipulation.

    The paper's "local graph manipulation application" is reproduced as
    a genuine BDD package: an arena of (var, lo, hi) nodes, a
    hash-consing table (unique table), a memoised recursive apply over
    AND/OR/XOR, periodic memo flushes, and a final arena checksum walk.
    The control-flow character is what matters for the caching study:
    pointer chasing through the unique table, deep recursion with
    saved return addresses, and data-dependent branching. Generated
    analysis stages size the working set; cold library padding sizes
    the static footprint. *)

val name : string

val image :
  ?vars:int ->
  ?ops:int ->
  ?stages:int ->
  ?static_bytes:int ->
  unit ->
  Isa.Image.t
(** Defaults: 12 variables, 2600 apply operations, 20 stages, 58 KB
    static text. *)
