let name = "mpeg2enc"

let reg = Isa.Reg.r

let zigzag = Dctgen.zigzag

(* quantiser shift per zigzag position: coarser for high frequencies *)
let qshift = Array.init 64 (fun i -> 2 + (i / 16))

let image ?(frames = 4) ?(width = 64) ?(height = 48) ?(stages = 40)
    ?(static_bytes = 56 * 1024) () =
  if width mod 8 <> 0 || height mod 8 <> 0 then
    invalid_arg "Mpeg2.image: dimensions must be multiples of 8";
  let b = Isa.Builder.create "mpeg2enc" in
  let r = Gen.rng 0x93E62 in
  let frame = Isa.Builder.space b (width * height) in
  let refframe = Isa.Builder.space b (width * height) in
  let blockbuf = Isa.Builder.space b (64 * 4) in
  let refbuf = Isa.Builder.space b (64 * 4) in
  let dctbuf = Isa.Builder.space b (64 * 4) in
  let dct2 = Isa.Builder.space b (64 * 4) in
  let zz = Isa.Builder.words b zigzag in
  let qs = Isa.Builder.words b qshift in
  let state = Isa.Builder.space b (stages * 8) in
  let var_cksum = Isa.Builder.word b 0 in
  let var_nz = Isa.Builder.word b 0 in
  let var_sad = Isa.Builder.word b 0 in
  let l_main = Isa.Builder.new_label b in
  let l_init = Isa.Builder.new_label b in
  let l_load = Isa.Builder.new_label b in
  let l_loadref = Isa.Builder.new_label b in
  let l_sad = Isa.Builder.new_label b in
  let l_motion = Isa.Builder.new_label b in
  let l_dctrow = Isa.Builder.new_label b in
  let l_dctcol = Isa.Builder.new_label b in
  let l_dctblk = Isa.Builder.new_label b in
  let l_quant = Isa.Builder.new_label b in
  let l_frame = Isa.Builder.new_label b in
  Isa.Builder.entry b l_main;

  let stage_labels =
    Gen.stage_functions b r ~prefix:"rc_stage" ~state_addr:state ~count:stages
      ~body_instrs:55
  in
  Dctgen.emit_pass b ~name:"dct_row" ~in_stride:4 ~out_stride:4 l_dctrow;
  Dctgen.emit_pass b ~name:"dct_col" ~in_stride:32 ~out_stride:32 l_dctcol;
  Dctgen.emit_block_driver b ~name:"dct_block" ~src:blockbuf ~tmp:dctbuf
    ~dst:dct2 ~row_pass:l_dctrow ~col_pass:l_dctcol l_dctblk;
  Dctgen.sad8 b ~name:"sad8" l_sad;

  (* --- load an 8x8 block of bytes into a word buffer:
         r1 = source byte address, r2 = destination word buffer --- *)
  let emit_loader fname label =
    Isa.Builder.func b fname label (fun () ->
        Isa.Builder.li b (reg 5) 8 (* rows left *);
        let row = Isa.Builder.label b in
        Isa.Builder.li b (reg 6) 8 (* cols left *);
        let col = Isa.Builder.label b in
        Isa.Builder.ins b (Isa.Instr.Ldb (reg 7, reg 1, 0));
        Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 7, reg 7, -128));
        Isa.Builder.ins b (Isa.Instr.St (reg 7, reg 2, 0));
        Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, 1));
        Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 2, reg 2, 4));
        Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 6, reg 6, -1));
        Isa.Builder.br b Ne (reg 6) Isa.Reg.zero col;
        Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, width - 8));
        Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, -1));
        Isa.Builder.br b Ne (reg 5) Isa.Reg.zero row;
        Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra))
  in
  emit_loader "load_block" l_load;
  emit_loader "load_refblock" l_loadref;

  (* --- motion probe: r1 = block byte offset in the frame.
         Tries 3 candidate offsets in the reference frame, keeps the
         minimum SAD, accumulates it. --- *)
  Isa.Builder.func b "motion_probe" l_motion (fun () ->
      Gen.prologue b;
      Isa.Builder.ins b (Isa.Instr.St (reg 1, Isa.Reg.sp, 0));
      Isa.Builder.li b (reg 13) 0x7FFFFFF (* best *);
      (* candidate displacements: 0, +1, +width; sad8 leaves r13/r14/r9
         alone, load_refblock only touches r1-r2 and r5-r7 *)
      List.iter
        (fun disp ->
          Isa.Builder.ins b (Isa.Instr.Ld (reg 1, Isa.Reg.sp, 0));
          Isa.Builder.li b (reg 5) (refframe + disp);
          Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 1, reg 5));
          Isa.Builder.li b (reg 2) refbuf;
          Isa.Builder.jal b l_loadref;
          (* SAD of the 8 rows *)
          Isa.Builder.li b (reg 14) 0;
          Isa.Builder.li b (reg 9) 0 (* row *);
          let rowloop = Isa.Builder.label b in
          Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 5, reg 9, 5));
          Isa.Builder.li b (reg 1) blockbuf;
          Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 1, reg 5));
          Isa.Builder.li b (reg 2) refbuf;
          Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 5));
          Isa.Builder.jal b l_sad;
          Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 14, reg 14, reg 2));
          Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 9, reg 9, 1));
          Isa.Builder.li b (reg 5) 8;
          Isa.Builder.br b Ne (reg 9) (reg 5) rowloop;
          let keep = Isa.Builder.new_label b in
          Isa.Builder.br b Ge (reg 14) (reg 13) keep;
          Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 13, reg 14, Isa.Reg.zero));
          Isa.Builder.here b keep)
        [ 0; 1; width ];
      Isa.Builder.li b (reg 5) var_sad;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 6, reg 6, reg 13));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      Gen.epilogue b);

  (* --- quantise + zigzag run-length statistics --- *)
  Isa.Builder.func b "quant_block" l_quant (fun () ->
      Isa.Builder.li b (reg 5) 0 (* i *);
      Isa.Builder.li b (reg 6) 0 (* run of zeros *);
      Isa.Builder.li b (reg 7) 0 (* local checksum *);
      Isa.Builder.li b (reg 8) 0 (* nonzero count *);
      let loop = Isa.Builder.label b in
      (* coeff = dct2[zigzag[i]] >> qshift[i] *)
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 9, reg 5, 2));
      Isa.Builder.li b (reg 10) zz;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 10, reg 10, reg 9));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 11, reg 10, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 11, reg 11, 2));
      Isa.Builder.li b (reg 10) dct2;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 10, reg 10, reg 11));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 12, reg 10, 0));
      Isa.Builder.li b (reg 10) qs;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 10, reg 10, reg 9));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 13, reg 10, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Sra, reg 12, reg 12, reg 13));
      let zero = Isa.Builder.new_label b in
      let cont = Isa.Builder.new_label b in
      Isa.Builder.br b Eq (reg 12) Isa.Reg.zero zero;
      (* nonzero: fold (run, level) into the checksum *)
      Isa.Builder.li b (reg 10) 37;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 7, reg 7, reg 10));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 7, reg 7, reg 12));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 7, reg 7, reg 6));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 8, reg 8, 1));
      Isa.Builder.li b (reg 6) 0;
      Isa.Builder.jmp b cont;
      Isa.Builder.here b zero;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 6, reg 6, 1));
      Isa.Builder.here b cont;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, 1));
      Isa.Builder.li b (reg 9) 64;
      Isa.Builder.br b Ne (reg 5) (reg 9) loop;
      (* fold into the globals *)
      Isa.Builder.li b (reg 5) var_cksum;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.li b (reg 9) 1009;
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 6, reg 6, reg 9));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 6, reg 6, reg 7));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      Isa.Builder.li b (reg 5) var_nz;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 6, reg 6, reg 8));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- encode one frame: iterate blocks --- *)
  Isa.Builder.func b "encode_frame" l_frame (fun () ->
      Gen.prologue b;
      Isa.Builder.li b (reg 16) 0 (* by *);
      let byloop = Isa.Builder.label b in
      Isa.Builder.li b (reg 17) 0 (* bx *);
      let bxloop = Isa.Builder.label b in
      (* src = frame + (by*8*width + bx*8) *)
      Isa.Builder.li b (reg 5) (8 * width);
      Isa.Builder.ins b (Isa.Instr.Alu (Mul, reg 5, reg 5, reg 16));
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 6, reg 17, 3));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 18, reg 5, reg 6));
      Isa.Builder.li b (reg 1) frame;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 1, reg 18));
      Isa.Builder.li b (reg 2) blockbuf;
      Isa.Builder.jal b l_load;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 1, reg 18, Isa.Reg.zero));
      Isa.Builder.jal b l_motion;
      Isa.Builder.jal b l_dctblk;
      Isa.Builder.jal b l_quant;
      (* rate-control stages chew on the running checksum *)
      Isa.Builder.li b (reg 5) var_cksum;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 1, reg 5, 0));
      Gen.call_stages b stage_labels;
      Isa.Builder.li b (reg 5) var_sad;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 6, reg 6, reg 1));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 17, reg 17, 1));
      Isa.Builder.li b (reg 5) (width / 8);
      Isa.Builder.br b Ne (reg 17) (reg 5) bxloop;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 16, reg 16, 1));
      Isa.Builder.li b (reg 5) (height / 8);
      Isa.Builder.br b Ne (reg 16) (reg 5) byloop;
      Gen.epilogue b);

  Isa.Builder.func b "init_frames" l_init (fun () ->
      Gen.prologue b;
      Gen.fill_xorshift b ~buf_addr:frame ~bytes:(width * height) ~seed:0x5EED4;
      Gen.fill_xorshift b ~buf_addr:refframe ~bytes:(width * height)
        ~seed:0x5EED5;
      Gen.epilogue b);

  Isa.Builder.func b "main" l_main (fun () ->
      Isa.Builder.jal b l_init;
      Isa.Builder.li b (reg 20) frames;
      let floop = Isa.Builder.label b in
      Isa.Builder.jal b l_frame;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 20, reg 20, -1));
      Isa.Builder.br b Ne (reg 20) Isa.Reg.zero floop;
      List.iter
        (fun v ->
          Isa.Builder.li b (reg 5) v;
          Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
          Isa.Builder.ins b (Isa.Instr.Out (reg 6)))
        [ var_cksum; var_nz; var_sad ];
      Isa.Builder.ins b Isa.Instr.Halt);

  Gen.pad_cold_to b r ~prefix:"libc_pad" ~target_bytes:static_bytes;
  Isa.Builder.build b
