(** mpeg2enc-like workload — the suite's largest program.

    A video-encoder-shaped pipeline over synthetic frames: per 8x8
    block, a SAD motion probe against the previous frame, an unrolled
    fixed-point 2-D DCT (rows then columns), quantisation, zigzag
    run-length statistics, and a large bank of generated transform
    stages (rate-control / filtering stand-ins). The unrolled DCT and
    the stage bank give it the paper's mpeg2enc character: by far the
    biggest dynamic and static text of the suite (Table 1: 135 KB /
    590 KB, reproduced scaled). *)

val name : string

val image :
  ?frames:int ->
  ?width:int ->
  ?height:int ->
  ?stages:int ->
  ?static_bytes:int ->
  unit ->
  Isa.Image.t
(** Defaults: 4 frames of 64x48, 40 stages, 56 KB static text
    (≈ 13 KB dynamic). *)
