type entry = {
  name : string;
  build : unit -> Isa.Image.t;
  description : string;
}

let compress =
  {
    name = Compress.name;
    build = (fun () -> Compress.image ());
    description = "LZW compressor in the image of SPEC95 129.compress";
  }

let adpcm_encode =
  {
    name = Adpcm.name_encode;
    build = (fun () -> Adpcm.encode_image ());
    description = "IMA ADPCM encoder (MediaBench)";
  }

let adpcm_decode =
  {
    name = Adpcm.name_decode;
    build = (fun () -> Adpcm.decode_image ());
    description = "IMA ADPCM decoder (MediaBench)";
  }

let hextobdd =
  {
    name = Hextobdd.name;
    build = (fun () -> Hextobdd.image ());
    description = "hash-consed BDD construction (graph manipulation)";
  }

let mpeg2enc =
  {
    name = Mpeg2.name;
    build = (fun () -> Mpeg2.image ());
    description = "video-encoder pipeline with unrolled 2-D DCT";
  }

let gzip =
  {
    name = Gzipw.name;
    build = (fun () -> Gzipw.image ());
    description = "LZ77 deflate front end with hash chains";
  }

let cjpeg =
  {
    name = Cjpegw.name;
    build = (fun () -> Cjpegw.image ());
    description = "JPEG front end: colour conversion, DCT, entropy sizing";
  }

let sensor =
  {
    name = Sensor.name;
    build = (fun () -> Sensor.image ());
    description = "Figure 2 sensor node with operating modes";
  }

let all =
  [
    compress; adpcm_encode; adpcm_decode; hextobdd; mpeg2enc; gzip; cjpeg;
    sensor;
  ]

let find n = List.find_opt (fun e -> e.name = n) all
let table1 = [ compress; adpcm_encode; hextobdd; mpeg2enc ]
let fig9 = [ adpcm_encode; adpcm_decode; gzip; cjpeg ]
let names () = List.map (fun e -> e.name) all
