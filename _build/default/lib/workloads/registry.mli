(** Catalogue of the workload suite. *)

type entry = {
  name : string;
  build : unit -> Isa.Image.t;  (** default parameters *)
  description : string;
}

val all : entry list
(** Every workload, default parameters. *)

val find : string -> entry option

val table1 : entry list
(** The four Table 1 / Figures 6-7 programs: compress95, adpcm_encode,
    hextobdd, mpeg2enc. *)

val fig9 : entry list
(** The four ARM footprint programs: adpcm_encode, adpcm_decode, gzip,
    cjpeg. *)

val names : unit -> string list
