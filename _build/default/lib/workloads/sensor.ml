let name = "sensor_modes"

let reg = Isa.Reg.r
let mode_symbols = [ "sensor_init"; "calibrate"; "daytime"; "nighttime" ]

let largest_mode_bytes (img : Isa.Image.t) =
  List.fold_left
    (fun acc n ->
      match Isa.Image.find_symbol img n with
      | Some s -> max acc s.sym_size
      | None -> acc)
    0 mode_symbols

let image ?(day_night_cycles = 6) ?(samples_per_mode = 2000)
    ?(mode_bulk = 45) () =
  let b = Isa.Builder.create "sensor_modes" in
  let trace = Isa.Builder.space b 4096 in
  let var_offset = Isa.Builder.word b 0 in
  let var_events = Isa.Builder.word b 0 in
  let var_integral = Isa.Builder.word b 0 in
  let var_cksum = Isa.Builder.word b 0 in
  let l_main = Isa.Builder.new_label b in
  let l_init = Isa.Builder.new_label b in
  let l_cal = Isa.Builder.new_label b in
  let l_day = Isa.Builder.new_label b in
  let l_night = Isa.Builder.new_label b in
  Isa.Builder.entry b l_main;

  (* Extra per-sample work that bulks a mode's code: a chain of
     distinct shift/add "filter taps" (straight-line, all hot). *)
  let bulk_taps seed acc tmp =
    for k = 0 to mode_bulk - 1 do
      let sh = 1 + ((seed + k) mod 5) in
      Isa.Builder.ins b (Isa.Instr.Alui (Sra, tmp, acc, sh));
      Isa.Builder.ins b
        (if k land 1 = 0 then Isa.Instr.Alu (Add, acc, acc, tmp)
         else Isa.Instr.Alu (Xor, acc, acc, tmp))
    done
  in

  (* --- initialisation: fill the sample trace --- *)
  Isa.Builder.func b "sensor_init" l_init (fun () ->
      Gen.fill_xorshift b ~buf_addr:trace ~bytes:4096 ~seed:0x5EED8;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- calibration: mean over the trace -> offset --- *)
  Isa.Builder.func b "calibrate" l_cal (fun () ->
      Isa.Builder.li b (reg 5) trace;
      Isa.Builder.li b (reg 6) (trace + 4096);
      Isa.Builder.li b (reg 7) 0;
      let top = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Ldb (reg 8, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 7, reg 7, reg 8));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 5, reg 5, 1));
      Isa.Builder.br b Ne (reg 5) (reg 6) top;
      Isa.Builder.ins b (Isa.Instr.Alui (Srl, reg 7, reg 7, 12));
      Isa.Builder.li b (reg 5) var_offset;
      Isa.Builder.ins b (Isa.Instr.St (reg 7, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- daytime: 4-tap FIR + threshold event counting.
         r1 = sample count. --- *)
  Isa.Builder.func b "daytime" l_day (fun () ->
      Isa.Builder.li b (reg 5) trace;
      Isa.Builder.li b (reg 6) 0 (* i *);
      Isa.Builder.li b (reg 7) 0 (* events *);
      Isa.Builder.li b (reg 8) 0 (* fir state *);
      Isa.Builder.li b (reg 14) 0 (* checksum *);
      let top = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 9, reg 6, 4095));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 9, reg 9, reg 5));
      Isa.Builder.ins b (Isa.Instr.Ldb (reg 10, reg 9, 0));
      (* fir = fir - fir/4 + x *)
      Isa.Builder.ins b (Isa.Instr.Alui (Sra, reg 11, reg 8, 2));
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 8, reg 8, reg 11));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 8, reg 8, reg 10));
      bulk_taps 1 (reg 8) (reg 12);
      (* event when filtered value exceeds offset * 4 + 64 *)
      Isa.Builder.li b (reg 11) var_offset;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 11, reg 11, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Sll, reg 11, reg 11, 2));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 11, reg 11, 64));
      let no_event = Isa.Builder.new_label b in
      Isa.Builder.br b Lt (reg 8) (reg 11) no_event;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 7, reg 7, 1));
      Isa.Builder.here b no_event;
      Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 14, reg 14, reg 8));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 6, reg 6, 1));
      Isa.Builder.br b Ne (reg 6) (reg 1) top;
      Isa.Builder.li b (reg 5) var_events;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 6, reg 6, reg 7));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      Isa.Builder.li b (reg 5) var_cksum;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 6, reg 6, reg 14));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- nighttime: leaky integration + envelope. r1 = samples. --- *)
  Isa.Builder.func b "nighttime" l_night (fun () ->
      Isa.Builder.li b (reg 5) trace;
      Isa.Builder.li b (reg 6) 0;
      Isa.Builder.li b (reg 7) 0 (* integral *);
      Isa.Builder.li b (reg 8) 0 (* envelope *);
      Isa.Builder.li b (reg 14) 0 (* checksum *);
      let top = Isa.Builder.label b in
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 9, reg 6, 4095));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 9, reg 9, reg 5));
      Isa.Builder.ins b (Isa.Instr.Ldb (reg 10, reg 9, 0));
      (* integral = integral + x - integral/64 *)
      Isa.Builder.ins b (Isa.Instr.Alui (Sra, reg 11, reg 7, 6));
      Isa.Builder.ins b (Isa.Instr.Alu (Sub, reg 7, reg 7, reg 11));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 7, reg 7, reg 10));
      bulk_taps 3 (reg 7) (reg 12);
      (* envelope follows the integral upward, decays downward *)
      let decay = Isa.Builder.new_label b in
      let env_done = Isa.Builder.new_label b in
      Isa.Builder.br b Lt (reg 7) (reg 8) decay;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 8, reg 7, Isa.Reg.zero));
      Isa.Builder.jmp b env_done;
      Isa.Builder.here b decay;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 8, reg 8, -1));
      Isa.Builder.here b env_done;
      Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 14, reg 14, reg 8));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 6, reg 6, 1));
      Isa.Builder.br b Ne (reg 6) (reg 1) top;
      Isa.Builder.li b (reg 5) var_integral;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 6, reg 6, reg 7));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      Isa.Builder.li b (reg 5) var_cksum;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alu (Xor, reg 6, reg 6, reg 14));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));

  (* --- main: init, calibrate, then alternate modes --- *)
  Isa.Builder.func b "main" l_main (fun () ->
      Isa.Builder.jal b l_init;
      Isa.Builder.jal b l_cal;
      Isa.Builder.li b (reg 20) day_night_cycles;
      let cycle = Isa.Builder.label b in
      Isa.Builder.li b (reg 1) samples_per_mode;
      Isa.Builder.jal b l_day;
      Isa.Builder.li b (reg 1) samples_per_mode;
      Isa.Builder.jal b l_night;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 20, reg 20, -1));
      Isa.Builder.br b Ne (reg 20) Isa.Reg.zero cycle;
      List.iter
        (fun v ->
          Isa.Builder.li b (reg 5) v;
          Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
          Isa.Builder.ins b (Isa.Instr.Out (reg 6)))
        [ var_events; var_integral; var_cksum ];
      Isa.Builder.ins b Isa.Instr.Halt);
  Isa.Builder.build b
