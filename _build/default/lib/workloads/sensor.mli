(** The paper's Figure 2 scenario: a sensor node with operating modes.

    "The code includes modules for initialization, calibration and two
    modes of operation, but only one module is active at a given time.
    The device physical memory can be sized to fit one module."

    Four procedures with disjoint code — initialisation, calibration,
    a daytime mode (FIR filtering + event thresholding) and a nighttime
    mode (leaky integration + envelope tracking) — driven by a main
    loop that switches mode infrequently. Because the SoftCache is
    fully associative, sizing the tcache to the largest single mode
    guarantees zero steady-state misses within a mode; only the
    infrequent transitions page. The quickstart example and the
    mode-sizing bench both build on this image. *)

val name : string

val image :
  ?day_night_cycles:int -> ?samples_per_mode:int -> ?mode_bulk:int ->
  unit -> Isa.Image.t
(** Defaults: 6 day/night cycles of 2000 samples each; [mode_bulk]
    (default 45) pads each mode's kernel with extra filter taps so a
    single mode is ≈ 1 KB of code. *)

val mode_symbols : string list
(** Names of the four mode procedures, in address order:
    ["sensor_init"; "calibrate"; "daytime"; "nighttime"]. *)

val largest_mode_bytes : Isa.Image.t -> int
(** Static size of the biggest mode procedure — the Figure 2 "minimum
    memory required". *)
