test/test_core_units.ml: Alcotest Array Bytes Gen Isa List QCheck QCheck_alcotest Softcache String
