test/test_dcache.ml: Alcotest Dcache Gen Isa List Machine Printf QCheck QCheck_alcotest Softcache
