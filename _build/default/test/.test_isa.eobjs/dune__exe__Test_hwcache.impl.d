test/test_hwcache.ml: Alcotest Array Gen Hwcache List Printf QCheck QCheck_alcotest
