test/test_hwcache.mli:
