test/test_isa.ml: Alcotest Array Bytes Char Gen In_channel Isa List Machine Option QCheck QCheck_alcotest Softcache String
