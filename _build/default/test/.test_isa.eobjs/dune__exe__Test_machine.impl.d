test/test_machine.ml: Alcotest Gen Isa List Machine QCheck QCheck_alcotest
