test/test_models.ml: Alcotest Gen Isa List Machine Netmodel Powermodel Profiler QCheck QCheck_alcotest Report
