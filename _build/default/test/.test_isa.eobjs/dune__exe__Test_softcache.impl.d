test/test_softcache.ml: Alcotest Array Gen Isa List Machine Netmodel Option Printf QCheck QCheck_alcotest Softcache String
