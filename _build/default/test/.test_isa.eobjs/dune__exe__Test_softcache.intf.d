test/test_softcache.mli:
