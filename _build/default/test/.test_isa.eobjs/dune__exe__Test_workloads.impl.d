test/test_workloads.ml: Alcotest Isa List Machine Printf Profiler Softcache String Workloads
