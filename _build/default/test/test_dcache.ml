(* Tests of the Section 3 software data cache: the sorted fully
   associative store, the stack cache, and the end-to-end driver. *)

let reg = Isa.Reg.r

(* ------------------------------------------------------------------ *)
(* Assoc: the sorted, predicted, fully associative block store *)

let test_assoc_basic () =
  let a = Dcache.Assoc.create ~blocks:4 in
  Alcotest.(check int) "empty" 0 (Dcache.Assoc.occupancy a);
  (match Dcache.Assoc.lookup a ~pred:0 ~tag:5 with
  | Dcache.Assoc.Miss, _ -> ()
  | _ -> Alcotest.fail "expected miss");
  let idx, ev = Dcache.Assoc.insert a ~tag:5 in
  Alcotest.(check bool) "no eviction" true (ev = None);
  (match Dcache.Assoc.lookup a ~pred:idx ~tag:5 with
  | Dcache.Assoc.Fast_hit, _ -> ()
  | _ -> Alcotest.fail "expected fast hit at predicted index");
  match Dcache.Assoc.lookup a ~pred:3 ~tag:5 with
  | Dcache.Assoc.Slow_hit _, i -> Alcotest.(check int) "found" idx i
  | _ -> Alcotest.fail "expected slow hit with wrong prediction"

let test_assoc_lru_eviction () =
  let a = Dcache.Assoc.create ~blocks:2 in
  ignore (Dcache.Assoc.insert a ~tag:1);
  ignore (Dcache.Assoc.insert a ~tag:2);
  (* touch 1 so 2 is LRU *)
  ignore (Dcache.Assoc.lookup a ~pred:0 ~tag:1);
  let _, ev = Dcache.Assoc.insert a ~tag:3 in
  Alcotest.(check bool) "evicted LRU (2)" true (ev = Some 2);
  Alcotest.(check bool) "1 kept" true (Dcache.Assoc.mem a ~tag:1);
  Alcotest.(check bool) "3 present" true (Dcache.Assoc.mem a ~tag:3)

let test_assoc_probe2 () =
  let a = Dcache.Assoc.create ~blocks:4 in
  ignore (Dcache.Assoc.insert a ~tag:10);
  ignore (Dcache.Assoc.insert a ~tag:20);
  (* sorted: [10; 20]; pred 0 -> probe2 checks index 1 *)
  Alcotest.(check bool) "second chance" true
    (Dcache.Assoc.probe2 a ~pred:0 ~tag:20);
  Alcotest.(check bool) "not at pred+1" false
    (Dcache.Assoc.probe2 a ~pred:0 ~tag:10)

(* Sorted-order invariant + membership, via random insert sequences. *)
let test_assoc_sorted_invariant =
  QCheck.Test.make ~count:200 ~name:"assoc keeps sorted order + membership"
    QCheck.(make Gen.(list_size (int_range 1 100) (int_bound 500)))
    (fun tags ->
      let a = Dcache.Assoc.create ~blocks:16 in
      List.iter (fun t -> ignore (Dcache.Assoc.insert a ~tag:t)) tags;
      (* every tag we can find by lookup reports an index holding it;
         check that searching never misbehaves and occupancy bounded *)
      Dcache.Assoc.occupancy a <= 16
      && List.for_all
           (fun t ->
             match Dcache.Assoc.lookup a ~pred:0 ~tag:t with
             | (Dcache.Assoc.Fast_hit | Dcache.Assoc.Slow_hit _), _ -> true
             | Dcache.Assoc.Miss, _ -> true (* may have been evicted *))
           tags)

let test_assoc_duplicate_insert_is_benign () =
  let a = Dcache.Assoc.create ~blocks:8 in
  ignore (Dcache.Assoc.insert a ~tag:7);
  (* inserting a present tag is the caller's bug, but should at least
     keep the structure searchable *)
  ignore (Dcache.Assoc.insert a ~tag:9);
  Alcotest.(check bool) "7 findable" true (Dcache.Assoc.mem a ~tag:7);
  Alcotest.(check bool) "9 findable" true (Dcache.Assoc.mem a ~tag:9)

(* ------------------------------------------------------------------ *)
(* Scache *)

let test_scache_basic () =
  let s = Dcache.Scache.create ~frames:2 in
  Alcotest.(check bool) "enter 1" true (Dcache.Scache.enter s = Dcache.Scache.Entered);
  Alcotest.(check bool) "enter 2" true (Dcache.Scache.enter s = Dcache.Scache.Entered);
  Alcotest.(check int) "depth" 2 (Dcache.Scache.depth s);
  (* third frame spills the deepest *)
  (match Dcache.Scache.enter s with
  | Dcache.Scache.Entered_spilling 1 -> ()
  | _ -> Alcotest.fail "expected spill");
  Alcotest.(check int) "spills" 1 (Dcache.Scache.spills s);
  (* leaving twice: resident frames cover them *)
  Alcotest.(check bool) "leave 1" true (Dcache.Scache.leave s = Dcache.Scache.Left);
  (* next leave returns into the spilled frame: refill *)
  (match Dcache.Scache.leave s with
  | Dcache.Scache.Left_refilling -> ()
  | _ -> Alcotest.fail "expected refill");
  Alcotest.(check int) "refills" 1 (Dcache.Scache.refills s);
  Alcotest.(check bool) "final leave" true (Dcache.Scache.leave s = Dcache.Scache.Left);
  Alcotest.(check int) "depth 0" 0 (Dcache.Scache.depth s)

let test_scache_no_spill_within_capacity =
  QCheck.Test.make ~count:100 ~name:"no spills while depth <= frames"
    QCheck.(make Gen.(int_range 2 10))
    (fun frames ->
      let s = Dcache.Scache.create ~frames in
      for _ = 1 to frames do
        ignore (Dcache.Scache.enter s)
      done;
      for _ = 1 to frames do
        ignore (Dcache.Scache.leave s)
      done;
      Dcache.Scache.spills s = 0 && Dcache.Scache.refills s = 0)

let test_scache_deep_recursion () =
  let s = Dcache.Scache.create ~frames:4 in
  for _ = 1 to 100 do
    ignore (Dcache.Scache.enter s)
  done;
  Alcotest.(check int) "96 spills" 96 (Dcache.Scache.spills s);
  for _ = 1 to 100 do
    ignore (Dcache.Scache.leave s)
  done;
  Alcotest.(check int) "96 refills" 96 (Dcache.Scache.refills s);
  Alcotest.(check int) "depth 0" 0 (Dcache.Scache.depth s)

(* ------------------------------------------------------------------ *)
(* Sim: end-to-end driver *)

(* A program with a strided array walk, a constant global counter and
   recursion. *)
let data_image ~iters ~stride =
  let b = Isa.Builder.create "dprog" in
  let arr = Isa.Builder.space b 8192 in
  let counter = Isa.Builder.word b 0 in
  let main = Isa.Builder.new_label b in
  let recurse = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  Isa.Builder.func b "recurse" recurse (fun () ->
      let base = Isa.Builder.new_label b in
      Isa.Builder.br b Eq (reg 1) Isa.Reg.zero base;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, -8));
      Isa.Builder.ins b (Isa.Instr.St (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
      Isa.Builder.jal b recurse;
      Isa.Builder.ins b (Isa.Instr.Ld (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra);
      Isa.Builder.here b base;
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.li b (reg 16) iters;
      Isa.Builder.li b (reg 17) arr;
      Isa.Builder.li b (reg 18) 0 (* offset *);
      let top = Isa.Builder.label b in
      (* strided data access *)
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 5, reg 17, reg 18));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 6, reg 6, 1));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      (* constant global *)
      Isa.Builder.li b (reg 5) counter;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 6, reg 6, 1));
      Isa.Builder.ins b (Isa.Instr.St (reg 6, reg 5, 0));
      (* occasional recursion exercises the stack cache *)
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 5, reg 16, 63));
      let no_rec = Isa.Builder.new_label b in
      Isa.Builder.br b Ne (reg 5) Isa.Reg.zero no_rec;
      Isa.Builder.li b (reg 1) 12;
      Isa.Builder.jal b recurse;
      Isa.Builder.here b no_rec;
      Isa.Builder.ins b
        (Isa.Instr.Alui (Add, reg 18, reg 18, stride));
      Isa.Builder.ins b (Isa.Instr.Alui (And, reg 18, reg 18, 8191));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 16, reg 16, -1));
      Isa.Builder.br b Ne (reg 16) Isa.Reg.zero top;
      Isa.Builder.li b (reg 5) counter;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 6, reg 5, 0));
      Isa.Builder.ins b (Isa.Instr.Out (reg 6));
      Isa.Builder.ins b Isa.Instr.Halt);
  Isa.Builder.build b

let test_sim_preserves_results () =
  let img = data_image ~iters:2000 ~stride:4 in
  let native = Softcache.Runner.native img in
  let outcome, cpu, _ = Dcache.Sim.run (Dcache.Config.make ()) img in
  Alcotest.(check bool) "halts" true (outcome = Machine.Cpu.Halted);
  Alcotest.(check (list int)) "outputs unchanged" native.outputs
    (Machine.Cpu.outputs cpu);
  Alcotest.(check bool) "costs added" true (cpu.cycles > native.cycles)

let test_sim_constant_specialisation () =
  let img = data_image ~iters:2000 ~stride:4 in
  let _, _, st = Dcache.Sim.run (Dcache.Config.make ()) img in
  Alcotest.(check bool) "sites specialised" true (st.specialised_sites > 0);
  Alcotest.(check bool) "const hits accrue" true (st.const_hits > 1000);
  let _, _, st_off =
    Dcache.Sim.run (Dcache.Config.make ~specialise_constants:false ()) img
  in
  Alcotest.(check int) "specialisation off" 0 st_off.specialised_sites;
  Alcotest.(check int) "no const hits" 0 st_off.const_hits

let test_sim_deopt () =
  (* the strided site covers many addresses: it must never end up
     specialised; the counter site must never deopt *)
  let img = data_image ~iters:2000 ~stride:4 in
  let _, _, st =
    Dcache.Sim.run (Dcache.Config.make ~specialise_threshold:8 ()) img
  in
  (* walking sites keep changing address before reaching the threshold,
     so deopts stay rare (only sites that looked stable then moved) *)
  Alcotest.(check bool) "few deopts" true (st.deopts <= 4)

let test_sim_stack_classification () =
  let img = data_image ~iters:1000 ~stride:4 in
  let _, _, st = Dcache.Sim.run (Dcache.Config.make ()) img in
  Alcotest.(check bool) "stack accesses seen" true (st.stack_accesses > 0);
  Alcotest.(check bool) "data accesses seen" true (st.data_accesses > 0);
  Alcotest.(check bool) "scache checks" true (st.scache_checks > 0)

let test_sim_scache_spills_on_deep_recursion () =
  let img = data_image ~iters:256 ~stride:4 in
  let _, _, st =
    Dcache.Sim.run (Dcache.Config.make ~scache_frames:4 ()) img
  in
  Alcotest.(check bool) "spills under deep recursion" true
    (st.scache_spills > 0);
  Alcotest.(check bool) "refills match spills" true
    (st.scache_refills > 0)

let test_sim_prediction_helps_sequential () =
  (* small stride: consecutive accesses stay in one block -> the
     same-index prediction hits nearly always *)
  let img = data_image ~iters:4000 ~stride:4 in
  let cfg = Dcache.Config.make ~specialise_constants:false () in
  let _, _, st = Dcache.Sim.run cfg img in
  let hitrate =
    float_of_int st.fast_hits /. float_of_int (max 1 st.data_accesses)
  in
  Alcotest.(check bool)
    (Printf.sprintf "prediction hit rate %.2f > 0.6" hitrate)
    true (hitrate > 0.6)

let test_sim_large_stride_slow_hits () =
  (* jumping across blocks defeats the same-index prediction but the
     data still fits: slow hits instead of misses *)
  let img = data_image ~iters:4000 ~stride:1028 in
  let cfg = Dcache.Config.make ~specialise_constants:false () in
  let _, _, st = Dcache.Sim.run cfg img in
  Alcotest.(check bool) "slow hits occur" true (st.slow_hits > 100);
  (* the walk's footprint matches dcache capacity, so misses stay a
     minority of accesses even with LRU churn at the boundary *)
  Alcotest.(check bool)
    (Printf.sprintf "misses minority (%d / %d)" st.misses st.data_accesses)
    true
    (st.misses * 2 < st.data_accesses)

let test_sim_guaranteed_latency () =
  let cfg = Dcache.Config.make ~dcache_bytes:8192 ~block_bytes:32 () in
  (* 256 blocks -> 8 probes *)
  Alcotest.(check int) "slow-hit bound"
    (cfg.predicted_hit_cycles + (8 * cfg.search_step_cycles))
    (Dcache.Sim.guaranteed_latency_cycles cfg)

let test_sim_tag_checks_avoided () =
  let img = data_image ~iters:2000 ~stride:4 in
  let _, _, st = Dcache.Sim.run (Dcache.Config.make ()) img in
  let f = Dcache.Sim.tag_checks_avoided st in
  Alcotest.(check bool)
    (Printf.sprintf "avoidance fraction %.2f sane" f)
    true
    (f > 0.0 && f <= 1.0)

let test_fullsystem_equivalence () =
  (* instruction + data caching together must still be observationally
     identical to native execution, across both programs and a paging
     tcache *)
  List.iter
    (fun (img, tcache_bytes) ->
      let native = Softcache.Runner.native img in
      let icfg = Softcache.Config.make ~tcache_bytes () in
      let dcfg = Dcache.Config.make () in
      let full, ctrl = Dcache.Fullsystem.run icfg dcfg img in
      Alcotest.(check bool) "halts" true (full.outcome = Machine.Cpu.Halted);
      Alcotest.(check (list int)) "outputs" native.outputs full.outputs;
      Alcotest.(check bool) "dearer than native" true
        (full.cycles > native.cycles);
      ignore ctrl)
    [
      (data_image ~iters:1500 ~stride:4, 16 * 1024);
      (data_image ~iters:1500 ~stride:4, 768 (* paging I-cache *));
    ];
  Alcotest.(check int) "local memory arithmetic"
    ((16 * 1024) + (8 * 1024) + (16 * 64))
    (Dcache.Fullsystem.local_memory_bytes
       (Softcache.Config.make ~tcache_bytes:(16 * 1024) ())
       (Dcache.Config.make ()))

let test_config_validation () =
  let bad f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad (fun () -> Dcache.Config.make ~block_bytes:24 ());
  bad (fun () -> Dcache.Config.make ~dcache_bytes:16 ~block_bytes:32 ());
  bad (fun () -> Dcache.Config.make ~scache_frames:1 ())

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "dcache"
    [
      ( "assoc",
        [
          Alcotest.test_case "basic" `Quick test_assoc_basic;
          Alcotest.test_case "LRU eviction" `Quick test_assoc_lru_eviction;
          Alcotest.test_case "second chance probe" `Quick test_assoc_probe2;
          qt test_assoc_sorted_invariant;
          Alcotest.test_case "duplicate insert" `Quick
            test_assoc_duplicate_insert_is_benign;
        ] );
      ( "scache",
        [
          Alcotest.test_case "basic" `Quick test_scache_basic;
          qt test_scache_no_spill_within_capacity;
          Alcotest.test_case "deep recursion" `Quick test_scache_deep_recursion;
        ] );
      ( "sim",
        [
          Alcotest.test_case "results preserved" `Quick
            test_sim_preserves_results;
          Alcotest.test_case "constant specialisation" `Quick
            test_sim_constant_specialisation;
          Alcotest.test_case "deoptimisation" `Quick test_sim_deopt;
          Alcotest.test_case "stack classification" `Quick
            test_sim_stack_classification;
          Alcotest.test_case "scache spills" `Quick
            test_sim_scache_spills_on_deep_recursion;
          Alcotest.test_case "prediction helps sequential" `Quick
            test_sim_prediction_helps_sequential;
          Alcotest.test_case "large stride slow hits" `Quick
            test_sim_large_stride_slow_hits;
          Alcotest.test_case "guaranteed latency" `Quick
            test_sim_guaranteed_latency;
          Alcotest.test_case "tag checks avoided" `Quick
            test_sim_tag_checks_avoided;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "full system (I+D) equivalence" `Quick
            test_fullsystem_equivalence;
        ] );
    ]
