(* Hardware cache simulator tests: geometry validation, mapping and
   replacement behaviour, the tag-overhead model behind the paper's
   11-18% claim, and miss-rate properties. *)

let test_geometry_validation () =
  let bad f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad (fun () -> Hwcache.create ~size_bytes:1000 ());
  bad (fun () -> Hwcache.create ~block_bytes:24 ~size_bytes:1024 ());
  bad (fun () -> Hwcache.create ~size_bytes:8 ~block_bytes:16 ());
  bad (fun () -> Hwcache.create ~assoc:3 ~size_bytes:1024 ());
  let c = Hwcache.create ~size_bytes:1024 () in
  Alcotest.(check int) "default block" 16 (Hwcache.block_bytes c);
  Alcotest.(check int) "direct mapped" 1 (Hwcache.assoc c);
  let fa = Hwcache.create ~assoc:0 ~size_bytes:1024 () in
  Alcotest.(check int) "fully associative" 64 (Hwcache.assoc fa)

let test_basic_hit_miss () =
  let c = Hwcache.create ~size_bytes:256 () in
  Alcotest.(check bool) "cold miss" false (Hwcache.access c 0);
  Alcotest.(check bool) "hit same addr" true (Hwcache.access c 0);
  Alcotest.(check bool) "hit same block" true (Hwcache.access c 12);
  Alcotest.(check bool) "miss next block" false (Hwcache.access c 16);
  Alcotest.(check int) "accesses" 4 (Hwcache.accesses c);
  Alcotest.(check int) "misses" 2 (Hwcache.misses c);
  Alcotest.(check (float 1e-9)) "miss rate" 0.5 (Hwcache.miss_rate c)

let test_direct_mapped_conflict () =
  (* 256 B direct-mapped, 16 B blocks: addresses 256 apart conflict *)
  let c = Hwcache.create ~size_bytes:256 () in
  ignore (Hwcache.access c 0);
  ignore (Hwcache.access c 256);
  Alcotest.(check bool) "conflict evicted" false (Hwcache.access c 0);
  (* 2-way: both fit *)
  let c2 = Hwcache.create ~assoc:2 ~size_bytes:256 () in
  ignore (Hwcache.access c2 0);
  ignore (Hwcache.access c2 256);
  Alcotest.(check bool) "2-way keeps both" true (Hwcache.access c2 0)

let test_lru_replacement () =
  (* 2-way set: touch A, B, re-touch A, add C -> B is the LRU victim *)
  let c = Hwcache.create ~assoc:2 ~size_bytes:256 () in
  ignore (Hwcache.access c 0) (* A *);
  ignore (Hwcache.access c 256) (* B *);
  ignore (Hwcache.access c 0) (* refresh A *);
  ignore (Hwcache.access c 512) (* C evicts B *);
  Alcotest.(check bool) "A survives" true (Hwcache.access c 0);
  Alcotest.(check bool) "B evicted" false (Hwcache.access c 256)

let test_fully_associative_no_conflicts () =
  (* as many distinct blocks as capacity: all fit *)
  let c = Hwcache.create ~assoc:0 ~size_bytes:256 () in
  for i = 0 to 15 do
    ignore (Hwcache.access c (i * 16))
  done;
  Hwcache.reset_stats c;
  for i = 0 to 15 do
    ignore (Hwcache.access c (i * 16))
  done;
  Alcotest.(check int) "no misses on re-touch" 0 (Hwcache.misses c)

let test_invalidate_all () =
  let c = Hwcache.create ~size_bytes:256 () in
  ignore (Hwcache.access c 0);
  Hwcache.invalidate_all c;
  Alcotest.(check bool) "miss after invalidate" false (Hwcache.access c 0);
  Alcotest.(check int) "stats kept" 2 (Hwcache.accesses c)

let test_tag_overhead_values () =
  (* 16B blocks, direct-mapped, 32-bit addresses, 1 valid bit:
     1KB: 64 sets -> tag 22+1 = 23/128 = 18.0%
     128KB: 8192 sets -> tag 15+1 = 16/128 = 12.5% *)
  let ov size = Hwcache.tag_overhead (Hwcache.create ~size_bytes:size ()) in
  Alcotest.(check (float 1e-6)) "1KB" (23. /. 128.) (ov 1024);
  Alcotest.(check (float 1e-6)) "128KB" (16. /. 128.) (ov (128 * 1024));
  (* the paper's 11-18% band across its size range *)
  List.iter
    (fun s ->
      let o = ov s in
      Alcotest.(check bool)
        (Printf.sprintf "%dB overhead %.3f in band" s o)
        true
        (o >= 0.11 && o <= 0.18))
    [ 1024; 4096; 16384; 65536; 262144 ]

let test_miss_rate_monotonic_in_size =
  QCheck.Test.make ~count:30 ~name:"miss rate non-increasing with size"
    QCheck.(make Gen.(pair (int_bound 1000) (int_range 1 64)))
    (fun (seed, spread) ->
      (* a synthetic looping address trace *)
      let r = ref (seed + 1) in
      let trace =
        Array.init 4000 (fun i ->
            r := (!r * 1103515245) + 12345;
            if i land 3 = 0 then (!r lsr 8) mod (spread * 64) * 4
            else i mod (spread * 16) * 4)
      in
      let rate size =
        let c = Hwcache.create ~size_bytes:size () in
        Array.iter (fun a -> ignore (Hwcache.access c a)) trace;
        (* run the trace twice so capacity effects show *)
        Array.iter (fun a -> ignore (Hwcache.access c a)) trace;
        Hwcache.miss_rate c
      in
      (* direct-mapped caches are not strictly monotonic in general,
         but doubling from tiny to huge must not increase misses by
         more than a small tolerance on these traces *)
      rate 65536 <= rate 256 +. 1e-9)

let test_counts_consistent =
  QCheck.Test.make ~count:50 ~name:"misses <= accesses"
    QCheck.(make Gen.(list_size (int_range 1 500) (int_bound 100_000)))
    (fun addrs ->
      let c = Hwcache.create ~assoc:2 ~size_bytes:512 () in
      List.iter (fun a -> ignore (Hwcache.access c a)) addrs;
      Hwcache.accesses c = List.length addrs
      && Hwcache.misses c <= Hwcache.accesses c)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "hwcache"
    [
      ( "structure",
        [
          Alcotest.test_case "geometry validation" `Quick
            test_geometry_validation;
          Alcotest.test_case "basic hit/miss" `Quick test_basic_hit_miss;
          Alcotest.test_case "direct-mapped conflicts" `Quick
            test_direct_mapped_conflict;
          Alcotest.test_case "LRU replacement" `Quick test_lru_replacement;
          Alcotest.test_case "fully associative" `Quick
            test_fully_associative_no_conflicts;
          Alcotest.test_case "invalidate all" `Quick test_invalidate_all;
        ] );
      ( "model",
        [
          Alcotest.test_case "tag overhead (11-18% claim)" `Quick
            test_tag_overhead_values;
          qt test_miss_rate_monotonic_in_size;
          qt test_counts_consistent;
        ] );
    ]
