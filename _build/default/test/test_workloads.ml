(* Workload suite tests: every program halts with pinned golden
   outputs, is observationally identical under the SoftCache in both
   chunking modes (including cache sizes that force heavy paging — the
   compress95 @ 1KB case is the regression test for the persistent-stub
   collision bug), and has the footprint shape its paper counterpart
   calls for. *)

let golden =
  [
    ("compress95", [ 11129; -61270346; -93927114; 1 ]);
    ( "adpcm_encode",
      [ 10000; 10000; -653204598; -653247846; 4743634; 4743578 ] );
    ( "adpcm_decode",
      [ -1619557109; -1619584388; 32767; 32767; 2064535344; 2064528446 ] );
    ("hextobdd", [ 694213438; 90; 110 ]);
    ("mpeg2enc", [ 1693354336; 11316; -1205180161 ]);
    ("gzip", [ -2080344789; 15998; 127; 384 ]);
    ("cjpeg", [ -1472139696; 25458; 1181934; 1175916 ]);
    ("sensor_modes", [ 240; 370540996; 0 ]);
  ]

let entry name =
  match Workloads.Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "workload %s not registered" name

let test_golden name () =
  let e = entry name in
  let r = Softcache.Runner.native (e.build ()) in
  Alcotest.(check bool) "halts" true (r.outcome = Machine.Cpu.Halted);
  Alcotest.(check (list int)) "golden outputs" (List.assoc name golden) r.outputs

let test_cached_equiv name () =
  let e = entry name in
  let img = e.build () in
  let native = Softcache.Runner.native img in
  List.iter
    (fun (label, cfg) ->
      match Softcache.Runner.cached cfg img with
      | cached, _ ->
        Alcotest.(check (list int))
          (Printf.sprintf "%s/%s" name label)
          native.outputs cached.outputs
      | exception Softcache.Controller.Chunk_too_large _ ->
        (* only acceptable for procedure chunking at tiny sizes *)
        Alcotest.(check bool)
          (label ^ " too-large only in proc mode")
          true
          (String.length label >= 4 && String.sub label 0 4 = "proc"))
    [
      ("bb-large", Softcache.Config.sparc_prototype ());
      ("bb-2KB", Softcache.Config.sparc_prototype ~tcache_bytes:2048 ());
      ( "proc-8KB",
        Softcache.Config.make ~tcache_bytes:8192
          ~chunking:Softcache.Config.Procedure () );
    ]

(* Regression: compress95 in a 1KB tcache used to livelock when the
   persistent stub area grew into a freshly reserved block. *)
let test_compress_1kb_thrash () =
  let img = Workloads.Compress.image () in
  let native = Softcache.Runner.native img in
  let cfg = Softcache.Config.sparc_prototype ~tcache_bytes:1024 () in
  let cached, ctrl = Softcache.Runner.cached ~fuel:100_000_000 cfg img in
  Alcotest.(check bool) "halts" true (cached.outcome = Machine.Cpu.Halted);
  Alcotest.(check (list int)) "outputs" native.outputs cached.outputs;
  Alcotest.(check bool) "thrashes" true (ctrl.stats.evicted_blocks > 1000);
  Alcotest.(check bool)
    "persistent stubs in use" true
    (ctrl.stats.ret_stubs > 0);
  (* stub recycling keeps CC metadata proportional to residency, not to
     the 170k translations this run performs *)
  Alcotest.(check bool)
    (Printf.sprintf "metadata bounded (%d B)"
       (Softcache.Controller.metadata_bytes ctrl))
    true
    (Softcache.Controller.metadata_bytes ctrl < 4 * 1024)

let test_symbols name symbols () =
  let img = (entry name).build () in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%s has %s" name s)
        true
        (Isa.Image.find_symbol img s <> None))
    symbols

let app_bytes (img : Isa.Image.t) =
  List.fold_left
    (fun a (s : Isa.Image.symbol) ->
      if String.length s.sym_name >= 5 && String.sub s.sym_name 0 5 = "libc_"
      then a
      else a + s.sym_size)
    0 img.symbols

let test_fig9_ratios () =
  List.iter
    (fun (name, lo, hi) ->
      let img = (entry name).build () in
      let prof, _ = Profiler.profile img in
      let ratio =
        float_of_int (Profiler.hot_bytes prof)
        /. float_of_int (app_bytes img)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s hot/app %.3f in [%.2f, %.2f]" name ratio lo hi)
        true
        (ratio >= lo && ratio <= hi))
    [
      ("adpcm_encode", 0.06, 0.12);
      ("adpcm_decode", 0.04, 0.10);
      ("gzip", 0.06, 0.12);
      ("cjpeg", 0.10, 0.16);
    ]

let test_table1_ratios () =
  List.iter
    (fun (name, lo, hi) ->
      let img = (entry name).build () in
      let prof, _ = Profiler.profile img in
      let ratio =
        float_of_int (Profiler.dynamic_text_bytes prof)
        /. float_of_int (Isa.Image.static_text_bytes img)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s dyn/static %.3f in [%.2f, %.2f]" name ratio lo hi)
        true
        (ratio >= lo && ratio <= hi))
    [
      ("compress95", 0.08, 0.16);
      ("hextobdd", 0.07, 0.15);
      ("mpeg2enc", 0.17, 0.28);
    ]

(* The Fig. 8 shape: adpcm encode's steady state fits in 900 B of CC
   memory but not 800 B. *)
let test_adpcm_fig8_shape () =
  let img = Workloads.Adpcm.encode_image () in
  let evictions bytes =
    let cfg =
      Softcache.Config.make ~tcache_bytes:bytes
        ~chunking:Softcache.Config.Procedure ()
    in
    let _, ctrl = Softcache.Runner.cached cfg img in
    ctrl.stats.evicted_blocks
  in
  let e800 = evictions 800 and e900 = evictions 900 and e1k = evictions 1024 in
  Alcotest.(check bool)
    (Printf.sprintf "800B pages hard (%d >> %d)" e800 e900)
    true
    (e800 > 100 * max 1 e900);
  Alcotest.(check bool)
    (Printf.sprintf "1KB pages no more than 900B (%d <= %d)" e1k e900)
    true (e1k <= e900)

let test_sensor_mode_sizing () =
  let img = Workloads.Sensor.image () in
  Alcotest.(check bool)
    "largest mode positive" true
    (Workloads.Sensor.largest_mode_bytes img > 0);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " exists") true
        (Isa.Image.find_symbol img n <> None))
    Workloads.Sensor.mode_symbols

(* Images are deterministic: building twice gives identical code. *)
let test_images_deterministic () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let a = e.build () and b = e.build () in
      Alcotest.(check bool) (e.name ^ " deterministic") true
        (a.code = b.code && a.data = b.data && a.entry = b.entry))
    Workloads.Registry.all

(* Scaling knobs actually scale. *)
let test_scaling_knobs () =
  let small = Workloads.Compress.image ~input_bytes:2000 () in
  let big = Workloads.Compress.image ~input_bytes:8000 () in
  let rs = Softcache.Runner.native small in
  let rb = Softcache.Runner.native big in
  Alcotest.(check bool) "bigger input, more work" true (rb.retired > rs.retired);
  let thin = Workloads.Mpeg2.image ~stages:4 ~frames:1 () in
  let wide = Workloads.Mpeg2.image ~stages:40 ~frames:1 () in
  Alcotest.(check bool)
    "more stages, more code" true
    (let p1, _ = Profiler.profile thin and p2, _ = Profiler.profile wide in
     Profiler.dynamic_text_bytes p2 > Profiler.dynamic_text_bytes p1)

let test_gen_rng () =
  let r1 = Workloads.Gen.rng 42 and r2 = Workloads.Gen.rng 42 in
  let a = List.init 100 (fun _ -> Workloads.Gen.next r1) in
  let b = List.init 100 (fun _ -> Workloads.Gen.next r2) in
  Alcotest.(check bool) "deterministic" true (a = b);
  Alcotest.(check bool)
    "non-constant" true
    (List.length (List.sort_uniq compare a) > 50);
  List.iter
    (fun v -> Alcotest.(check bool) "range bound" true (v >= 0 && v < 17))
    (List.init 200 (fun _ -> Workloads.Gen.range r1 17));
  match Workloads.Gen.range r1 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "range 0 should raise"

(* Generated stage functions are genuine dataflow: running a stage
   changes its state words and the result depends on the input. *)
let test_gen_stages_dataflow () =
  let b = Isa.Builder.create "stages" in
  let reg = Isa.Reg.r in
  let state = Isa.Builder.space b (4 * 8) in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  let stages =
    Workloads.Gen.stage_functions b (Workloads.Gen.rng 77) ~prefix:"s"
      ~state_addr:state ~count:4 ~body_instrs:40
  in
  Isa.Builder.func b "main" main (fun () ->

      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, -8));
      Isa.Builder.ins b (Isa.Instr.St (Isa.Reg.ra, Isa.Reg.sp, 4));
      Isa.Builder.li b (reg 1) 12345;
      Workloads.Gen.call_stages b stages;
      Isa.Builder.ins b (Isa.Instr.Out (reg 1));
      Isa.Builder.li b (reg 1) 999;
      Workloads.Gen.call_stages b stages;
      Isa.Builder.ins b (Isa.Instr.Out (reg 1));
      Isa.Builder.ins b Isa.Instr.Halt);
  let img = Isa.Builder.build b in
  let r = Softcache.Runner.native img in
  Alcotest.(check bool) "halts" true (r.outcome = Machine.Cpu.Halted);
  match r.outputs with
  | [ a; b2 ] ->
    Alcotest.(check bool) "stateful (second call differs)" true (a <> b2)
  | _ -> Alcotest.fail "expected two outputs"

let test_registry () =
  Alcotest.(check int) "8 workloads" 8 (List.length Workloads.Registry.all);
  Alcotest.(check int) "table1 has 4" 4 (List.length Workloads.Registry.table1);
  Alcotest.(check int) "fig9 has 4" 4 (List.length Workloads.Registry.fig9);
  Alcotest.(check bool) "find missing" true (Workloads.Registry.find "nope" = None);
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      Alcotest.(check bool) (e.name ^ " findable") true
        (Workloads.Registry.find e.name <> None))
    Workloads.Registry.all

let () =
  let golden_cases =
    List.map
      (fun (n, _) -> Alcotest.test_case n `Quick (test_golden n))
      golden
  in
  let equiv_cases =
    List.map
      (fun (e : Workloads.Registry.entry) ->
        Alcotest.test_case e.name `Slow (test_cached_equiv e.name))
      Workloads.Registry.all
  in
  Alcotest.run "workloads"
    [
      ("golden outputs", golden_cases);
      ("softcache equivalence", equiv_cases);
      ( "regressions",
        [
          Alcotest.test_case "compress95 @ 1KB thrash" `Slow
            test_compress_1kb_thrash;
        ] );
      ( "shape",
        [
          Alcotest.test_case "fig9 hot/app ratios" `Quick test_fig9_ratios;
          Alcotest.test_case "table1 dyn/static ratios" `Quick
            test_table1_ratios;
          Alcotest.test_case "adpcm fig8 shape" `Slow test_adpcm_fig8_shape;
          Alcotest.test_case "sensor mode sizing" `Quick
            test_sensor_mode_sizing;
          Alcotest.test_case "compress symbols" `Quick
            (test_symbols "compress95"
               [ "hash_lookup"; "table_insert"; "emit_code"; "compress_run" ]);
          Alcotest.test_case "mpeg2 symbols" `Quick
            (test_symbols "mpeg2enc"
               [ "dct_row"; "dct_col"; "dct_block"; "motion_probe";
                 "quant_block"; "encode_frame" ]);
          Alcotest.test_case "adpcm symbols" `Quick
            (test_symbols "adpcm_encode"
               [ "adpcm_coder"; "adpcm_quantize"; "adpcm_prefilter";
                 "print_stats" ]);
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "deterministic builds" `Quick
            test_images_deterministic;
          Alcotest.test_case "scaling knobs" `Quick test_scaling_knobs;
          Alcotest.test_case "generator rng" `Quick test_gen_rng;
          Alcotest.test_case "stage dataflow" `Quick test_gen_stages_dataflow;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
    ]
