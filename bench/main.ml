(* Benchmark harness: regenerates every table and figure of the paper.

     dune exec bench/main.exe              -- run everything
     dune exec bench/main.exe -- fig5 fig7 -- run selected experiments

   Experiments: table1 fig5 fig6 fig7 fig8 fig9 tagoverhead netcost
   dcache power ablation micro. Absolute numbers come from the
   simulator's cost model; the claims reproduced are the paper's
   *shapes* (who wins, where the knees fall, which ratios hold). *)

let fmt_f = Printf.sprintf "%.3f"

(* ------------------------------------------------------------------ *)
(* Table 1: dynamically- and statically-linked text segment sizes *)

let table1 () =
  Report.section
    "Table 1: application dynamic vs static .text (paper: 21K/193K, 1K/139K, \
     23K/205K, 135K/590K; scaled ~1/8 here)";
  let t =
    Report.Table.create ~title:"text segment sizes"
      ~columns:
        [ "app"; "dynamic .text"; "static .text"; "dyn/static";
          "paper dyn/static" ]
  in
  let paper_ratio =
    [ ("compress95", 21. /. 193.); ("adpcm_encode", 1. /. 139.);
      ("hextobdd", 23. /. 205.); ("mpeg2enc", 135. /. 590.) ]
  in
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let img = e.build () in
      let prof, _ = Profiler.profile img in
      let dyn = Profiler.dynamic_text_bytes prof in
      let st = Isa.Image.static_text_bytes img in
      Report.Table.add_row t
        [
          e.name;
          Report.fmt_bytes dyn;
          Report.fmt_bytes st;
          fmt_f (float_of_int dyn /. float_of_int st);
          fmt_f (List.assoc e.name paper_ratio);
        ])
    Workloads.Registry.table1;
  Report.Table.print t

(* ------------------------------------------------------------------ *)
(* Figure 5: relative execution time of the software I-cache *)

let fig5 () =
  Report.section
    "Figure 5: relative execution time, 129.compress-like workload (paper: \
     ideal 1.00, 48KB 1.17, 24KB 1.19, 1KB >> 1)";
  let img = Workloads.Compress.image () in
  let native = Softcache.Runner.native img in
  Report.kv "ideal (native)" "1.000";
  List.iter
    (fun (label, bytes) ->
      let cfg = Softcache.Config.sparc_prototype ~tcache_bytes:bytes () in
      let cached, ctrl = Softcache.Runner.cached cfg img in
      assert (cached.outputs = native.outputs);
      Report.kv label
        (Printf.sprintf "%.3f  (%d translations, %d evicted blocks)"
           (Softcache.Runner.slowdown ~native ~cached)
           ctrl.stats.translations ctrl.stats.evicted_blocks))
    [
      ("48KB tcache (infinite)", 48 * 1024);
      ("24KB tcache", 24 * 1024);
      ("12KB tcache", 12 * 1024);
      ("1KB tcache (thrashes)", 1024);
    ]

(* ------------------------------------------------------------------ *)
(* Figures 6 and 7: miss rate vs cache size, hardware vs software *)

let sweep_sizes = [ 256; 512; 1024; 2048; 4096; 8192; 16384; 32768; 65536 ]

let fig6 () =
  Report.section
    "Figure 6: hardware I-cache miss rate vs size (direct-mapped, 16B \
     blocks); knees should sit at each program's working set";
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let img = e.build () in
      let caches =
        List.map (fun s -> (s, Hwcache.create ~size_bytes:s ())) sweep_sizes
      in
      let cpu = Machine.Cpu.of_image img in
      cpu.on_fetch <-
        Some
          (fun a -> List.iter (fun (_, c) -> ignore (Hwcache.access c a)) caches);
      let _ = Machine.Cpu.run cpu in
      let series =
        Report.Series.create
          ~title:(Printf.sprintf "%s (hardware)" e.name)
          ~xlabel:"cache KB" ~ylabel:"miss %"
      in
      List.iter
        (fun (s, c) ->
          Report.Series.add series
            (float_of_int s /. 1024.)
            (100. *. Hwcache.miss_rate c))
        caches;
      Report.Series.print series)
    Workloads.Registry.table1

let fig7 () =
  Report.section
    "Figure 7: software tcache miss rate vs size (miss rate = blocks \
     translated / instructions executed)";
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let img = e.build () in
      let series =
        Report.Series.create
          ~title:(Printf.sprintf "%s (software)" e.name)
          ~xlabel:"tcache KB" ~ylabel:"miss %"
      in
      List.iter
        (fun bytes ->
          let cfg = Softcache.Config.sparc_prototype ~tcache_bytes:bytes () in
          match Softcache.Runner.cached cfg img with
          | cached, ctrl ->
            Report.Series.add series
              (float_of_int bytes /. 1024.)
              (100.
              *. Softcache.Stats.miss_rate ctrl.stats ~retired:cached.retired)
          | exception Softcache.Controller.Chunk_too_large _ -> ())
        sweep_sizes;
      Report.Series.print series)
    Workloads.Registry.table1

(* ------------------------------------------------------------------ *)
(* Full associativity: the softcache's architectural argument *)

let associativity () =
  Report.section
    "Full associativity (\"the instruction cache is effectively fully \
     associative ... a module can be guaranteed free of conflict misses \
     provided the module fits\"): two hot procedures placed exactly one \
     cache-size apart, so they alias in a direct-mapped cache";
  let cache_size = 4096 in
  (* two ~64-instruction hot loops separated by cold padding so their
     addresses conflict in a direct-mapped cache of [cache_size] *)
  let img =
    let b = Isa.Builder.create "alias" in
    let r = Workloads.Gen.rng 0xA11A5 in
    let reg = Isa.Reg.r in
    let fa = Isa.Builder.new_label b in
    let fb = Isa.Builder.new_label b in
    let main = Isa.Builder.new_label b in
    Isa.Builder.entry b main;
    let hot name l =
      Isa.Builder.func b name l (fun () ->
          for k = 1 to 60 do
            Isa.Builder.ins b
              (Isa.Instr.Alui (Add, reg 2, reg 2, k land 7))
          done;
          Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra))
    in
    hot "mode_a" fa;
    Workloads.Gen.pad_cold_to b r ~prefix:"pad" ~target_bytes:(cache_size - 300);
    (* align mode_b to exactly one cache size after mode_a so both map
       to the same direct-mapped sets *)
    while Isa.Builder.code_size_bytes b < cache_size do
      Isa.Builder.ins b Isa.Instr.Nop
    done;
    hot "mode_b" fb;
    Isa.Builder.func b "main" main (fun () ->
        Isa.Builder.li b (reg 16) 4000;
        let loop = Isa.Builder.label b in
        Isa.Builder.jal b fa;
        Isa.Builder.jal b fb;
        Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 16, reg 16, -1));
        Isa.Builder.br b Ne (reg 16) Isa.Reg.zero loop;
        Isa.Builder.ins b (Isa.Instr.Out (reg 2));
        Isa.Builder.ins b Isa.Instr.Halt);
    Isa.Builder.build b
  in
  let dm = Hwcache.create ~assoc:1 ~size_bytes:cache_size () in
  let fa_c = Hwcache.create ~assoc:0 ~size_bytes:cache_size () in
  let cpu = Machine.Cpu.of_image img in
  cpu.on_fetch <-
    Some
      (fun a ->
        ignore (Hwcache.access dm a);
        ignore (Hwcache.access fa_c a));
  let _ = Machine.Cpu.run cpu in
  let sw, swslow =
    let native = Softcache.Runner.native img in
    let cfg = Softcache.Config.sparc_prototype ~tcache_bytes:cache_size () in
    let cached, ctrl = Softcache.Runner.cached cfg img in
    ( Softcache.Stats.miss_rate ctrl.stats ~retired:cached.retired,
      Softcache.Runner.slowdown ~native ~cached )
  in
  let pct x = Printf.sprintf "%.3f%%" (100. *. x) in
  Report.kv "HW direct-mapped miss rate"
    (pct (Hwcache.miss_rate dm) ^ "  (the two modes evict each other)");
  Report.kv "HW fully associative" (pct (Hwcache.miss_rate fa_c));
  Report.kv "softcache miss rate"
    (Printf.sprintf "%s  (slowdown %.3f; both modes coexist regardless of \
                     their addresses)"
       (pct sw) swslow)

(* ------------------------------------------------------------------ *)
(* Figure 8: paging vs CC memory size over time *)

let fig8 () =
  Report.section
    "Figure 8: evictions over time vs CC memory (adpcm encode, procedure \
     chunks; paper: 800B pages in steady state, 900B only at start + end \
     blip, 1KB less still)";
  let img = Workloads.Adpcm.encode_image () in
  List.iter
    (fun bytes ->
      let cfg =
        Softcache.Config.make ~tcache_bytes:bytes
          ~chunking:Softcache.Config.Procedure ()
      in
      let cached, ctrl = Softcache.Runner.cached cfg img in
      let total_cycles = max 1 cached.cycles in
      let buckets = 10 in
      let counts = Array.make buckets 0 in
      List.iter
        (fun (cycle, n) ->
          let i = min (buckets - 1) (cycle * buckets / total_cycles) in
          counts.(i) <- counts.(i) + n)
        (Softcache.Stats.eviction_series ctrl.stats);
      let series =
        Report.Series.create
          ~title:(Printf.sprintf "CC memory = %d B" bytes)
          ~xlabel:"run decile" ~ylabel:"evictions"
      in
      Array.iteri
        (fun i n -> Report.Series.add series (float_of_int (i + 1)) (float_of_int n))
        counts;
      Report.Series.print series)
    [ 800; 900; 1024 ]

(* ------------------------------------------------------------------ *)
(* Figure 9: normalised dynamic footprint of the hot code *)

let fig9 () =
  Report.section
    "Figure 9: hot code (90% of samples) / application text (paper: 0.09, \
     0.07, 0.09, 0.13 — a 7-14x reduction)";
  let paper =
    [ ("adpcm_encode", 0.09); ("adpcm_decode", 0.07); ("gzip", 0.09);
      ("cjpeg", 0.13) ]
  in
  let t =
    Report.Table.create ~title:"normalised dynamic footprint"
      ~columns:[ "app"; "hot code"; "app text"; "measured"; "paper" ]
  in
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let img = e.build () in
      let prof, _ = Profiler.profile img in
      let hot = Profiler.hot_bytes prof in
      let app =
        List.fold_left
          (fun a (s : Isa.Image.symbol) ->
            let libc =
              String.length s.sym_name >= 5
              && String.sub s.sym_name 0 5 = "libc_"
            in
            if libc then a else a + s.sym_size)
          0 img.symbols
      in
      Report.Table.add_row t
        [
          e.name;
          Report.fmt_bytes hot;
          Report.fmt_bytes app;
          fmt_f (float_of_int hot /. float_of_int app);
          fmt_f (List.assoc e.name paper);
        ])
    Workloads.Registry.fig9;
  Report.Table.print t

(* ------------------------------------------------------------------ *)
(* Hardware tag overhead: the "11-18% extra" claim *)

let tagoverhead () =
  Report.section
    "Hardware tag-array overhead (paper: \"tags for 32-bit addresses would \
     add an extra 11-18%\", direct-mapped 16B blocks)";
  let t =
    Report.Table.create ~title:"tag overhead"
      ~columns:[ "cache size"; "tag+valid bits/block"; "overhead" ]
  in
  List.iter
    (fun size ->
      let c = Hwcache.create ~size_bytes:size () in
      let ov = Hwcache.tag_overhead c in
      Report.Table.add_row t
        [
          Report.fmt_bytes size;
          string_of_int (int_of_float (ov *. 128.));
          Printf.sprintf "%.1f%%" (100. *. ov);
        ])
    [ 1024; 4096; 16384; 65536; 262144 ];
  Report.Table.print t;
  Report.kv "softcache equivalent"
    "no tag array; metadata reported per run via Controller.metadata_bytes"

(* ------------------------------------------------------------------ *)
(* Space overhead: softcache metadata vs the hardware tag array *)

let spaceoverhead () =
  Report.section
    "Space overhead (abstract: \"a comparable hardware cache would have      space overhead of 12-18% for its tag array\"; the softcache's      overheads are \"an adjustable tradeoff\")";
  let img = Workloads.Compress.image () in
  let t =
    Report.Table.create ~title:"softcache space overheads (compress95)"
      ~columns:
        [ "tcache"; "code expansion"; "map+stub metadata"; "total";
          "hw tag array" ]
  in
  List.iter
    (fun size ->
      let cfg = Softcache.Config.sparc_prototype ~tcache_bytes:size () in
      let _, ctrl = Softcache.Runner.cached cfg img in
      let s = ctrl.stats in
      let expansion =
        float_of_int s.overhead_words /. float_of_int s.translated_words
      in
      let metadata =
        float_of_int (Softcache.Controller.metadata_bytes ctrl)
        /. float_of_int size
      in
      let hw = Hwcache.tag_overhead (Hwcache.create ~size_bytes:size ()) in
      let pct x = Printf.sprintf "%.1f%%" (100. *. x) in
      Report.Table.add_row t
        [
          Report.fmt_bytes size;
          pct expansion;
          pct metadata;
          pct (expansion +. metadata);
          pct hw;
        ])
    [ 4096; 8192; 16384; 32768 ];
  Report.Table.print t;
  Report.kv "note"
    "code expansion = pads/islands/fall slots per translated word;      metadata = tcache map + stub table relative to tcache size"

(* ------------------------------------------------------------------ *)
(* Network overhead: the 60-bytes-per-chunk measurement *)

let netcost () =
  Report.section
    "Network overhead per chunk (paper: \"60 application bytes ... exchanged \
     between CC and MC\" per downloaded chunk)";
  let img = Workloads.Adpcm.encode_image () in
  let net = Netmodel.ethernet_10mbps () in
  let cfg =
    Softcache.Config.make ~tcache_bytes:4096
      ~chunking:Softcache.Config.Procedure ~net ()
  in
  let _, ctrl = Softcache.Runner.cached cfg img in
  let msgs = Netmodel.messages net in
  Report.kv "chunks downloaded" (string_of_int msgs);
  Report.kv "application payload" (Report.fmt_bytes (Netmodel.payload_bytes net));
  Report.kv "protocol overhead"
    (Printf.sprintf "%d B (= %d B/chunk)"
       (msgs * Netmodel.overhead_bytes_per_message net)
       (Netmodel.overhead_bytes_per_message net));
  Report.kv "total on the wire" (Report.fmt_bytes (Netmodel.total_bytes net));
  ignore ctrl

(* ------------------------------------------------------------------ *)
(* Section 3 / Figure 10: the software data cache *)

let dcache () =
  Report.section
    "Section 3 design: software D-cache (stack cache + fully associative \
     predicted dcache; Figure 10 access sequences)";
  let cfg = Dcache.Config.make () in
  Report.kv "specialised constant access"
    (Printf.sprintf "%d cycles (rewritten direct load)" cfg.const_cycles);
  Report.kv "predicted hit"
    (Printf.sprintf "%d cycles (Fig. 10 check sequence)"
       cfg.predicted_hit_cycles);
  Report.kv "guaranteed (slow hit)"
    (Printf.sprintf "%d cycles (binary search of the sorted dcache)"
       (Dcache.Sim.guaranteed_latency_cycles cfg));
  let t =
    Report.Table.create ~title:"per-workload behaviour"
      ~columns:
        [ "app"; "prediction"; "const"; "fast"; "slow"; "miss";
          "tag checks avoided"; "overhead"; "hw D$ miss" ]
  in
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let img = e.build () in
      (* hardware data-cache baseline on the same access stream *)
      let hw = Hwcache.create ~assoc:2 ~block_bytes:32 ~size_bytes:8192 () in
      let native =
        let cpu = Machine.Cpu.of_image img in
        let feed a = ignore (Hwcache.access hw a) in
        cpu.on_load <- Some feed;
        cpu.on_store <- Some feed;
        let outcome = Machine.Cpu.run cpu in
        {
          Softcache.Runner.outcome;
          outputs = Machine.Cpu.outputs cpu;
          cycles = cpu.cycles;
          retired = cpu.retired;
        }
      in
      List.iter
        (fun (pname, pred) ->
          let cfg = Dcache.Config.make ~prediction:pred () in
          let outcome, cpu, st = Dcache.Sim.run cfg img in
          assert (outcome = Machine.Cpu.Halted);
          let pct n =
            if st.data_accesses = 0 then "-"
            else
              Printf.sprintf "%.1f%%"
                (100. *. float_of_int n /. float_of_int st.data_accesses)
          in
          Report.Table.add_row t
            [
              e.name;
              pname;
              pct st.const_hits;
              pct (st.fast_hits + st.second_chance_hits);
              pct st.slow_hits;
              pct st.misses;
              Printf.sprintf "%.1f%%" (100. *. Dcache.Sim.tag_checks_avoided st);
              Printf.sprintf "+%.1f%%"
                (100.
                *. float_of_int (cpu.cycles - native.cycles)
                /. float_of_int native.cycles);
              Printf.sprintf "%.2f%%" (100. *. Hwcache.miss_rate hw);
            ])
        [ ("same-idx", Dcache.Config.Same_index);
          ("2nd-chance", Dcache.Config.Second_chance) ])
    [ List.nth Workloads.Registry.all 0 (* compress *);
      List.nth Workloads.Registry.all 3 (* hextobdd *);
      List.nth Workloads.Registry.all 5 (* gzip *) ];
  Report.Table.print t

(* ------------------------------------------------------------------ *)
(* Section 4: power *)

let power () =
  Report.section
    "Section 4: power (StrongARM: I$ 27% + D$ 16% + WB 2% = 45% of chip \
     power; bank power-down over deduced working sets)";
  let banks = Powermodel.Banks.make ~bank_bytes:4096 ~banks:8 () in
  let t =
    Report.Table.create ~title:"bank power-down (32KB in 8 x 4KB banks)"
      ~columns:[ "app"; "working set"; "active banks"; "chip power saved" ]
  in
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let img = e.build () in
      let prof, _ = Profiler.profile img in
      let ws = Profiler.hot_bytes prof * 5 / 4 in
      Report.Table.add_row t
        [
          e.name;
          Report.fmt_bytes ws;
          string_of_int (Powermodel.Banks.active_banks banks ~working_set:ws);
          Printf.sprintf "%.1f%%"
            (100. *. Powermodel.Banks.chip_saving banks ~working_set:ws);
        ])
    Workloads.Registry.all;
  Report.Table.print t;
  (* net memory-energy effect of dropping the tag array *)
  let img = Workloads.Compress.image () in
  let native = Softcache.Runner.native img in
  let cached, _ =
    Softcache.Runner.cached (Softcache.Config.sparc_prototype ()) img
  in
  let overhead = cached.retired - native.retired in
  List.iter
    (fun size ->
      let te =
        Powermodel.Tag_energy.of_cache ~size_bytes:size ~block_bytes:16
          ~assoc:1
      in
      Report.kv
        (Printf.sprintf "tag energy saved (%s I-cache)" (Report.fmt_bytes size))
        (Printf.sprintf "%.1f%%"
           (100.
           *. Powermodel.Tag_energy.sw_saving te ~accesses:native.retired
                ~overhead_instrs:overhead)))
    [ 8192; 32768 ]

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices the two prototypes differ on *)

let ablation () =
  Report.section
    "Ablation: chunk granularity x eviction policy (4KB tcache, forcing \
     paging)";
  let t =
    Report.Table.create ~title:"chunking x eviction"
      ~columns:
        [ "app"; "config"; "slowdown"; "translations"; "evicted"; "flushes";
          "net bytes" ]
  in
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let img = e.build () in
      let native = Softcache.Runner.native img in
      List.iter
        (fun (cname, chunking, eviction) ->
          let net = Netmodel.create ~overhead_bytes:60 () in
          let cfg =
            Softcache.Config.make ~tcache_bytes:4096 ~chunking ~eviction ~net
              ()
          in
          match Softcache.Runner.cached cfg img with
          | cached, ctrl ->
            assert (cached.outputs = native.outputs);
            Report.Table.add_row t
              [
                e.name;
                cname;
                fmt_f (Softcache.Runner.slowdown ~native ~cached);
                string_of_int ctrl.stats.translations;
                string_of_int ctrl.stats.evicted_blocks;
                string_of_int ctrl.stats.flushes;
                Report.fmt_bytes (Netmodel.total_bytes net);
              ]
          | exception Softcache.Controller.Chunk_too_large _ ->
            Report.Table.add_row t
              [ e.name; cname; "chunk too large"; "-"; "-"; "-"; "-" ])
        [
          ("bb/fifo", Softcache.Config.Basic_block, Softcache.Config.Fifo);
          ("bb/flush", Softcache.Config.Basic_block, Softcache.Config.Flush_all);
          ("proc/fifo", Softcache.Config.Procedure, Softcache.Config.Fifo);
          ("proc/flush", Softcache.Config.Procedure, Softcache.Config.Flush_all);
        ])
    [ List.hd Workloads.Registry.all; List.nth Workloads.Registry.all 3 ];
  Report.Table.print t

(* ------------------------------------------------------------------ *)
(* The complete Section 3 memory system: tcache + scache + dcache *)

let fullsystem () =
  Report.section
    "Full system (Section 3.1): local memory statically divided into      tcache + scache + dcache — instruction and data caching together";
  let t =
    Report.Table.create ~title:"whole-hierarchy overhead"
      ~columns:
        [ "app"; "local memory"; "I-only slowdown"; "I+D slowdown";
          "D tag checks avoided" ]
  in
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let img = e.build () in
      let native = Softcache.Runner.native img in
      let icfg = Softcache.Config.make ~tcache_bytes:(16 * 1024) () in
      let dcfg = Dcache.Config.make () in
      let icached, _ = Softcache.Runner.cached icfg img in
      let full, _ = Dcache.Fullsystem.run icfg dcfg img in
      assert (full.outputs = native.outputs);
      Report.Table.add_row t
        [
          e.name;
          Report.fmt_bytes (Dcache.Fullsystem.local_memory_bytes icfg dcfg);
          fmt_f (Softcache.Runner.slowdown ~native ~cached:icached);
          fmt_f (float_of_int full.cycles /. float_of_int native.cycles);
          Printf.sprintf "%.1f%%"
            (100. *. Dcache.Sim.tag_checks_avoided full.dcache_stats);
        ])
    [ List.hd Workloads.Registry.all (* compress *);
      List.nth Workloads.Registry.all 1 (* adpcm enc *);
      List.nth Workloads.Registry.all 7 (* sensor *) ];
  Report.Table.print t

(* ------------------------------------------------------------------ *)
(* Translate-time binding ablation *)

let bindablation () =
  Report.section
    "Ablation: translate-time direct binding (MC binds resident targets      while rewriting) vs trap-first patching";
  let t =
    Report.Table.create ~title:"bind at translate"
      ~columns:[ "app"; "binding"; "slowdown"; "patches"; "cycles" ]
  in
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let img = e.build () in
      let native = Softcache.Runner.native img in
      List.iter
        (fun (label, bind) ->
          let cfg =
            Softcache.Config.make ~tcache_bytes:(16 * 1024)
              ~bind_at_translate:bind ()
          in
          let cached, ctrl = Softcache.Runner.cached cfg img in
          assert (cached.outputs = native.outputs);
          Report.Table.add_row t
            [
              e.name;
              label;
              fmt_f (Softcache.Runner.slowdown ~native ~cached);
              string_of_int ctrl.stats.patches;
              string_of_int cached.cycles;
            ])
        [ ("at translate", true); ("trap first", false) ])
    [ List.hd Workloads.Registry.all; List.nth Workloads.Registry.all 1 ];
  Report.Table.print t

(* ------------------------------------------------------------------ *)
(* Network latency sweep: when is remote paging viable? *)

let netsweep () =
  Report.section
    "Network latency sweep (adpcm encode, procedure chunks): remote paging      is viable when the working set fits; thrashing multiplies every RTT";
  let img = Workloads.Adpcm.encode_image () in
  let native = Softcache.Runner.native img in
  let t =
    Report.Table.create ~title:"slowdown vs round-trip latency"
      ~columns:[ "RTT (cycles)"; "1KB CC (fits)"; "800B CC (pages)" ]
  in
  List.iter
    (fun rtt ->
      let run bytes =
        let net =
          Netmodel.create ~latency_cycles:rtt ~cycles_per_byte:160
            ~overhead_bytes:60 ()
        in
        let cfg =
          Softcache.Config.make ~tcache_bytes:bytes
            ~chunking:Softcache.Config.Procedure ~net ()
        in
        let cached, _ = Softcache.Runner.cached cfg img in
        assert (cached.outputs = native.outputs);
        Softcache.Runner.slowdown ~native ~cached
      in
      Report.Table.add_row t
        [
          string_of_int rtt; fmt_f (run 1024); fmt_f (run 800);
        ])
    [ 0; 1_000; 10_000; 100_000; 1_000_000 ];
  Report.Table.print t

let faultsweep () =
  Report.section
    "Fault sweep (adpcm encode, procedure chunks, 10 Mbps ethernet): how \
     much does a lossy interconnect cost, and when does paging collapse";
  let img = Workloads.Adpcm.encode_image () in
  let native = Softcache.Runner.native img in
  let t =
    Report.Table.create
      ~title:"recovery under injected faults (seed 42, CRC32 + retry/backoff)"
      ~columns:
        [ "drop"; "corrupt"; "status"; "slowdown"; "retries"; "timeouts";
          "crc-fail"; "recovered" ]
  in
  List.iter
    (fun (drop, corrupt) ->
      let faults = Netmodel.Faults.make ~seed:42 ~drop ~corrupt () in
      let net = Netmodel.ethernet_10mbps ~faults () in
      let cfg =
        Softcache.Config.make ~tcache_bytes:1024
          ~chunking:Softcache.Config.Procedure ~net ()
      in
      let cached, ctrl = Softcache.Runner.cached_robust cfg img in
      let status =
        match cached.Softcache.Runner.status with
        | Softcache.Runner.Finished Machine.Cpu.Halted ->
          if cached.outputs = native.outputs then "ok" else "MISMATCH"
        | Softcache.Runner.Finished Machine.Cpu.Out_of_fuel -> "fuel"
        | Softcache.Runner.Unavailable _ -> "unavailable"
      in
      Report.Table.add_row t
        [
          Printf.sprintf "%.2f" drop;
          Printf.sprintf "%.2f" corrupt;
          status;
          fmt_f (float_of_int cached.cycles /. float_of_int native.cycles);
          string_of_int ctrl.stats.net_retries;
          string_of_int ctrl.stats.net_timeouts;
          string_of_int ctrl.stats.crc_failures;
          string_of_int ctrl.stats.recoveries;
        ])
    [
      (0.0, 0.0); (0.01, 0.0); (0.05, 0.0); (0.2, 0.0); (0.0, 0.01);
      (0.0, 0.05); (0.0, 0.2); (0.1, 0.1); (0.3, 0.3); (0.6, 0.6);
    ];
  Report.Table.print t;
  Report.kv "note"
    "every surviving run is output-equivalent to native; 'unavailable' \
     means the retry budget was exhausted and the run stopped cleanly"

let failures = ref 0

(* ------------------------------------------------------------------ *)
(* Shared harness plumbing. Every sweep used to hand-roll these three
   things — registry iteration, best-of-N wall timing, and the
   BENCH_*.json emitter — and each new sweep copied the previous one's
   version. One copy each, used by prefetchsweep, micro_engines,
   tracesmoke and policysweep. *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Report.kv "FAIL" s)
    fmt

(* Map over the workload registry, building each image once. *)
let over_registry f =
  List.map
    (fun (e : Workloads.Registry.entry) -> f e (e.build ()))
    Workloads.Registry.all

(* Host wall time of [run (mk ())]: one warmup, then best of [n] —
   construction stays outside the timed region, and best-of damps
   scheduler noise on shared CI runners. *)
let best_of ?(n = 3) mk run =
  ignore (run (mk ()));
  let best = ref infinity in
  for _ = 1 to n do
    let x = mk () in
    let t0 = Unix.gettimeofday () in
    ignore (run x);
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

(* Render an engine-lockstep verdict as a gate cell, counting a
   failure for anything that is not clean or out-of-fuel-while-equal. *)
let lockstep_cell ~name verdict =
  match verdict with
  | Check.Lockstep.Engines_equivalent { steps } ->
    Printf.sprintf "ok (%d steps)" steps
  | Check.Lockstep.Engines_out_of_fuel { steps } ->
    Printf.sprintf "ok (fuel, %d steps)" steps
  | v ->
    let s = Format.asprintf "%a" Check.Lockstep.pp_engine_verdict v in
    fail "%s lockstep: %s" name s;
    s

(* Emit a BENCH_*.json artifact. [fields] are (key, preformatted JSON
   value) pairs appended after the "benchmark" tag. *)
let emit_json ~file ~benchmark fields =
  let oc = open_out file in
  Printf.fprintf oc "{\n  \"benchmark\": %S%s\n}\n" benchmark
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf ",\n  %S: %s" k v) fields));
  close_out oc;
  Report.kv "written" file

let json_array rows =
  Printf.sprintf "[\n%s\n  ]" (String.concat ",\n" rows)

(* ------------------------------------------------------------------ *)
(* Prefetch/batching sweep: link bandwidth x prefetch degree
   sensitivity, plus the CI gate — on 10 Mbps ethernet, degree-2
   profile-guided prefetch must beat prefetch-off on both message count
   and total cycles for every registry workload, with the on/off
   lockstep confirming prefetching is architecturally invisible.
   Emits BENCH_prefetch.json. *)

let prefetchsweep () =
  Report.section
    "Prefetch sweep: batched profile-guided chunk prefetch on the MC-CC \
     link (bandwidth x degree sensitivity; gate: on 10 Mbps ethernet \
     degree 2 must beat degree 0 for every workload)";
  let tcache = 48 * 1024 in
  let ranker_of img =
    let prof, _ = Profiler.profile img in
    Some (fun ~lo ~hi -> Profiler.samples_in prof ~lo ~hi)
  in
  let run ~ranker ~cycles_per_byte ~degree img =
    let net =
      Netmodel.create ~latency_cycles:100_000 ~cycles_per_byte
        ~overhead_bytes:60 ()
    in
    let cfg =
      Softcache.Config.make ~tcache_bytes:tcache ~net ~prefetch_degree:degree
        ()
    in
    let prepare (ctrl : Softcache.Controller.t) =
      ctrl.prefetch_ranker <- ranker
    in
    let cached, ctrl = Softcache.Runner.cached_robust ~prepare cfg img in
    (cached, ctrl, net)
  in
  (* bandwidth x degree sensitivity on one paging-heavy workload *)
  let degrees = [ 0; 1; 2; 4; 8 ] in
  let links = [ ("1 Mbps", 1600); ("10 Mbps", 160); ("100 Mbps", 16) ] in
  let sweep_img = Workloads.Adpcm.encode_image () in
  let sweep_ranker = ranker_of sweep_img in
  let st =
    Report.Table.create ~title:"adpcm encode: cycles/messages per link x degree"
      ~columns:
        [ "link"; "degree"; "cycles"; "messages"; "wire bytes"; "prefetch" ]
  in
  let sweep_rows =
    List.concat_map
      (fun (lname, cpb) ->
        List.map
          (fun d ->
            let cached, ctrl, net =
              run ~ranker:sweep_ranker ~cycles_per_byte:cpb ~degree:d
                sweep_img
            in
            let s = ctrl.Softcache.Controller.stats in
            Report.Table.add_row st
              [
                lname;
                string_of_int d;
                string_of_int cached.Softcache.Runner.cycles;
                string_of_int (Netmodel.messages net);
                string_of_int (Netmodel.total_bytes net);
                Printf.sprintf "%d issued / %d installed / %d wasted"
                  s.prefetch_issued s.prefetch_installs s.prefetch_wasted;
              ];
            (lname, cpb, d, cached.Softcache.Runner.cycles,
             Netmodel.messages net))
          degrees)
      links
  in
  Report.Table.print st;
  (* the gate: every registry workload, ethernet, degree 2 vs 0 *)
  let gt =
    Report.Table.create
      ~title:"gate: 10 Mbps ethernet, degree 2 vs prefetch off"
      ~columns:
        [ "app"; "cycles off"; "cycles on"; "ratio"; "msgs off"; "msgs on";
          "lockstep" ]
  in
  let gate_rows =
    over_registry (fun e img ->
        let native = Softcache.Runner.native img in
        let ranker = ranker_of img in
        let off, _, net_off = run ~ranker ~cycles_per_byte:160 ~degree:0 img in
        let on, _, net_on = run ~ranker ~cycles_per_byte:160 ~degree:2 img in
        let ok_outputs =
          off.Softcache.Runner.outputs = native.outputs
          && on.Softcache.Runner.outputs = native.outputs
        in
        if not ok_outputs then fail "%s: outputs diverge from native" e.name;
        let m_off = Netmodel.messages net_off in
        let m_on = Netmodel.messages net_on in
        if m_on >= m_off then
          fail "%s: prefetch does not reduce messages (%d -> %d)" e.name
            m_off m_on;
        if on.cycles >= off.cycles then
          fail "%s: prefetch regresses cycles (%d -> %d)" e.name off.cycles
            on.cycles;
        let mk_cfg () =
          Softcache.Config.make ~tcache_bytes:tcache
            ~net:(Netmodel.ethernet_10mbps ()) ~prefetch_degree:2 ()
        in
        let before = !failures in
        let lockstep_str =
          lockstep_cell ~name:e.name
            (Check.Lockstep.prefetch ~fuel:150_000 ~audit:true mk_cfg img)
        in
        Report.Table.add_row gt
          [
            e.name;
            string_of_int off.cycles;
            string_of_int on.cycles;
            fmt_f (float_of_int on.cycles /. float_of_int off.cycles);
            string_of_int m_off;
            string_of_int m_on;
            lockstep_str;
          ];
        (e.name, off.cycles, on.cycles, m_off, m_on, !failures = before))
  in
  Report.Table.print gt;
  emit_json ~file:"BENCH_prefetch.json" ~benchmark:"prefetchsweep"
    [
      ("tcache_bytes", string_of_int tcache);
      ( "workloads",
        json_array
          (List.map
             (fun (n, c0, c2, m0, m2, ls) ->
               Printf.sprintf
                 "    { \"name\": %S, \"cycles_off\": %d, \"cycles_on\": %d, \
                  \"messages_off\": %d, \"messages_on\": %d, \
                  \"cycle_ratio\": %.4f, \"lockstep_ok\": %b }"
                 n c0 c2 m0 m2
                 (float_of_int c2 /. float_of_int c0)
                 ls)
             gate_rows) );
      ( "sweep",
        json_array
          (List.map
             (fun (l, cpb, d, cyc, msgs) ->
               Printf.sprintf
                 "    { \"link\": %S, \"cycles_per_byte\": %d, \"degree\": \
                  %d, \"cycles\": %d, \"messages\": %d }"
                 l cpb d cyc msgs)
             sweep_rows) );
      ("gate_failures", string_of_int !failures);
    ]

(* ------------------------------------------------------------------ *)
(* Decoded vs interpretive dispatch: host wall time of the two CPU
   engines over the full workload registry, emitted as
   BENCH_micro.json so CI can gate on the speedup. *)

let micro_engines () =
  Report.section
    "Dispatch engines (host wall time): predecoded fetch vs per-fetch \
     interpretive decode";
  let t =
    Report.Table.create ~title:"native run, per engine"
      ~columns:[ "app"; "interpretive (ms)"; "decoded (ms)"; "speedup" ]
  in
  let rows =
    over_registry (fun e img ->
        let mk engine () =
          Machine.Cpu.of_image ~engine ~mem_bytes:(2 * 1024 * 1024) img
        in
        let ti = best_of (mk Machine.Cpu.Interpretive) Machine.Cpu.run in
        let td = best_of (mk Machine.Cpu.Decoded) Machine.Cpu.run in
        let sp = ti /. td in
        Report.Table.add_row t
          [
            e.name;
            Printf.sprintf "%.3f" (1e3 *. ti);
            Printf.sprintf "%.3f" (1e3 *. td);
            fmt_f sp;
          ];
        (e.name, ti, td, sp))
  in
  Report.Table.print t;
  let gm = Report.geomean (List.map (fun (_, _, _, s) -> s) rows) in
  Report.kv "geomean speedup" (fmt_f gm);
  emit_json ~file:"BENCH_micro.json" ~benchmark:"micro_engines"
    [
      ( "workloads",
        json_array
          (List.map
             (fun (n, ti, td, s) ->
               Printf.sprintf
                 "    { \"name\": %S, \"interpretive_s\": %.6f, \
                  \"decoded_s\": %.6f, \"speedup\": %.4f }"
                 n ti td s)
             rows) );
      ("geomean_speedup", Printf.sprintf "%.4f" gm);
    ];
  if gm <= 1.0 then fail "decoded dispatch is not faster than interpretive"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the simulator's hot paths *)

let micro () =
  Report.section "Micro-benchmarks (host wall time of simulator hot paths)";
  let open Bechamel in
  let sum_img =
    let b = Isa.Builder.create "bench_loop" in
    let r1 = Isa.Reg.r 1 and r2 = Isa.Reg.r 2 in
    Isa.Builder.li b r1 1000;
    Isa.Builder.li b r2 0;
    let top = Isa.Builder.label b in
    Isa.Builder.ins b (Isa.Instr.Alu (Add, r2, r2, r1));
    Isa.Builder.ins b (Isa.Instr.Alui (Add, r1, r1, -1));
    Isa.Builder.br b Ne r1 Isa.Reg.zero top;
    Isa.Builder.ins b Isa.Instr.Halt;
    Isa.Builder.build b
  in
  let word =
    Isa.Encode.encode (Isa.Instr.Alui (Add, Isa.Reg.r 1, Isa.Reg.r 2, 42))
  in
  let hw = Hwcache.create ~size_bytes:8192 () in
  let assoc = Dcache.Assoc.create ~blocks:256 in
  for i = 0 to 255 do
    ignore (Dcache.Assoc.insert assoc ~tag:(i * 7))
  done;
  let counter = ref 0 in
  let tests =
    Test.make_grouped ~name:"softcache"
      [
        Test.make ~name:"encode+decode instruction"
          (Staged.stage (fun () -> Isa.Encode.decode word));
        Test.make ~name:"interpret 3k-instr loop"
          (Staged.stage (fun () ->
               let cpu = Machine.Cpu.of_image ~mem_bytes:(2 * 1024 * 1024) sum_img in
               Machine.Cpu.run cpu));
        Test.make ~name:"hwcache access"
          (Staged.stage (fun () ->
               incr counter;
               Hwcache.access hw (!counter * 16 land 0xFFFF)));
        Test.make ~name:"dcache assoc lookup"
          (Staged.stage (fun () ->
               incr counter;
               Dcache.Assoc.lookup assoc ~pred:0 ~tag:(!counter mod 256 * 7)));
        Test.make ~name:"create controller + translate entry"
          (Staged.stage (fun () ->
               let ctrl =
                 Softcache.Controller.create
                   (Softcache.Config.make ~tcache_bytes:2048 ())
                   sum_img
               in
               Softcache.Controller.start ctrl));
      ]
  in
  let instances = Bechamel.Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~quota:(Time.second 0.25) ~stabilize:false () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols (List.hd instances) raw in
  let rows = Hashtbl.fold (fun name res acc -> (name, res) :: acc) results [] in
  List.iter
    (fun (name, res) ->
      match Analyze.OLS.estimates res with
      | Some [ ns ] -> Report.kv name (Printf.sprintf "%.1f ns/run" ns)
      | Some _ | None -> Report.kv name "n/a")
    (List.sort compare rows);
  micro_engines ()

(* ------------------------------------------------------------------ *)
(* Traced smoke run: the CI gate for the tracing subsystem. Every
   registry workload runs once with a tracer attached; the JSONL
   rendering is validated line by line against the event schema, the
   Chrome rendering as well-formed JSON with nondecreasing timestamps
   and matched async residency spans, the attribution ledger must
   conserve exactly against the cycle counter, and the trace-on/off
   lockstep confirms tracing is architecturally invisible. Exports
   BENCH_trace.jsonl and BENCH_trace_chrome.json and re-validates them
   from disk. *)

let tracesmoke () =
  Report.section
    "Trace smoke: traced runs validated per exporter (gate: schema-valid \
     exports, exact cycle attribution, zero perturbation)";
  let mk_cfg () =
    Softcache.Config.make ~tcache_bytes:(2 * 1024)
      ~net:(Netmodel.ethernet_10mbps ()) ()
  in
  let t =
    Report.Table.create ~title:"traced runs (2 KB tcache, 10 Mbps ethernet)"
      ~columns:
        [ "app"; "cycles"; "events"; "dropped"; "jsonl"; "chrome"; "lockstep" ]
  in
  let artifact = ref None in
  let (_ : unit list) =
    over_registry (fun e img ->
        let ctrl = Softcache.Controller.create (mk_cfg ()) img in
        let tr = Trace.create () in
        Softcache.Controller.attach_tracer ctrl tr;
        let outcome = Softcache.Controller.run ctrl in
        if outcome <> Machine.Cpu.Halted then fail "%s: did not halt" e.name;
        if !artifact = None then artifact := Some tr;
        if not (Trace.conserved tr ~total:ctrl.cpu.cycles) then
          fail "%s: attribution does not conserve (sum %d vs %d)" e.name
            (Trace.summary tr).Trace.s_total ctrl.cpu.cycles;
        let jsonl_str =
          match Trace.Schema.validate_jsonl (Trace.to_jsonl tr) with
          | Ok n -> Printf.sprintf "ok (%d lines)" n
          | Error err ->
            fail "%s jsonl: %s" e.name err;
            "FAIL"
        in
        let chrome_str =
          match Trace.Schema.validate_chrome (Trace.to_chrome tr) with
          | Ok n -> Printf.sprintf "ok (%d events)" n
          | Error err ->
            fail "%s chrome: %s" e.name err;
            "FAIL"
        in
        let lockstep_str =
          lockstep_cell ~name:e.name
            (Check.Lockstep.trace ~fuel:150_000 (fun () -> mk_cfg ()) img)
        in
        Report.Table.add_row t
          [
            e.name;
            string_of_int ctrl.cpu.cycles;
            string_of_int (Trace.emitted tr);
            string_of_int (Trace.dropped tr);
            jsonl_str;
            chrome_str;
            lockstep_str;
          ])
  in
  Report.Table.print t;
  (* artifacts: export the first workload's trace in both formats and
     validate what actually landed on disk *)
  match !artifact with
  | None -> fail "no trace to export"
  | Some tr ->
    let slurp f = In_channel.with_open_text f In_channel.input_all in
    Trace.export tr ~format:`Jsonl "BENCH_trace.jsonl";
    Trace.export tr ~format:`Chrome "BENCH_trace_chrome.json";
    (match Trace.Schema.validate_jsonl (slurp "BENCH_trace.jsonl") with
    | Ok _ -> ()
    | Error err -> fail "BENCH_trace.jsonl: %s" err);
    (match Trace.Schema.validate_chrome (slurp "BENCH_trace_chrome.json") with
    | Ok _ -> ()
    | Error err -> fail "BENCH_trace_chrome.json: %s" err);
    Report.kv "written" "BENCH_trace.jsonl, BENCH_trace_chrome.json"

(* ------------------------------------------------------------------ *)
(* Replacement-policy sweep: policy x tcache size over the paging
   workloads, plus the CI gate — at sub-working-set sizes a recency
   policy must never translate more than the FIFO sweep it defers to,
   and the whole policy registry must be architecturally equivalent
   (Check.Lockstep.policies). Emits BENCH_policy.json.

   The numbers to expect are modest by design: block entries are only
   observable at trap granularity (patched direct branches bypass the
   controller entirely), so LRU/RRIP deviate from the sweep only when
   it is about to kill a block with recent observed reuse. Few
   deviations, but each one saves re-translations — and never costs
   any, which is what the gate checks. *)

let policysweep () =
  Report.section
    "Policy sweep: eviction policy x tcache size (gate: lru/rrip/trrip \
     translations <= fifo at sub-working-set sizes; profiled trrip <= rrip \
     everywhere and strictly better on >= 3 cells; full-registry lockstep \
     equivalence)";
  let sizes = [ 2048; 4096; 8192 ] in
  let gate_workloads = [ "compress95"; "mpeg2enc" ] in
  let t =
    Report.Table.create ~title:"policy x tcache size"
      ~columns:
        [ "app"; "tcache"; "policy"; "cycles"; "translations"; "evicted";
          "outputs" ]
  in
  let grid = ref [] in
  let (_ : unit list) =
    over_registry (fun e img ->
        if not (List.mem e.name gate_workloads) then ()
        else begin
          let native = Softcache.Runner.native img in
          (* one profiling pre-run per workload: the trrip rows attach
             its temperature classifier, every other policy ignores it *)
          let prof, _ = Profiler.profile img in
          let classify = Profiler.temperature_classifier prof in
          let oracle ~lo ~hi =
            match classify ~lo ~hi with
            | Profiler.Hot -> Softcache.Policy.Hot
            | Profiler.Warm -> Softcache.Policy.Warm
            | Profiler.Cold -> Softcache.Policy.Cold
          in
          (* the sizing estimate decides where the prior pays: primed
             only in deep thrash, unprimed (= plain rrip) around and
             above the knee *)
          let est =
            Softcache.Sizing.estimate ~image:img
              ~chunking:Softcache.Config.Basic_block
              ~samples_in:(fun ~lo ~hi -> Profiler.samples_in prof ~lo ~hi)
              ~sizes ()
          in
          List.iter
            (fun bytes ->
              List.iter
                (fun (pname, ev) ->
                  let cfg =
                    Softcache.Config.make ~tcache_bytes:bytes ~eviction:ev ()
                  in
                  let prepare c =
                    if
                      ev = Softcache.Config.Trrip
                      && Softcache.Sizing.deep_thrash est ~tcache_bytes:bytes
                    then
                      Softcache.Controller.set_temperature_oracle c
                        (Some oracle)
                  in
                  match Softcache.Runner.cached_robust ~prepare cfg img with
                  | r, ctrl ->
                    let ok =
                      r.status = Softcache.Runner.Finished Machine.Cpu.Halted
                      && r.outputs = native.outputs
                    in
                    if not ok then
                      fail "%s/%s/%dB: outputs diverge from native" e.name
                        pname bytes;
                    Report.Table.add_row t
                      [
                        e.name;
                        Report.fmt_bytes bytes;
                        pname;
                        string_of_int r.cycles;
                        string_of_int ctrl.stats.translations;
                        string_of_int ctrl.stats.evicted_blocks;
                        (if ok then "ok" else "MISMATCH");
                      ];
                    grid :=
                      (e.name, bytes, pname, r.cycles,
                       ctrl.stats.translations, ctrl.stats.evicted_blocks, ok)
                      :: !grid
                  | exception Softcache.Controller.Chunk_too_large _ ->
                    (* flush-all cannot place this workload's largest
                       chunk at this size; that is a configuration
                       limit, not a gate failure *)
                    Report.Table.add_row t
                      [ e.name; Report.fmt_bytes bytes; pname;
                        "chunk too large"; "-"; "-"; "-" ])
                Softcache.Config.eviction_table)
            sizes
        end)
  in
  Report.Table.print t;
  (* the gate: at every size where both completed, a recency policy
     must not translate more than fifo *)
  let translations name bytes pname =
    List.find_map
      (fun (n, b, p, _, tr, _, _) ->
        if n = name && b = bytes && p = pname then Some tr else None)
      !grid
  in
  List.iter
    (fun name ->
      List.iter
        (fun bytes ->
          match translations name bytes "fifo" with
          | None -> ()
          | Some fifo_tr ->
            List.iter
              (fun pname ->
                match translations name bytes pname with
                | Some tr when tr > fifo_tr ->
                  fail "%s/%dB: %s translates more than fifo (%d > %d)" name
                    bytes pname tr fifo_tr
                | Some _ | None -> ())
              [ "lru"; "rrip"; "trrip" ])
        sizes)
    gate_workloads;
  (* trrip rides a real profile on every gate cell, so the temperature
     prior must pay for itself: never more translations than plain
     rrip anywhere, strictly fewer on at least three cells *)
  let trrip_wins = ref 0 and trrip_cells = ref 0 in
  List.iter
    (fun name ->
      List.iter
        (fun bytes ->
          match
            (translations name bytes "rrip", translations name bytes "trrip")
          with
          | Some rrip_tr, Some trrip_tr ->
            incr trrip_cells;
            if trrip_tr > rrip_tr then
              fail "%s/%dB: trrip translates more than rrip (%d > %d)" name
                bytes trrip_tr rrip_tr
            else if trrip_tr < rrip_tr then incr trrip_wins
          | _ -> ())
        sizes)
    gate_workloads;
  Report.kv "trrip vs rrip"
    (Printf.sprintf "strictly fewer translations on %d of %d profiled cells"
       !trrip_wins !trrip_cells);
  if !trrip_wins < 3 then
    fail "trrip strictly beat rrip on only %d of %d profiled cells (need >= 3)"
      !trrip_wins !trrip_cells;
  (* full-registry architectural equivalence, every policy vs native
     and vs each other, with the invariant auditor attached *)
  let lt =
    Report.Table.create ~title:"lockstep: all policies vs native"
      ~columns:[ "app"; "verdict" ]
  in
  let lockstep_rows =
    over_registry (fun e img ->
        let mk_cfg () = Softcache.Config.make ~tcache_bytes:8192 () in
        let v =
          Check.Lockstep.policies ~fuel:8_000_000 ~audit:(e.name = "sensor_modes")
            mk_cfg img
        in
        let ok =
          match v with Check.Lockstep.Policies_equivalent _ -> true | _ -> false
        in
        let s = Format.asprintf "%a" Check.Lockstep.pp_policies_verdict v in
        if not ok then fail "%s policies lockstep: %s" e.name s;
        Report.Table.add_row lt [ e.name; s ];
        (e.name, ok, s))
  in
  Report.Table.print lt;
  emit_json ~file:"BENCH_policy.json" ~benchmark:"policysweep"
    [
      ( "grid",
        json_array
          (List.rev_map
             (fun (n, b, p, cyc, tr, ev, ok) ->
               Printf.sprintf
                 "    { \"name\": %S, \"tcache_bytes\": %d, \"policy\": %S, \
                  \"cycles\": %d, \"translations\": %d, \"evicted\": %d, \
                  \"outputs_ok\": %b }"
                 n b p cyc tr ev ok)
             !grid) );
      ( "lockstep",
        json_array
          (List.map
             (fun (n, ok, s) ->
               Printf.sprintf "    { \"name\": %S, \"ok\": %b, \"verdict\": %S }"
                 n ok s)
             lockstep_rows) );
      ("trrip_cells", string_of_int !trrip_cells);
      ("trrip_wins", string_of_int !trrip_wins);
      ("gate_failures", string_of_int !failures);
    ]

(* ------------------------------------------------------------------ *)
(* Analytic sizing: the dominant-block estimator against the measured
   Fig. 7 knee, plus the CI gate — the predicted knee must land within
   one ladder step of the measured knee on at least 6 of the 8 registry
   workloads. Emits BENCH_sizing.json.

   The measured knee is read off the fifo translation curve: the
   smallest tcache size whose translation count sits within 2x of the
   count at the largest completing size — where the Fig. 7 curve has
   gone flat, capacity misses are gone and what remains is the cold
   footprint. *)

let sizing () =
  Report.section
    "Sizing: dominant-block analytic knee vs measured Fig. 7 knee (gate: \
     within one ladder step on >= 6 of 8 registry workloads)";
  let ladder = Array.of_list sweep_sizes in
  let step_of bytes =
    let rec go i =
      if i >= Array.length ladder then -1
      else if ladder.(i) = bytes then i
      else go (i + 1)
    in
    go 0
  in
  let t =
    Report.Table.create ~title:"predicted vs measured tcache knee"
      ~columns:
        [ "app"; "chunks"; "dominant"; "dom tcache"; "predicted"; "knee";
          "measured"; "steps off"; "verdict" ]
  in
  let hits = ref 0 in
  let rows =
    over_registry (fun e img ->
        let prof, _ = Profiler.profile img in
        let est =
          Softcache.Sizing.estimate ~image:img
            ~chunking:Softcache.Config.Basic_block
            ~samples_in:(fun ~lo ~hi -> Profiler.samples_in prof ~lo ~hi)
            ~sizes:sweep_sizes ()
        in
        let curve =
          List.filter_map
            (fun bytes ->
              let cfg =
                Softcache.Config.sparc_prototype ~tcache_bytes:bytes ()
              in
              match Softcache.Runner.cached cfg img with
              | cached, ctrl ->
                if cached.outputs <> (Softcache.Runner.native img).outputs
                then fail "%s/%dB: outputs diverge from native" e.name bytes;
                Some (bytes, ctrl.stats.translations)
              | exception Softcache.Controller.Chunk_too_large _ -> None)
            sweep_sizes
        in
        let measured =
          match List.rev curve with
          | [] -> None
          | (_, tail_tr) :: _ ->
            List.find_map
              (fun (bytes, tr) ->
                if tr <= 2 * tail_tr then Some bytes else None)
              curve
        in
        let delta =
          match (est.predicted_knee, measured) with
          | Some p, Some m -> Some (abs (step_of p - step_of m))
          | _ -> None
        in
        let ok = match delta with Some d -> d <= 1 | None -> false in
        if ok then incr hits;
        let fmt_opt = function Some b -> Report.fmt_bytes b | None -> "-" in
        Report.Table.add_row t
          [
            e.name;
            string_of_int est.chunks_walked;
            string_of_int est.dominant_chunks;
            Report.fmt_bytes est.dominant_tcache_bytes;
            Report.fmt_bytes est.predicted_bytes;
            fmt_opt est.predicted_knee;
            fmt_opt measured;
            (match delta with Some d -> string_of_int d | None -> "-");
            (if ok then "ok" else "OFF");
          ];
        (e.name, est, measured, delta, ok))
  in
  Report.Table.print t;
  Report.kv "knee accuracy"
    (Printf.sprintf "within one ladder step on %d of %d workloads" !hits
       (List.length rows));
  if !hits < 6 then
    fail "sizing knee within one step on only %d of %d workloads (need >= 6)"
      !hits (List.length rows);
  emit_json ~file:"BENCH_sizing.json" ~benchmark:"sizing"
    [
      ( "workloads",
        json_array
          (List.map
             (fun (n, (est : Softcache.Sizing.estimate), measured, delta, ok) ->
               Printf.sprintf
                 "    { \"name\": %S, \"chunks_walked\": %d, \
                  \"dominant_chunks\": %d, \"dominant_tcache_bytes\": %d, \
                  \"predicted_bytes\": %d, \"predicted_knee\": %s, \
                  \"measured_knee\": %s, \"step_delta\": %s, \"ok\": %b }"
                 n est.chunks_walked est.dominant_chunks
                 est.dominant_tcache_bytes est.predicted_bytes
                 (match est.predicted_knee with
                 | Some b -> string_of_int b
                 | None -> "null")
                 (match measured with
                 | Some b -> string_of_int b
                 | None -> "null")
                 (match delta with
                 | Some d -> string_of_int d
                 | None -> "null")
                 ok)
             rows) );
      ("knee_hits", string_of_int !hits);
      ("gate_failures", string_of_int !failures);
    ]

(* ------------------------------------------------------------------ *)
(* Chaining sweep: trap elimination from eager branch chaining and
   profile-guided superblock formation, plus the CI gates — chaining
   must never increase the trap count on any grid cell, must cut it by
   at least 20% on at least one gate workload, and all three modes
   must stay observably equivalent (Check.Lockstep.chain_modes) across
   the whole registry. Emits BENCH_chain.json.

   The paper's pitch is that a patched branch costs nothing while a
   trap costs a controller round-trip; what chaining adds on top of
   lazy backpatching only shows under churn, where re-armed exits are
   re-patched at target re-install instead of each trapping once
   more. *)

let chainsweep () =
  Report.section
    "Chain sweep: off / chain / chain+superblock x tcache size (gate: \
     chaining never adds traps, cuts them >= 20% somewhere; registry-wide \
     mode equivalence)";
  let sizes = [ 2048; 4096; 16384 ] in
  let threshold = 32 in
  let gate_workloads = [ "compress95"; "mpeg2enc" ] in
  let modes = [ ("off", false, 0); ("chain", true, 0);
                ("chain+superblock", true, threshold) ] in
  let t =
    Report.Table.create ~title:"chaining x tcache size"
      ~columns:
        [ "app"; "tcache"; "mode"; "cycles"; "traps"; "patches"; "chained";
          "reverts"; "superblocks"; "guarded"; "outputs" ]
  in
  let grid = ref [] in
  let (_ : unit list) =
    over_registry (fun e img ->
        if not (List.mem e.name gate_workloads) then ()
        else begin
          let native = Softcache.Runner.native img in
          let prof, _ = Profiler.profile img in
          let oracle =
            Softcache.Cc_chain.oracle_of_profile ~image:img
              ~chunking:Softcache.Config.Basic_block
              ~edges_from:(Profiler.edges_from prof)
              ~samples_at:(fun a -> Profiler.samples_in prof ~lo:a ~hi:(a + 4))
          in
          List.iter
            (fun bytes ->
              List.iter
                (fun (mname, chain, sb_threshold) ->
                  let cfg =
                    Softcache.Config.make ~tcache_bytes:bytes
                      ~chunking:Softcache.Config.Basic_block ~chain
                      ~superblock_threshold:sb_threshold ()
                  in
                  let r, ctrl =
                    Softcache.Runner.cached_robust
                      ~prepare:(fun c ->
                        c.Softcache.Controller.chain_oracle <- Some oracle;
                        c.Softcache.Controller.dynamic_text_hint <-
                          Some (Profiler.dynamic_text_bytes prof))
                      cfg img
                  in
                  let ok =
                    r.status = Softcache.Runner.Finished Machine.Cpu.Halted
                    && r.outputs = native.outputs
                  in
                  if not ok then
                    fail "%s/%s/%dB: outputs diverge from native" e.name mname
                      bytes;
                  Report.Table.add_row t
                    [
                      e.name;
                      Report.fmt_bytes bytes;
                      mname;
                      string_of_int r.cycles;
                      string_of_int ctrl.stats.traps;
                      string_of_int ctrl.stats.patches;
                      string_of_int ctrl.stats.chained;
                      string_of_int ctrl.stats.reverts;
                      string_of_int ctrl.stats.superblocks;
                      string_of_int ctrl.stats.superblock_guard_skips;
                      (if ok then "ok" else "MISMATCH");
                    ];
                  grid :=
                    (e.name, bytes, mname, r.cycles, ctrl.stats.traps,
                     ctrl.stats.patches, ctrl.stats.chained,
                     ctrl.stats.reverts, ctrl.stats.superblocks,
                     ctrl.stats.superblock_guard_skips, ok)
                    :: !grid)
                modes)
            sizes
        end)
  in
  Report.Table.print t;
  (* gate 1: plain chaining may never trap more than off on any cell,
     and — now that promotion is knee-guarded — superblock formation
     may never trap more than plain chaining either. Group
     reservations used to churn live blocks at near-working-set sizes
     (mpeg2enc at 16 KB trapped 66% over plain chain), which this grid
     merely reported; the profile-driven guard declines promotions
     when the rewritten working set marginally exceeds the tcache, so
     the knee is gated now. *)
  let traps name bytes mname =
    List.find_map
      (fun (n, b, m, _, tr, _, _, _, _, _, _) ->
        if n = name && b = bytes && m = mname then Some tr else None)
      !grid
  in
  List.iter
    (fun name ->
      List.iter
        (fun bytes ->
          (match (traps name bytes "off", traps name bytes "chain") with
          | Some off_tr, Some ch_tr when ch_tr > off_tr ->
            fail "%s/%dB: chain traps more than off (%d > %d)" name bytes
              ch_tr off_tr
          | _ -> ());
          match
            (traps name bytes "chain", traps name bytes "chain+superblock")
          with
          | Some ch_tr, Some sb_tr when sb_tr > ch_tr ->
            fail "%s/%dB: chain+superblock traps more than chain (%d > %d)"
              name bytes sb_tr ch_tr
          | _ -> ())
        sizes)
    gate_workloads;
  (* gate 2: some chaining mode must cut traps by >= 20% on some gate
     cell (superblocks deliver this: the contiguous layout keeps whole
     hot chains trap-free) *)
  let best_reduction = ref 0.0 in
  List.iter
    (fun name ->
      List.iter
        (fun bytes ->
          List.iter
            (fun mname ->
              match (traps name bytes "off", traps name bytes mname) with
              | Some off_tr, Some ch_tr when off_tr > 0 ->
                let red =
                  float_of_int (off_tr - ch_tr) /. float_of_int off_tr
                in
                if red > !best_reduction then best_reduction := red
              | _ -> ())
            [ "chain"; "chain+superblock" ])
        sizes)
    gate_workloads;
  Report.kv "best trap reduction"
    (Printf.sprintf "%.1f%%" (100.0 *. !best_reduction));
  if !best_reduction < 0.20 then
    fail "chaining never reached a 20%% trap reduction (best %.1f%%)"
      (100.0 *. !best_reduction);
  (* gate 3: registry-wide observational equivalence of all three
     modes, each in data-access lockstep with native execution *)
  let lt =
    Report.Table.create ~title:"lockstep: chain modes vs native"
      ~columns:[ "app"; "verdict" ]
  in
  let lockstep_rows =
    over_registry (fun e img ->
        let prof, _ = Profiler.profile ~fuel:12_000_000 img in
        let oracle =
          Softcache.Cc_chain.oracle_of_profile ~image:img
            ~chunking:Softcache.Config.Basic_block
            ~edges_from:(Profiler.edges_from prof)
            ~samples_at:(fun a -> Profiler.samples_in prof ~lo:a ~hi:(a + 4))
        in
        let mk_cfg () =
          Softcache.Config.make ~tcache_bytes:4096
            ~chunking:Softcache.Config.Basic_block ()
        in
        let v =
          Check.Lockstep.chain_modes ~fuel:12_000_000 ~oracle
            ~superblock_threshold:16
            ~audit:(e.name = "sensor_modes")
            mk_cfg img
        in
        let ok =
          match v with Check.Lockstep.Modes_equivalent _ -> true | _ -> false
        in
        let s = Format.asprintf "%a" Check.Lockstep.pp_modes_verdict v in
        if not ok then fail "%s chain modes lockstep: %s" e.name s;
        Report.Table.add_row lt [ e.name; s ];
        (e.name, ok, s))
  in
  Report.Table.print lt;
  emit_json ~file:"BENCH_chain.json" ~benchmark:"chainsweep"
    [
      ( "grid",
        json_array
          (List.rev_map
             (fun (n, b, m, cyc, tr, pa, ch, rv, sb, gd, ok) ->
               Printf.sprintf
                 "    { \"name\": %S, \"tcache_bytes\": %d, \"mode\": %S, \
                  \"cycles\": %d, \"traps\": %d, \"patches\": %d, \
                  \"chained\": %d, \"reverts\": %d, \"superblocks\": %d, \
                  \"guarded\": %d, \"outputs_ok\": %b }"
                 n b m cyc tr pa ch rv sb gd ok)
             !grid) );
      ( "lockstep",
        json_array
          (List.map
             (fun (n, ok, s) ->
               Printf.sprintf "    { \"name\": %S, \"ok\": %b, \"verdict\": %S }"
                 n ok s)
             lockstep_rows) );
      ( "best_trap_reduction",
        Printf.sprintf "%.4f" !best_reduction );
      ("superblock_threshold", string_of_int threshold);
      ("gate_failures", string_of_int !failures);
    ]

(* ------------------------------------------------------------------ *)
(* Fleet sweep: one MC serving N CC clients over a shared link —
   clients x link bandwidth grid with a dedup-off twin per cell, plus
   the CI gates: shared-chunk dedup must cut aggregate wire bytes by
   at least 30% on the 4-client identical-workload fleet, every cell
   must pass Check.Audit.fleet, and a 1-client fleet must be
   cycle-identical to the plain single-client path for every registry
   workload (Check.Lockstep.fleet). Emits BENCH_fleet.json. *)

let fleetsweep () =
  Report.section
    "Fleet sweep: N clients x link bandwidth on one shared MC link (gate: \
     dedup cuts aggregate wire bytes >= 30% at 4 clients; fleet audits \
     clean; 1-client fleet cycle-identical registry-wide)";
  let app = "compress95" in
  let img =
    match Workloads.Registry.find app with
    | Some e -> e.build ()
    | None -> assert false
  in
  (* cycles/byte at 200 MHz: the ARM prototype's 10 Mbps link and a
     4x-slower variant where queueing and coalescing matter more *)
  let links = [ ("10mbps", 160); ("2.5mbps", 640) ] in
  let clients_axis = [ 1; 2; 4; 8 ] in
  let fuel = 2_000_000 in
  let cell ~clients ~cpb ~dedup =
    let net =
      Netmodel.create ~latency_cycles:100_000 ~cycles_per_byte:cpb
        ~overhead_bytes:60 ()
    in
    let mk_cfg _ =
      Softcache.Config.make ~tcache_bytes:4096
        ~chunking:Softcache.Config.Basic_block ~net ()
    in
    let fl =
      Fleet.create
        ~config:(Fleet.config ~clients ~dedup ())
        ~net mk_cfg [| img |]
    in
    Fleet.run ~fuel fl;
    (match Check.Audit.fleet fl with
    | [] -> ()
    | v :: _ as vs ->
      fail "fleet audit %s/%d clients/dedup=%b: %d violations (first: %s)"
        app clients dedup (List.length vs)
        (Format.asprintf "%a" Check.Audit.pp_violation v));
    fl
  in
  let t =
    Report.Table.create ~title:"fleet: clients x link (identical workloads)"
      ~columns:
        [ "app"; "link"; "clients"; "dedup"; "wire bytes"; "frames";
          "coalesced"; "piggyback"; "cache hits"; "stall p99" ]
  in
  let rows = ref [] in
  let field fl k = List.assoc k (Fleet.summary_fields fl) in
  List.iter
    (fun (lname, cpb) ->
      List.iter
        (fun clients ->
          List.iter
            (fun dedup ->
              let fl = cell ~clients ~cpb ~dedup in
              Report.Table.add_row t
                [
                  app; lname; string_of_int clients; string_of_bool dedup;
                  field fl "wire_bytes"; field fl "frames";
                  field fl "coalesced"; field fl "piggybacked";
                  field fl "cache_hits"; field fl "stall_p99";
                ];
              rows := (lname, clients, dedup, fl) :: !rows)
            [ true; false ])
        clients_axis)
    links;
  Report.Table.print t;
  (* gate: dedup must cut aggregate wire bytes >= 30% at 4 clients on
     every link — N identical clients share almost every chunk, so
     coalesced joins should eliminate most redundant frames *)
  let wire fl = int_of_string (field fl "wire_bytes") in
  List.iter
    (fun (lname, _) ->
      let find dedup =
        List.find_map
          (fun (l, c, d, fl) ->
            if l = lname && c = 4 && d = dedup then Some fl else None)
          !rows
      in
      match (find true, find false) with
      | Some don, Some doff ->
        let won = wire don and woff = wire doff in
        let cut =
          if woff = 0 then 0.0
          else float_of_int (woff - won) /. float_of_int woff
        in
        Report.kv
          (Printf.sprintf "dedup wire cut (%s, 4 clients)" lname)
          (Printf.sprintf "%.1f%% (%d -> %d bytes)" (100.0 *. cut) woff won);
        if cut < 0.30 then
          fail "%s/4 clients: dedup cut aggregate wire bytes only %.1f%%"
            lname (100.0 *. cut)
      | _ -> fail "%s: missing 4-client dedup twin" lname)
    links;
  (* gate: 1-client fleet is cycle-identical to the plain path, for
     every registry workload, over a faulty ethernet link (drops and
     corruption exercise the retry machinery on both sides) *)
  let lt =
    Report.Table.create ~title:"lockstep: 1-client fleet vs solo"
      ~columns:[ "app"; "verdict" ]
  in
  let lockstep_rows =
    over_registry (fun e img ->
        let mk_cfg () =
          let faults =
            Netmodel.Faults.make ~seed:11 ~drop:0.02 ~corrupt:0.01 ()
          in
          Softcache.Config.make ~tcache_bytes:4096
            ~chunking:Softcache.Config.Basic_block
            ~net:(Netmodel.ethernet_10mbps ~faults ()) ()
        in
        let v = Check.Lockstep.fleet ~fuel:2_000_000 mk_cfg img in
        let s = lockstep_cell ~name:(e.name ^ " fleet") v in
        Report.Table.add_row lt [ e.name; s ];
        let ok =
          match v with
          | Check.Lockstep.Engines_equivalent _
          | Check.Lockstep.Engines_out_of_fuel _ -> true
          | _ -> false
        in
        (e.name, ok, s))
  in
  Report.Table.print lt;
  emit_json ~file:"BENCH_fleet.json" ~benchmark:"fleetsweep"
    [
      ( "grid",
        json_array
          (List.rev_map
             (fun (lname, _, _, fl) ->
               Printf.sprintf "    { \"name\": %S, \"link\": %S, %s }" app
                 lname
                 (String.concat ", "
                    (List.map
                       (fun (k, v) -> Printf.sprintf "%S: %S" k v)
                       (Fleet.summary_fields fl))))
             !rows) );
      ( "lockstep",
        json_array
          (List.map
             (fun (n, ok, s) ->
               Printf.sprintf
                 "    { \"name\": %S, \"ok\": %b, \"verdict\": %S }" n ok s)
             lockstep_rows) );
      ("gate_failures", string_of_int !failures);
    ]

(* ------------------------------------------------------------------ *)
(* Shard sweep: harts x tcache size on one shared tcache. N hart
   contexts replay the workload under the seeded interleaving
   scheduler; concurrent misses for the same chunk coalesce onto the
   in-flight fill, so the shared tcache should need far fewer wire
   messages than N independent solo caches. Gates: the 1-hart sharded
   run is cycle-identical to the solo controller on every registry
   workload (Check.Lockstep.shards); every grid cell passes the full
   shard audit (Check.Audit.shards); and 4-hart coalescing cuts wire
   messages vs 4 independent solo runs on >= half the registry.
   Emits BENCH_shard.json. *)

let shardsweep () =
  Report.section
    "Shard sweep: harts x tcache size on one shared tcache (gates: 1-hart \
     sharded run cycle-identical to solo registry-wide; every cell audits \
     clean; 4-hart coalescing cuts wire messages vs 4 solo runs on >= \
     half the registry)";
  let app = "compress95" in
  let img =
    match Workloads.Registry.find app with
    | Some e -> e.build ()
    | None -> assert false
  in
  let harts_axis = [ 1; 2; 4; 8 ] in
  let sizes = [ 4096; 16384 ] in
  let fuel = 800_000 in
  let cell ~harts ~tcache =
    let net = Netmodel.ethernet_10mbps () in
    let cfg =
      Softcache.Config.make ~tcache_bytes:tcache
        ~chunking:Softcache.Config.Basic_block ~net ~harts
        ~shards:(if harts >= 4 then 2 else 1) ~sched_seed:7 ()
    in
    let ctrl = Softcache.Controller.create cfg img in
    let sh = Softcache.Shard.attach ctrl in
    ignore (Softcache.Shard.run ~fuel sh);
    (match Check.Audit.shards sh with
    | [] -> ()
    | v :: _ as vs ->
      fail "shard audit %s/%d harts/%d B: %d violations (first: %s)" app
        harts tcache (List.length vs)
        (Format.asprintf "%a" Check.Audit.pp_violation v));
    (sh, ctrl, Netmodel.messages net)
  in
  let t =
    Report.Table.create ~title:"shard: harts x tcache size"
      ~columns:
        [ "app"; "harts"; "tcache"; "makespan"; "total cycles"; "fills";
          "coalesced"; "fill-wait"; "mc-wait"; "wire msgs" ]
  in
  let rows = ref [] in
  List.iter
    (fun tcache ->
      List.iter
        (fun harts ->
          let sh, ctrl, msgs = cell ~harts ~tcache in
          let stats = ctrl.Softcache.Controller.stats in
          Report.Table.add_row t
            [
              app; string_of_int harts; string_of_int tcache;
              string_of_int (Softcache.Shard.makespan sh);
              string_of_int (Softcache.Shard.total_cycles sh);
              string_of_int stats.Softcache.Stats.fills;
              string_of_int stats.Softcache.Stats.fills_coalesced;
              string_of_int stats.Softcache.Stats.fill_wait_cycles;
              string_of_int stats.Softcache.Stats.mc_wait_cycles;
              string_of_int msgs;
            ];
          rows :=
            (harts, tcache, Softcache.Shard.makespan sh,
             Softcache.Shard.total_cycles sh, stats.Softcache.Stats.fills,
             stats.Softcache.Stats.fills_coalesced, msgs)
            :: !rows)
        harts_axis)
    sizes;
  Report.Table.print t;
  (* gate: a 4-hart shared tcache puts fewer messages on the wire than
     4 independent solo caches would, on >= half the registry — the
     whole point of fill coalescing over shared code *)
  let n = 4 in
  let coalesce_fuel = 600_000 in
  let ct =
    Report.Table.create ~title:"coalescing: 4-hart shared vs 4x solo"
      ~columns:[ "app"; "shared msgs"; "4x solo msgs"; "cut" ]
  in
  let coalesce_rows =
    over_registry (fun e img ->
        let shard_net = Netmodel.ethernet_10mbps () in
        let cfg =
          Softcache.Config.make ~tcache_bytes:8192
            ~chunking:Softcache.Config.Basic_block ~net:shard_net ~harts:n
            ~sched_seed:5 ()
        in
        let ctrl = Softcache.Controller.create cfg img in
        let sh = Softcache.Shard.attach ctrl in
        ignore (Softcache.Shard.run ~fuel:coalesce_fuel sh);
        (match Check.Audit.shards sh with
        | [] -> ()
        | v :: _ as vs ->
          fail "shard audit %s/coalescing: %d violations (first: %s)" e.name
            (List.length vs)
            (Format.asprintf "%a" Check.Audit.pp_violation v));
        let shared = Netmodel.messages shard_net in
        (* the N solo runs are identical, so run one and scale *)
        let solo_net = Netmodel.ethernet_10mbps () in
        let solo_cfg =
          Softcache.Config.make ~tcache_bytes:8192
            ~chunking:Softcache.Config.Basic_block ~net:solo_net ()
        in
        let solo_ctrl = Softcache.Controller.create solo_cfg img in
        ignore (Softcache.Controller.run ~fuel:coalesce_fuel solo_ctrl);
        let solo = n * Netmodel.messages solo_net in
        let win = shared < solo in
        Report.Table.add_row ct
          [
            e.name; string_of_int shared; string_of_int solo;
            (if solo = 0 then "n/a"
             else
               Printf.sprintf "%.1f%%"
                 (100.0 *. float_of_int (solo - shared) /. float_of_int solo));
          ];
        (e.name, shared, solo, win))
  in
  Report.Table.print ct;
  let wins = List.length (List.filter (fun (_, _, _, w) -> w) coalesce_rows) in
  let total = List.length coalesce_rows in
  Report.kv "coalescing wins"
    (Printf.sprintf "%d of %d workloads" wins total);
  if 2 * wins < total then
    fail "4-hart coalescing beat 4x solo on only %d of %d workloads" wins
      total;
  (* gate: the sharded engine with one hart is the solo controller,
     cycle for cycle, on every registry workload *)
  let lt =
    Report.Table.create ~title:"lockstep: 1-hart sharded vs solo"
      ~columns:[ "app"; "verdict" ]
  in
  let lockstep_rows =
    over_registry (fun e img ->
        let mk_cfg () =
          Softcache.Config.make ~tcache_bytes:4096
            ~chunking:Softcache.Config.Basic_block ()
        in
        let v = Check.Lockstep.shards ~fuel:2_000_000 mk_cfg img in
        let s = lockstep_cell ~name:(e.name ^ " shard") v in
        Report.Table.add_row lt [ e.name; s ];
        let ok =
          match v with
          | Check.Lockstep.Engines_equivalent _
          | Check.Lockstep.Engines_out_of_fuel _ -> true
          | _ -> false
        in
        (e.name, ok, s))
  in
  Report.Table.print lt;
  emit_json ~file:"BENCH_shard.json" ~benchmark:"shardsweep"
    [
      ( "grid",
        json_array
          (List.rev_map
             (fun (harts, tcache, makespan, total_cycles, fills, coalesced,
                   msgs) ->
               Printf.sprintf
                 "    { \"name\": %S, \"harts\": %d, \"tcache\": %d, \
                  \"makespan\": %d, \"total_cycles\": %d, \"fills\": %d, \
                  \"coalesced\": %d, \"wire_messages\": %d }"
                 app harts tcache makespan total_cycles fills coalesced msgs)
             !rows) );
      ( "coalescing",
        json_array
          (List.map
             (fun (name, shared, solo, win) ->
               Printf.sprintf
                 "    { \"name\": %S, \"shared_messages\": %d, \
                  \"solo_messages\": %d, \"win\": %b }"
                 name shared solo win)
             coalesce_rows) );
      ( "lockstep",
        json_array
          (List.map
             (fun (name, ok, s) ->
               Printf.sprintf
                 "    { \"name\": %S, \"ok\": %b, \"verdict\": %S }" name ok
                 s)
             lockstep_rows) );
      ("gate_failures", string_of_int !failures);
    ]

(* ------------------------------------------------------------------ *)
(* Granularity sweep: block vs whole-function caching units across a
   tcache-size ladder — the function-granularity pitch is fewer, larger
   MC round trips once the tcache can hold whole functions, at the cost
   of thrashing (and degradation) when it cannot. Gates: every cell is
   output-equivalent to native and audits clean (PLT section included);
   at the largest tcache, function mode must send strictly fewer wire
   messages than block mode on at least half the registry; and
   Check.Lockstep.granularity proves block/function observational
   equivalence registry-wide. Emits BENCH_gran.json. *)

let gransweep () =
  Report.section
    "Granularity sweep: block vs whole-function caching units x tcache \
     size (gate: at the largest tcache, function mode cuts wire messages \
     on >= half the registry; every cell audits clean and matches native \
     outputs; registry-wide block/function lockstep)";
  let sizes = [ 2048; 8192; 65536 ] in
  let large = List.fold_left max 0 sizes in
  let t =
    Report.Table.create ~title:"granularity x tcache size"
      ~columns:
        [ "app"; "tcache"; "granularity"; "cycles"; "translations"; "traps";
          "messages"; "plt slots"; "degraded"; "outputs" ]
  in
  let grid = ref [] in
  let (_ : unit list) =
    over_registry (fun e img ->
        let native = Softcache.Runner.native img in
        List.iter
          (fun bytes ->
            List.iter
              (fun (gname, g) ->
                let net = Netmodel.ethernet_10mbps () in
                let cfg =
                  Softcache.Config.make ~tcache_bytes:bytes ~net
                    ~chunking:Softcache.Config.Basic_block ~granularity:g ()
                in
                let r, ctrl = Softcache.Runner.cached_robust cfg img in
                let ok =
                  r.status = Softcache.Runner.Finished Machine.Cpu.Halted
                  && r.outputs = native.outputs
                in
                if not ok then
                  fail "%s/%s/%dB: outputs diverge from native" e.name gname
                    bytes;
                (match Check.Audit.run ctrl with
                | [] -> ()
                | v :: _ as vs ->
                  fail "%s/%s/%dB audit: %d violations (first: %s)" e.name
                    gname bytes (List.length vs)
                    (Format.asprintf "%a" Check.Audit.pp_violation v));
                let msgs = Netmodel.messages net in
                Report.Table.add_row t
                  [
                    e.name;
                    Report.fmt_bytes bytes;
                    gname;
                    string_of_int r.cycles;
                    string_of_int ctrl.stats.translations;
                    string_of_int ctrl.stats.traps;
                    string_of_int msgs;
                    string_of_int ctrl.stats.plt_slots;
                    string_of_int ctrl.stats.gran_degraded;
                    (if ok then "ok" else "MISMATCH");
                  ];
                grid :=
                  (e.name, bytes, gname, r.cycles, ctrl.stats.translations,
                   ctrl.stats.traps, msgs, ctrl.stats.plt_slots,
                   ctrl.stats.gran_degraded, ok)
                  :: !grid)
              Softcache.Config.granularity_table)
          sizes)
  in
  Report.Table.print t;
  (* wire gate: whole-function units amortize the per-message overhead
     (frame header + latency) over more payload, so once the tcache
     stops thrashing, function mode should need fewer MC round trips
     for most workloads *)
  let msgs_of name gname =
    List.find_map
      (fun (n, b, m, _, _, _, ms, _, _, _) ->
        if n = name && b = large && m = gname then Some ms else None)
      !grid
  in
  let names =
    List.map
      (fun (e : Workloads.Registry.entry) -> e.name)
      Workloads.Registry.all
  in
  let wins =
    List.filter
      (fun n ->
        match
          ( msgs_of n (Softcache.Config.granularity_name Softcache.Config.Block),
            msgs_of n
              (Softcache.Config.granularity_name Softcache.Config.Function) )
        with
        | Some bm, Some fm -> fm < bm
        | _ -> false)
      names
  in
  Report.kv
    (Printf.sprintf "wire-message wins at %s" (Report.fmt_bytes large))
    (Printf.sprintf "%d/%d workloads (%s)" (List.length wins)
       (List.length names)
       (String.concat ", " wins));
  if 2 * List.length wins < List.length names then
    fail
      "function granularity cut wire messages on only %d/%d workloads at \
       %d B"
      (List.length wins) (List.length names) large;
  (* equivalence gate: block and function granularity, each in
     data-access lockstep with native, then cross-compared — over the
     whole registry, at a mid-ladder size where function mode both
     fits whole functions and occasionally degrades *)
  let lt =
    Report.Table.create ~title:"lockstep: granularities vs native"
      ~columns:[ "app"; "verdict" ]
  in
  let lockstep_rows =
    over_registry (fun e img ->
        let mk_cfg () =
          Softcache.Config.make ~tcache_bytes:8192
            ~chunking:Softcache.Config.Basic_block ()
        in
        let v =
          Check.Lockstep.granularity ~fuel:12_000_000
            ~audit:(e.name = "sensor_modes")
            mk_cfg img
        in
        let ok =
          match v with Check.Lockstep.Modes_equivalent _ -> true | _ -> false
        in
        let s = Format.asprintf "%a" Check.Lockstep.pp_modes_verdict v in
        if not ok then fail "%s granularity lockstep: %s" e.name s;
        Report.Table.add_row lt [ e.name; s ];
        (e.name, ok, s))
  in
  Report.Table.print lt;
  emit_json ~file:"BENCH_gran.json" ~benchmark:"gransweep"
    [
      ( "grid",
        json_array
          (List.rev_map
             (fun (n, b, m, cyc, tr, tp, ms, pl, dg, ok) ->
               Printf.sprintf
                 "    { \"name\": %S, \"tcache_bytes\": %d, \
                  \"granularity\": %S, \"cycles\": %d, \"translations\": %d, \
                  \"traps\": %d, \"messages\": %d, \"plt_slots\": %d, \
                  \"degraded\": %d, \"outputs_ok\": %b }"
                 n b m cyc tr tp ms pl dg ok)
             !grid) );
      ( "lockstep",
        json_array
          (List.map
             (fun (n, ok, s) ->
               Printf.sprintf
                 "    { \"name\": %S, \"ok\": %b, \"verdict\": %S }" n ok s)
             lockstep_rows) );
      ( "wire_message_wins",
        Printf.sprintf "[%s]"
          (String.concat ", " (List.map (Printf.sprintf "%S") wins)) );
      ("gate_tcache_bytes", string_of_int large);
      ("gate_failures", string_of_int !failures);
    ]

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("associativity", associativity);
    ("fig8", fig8);
    ("fig9", fig9);
    ("tagoverhead", tagoverhead);
    ("spaceoverhead", spaceoverhead);
    ("netcost", netcost);
    ("dcache", dcache);
    ("power", power);
    ("ablation", ablation);
    ("fullsystem", fullsystem);
    ("bindablation", bindablation);
    ("netsweep", netsweep);
    ("faultsweep", faultsweep);
    ("prefetchsweep", prefetchsweep);
    ("policysweep", policysweep);
    ("sizing", sizing);
    ("chainsweep", chainsweep);
    ("fleetsweep", fleetsweep);
    ("shardsweep", shardsweep);
    ("gransweep", gransweep);
    ("tracesmoke", tracesmoke);
    ("micro", micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s\n" name
          (String.concat " " (List.map fst experiments));
        exit 1)
    requested;
  print_newline ();
  if !failures > 0 then exit 1
