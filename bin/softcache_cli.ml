(* The softcache command-line tool.

   Subcommands:
     list                      workloads in the suite
     run      <workload>       run natively and under the SoftCache
     profile  <workload>       flat profile + footprint numbers
     sweep    <workload>       tcache miss-rate curve
     sizing   <workload>       analytic tcache-size prediction (Fig. 7 knee)
     hwsweep  <workload>       hardware-cache miss-rate curve
     dcache   <workload>       run under the software data cache
     fleet    <workload>       one MC serving N clients over a shared link
     asm      <file.s>         assemble and run an ERISC source file *)

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  let doc = "Log SoftCache controller events (translations, evictions)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let find_workload name =
  match Workloads.Registry.find name with
  | Some e -> Ok e
  | None ->
    Error
      (Printf.sprintf "unknown workload %S (try: %s)" name
         (String.concat ", " (Workloads.Registry.names ())))

let workload_arg =
  let doc = "Workload name (see $(b,list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let tcache_arg =
  let doc = "Translation-cache size in bytes." in
  Arg.(value & opt int (48 * 1024) & info [ "tcache" ] ~docv:"BYTES" ~doc)

let chunking_arg =
  let doc = "Chunk granularity: $(b,bb) (basic blocks) or $(b,proc)." in
  Arg.(value & opt (enum [ ("bb", Softcache.Config.Basic_block);
                           ("proc", Softcache.Config.Procedure) ])
         Softcache.Config.Basic_block
       & info [ "chunking" ] ~docv:"MODE" ~doc)

(* Both the accepted values and the self-documentation come from
   [Config.eviction_table], so a policy added there is immediately
   accepted, listed in --help, and rejected-with-the-valid-set when
   misspelled — no second list to keep in sync. *)
let eviction_arg =
  let doc =
    Printf.sprintf "Eviction policy: %s."
      (String.concat " or "
         (List.map
            (fun (n, _) -> Printf.sprintf "$(b,%s)" n)
            Softcache.Config.eviction_table))
  in
  Arg.(value & opt (enum Softcache.Config.eviction_table)
         Softcache.Config.Fifo
       & info [ "eviction" ] ~docv:"POLICY" ~doc)

(* Same table-driven scheme as --eviction: values, --help text and the
   misspelling message all come from [Config.granularity_table]. *)
let granularity_arg =
  let doc =
    Printf.sprintf
      "Caching unit: %s. $(b,function) caches whole-function units and \
       routes calls through a PLT-style indirection table; functions too \
       large to cache degrade to block granularity individually."
      (String.concat " or "
         (List.map
            (fun (n, _) -> Printf.sprintf "$(b,%s)" n)
            Softcache.Config.granularity_table))
  in
  Arg.(value & opt (enum Softcache.Config.granularity_table)
         Softcache.Config.Block
       & info [ "granularity" ] ~docv:"UNIT" ~doc)

let network_arg =
  let doc = "Interconnect: $(b,local) (SPARC prototype) or $(b,ethernet) \
             (ARM prototype, 10 Mbps)." in
  Arg.(value & opt (enum [ ("local", `Local); ("ethernet", `Ethernet) ])
         `Local
       & info [ "net" ] ~docv:"NET" ~doc)

(* --faults seed=7,drop=0.05,corrupt=0.01,dup=0.02,spike=0.1,spike-cycles=20000 *)
let faults_conv =
  let parse s =
    let seed = ref 1 and spike_cycles = ref 10_000 in
    let drop = ref 0.0 and corrupt = ref 0.0 and dup = ref 0.0
    and spike = ref 0.0 in
    let field kv =
      match String.index_opt kv '=' with
      | None -> Error (Printf.sprintf "bad fault field %S (want key=value)" kv)
      | Some i -> (
        let k = String.sub kv 0 i in
        let v = String.sub kv (i + 1) (String.length kv - i - 1) in
        let into r = match int_of_string_opt v with
          | Some n -> r := n; Ok ()
          | None -> Error (Printf.sprintf "%s: not an integer: %S" k v)
        in
        let fnto r = match float_of_string_opt v with
          | Some f -> r := f; Ok ()
          | None -> Error (Printf.sprintf "%s: not a number: %S" k v)
        in
        match k with
        | "seed" -> into seed
        | "spike-cycles" -> into spike_cycles
        | "drop" -> fnto drop
        | "corrupt" -> fnto corrupt
        | "dup" -> fnto dup
        | "spike" -> fnto spike
        | _ ->
          Error
            (Printf.sprintf
               "unknown fault field %S (want seed, drop, corrupt, dup, \
                spike, spike-cycles)" k))
    in
    let rec all = function
      | [] -> (
        match
          Netmodel.Faults.make ~seed:!seed ~drop:!drop ~corrupt:!corrupt
            ~duplicate:!dup ~delay_spike:!spike ~spike_cycles:!spike_cycles
            ()
        with
        | f -> Ok f
        | exception Invalid_argument m -> Error m)
      | kv :: rest -> ( match field kv with Ok () -> all rest | Error _ as e -> e)
    in
    match all (String.split_on_char ',' s) with
    | Ok f -> Ok f
    | Error m -> Error (`Msg m)
  in
  let print ppf f = Netmodel.Faults.pp ppf f in
  Arg.conv (parse, print)

let faults_arg =
  let doc =
    "Inject interconnect faults: comma-separated $(b,seed=N), $(b,drop=P), \
     $(b,corrupt=P), $(b,dup=P), $(b,spike=P), $(b,spike-cycles=N). \
     Probabilities are per message; the schedule is deterministic in the \
     seed."
  in
  Arg.(value & opt (some faults_conv) None
       & info [ "faults" ] ~docv:"SPEC" ~doc)

let audit_arg =
  let doc =
    "Run the tcache invariant auditor after every translation, patch, \
     eviction and flush (slow; fails loudly on any bookkeeping violation)."
  in
  Arg.(value & flag & info [ "audit" ] ~doc)

let engine_arg =
  let doc =
    "CPU dispatch engine: $(b,decoded) (predecode cache, the default) or \
     $(b,interp) (re-decode every fetch; the differential-testing \
     reference)."
  in
  Arg.(value & opt (enum [ ("decoded", Machine.Cpu.Decoded);
                           ("interp", Machine.Cpu.Interpretive) ])
         Machine.Cpu.Decoded
       & info [ "engine" ] ~docv:"ENGINE" ~doc)

let prefetch_arg =
  let doc =
    "Ship up to $(docv) predicted-next chunks with every demand miss in one \
     batched frame (0 disables prefetch). Candidates are the chunk's static \
     successors, ranked by a profiling pre-run."
  in
  Arg.(value & opt int 0 & info [ "prefetch" ] ~docv:"N" ~doc)

let staging_arg =
  let doc =
    "Bound on the client-side staging buffer holding prefetched chunks \
     awaiting first touch."
  in
  Arg.(value & opt int 8 & info [ "staging" ] ~docv:"N" ~doc)

let trace_out_arg =
  let doc =
    "Record a cycle-stamped structured event trace and write it to $(docv) \
     (format per $(b,--trace-format)). Tracing is architecturally \
     invisible: the traced run is cycle- and counter-identical to an \
     untraced one."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Trace export format: $(b,jsonl) (one event object per line) or \
     $(b,chrome) (Chrome trace-event JSON — load into Perfetto or \
     chrome://tracing)."
  in
  Arg.(value & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
       & info [ "trace-format" ] ~docv:"FMT" ~doc)

let chain_arg =
  let doc =
    "Eagerly chain resident blocks: when a chunk installs, every unresolved \
     exit branch already targeting it is patched tcache-direct immediately, \
     instead of each branch paying one trap on first use."
  in
  Arg.(value & flag & info [ "chain" ] ~doc)

let superblock_arg =
  let doc =
    "Fuse profile-hot chunk chains into contiguously laid-out superblocks \
     when the chain's edge counts reach $(docv) (0 disables; a non-zero \
     value implies $(b,--chain)). A profiling pre-run supplies the edge \
     temperatures."
  in
  Arg.(value & opt int 0 & info [ "superblock-threshold" ] ~docv:"N" ~doc)

let harts_arg =
  let doc =
    "Run the CC sharded across $(docv) hart contexts sharing one tcache: a \
     deterministic seeded scheduler interleaves them, concurrent misses for \
     the same chunk coalesce onto the in-flight fill, and suspended harts \
     hold read leases on their parked blocks. 1 = the solo controller."
  in
  Arg.(value & opt int 1 & info [ "harts" ] ~docv:"N" ~doc)

let shards_arg =
  let doc =
    "Partition the tcache into $(docv) per-shard arenas (chunks home by \
     address, lookups cross shards). 1 = one shared arena."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"K" ~doc)

let sched_seed_arg =
  let doc =
    "Seed for the hart interleaving scheduler; the schedule (and thus the \
     whole run) is deterministic in it."
  in
  Arg.(value & opt int 1 & info [ "sched-seed" ] ~docv:"SEED" ~doc)

let trace_limit_arg =
  let doc =
    "Trace ring capacity: at most $(docv) events are retained; on overflow \
     the oldest are overwritten and the drop count is reported."
  in
  Arg.(value & opt int 65_536 & info [ "trace-limit" ] ~docv:"N" ~doc)

let print_trace_summary ~total tr =
  let s = Trace.summary tr in
  Report.trace_summary ~total ~execute:s.Trace.s_execute
    ~translate:s.Trace.s_translate ~wire:s.Trace.s_wire ~trap:s.Trace.s_trap
    ~dcache:s.Trace.s_dcache ~patch:s.Trace.s_patch ~scrub:s.Trace.s_scrub
    ~lookup:s.Trace.s_lookup ~events:s.Trace.s_emitted
    ~dropped:s.Trace.s_dropped ~capacity:s.Trace.s_capacity

let make_config ?faults ?(audit = false) ?(engine = Machine.Cpu.Decoded)
    ?(prefetch = 0) ?(staging = 8) ?(trace_limit = 65_536) ?(chain = false)
    ?(superblock_threshold = 0) ?(granularity = Softcache.Config.Block)
    ?(harts = 1) ?(shards = 1) ?(sched_seed = 1) tcache chunking eviction
    network =
  let net =
    match network with
    | `Local -> Netmodel.local ?faults ()
    | `Ethernet -> Netmodel.ethernet_10mbps ?faults ()
  in
  (* a superblock threshold implies chaining on the command line *)
  let chain = chain || superblock_threshold > 0 in
  Softcache.Config.make ~tcache_bytes:tcache ~chunking ~eviction ~net ~audit
    ~engine ~prefetch_degree:prefetch ~staging_chunks:staging ~trace_limit
    ~chain ~superblock_threshold ~granularity ~harts ~shards ~sched_seed ()

let list_cmd =
  let run () =
    List.iter
      (fun (e : Workloads.Registry.entry) ->
        Printf.printf "%-14s %s\n" e.name e.description)
      Workloads.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the workload suite") Term.(const run $ const ())

let run_cmd =
  let run name tcache chunking eviction granularity network faults audit
      engine prefetch staging chain superblock_threshold harts shards
      sched_seed trace_out trace_format trace_limit verbose =
    setup_logs verbose;
    match find_workload name with
    | Error e -> prerr_endline e; 1
    | Ok entry ->
      let img = entry.build () in
      Format.printf "%a@." Isa.Image.pp_summary img;
      let native = Softcache.Runner.native img in
      let cfg =
        make_config ?faults ~audit ~engine ~prefetch ~staging ~trace_limit
          ~chain ~superblock_threshold ~granularity ~harts ~shards
          ~sched_seed tcache chunking eviction network
      in
      (* profile-guided oracles: one profiling pre-run supplies the
         prefetch hot-set ranker, the superblock edge temperatures and
         the trrip block-temperature prior *)
      let prof =
        if
          prefetch > 0 || superblock_threshold > 0
          || eviction = Softcache.Config.Trrip
        then Some (fst (Profiler.profile img))
        else None
      in
      let ranker =
        if prefetch > 0 then
          Option.map
            (fun p -> fun ~lo ~hi -> Profiler.samples_in p ~lo ~hi)
            prof
        else None
      in
      let oracle =
        if superblock_threshold > 0 then
          Option.map
            (fun p ->
              Softcache.Cc_chain.oracle_of_profile ~image:img
                ~chunking:cfg.Softcache.Config.chunking
                ~edges_from:(Profiler.edges_from p)
                ~samples_at:(fun a -> Profiler.samples_in p ~lo:a ~hi:(a + 4)))
            prof
        else None
      in
      (* trrip primes its temperature prior only in deep thrash: the
         sizing estimate decides, and around or above the knee the
         unprimed policy decides exactly like rrip *)
      let temperature, trrip_note =
        match (eviction, prof) with
        | Softcache.Config.Trrip, Some p ->
          let est =
            Softcache.Sizing.estimate ~image:img
              ~chunking:cfg.Softcache.Config.chunking
              ~samples_in:(fun ~lo ~hi -> Profiler.samples_in p ~lo ~hi)
              ~sizes:[] ()
          in
          if Softcache.Sizing.deep_thrash est ~tcache_bytes:tcache then
            let classify = Profiler.temperature_classifier p in
            ( Some
                (fun ~lo ~hi ->
                  match classify ~lo ~hi with
                  | Profiler.Hot -> Softcache.Policy.Hot
                  | Profiler.Warm -> Softcache.Policy.Warm
                  | Profiler.Cold -> Softcache.Policy.Cold),
              Some
                (Printf.sprintf
                   "primed (predicted need %d B, tcache %d B: deep thrash)"
                   est.Softcache.Sizing.predicted_bytes tcache) )
          else
            ( None,
              Some
                (Printf.sprintf
                   "unprimed (predicted need %d B, tcache %d B: deciding as \
                    rrip)"
                   est.Softcache.Sizing.predicted_bytes tcache) )
        | _ -> (None, None)
      in
      let audits = ref None in
      let tracer = ref None in
      let prepare (ctrl : Softcache.Controller.t) =
        ctrl.prefetch_ranker <- ranker;
        ctrl.chain_oracle <- oracle;
        Softcache.Controller.set_temperature_oracle ctrl temperature;
        ctrl.dynamic_text_hint <-
          Option.map (fun p -> Profiler.dynamic_text_bytes p) prof;
        (match trace_out with
        | Some _ ->
          let tr = Trace.create ~limit:cfg.trace_limit () in
          Softcache.Controller.attach_tracer ctrl tr;
          tracer := Some tr
        | None -> ());
        audits := Check.Audit.install_if_configured ctrl
      in
      if harts > 1 then begin
        (* sharded multi-hart path: N hart contexts replay the workload
           over one shared tcache under the seeded interleaving
           scheduler; Runner's solo drive does not apply *)
        let ctrl = Softcache.Controller.create cfg img in
        prepare ctrl;
        let sh = Softcache.Shard.attach ctrl in
        ignore (Softcache.Shard.run sh);
        Report.kv "native cycles" (string_of_int native.cycles);
        Report.kv "harts"
          (Printf.sprintf "%d over %d tcache shard(s), sched seed %d" harts
             shards sched_seed);
        Report.kv "makespan" (string_of_int (Softcache.Shard.makespan sh));
        Report.kv "total cpu cycles"
          (string_of_int (Softcache.Shard.total_cycles sh));
        List.iter
          (fun (h : Softcache.Shard.hart) ->
            Format.printf "  %a@." Softcache.Shard.pp_hart h)
          (Softcache.Shard.harts sh);
        Report.kv "fills"
          (Printf.sprintf "%d (+%d coalesced joins)" ctrl.stats.fills
             ctrl.stats.fills_coalesced);
        let ok =
          List.for_all
            (fun (h : Softcache.Shard.hart) ->
              h.h_cpu.halted && Machine.Cpu.outputs h.h_cpu = native.outputs)
            (Softcache.Shard.harts sh)
        in
        Report.kv "outputs match (all harts)" (string_of_bool ok);
        (match !audits with
        | Some n ->
          Report.kv "audit" (Printf.sprintf "on, %d audits passed" !n)
        | None -> ());
        let shard_viols = if audit then Check.Audit.shards sh else [] in
        if audit then
          Report.kv "shard audit"
            (if shard_viols = [] then "clean"
             else Printf.sprintf "%d violations" (List.length shard_viols));
        List.iter
          (fun v ->
            Format.printf "  audit violation: %a@." Check.Audit.pp_violation
              v)
          shard_viols;
        Format.printf "  stats: %a@." Softcache.Stats.pp ctrl.stats;
        if ok && shard_viols = [] then 0 else 2
      end
      else begin
      let cached, ctrl = Softcache.Runner.cached_robust ~prepare cfg img in
      Report.kv "native cycles" (string_of_int native.cycles);
      Report.kv "softcache cycles" (string_of_int cached.cycles);
      Report.kv "status"
        (Format.asprintf "%a" Softcache.Runner.pp_status cached.status);
      (match cached.status with
      | Softcache.Runner.Finished _ ->
        Report.kv "relative execution time"
          (Printf.sprintf "%.3f"
             (if native.cycles = 0 then nan
              else float_of_int cached.cycles /. float_of_int native.cycles));
        Report.kv "tcache miss rate"
          (Printf.sprintf "%.6f (%d translations / %d instrs)"
             (Softcache.Stats.miss_rate ctrl.stats ~retired:cached.retired)
             ctrl.stats.translations cached.retired)
      | Softcache.Runner.Unavailable _ -> ());
      let ok =
        cached.status = Softcache.Runner.Finished Machine.Cpu.Halted
        && native.outputs = cached.outputs
      in
      Report.kv "outputs match" (string_of_bool ok);
      Report.transport
        ~injected:(not (Netmodel.Faults.is_none (Netmodel.faults cfg.net)))
        ~drops:(Netmodel.drops cfg.net)
        ~corruptions:(Netmodel.corruptions cfg.net)
        ~duplicates:(Netmodel.duplicates cfg.net)
        ~delay_spikes:(Netmodel.delay_spikes cfg.net)
        ~retries:ctrl.stats.net_retries
        ~max_chunk_retries:ctrl.stats.max_chunk_retries
        ~timeouts:ctrl.stats.net_timeouts
        ~crc_failures:ctrl.stats.crc_failures
        ~recoveries:ctrl.stats.recoveries
        ~chunk_failures:ctrl.stats.chunk_failures;
      Report.prefetch ~issued:ctrl.stats.prefetch_issued
        ~installs:ctrl.stats.prefetch_installs
        ~wasted:ctrl.stats.prefetch_wasted
        ~crc_failures:ctrl.stats.prefetch_crc_failures
        ~batches:ctrl.stats.batches ~batch_chunks:ctrl.stats.batch_chunks
        ~max_batch_chunks:ctrl.stats.max_batch_chunks;
      (let module P = (val ctrl.policy : Softcache.Policy.S) in
       Report.policy ~name:P.name ~entries:ctrl.stats.policy_entries
         ~victim:ctrl.stats.evicted_victim
         ~collateral:ctrl.stats.evicted_collateral
         ~stub_growth:ctrl.stats.evicted_stub_growth
         ~invalidated:ctrl.stats.evicted_invalidated
         ~flushed:ctrl.stats.evicted_flushed
         ~ages:(Softcache.Stats.victim_ages ctrl.stats));
      (match trrip_note with
      | Some s -> Report.kv "trrip prior" s
      | None -> ());
      (match !audits with
      | Some n -> Report.kv "audit" (Printf.sprintf "on, %d audits passed" !n)
      | None -> ());
      (match (trace_out, !tracer) with
      | Some path, Some tr ->
        Trace.export tr ~format:trace_format path;
        Report.kv "trace"
          (Printf.sprintf "%d events -> %s (%s)" (Trace.emitted tr) path
             (match trace_format with `Jsonl -> "jsonl" | `Chrome -> "chrome"));
        print_trace_summary ~total:ctrl.cpu.cycles tr
      | _ -> ());
      Format.printf "  stats: %a@." Softcache.Stats.pp ctrl.stats;
      Format.printf "  %a@." Netmodel.pp cfg.net;
      (match cached.status with
      | Softcache.Runner.Unavailable _ -> 3
      | Softcache.Runner.Finished _ -> if ok then 0 else 2)
      end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload natively and under the SoftCache")
    Term.(const run $ workload_arg $ tcache_arg $ chunking_arg $ eviction_arg
          $ granularity_arg $ network_arg $ faults_arg $ audit_arg
          $ engine_arg $ prefetch_arg $ staging_arg $ chain_arg
          $ superblock_arg $ harts_arg $ shards_arg $ sched_seed_arg
          $ trace_out_arg $ trace_format_arg $ trace_limit_arg $ verbose_arg)

let profile_cmd =
  let run name =
    match find_workload name with
    | Error e -> prerr_endline e; 1
    | Ok entry ->
      let img = entry.build () in
      let prof, cpu = Profiler.profile img in
      Format.printf "%a@." Profiler.pp prof;
      Report.kv "retired instructions" (string_of_int cpu.retired);
      Report.kv "static .text" (Report.fmt_bytes (Isa.Image.static_text_bytes img));
      Report.kv "dynamic .text" (Report.fmt_bytes (Profiler.dynamic_text_bytes prof));
      Report.kv "hot code (90%)" (Report.fmt_bytes (Profiler.hot_bytes prof));
      0
  in
  Cmd.v (Cmd.info "profile" ~doc:"Flat profile and footprints")
    Term.(const run $ workload_arg)

let sweep_cmd =
  let run name chunking =
    match find_workload name with
    | Error e -> prerr_endline e; 1
    | Ok entry ->
      let img = entry.build () in
      let series =
        Report.Series.create
          ~title:(Printf.sprintf "tcache miss rate vs size — %s" name)
          ~xlabel:"tcache KB" ~ylabel:"miss rate %"
      in
      List.iter
        (fun kb ->
          let cfg =
            Softcache.Config.make ~tcache_bytes:(kb * 1024 / 8) ~chunking ()
          in
          (* kb is in eighths of a KB to get sub-KB points *)
          match Softcache.Runner.cached cfg img with
          | cached, ctrl ->
            Report.Series.add series
              (float_of_int kb /. 8.0)
              (100.0
              *. Softcache.Stats.miss_rate ctrl.stats ~retired:cached.retired)
          | exception Softcache.Controller.Chunk_too_large _ -> ())
        [ 2; 4; 8; 16; 32; 64; 128; 256; 512; 800 ];
      Report.Series.print series;
      0
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Software-cache miss rate vs tcache size")
    Term.(const run $ workload_arg $ chunking_arg)

let threshold_arg =
  let doc =
    "Dominant-set cumulative sample share (the paper's gprof 90% rule)."
  in
  Arg.(value & opt float 0.9 & info [ "threshold" ] ~docv:"SHARE" ~doc)

let headroom_arg =
  let doc =
    "Inflation over the rewritten dominant footprint, covering the \
     persistent stub area, sweep fragmentation and tail duplication."
  in
  Arg.(value & opt float 1.4 & info [ "headroom" ] ~docv:"FACTOR" ~doc)

let sizing_cmd =
  let run name chunking threshold headroom =
    match find_workload name with
    | Error e -> prerr_endline e; 1
    | Ok entry -> (
      let img = entry.build () in
      let prof, _ = Profiler.profile img in
      match
        Softcache.Sizing.estimate ~threshold ~headroom ~image:img ~chunking
          ~samples_in:(fun ~lo ~hi -> Profiler.samples_in prof ~lo ~hi)
          ~sizes:[ 256; 512; 1024; 2048; 4096; 8192; 16384; 32768; 65536 ]
          ()
      with
      | exception Invalid_argument m -> prerr_endline m; 1
      | est ->
        Report.kv "chunks walked" (string_of_int est.chunks_walked);
        Report.kv "dominant chunks"
          (Printf.sprintf "%d (%.0f%% of samples)" est.dominant_chunks
             (100.0 *. threshold));
        Report.kv "dominant source"
          (Report.fmt_bytes est.dominant_source_bytes);
        Report.kv "dominant rewritten"
          (Report.fmt_bytes est.dominant_tcache_bytes);
        Report.kv "predicted tcache need"
          (Report.fmt_bytes est.predicted_bytes);
        Report.kv "predicted knee"
          (match est.predicted_knee with
          | Some b -> Report.fmt_bytes b
          | None -> "beyond 64 KB");
        (* deep_thrash holds exactly below half the predicted need *)
        Report.kv "trrip prior primed below"
          (Report.fmt_bytes (est.predicted_bytes / 2));
        let t =
          Report.Table.create ~title:"hottest chunks"
            ~columns:[ "vaddr"; "source"; "rewritten"; "samples" ]
        in
        List.iteri
          (fun i (c : Softcache.Sizing.chunk_info) ->
            if i < 12 && c.ci_samples > 0 then
              Report.Table.add_row t
                [
                  Printf.sprintf "0x%x" c.ci_vaddr;
                  Report.fmt_bytes c.ci_span_bytes;
                  Report.fmt_bytes c.ci_tcache_bytes;
                  string_of_int c.ci_samples;
                ])
          est.chunks;
        Report.Table.print t;
        0)
  in
  Cmd.v
    (Cmd.info "sizing"
       ~doc:
         "Predict the smallest acceptable tcache size from a static CFG \
          walk plus a profiling pre-run (the Fig. 7 knee, analytically)")
    Term.(const run $ workload_arg $ chunking_arg $ threshold_arg
          $ headroom_arg)

let hwsweep_cmd =
  let run name =
    match find_workload name with
    | Error e -> prerr_endline e; 1
    | Ok entry ->
      let img = entry.build () in
      let sizes = [ 128; 256; 512; 1024; 2048; 4096; 8192; 16384; 32768 ] in
      let caches =
        List.map (fun s -> (s, Hwcache.create ~size_bytes:s ())) sizes
      in
      let cpu = Machine.Cpu.of_image img in
      cpu.on_fetch <-
        Some (fun a -> List.iter (fun (_, c) -> ignore (Hwcache.access c a)) caches);
      let _ = Machine.Cpu.run cpu in
      let series =
        Report.Series.create
          ~title:(Printf.sprintf "hardware I-cache miss rate vs size — %s" name)
          ~xlabel:"cache KB" ~ylabel:"miss rate %"
      in
      List.iter
        (fun (s, c) ->
          Report.Series.add series
            (float_of_int s /. 1024.0)
            (100.0 *. Hwcache.miss_rate c))
        caches;
      Report.Series.print series;
      0
  in
  Cmd.v
    (Cmd.info "hwsweep" ~doc:"Hardware-cache miss rate vs size (baseline)")
    Term.(const run $ workload_arg)

let dcache_cmd =
  let run name trace_out trace_format trace_limit =
    match find_workload name with
    | Error e -> prerr_endline e; 1
    | Ok entry ->
      let img = entry.build () in
      let cfg = Dcache.Config.make () in
      let tracer =
        match trace_out with
        | Some _ -> Some (Trace.create ~limit:trace_limit ())
        | None -> None
      in
      let outcome, cpu, stats = Dcache.Sim.run ?tracer cfg img in
      Report.kv "outcome"
        (match outcome with
        | Machine.Cpu.Halted -> "halted"
        | Machine.Cpu.Out_of_fuel -> "out of fuel");
      Format.printf "  %a@." Dcache.Sim.pp_stats stats;
      Report.kv "cycles (with d-cache)" (string_of_int cpu.cycles);
      Report.kv "guaranteed latency"
        (Printf.sprintf "%d cycles (slow hit)"
           (Dcache.Sim.guaranteed_latency_cycles cfg));
      (match (trace_out, tracer) with
      | Some path, Some tr ->
        Trace.export tr ~format:trace_format path;
        Report.kv "trace"
          (Printf.sprintf "%d events -> %s (%s)" (Trace.emitted tr) path
             (match trace_format with `Jsonl -> "jsonl" | `Chrome -> "chrome"));
        print_trace_summary ~total:cpu.cycles tr
      | _ -> ());
      0
  in
  Cmd.v (Cmd.info "dcache" ~doc:"Run under the Section 3 software data cache")
    Term.(const run $ workload_arg $ trace_out_arg $ trace_format_arg
          $ trace_limit_arg)

let fullsystem_cmd =
  let run name tcache =
    match find_workload name with
    | Error e -> prerr_endline e; 1
    | Ok entry ->
      let img = entry.build () in
      let native = Softcache.Runner.native img in
      let icfg = Softcache.Config.make ~tcache_bytes:tcache () in
      let dcfg = Dcache.Config.make () in
      let full, _ = Dcache.Fullsystem.run icfg dcfg img in
      Report.kv "local memory"
        (Report.fmt_bytes (Dcache.Fullsystem.local_memory_bytes icfg dcfg));
      Report.kv "I+D slowdown"
        (Printf.sprintf "%.3f"
           (float_of_int full.cycles /. float_of_int native.cycles));
      Format.printf "  icache: %a@." Softcache.Stats.pp full.icache_stats;
      Format.printf "  dcache: %a@." Dcache.Sim.pp_stats full.dcache_stats;
      Report.kv "outputs match" (string_of_bool (full.outputs = native.outputs));
      if full.outputs = native.outputs then 0 else 2
  in
  Cmd.v
    (Cmd.info "fullsystem"
       ~doc:"Run with the complete memory system: tcache + scache + dcache")
    Term.(const run $ workload_arg $ tcache_arg)

let fleet_cmd =
  let clients_arg =
    let doc = "Number of CC clients sharing the one MC uplink." in
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc)
  in
  let fairness_arg =
    let doc =
      Printf.sprintf "Link scheduling across clients: %s."
        (String.concat " or "
           (List.map
              (fun (n, _) -> Printf.sprintf "$(b,%s)" n)
              Fleet.fairness_table))
    in
    Arg.(value & opt (enum Fleet.fairness_table) Fleet.Fifo
         & info [ "fairness" ] ~docv:"POLICY" ~doc)
  in
  let no_dedup_arg =
    let doc =
      "Disable the MC's shared content-addressed chunk cache (each client's \
       requests are chunked, CRC-stamped and coalesced independently)."
    in
    Arg.(value & flag & info [ "no-dedup" ] ~doc)
  in
  let no_batching_arg =
    let doc =
      "Disable frame batching: concurrent requests never piggyback on an \
       open frame."
    in
    Arg.(value & flag & info [ "no-batching" ] ~doc)
  in
  let cache_arg =
    let doc = "Bound on the MC shared chunk cache, in chunks." in
    Arg.(value & opt int 256 & info [ "cache-chunks" ] ~docv:"N" ~doc)
  in
  let quantum_arg =
    let doc = "Scheduler quantum: instructions a session runs per turn." in
    Arg.(value & opt int 256 & info [ "quantum" ] ~docv:"N" ~doc)
  in
  let fuel_arg =
    let doc = "Instruction budget per client." in
    Arg.(value & opt int 2_000_000 & info [ "fuel" ] ~docv:"N" ~doc)
  in
  let workloads_arg =
    let doc =
      "Heterogeneous fleet: comma-separated workload names assigned \
       round-robin to the clients (client $(i,i) runs the $(i,i) mod \
       $(i,len)-th name). Overrides the positional workload."
    in
    Arg.(value & opt (some string) None
         & info [ "workloads" ] ~docv:"W1,W2,..." ~doc)
  in
  let auto_size_arg =
    let doc =
      "Size each client's tcache by the analytic model: a profiling \
       pre-run of its workload feeds $(b,Sizing.estimate), and a client \
       configured below the predicted need is admitted at the predicted \
       size instead. The summary reports predicted vs configured."
    in
    Arg.(value & flag & info [ "auto-size" ] ~doc)
  in
  let run name clients fairness no_dedup no_batching cache_chunks quantum
      fuel tcache chunking eviction granularity harts shards sched_seed
      workloads auto_size network faults audit verbose =
    setup_logs verbose;
    let named =
      match workloads with
      | None -> Ok [ name ]
      | Some s ->
        Ok (List.filter (fun w -> w <> "") (String.split_on_char ',' s))
    in
    let resolve acc n =
      match (acc, find_workload n) with
      | (Error _ as e), _ -> e
      | Ok _, Error e -> Error e
      | Ok es, Ok e -> Ok (es @ [ e ])
    in
    match Result.bind named (List.fold_left resolve (Ok [])) with
    | Error e -> prerr_endline e; 1
    | Ok [] -> prerr_endline "no workloads given"; 1
    | Ok entries -> (
      let images =
        Array.of_list
          (List.map (fun (e : Workloads.Registry.entry) -> e.build ()) entries)
      in
      let net =
        match network with
        | `Local -> Netmodel.local ?faults ()
        | `Ethernet -> Netmodel.ethernet_10mbps ?faults ()
      in
      let mk_cfg _ =
        Softcache.Config.make ~tcache_bytes:tcache ~chunking ~eviction
          ~granularity ~harts ~shards ~sched_seed ~net ()
      in
      (* the analytic admission model: one profiling pre-run per distinct
         image (memoized), then Sizing.estimate's predicted need *)
      let sizing =
        if not auto_size then None
        else begin
          let memo = Hashtbl.create 4 in
          Some
            (fun i ->
              let img = images.(i mod Array.length images) in
              match Hashtbl.find_opt memo img.Isa.Image.name with
              | Some p -> p
              | None ->
                let prof, _ = Profiler.profile img in
                let est =
                  Softcache.Sizing.estimate ~image:img ~chunking
                    ~samples_in:(fun ~lo ~hi ->
                      Profiler.samples_in prof ~lo ~hi)
                    ~sizes:[] ()
                in
                let p = Some est.Softcache.Sizing.predicted_bytes in
                Hashtbl.replace memo img.Isa.Image.name p;
                p)
        end
      in
      match
        Fleet.config ~clients ~fairness ~dedup:(not no_dedup)
          ~batching:(not no_batching) ~cache_chunks ~quantum ()
      with
      | exception Invalid_argument m -> prerr_endline m; 1
      | config ->
        let fl = Fleet.create ~config ?sizing ~net mk_cfg images in
        Fleet.run ~fuel fl;
        Fleet.print_summary fl;
        if audit then begin
          let violations = Check.Audit.fleet fl in
          Report.kv "audit"
            (if violations = [] then "clean"
             else Printf.sprintf "%d violations" (List.length violations));
          List.iter
            (fun v ->
              Format.printf "  audit violation: %a@." Check.Audit.pp_violation
                v)
            violations;
          if violations <> [] then 2 else 0
        end
        else 0)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Simulate one MC serving N clients over a shared link")
    Term.(const run $ workload_arg $ clients_arg $ fairness_arg $ no_dedup_arg
          $ no_batching_arg $ cache_arg $ quantum_arg $ fuel_arg $ tcache_arg
          $ chunking_arg $ eviction_arg $ granularity_arg $ harts_arg
          $ shards_arg $ sched_seed_arg $ workloads_arg $ auto_size_arg
          $ network_arg $ faults_arg $ audit_arg $ verbose_arg)

let trace_cmd =
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write CSV there (default stdout).")
  in
  let limit_arg =
    Arg.(value & opt int 10_000
         & info [ "limit" ] ~docv:"N" ~doc:"Record at most N events.")
  in
  let run name out limit =
    match find_workload name with
    | Error e -> prerr_endline e; 1
    | Ok entry ->
      let img = entry.build () in
      let cpu = Machine.Cpu.of_image img in
      let buf = Buffer.create (limit * 16) in
      Buffer.add_string buf "kind,address\n";
      let n = ref 0 in
      let record kind a =
        if !n < limit then begin
          incr n;
          Buffer.add_string buf (Printf.sprintf "%s,0x%x\n" kind a)
        end
      in
      cpu.on_fetch <- Some (record "fetch");
      cpu.on_load <- Some (record "load");
      cpu.on_store <- Some (record "store");
      let _ = Machine.Cpu.run ~fuel:(limit * 2) cpu in
      (match out with
      | Some f -> Out_channel.with_open_text f (fun oc ->
          Out_channel.output_string oc (Buffer.contents buf));
        Printf.printf "wrote %d events to %s\n" !n f
      | None -> print_string (Buffer.contents buf));
      0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Export a fetch/load/store address trace as CSV")
    Term.(const run $ workload_arg $ out_arg $ limit_arg)

let disasm_cmd =
  let tcache_flag =
    Arg.(value & flag
         & info [ "tcache-view" ]
             ~doc:"Run briefly under the SoftCache and dump the rewritten \
                   translation-cache contents instead of the source image.")
  in
  let run name tcache_view =
    match find_workload name with
    | Error e -> prerr_endline e; 1
    | Ok entry ->
      let img = entry.build () in
      if not tcache_view then begin
        print_string (Isa.Disasm.image img);
        0
      end
      else begin
        let ctrl =
          Softcache.Controller.create
            (Softcache.Config.make ~tcache_bytes:4096 ())
            img
        in
        let _ = Softcache.Controller.run ~fuel:50_000 ctrl in
        print_string (Softcache.Debug.summary ctrl);
        print_newline ();
        print_string (Softcache.Debug.dump_blocks ctrl);
        (match Softcache.Debug.disasm_block ctrl img.entry with
        | Some s ->
          Printf.printf "\nentry chunk as rewritten:\n%s" s
        | None -> ());
        0
      end
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Disassemble a workload (or its rewritten tcache contents)")
    Term.(const run $ workload_arg $ tcache_flag)

let asm_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"ERISC assembly source")
  in
  let run file tcache =
    let source = In_channel.with_open_text file In_channel.input_all in
    match Isa.Assembler.assemble ~name:file source with
    | Error e -> Printf.eprintf "%s: %s\n" file e; 1
    | Ok img ->
      let native = Softcache.Runner.native img in
      let cfg = Softcache.Config.make ~tcache_bytes:tcache () in
      let cached, ctrl = Softcache.Runner.cached cfg img in
      Report.kv "outputs"
        (String.concat ", " (List.map string_of_int native.outputs));
      Report.kv "native cycles" (string_of_int native.cycles);
      Report.kv "softcache cycles" (string_of_int cached.cycles);
      Report.kv "outputs match" (string_of_bool (native.outputs = cached.outputs));
      Format.printf "  stats: %a@." Softcache.Stats.pp ctrl.stats;
      if native.outputs = cached.outputs then 0 else 2
  in
  Cmd.v (Cmd.info "asm" ~doc:"Assemble and run an ERISC source file")
    Term.(const run $ file_arg $ tcache_arg)

let () =
  let doc = "software caching using dynamic binary rewriting" in
  let info = Cmd.info "softcache" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ list_cmd; run_cmd; profile_cmd; sweep_cmd; sizing_cmd;
            hwsweep_cmd; dcache_cmd; fullsystem_cmd; fleet_cmd; disasm_cmd;
            trace_cmd; asm_cmd ]))
