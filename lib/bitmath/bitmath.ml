let is_pow2 n = n > 0 && n land (n - 1) = 0

let floor_log2 n =
  let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
  go 0 n

let ceil_log2 n = if n <= 1 then 0 else floor_log2 (n - 1) + 1
