(** Small integer bit-twiddling helpers shared by the cache models.

    Three libraries (Hwcache, Powermodel.Tag_energy, Dcache.Sim) each
    carried a private copy of an integer log2; they are unified here so
    the edge cases (0, 1, non-powers-of-two) are pinned down once. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is true iff [n] is a positive power of two. *)

val floor_log2 : int -> int
(** [floor_log2 n] is the position of the highest set bit of [n]:
    [floor_log2 8 = 3], [floor_log2 9 = 3]. For [n <= 1] the result is
    0 — the convention the cache geometry code relies on (a one-set
    cache contributes no index bits). *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is the smallest [k] with [2^k >= n]:
    [ceil_log2 8 = 3], [ceil_log2 9 = 4]. For [n <= 1] the result
    is 0. *)
