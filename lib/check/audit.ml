(* Tcache invariant auditor.

   Walks the controller's concrete state — resident blocks, the stub
   table, recorded incoming pointers, persistent return stubs, the pin
   set — and cross-checks it against the encoded words actually sitting
   in client memory. Every patched pointer must be accounted for: the
   whole eviction protocol rests on "incoming pointers are recorded at
   the time they are created", so a single missing record is a latent
   wild branch after the target block dies. *)

open Softcache

type violation = { invariant : string; detail : string }

exception Audit_failure of violation list

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.invariant v.detail

let word (t : Controller.t) paddr = Machine.Memory.read32 t.cpu.mem paddr

let block_range (b : Tcache.block) = (b.paddr, b.paddr + (4 * b.words))

let in_block (b : Tcache.block) p =
  let lo, hi = block_range b in
  p >= lo && p < hi

(* Does [w], fetched from [site], transfer control to the start of
   [b]?  Branch offsets are pc-relative in words; jumps are absolute. *)
let aims_at ~site ~(b : Tcache.block) w =
  match Isa.Encode.decode w with
  | Some (Isa.Instr.Jmp p) | Some (Isa.Instr.Jal p) -> p = b.paddr
  | Some (Isa.Instr.Br (_, _, _, d)) -> site + (4 * d) = b.paddr
  | Some _ | None -> false

(* The control-flow target of [w] at [site], if it has a static one. *)
let static_target ~site w =
  match Isa.Encode.decode w with
  | Some (Isa.Instr.Jmp p) | Some (Isa.Instr.Jal p) -> Some p
  | Some (Isa.Instr.Br (_, _, _, d)) -> Some (site + (4 * d))
  | Some _ | None -> None

let has_incoming (b : Tcache.block) ~site_paddr =
  List.exists
    (fun (i : Tcache.incoming) -> i.site_paddr = site_paddr)
    b.incoming

let run (t : Controller.t) : violation list =
  let viols = ref [] in
  let add invariant fmt =
    Format.kasprintf
      (fun detail -> viols := { invariant; detail } :: !viols)
      fmt
  in
  let tc = t.tc in
  let blocks = Tcache.blocks tc in
  let base = Tcache.base tc in
  let top = Tcache.top tc in
  (* is [p] inside some shard's persistent stub area?  (the whole
     region when unsharded — shard 0's [persist_base, top)) *)
  let in_stub_area p =
    p >= base && p < top
    &&
    let sh = Tcache.shard_of_paddr tc p in
    let _, sh_top = Tcache.shard_bounds tc sh in
    p >= Tcache.persist_base ~shard:sh tc && p < sh_top
  in
  let by_paddr = Hashtbl.create 64 in
  List.iter (fun (b : Tcache.block) -> Hashtbl.replace by_paddr b.paddr b) blocks;

  (* -- blocks sit inside their home shard's code area and never
        overlap.  The home-shard routing is part of the invariant: a
        block placed in the right byte range but the wrong arena means
        the allocator and the policy's ?shard filtering disagree about
        who owns it. *)
  List.iter
    (fun (b : Tcache.block) ->
      let lo, hi = block_range b in
      if lo < base || hi > top then
        add "region" "block v=0x%x [0x%x,0x%x) outside tcache [0x%x,0x%x)"
          b.vaddr lo hi base top
      else begin
        let sh = Tcache.home_shard tc b.vaddr in
        let sh_lo, _ = Tcache.shard_bounds tc sh in
        let sh_pb = Tcache.persist_base ~shard:sh tc in
        if lo < sh_lo || hi > sh_pb then
          add "region"
            "block v=0x%x [0x%x,0x%x) outside its home shard %d code area \
             [0x%x,0x%x)"
            b.vaddr lo hi sh sh_lo sh_pb
      end)
    blocks;
  let sorted =
    List.sort
      (fun (a : Tcache.block) (b : Tcache.block) -> compare a.paddr b.paddr)
      blocks
  in
  let rec overlap_chain = function
    | (a : Tcache.block) :: ((b : Tcache.block) :: _ as rest) ->
      if a.paddr + (4 * a.words) > b.paddr then
        add "overlap" "blocks v=0x%x@0x%x and v=0x%x@0x%x overlap" a.vaddr
          a.paddr b.vaddr b.paddr;
      overlap_chain rest
    | [ _ ] | [] -> ()
  in
  overlap_chain sorted;

  (* -- tcache map agrees with residency ----------------------------- *)
  if Tcache.map_entries tc <> Tcache.resident_blocks tc then
    add "map" "map has %d entries but %d blocks are resident"
      (Tcache.map_entries tc)
      (Tcache.resident_blocks tc);
  List.iter
    (fun (b : Tcache.block) ->
      match Tcache.lookup tc b.vaddr with
      | Some b' when b'.id = b.id -> ()
      | Some b' ->
        add "map" "map[v=0x%x] names block id=%d, expected id=%d" b.vaddr
          b'.id b.id
      | None -> add "map" "resident block v=0x%x missing from map" b.vaddr)
    blocks;

  (* -- pinned ids name resident blocks ------------------------------ *)
  List.iter
    (fun id ->
      if not (Tcache.is_alive tc id) then
        add "pinned" "pinned id=%d is not resident" id)
    (Tcache.pinned_ids tc);

  (* -- leased ids name resident blocks ------------------------------ *)
  List.iter
    (fun id ->
      if not (Tcache.is_alive tc id) then
        add "leased" "leased id=%d is not resident" id)
    (Tcache.leased_ids tc);

  (* -- every recorded incoming pointer decodes sensibly ------------- *)
  List.iter
    (fun (b : Tcache.block) ->
      List.iter
        (fun (inc : Tcache.incoming) ->
          let live_src =
            inc.from_block = -1 || Tcache.is_alive tc inc.from_block
          in
          if live_src then begin
            let w = word t inc.site_paddr in
            if w <> inc.revert_word && not (aims_at ~site:inc.site_paddr ~b w)
            then
              add "incoming"
                "site 0x%x recorded on v=0x%x holds 0x%08x: neither the \
                 revert word nor a branch to 0x%x"
                inc.site_paddr b.vaddr w b.paddr
          end)
        b.incoming)
    blocks;

  (* -- exit stubs: each site is in its revert state or patched at a
        resident, recorded target ------------------------------------ *)
  let check_exit b k = function
    | Stub.Exit { block; site_paddr; kind; target; revert_word } ->
      let b = (b : Tcache.block) in
      if block <> b.id then
        add "stub" "stub %d owned by block id=%d but records block=%d" k
          b.id block;
      if not (in_block b site_paddr) then
        add "stub" "exit stub %d site 0x%x outside its block v=0x%x" k
          site_paddr b.vaddr;
      let w = word t site_paddr in
      if w = revert_word then begin
        (* branch exits trap through an in-block island; when the site
           is in its miss state the island must either still trap or be
           specialised into a recorded direct jump *)
        match kind with
        | Stub.Patch_br -> (
          match Isa.Encode.decode revert_word with
          | Some (Isa.Instr.Br (_, _, _, d)) -> (
            let island = site_paddr + (4 * d) in
            if not (in_block b island) then
              add "stub" "stub %d br island 0x%x outside block v=0x%x" k
                island b.vaddr
            else
              match Isa.Encode.decode (word t island) with
              | Some (Isa.Instr.Trap j) ->
                if j <> k then
                  add "stub" "island 0x%x traps to %d, expected stub %d"
                    island j k
              | Some (Isa.Instr.Jmp p) -> (
                match Tcache.lookup tc target with
                | Some tb when tb.paddr = p ->
                  if not (has_incoming tb ~site_paddr:island) then
                    add "incoming"
                      "island 0x%x jumps to v=0x%x but is not recorded as \
                       an incoming pointer"
                      island target
                | Some tb ->
                  add "stub"
                    "island 0x%x jumps to 0x%x but v=0x%x resides at 0x%x"
                    island p target tb.paddr
                | None ->
                  add "stub"
                    "island 0x%x specialised for dead target v=0x%x" island
                    target)
              | _ ->
                add "stub" "island 0x%x holds neither trap nor jump" island)
          | _ ->
            add "stub" "br stub %d revert word is not a branch" k)
        | Stub.Patch_jmp | Stub.Patch_jal -> ()
      end
      else begin
        (* site patched: must aim at the resident target block, and the
           target must know about it *)
        match Tcache.lookup tc target with
        | None ->
          add "stub"
            "exit site 0x%x is patched but its target v=0x%x is dead"
            site_paddr target
        | Some tb ->
          if not (aims_at ~site:site_paddr ~b:tb w) then
            add "stub"
              "exit site 0x%x holds 0x%08x, not a branch to v=0x%x@0x%x"
              site_paddr w target tb.paddr
          else if not (has_incoming tb ~site_paddr) then
            add "incoming"
              "patched exit site 0x%x not recorded on target v=0x%x"
              site_paddr target
      end
    | Stub.Computed _ -> ()
    | Stub.Icall { pad_paddr; _ } ->
      if not (in_block b pad_paddr) then
        add "stub" "icall stub %d pad 0x%x outside its block" k pad_paddr
    | Stub.Ret_stub _ ->
      add "stub" "block v=0x%x owns stub %d, which is a return stub"
        b.Tcache.vaddr k
    | Stub.Plt _ ->
      add "stub" "block v=0x%x owns stub %d, which is a PLT slot"
        b.Tcache.vaddr k
  in
  List.iter
    (fun (b : Tcache.block) ->
      List.iter
        (fun k ->
          if k < 0 || k >= t.nstubs then
            add "stub" "block v=0x%x owns out-of-range stub %d" b.vaddr k
          else check_exit b k t.stubs.(k))
        b.stubs)
    blocks;

  (* -- reverse scan: every encoded branch out of a block lands on a
        block start and is recorded there.  This is the completeness
        direction — it catches incoming pointers that were created but
        never recorded, the bug class [chaos_drop_incoming] seeds.
        Function-granularity calls are the one legitimate exception: a
        [Jal] into a PLT slot targets the persistent-stub area, never a
        block start, and needs no record (the slot word, not the call
        site, is what the controller patches). ----- *)
  let plt_slot_paddrs = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _fv (paddr, _) -> Hashtbl.replace plt_slot_paddrs paddr ())
    t.plt;
  List.iter
    (fun (b : Tcache.block) ->
      for i = 0 to b.words - 1 do
        let site = b.paddr + (4 * i) in
        let w = word t site in
        (match static_target ~site w with
        | Some p when not (in_block b p) -> (
          match Hashtbl.find_opt by_paddr p with
          | Some tb ->
            if not (has_incoming tb ~site_paddr:site) then
              add "incoming"
                "word at 0x%x (block v=0x%x) branches to v=0x%x@0x%x \
                 without an incoming record"
                site b.vaddr tb.vaddr p
          | None ->
            if not (Hashtbl.mem plt_slot_paddrs p) then
              add "wild"
                "word at 0x%x (block v=0x%x) branches to 0x%x, which is \
                 neither a block start nor a PLT slot"
                site b.vaddr p)
        | Some _ | None -> ());
        match Isa.Encode.decode w with
        | Some (Isa.Instr.Trap j) ->
          if j < 0 || j >= t.nstubs then
            add "trap" "word at 0x%x traps to out-of-range stub %d" site j
          else if not (List.mem j b.stubs) then
            add "trap"
              "word at 0x%x (block v=0x%x) traps to stub %d, which the \
               block does not own"
              site b.vaddr j
        | _ -> ()
      done)
    blocks;

  (* -- persistent return stubs -------------------------------------- *)
  Hashtbl.iter
    (fun rv (paddr, k) ->
      if not (in_stub_area paddr) then
        add "ret-stub" "return stub for v=0x%x at 0x%x outside stub area"
          rv paddr;
      (if k < 0 || k >= t.nstubs then
         add "ret-stub" "return stub for v=0x%x has bad index %d" rv k
       else
         match t.stubs.(k) with
         | Stub.Ret_stub { site_paddr; target } ->
           if site_paddr <> paddr || target <> rv then
             add "ret-stub" "stub %d disagrees with the return-stub table" k
         | _ ->
           add "ret-stub" "stub %d for return v=0x%x is not a return stub"
             k rv);
      match Isa.Encode.decode (word t paddr) with
      | Some (Isa.Instr.Trap j) ->
        if j <> k then
          add "ret-stub" "return stub 0x%x traps to %d, expected %d" paddr
            j k
      | Some (Isa.Instr.Jmp p) -> (
        match Tcache.lookup tc rv with
        | Some tb when tb.paddr = p ->
          if not (has_incoming tb ~site_paddr:paddr) then
            add "incoming"
              "specialised return stub 0x%x not recorded on v=0x%x" paddr
              rv
        | Some tb ->
          add "ret-stub"
            "return stub 0x%x jumps to 0x%x but v=0x%x resides at 0x%x"
            paddr p rv tb.paddr
        | None ->
          add "ret-stub" "return stub 0x%x specialised for dead v=0x%x"
            paddr rv)
      | _ ->
        add "ret-stub" "return stub 0x%x holds neither trap nor jump" paddr)
    t.ret_stubs;

  (* -- PLT slot table ------------------------------------------------ *)
  (* One persistent slot per function the cached code calls through:
     the slot sits in the stub area, its stub entry mirrors the table,
     and the slot word encodes residency exactly — a trap to its own
     stub while the function is absent, a recorded direct jump to the
     resident unit while it is present. The safe directions only: an
     unpatched slot over a resident target is legal (install and slot
     patch are distinct steps), a patched slot over a dead target is
     the wild-branch bug this section exists to catch. *)
  Hashtbl.iter
    (fun fv (paddr, k) ->
      if not (in_stub_area paddr) then
        add "plt" "slot for v=0x%x at 0x%x outside stub area" fv paddr;
      (if k < 0 || k >= t.nstubs then
         add "plt" "slot for v=0x%x has bad stub index %d" fv k
       else
         match t.stubs.(k) with
         | Stub.Plt { slot_paddr; target } ->
           if slot_paddr <> paddr || target <> fv then
             add "plt" "stub %d disagrees with the PLT table" k
         | _ ->
           add "plt" "stub %d for function v=0x%x is not a PLT slot" k fv);
      match Isa.Encode.decode (word t paddr) with
      | Some (Isa.Instr.Trap j) ->
        if j <> k then
          add "plt" "slot 0x%x traps to %d, expected %d" paddr j k
      | Some (Isa.Instr.Jmp p) -> (
        match Tcache.lookup tc fv with
        | Some tb when tb.paddr = p ->
          if not (has_incoming tb ~site_paddr:paddr) then
            add "incoming" "patched PLT slot 0x%x not recorded on v=0x%x"
              paddr fv
        | Some tb ->
          add "plt" "slot 0x%x jumps to 0x%x but v=0x%x resides at 0x%x"
            paddr p fv tb.paddr
        | None ->
          add "plt" "slot 0x%x patched for dead function v=0x%x" paddr fv)
      | _ -> add "plt" "slot 0x%x holds neither trap nor jump" paddr)
    t.plt;

  (* -- stub-table accounting ---------------------------------------- *)
  let owned =
    List.fold_left
      (fun acc (b : Tcache.block) -> acc + List.length b.stubs)
      0 blocks
    + Hashtbl.length t.ret_stubs
    + Hashtbl.length t.plt
  in
  if t.live_stubs <> owned then
    add "accounting" "live_stubs=%d but blocks+return stubs own %d"
      t.live_stubs owned;
  let free = List.length t.free_stubs in
  if t.live_stubs + free <> t.nstubs then
    add "accounting" "live=%d + free=%d <> allocated=%d" t.live_stubs free
      t.nstubs;
  let seen = Hashtbl.create 64 in
  List.iter
    (fun k ->
      if Hashtbl.mem seen k then
        add "accounting" "stub %d appears twice on the free list" k;
      Hashtbl.replace seen k ())
    t.free_stubs;
  let check_live_not_free where k =
    if Hashtbl.mem seen k then
      add "accounting" "stub %d is both %s and on the free list" k where
  in
  List.iter
    (fun (b : Tcache.block) ->
      List.iter (check_live_not_free "owned by a block") b.stubs)
    blocks;
  Hashtbl.iter
    (fun _ (_, k) -> check_live_not_free "a return stub" k)
    t.ret_stubs;
  Hashtbl.iter (fun _ (_, k) -> check_live_not_free "a PLT slot" k) t.plt;
  let expected_md =
    (Tcache.map_entries tc * 12) + (t.live_stubs * 8)
    + (Hashtbl.length t.plt * 12)
  in
  if Controller.metadata_bytes t <> expected_md then
    add "accounting" "metadata_bytes=%d, recomputed %d"
      (Controller.metadata_bytes t) expected_md;

  (* -- prefetch staging buffer ---------------------------------------- *)
  (* Staged chunk bodies live CC-side only: a staged vaddr that is also
     resident means first touch went to the wire (or a translate forgot
     to consume its staged copy) — the copy can silently go stale. The
     bound is what keeps staging memory finite on the client. *)
  if Hashtbl.length t.staging > t.cfg.staging_chunks then
    add "staging" "staging holds %d chunks, bound is %d"
      (Hashtbl.length t.staging) t.cfg.staging_chunks;
  Hashtbl.iter
    (fun v (_ : Controller.staged) ->
      if Tcache.lookup tc v <> None then
        add "staging" "staged chunk v=0x%x aliases a resident block" v)
    t.staging;

  (* -- chaining link map ---------------------------------------------- *)
  (* The reverse link map must mirror the bytes exactly: its entries
     are precisely the patched direct-exit sites (that is what lets
     eviction of *either* endpoint find and revert every patch), every
     link aims at a live resident target that also records the site as
     incoming, and a site with no link holds its pristine revert bytes.
     The pending index is the complement: exactly the still-trapping
     exit stubs, keyed by the target they are waiting for. *)
  let patched_site = function
    | Stub.Exit { site_paddr; kind; revert_word; _ } -> (
      let w = word t site_paddr in
      if w <> revert_word then Some site_paddr
      else
        (* a branch exit keeps its site word and specialises the
           in-block island the branch aims at instead *)
        match kind with
        | Stub.Patch_jmp | Stub.Patch_jal -> None
        | Stub.Patch_br -> (
          match Isa.Encode.decode revert_word with
          | Some (Isa.Instr.Br (_, _, _, d)) -> (
            let island = site_paddr + (4 * d) in
            match Isa.Encode.decode (word t island) with
            | Some (Isa.Instr.Jmp _) -> Some island
            | _ -> None)
          | _ -> None))
    | _ -> None
  in
  let links_of id =
    match Hashtbl.find_opt t.links id with Some ls -> ls | None -> []
  in
  Hashtbl.iter
    (fun id ls ->
      if not (Tcache.is_alive tc id) then
        add "links" "%d link(s) recorded for dead source block id=%d"
          (List.length ls) id)
    t.links;
  List.iter
    (fun (b : Tcache.block) ->
      let patched =
        List.filter_map
          (fun k ->
            if k < 0 || k >= t.nstubs then None
            else
              match patched_site t.stubs.(k) with
              | Some site -> Some (site, k)
              | None -> None)
          b.stubs
      in
      let lks = links_of b.id in
      (* bytes -> links: every patched site has exactly one link *)
      List.iter
        (fun (site, k) ->
          match
            List.filter (fun (l : Controller.link) -> l.l_site = site) lks
          with
          | [ l ] ->
            if l.l_stub <> k then
              add "links" "link at site 0x%x names stub %d, bytes say %d"
                site l.l_stub k
          | [] ->
            add "links"
              "patched exit site 0x%x (block id=%d) has no reverse link"
              site b.id
          | _ :: _ :: _ ->
            add "links" "site 0x%x has duplicate reverse links" site)
        patched;
      (* links -> bytes: every link is a real patch at a live target *)
      List.iter
        (fun (l : Controller.link) ->
          if not (List.exists (fun (s, _) -> s = l.l_site) patched) then
            add "links"
              "link site 0x%x (block id=%d) holds its revert bytes — stale \
               link left behind by an unpatch"
              l.l_site b.id;
          match Tcache.find_by_id tc l.l_target with
          | None ->
            add "links" "link site 0x%x targets dead block id=%d" l.l_site
              l.l_target
          | Some tb ->
            if not (aims_at ~site:l.l_site ~b:tb (word t l.l_site)) then
              add "links"
                "link site 0x%x does not branch to its target id=%d@0x%x"
                l.l_site l.l_target tb.paddr
            else if not (has_incoming tb ~site_paddr:l.l_site) then
              add "links"
                "link site 0x%x missing from target id=%d incoming records"
                l.l_site l.l_target)
        lks)
    blocks;
  (* incoming -> links: the map is the exact mirror of the targets'
     block-to-block incoming records (persistent-stub specialisations,
     from_block = -1, have no source block and no link) *)
  List.iter
    (fun (tb : Tcache.block) ->
      List.iter
        (fun (inc : Tcache.incoming) ->
          if inc.from_block >= 0 then
            if not (Tcache.is_alive tc inc.from_block) then
              add "links"
                "incoming record at 0x%x on v=0x%x names dead source id=%d"
                inc.site_paddr tb.vaddr inc.from_block
            else if
              not
                (List.exists
                   (fun (l : Controller.link) -> l.l_site = inc.site_paddr)
                   (links_of inc.from_block))
            then
              add "links"
                "incoming record at 0x%x on v=0x%x has no reverse link on \
                 source id=%d"
                inc.site_paddr tb.vaddr inc.from_block)
        tb.incoming)
    blocks;
  (* the pending index is exactly the still-trapping live exit stubs *)
  let pending_mem ~target k =
    match Hashtbl.find_opt t.pending_exits target with
    | Some ks -> Hashtbl.mem ks k
    | None -> false
  in
  List.iter
    (fun (b : Tcache.block) ->
      List.iter
        (fun k ->
          if k >= 0 && k < t.nstubs then
            match t.stubs.(k) with
            | Stub.Exit { target; _ } as st ->
              let is_patched = patched_site st <> None in
              let listed = pending_mem ~target k in
              if is_patched && listed then
                add "links" "patched exit stub %d still in the pending index"
                  k
              else if (not is_patched) && not listed then
                add "links"
                  "trapping exit stub %d (target v=0x%x) missing from the \
                   pending index"
                  k target
            | _ -> ())
        b.stubs)
    blocks;
  Hashtbl.iter
    (fun target ks ->
      Hashtbl.iter
        (fun k () ->
          if k < 0 || k >= t.nstubs then
            add "links" "pending index holds out-of-range stub %d" k
          else
            match t.stubs.(k) with
            | Stub.Exit { block; target = starget; _ } ->
              if starget <> target then
                add "links"
                  "pending[v=0x%x] holds stub %d whose target is v=0x%x"
                  target k starget;
              if not (Tcache.is_alive tc block) then
                add "links" "pending[v=0x%x] holds stub %d of dead block id=%d"
                  target k block
            | _ -> add "links" "pending[v=0x%x] holds non-exit stub %d" target k)
        ks)
    t.pending_exits;

  (* -- superblock groups ---------------------------------------------- *)
  (* Any member eviction dissolves its group, so a live group's members
     are all resident, and [sb_of_block] is the exact inverse of the
     group table's member lists. *)
  Hashtbl.iter
    (fun sbid (sb : Controller.superblock) ->
      List.iter
        (fun id ->
          if not (Tcache.is_alive tc id) then
            add "superblock"
              "superblock %d (head v=0x%x) member id=%d is not resident" sbid
              sb.sb_head id
          else
            match Hashtbl.find_opt t.sb_of_block id with
            | Some g when g = sbid -> ()
            | Some g ->
              add "superblock" "member id=%d maps to superblock %d, expected %d"
                id g sbid
            | None ->
              add "superblock"
                "member id=%d (superblock %d) missing from sb_of_block" id sbid)
        sb.sb_members)
    t.superblocks;
  Hashtbl.iter
    (fun bid sbid ->
      match Hashtbl.find_opt t.superblocks sbid with
      | None ->
        add "superblock" "sb_of_block[%d] names missing superblock %d" bid sbid
      | Some (sb : Controller.superblock) ->
        if not (List.mem bid sb.sb_members) then
          add "superblock" "sb_of_block[%d] -> %d but the group omits it" bid
            sbid)
    t.sb_of_block;

  (* -- decode-cache coherence ---------------------------------------- *)
  (* The rewriter has just patched words all over the tcache; every
     valid predecode line must still agree with what a fresh decode of
     the underlying memory word produces.  A disagreement means a write
     path skipped the in-memory invalidation — the stale-instruction
     bug class the decode cache's design forbids by construction. *)
  List.iter
    (fun addr ->
      add "decode-coherence"
        "decode cache entry at 0x%x disagrees with the word in memory" addr)
    (Machine.Memory.decode_audit t.cpu.mem);

  (* -- replacement policy's resident view ----------------------------- *)
  (* The policy keeps its own table of residents, fed only by the
     observe hooks; any drift from the tcache means a hook was skipped
     (an install the policy never saw, or an eviction path that forgot
     to notify it) and the policy is now reasoning about ghosts. And
     [victim] must never name a pinned block: pin means exempt from
     eviction, full stop — the allocator trusts the policy on this. *)
  (let module P = (val t.policy : Softcache.Policy.S) in
   let tc_ids = List.sort compare (List.map (fun (b : Tcache.block) -> b.id) blocks) in
   let p_ids = List.sort compare (P.resident_ids ()) in
   if tc_ids <> p_ids then
     add "policy"
       "policy '%s' resident view %s disagrees with tcache ids %s (%s)"
       P.name
       (String.concat "," (List.map string_of_int p_ids))
       (String.concat "," (List.map string_of_int tc_ids))
       (P.debug_state ());
   match P.victim tc with
   | Some vb when Tcache.is_pinned tc vb.Tcache.id ->
     add "policy" "policy '%s' picked pinned block id=%d as victim (%s)"
       P.name vb.Tcache.id (P.debug_state ())
   | Some vb when not (Tcache.is_alive tc vb.Tcache.id) ->
     add "policy" "policy '%s' picked dead block id=%d as victim (%s)"
       P.name vb.Tcache.id (P.debug_state ())
   | Some _ | None -> ());

  (* -- trace attribution conserves ------------------------------------ *)
  (* Every explicit charge site labels its cycles and the residual is
     swept into execute, so the ledger must sum exactly to the CPU
     cycle counter at any audit point.  A gap means a charge path lost
     its label (or double-counted one) — the attribution numbers in the
     report would silently lie. *)
  (match t.tracer with
  | None -> ()
  | Some tr ->
    (* with harts attached the tracer's clock hops between per-hart
       cycle counters, so the single-counter conservation law does not
       apply — the per-hart ledger in [shards] replaces it *)
    if
      Array.length t.harts = 0
      && not (Trace.conserved tr ~total:t.cpu.cycles)
    then begin
      let s = Trace.summary tr in
      add "trace"
        "attribution does not conserve: categories sum to %d, cpu.cycles=%d"
        s.Trace.s_total t.cpu.cycles
    end;
    let s = Trace.summary tr in
    if s.Trace.s_dropped <> max 0 (s.Trace.s_emitted - s.Trace.s_capacity)
    then
      add "trace" "ring accounting: emitted=%d capacity=%d but dropped=%d"
        s.Trace.s_emitted s.Trace.s_capacity s.Trace.s_dropped);

  List.rev !viols

let check_exn t =
  match run t with [] -> () | vs -> raise (Audit_failure vs)

let install (t : Controller.t) =
  let audits = ref 0 in
  let prev = t.on_event in
  t.on_event <-
    Some
      (fun ev ->
        (match prev with Some f -> f ev | None -> ());
        incr audits;
        check_exn t);
  audits

let install_if_configured (t : Controller.t) =
  if t.cfg.audit then Some (install t) else None

(* ---- multi-hart (sharded CC) invariants ---------------------------

   On top of the full per-controller audit, the shard layer's own
   books: the fill state machine (single-owner fills, nothing in
   flight at a quiescent point), the suspension-lease discipline
   (every parked hart's lease covers the block its pc sits in, and the
   tcache's lease counts are exactly the sum of hart leases), and the
   per-hart cycle ledger (run + fill-wait + mc-wait = the hart's cycle
   counter — the multi-hart replacement for the solo trace
   conservation law). *)

let shards (s : Shard.t) : violation list =
  let viols = ref [] in
  let add invariant fmt =
    Format.kasprintf
      (fun detail -> viols := { invariant; detail } :: !viols)
      fmt
  in
  let c = Shard.controller s in
  let tc = c.tc in
  let blocks = Tcache.blocks tc in
  let harts = Shard.harts s in
  let n = List.length harts in

  (* -- no two resident blocks map the same backing chunk ------------ *)
  let seen_v = Hashtbl.create 64 in
  List.iter
    (fun (b : Tcache.block) ->
      (match Hashtbl.find_opt seen_v b.vaddr with
      | Some id ->
        add "shard-unique"
          "chunk v=0x%x resident twice (block ids %d and %d)" b.vaddr id
          b.id
      | None -> ());
      Hashtbl.replace seen_v b.vaddr b.id)
    blocks;

  (* -- fill state machine: single owners, quiescent in-flight set --- *)
  List.iter
    (fun (f : Shard.fill) ->
      if f.f_owner < 0 || f.f_owner >= n then
        add "shard-fill" "fill for v=0x%x owned by out-of-range hart %d"
          f.f_vaddr f.f_owner;
      match f.f_state with
      | Shard.Resident ->
        if f.f_done = max_int then
          add "shard-fill" "resident fill for v=0x%x has no completion stamp"
            f.f_vaddr
      | Shard.Requested | Shard.Filling ->
        if f.f_done <> max_int then
          add "shard-fill" "in-flight fill for v=0x%x carries stamp %d"
            f.f_vaddr f.f_done)
    (Shard.fills s);
  List.iter
    (fun (f : Shard.fill) ->
      add "shard-fill" "fill for v=0x%x still %s at a quiescent point"
        f.f_vaddr
        (Shard.state_name f.f_state))
    (Shard.in_flight s);

  (* -- lease discipline --------------------------------------------- *)
  let block_of pc =
    List.find_opt
      (fun (b : Tcache.block) ->
        pc >= b.paddr && pc < b.paddr + (4 * b.words))
      blocks
  in
  List.iter
    (fun (h : Shard.hart) ->
      match h.h_lease with
      | Some b ->
        if h.h_cpu.halted then
          add "shard-lease" "halted hart %d still holds a lease on id=%d"
            h.h_id b.id;
        if not (Tcache.is_alive tc b.id) then
          add "shard-lease" "hart %d leases dead block id=%d" h.h_id b.id
        else begin
          if Tcache.lease_count tc b.id < 1 then
            add "shard-lease"
              "hart %d's lease on id=%d is not counted by the tcache"
              h.h_id b.id;
          if not (h.h_cpu.pc >= b.paddr && h.h_cpu.pc < b.paddr + (4 * b.words))
          then
            add "shard-lease"
              "hart %d parked at 0x%x outside its leased block id=%d" h.h_id
              h.h_cpu.pc b.id
        end
      | None ->
        if (not h.h_cpu.halted) && block_of h.h_cpu.pc <> None then
          add "shard-lease"
            "hart %d parked at 0x%x inside a resident block without a lease"
            h.h_id h.h_cpu.pc)
    harts;
  (* conservation: the tcache's per-block lease counts are exactly the
     hart leases, block by block *)
  let hart_leases = Hashtbl.create 8 in
  List.iter
    (fun (h : Shard.hart) ->
      match h.h_lease with
      | Some b ->
        Hashtbl.replace hart_leases b.Tcache.id
          (1
          + Option.value ~default:0 (Hashtbl.find_opt hart_leases b.Tcache.id))
      | None -> ())
    harts;
  List.iter
    (fun (b : Tcache.block) ->
      let want = Option.value ~default:0 (Hashtbl.find_opt hart_leases b.id) in
      let got = Tcache.lease_count tc b.id in
      if got <> want then
        add "shard-lease" "block id=%d holds %d lease(s), harts account for %d"
          b.id got want)
    blocks;
  List.iter
    (fun id ->
      if not (Hashtbl.mem hart_leases id) then
        add "shard-lease" "leased id=%d is not held by any hart" id)
    (Tcache.leased_ids tc);

  (* -- per-hart cycle ledger ----------------------------------------- *)
  List.iter
    (fun (h : Shard.hart) ->
      if h.h_run < 0 || h.h_wait_fill < 0 || h.h_wait_mc < 0 then
        add "shard-ledger" "hart %d has a negative ledger entry (%d/%d/%d)"
          h.h_id h.h_run h.h_wait_fill h.h_wait_mc;
      let sum = h.h_run + h.h_wait_fill + h.h_wait_mc in
      if sum <> h.h_cpu.cycles then
        add "shard-ledger"
          "hart %d ledger run=%d + fill-wait=%d + mc-wait=%d = %d <> cycles=%d"
          h.h_id h.h_run h.h_wait_fill h.h_wait_mc sum h.h_cpu.cycles)
    harts;
  (* the aggregate statistics are the exact sums of the hart ledgers *)
  let sum get = List.fold_left (fun a h -> a + get h) 0 harts in
  let check_sum name stat get =
    let s = sum get in
    if stat <> s then
      add "shard-ledger" "stats.%s=%d but hart ledgers sum to %d" name stat s
  in
  check_sum "fills" c.stats.fills (fun (h : Shard.hart) -> h.h_fills);
  check_sum "fills_coalesced" c.stats.fills_coalesced (fun h -> h.h_joins);
  check_sum "fill_wait_cycles" c.stats.fill_wait_cycles (fun h -> h.h_wait_fill);
  check_sum "mc_wait_cycles" c.stats.mc_wait_cycles (fun h -> h.h_wait_mc);
  let makespan =
    List.fold_left (fun a (h : Shard.hart) -> max a h.h_cpu.cycles) 0 harts
  in
  if Shard.mc_free_at s > makespan then
    add "shard-ledger" "mc busy until %d, past every hart clock (max %d)"
      (Shard.mc_free_at s) makespan;

  (* -- per-hart policy attribution ------------------------------------ *)
  (let module P = (val c.policy : Softcache.Policy.S) in
   let touches = P.hart_touches () in
   List.iter
     (fun (hart, cnt) ->
       if hart < 0 || hart >= n then
         add "shard-policy" "policy '%s' recorded touches for bad hart %d"
           P.name hart;
       if cnt <= 0 then
         add "shard-policy" "policy '%s' records %d touches for hart %d"
           P.name cnt hart)
     touches;
   let total = List.fold_left (fun a (_, k) -> a + k) 0 touches in
   if total > c.stats.traps then
     add "shard-policy"
       "policy '%s' hart touches sum to %d, more than %d traps dispatched"
       P.name total c.stats.traps);

  (* plus the full per-controller audit of the shared cache *)
  List.rev !viols @ run c

let shards_exn s =
  match shards s with [] -> () | vs -> raise (Audit_failure vs)

(* ---- fleet-level invariants ---------------------------------------

   The per-controller sections above still apply to every session; on
   top of them the fleet MC keeps books that must balance:

   - the shared chunk cache respects its entry bound (and stays empty
     when dedup is off);
   - every demand attempt was served in exactly one way — its own
     frame, a piggyback ride, or a coalesced join — and the
     per-session counters sum to the MC's;
   - the shared link minted one message per dispatched frame (plus
     fault-injected duplicates) and none for piggybacks or joins;
   - isolation: no session holds (resident or staged) a chunk it never
     requested — the multi-tenant property a shared MC must not
     violate. *)

let fleet (f : Fleet.t) : violation list =
  let viols = ref [] in
  let add invariant fmt =
    Format.kasprintf
      (fun detail -> viols := { invariant; detail } :: !viols)
      fmt
  in
  let cfg = Fleet.config_of f in
  let entries = Fleet.cache_entries f in
  if cfg.Fleet.dedup && cfg.Fleet.cache_chunks > 0 then begin
    if entries > cfg.Fleet.cache_chunks then
      add "fleet-cache" "shared cache holds %d entries, bound %d" entries
        cfg.Fleet.cache_chunks
  end
  else if entries > 0 then
    add "fleet-cache" "dedup disabled yet shared cache holds %d entries"
      entries;
  let attempts = Fleet.attempts f
  and frames = Fleet.frames f
  and piggybacked = Fleet.piggybacked f
  and coalesced = Fleet.coalesced f in
  if attempts <> frames + piggybacked + coalesced then
    add "fleet-conserve"
      "attempts %d <> frames %d + piggybacked %d + coalesced %d" attempts
      frames piggybacked coalesced;
  let sessions = Fleet.sessions f in
  let sum get = Array.fold_left (fun a s -> a + get s) 0 sessions in
  let sf = sum Fleet.fetches in
  if sf <> attempts then
    add "fleet-conserve" "session fetches sum to %d, MC saw %d attempts" sf
      attempts;
  let sc = sum Fleet.session_coalesced in
  if sc <> coalesced then
    add "fleet-conserve" "session coalesced sum to %d, MC counted %d" sc
      coalesced;
  let msgs = Fleet.messages_delta f and dups = Fleet.duplicates_delta f in
  if msgs <> frames + dups then
    add "fleet-messages"
      "link minted %d messages, expected frames %d + duplicates %d" msgs
      frames dups;
  Array.iter
    (fun s ->
      let c = Fleet.controller s in
      let id = Fleet.session_id s in
      let img = Fleet.image s in
      (* under mixed workloads the request log alone can't catch
         cross-client leakage (two clients may legitimately request the
         same vaddr); every cached chunk must also decode from *this*
         client's text segment *)
      List.iter
        (fun (b : Tcache.block) ->
          if not (Fleet.requested s b.vaddr) then
            add "fleet-isolation"
              "client %d resident chunk 0x%x was never requested by it" id
              b.vaddr;
          if not (Isa.Image.contains_code img b.vaddr) then
            add "fleet-isolation"
              "client %d resident chunk 0x%x is outside its workload %s" id
              b.vaddr img.Isa.Image.name)
        (Tcache.blocks c.tc);
      Hashtbl.iter
        (fun v (_ : Controller.staged) ->
          if not (Fleet.requested s v) then
            add "fleet-isolation"
              "client %d staged chunk 0x%x was never requested by it" id v;
          if not (Isa.Image.contains_code img v) then
            add "fleet-isolation"
              "client %d staged chunk 0x%x is outside its workload %s" id v
              img.Isa.Image.name)
        c.staging)
    sessions;
  (* every session's own tcache invariants, prefixed per client; a
     multi-hart session gets the full shard audit (which itself ends in
     the per-controller [run]) *)
  Array.iter
    (fun s ->
      let id = Fleet.session_id s in
      let vs =
        match Fleet.shard s with
        | Some sh -> shards sh
        | None -> run (Fleet.controller s)
      in
      List.iter
        (fun v ->
          add "fleet-session" "client %d: [%s] %s" id v.invariant v.detail)
        vs)
    sessions;
  List.rev !viols

