(** Tcache invariant auditor.

    After any state-changing controller operation the translation cache
    must satisfy a set of structural invariants; this module checks all
    of them against the encoded words actually present in client
    memory:

    - resident blocks lie inside the code area and never overlap;
    - the tcache map agrees exactly with the set of resident blocks;
    - every pinned id names a resident block;
    - every recorded incoming pointer either still holds its revert
      word or decodes to a branch aiming at its target block;
    - every exit stub of a live block is in its miss state (trapping,
      with a consistent branch island) or patched at a resident target
      that has the site recorded;
    - conversely, every encoded branch leaving a block lands on a block
      start and is recorded there as an incoming pointer (completeness
      — this is the direction that catches records that were never
      made);
    - every trap word names a stub its block owns;
    - persistent return stubs agree with the return-stub table and are
      either trapping or specialised at a recorded resident target;
    - stub-table accounting balances: live + free = allocated, no stub
      is both live and free, and [Controller.metadata_bytes] matches a
      recomputation;
    - the chaining link map is the exact mirror of the bytes: every
      patched direct-exit site has exactly one reverse link (and vice
      versa — a site with no link holds its pristine revert bytes),
      every link aims at a live resident target that records the site
      as incoming, every block-to-block incoming record has a matching
      link on a live source, and the pending-exit index lists exactly
      the still-trapping live exit stubs;
    - superblock groups are consistent: every member of a live group is
      resident and [sb_of_block] inverts the group table exactly. *)

type violation = { invariant : string; detail : string }

exception Audit_failure of violation list

val pp_violation : Format.formatter -> violation -> unit

val run : Softcache.Controller.t -> violation list
(** All violations found in the controller's current state; [[]] when
    the cache is consistent. *)

val check_exn : Softcache.Controller.t -> unit
(** @raise Audit_failure if {!run} reports anything. *)

val install : Softcache.Controller.t -> int ref
(** Attach the auditor to [Controller.on_event] (chaining any existing
    subscriber) so the full invariant suite runs after every
    translation, eviction, patch, invalidation and flush. Returns the
    audit counter. *)

val install_if_configured : Softcache.Controller.t -> int ref option
(** [install] if the controller's [Config.audit] flag is set. *)

val fleet : Fleet.t -> violation list
(** Audit a whole fleet: the shared chunk cache respects its bound (and
    is empty when dedup is off); request conservation holds at the MC
    ([attempts = frames + piggybacked + coalesced], with the per-session
    counters summing to the MC's); the shared link minted exactly one
    message per dispatched frame plus fault-injected duplicates (none
    for piggybacks or coalesced joins); no session holds — resident or
    staged — a chunk it never requested {e or that falls outside its
    own workload's text segment} (the mixed-workload isolation check);
    and every session passes the full per-controller audit ({!run}) —
    or, for multi-hart sessions, the full {!shards} audit — reported
    with a ["fleet-session"] prefix. *)

val shards : Softcache.Shard.t -> violation list
(** Audit a multi-hart (sharded) session at a quiescent point (between
    {!Softcache.Shard.run} calls): no two resident blocks map the same
    backing chunk; every fill has a single in-range owner, in-flight
    fills carry no completion stamp and none remain in flight; the
    suspension-lease discipline holds (every non-halted hart parked
    inside a resident block holds exactly one lease on that block,
    halted harts hold none, and the tcache's per-block lease counts
    equal the per-hart leases block by block); every hart's cycle
    ledger conserves ([h_run + h_wait_fill + h_wait_mc = cycles]) and
    the aggregate fill statistics are the exact sums of the hart
    ledgers; the policy's per-hart touch attribution names only real
    harts. Includes the full per-controller audit ({!run}) of the
    shared cache. *)

val shards_exn : Softcache.Shard.t -> unit
(** @raise Audit_failure if {!shards} reports anything. *)
