(* Lockstep differential runner.

   Runs the program natively first, recording the sequence of data
   accesses, then replays it under the SoftCache and compares in the
   CPU's load/store hooks, aborting at the first divergent access.

   Loads and stores are the right observables: data addresses are
   architecturally identical between the two runs (same data segment,
   same initial sp), while fetch addresses and return-address *values*
   legitimately differ — cached code runs out of the tcache and returns
   land on landing pads. Controller bookkeeping writes go straight to
   memory, bypassing the CPU hooks, so they never pollute the cached
   stream. Output values are compared at the end. *)

open Softcache

type event = Load of int | Store of int | Output of int

type divergence = {
  index : int;  (** position in the event stream *)
  native : event option;  (** [None]: native had already finished *)
  cached : event option;  (** [None]: cached stopped short *)
}

type verdict =
  | Equivalent of { events : int }
  | Diverged of divergence
  | Native_out_of_fuel
  | Cached_out_of_fuel of { events : int }
  | Unavailable of { vaddr : int; attempts : int; events : int }

let pp_event ppf = function
  | Load a -> Format.fprintf ppf "load 0x%x" a
  | Store a -> Format.fprintf ppf "store 0x%x" a
  | Output v -> Format.fprintf ppf "out %d" v

let pp_verdict ppf = function
  | Equivalent { events } ->
    Format.fprintf ppf "equivalent (%d events)" events
  | Diverged { index; native; cached } ->
    let pp_opt ppf = function
      | Some e -> pp_event ppf e
      | None -> Format.pp_print_string ppf "(stream ended)"
    in
    Format.fprintf ppf "diverged at event %d: native %a, cached %a" index
      pp_opt native pp_opt cached
  | Native_out_of_fuel -> Format.pp_print_string ppf "native out of fuel"
  | Cached_out_of_fuel { events } ->
    Format.fprintf ppf "cached out of fuel after %d events" events
  | Unavailable { vaddr; attempts; events } ->
    Format.fprintf ppf
      "chunk 0x%x unavailable after %d attempts (%d events matched)" vaddr
      attempts events

(* Growable int array; events are tagged as addr*2 + (0=load / 1=store). *)
module Vec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 1024 0; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let bigger = Array.make (2 * v.n) 0 in
      Array.blit v.a 0 bigger 0 v.n;
      v.a <- bigger
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1
end

let untag x = if x land 1 = 0 then Load (x lsr 1) else Store (x lsr 1)

exception Stop

let run ?cost ?(fuel = 2_000_000) ?(ops = []) ?(audit = false) ?on_controller
    (cfg : Config.t) img : verdict =
  (* native reference run, trace collected *)
  let ncpu = Machine.Cpu.of_image ?cost img in
  let trace = Vec.create () in
  ncpu.on_load <- Some (fun a -> Vec.push trace (a lsl 1));
  ncpu.on_store <- Some (fun a -> Vec.push trace ((a lsl 1) lor 1));
  match Machine.Cpu.run ~fuel ncpu with
  | Machine.Cpu.Out_of_fuel -> Native_out_of_fuel
  | Machine.Cpu.Halted -> (
    let native_outs = Machine.Cpu.outputs ncpu in
    (* cached run, compared in-hook *)
    let ctrl = Controller.create ?cost cfg img in
    if audit then ignore (Audit.install ctrl);
    (match on_controller with Some f -> f ctrl | None -> ());
    let idx = ref 0 in
    let div = ref None in
    let check tag ev =
      if !idx >= trace.Vec.n then begin
        div := Some { index = !idx; native = None; cached = Some ev };
        raise Stop
      end
      else if trace.Vec.a.(!idx) <> tag then begin
        div :=
          Some
            {
              index = !idx;
              native = Some (untag trace.Vec.a.(!idx));
              cached = Some ev;
            };
        raise Stop
      end
      else incr idx
    in
    ctrl.cpu.on_load <- Some (fun a -> check (a lsl 1) (Load a));
    ctrl.cpu.on_store <- Some (fun a -> check ((a lsl 1) lor 1) (Store a));
    (* drive in slices, applying one mid-run op at each boundary *)
    let nslices = List.length ops + 1 in
    let slice = max 1 (fuel / nslices) in
    let outcome =
      try
        let rec go left = function
          | op :: rest -> (
            match Controller.run ~fuel:slice ctrl with
            | Machine.Cpu.Halted -> Ok Machine.Cpu.Halted
            | Machine.Cpu.Out_of_fuel ->
              op ctrl;
              go (left - slice) rest)
          | [] -> Ok (Controller.run ~fuel:(max slice left) ctrl)
        in
        go fuel ops
      with
      | Stop -> Error `Stopped
      | Controller.Chunk_unavailable { vaddr; attempts } ->
        Error (`Unavailable (vaddr, attempts))
    in
    match outcome with
    | Error `Stopped -> (
      match !div with
      | Some d -> Diverged d
      | None -> assert false)
    | Error (`Unavailable (vaddr, attempts)) ->
      Unavailable { vaddr; attempts; events = !idx }
    | Ok Machine.Cpu.Out_of_fuel -> Cached_out_of_fuel { events = !idx }
    | Ok Machine.Cpu.Halted ->
      if !idx < trace.Vec.n then
        Diverged
          {
            index = !idx;
            native = Some (untag trace.Vec.a.(!idx));
            cached = None;
          }
      else begin
        (* access streams matched; compare observable output *)
        let cached_outs = Machine.Cpu.outputs ctrl.cpu in
        let rec cmp i ns cs =
          match (ns, cs) with
          | [], [] -> Equivalent { events = !idx + i }
          | n :: ns', c :: cs' ->
            if n = c then cmp (i + 1) ns' cs'
            else
              Diverged
                {
                  index = !idx + i;
                  native = Some (Output n);
                  cached = Some (Output c);
                }
          | n :: _, [] ->
            Diverged
              { index = !idx + i; native = Some (Output n); cached = None }
          | [], c :: _ ->
            Diverged
              { index = !idx + i; native = None; cached = Some (Output c) }
        in
        cmp 0 native_outs cached_outs
      end)

(* ------------------------------------------------------------------ *)
(* Decoded vs interpretive dispatch, in true instruction lockstep.

   Unlike [run] — which compares a cached run against a *different*
   execution (the native one) and therefore can only observe data
   accesses — the two engines run the *same* softcached execution, so
   every piece of architectural state must match after every single
   retired instruction: pc, registers, cycles, and at the end outputs
   and full memory. Mid-run ops (invalidate / flush) are applied to
   both controllers at the same instruction boundaries, which is
   exactly when the decode cache is most at risk of serving stale
   words. *)

type engine_verdict =
  | Engines_equivalent of { steps : int }
  | Engines_diverged of { step : int; detail : string }
  | Engines_out_of_fuel of { steps : int }
      (** every compared step matched; the budget ran out first *)
  | Engines_unavailable of { vaddr : int; attempts : int; steps : int }

let pp_engine_verdict ppf = function
  | Engines_equivalent { steps } ->
    Format.fprintf ppf "engines equivalent (%d steps)" steps
  | Engines_diverged { step; detail } ->
    Format.fprintf ppf "engines diverged at step %d: %s" step detail
  | Engines_out_of_fuel { steps } ->
    Format.fprintf ppf "engines out of fuel after %d matching steps" steps
  | Engines_unavailable { vaddr; attempts; steps } ->
    Format.fprintf ppf
      "chunk 0x%x unavailable after %d attempts (%d steps matched)" vaddr
      attempts steps

let state_mismatch ?(labels = ("decoded", "interpretive"))
    ?(compare_cycles = true) (a : Softcache.Controller.t)
    (b : Softcache.Controller.t) =
  let la, lb = labels in
  if a.cpu.pc <> b.cpu.pc then
    Some (Printf.sprintf "pc 0x%x (%s) vs 0x%x (%s)" a.cpu.pc la b.cpu.pc lb)
  else if a.cpu.retired <> b.cpu.retired then
    Some (Printf.sprintf "retired %d vs %d" a.cpu.retired b.cpu.retired)
  else if compare_cycles && a.cpu.cycles <> b.cpu.cycles then
    Some (Printf.sprintf "cycles %d vs %d" a.cpu.cycles b.cpu.cycles)
  else if a.cpu.halted <> b.cpu.halted then
    Some (Printf.sprintf "halted %b vs %b" a.cpu.halted b.cpu.halted)
  else if a.cpu.regs <> b.cpu.regs then begin
    let detail = ref "registers differ" in
    Array.iteri
      (fun i v ->
        if v <> b.cpu.regs.(i) && !detail = "registers differ" then
          detail :=
            Printf.sprintf "r%d = %d (%s) vs %d (%s)" i v la b.cpu.regs.(i)
              lb)
      a.cpu.regs;
    Some !detail
  end
  else None

(* Drive two softcached executions of the same program one instruction
   at a time, comparing architectural state after every step.
   [hash_range] restricts the final memory comparison — pass the data
   segment when the two sides legitimately hold different code bytes
   (e.g. chained vs unchained tcache contents). *)
let drive_pair ?hash_range ?step_a ~fuel ~ops ~labels ~compare_cycles
    (ca : Controller.t) (cb : Controller.t) : engine_verdict =
  (* [step_a] lets side a advance through a different front end over
     the same controller (the shard layer's scheduler loop); the
     default is the plain controller step *)
  let step_a =
    match step_a with
    | Some f -> f
    | None -> fun () -> Controller.run ~fuel:1 ca
  in
  let steps = ref 0 in
  let step_pair () =
    (* run returns immediately once halted, so over-stepping is safe *)
    let oa = step_a () in
    let ob = Controller.run ~fuel:1 cb in
    incr steps;
    (oa, ob)
  in
  let nslices = List.length ops + 1 in
  let slice = max 1 (fuel / nslices) in
  let exception Divergence of string in
  let check () =
    match state_mismatch ~labels ~compare_cycles ca cb with
    | Some d -> raise (Divergence d)
    | None -> ()
  in
  let rec drive budget ops =
    if ca.cpu.halted && cb.cpu.halted then `Halted
    else if budget <= 0 then
      match ops with
      | op :: rest ->
        op ca;
        op cb;
        check ();
        drive slice rest
      | [] -> `Out_of_fuel
    else begin
      let oa, ob = step_pair () in
      if oa <> ob then
        raise
          (Divergence
             (Printf.sprintf "outcome %s vs %s"
                (match oa with
                | Machine.Cpu.Halted -> "halted"
                | Machine.Cpu.Out_of_fuel -> "running")
                (match ob with
                | Machine.Cpu.Halted -> "halted"
                | Machine.Cpu.Out_of_fuel -> "running")));
      check ();
      drive (budget - 1) ops
    end
  in
  match drive slice ops with
  | exception Divergence detail -> Engines_diverged { step = !steps; detail }
  | exception Controller.Chunk_unavailable { vaddr; attempts } ->
    Engines_unavailable { vaddr; attempts; steps = !steps }
  | `Out_of_fuel -> Engines_out_of_fuel { steps = !steps }
  | `Halted -> (
    let aouts = Machine.Cpu.outputs ca.cpu
    and bouts = Machine.Cpu.outputs cb.cpu in
    if aouts <> bouts then
      Engines_diverged { step = !steps; detail = "output streams differ" }
    else
      let lo, hi =
        match hash_range with
        | Some r -> r
        | None -> (0, Machine.Memory.size ca.cpu.mem)
      in
      let ha = Machine.Memory.hash ca.cpu.mem ~lo ~hi
      and hb = Machine.Memory.hash cb.cpu.mem ~lo ~hi in
      if ha <> hb then
        Engines_diverged { step = !steps; detail = "final memory differs" }
      else Engines_equivalent { steps = !steps })

let engines ?cost ?(fuel = 2_000_000) ?(ops = []) ?(audit = false) mk_cfg
    img : engine_verdict =
  (* each side gets its own Config (and thus its own Netmodel state) so
     shared transport RNG/counters cannot desynchronise the pair *)
  let mk engine =
    let cfg = { (mk_cfg ()) with Config.engine } in
    Controller.create ?cost cfg img
  in
  let cd = mk Machine.Cpu.Decoded in
  let ci = mk Machine.Cpu.Interpretive in
  if audit then ignore (Audit.install cd);
  drive_pair ~fuel ~ops ~labels:("decoded", "interpretive")
    ~compare_cycles:true cd ci

(* Prefetch-on vs prefetch-off, in instruction lockstep.

   Prefetching must be architecturally invisible: staged chunk bodies
   live CC-side and install lazily on first touch, so pc, retired
   count, registers, outputs and final memory must all match after
   every instruction. Cycle accounting is the one thing allowed to
   differ — saving cycles is the point — so it is excluded from the
   per-step comparison. *)
let prefetch ?cost ?(fuel = 2_000_000) ?(ops = []) ?(audit = false) mk_cfg
    img : engine_verdict =
  let mk degree_override =
    let cfg = mk_cfg () in
    let cfg =
      match degree_override with
      | Some d -> { cfg with Config.prefetch_degree = d }
      | None -> cfg
    in
    Controller.create ?cost cfg img
  in
  let con = mk None in
  let coff = mk (Some 0) in
  if audit then ignore (Audit.install con);
  drive_pair ~fuel ~ops ~labels:("prefetch", "baseline")
    ~compare_cycles:false con coff

(* Trace-on vs trace-off, in instruction lockstep.

   Observability must never perturb the experiment it observes: a run
   with a tracer attached must be *cycle*- and *counter*-identical to
   the same run without one, not merely architecturally equivalent. So
   unlike [prefetch], cycles are part of the per-step comparison, and
   after the drive the full statistics record and every interconnect
   counter are compared too. Finally the tracer's own books are
   checked: the attribution categories must sum exactly to the traced
   run's cycle counter (the conservation law [Check.Audit] also
   enforces). *)
let trace ?cost ?(fuel = 2_000_000) ?(ops = []) ?(audit = false) mk_cfg img
    : engine_verdict =
  (* fresh Config per side: each gets its own Netmodel state, so the
     comparison proves the tracer does not disturb the rng draw
     stream *)
  let traced = Controller.create ?cost (mk_cfg ()) img in
  let plain = Controller.create ?cost (mk_cfg ()) img in
  let tr = Trace.create ~limit:traced.cfg.Config.trace_limit () in
  Controller.attach_tracer traced tr;
  if audit then ignore (Audit.install traced);
  let verdict =
    drive_pair ~fuel ~ops ~labels:("traced", "untraced")
      ~compare_cycles:true traced plain
  in
  match verdict with
  | Engines_diverged _ | Engines_unavailable _ -> verdict
  | Engines_equivalent { steps } | Engines_out_of_fuel { steps } ->
    let diverged detail = Engines_diverged { step = steps; detail } in
    let net_counters (c : Controller.t) =
      let n = c.cfg.Config.net in
      ( Netmodel.messages n,
        Netmodel.payload_bytes n,
        Netmodel.total_bytes n,
        Netmodel.drops n,
        Netmodel.corruptions n,
        Netmodel.duplicates n,
        Netmodel.delay_spikes n )
    in
    if traced.stats <> plain.stats then
      diverged
        (Format.asprintf "stats differ: %a (traced) vs %a (untraced)"
           Stats.pp traced.stats Stats.pp plain.stats)
    else if net_counters traced <> net_counters plain then
      diverged "interconnect counters differ"
    else if not (Trace.conserved tr ~total:traced.cpu.cycles) then
      diverged
        (Printf.sprintf
           "attribution does not conserve: categories sum to %d, cpu.cycles \
            = %d"
           (Trace.summary tr).Trace.s_total traced.cpu.cycles)
    else verdict

(* 1-client fleet vs the plain single-controller path.

   The fleet layer must be a strict generalisation: with one client
   there is nobody to queue behind, coalesce with or piggyback onto,
   and the shared chunk cache memoizes CRC values it would have
   computed anyway — so the fleet-hosted controller must be *cycle*-
   and *counter*-identical to a plain [Controller] over the same
   config, not merely equivalent. Each side gets its own Config (and
   thus its own Netmodel rng), exactly as in [trace]. *)
let fleet ?cost ?(fuel = 2_000_000) ?(ops = []) ?(audit = false) mk_cfg img
    : engine_verdict =
  let solo = Controller.create ?cost (mk_cfg ()) img in
  let fcfg = mk_cfg () in
  let fl =
    Fleet.create ?cost
      ~config:(Fleet.config ~clients:1 ())
      ~net:fcfg.Config.net
      (fun _ -> fcfg)
      [| img |]
  in
  let hosted = Fleet.controller (Fleet.sessions fl).(0) in
  if audit then ignore (Audit.install hosted);
  let verdict =
    drive_pair ~fuel ~ops ~labels:("fleet", "solo") ~compare_cycles:true
      hosted solo
  in
  match verdict with
  | Engines_diverged _ | Engines_unavailable _ -> verdict
  | Engines_equivalent { steps } | Engines_out_of_fuel { steps } ->
    let diverged detail = Engines_diverged { step = steps; detail } in
    let net_counters (c : Controller.t) =
      let n = c.cfg.Config.net in
      ( Netmodel.messages n,
        Netmodel.payload_bytes n,
        Netmodel.total_bytes n,
        Netmodel.drops n,
        Netmodel.corruptions n,
        Netmodel.duplicates n,
        Netmodel.delay_spikes n )
    in
    if hosted.stats <> solo.stats then
      diverged
        (Format.asprintf "stats differ: %a (fleet) vs %a (solo)" Stats.pp
           hosted.stats Stats.pp solo.stats)
    else if net_counters hosted <> net_counters solo then
      diverged "interconnect counters differ"
    else verdict

(* 1-hart sharded CC vs the plain solo controller.

   The multi-hart layer must be a strict generalisation too: with one
   hart there is nobody to coalesce with or wait behind — the lone
   hart holds no lease while controller code runs (leases live only
   across suspensions, and nothing else runs during one), and its own
   fills always complete before its next miss — so the shard-hosted
   run must be *cycle*-identical to a plain [Controller] over the
   same config, step for step. The fill state machine's own
   bookkeeping ([Stats.fills] and friends) is the one legitimate
   difference: the solo path bypasses it entirely. On top of the
   drive, the lone hart must have been charged zero wait cycles, and
   the final state must pass the full [Audit.shards] suite. *)
let shards ?cost ?(fuel = 2_000_000) ?(ops = []) ?(audit = false) mk_cfg img
    : engine_verdict =
  let solo = Controller.create ?cost (mk_cfg ()) img in
  let hcfg = { (mk_cfg ()) with Config.harts = 1 } in
  let hosted = Controller.create ?cost hcfg img in
  let sh = Shard.attach hosted in
  if audit then ignore (Audit.install hosted);
  let verdict =
    drive_pair
      ~step_a:(fun () -> Shard.run ~fuel:1 sh)
      ~fuel ~ops ~labels:("sharded", "solo") ~compare_cycles:true hosted solo
  in
  match verdict with
  | Engines_diverged _ | Engines_unavailable _ -> verdict
  | Engines_equivalent { steps } | Engines_out_of_fuel { steps } ->
    let diverged detail = Engines_diverged { step = steps; detail } in
    let net_counters (c : Controller.t) =
      let n = c.cfg.Config.net in
      ( Netmodel.messages n,
        Netmodel.payload_bytes n,
        Netmodel.total_bytes n,
        Netmodel.drops n,
        Netmodel.corruptions n,
        Netmodel.duplicates n,
        Netmodel.delay_spikes n )
    in
    let neutral (s : Stats.t) =
      {
        s with
        Stats.fills = 0;
        fills_coalesced = 0;
        fill_wait_cycles = 0;
        mc_wait_cycles = 0;
      }
    in
    let h = Shard.hart sh 0 in
    if h.Shard.h_wait_fill <> 0 || h.Shard.h_wait_mc <> 0 || h.Shard.h_joins <> 0
    then
      diverged
        (Printf.sprintf
           "lone hart was charged waits: fill=%d mc=%d joins=%d"
           h.Shard.h_wait_fill h.Shard.h_wait_mc h.Shard.h_joins)
    else if neutral hosted.stats <> neutral solo.stats then
      diverged
        (Format.asprintf "stats differ: %a (sharded) vs %a (solo)" Stats.pp
           hosted.stats Stats.pp solo.stats)
    else if net_counters hosted <> net_counters solo then
      diverged "interconnect counters differ"
    else (
      match Audit.shards sh with
      | [] -> verdict
      | v :: _ ->
        diverged (Format.asprintf "shard audit: %a" Audit.pp_violation v))

(* Chaining modes against the native reference.

   Chaining equivalence is *observational*, not step-wise: an
   unresolved Br/Jal exit hops through its in-block trap island (two
   retired instructions) where the patched site branches direct (one),
   so pc and retire streams legitimately differ on every first
   traversal — and superblock formation relocates whole chains. What
   must never change is what the program computes. So, in the style of
   [policies]: each mode — no chaining, eager chaining, chaining +
   superblock formation — is run in data-access lockstep against the
   native execution, then the modes are cross-compared on the
   observables that survive placement and trap-count differences: the
   output stream and the final data segment. Valid under *any*
   replacement policy, including the recency policies whose entry
   streams chaining legitimately thins. *)

type modes_verdict =
  | Modes_equivalent of { modes : string list; events : int }
  | Mode_diverged of { mode : string; verdict : verdict }
  | Modes_mismatch of { mode : string; baseline : string; detail : string }

let pp_modes_verdict ppf = function
  | Modes_equivalent { modes; events } ->
    Format.fprintf ppf "%d modes equivalent (%s; %d events)"
      (List.length modes)
      (String.concat ", " modes)
      events
  | Mode_diverged { mode; verdict } ->
    Format.fprintf ppf "mode '%s' diverged from native: %a" mode pp_verdict
      verdict
  | Modes_mismatch { mode; baseline; detail } ->
    Format.fprintf ppf "mode '%s' disagrees with '%s': %s" mode baseline
      detail

let chain_modes ?cost ?(fuel = 2_000_000) ?(ops = []) ?(audit = false)
    ?oracle ?(superblock_threshold = 1) mk_cfg img : modes_verdict =
  let data_lo = img.Isa.Image.data_base in
  let data_hi = data_lo + Bytes.length img.Isa.Image.data in
  let observe (name, chain, threshold) =
    (* fresh Config per mode: own Netmodel state, own tcache *)
    let cfg =
      { (mk_cfg ()) with Config.chain; superblock_threshold = threshold }
    in
    let ctrl = ref None in
    let v =
      run ?cost ~fuel ~ops ~audit
        ~on_controller:(fun c ->
          c.Controller.chain_oracle <- (if threshold > 0 then oracle else None);
          ctrl := Some c)
        cfg img
    in
    (name, v, !ctrl)
  in
  let results =
    List.map observe
      [
        ("off", false, 0);
        ("chain", true, 0);
        ("chain+superblock", true, superblock_threshold);
      ]
  in
  match
    List.find_opt
      (fun (_, v, _) -> match v with Equivalent _ -> false | _ -> true)
      results
  with
  | Some (name, v, _) -> Mode_diverged { mode = name; verdict = v }
  | None -> (
    let observables (c : Controller.t) =
      ( Machine.Cpu.outputs c.cpu,
        Machine.Memory.hash c.cpu.mem ~lo:data_lo ~hi:data_hi )
    in
    match results with
    | (bname, Equivalent { events }, Some bc) :: rest ->
      let bouts, bhash = observables bc in
      let rec cmp = function
        | [] ->
          Modes_equivalent
            { modes = List.map (fun (n, _, _) -> n) results; events }
        | (name, _, Some c) :: rest ->
          let outs, hash = observables c in
          if outs <> bouts then
            Modes_mismatch
              { mode = name; baseline = bname; detail = "output streams differ" }
          else if hash <> bhash then
            Modes_mismatch
              {
                mode = name;
                baseline = bname;
                detail = "final data segment differs";
              }
          else cmp rest
        | (_, _, None) :: _ ->
          (* on_controller fires before the cached drive begins *)
          assert false
      in
      cmp rest
    | _ -> assert false)

(* Every replacement policy, against the same reference.

   The policy only decides *which* block dies; it must never change
   what the program computes. So each policy in the registry
   ([Config.eviction_table]) is run in data-access lockstep against
   the native execution ([run]), and then the policies are compared
   against each other on the observables that are comparable across
   policies: the output stream and the final data segment. Cycle
   counts, retired instructions and code placement legitimately differ
   — different victims mean different stub and trap sequences — so
   none of those participate. *)

type policies_verdict =
  | Policies_equivalent of { policies : string list; events : int }
      (** per-policy events counts are equal by construction: every
          policy matched the same native access stream *)
  | Policy_diverged of { policy : string; verdict : verdict }
  | Policies_mismatch of { policy : string; baseline : string; detail : string }

let pp_policies_verdict ppf = function
  | Policies_equivalent { policies; events } ->
    Format.fprintf ppf "%d policies equivalent (%s; %d events)"
      (List.length policies)
      (String.concat ", " policies)
      events
  | Policy_diverged { policy; verdict } ->
    Format.fprintf ppf "policy '%s' diverged from native: %a" policy
      pp_verdict verdict
  | Policies_mismatch { policy; baseline; detail } ->
    Format.fprintf ppf "policy '%s' disagrees with '%s': %s" policy baseline
      detail

let policies ?cost ?(fuel = 2_000_000) ?(ops = []) ?(audit = false) mk_cfg
    img : policies_verdict =
  let data_lo = img.Isa.Image.data_base in
  let data_hi = data_lo + Bytes.length img.Isa.Image.data in
  let observe (name, ev) =
    (* fresh Config per policy: own Netmodel state, own tcache *)
    let cfg = { (mk_cfg ()) with Config.eviction = ev } in
    let ctrl = ref None in
    let v =
      run ?cost ~fuel ~ops ~audit
        ~on_controller:(fun c -> ctrl := Some c)
        cfg img
    in
    (name, v, !ctrl)
  in
  let results = List.map observe Config.eviction_table in
  match
    List.find_opt
      (fun (_, v, _) -> match v with Equivalent _ -> false | _ -> true)
      results
  with
  | Some (name, v, _) -> Policy_diverged { policy = name; verdict = v }
  | None -> (
    let observables (c : Controller.t) =
      ( Machine.Cpu.outputs c.cpu,
        Machine.Memory.hash c.cpu.mem ~lo:data_lo ~hi:data_hi )
    in
    match results with
    | (bname, Equivalent { events }, Some bc) :: rest ->
      let bouts, bhash = observables bc in
      let rec cmp = function
        | [] ->
          Policies_equivalent
            { policies = List.map (fun (n, _, _) -> n) results; events }
        | (name, _, Some c) :: rest ->
          let outs, hash = observables c in
          if outs <> bouts then
            Policies_mismatch
              { policy = name; baseline = bname; detail = "output streams differ" }
          else if hash <> bhash then
            Policies_mismatch
              {
                policy = name;
                baseline = bname;
                detail = "final data segment differs";
              }
          else cmp rest
        | (_, _, None) :: _ ->
          (* on_controller fires before the cached drive begins *)
          assert false
      in
      cmp rest
    | _ -> assert false)

(* Block vs whole-function granularity, against the same reference.

   Function granularity changes the unit shape, the call linkage (PLT
   slots instead of per-site call patching) and tcache placement
   wholesale, so — exactly as for chaining modes — equivalence is
   observational: each granularity in [Config.granularity_table] runs
   in data-access lockstep against the native execution, then the
   granularities are cross-compared on the output stream and the final
   data segment. [eviction] pins the replacement policy so callers can
   sweep the whole policy × granularity grid. *)

let granularity ?cost ?(fuel = 2_000_000) ?(ops = []) ?(audit = false)
    ?eviction mk_cfg img : modes_verdict =
  let data_lo = img.Isa.Image.data_base in
  let data_hi = data_lo + Bytes.length img.Isa.Image.data in
  let observe (name, g) =
    (* fresh Config per granularity: own Netmodel state, own tcache *)
    let cfg = { (mk_cfg ()) with Config.granularity = g } in
    let cfg =
      match eviction with
      | Some ev -> { cfg with Config.eviction = ev }
      | None -> cfg
    in
    let ctrl = ref None in
    let v =
      run ?cost ~fuel ~ops ~audit
        ~on_controller:(fun c -> ctrl := Some c)
        cfg img
    in
    (name, v, !ctrl)
  in
  let results = List.map observe Config.granularity_table in
  match
    List.find_opt
      (fun (_, v, _) -> match v with Equivalent _ -> false | _ -> true)
      results
  with
  | Some (name, v, _) -> Mode_diverged { mode = name; verdict = v }
  | None -> (
    let observables (c : Controller.t) =
      ( Machine.Cpu.outputs c.cpu,
        Machine.Memory.hash c.cpu.mem ~lo:data_lo ~hi:data_hi )
    in
    match results with
    | (bname, Equivalent { events }, Some bc) :: rest ->
      let bouts, bhash = observables bc in
      let rec cmp = function
        | [] ->
          Modes_equivalent
            { modes = List.map (fun (n, _, _) -> n) results; events }
        | (name, _, Some c) :: rest ->
          let outs, hash = observables c in
          if outs <> bouts then
            Modes_mismatch
              { mode = name; baseline = bname; detail = "output streams differ" }
          else if hash <> bhash then
            Modes_mismatch
              {
                mode = name;
                baseline = bname;
                detail = "final data segment differs";
              }
          else cmp rest
        | (_, _, None) :: _ ->
          (* on_controller fires before the cached drive begins *)
          assert false
      in
      cmp rest
    | _ -> assert false)
