(** Lockstep differential runner: native vs SoftCached execution, side
    by side, reporting the first divergent data access.

    The native run goes first and its load/store address stream is
    recorded; the cached run then compares against it inside the CPU
    hooks, so a divergence is caught at the exact access where the two
    executions part ways rather than at end-of-run state comparison.
    Output values are compared after both streams match. Fetch
    addresses and return-address values are excluded by design: they
    legitimately differ (tcache placement, landing pads). *)

type event = Load of int | Store of int | Output of int

type divergence = {
  index : int;  (** position in the event stream *)
  native : event option;  (** [None]: native had already finished *)
  cached : event option;  (** [None]: cached stopped short *)
}

type verdict =
  | Equivalent of { events : int }
  | Diverged of divergence
  | Native_out_of_fuel  (** reference run did not finish; no verdict *)
  | Cached_out_of_fuel of { events : int }
  | Unavailable of { vaddr : int; attempts : int; events : int }
      (** the faulty interconnect gave up on a chunk; everything up to
          that point matched *)

val run :
  ?cost:Machine.Cost.t ->
  ?fuel:int ->
  ?ops:(Softcache.Controller.t -> unit) list ->
  ?audit:bool ->
  ?on_controller:(Softcache.Controller.t -> unit) ->
  Softcache.Config.t ->
  Isa.Image.t ->
  verdict
(** [run cfg img] executes the differential pair. [ops] are applied to
    the cached controller at evenly spaced fuel slices — use them to
    invalidate or flush mid-run and check that execution still tracks
    the native stream. [audit] additionally installs {!Audit.install}
    on the cached controller. [on_controller] receives the cached
    controller right after construction (so callers can inspect its
    final state once [run] returns — {!policies} reads the data
    segment this way). Default [fuel] is 2M instructions per side. *)

val pp_event : Format.formatter -> event -> unit
val pp_verdict : Format.formatter -> verdict -> unit

(** {2 Decoded vs interpretive dispatch}

    A second differential axis: the same softcached execution run twice,
    once through the predecoded engine and once through reference
    interpretive dispatch, stepped one instruction at a time. Because
    both sides run the {e same} execution, the full architectural state
    — pc, registers, cycle and retire counts — must match after every
    step, and outputs plus the entire memory image at the end. This is
    the proof obligation of the decode cache's coherence rule: if any
    memory write failed to invalidate its predecode line, the decoded
    side executes a stale instruction and the pair diverges at that
    exact step. *)

type engine_verdict =
  | Engines_equivalent of { steps : int }
  | Engines_diverged of { step : int; detail : string }
  | Engines_out_of_fuel of { steps : int }
      (** every compared step matched; the budget ran out first *)
  | Engines_unavailable of { vaddr : int; attempts : int; steps : int }
      (** the faulty interconnect gave up on a chunk; all steps up to
          that point matched *)

val engines :
  ?cost:Machine.Cost.t ->
  ?fuel:int ->
  ?ops:(Softcache.Controller.t -> unit) list ->
  ?audit:bool ->
  (unit -> Softcache.Config.t) ->
  Isa.Image.t ->
  engine_verdict
(** [engines mk_cfg img] builds one controller per engine — each from a
    fresh [mk_cfg ()] so the pair never shares mutable transport state —
    and steps them in lockstep. [ops] are applied to {e both} controllers
    at evenly spaced fuel slices (state is re-compared right after), so
    mid-run patches, evictions and flushes are exercised at identical
    instruction boundaries. [audit] installs {!Audit.install} (including
    its decode-coherence section) on the decoded side. Default [fuel] is
    2M instructions. *)

val pp_engine_verdict : Format.formatter -> engine_verdict -> unit

val prefetch :
  ?cost:Machine.Cost.t ->
  ?fuel:int ->
  ?ops:(Softcache.Controller.t -> unit) list ->
  ?audit:bool ->
  (unit -> Softcache.Config.t) ->
  Isa.Image.t ->
  engine_verdict
(** [prefetch mk_cfg img] runs the configuration as given (typically
    with [prefetch_degree > 0]) against the same configuration forced
    to [prefetch_degree = 0], in instruction lockstep. Prefetching must
    be architecturally invisible — staged chunks install lazily and
    never touch client-visible state early — so everything the
    {!engines} runner compares must match {e except} cycle counts,
    which legitimately differ and are excluded. [ops] and [audit]
    behave as in {!engines} (the audit, including its staging-buffer
    section, goes on the prefetching side). *)

val trace :
  ?cost:Machine.Cost.t ->
  ?fuel:int ->
  ?ops:(Softcache.Controller.t -> unit) list ->
  ?audit:bool ->
  (unit -> Softcache.Config.t) ->
  Isa.Image.t ->
  engine_verdict
(** [trace mk_cfg img] proves that tracing is architecturally invisible:
    the same configuration is run twice, once with a {!Trace.t} attached
    via {!Softcache.Controller.attach_tracer} and once without, in
    instruction lockstep. Recording an event only appends to the trace
    ring — it never charges cycles, touches statistics or draws from the
    interconnect's randomness — so {e everything} must match, cycle
    counts included. On top of the step-wise state comparison the runner
    checks end-of-run statistics and interconnect counters for equality,
    and that the traced side's cycle attribution conserves exactly
    against its final cycle counter ({!Trace.conserved}). [ops] are
    applied to both controllers at evenly spaced fuel slices; [audit]
    installs {!Audit.install} on the traced side. Default [fuel] is 2M
    instructions. *)

val fleet :
  ?cost:Machine.Cost.t ->
  ?fuel:int ->
  ?ops:(Softcache.Controller.t -> unit) list ->
  ?audit:bool ->
  (unit -> Softcache.Config.t) ->
  Isa.Image.t ->
  engine_verdict
(** [fleet mk_cfg img] proves the fleet layer is a strict
    generalisation of the single-client path: a 1-client {!Fleet.t}
    (dedup and batching enabled) hosting a controller over [mk_cfg ()]
    is driven in instruction lockstep against a plain
    [Softcache.Controller] over another [mk_cfg ()], with cycle counts
    included in the per-step comparison. With one client, queueing
    wait is provably zero, coalescing and piggybacking cannot trigger,
    and the shared chunk cache only memoizes CRC values the MC would
    have computed anyway — so {e everything} must match: per-step
    architectural state, end-of-run statistics and every interconnect
    counter (the same epilogue {!trace} runs). [ops] are applied to
    both sides at evenly spaced fuel slices; [audit] installs
    {!Audit.install} on the fleet-hosted side. *)

val shards :
  ?cost:Machine.Cost.t ->
  ?fuel:int ->
  ?ops:(Softcache.Controller.t -> unit) list ->
  ?audit:bool ->
  (unit -> Softcache.Config.t) ->
  Isa.Image.t ->
  engine_verdict
(** [shards mk_cfg img] proves the multi-hart layer is a strict
    generalisation of the solo path: a 1-hart {!Softcache.Shard}
    session over [mk_cfg ()] is driven in instruction lockstep
    against a plain [Softcache.Controller] over another [mk_cfg ()],
    with cycle counts included in the per-step comparison. With one
    hart, no lease is ever held while controller code runs and every
    fill completes before the hart's next miss, so everything must
    match: per-step architectural state, end-of-run statistics
    (modulo the fill counters the solo path bypasses) and every
    interconnect counter. The epilogue additionally requires the lone
    hart's wait ledger to be zero and the final state to pass
    {!Audit.shards}. [ops] are applied to both sides at evenly spaced
    fuel slices; [audit] installs {!Audit.install} on the
    shard-hosted side. *)

(** {2 Chaining-mode equivalence}

    Chaining equivalence is observational, not step-wise: an unresolved
    Br/Jal exit hops through its in-block trap island (two retired
    instructions) where the patched site branches direct (one), so pc
    and retire streams legitimately differ on first traversals — and
    superblock formation relocates whole chains. What must never change
    is what the program computes. So, in the style of {!policies}: each
    chaining mode — off, eager chaining, chaining + profile-guided
    superblock formation — is run in data-access lockstep against the
    native execution, then the modes are compared on the observables
    that survive placement and trap-count differences: the output
    stream and the final data segment. Valid under any replacement
    policy. *)

type modes_verdict =
  | Modes_equivalent of { modes : string list; events : int }
      (** every mode matched the native access stream and all agree on
          outputs and final data; [events] is the length of the
          (shared) native access stream *)
  | Mode_diverged of { mode : string; verdict : verdict }
      (** this mode's cached run diverged from native *)
  | Modes_mismatch of { mode : string; baseline : string; detail : string }
      (** every mode matched native, yet two disagree on a terminal
          observable — should be impossible; kept as a separate arm so
          a bug here is named, not lumped into divergence *)

val chain_modes :
  ?cost:Machine.Cost.t ->
  ?fuel:int ->
  ?ops:(Softcache.Controller.t -> unit) list ->
  ?audit:bool ->
  ?oracle:(int -> (int * int) option) ->
  ?superblock_threshold:int ->
  (unit -> Softcache.Config.t) ->
  Isa.Image.t ->
  modes_verdict
(** [chain_modes mk_cfg img] runs one native-vs-cached {!run} per
    chaining mode, overriding only [Config.chain] and
    [Config.superblock_threshold] on a fresh [mk_cfg ()] each time.
    [oracle] (typically built by [Softcache.Cc_chain.oracle_of_profile]
    from a profiling pre-run) is installed as the superblock mode's
    [chain_oracle]; without it the superblock mode degenerates to plain
    chaining, which still checks but proves less.
    [superblock_threshold] is the edge temperature the superblock mode
    uses (default 1: fuse any observed edge — the most aggressive, and
    therefore most falsifying, setting). [ops] and [audit] pass through
    to each {!run}. *)

val pp_modes_verdict : Format.formatter -> modes_verdict -> unit

(** {2 Replacement-policy equivalence}

    The replacement policy decides {e which} block dies on a miss; it
    must never change what the program computes. {!policies} runs the
    entire policy registry ({!Softcache.Config.eviction_table}) —
    each policy in data-access lockstep against the native execution,
    then all policies against each other on the cross-policy-comparable
    observables: the output stream and the final data segment. Cycle
    counts, retired-instruction counts and tcache placement are
    excluded by design — different victims produce different stub and
    trap sequences, so those numbers legitimately differ. *)

type policies_verdict =
  | Policies_equivalent of { policies : string list; events : int }
      (** every registered policy matched the native access stream and
          all agree on outputs and final data; [events] is the length
          of the (shared) native access stream *)
  | Policy_diverged of { policy : string; verdict : verdict }
      (** this policy's cached run diverged from native *)
  | Policies_mismatch of { policy : string; baseline : string; detail : string }
      (** every policy matched native, yet two disagree on a terminal
          observable — should be impossible; kept as a separate arm so
          a bug here is named, not lumped into divergence *)

val policies :
  ?cost:Machine.Cost.t ->
  ?fuel:int ->
  ?ops:(Softcache.Controller.t -> unit) list ->
  ?audit:bool ->
  (unit -> Softcache.Config.t) ->
  Isa.Image.t ->
  policies_verdict
(** [policies mk_cfg img] runs one native-vs-cached {!run} per policy
    in {!Softcache.Config.eviction_table}, overriding only
    [Config.eviction] on a fresh [mk_cfg ()] each time (own transport
    state per run). [ops] and [audit] are passed through to each
    {!run}. Pick a configuration every policy can execute — e.g. a
    tcache large enough that [Flush_all] does not hit
    [Chunk_too_large]. *)

val pp_policies_verdict : Format.formatter -> policies_verdict -> unit

(** {2 Granularity equivalence}

    Block vs whole-function caching units. Function granularity changes
    the unit shape, the call linkage (persistent PLT slots instead of
    per-site call patching) and tcache placement wholesale, so — as for
    {!chain_modes} — equivalence is observational: each granularity in
    {!Softcache.Config.granularity_table} runs in data-access lockstep
    against the native execution, then the granularities are compared
    on the output stream and the final data segment. Cycle counts,
    retire counts and placement legitimately differ (one large unit
    versus many small blocks produces entirely different trap and stub
    sequences). *)

val granularity :
  ?cost:Machine.Cost.t ->
  ?fuel:int ->
  ?ops:(Softcache.Controller.t -> unit) list ->
  ?audit:bool ->
  ?eviction:Softcache.Config.eviction ->
  (unit -> Softcache.Config.t) ->
  Isa.Image.t ->
  modes_verdict
(** [granularity mk_cfg img] runs one native-vs-cached {!run} per
    granularity, overriding only [Config.granularity] (and, when
    [eviction] is given, [Config.eviction] — so callers can sweep the
    full policy × granularity grid) on a fresh [mk_cfg ()] each time.
    [ops] and [audit] pass through to each {!run}; the audit includes
    the PLT-slot section, so a function-mode run is also checked for
    slot-table/residency agreement at every controller event. Pick a
    tcache large enough that the workload's functions fit or degrade
    cleanly. *)
