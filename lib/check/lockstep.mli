(** Lockstep differential runner: native vs SoftCached execution, side
    by side, reporting the first divergent data access.

    The native run goes first and its load/store address stream is
    recorded; the cached run then compares against it inside the CPU
    hooks, so a divergence is caught at the exact access where the two
    executions part ways rather than at end-of-run state comparison.
    Output values are compared after both streams match. Fetch
    addresses and return-address values are excluded by design: they
    legitimately differ (tcache placement, landing pads). *)

type event = Load of int | Store of int | Output of int

type divergence = {
  index : int;  (** position in the event stream *)
  native : event option;  (** [None]: native had already finished *)
  cached : event option;  (** [None]: cached stopped short *)
}

type verdict =
  | Equivalent of { events : int }
  | Diverged of divergence
  | Native_out_of_fuel  (** reference run did not finish; no verdict *)
  | Cached_out_of_fuel of { events : int }
  | Unavailable of { vaddr : int; attempts : int; events : int }
      (** the faulty interconnect gave up on a chunk; everything up to
          that point matched *)

val run :
  ?cost:Machine.Cost.t ->
  ?fuel:int ->
  ?ops:(Softcache.Controller.t -> unit) list ->
  ?audit:bool ->
  Softcache.Config.t ->
  Isa.Image.t ->
  verdict
(** [run cfg img] executes the differential pair. [ops] are applied to
    the cached controller at evenly spaced fuel slices — use them to
    invalidate or flush mid-run and check that execution still tracks
    the native stream. [audit] additionally installs {!Audit.install}
    on the cached controller. Default [fuel] is 2M instructions per
    side. *)

val pp_event : Format.formatter -> event -> unit
val pp_verdict : Format.formatter -> verdict -> unit
