(* Branch chaining and superblock bookkeeping.

   Chaining is the paper's rewrite rule applied eagerly: the moment a
   chunk becomes resident, every unresolved exit branch of an
   already-resident block that targets it is patched to jump
   tcache-direct, instead of waiting for each branch to trap once. The
   [pending_exits] index (target vaddr -> waiting exit stubs) makes the
   install-time sweep O(predecessors); the reverse [links] map makes
   source-side unlinking O(outgoing patches). Both live in [Cc_state];
   this module owns the transitions.

   Superblocks lay a profile-hot chain of chunks out contiguously
   (Dynamo-style trace formation): one group reservation, members
   installed adjacently in chain order, every internal edge bound
   direct by translate-time residency plus eager chaining. The members
   stay ordinary tcache blocks — the MC keeps their baseline source —
   so de-promotion is pure bookkeeping: when any member dies the group
   dissolves and the survivors revert to independent baseline blocks. *)

open Cc_state

(* Patch one unresolved exit stub [k] to jump straight at
   [target_block]. Shared by the lazy trap path (patch on first use)
   and the eager install path ([chain_install]); [eager] selects which
   statistic advances. The caller passes the stub fields it captured
   *before* any translation could recycle entry [k]: the
   [Tcache.is_alive block] guard then rejects a stale capture. *)
let patch_exit t k ~eager ~block ~site_paddr ~kind ~target ~revert_word
    (target_block : Tcache.block) =
  (* only a still-pending stub needs patching: the trap path's own
     [ensure_resident] can have chained this very stub eagerly while
     translating the target (and a dead owner means entry [k] was
     recycled — the captured fields are stale) *)
  if pending_mem t ~target k && Tcache.is_alive t.tc block then begin
    let patched =
      match kind with
      | Stub.Patch_jmp ->
        write_word t site_paddr (enc (Isa.Instr.Jmp target_block.paddr));
        record_incoming t target_block ~from_block:block ~site_paddr
          ~revert_word ~stub:k;
        true
      | Stub.Patch_jal ->
        write_word t site_paddr (enc (Isa.Instr.Jal target_block.paddr));
        record_incoming t target_block ~from_block:block ~site_paddr
          ~revert_word ~stub:k;
        true
      | Stub.Patch_br -> (
        match
          Isa.Encode.decode (Machine.Memory.read32 t.cpu.mem site_paddr)
        with
        | Some (Isa.Instr.Br (c, r1, r2, _)) ->
          let d = (target_block.paddr - site_paddr) asr 2 in
          if Isa.Encode.branch_offset_fits d then begin
            write_word t site_paddr (enc (Isa.Instr.Br (c, r1, r2, d)));
            record_incoming t target_block ~from_block:block ~site_paddr
              ~revert_word ~stub:k;
            true
          end
          else begin
            (* out of reach: specialise the island the branch aims at
               into a direct jump instead. The island's offset is
               encoded in the revert word (site + 4*d), so the eager
               path finds it without having trapped there. *)
            match Isa.Encode.decode revert_word with
            | Some (Isa.Instr.Br (_, _, _, di)) ->
              let island = site_paddr + (4 * di) in
              write_word t island (enc (Isa.Instr.Jmp target_block.paddr));
              record_incoming t target_block ~from_block:block
                ~site_paddr:island
                ~revert_word:(enc (Isa.Instr.Trap k))
                ~stub:k;
              true
            | Some _ | None -> false
          end
        | Some _ | None -> false)
    in
    if patched then begin
      pending_remove t ~target k;
      t.stats.patches <- t.stats.patches + 1;
      if eager then t.stats.chained <- t.stats.chained + 1;
      charge t Trace.Patch t.cfg.patch_cycles;
      trace t
        (Trace.Cc_backpatch { site = site_paddr; target = target_block.paddr });
      emit_event t Patched
    end
  end

(* Index a fresh block's still-unresolved exits by target vaddr. A
   site whose word differs from its revert word was bound at translate
   time and needs no entry. Maintained whether or not chaining is on —
   the index is part of the audited state either way. *)
let register_pending t (b : Tcache.block) =
  List.iter
    (fun k ->
      match t.stubs.(k) with
      | Stub.Exit { target; site_paddr; revert_word; _ } ->
        if Machine.Memory.read32 t.cpu.mem site_paddr = revert_word then
          pending_add t ~target k
      | _ -> ())
    b.stubs

(* The eager rewrite sweep: patch every exit already waiting for the
   block that just became resident. *)
let chain_install t (b : Tcache.block) =
  if t.cfg.chain then
    List.iter
      (fun k ->
        match t.stubs.(k) with
        | Stub.Exit { block; site_paddr; kind; target; revert_word }
          when target = b.vaddr ->
          patch_exit t k ~eager:true ~block ~site_paddr ~kind ~target
            ~revert_word b
        | _ -> ())
      (pending_at t b.vaddr)

(* Source-side unlinking: when a block dies, its own outgoing patches
   die with its memory, so the matching incoming records on still-live
   targets are stale — prune them, and drop the link entries. Without
   this, incoming lists accumulate records from dead sources for the
   life of the target. *)
let unlink_sources t victims =
  List.iter
    (fun (b : Tcache.block) ->
      match Hashtbl.find_opt t.links b.id with
      | None -> ()
      | Some ls ->
        Hashtbl.remove t.links b.id;
        List.iter
          (fun l ->
            match Tcache.find_by_id t.tc l.l_target with
            | Some tb ->
              tb.incoming <-
                List.filter
                  (fun (i : Tcache.incoming) ->
                    not (i.from_block = b.id && i.site_paddr = l.l_site))
                  tb.incoming
            | None -> ())
          ls)
    victims

(* ---- superblock bookkeeping ---- *)

let max_superblock_members = 8

let register_superblock t ~head (members : Tcache.block list) =
  let sb = t.next_sb_id in
  t.next_sb_id <- sb + 1;
  let ids = List.map (fun (b : Tcache.block) -> b.Tcache.id) members in
  Hashtbl.replace t.superblocks sb { sb_head = head; sb_members = ids };
  List.iter (fun id -> Hashtbl.replace t.sb_of_block id sb) ids;
  t.stats.superblocks <- t.stats.superblocks + 1;
  t.stats.superblock_blocks <- t.stats.superblock_blocks + List.length ids;
  let bytes =
    List.fold_left (fun a (b : Tcache.block) -> a + (4 * b.words)) 0 members
  in
  trace t (Trace.Cc_promote { head; members = List.length ids; bytes });
  let module P = (val t.policy : Policy.S) in
  P.on_superblock sb members;
  emit_event t (Promoted (List.length ids));
  sb

(* De-promotion: any member eviction dissolves the whole group (the
   baseline chunks are retained MC-side, so survivors simply continue
   as independent blocks and the chain re-forms if it stays hot). *)
let dissolve_superblock t (b : Tcache.block) =
  match Hashtbl.find_opt t.sb_of_block b.id with
  | None -> ()
  | Some sb -> (
    match Hashtbl.find_opt t.superblocks sb with
    | Some { sb_head; sb_members } ->
      List.iter (fun id -> Hashtbl.remove t.sb_of_block id) sb_members;
      Hashtbl.remove t.superblocks sb;
      t.stats.depromotions <- t.stats.depromotions + 1;
      trace t
        (Trace.Cc_depromote
           { head = sb_head; members = List.length sb_members });
      let module P = (val t.policy : Policy.S) in
      P.on_superblock_evict sb
    | None -> Hashtbl.remove t.sb_of_block b.id)

(* ---- the profile-derived chain oracle ----

   Maps a chunk vaddr to its hottest observed successor chunk and that
   edge's temperature. Built from [Profiler] edge counts, but the
   profiler dependency stays inverted: the caller passes the two query
   functions ([Profiler.edges_from prof] and a [samples_in] thunk), so
   [lib/core] never links against [lib/profiler]. *)
let oracle_of_profile ~image ~chunking ~edges_from ~samples_at =
  fun v ->
    match Chunker.chunk_at image chunking v with
    | exception _ -> None
    | c -> (
      let n = Array.length c.instrs in
      let last = c.vaddr + (4 * (n - 1)) in
      let term = c.instrs.(n - 1) in
      match (term : Isa.Instr.t) with
      | Jr _ | Jalr _ | Halt -> None (* no static successor *)
      | _ ->
        let taken = edges_from last in
        let candidates =
          match (term : Isa.Instr.t) with
          | Jmp _ | Jal _ -> taken
          | _ ->
            (* fall-through heat: samples at the terminator minus its
               taken transfers *)
            let out = List.fold_left (fun a (_, c) -> a + c) 0 taken in
            let fall = c.vaddr + (4 * n) in
            let fc = max 0 (samples_at last - out) in
            if fc > 0 then (fall, fc) :: taken else taken
        in
        List.fold_left
          (fun best (tv, cnt) ->
            if not (Isa.Image.contains_code image tv) then best
            else
              match best with
              | Some (_, bc) when bc >= cnt -> best
              | _ -> Some (tv, cnt))
          None candidates)
