(* Eviction and flush: unlinking dead blocks (reverting their incoming
   pointers), scrubbing live landing-pad addresses off the stack into
   persistent return stubs, and keeping the replacement policy's view
   of residency exact — every block that leaves the tcache flows
   through [note_evicted] with the reason it died. *)

open Cc_state

(* One bookkeeping stop for every block that leaves the tcache: the
   policy drops it from its resident view, the per-reason counter and
   the victim-age histogram advance, and the tracer records why. The
   tcache itself has already deregistered the block by the time we get
   here (allocation, invalidation and flush all remove first), so
   policy view == tcache residency holds again the moment this
   returns — the equality [Check.Audit] asserts. *)
let note_evicted t ~(reason : Policy.reason) (b : Tcache.block) =
  (* a superblock member dying de-promotes the whole group *)
  Cc_chain.dissolve_superblock t b;
  let module P = (val t.policy : Policy.S) in
  P.on_evict reason b;
  (match reason with
  | Policy.Victim -> t.stats.evicted_victim <- t.stats.evicted_victim + 1
  | Policy.Collateral ->
    t.stats.evicted_collateral <- t.stats.evicted_collateral + 1
  | Policy.Stub_growth ->
    t.stats.evicted_stub_growth <- t.stats.evicted_stub_growth + 1
  | Policy.Invalidated ->
    t.stats.evicted_invalidated <- t.stats.evicted_invalidated + 1
  | Policy.Flushed -> t.stats.evicted_flushed <- t.stats.evicted_flushed + 1);
  (match Hashtbl.find_opt t.install_cycle b.id with
  | Some at ->
    Hashtbl.remove t.install_cycle b.id;
    Stats.record_victim_age t.stats ~age:(t.cpu.cycles - at)
  | None -> ());
  trace t
    (Trace.Cc_evict
       {
         chunk = b.vaddr;
         base = b.paddr;
         bytes = 4 * b.words;
         incoming = List.length b.incoming;
         reason = Policy.reason_name reason;
       })

(* Every CPU this controller is responsible for: the solo CPU, or all
   harts of a multi-hart run. Stack scrubs, parked-pc redirects and
   flush fix-ups must cover each one — every hart's private stack may
   hold landing-pad addresses into the shared tcache. *)
let cpus t =
  if Array.length t.harts = 0 then [ t.cpu ] else Array.to_list t.harts

(* Allocate (or reuse) the persistent return stub for a return target.
   Routed to the return vaddr's home shard so persistent growth stays
   within one arena. May evict blocks to grow the stub area;
   [on_evicted] handles them. *)
let rec persistent_ret_stub t ~on_evicted ret_vaddr =
  match Hashtbl.find_opt t.ret_stubs ret_vaddr with
  | Some (paddr, _) -> paddr
  | None -> (
    match
      Tcache.alloc_persistent ~shard:(Tcache.home_shard t.tc ret_vaddr) t.tc
        ~words:1
    with
    | Error `Too_large -> raise Tcache_too_small
    | Ok (paddr, victims) ->
      on_evicted victims;
      let k =
        add_stub t (fun _k ->
            Stub.Ret_stub { site_paddr = paddr; target = ret_vaddr })
      in
      write_word t paddr (enc (Isa.Instr.Trap k));
      Hashtbl.replace t.ret_stubs ret_vaddr (paddr, k);
      t.stats.ret_stubs <- t.stats.ret_stubs + 1;
      paddr)

(* Redirect any live landing-pad address held in [ra] or on the stack
   into a persistent return stub. [padtbl] maps pad paddr -> return
   vaddr for the pads that just died. *)
and scrub_stack t ~on_evicted padtbl =
  let fixup v =
    match Hashtbl.find_opt padtbl v with
    | Some ret_vaddr -> Some (persistent_ret_stub t ~on_evicted ret_vaddr)
    | None -> None
  in
  let scanned = ref 0 in
  (* every hart's ra and private stack can hold a doomed landing pad;
     stack words live in the hart's own memory, so the fixed-up word is
     written back there (no mirroring — stacks are private data) *)
  List.iter
    (fun (cpu : Machine.Cpu.t) ->
      (match fixup (Machine.Cpu.reg cpu Isa.Reg.ra) with
      | Some p -> Machine.Cpu.set_reg cpu Isa.Reg.ra p
      | None -> ());
      let sp = Machine.Cpu.reg cpu Isa.Reg.sp in
      let scan_range lo hi =
        let addr = ref (lo land lnot 3) in
        while !addr + 4 <= hi do
          incr scanned;
          (match fixup (Machine.Memory.read32 cpu.mem !addr) with
          | Some p -> Machine.Memory.write32 cpu.mem !addr p
          | None -> ());
          addr := !addr + 4
        done
      in
      scan_range (max 0 sp) t.stack_top;
      (* "any non-stack storage (e.g. thread control blocks) must be
         registered with the runtime system" *)
      List.iter (fun (lo, hi) -> scan_range lo hi) t.ra_regions)
    (cpus t);
  t.stats.scrubbed_words <- t.stats.scrubbed_words + !scanned;
  charge t Trace.Scrub (t.cfg.scrub_cycles_per_word * !scanned)

and debug_check_stale t victims =
  (* SOFTCACHE_DEBUG: detect return addresses pointing into freed blocks *)
  let in_victim v =
    List.exists
      (fun (b : Tcache.block) ->
        v >= b.paddr && v < b.paddr + (4 * b.words))
      victims
  in
  List.iter
    (fun (cpu : Machine.Cpu.t) ->
      let ra = Machine.Cpu.reg cpu Isa.Reg.ra in
      if in_victim ra then
        Printf.eprintf "STALE ra=0x%x after scrub! pc=0x%x\n%!" ra cpu.pc;
      let sp = max 0 (Machine.Cpu.reg cpu Isa.Reg.sp land lnot 3) in
      let addr = ref sp in
      while !addr + 4 <= t.stack_top do
        let v = Machine.Memory.read32 cpu.mem !addr in
        if in_victim v then
          Printf.eprintf
            "STALE stack[0x%x]=0x%x after scrub! pc=0x%x sp=0x%x\n%!" !addr v
            cpu.pc sp;
        addr := !addr + 4
      done)
    (cpus t)

and revert_incoming t victims =
  (* unlink: revert every recorded incoming pointer whose own block
     still exists — the stub bytes are restored before the victim's
     memory is reclaimed, so no patched branch ever dangles *)
  List.iter
    (fun (b : Tcache.block) ->
      List.iter
        (fun (inc : Tcache.incoming) ->
          if inc.from_block = -1 || Tcache.is_alive t.tc inc.from_block
          then begin
            write_word t inc.site_paddr inc.revert_word;
            t.stats.reverts <- t.stats.reverts + 1;
            charge t Trace.Patch t.cfg.patch_cycles;
            trace t
              (Trace.Cc_unpatch { site = inc.site_paddr; target = b.paddr });
            if inc.from_block >= 0 then
              (* drop the source's link and re-index its exit stub as
                 pending, so a future install can re-chain it *)
              match
                take_link t ~from_block:inc.from_block
                  ~site_paddr:inc.site_paddr
              with
              | Some l -> (
                match t.stubs.(l.l_stub) with
                | Stub.Exit { target; _ } -> pending_add t ~target l.l_stub
                | _ -> ())
              | None -> () (* link was chaos-dropped alongside [inc] *)
          end)
        b.incoming)
    victims

(* [reason_of] labels each victim for the policy, the per-reason stats
   and the trace; nested evictions caused by the scrub growing the
   persistent stub area are always [Stub_growth] regardless of what
   started the cascade. *)
and process_evicted t ~reason_of victims =
  if victims <> [] then begin
    let n = List.length victims in
    Log.debug (fun m ->
        m "evict %d block(s): %s" n
          (String.concat ","
             (List.map
                (fun (b : Tcache.block) -> Printf.sprintf "v=0x%x" b.vaddr)
                victims)));
    t.stats.evicted_blocks <- t.stats.evicted_blocks + n;
    Stats.record_eviction t.stats ~cycle:t.cpu.cycles ~blocks:n;
    List.iter (fun b -> note_evicted t ~reason:(reason_of b) b) victims;
    revert_incoming t victims;
    Cc_chain.unlink_sources t victims;
    (* recycle the victims' stub entries right away: once their
       incoming pointers are reverted nothing references them, and the
       scrubbing below can itself evict (persistent stub growth) —
       leaving them allocated across that nested eviction would expose
       a transiently inconsistent stub table to the event hook *)
    free_block_stubs t victims;
    (* landing pads that may be live in return addresses *)
    let padtbl = Hashtbl.create 16 in
    List.iter
      (fun (b : Tcache.block) ->
        List.iter (fun (p, rv) -> Hashtbl.replace padtbl p rv) b.pads)
      victims;
    let on_stub_growth =
      process_evicted t ~reason_of:(fun _ -> Policy.Stub_growth)
    in
    if Hashtbl.length padtbl > 0 then
      scrub_stack t ~on_evicted:on_stub_growth padtbl;
    (* if a CPU is parked inside a dead block (invalidate between runs,
       or a suspended hart whose lease a flush/invalidate overrode),
       park it on a persistent stub for its resume address *)
    List.iter
      (fun (b : Tcache.block) ->
        List.iter
          (fun (cpu : Machine.Cpu.t) ->
            let pc = cpu.pc in
            if pc >= b.paddr && pc < b.paddr + (4 * b.words) then
              let rv = b.resume.((pc - b.paddr) asr 2) in
              cpu.pc <- persistent_ret_stub t ~on_evicted:on_stub_growth rv)
          (cpus t))
      victims;
    if Sys.getenv_opt "SOFTCACHE_DEBUG" <> None then
      debug_check_stale t victims;
    emit_event t (Evicted n)
  end

(* Allocate (or reuse) the persistent PLT slot for a function entry.
   Call sites in function-granularity mode jump here instead of at the
   callee directly; the slot holds [Trap k] while the function is
   absent and a direct [Jmp] while it is resident. Same growth
   discipline as return stubs: may evict blocks, [on_evicted] handles
   them. *)
let plt_slot t ~on_evicted fn_vaddr =
  match Hashtbl.find_opt t.plt fn_vaddr with
  | Some (paddr, _) -> paddr
  | None -> (
    match
      Tcache.alloc_persistent ~shard:(Tcache.home_shard t.tc fn_vaddr) t.tc
        ~words:1
    with
    | Error `Too_large -> raise Tcache_too_small
    | Ok (paddr, victims) ->
      on_evicted victims;
      let k =
        add_stub t (fun _k ->
            Stub.Plt { slot_paddr = paddr; target = fn_vaddr })
      in
      write_word t paddr (enc (Isa.Instr.Trap k));
      Hashtbl.replace t.plt fn_vaddr (paddr, k);
      t.stats.plt_slots <- t.stats.plt_slots + 1;
      paddr)

let do_flush t =
  (* collect live pad references before tearing everything down;
     pinned blocks survive, so their pads stay valid *)
  let padtbl = Hashtbl.create 64 in
  List.iter
    (fun (b : Tcache.block) ->
      if not (Tcache.is_pinned t.tc b.id) then
        List.iter (fun (p, rv) -> Hashtbl.replace padtbl p rv) b.pads)
    (Tcache.blocks t.tc);
  (* per-CPU pre-flush captures: ra reference, parked-pc resume vaddr
     (a flush overrides any read lease a suspended hart holds — the
     writer takes every arena exclusively and the parked reader is
     redirected through its resume address; persistent return stubs
     survive the flush, so a pc parked on one needs no fixing), and
     the stack slots holding doomed landing pads *)
  let scanned = ref 0 in
  let captures =
    List.map
      (fun (cpu : Machine.Cpu.t) ->
        let ra_ref =
          Hashtbl.find_opt padtbl (Machine.Cpu.reg cpu Isa.Reg.ra)
        in
        let pc_resume =
          let pc = cpu.pc in
          let in_block =
            List.find_opt
              (fun (b : Tcache.block) ->
                pc >= b.paddr && pc < b.paddr + (4 * b.words))
              (Tcache.blocks t.tc)
          in
          match in_block with
          | Some b -> Some b.resume.((pc - b.paddr) asr 2)
          | None -> None
        in
        let stack_refs = ref [] in
        let sp = max 0 (Machine.Cpu.reg cpu Isa.Reg.sp land lnot 3) in
        let scan_range lo hi =
          let addr = ref (lo land lnot 3) in
          while !addr + 4 <= hi do
            incr scanned;
            (match
               Hashtbl.find_opt padtbl (Machine.Memory.read32 cpu.mem !addr)
             with
            | Some rv -> stack_refs := (!addr, rv) :: !stack_refs
            | None -> ());
            addr := !addr + 4
          done
        in
        scan_range sp t.stack_top;
        List.iter (fun (lo, hi) -> scan_range lo hi) t.ra_regions;
        (cpu, ra_ref, pc_resume, !stack_refs))
      (cpus t)
  in
  t.stats.scrubbed_words <- t.stats.scrubbed_words + !scanned;
  charge t Trace.Scrub (t.cfg.scrub_cycles_per_word * !scanned);
  Log.debug (fun m ->
      m "flush: %d resident blocks, pc=0x%x" (Tcache.resident_blocks t.tc)
        t.cpu.pc);
  let former = Tcache.reset t.tc in
  (* pinned survivors may have patched exits into flushed blocks *)
  List.iter (fun b -> note_evicted t ~reason:Policy.Flushed b) former;
  let module P = (val t.policy : Policy.S) in
  P.on_flush ();
  revert_incoming t former;
  Cc_chain.unlink_sources t former;
  free_block_stubs t former;
  t.stats.evicted_blocks <- t.stats.evicted_blocks + List.length former;
  if former <> [] then
    Stats.record_eviction t.stats ~cycle:t.cpu.cycles
      ~blocks:(List.length former);
  t.stats.flushes <- t.stats.flushes + 1;
  trace t (Trace.Cc_flush { chunks = List.length former });
  (* persistent return stubs survive the flush, but any that had been
     specialised into direct jumps must trap again *)
  Hashtbl.iter
    (fun _rv (paddr, k) -> write_word t paddr (enc (Isa.Instr.Trap k)))
    t.ret_stubs;
  (* PLT slots follow the same discipline: persistent, but any slot
     specialised to a flushed function must trap again (slots aimed at
     pinned survivors re-specialise lazily on their next call) *)
  Hashtbl.iter
    (fun _fv (paddr, k) -> write_word t paddr (enc (Isa.Instr.Trap k)))
    t.plt;
  let no_evictions victims = assert (victims = []) in
  List.iter
    (fun ((cpu : Machine.Cpu.t), ra_ref, pc_resume, stack_refs) ->
      (match ra_ref with
      | Some rv ->
        Machine.Cpu.set_reg cpu Isa.Reg.ra
          (persistent_ret_stub t ~on_evicted:no_evictions rv)
      | None -> ());
      List.iter
        (fun (a, rv) ->
          Machine.Memory.write32 cpu.mem a
            (persistent_ret_stub t ~on_evicted:no_evictions rv))
        stack_refs;
      match pc_resume with
      | Some rv ->
        cpu.pc <- persistent_ret_stub t ~on_evicted:no_evictions rv
      | None -> ())
    captures;
  emit_event t Flushed
