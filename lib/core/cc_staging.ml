(* The CC staging buffer for prefetched chunks and the MC->CC chunk
   transport: CRC-verified delivery with retry/backoff, speculative
   chunk bodies riding demand frames, and candidate ranking. *)

open Cc_state

(* The queue tracks arrival order for bounded FIFO discard; consumed or
   invalidated entries leave stale vaddrs behind that are skipped here. *)
let rec make_staging_room t =
  if Hashtbl.length t.staging >= t.cfg.staging_chunks then
    match Queue.take_opt t.staging_order with
    | None -> ()
    | Some old ->
      if Hashtbl.mem t.staging old then begin
        Hashtbl.remove t.staging old;
        t.stats.prefetch_wasted <- t.stats.prefetch_wasted + 1
      end;
      make_staging_room t

let stage_chunk t vaddr st_bytes st_crc =
  if not (Hashtbl.mem t.staging vaddr) then begin
    make_staging_room t;
    Hashtbl.replace t.staging vaddr { st_bytes; st_crc };
    Queue.add vaddr t.staging_order;
    t.stats.prefetch_issued <- t.stats.prefetch_issued + 1
  end

let take_staged t v =
  match Hashtbl.find_opt t.staging v with
  | None -> None
  | Some s ->
    Hashtbl.remove t.staging v;
    Some s

let drop_staged_in t ~lo ~hi =
  let doomed =
    Hashtbl.fold
      (fun v (s : staged) acc ->
        if v < hi && v + Bytes.length s.st_bytes > lo then v :: acc else acc)
      t.staging []
  in
  List.iter
    (fun v ->
      Hashtbl.remove t.staging v;
      t.stats.prefetch_wasted <- t.stats.prefetch_wasted + 1)
    doomed

(* Ship a rewritten chunk from the MC to the CC through the (possibly
   faulty) interconnect, with up to [prefetch_degree] speculative chunk
   bodies riding in the same frame. The MC stamps each segment with a
   CRC32; the CC verifies the demand segment on receipt, waits out
   dropped frames, and re-requests with exponential backoff. Prefetched
   segments are staged unverified — their CRC is checked at install
   time. All waiting, wire time and backoff are charged through the
   cost model. *)
let fetch_chunk t ~vaddr ~(words : int array) ~prefetch =
  (* MC-side CRC stamping goes through the [mc_crc] hook when set: a
     fleet MC memoizes stamps in its shared chunk cache, so identical
     content requested by many clients is CRC-computed once *)
  let stamp b = match t.mc_crc with Some f -> f b | None -> Crc32.bytes b in
  let payload = bytes_of_words words in
  let crc = stamp payload in
  let pf_segments = List.map (fun (pv, pb) -> (pv, pb, stamp pb)) prefetch in
  let payloads = payload :: List.map (fun (_, pb, _) -> pb) pf_segments in
  let prefetch_vaddrs = List.map (fun (pv, _, _) -> pv) pf_segments in
  let send () =
    match t.mc_transport with
    | None -> Netmodel.transfer_batch t.cfg.net ~payloads
    | Some f -> f ~vaddr ~prefetch_vaddrs ~payloads
  in
  let rec attempt tries =
    if tries > t.cfg.max_retries then begin
      t.stats.chunk_failures <- t.stats.chunk_failures + 1;
      Log.warn (fun m ->
          m "chunk v=0x%x unavailable after %d attempts" vaddr tries);
      raise (Chunk_unavailable { vaddr; attempts = tries })
    end;
    if tries > 0 then begin
      t.stats.net_retries <- t.stats.net_retries + 1;
      t.stats.max_chunk_retries <- max t.stats.max_chunk_retries tries;
      trace t (Trace.Cc_retry { chunk = vaddr; attempt = tries });
      charge t Trace.Wire (t.cfg.retry_backoff_cycles * (1 lsl (tries - 1)))
    end;
    match send () with
    | Error (`Dropped wasted) ->
      charge t Trace.Wire (wasted + t.cfg.timeout_cycles);
      t.stats.net_timeouts <- t.stats.net_timeouts + 1;
      attempt (tries + 1)
    | Ok (cycles, received) ->
      charge t Trace.Wire cycles;
      let demand, rest =
        match received with d :: r -> (d, r) | [] -> assert false
      in
      if Crc32.bytes demand <> crc then begin
        t.stats.crc_failures <- t.stats.crc_failures + 1;
        attempt (tries + 1)
      end
      else begin
        if tries > 0 then t.stats.recoveries <- t.stats.recoveries + 1;
        (demand, rest)
      end
  in
  let demand, rest = attempt 0 in
  (* pair up to the shorter list: a coalesced fleet delivery carries the
     demand segment only (nothing new went on the wire, so no prefetch
     riders arrive); the direct path always returns the full batch *)
  let rec stage_pairs pfs rs =
    match (pfs, rs) with
    | (pv, _, pcrc) :: pfs', received :: rs' ->
      stage_chunk t pv received pcrc;
      stage_pairs pfs' rs'
    | _, [] | [], _ -> ()
  in
  stage_pairs pf_segments rest;
  let staged = min (List.length pf_segments) (List.length rest) in
  if staged > 0 then begin
    let n = 1 + staged in
    t.stats.batches <- t.stats.batches + 1;
    t.stats.batch_chunks <- t.stats.batch_chunks + n;
    t.stats.max_batch_chunks <- max t.stats.max_batch_chunks n
  end;
  words_of_bytes demand

(* Which chunks should ride along with this demand miss? Static
   successors of the chunk being translated, minus anything already
   resident or staged, ranked by the attached hotness oracle (profile
   samples over the chunk's source span) when there is one. *)
let prefetch_candidates t (chunk : Chunker.t) =
  if t.cfg.prefetch_degree = 0 || t.cfg.staging_chunks = 0 then []
  else begin
    let succs =
      match t.cfg.granularity with
      | Config.Block -> Chunker.successors t.image chunk
      | Config.Function ->
        (* internal block heads are already part of this unit; only
           edges leaving the span can miss next *)
        Chunker.external_successors t.image chunk
    in
    let cands =
      succs
      |> List.filter (fun a ->
             Tcache.lookup t.tc a = None && not (Hashtbl.mem t.staging a))
      |> List.filter_map (fun a ->
             match chunk_for t a with
             | c -> Some c
             | exception (Chunker.Bad_address _ | Chunker.Trap_in_source _) ->
               None)
    in
    let rank (c : Chunker.t) =
      match t.prefetch_ranker with
      | None -> 0
      | Some f -> f ~lo:c.vaddr ~hi:(c.vaddr + Chunker.span_bytes c)
    in
    let keyed = List.map (fun c -> (rank c, c)) cands in
    let ranked =
      List.stable_sort (fun (ka, _) (kb, _) -> compare kb ka) keyed
    in
    let rec take n = function
      | (_, c) :: rest when n > 0 -> c :: take (n - 1) rest
      | _ -> []
    in
    take t.cfg.prefetch_degree ranked
  end

(* Rebuild a [Chunker.t] from a staged chunk body: CRC-check then
   decode. [None] means the staged copy is unusable (corrupted in
   flight) and the miss must go back to the wire. *)
let chunk_of_staged v (s : staged) =
  if Crc32.bytes s.st_bytes <> s.st_crc then None
  else
    let words = words_of_bytes s.st_bytes in
    let n = Array.length words in
    let rec decode_all i acc =
      if i = n then Some (List.rev acc)
      else
        match Isa.Encode.decode words.(i) with
        | Some instr -> decode_all (i + 1) (instr :: acc)
        | None -> None
    in
    match decode_all 0 [] with
    | Some (_ :: _ as instrs) ->
      Some { Chunker.vaddr = v; instrs = Array.of_list instrs }
    | Some [] | None -> None
