(* Shared controller state: the record every cc_* module operates on,
   the public exceptions, and the small primitives (event/trace
   emission, cycle charging, stub-table and incoming-pointer
   bookkeeping) the other layers build on. The public surface is
   re-exported by [Controller]; everything here is reachable as
   [Softcache.Cc_state] for white-box tests. *)

type event =
  | Translated of int
  | Evicted of int
  | Flushed
  | Invalidated
  | Patched
  | Promoted of int

type staged = { st_bytes : Bytes.t; st_crc : int }

type link = {
  l_site : int;  (* patched code word (exit site or island) *)
  l_target : int;  (* block id the patch jumps into *)
  l_stub : int;  (* the exit stub the site reverts to *)
}

type superblock = { sb_head : int; sb_members : int list }

type t = {
  cfg : Config.t;
  image : Isa.Image.t;
  mutable cpu : Machine.Cpu.t;
      (* the CPU currently advancing under this controller. Solo runs
         never reassign it; the shard layer points it at whichever hart
         is scheduled, so cycle charges, stack scrubs and parked-pc
         redirects all land on the active hart *)
  mutable harts : Machine.Cpu.t array;
      (* every hart sharing this controller ([||] in solo runs; set by
         [Shard.attach]). Each hart owns a private memory whose tcache
         region is kept byte-identical by [write_word] mirroring —
         coherent shared code over private data *)
  tc : Tcache.t;
  stats : Stats.t;
  policy : Policy.t;
      (* the replacement policy's private bookkeeping; constructed
         from [cfg.eviction] at [create] and consulted nowhere else *)
  install_cycle : (int, int) Hashtbl.t;
      (* block id -> cycle counter at install, for the victim-age
         histogram; entries die with their block *)
  staging : (int, staged) Hashtbl.t;
  staging_order : int Queue.t;
  mutable prefetch_ranker : (lo:int -> hi:int -> int) option;
  mutable chain_oracle : (int -> (int * int) option) option;
      (* chunk vaddr -> hottest observed successor chunk and its edge
         temperature, from an offline profile; consulted on misses when
         [cfg.superblock_threshold > 0] *)
  mutable dynamic_text_hint : int option;
      (* profile-measured distinct executed code bytes
         ([Profiler.dynamic_text_bytes]), set alongside [chain_oracle];
         the promotion guard's working-set estimate — see
         [Cc_translate.promotion_guarded] *)
  links : (int, link list) Hashtbl.t;
      (* reverse link map: source block id -> every site of that block
         currently patched tcache-direct; the mirror of the per-target
         [incoming] records, so eviction of either endpoint can unlink *)
  pending_exits : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (* target vaddr -> exit stubs still in trap state aiming there;
         consulted on install for eager chaining ([cfg.chain]) *)
  superblocks : (int, superblock) Hashtbl.t;
      (* superblock id -> its head vaddr and member block ids *)
  sb_of_block : (int, int) Hashtbl.t;
  mutable next_sb_id : int;
  mutable stubs : Stub.t array;
  mutable nstubs : int;
  ret_stubs : (int, int * int) Hashtbl.t;
  plt : (int, int * int) Hashtbl.t;
      (* function vaddr -> (slot paddr, stub index); the PLT-style
         indirection table of function-granularity mode. Slots are
         persistent (call sites address them directly), hold [Trap k]
         while the function is absent and [Jmp paddr] while resident;
         patched on install, reverted through the target's incoming
         list on eviction *)
  gran_degraded : (int, int) Hashtbl.t;
      (* function entry vaddr -> end of its contiguous extent, for
         functions whose whole-body unit could not be cached (too big
         for the tcache, or not contiguously decodable): every miss
         inside a recorded extent chunks at block granularity instead.
         Sticky — degradation is a property of the function, not of a
         particular cache state *)
  stack_top : int;
  mutable next_block_id : int;
  mutable started : bool;
  mutable ra_regions : (int * int) list;
      (* registered non-stack storage holding return addresses *)
  mutable free_stubs : int list;
      (* recycled stub-table entries from evicted blocks *)
  mutable live_stubs : int;
  mutable on_event : (event -> unit) option;
  mutable tracer : Trace.t option;
  mutable alloc_guard : int;
      (* bound on translate's re-allocation rounds when eviction
         processing keeps growing the persistent stub area into the
         fresh placement; mutable as a test hook so the exhaustion
         exception is reachable without a pathological workload *)
  mutable chaos_drop_incoming : int;
      (* test hook: silently skip the next N incoming-pointer records,
         seeding the bookkeeping bug the auditor must catch *)
  mutable chaos_evict_bound : bool;
      (* test hook: evict the first bound-exit target block between
         translation and incoming-pointer recording, making the
         "resident during this translation" invariant of the bound loop
         false — proves [Internal_invariant_broken] is raised, not an
         anonymous assert *)
  mutable mc_transport :
    (vaddr:int ->
    prefetch_vaddrs:int list ->
    payloads:Bytes.t list ->
    (int * Bytes.t list, Netmodel.error) result)
    option;
      (* server-side transport interposition: when set (a fleet MC
         multiplexing a shared link), demand frames dispatch through it
         instead of going straight to [cfg.net]. [None] (the default)
         is the direct single-client path. The reply may carry fewer
         segments than were offered — a coalesced delivery returns the
         demand segment only *)
  mutable mc_crc : (Bytes.t -> int) option;
      (* server-side CRC stamping; a fleet MC memoizes through its
         shared chunk cache so identical content across clients is
         chunked and CRC-computed once. [None] computes directly *)
}

exception Chunk_too_large of int
exception Tcache_too_small
exception Chunk_unavailable of { vaddr : int; attempts : int }

exception Internal_invariant_broken of { chunk : int; detail : string }
(* a controller bookkeeping invariant failed while processing this
   chunk — diagnosable (unlike a bare assert) in audit-off runs *)

exception
  Alloc_guard_exhausted of {
    loops : int;  (* the guard value the loop started from *)
    base : int;  (* code region is [base, persist_base) *)
    persist_base : int;  (* stub region is [persist_base, top) *)
    top : int;
  }

let emit_event t ev = match t.on_event with Some f -> f ev | None -> ()
let trace t ev = match t.tracer with Some tr -> Trace.emit tr ev | None -> ()

let log_src =
  Logs.Src.create "softcache.controller"
    ~doc:"SoftCache cache-controller events"

module Log = (val Logs.src_log log_src)

let enc = Isa.Encode.encode

(* Every explicit client-side charge is labelled with its attribution
   category so an attached tracer can conserve: the labelled categories
   plus the execute residual sum exactly to [cpu.cycles]. *)
let charge t cat c =
  (match t.tracer with Some tr -> Trace.attribute tr cat c | None -> ());
  t.cpu.cycles <- t.cpu.cycles + c

(* Code writes into the tcache region are mirrored into every hart's
   private memory (through [Memory.write32], so each hart's decode
   cache invalidates): the simulated harts share the tcache coherently
   while keeping data memory private. Writes outside the tcache region
   (stack scrubs, program stores) touch only the active CPU. *)
let write_word t addr w =
  Machine.Memory.write32 t.cpu.mem addr w;
  if
    Array.length t.harts > 0
    && addr >= t.cfg.tcache_base
    && addr < t.cfg.tcache_base + t.cfg.tcache_bytes
  then
    Array.iter
      (fun (h : Machine.Cpu.t) ->
        if h != t.cpu then Machine.Memory.write32 h.mem addr w)
      t.harts

let add_stub t make =
  t.live_stubs <- t.live_stubs + 1;
  match t.free_stubs with
  | k :: rest ->
    t.free_stubs <- rest;
    t.stubs.(k) <- make k;
    k
  | [] ->
    if t.nstubs = Array.length t.stubs then begin
      let bigger =
        Array.make (max 64 (2 * t.nstubs)) (Stub.Computed { rs = Isa.Reg.ra })
      in
      Array.blit t.stubs 0 bigger 0 t.nstubs;
      t.stubs <- bigger
    end;
    let k = t.nstubs in
    t.stubs.(k) <- make k;
    t.nstubs <- k + 1;
    k

(* ---- pending-exit index (eager chaining) ----
   Every unresolved exit stub is indexed by its target vaddr so a fresh
   install can patch all the branches already waiting for it. *)

let pending_add t ~target k =
  match Hashtbl.find_opt t.pending_exits target with
  | Some ks -> Hashtbl.replace ks k ()
  | None ->
    let ks = Hashtbl.create 4 in
    Hashtbl.replace ks k ();
    Hashtbl.replace t.pending_exits target ks

let pending_remove t ~target k =
  match Hashtbl.find_opt t.pending_exits target with
  | Some ks ->
    Hashtbl.remove ks k;
    if Hashtbl.length ks = 0 then Hashtbl.remove t.pending_exits target
  | None -> ()

let pending_mem t ~target k =
  match Hashtbl.find_opt t.pending_exits target with
  | Some ks -> Hashtbl.mem ks k
  | None -> false

let pending_at t target =
  match Hashtbl.find_opt t.pending_exits target with
  | None -> []
  | Some ks -> List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) ks [])

(* ---- reverse link map ----
   [links] mirrors the per-target [incoming] records from the source
   side: source block id -> the sites of that block patched to jump
   tcache-direct. Kept exactly in sync with [record_incoming] (and so
   subject to the same [chaos_drop_incoming] test hook), consumed when
   either endpoint dies. *)

let add_link t ~from_block ~site_paddr ~target_id ~stub =
  let l = { l_site = site_paddr; l_target = target_id; l_stub = stub } in
  let rest = Option.value ~default:[] (Hashtbl.find_opt t.links from_block) in
  Hashtbl.replace t.links from_block (l :: rest)

let take_link t ~from_block ~site_paddr =
  match Hashtbl.find_opt t.links from_block with
  | None -> None
  | Some ls ->
    let taken, rest = List.partition (fun l -> l.l_site = site_paddr) ls in
    (match rest with
    | [] -> Hashtbl.remove t.links from_block
    | _ -> Hashtbl.replace t.links from_block rest);
    (match taken with l :: _ -> Some l | [] -> None)

let links_of t from_block =
  Option.value ~default:[] (Hashtbl.find_opt t.links from_block)

let free_stub_list t ks =
  List.iter
    (fun k ->
      (match t.stubs.(k) with
      | Stub.Exit { target; _ } -> pending_remove t ~target k
      | _ -> ());
      t.free_stubs <- k :: t.free_stubs;
      t.live_stubs <- t.live_stubs - 1)
    ks

(* A dead block's stub entries can never fire again (its memory is
   unreachable once the resume redirect has run), so they are recycled
   — this is what keeps CC metadata proportional to residency. *)
let free_block_stubs t victims =
  List.iter (fun (b : Tcache.block) -> free_stub_list t b.stubs) victims

let record_incoming ?stub t (b : Tcache.block) ~from_block ~site_paddr
    ~revert_word =
  if t.chaos_drop_incoming > 0 then
    t.chaos_drop_incoming <- t.chaos_drop_incoming - 1
  else begin
    b.incoming <-
      { Tcache.from_block; site_paddr; revert_word } :: b.incoming;
    (* the reverse view, for source-side unlinking and the auditor;
       persistent-stub patches (from_block = -1) have no source block *)
    match stub with
    | Some k when from_block >= 0 ->
      add_link t ~from_block ~site_paddr ~target_id:b.id ~stub:k
    | Some _ | None -> ()
  end

(* ---- granularity ----
   The single effective-granularity chunk acquisition point. Block mode
   defers to the configured chunking untouched. Function mode chunks
   the whole enclosing function as one unit, except for functions that
   have been degraded to block granularity: a unit that cannot be
   cached (more instructions than [Chunker.max_function_instrs], a body
   the tcache can never hold, or a non-contiguously-decodable extent)
   is recorded in [gran_degraded] and every miss inside its extent —
   this one and all later ones — chunks as a basic block instead.
   Degradation is sticky because it is a property of the function
   (size, decodability, capacity), not of a particular cache state. *)

let record_degraded t v hi =
  Hashtbl.replace t.gran_degraded v (max hi (v + 4));
  t.stats.gran_degraded <- t.stats.gran_degraded + 1;
  trace t (Trace.Cc_degrade { chunk = v; bytes = max hi (v + 4) - v })

let in_degraded_extent t v =
  Hashtbl.fold
    (fun lo hi acc -> acc || (v >= lo && v < hi))
    t.gran_degraded false

let chunk_for t v =
  match t.cfg.granularity with
  | Config.Block -> Chunker.chunk_at t.image t.cfg.chunking v
  | Config.Function ->
    if in_degraded_extent t v then
      Chunker.chunk_at t.image Config.Basic_block v
    else begin
      let degrade_to_block hi =
        record_degraded t v hi;
        Chunker.chunk_at t.image Config.Basic_block v
      in
      match Chunker.chunk_function t.image v with
      | c ->
        if Array.length c.instrs > Chunker.max_function_instrs then
          degrade_to_block (v + Chunker.span_bytes c)
        else c
      | exception Chunker.Bad_address a when a > v -> degrade_to_block a
      | exception Chunker.Trap_in_source a when a > v -> degrade_to_block a
      (* carried address = [v]: the requested address itself is bad —
         that is the caller's error in any granularity, propagate *)
    end

let resident_oracle t v =
  match Tcache.lookup t.tc v with
  | Some b -> Some (b.id, b.paddr)
  | None -> None

let bytes_of_words (words : int array) =
  let b = Bytes.create (4 * Array.length words) in
  Array.iteri (fun i w -> Bytes.set_int32_le b (4 * i) (Int32.of_int w)) words;
  b

let words_of_bytes b =
  Array.init (Bytes.length b / 4) (fun i ->
      Int32.to_int (Bytes.get_int32_le b (4 * i)) land 0xFFFFFFFF)
