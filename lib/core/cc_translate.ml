(* The miss path: chunk acquisition (staged prefetch or the wire),
   placement in the tcache under the configured replacement policy,
   rewriting, and installation. The policy is a parameter here — the
   only [Config.eviction] dispatch in the whole controller is the
   [Policy.create] call at construction time. *)

open Cc_state

(* Find room for [words_needed] words under an evicting policy.

   Free space first: placing at the sweep point without evicting keeps
   the policy out of the loop while the cache is filling (a policy
   victim exists as soon as anything is resident — consulting it on a
   cold cache would evict needlessly). Only when the sweep point is
   blocked does the policy pick the victim; seeding the circular sweep
   at the victim's placement reclaims that block first, and anything
   else the placement runs over is collateral.

   Processing the evictions can grow the persistent stub area down into
   the range we just reserved (stack scrubbing creates return stubs);
   re-allocate until the placement is clear, bounded by
   [t.alloc_guard] rounds. *)
let alloc_evicting t ~vaddr ~words_needed =
  let module P = (val t.policy : Policy.S) in
  let shard = Tcache.home_shard t.tc vaddr in
  let sh_lo, sh_top = Tcache.shard_bounds t.tc shard in
  let rec alloc_loop guard =
    if guard = 0 then
      raise
        (Alloc_guard_exhausted
           {
             loops = t.alloc_guard;
             base = sh_lo;
             persist_base = Tcache.persist_base ~shard t.tc;
             top = sh_top;
           })
    else begin
      let p, victims, chosen =
        match Tcache.alloc_append ~shard t.tc ~words:words_needed with
        | Ok p -> (p, [], None)
        | Error `Too_large -> raise (Chunk_too_large vaddr)
        | Error `Full -> (
          let chosen = P.victim ~shard t.tc in
          let placed =
            match chosen with
            | None -> Tcache.alloc_fifo ~shard t.tc ~words:words_needed
            | Some vb ->
              Tcache.alloc_seeded ~shard t.tc ~seed:vb.Tcache.paddr
                ~words:words_needed
          in
          match placed with
          | Error `Too_large -> raise (Chunk_too_large vaddr)
          | Error `Full -> raise Tcache_too_small
          | Ok (p, victims) -> (p, victims, chosen))
      in
      (* label the victims: the block the policy chose — or, when the
         sweep chose implicitly, the lowest-placed block the placement
         ran over — is the victim; everything else the placement
         consumed is collateral. (Labelling every implicit-sweep victim
         [Victim] was a latent bug: multi-block placements hid their
         collateral damage from policies, stats and auditors.) *)
      let primary =
        match chosen with
        | Some (vb : Tcache.block) -> vb.id
        | None -> (
          match victims with
          | [] -> -1
          | v0 :: rest ->
            (List.fold_left
               (fun (best : Tcache.block) (b : Tcache.block) ->
                 if b.paddr < best.paddr then b else best)
               v0 rest)
              .id)
      in
      Cc_evict.process_evicted t victims
        ~reason_of:(fun (b : Tcache.block) ->
          if b.id = primary then Policy.Victim else Policy.Collateral);
      if p + (4 * words_needed) <= Tcache.persist_base ~shard t.tc then p
      else alloc_loop (guard - 1)
    end
  in
  alloc_loop t.alloc_guard

(* Flush-all never evicts single blocks: append until the region is
   exhausted, then flush everything and retry once. *)
let alloc_flushing t ~vaddr ~words_needed =
  let shard = Tcache.home_shard t.tc vaddr in
  match Tcache.alloc_append ~shard t.tc ~words:words_needed with
  | Ok p -> p
  | Error `Too_large -> raise (Chunk_too_large vaddr)
  | Error `Full -> (
    Cc_evict.do_flush t;
    match Tcache.alloc_append ~shard t.tc ~words:words_needed with
    | Ok p -> p
    | Error `Too_large -> raise (Chunk_too_large vaddr)
    | Error `Full ->
      (* post-flush only pinned blocks remain in the way: a chunk
         that fits the region's capacity is being crowded out *)
      raise Tcache_too_small)

(* Translate one chunk. [placed] hands in a pre-reserved placement
   (superblock group allocation) instead of allocating here. *)
let translate_unit ?placed t v =
  trace t (Trace.Cc_miss { pc = v });
  (* a staged prefetched copy of this chunk skips the wire entirely;
     a corrupted one is discarded and the miss pays the round trip *)
  let chunk, from_staging =
    match Cc_staging.take_staged t v with
    | None -> (chunk_for t v, false)
    | Some s -> (
      match Cc_staging.chunk_of_staged v s with
      | Some c ->
        t.stats.prefetch_installs <- t.stats.prefetch_installs + 1;
        trace t (Trace.Cc_staged_install { chunk = v });
        (c, true)
      | None ->
        t.stats.prefetch_crc_failures <- t.stats.prefetch_crc_failures + 1;
        (chunk_for t v, false))
  in
  (* function granularity: every external callee of this unit calls
     through a persistent PLT slot. The slots must exist before layout
     (they determine which external [Jal]s need islands) and before
     placement (growing the slot area during translation could evict a
     block the rewriter already bound against). *)
  (if t.cfg.granularity = Config.Function then
     let on_stub_growth =
       Cc_evict.process_evicted t ~reason_of:(fun _ -> Policy.Stub_growth)
     in
     List.iter
       (fun fv ->
         ignore (Cc_evict.plt_slot t ~on_evicted:on_stub_growth fv))
       (Chunker.call_targets t.image chunk));
  let plt_of tv = Option.map fst (Hashtbl.find_opt t.plt tv) in
  let words_needed = Rewriter.layout_words ~plt_of chunk in
  let module P = (val t.policy : Policy.S) in
  let base =
    match placed with
    | Some base -> base
    | None -> (
      match P.kind with
      | `Evict -> alloc_evicting t ~vaddr:v ~words_needed
      | `Flush_all -> alloc_flushing t ~vaddr:v ~words_needed)
  in
  trace t (Trace.Tc_alloc { chunk = v; base; bytes = 4 * words_needed });
  let id = t.next_block_id in
  t.next_block_id <- id + 1;
  let resident =
    if t.cfg.bind_at_translate then resident_oracle t else fun _ -> None
  in
  let allocated = ref [] in
  let alloc_stub make =
    let k = add_stub t make in
    allocated := k :: !allocated;
    k
  in
  let emission =
    Rewriter.translate ~plt_of chunk ~block_id:id ~base ~resident ~alloc_stub
  in
  (* the rewritten words travel MC -> CC over the link (unless a staged
     prefetch already delivered the chunk body); a chunk that cannot be
     delivered intact within the retry budget must leave the cache
     state exactly as it was (minus any evictions already done) *)
  let words =
    if from_staging then emission.words
    else
      let prefetch =
        List.map
          (fun (c : Chunker.t) ->
            (c.vaddr, bytes_of_words (Array.map enc c.instrs)))
          (Cc_staging.prefetch_candidates t chunk)
      in
      match Cc_staging.fetch_chunk t ~vaddr:v ~words:emission.words ~prefetch with
      | w -> w
      | exception (Chunk_unavailable _ as e) ->
        free_stub_list t !allocated;
        raise e
  in
  Array.iteri (fun i w -> write_word t (base + (4 * i)) w) words;
  let emitted = Array.length emission.words in
  let block =
    {
      Tcache.id;
      vaddr = v;
      paddr = base;
      words = emitted;
      orig_words = Array.length chunk.instrs;
      incoming = [];
      pads = emission.pads;
      resume = emission.resume;
      stubs = !allocated;
    }
  in
  Tcache.register t.tc block;
  P.on_install block;
  Hashtbl.replace t.install_cycle id t.cpu.cycles;
  (* test hook: evict a bound target between translation and the
     incoming-record loop, falsifying the loop's residency invariant *)
  (if t.chaos_evict_bound then
     match emission.bound with
     | (tb, _, _, _) :: _ -> (
       t.chaos_evict_bound <- false;
       match Tcache.find_by_id t.tc tb with
       | Some victim -> Tcache.remove t.tc victim
       | None -> ())
     | [] -> () (* keep the hook armed until a translation binds *));
  List.iter
    (fun (tb, site_paddr, revert_word, stub) ->
      match Tcache.find_by_id t.tc tb with
      | Some target_block ->
        record_incoming t target_block ~from_block:id ~site_paddr
          ~revert_word ~stub
      | None ->
        (* the rewriter bound this exit against a block the resident
           oracle reported during this very translation; nothing may
           evict between translation and here *)
        raise
          (Internal_invariant_broken
             {
               chunk = v;
               detail =
                 Printf.sprintf
                   "bound exit target block %d vanished before its \
                    incoming pointer was recorded"
                   tb;
             }))
    emission.bound;
  Cc_chain.register_pending t block;
  Log.debug (fun m ->
      m "translate v=0x%x -> @0x%x (%d words, id=%d)" v base emitted id);
  t.stats.translations <- t.stats.translations + 1;
  t.stats.translated_words <- t.stats.translated_words + emitted;
  t.stats.overhead_words <- t.stats.overhead_words + emission.overhead_words;
  t.stats.max_resident_blocks <-
    max t.stats.max_resident_blocks (Tcache.resident_blocks t.tc);
  t.stats.max_occupied_bytes <-
    max t.stats.max_occupied_bytes (Tcache.occupied_bytes t.tc);
  charge t Trace.Translate
    (t.cfg.miss_fixed_cycles + (t.cfg.translate_cycles_per_word * emitted));
  trace t (Trace.Cc_translated { chunk = v; base; words = emitted });
  emit_event t (Translated v);
  (* function granularity: specialise this unit's own PLT slot into a
     direct jump. Unconditional — the unit was absent a moment ago, so
     its slot (if any) is trapping — and byte-reversible: the incoming
     record restores the trap when the unit is evicted. *)
  (match Hashtbl.find_opt t.plt v with
  | Some (slot_paddr, k) ->
    write_word t slot_paddr (enc (Isa.Instr.Jmp base));
    record_incoming t block ~from_block:(-1) ~site_paddr:slot_paddr
      ~revert_word:(enc (Isa.Instr.Trap k));
    t.stats.patches <- t.stats.patches + 1;
    t.stats.plt_patches <- t.stats.plt_patches + 1;
    charge t Trace.Patch t.cfg.patch_cycles;
    trace t (Trace.Cc_backpatch { site = slot_paddr; target = base });
    emit_event t Patched
  | None -> ());
  (* eager chaining: patch every exit already waiting for this chunk *)
  Cc_chain.chain_install t block;
  block

(* The degradation rule: a whole-function unit the tcache can never
   hold must not abort the run — the function falls back to block
   granularity (sticky, via [gran_degraded]) and the miss retranslates
   small. Only a genuinely-too-large *block* still raises. *)
let rec translate_one ?placed t v =
  try translate_unit ?placed t v with
  | Chunk_too_large a
    when a = v
         && t.cfg.granularity = Config.Function
         && not (in_degraded_extent t v) ->
    (match Chunker.chunk_function t.image v with
    | c -> record_degraded t v (v + Chunker.span_bytes c)
    | exception _ -> record_degraded t v (v + 4));
    translate_one ?placed t v

(* Follow the profile's hottest-successor edges from [v] while they
   stay at or above the temperature threshold, collecting the chain a
   superblock would fuse. Stops at already-resident chunks (their
   placement is fixed), repeats, unchunkable successors, and
   [max_superblock_members]. *)
let superblock_chain t v =
  match t.chain_oracle with
  | None -> [ v ]
  | Some oracle ->
    let threshold = t.cfg.superblock_threshold in
    let rec grow acc cur n =
      if n = 0 then List.rev acc
      else
        match oracle cur with
        | Some (succ, heat)
          when heat >= threshold
               && (not (List.mem succ acc))
               && Tcache.lookup t.tc succ = None -> (
          match Chunker.chunk_at t.image t.cfg.chunking succ with
          | exception _ -> List.rev acc
          | _ -> grow (succ :: acc) succ (n - 1))
        | _ -> List.rev acc
    in
    grow [ v ] v (Cc_chain.max_superblock_members - 1)

(* Churn guard for superblock promotion — the working-set-knee fix. A
   superblock's contiguous reservation is large; at full occupancy,
   carving it out mass-evicts whatever stands in its way. Whether that
   is tolerable depends on the regime. In deep thrash (capacity far
   below the working set) residents turn over fast and die before
   they accumulate incoming patches; the reservation's victims were
   about to die anyway and fusing the hot chain is a large net win.
   When the working set fits outright, reservations evict nothing and
   promotions are free. At the knee in between, the resident set *is*
   the working set: blocks live long enough to become richly chained,
   every block a reservation kills traps straight back in, and the
   re-installs trigger further promotions — pure churn (mpeg2enc at
   16 KB paid +66% traps over chain-only for exactly this).

   The knee is identified offline, from the same profile that feeds
   the chain oracle: promotion is suppressed when the profiled
   dynamic text (distinct executed source bytes) is between 0.6x and
   1.2x the tcache size — with the rewriter's measured ~1.6-2x code
   expansion, that is precisely the band where the rewritten working
   set marginally exceeds capacity. On the workload suite the regimes
   separate cleanly in those units: working-set fit sits at <= 0.45x
   (compress95 at 16 KB, where promotion halves residual traps),
   the knee at ~0.8x (mpeg2enc at 16 KB), deep thrash at >= 1.6x
   (everything at 2-4 KB, where promotion cuts traps by half or
   more).

   An offline verdict is deliberate: no online churn statistic
   managed to make this call, because the promotion storm poisons
   every signal that would detect it. Global revert-per-eviction
   ratio and resident-age quantiles separate the regimes 10x under
   chain-only dynamics, but promotions begin at the very first traps
   of a cold run, and storm-churned victims die young and unlinked —
   the knee run measurably never develops the signal (the guard sat
   at zero fires). Attributing reverts to group reservations alone
   fails the same way: knee reservations usually carve transiently
   free space (the storm keeps occupancy oscillating) and the
   eviction damage lands on later ordinary allocations. And recency
   at trap granularity is inverted: a chained hot block re-enters
   through patched branches the controller never sees, so the
   longest-lived blocks have the stalest controller-visible
   entries. *)
let promotion_guarded t =
  match t.dynamic_text_hint with
  | None -> false
  | Some text ->
    let c = t.cfg.tcache_bytes in
    5 * text >= 3 * c && 5 * text <= 6 * c

(* Promote a hot chain: one contiguous reservation sized for every
   member, then the members install adjacently in chain order.
   Backward edges bind at translate time (the earlier members are
   resident by then) and forward edges chain eagerly as each member
   lands, so the whole group runs trap-free internally from the start.
   Any sizing or reservation failure abandons the promotion and the
   caller falls back to a plain translation. *)
let translate_superblock t v members =
  match
    List.map
      (fun m ->
        (m, Rewriter.layout_words (Chunker.chunk_at t.image t.cfg.chunking m)))
      members
  with
  | exception _ -> None
  | sized -> (
    let total = List.fold_left (fun a (_, w) -> a + w) 0 sized in
    if promotion_guarded t then begin
      t.stats.superblock_guard_skips <- t.stats.superblock_guard_skips + 1;
      None
    end
    else
    let module P = (val t.policy : Policy.S) in
    let reverts_before = t.stats.reverts in
    match
      match P.kind with
      | `Evict -> alloc_evicting t ~vaddr:v ~words_needed:total
      | `Flush_all -> alloc_flushing t ~vaddr:v ~words_needed:total
    with
    | exception (Chunk_too_large _ | Tcache_too_small) -> None
    | base ->
      t.stats.superblock_collateral_reverts <-
        t.stats.superblock_collateral_reverts
        + (t.stats.reverts - reverts_before);
      let _, rev_blocks =
        List.fold_left
          (fun (off, acc) (m, w) ->
            let b = translate_one ~placed:(base + (4 * off)) t m in
            (off + w, b :: acc))
          (0, []) sized
      in
      let blocks = List.rev rev_blocks in
      ignore (Cc_chain.register_superblock t ~head:v blocks);
      (match blocks with b :: _ -> Some b | [] -> None))

let translate t v =
  (* superblock promotion fuses hot block chains; whole-function units
     already subsume it, so function granularity takes the plain path *)
  if t.cfg.superblock_threshold > 0 && t.cfg.granularity = Config.Block then
    match superblock_chain t v with
    | [] | [ _ ] -> translate_one t v
    | members -> (
      match translate_superblock t v members with
      | Some b -> b
      | None -> translate_one t v)
  else translate_one t v

(* The single block-entry observation point. Every control transfer the
   controller mediates — computed jumps, indirect calls, return stubs,
   unresolved direct exits — lands here; transfers along already-patched
   direct branches never trap, so the policy cannot see them. That is
   the paper's bargain made explicit: the cache state is encoded in the
   branches, so recency is observed only at trap granularity, at zero
   per-instruction cost. *)
let ensure_resident t v =
  match Tcache.lookup t.tc v with
  | Some b ->
    let module P = (val t.policy : Policy.S) in
    P.on_entry b;
    t.stats.policy_entries <- t.stats.policy_entries + 1;
    b
  | None -> translate t v
