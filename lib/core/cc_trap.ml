(* Trap dispatch: every [Trap] the rewriter planted lands here —
   unresolved direct exits (translate + backpatch), computed jumps and
   indirect calls (tcache-map lookup), and persistent return stubs. *)

open Cc_state

let handle_trap t k =
  (* the CPU has already added [trap_dispatch] to the cycle counter
     before handing control to us *)
  t.stats.traps <- t.stats.traps + 1;
  (match t.tracer with
  | Some tr -> Trace.attribute_included tr Trace.Trap t.cpu.cost.trap_dispatch
  | None -> ());
  match t.stubs.(k) with
  | Stub.Exit { block; site_paddr; kind; target; revert_word } ->
    (* capture the stub fields before [ensure_resident]: the
       translation can evict [block] and recycle entry [k] *)
    let b = Cc_translate.ensure_resident t target in
    Cc_chain.patch_exit t k ~eager:false ~block ~site_paddr ~kind ~target
      ~revert_word b;
    t.cpu.pc <- b.paddr
  | Stub.Computed { rs } ->
    t.stats.lookups <- t.stats.lookups + 1;
    charge t Trace.Lookup t.cfg.lookup_cycles;
    let target = Machine.Cpu.reg t.cpu rs in
    let b = Cc_translate.ensure_resident t target in
    t.cpu.pc <- b.paddr
  | Stub.Icall { rd; rs; pad_paddr } ->
    t.stats.lookups <- t.stats.lookups + 1;
    charge t Trace.Lookup t.cfg.lookup_cycles;
    let target = Machine.Cpu.reg t.cpu rs in
    Machine.Cpu.set_reg t.cpu rd pad_paddr;
    let b = Cc_translate.ensure_resident t target in
    t.cpu.pc <- b.paddr
  | Stub.Ret_stub { site_paddr; target } ->
    t.stats.lookups <- t.stats.lookups + 1;
    charge t Trace.Lookup t.cfg.lookup_cycles;
    let b = Cc_translate.ensure_resident t target in
    (* specialise this stub into a direct jump while the target lives,
       unless a flush has re-purposed the stub area in the meantime *)
    (match Hashtbl.find_opt t.ret_stubs target with
    | Some (p, _) when p = site_paddr ->
      write_word t site_paddr (enc (Isa.Instr.Jmp b.paddr));
      (match Tcache.find_by_id t.tc b.id with
      | Some tb ->
        record_incoming t tb ~from_block:(-1) ~site_paddr
          ~revert_word:(enc (Isa.Instr.Trap k));
        t.stats.patches <- t.stats.patches + 1;
        charge t Trace.Patch t.cfg.patch_cycles;
        trace t (Trace.Cc_backpatch { site = site_paddr; target = b.paddr });
        emit_event t Patched
      | None -> ())
    | Some _ | None -> ());
    t.cpu.pc <- b.paddr
  | Stub.Plt { slot_paddr; target } ->
    t.stats.lookups <- t.stats.lookups + 1;
    charge t Trace.Lookup t.cfg.lookup_cycles;
    let b = Cc_translate.ensure_resident t target in
    (* translating a missing callee patches its slot on install, so
       this trap usually resumes through an already-patched slot; only
       a call whose target was resident all along (a pinned flush
       survivor under a re-trapped slot) still finds the trap word in
       place and specialises it here *)
    (if Machine.Memory.read32 t.cpu.mem slot_paddr = enc (Isa.Instr.Trap k)
     then
       match Tcache.find_by_id t.tc b.id with
       | Some tb ->
         write_word t slot_paddr (enc (Isa.Instr.Jmp tb.paddr));
         record_incoming t tb ~from_block:(-1) ~site_paddr:slot_paddr
           ~revert_word:(enc (Isa.Instr.Trap k));
         t.stats.patches <- t.stats.patches + 1;
         t.stats.plt_patches <- t.stats.plt_patches + 1;
         charge t Trace.Patch t.cfg.patch_cycles;
         trace t
           (Trace.Cc_backpatch { site = slot_paddr; target = tb.paddr });
         emit_event t Patched
       | None -> ());
    t.cpu.pc <- b.paddr
