(* Trap dispatch: every [Trap] the rewriter planted lands here —
   unresolved direct exits (translate + backpatch), computed jumps and
   indirect calls (tcache-map lookup), and persistent return stubs. *)

open Cc_state

let patch_exit t k ~block ~site_paddr ~kind ~revert_word
    (target_block : Tcache.block) =
  if Tcache.is_alive t.tc block then begin
    let patched =
      match kind with
      | Stub.Patch_jmp ->
        write_word t site_paddr (enc (Isa.Instr.Jmp target_block.paddr));
        record_incoming t target_block ~from_block:block ~site_paddr
          ~revert_word;
        true
      | Stub.Patch_jal ->
        write_word t site_paddr (enc (Isa.Instr.Jal target_block.paddr));
        record_incoming t target_block ~from_block:block ~site_paddr
          ~revert_word;
        true
      | Stub.Patch_br -> (
        match
          Isa.Encode.decode (Machine.Memory.read32 t.cpu.mem site_paddr)
        with
        | Some (Isa.Instr.Br (c, r1, r2, _)) ->
          let d = (target_block.paddr - site_paddr) asr 2 in
          if Isa.Encode.branch_offset_fits d then begin
            write_word t site_paddr (enc (Isa.Instr.Br (c, r1, r2, d)));
            record_incoming t target_block ~from_block:block ~site_paddr
              ~revert_word;
            true
          end
          else begin
            (* out of reach: specialise the island (where we trapped)
               into a direct jump instead *)
            let island = t.cpu.pc in
            write_word t island (enc (Isa.Instr.Jmp target_block.paddr));
            record_incoming t target_block ~from_block:block
              ~site_paddr:island
              ~revert_word:(enc (Isa.Instr.Trap k));
            true
          end
        | Some _ | None -> false)
    in
    if patched then begin
      t.stats.patches <- t.stats.patches + 1;
      charge t Trace.Patch t.cfg.patch_cycles;
      trace t
        (Trace.Cc_backpatch { site = site_paddr; target = target_block.paddr });
      emit_event t Patched
    end
  end

let handle_trap t k =
  (* the CPU has already added [trap_dispatch] to the cycle counter
     before handing control to us *)
  (match t.tracer with
  | Some tr -> Trace.attribute_included tr Trace.Trap t.cpu.cost.trap_dispatch
  | None -> ());
  match t.stubs.(k) with
  | Stub.Exit { block; site_paddr; kind; target; revert_word } ->
    let b = Cc_translate.ensure_resident t target in
    patch_exit t k ~block ~site_paddr ~kind ~revert_word b;
    t.cpu.pc <- b.paddr
  | Stub.Computed { rs } ->
    t.stats.lookups <- t.stats.lookups + 1;
    charge t Trace.Lookup t.cfg.lookup_cycles;
    let target = Machine.Cpu.reg t.cpu rs in
    let b = Cc_translate.ensure_resident t target in
    t.cpu.pc <- b.paddr
  | Stub.Icall { rd; rs; pad_paddr } ->
    t.stats.lookups <- t.stats.lookups + 1;
    charge t Trace.Lookup t.cfg.lookup_cycles;
    let target = Machine.Cpu.reg t.cpu rs in
    Machine.Cpu.set_reg t.cpu rd pad_paddr;
    let b = Cc_translate.ensure_resident t target in
    t.cpu.pc <- b.paddr
  | Stub.Ret_stub { site_paddr; target } ->
    t.stats.lookups <- t.stats.lookups + 1;
    charge t Trace.Lookup t.cfg.lookup_cycles;
    let b = Cc_translate.ensure_resident t target in
    (* specialise this stub into a direct jump while the target lives,
       unless a flush has re-purposed the stub area in the meantime *)
    (match Hashtbl.find_opt t.ret_stubs target with
    | Some (p, _) when p = site_paddr ->
      write_word t site_paddr (enc (Isa.Instr.Jmp b.paddr));
      (match Tcache.find_by_id t.tc b.id with
      | Some tb ->
        record_incoming t tb ~from_block:(-1) ~site_paddr
          ~revert_word:(enc (Isa.Instr.Trap k));
        t.stats.patches <- t.stats.patches + 1;
        charge t Trace.Patch t.cfg.patch_cycles;
        trace t (Trace.Cc_backpatch { site = site_paddr; target = b.paddr });
        emit_event t Patched
      | None -> ())
    | Some _ | None -> ());
    t.cpu.pc <- b.paddr
