type t = { vaddr : int; instrs : Isa.Instr.t array }

exception Bad_address of int
exception Trap_in_source of int

let max_chunk_instrs = 16384

let decode_at img addr =
  match Isa.Image.fetch img addr with
  | Isa.Instr.Trap _ -> raise (Trap_in_source addr)
  | i -> i
  | exception Invalid_argument _ -> raise (Bad_address addr)
  | exception Isa.Encode.Encode_error _ -> raise (Bad_address addr)

(* [v, limit): decode until the first block terminator (inclusive) or
   until [limit]. *)
let scan img v limit =
  let rec go acc addr n =
    if addr >= limit || n >= max_chunk_instrs then List.rev acc
    else
      let i = decode_at img addr in
      if Isa.Instr.is_block_terminator i then List.rev (i :: acc)
      else go (i :: acc) (addr + 4) (n + 1)
  in
  Array.of_list (go [] v 0)

let chunk_at img mode v =
  if v land 3 <> 0 || not (Isa.Image.contains_code img v) then
    raise (Bad_address v);
  let limit =
    match mode with
    | Config.Basic_block -> Isa.Image.code_end img
    | Config.Procedure -> (
      match Isa.Image.symbol_at img v with
      | Some s -> s.sym_addr + s.sym_size
      | None -> Isa.Image.code_end img)
  in
  let instrs =
    match mode with
    | Config.Basic_block -> scan img v limit
    | Config.Procedure ->
      let n = (limit - v) / 4 in
      let n = min n max_chunk_instrs in
      Array.init n (fun i -> decode_at img (v + (4 * i)))
  in
  if Array.length instrs = 0 then raise (Bad_address v);
  { vaddr = v; instrs }

let span_bytes t = Array.length t.instrs * Isa.Instr.word_size

let successors img t =
  let n = Array.length t.instrs in
  let fallthrough = t.vaddr + (n * 4) in
  let last = t.instrs.(n - 1) in
  let static_exits =
    (* fallthrough first: straight-line continuation is the likeliest
       next miss unless the chunk ends in an unconditional transfer *)
    (match last with
    | Isa.Instr.Jmp _ | Isa.Instr.Jr _ | Isa.Instr.Halt | Isa.Instr.Trap _ ->
      []
    | _ -> [ fallthrough ])
    @ List.concat
        (List.mapi
           (fun i instr ->
             let a = t.vaddr + (4 * i) in
             match instr with
             | Isa.Instr.Br (_, _, _, off) -> [ a + (4 * off) ]
             | Isa.Instr.Jmp target -> [ target ]
             | Isa.Instr.Jal target -> [ target; a + 4 ]
             | Isa.Instr.Jalr _ -> [ a + 4 ]
             | _ -> [])
           (Array.to_list t.instrs))
  in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun a ->
      if
        a land 3 <> 0 || a = t.vaddr
        || (not (Isa.Image.contains_code img a))
        || Hashtbl.mem seen a
      then false
      else begin
        Hashtbl.add seen a ();
        true
      end)
    static_exits

let pp ppf t =
  Format.fprintf ppf "chunk 0x%x (%d instrs)" t.vaddr (Array.length t.instrs)
