type t = { vaddr : int; instrs : Isa.Instr.t array }

exception Bad_address of int
exception Trap_in_source of int

let max_chunk_instrs = 16384

let decode_at img addr =
  match Isa.Image.fetch img addr with
  | Isa.Instr.Trap _ -> raise (Trap_in_source addr)
  | i -> i
  | exception Invalid_argument _ -> raise (Bad_address addr)
  | exception Isa.Encode.Encode_error _ -> raise (Bad_address addr)

(* [v, limit): decode until the first block terminator (inclusive) or
   until [limit]. *)
let scan img v limit =
  let rec go acc addr n =
    if addr >= limit || n >= max_chunk_instrs then List.rev acc
    else
      let i = decode_at img addr in
      if Isa.Instr.is_block_terminator i then List.rev (i :: acc)
      else go (i :: acc) (addr + 4) (n + 1)
  in
  Array.of_list (go [] v 0)

let chunk_at img mode v =
  if v land 3 <> 0 || not (Isa.Image.contains_code img v) then
    raise (Bad_address v);
  let limit =
    match mode with
    | Config.Basic_block -> Isa.Image.code_end img
    | Config.Procedure -> (
      match Isa.Image.symbol_at img v with
      | Some s -> s.sym_addr + s.sym_size
      | None -> Isa.Image.code_end img)
  in
  let instrs =
    match mode with
    | Config.Basic_block -> scan img v limit
    | Config.Procedure ->
      let n = (limit - v) / 4 in
      let n = min n max_chunk_instrs in
      Array.init n (fun i -> decode_at img (v + (4 * i)))
  in
  if Array.length instrs = 0 then raise (Bad_address v);
  { vaddr = v; instrs }

let span_bytes t = Array.length t.instrs * Isa.Instr.word_size

(* Whole-function extraction for [Config.granularity = Function]: a
   CFG worklist walk over the basic blocks reachable from [v] inside
   the enclosing symbol (or the rest of the text segment when there is
   no symbol), closed over fall-throughs — a [Jal]/[Jalr] continues the
   walk at its return site, the callee being its own unit — and then
   decoded as ONE contiguous chunk covering [v, hi) where hi is the
   highest byte any reachable block touches. Contiguity is what lets
   the rewriter keep every internal edge branch-direct: the unit is a
   plain (large) chunk, no new instruction forms.

   A decode failure or embedded trap in the contiguous span raises
   exactly as [chunk_at] would; callers distinguish "the requested
   address is bad" (carried address = [v]) from "the function body is
   not contiguously decodable" (carried address > [v]) and degrade the
   latter to block granularity. *)
let max_function_instrs = 8192

let chunk_function img v =
  if v land 3 <> 0 || not (Isa.Image.contains_code img v) then
    raise (Bad_address v);
  let cap =
    match Isa.Image.symbol_at img v with
    | Some s -> min (s.sym_addr + s.sym_size) (Isa.Image.code_end img)
    | None -> Isa.Image.code_end img
  in
  let seen = Hashtbl.create 16 in
  let queue = Queue.create () in
  let push a =
    if a >= v && a < cap && a land 3 = 0 && not (Hashtbl.mem seen a) then begin
      Hashtbl.add seen a ();
      Queue.add a queue
    end
  in
  push v;
  let hi = ref (v + 4) in
  while not (Queue.is_empty queue) do
    let a = Queue.pop queue in
    let instrs = scan img a cap in
    let n = Array.length instrs in
    if n > 0 then begin
      hi := max !hi (a + (4 * n));
      let last_addr = a + (4 * (n - 1)) in
      match instrs.(n - 1) with
      | Isa.Instr.Br (_, _, _, off) ->
        push (last_addr + (4 * off));
        push (last_addr + 4)
      | Isa.Instr.Jmp target -> push target
      | Isa.Instr.Jal _ | Isa.Instr.Jalr _ ->
        (* fall-through closure: the return site belongs to this unit *)
        push (last_addr + 4)
      | Isa.Instr.Jr _ | Isa.Instr.Halt | Isa.Instr.Trap _ -> ()
      | _ -> () (* scan hit [cap] without a terminator *)
    end
  done;
  (* no truncation: the caller applies the degradation rule against
     [max_function_instrs], so it must see the unit's true extent *)
  let len = (!hi - v) / 4 in
  let instrs = Array.init len (fun i -> decode_at img (v + (4 * i))) in
  if Array.length instrs = 0 then raise (Bad_address v);
  { vaddr = v; instrs }

let successors img t =
  let n = Array.length t.instrs in
  let fallthrough = t.vaddr + (n * 4) in
  let last = t.instrs.(n - 1) in
  let static_exits =
    (* fallthrough first: straight-line continuation is the likeliest
       next miss unless the chunk ends in an unconditional transfer *)
    (match last with
    | Isa.Instr.Jmp _ | Isa.Instr.Jr _ | Isa.Instr.Halt | Isa.Instr.Trap _ ->
      []
    | _ -> [ fallthrough ])
    @ List.concat
        (List.mapi
           (fun i instr ->
             let a = t.vaddr + (4 * i) in
             match instr with
             | Isa.Instr.Br (_, _, _, off) -> [ a + (4 * off) ]
             | Isa.Instr.Jmp target -> [ target ]
             | Isa.Instr.Jal target -> [ target; a + 4 ]
             | Isa.Instr.Jalr _ -> [ a + 4 ]
             | _ -> [])
           (Array.to_list t.instrs))
  in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun a ->
      if
        a land 3 <> 0 || a = t.vaddr
        || (not (Isa.Image.contains_code img a))
        || Hashtbl.mem seen a
      then false
      else begin
        Hashtbl.add seen a ();
        true
      end)
    static_exits

(* Successors outside the unit's own span — in function mode the
   internal block heads are already part of this chunk, so only
   external edges are prefetch candidates or sizing-walk seeds. *)
let external_successors img t =
  let lo = t.vaddr and hi = t.vaddr + span_bytes t in
  List.filter (fun a -> a < lo || a >= hi) (successors img t)

(* Direct-call targets leaving the unit: the set of PLT slots the
   rewritten unit will call through. Internal targets are excluded —
   the rewriter resolves any [Jal] landing inside the unit's own span
   as a direct branch, so only external callees route through the
   indirection table. *)
let call_targets img t =
  let lo = t.vaddr and hi = t.vaddr + span_bytes t in
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iter
    (fun instr ->
      match instr with
      | Isa.Instr.Jal target
        when (target < lo || target >= hi)
             && target land 3 = 0
             && Isa.Image.contains_code img target
             && not (Hashtbl.mem seen target) ->
        Hashtbl.add seen target ();
        acc := target :: !acc
      | _ -> ())
    t.instrs;
  List.rev !acc

let pp ppf t =
  Format.fprintf ppf "chunk 0x%x (%d instrs)" t.vaddr (Array.length t.instrs)
