(** MC-side chunk extraction.

    "On the MC instructions from the original program are broken into
    chunks — for our purposes, a chunk is a basic block, although it
    could certainly be a larger sequence of instructions."

    A chunk starting at virtual address [v] extends
    - in basic-block mode, to the first control-flow instruction at or
      after [v] (inclusive) — branch targets landing mid-block start
      fresh chunks, i.e. tail duplication, exactly as in the paper's
      Figure 3 where blocks are copied on demand per branch target;
    - in procedure mode, to the end of the procedure symbol containing
      [v] (falling back to basic-block extent for symbol-less code). *)

type t = {
  vaddr : int;  (** first instruction's virtual address *)
  instrs : Isa.Instr.t array;
}

exception Bad_address of int
(** The requested address is unaligned or outside the image's text
    segment — the embedded program jumped somewhere that is not code. *)

exception Trap_in_source of int
(** Source images must not contain [Trap]; it is reserved for the
    rewriter. Carries the offending address. *)

val max_chunk_instrs : int
(** Safety bound on chunk length (16384 instructions). *)

val chunk_at : Isa.Image.t -> Config.chunking -> int -> t
(** Extract the chunk starting at a virtual address.
    @raise Bad_address / Trap_in_source as above. *)

val span_bytes : t -> int
(** Original footprint of the chunk in the source image. *)

val max_function_instrs : int
(** Degradation bound on whole-function units (8192 instructions):
    3n emitted words stay within the 16-bit branch-offset range, and
    anything larger is degraded to block granularity by the controller
    rather than cached as one unit. [chunk_function] itself does not
    enforce it — callers compare against the returned length. *)

val chunk_function : Isa.Image.t -> int -> t
(** Whole-function extraction for [Config.granularity = Function]: a
    CFG worklist walk over the basic blocks reachable from the entry
    inside the enclosing symbol (or the rest of the text segment when
    there is no symbol), closed over call fall-throughs — a call's
    return site belongs to this unit, the callee is its own unit — and
    decoded as ONE contiguous chunk covering the entry up to the
    highest byte any reachable block touches.

    @raise Bad_address with the entry address if the entry itself is
    unaligned or outside the text segment; with a higher address (or
    [Trap_in_source]) if the contiguous extent is not cleanly
    decodable — callers degrade the latter to block granularity. *)

val external_successors : Isa.Image.t -> t -> int list
(** [successors] restricted to addresses outside the chunk's own span —
    in function mode the internal block heads are already part of the
    unit, so only external edges are prefetch candidates. *)

val call_targets : Isa.Image.t -> t -> int list
(** Deduplicated direct-call ([Jal]) targets leaving the unit's span,
    in first-occurrence order, restricted to aligned text-segment
    addresses: the set of PLT slots a function-granularity translation
    of this chunk calls through. *)

val successors : Isa.Image.t -> t -> int list
(** Static successor chunk addresses — the MC's prefetch candidates:
    the fallthrough continuation (unless the chunk ends in an
    unconditional transfer), conditional-branch targets, direct jump
    and call targets, and call return sites, in that order, deduplicated,
    restricted to aligned text-segment addresses other than the chunk's
    own start. Computed jump targets ([Jr]/[Jalr]) are unknowable
    statically and contribute only their return sites. *)

val pp : Format.formatter -> t -> unit
