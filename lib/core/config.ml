type chunking = Basic_block | Procedure
type eviction = Flush_all | Fifo | Lru | Rrip | Trrip

(* The one place the CLI flag, the pretty-printer and the policy sweep
   all draw the valid-policy set from; adding a policy here is what
   makes it exist everywhere. *)
let eviction_table =
  [ ("fifo", Fifo); ("flush", Flush_all); ("lru", Lru); ("rrip", Rrip);
    ("trrip", Trrip) ]

let eviction_name ev =
  match List.find_opt (fun (_, e) -> e = ev) eviction_table with
  | Some (n, _) -> n
  | None -> assert false (* the table is total by construction *)

let eviction_of_name n =
  List.assoc_opt n eviction_table

type granularity = Block | Function

(* Same single-table discipline as [eviction_table]: the CLI flag, the
   pretty-printer and the gransweep grid all read this. *)
let granularity_table = [ ("block", Block); ("function", Function) ]

let granularity_name g =
  match List.find_opt (fun (_, x) -> x = g) granularity_table with
  | Some (n, _) -> n
  | None -> assert false (* the table is total by construction *)

let granularity_of_name n = List.assoc_opt n granularity_table

type t = {
  tcache_bytes : int;
  tcache_base : int;
  chunking : chunking;
  eviction : eviction;
  lookup_cycles : int;
  patch_cycles : int;
  miss_fixed_cycles : int;
  translate_cycles_per_word : int;
  scrub_cycles_per_word : int;
  bind_at_translate : bool;
  net : Netmodel.t;
  max_retries : int;
  retry_backoff_cycles : int;
  timeout_cycles : int;
  audit : bool;
  engine : Machine.Cpu.engine;
  prefetch_degree : int;
  staging_chunks : int;
  trace_limit : int;
  chain : bool;
  superblock_threshold : int;
  granularity : granularity;
  harts : int;
  shards : int;
  sched_seed : int;
  quantum : int;
}

let make ?(tcache_bytes = 48 * 1024) ?(tcache_base = 0x10000)
    ?(chunking = Basic_block) ?(eviction = Fifo) ?(lookup_cycles = 12)
    ?(patch_cycles = 4) ?(miss_fixed_cycles = 30)
    ?(translate_cycles_per_word = 2) ?(scrub_cycles_per_word = 2)
    ?(bind_at_translate = true) ?net ?(max_retries = 8)
    ?(retry_backoff_cycles = 64) ?(timeout_cycles = 1000) ?(audit = false)
    ?(engine = Machine.Cpu.Decoded) ?(prefetch_degree = 0)
    ?(staging_chunks = 8) ?(trace_limit = 65536) ?(chain = false)
    ?(superblock_threshold = 0) ?(granularity = Block) ?(harts = 1)
    ?(shards = 1) ?(sched_seed = 1) ?(quantum = 64) () =
  let net = match net with Some n -> n | None -> Netmodel.local () in
  if tcache_bytes < 64 then invalid_arg "Config.make: tcache too small";
  if tcache_base land 3 <> 0 then invalid_arg "Config.make: unaligned base";
  if max_retries < 0 then invalid_arg "Config.make: negative max_retries";
  if retry_backoff_cycles < 0 || timeout_cycles < 0 then
    invalid_arg "Config.make: negative transport cycle cost";
  if prefetch_degree < 0 then
    invalid_arg "Config.make: negative prefetch_degree";
  if staging_chunks < 0 then invalid_arg "Config.make: negative staging_chunks";
  if trace_limit <= 0 then invalid_arg "Config.make: trace_limit must be positive";
  if superblock_threshold < 0 then
    invalid_arg "Config.make: negative superblock_threshold";
  if superblock_threshold > 0 && not chain then
    invalid_arg "Config.make: superblock formation requires chaining";
  if granularity = Function && chunking = Procedure then
    invalid_arg
      "Config.make: function granularity subsumes procedure chunking; use \
       basic-block chunking";
  if harts < 1 then invalid_arg "Config.make: harts must be >= 1";
  if shards < 1 then invalid_arg "Config.make: shards must be >= 1";
  if shards > 1 && tcache_bytes < 16 * shards then
    invalid_arg "Config.make: tcache too small for that many shards";
  if shards > 1 && superblock_threshold > 0 then
    invalid_arg
      "Config.make: superblock group reservations are contiguous and break \
       home-shard routing; use shards=1 or superblock_threshold=0";
  if quantum < 1 then invalid_arg "Config.make: quantum must be >= 1";
  {
    tcache_bytes;
    tcache_base;
    chunking;
    eviction;
    lookup_cycles;
    patch_cycles;
    miss_fixed_cycles;
    translate_cycles_per_word;
    scrub_cycles_per_word;
    bind_at_translate;
    net;
    max_retries;
    retry_backoff_cycles;
    timeout_cycles;
    audit;
    engine;
    prefetch_degree;
    staging_chunks;
    trace_limit;
    chain;
    superblock_threshold;
    granularity;
    harts;
    shards;
    sched_seed;
    quantum;
  }

let sparc_prototype ?tcache_bytes () =
  make ?tcache_bytes ~chunking:Basic_block ~eviction:Fifo
    ~net:(Netmodel.local ()) ()

let arm_prototype ?tcache_bytes () =
  make ?tcache_bytes ~chunking:Procedure ~eviction:Fifo
    ~net:(Netmodel.ethernet_10mbps ()) ()

let pp ppf t =
  Format.fprintf ppf "tcache %dB @0x%x, %s chunks, %s eviction%s"
    t.tcache_bytes t.tcache_base
    (match t.chunking with
    | Basic_block -> "basic-block"
    | Procedure -> "procedure")
    (eviction_name t.eviction)
    (match t.engine with
    | Machine.Cpu.Decoded -> ""
    | Machine.Cpu.Interpretive -> ", interpretive dispatch");
  if t.chain then
    Format.fprintf ppf ", chaining%s"
      (if t.superblock_threshold > 0 then
         Printf.sprintf " + superblocks (threshold %d)" t.superblock_threshold
       else "");
  if t.granularity = Function then
    Format.fprintf ppf ", function granularity (PLT)";
  if t.harts > 1 then Format.fprintf ppf ", %d harts" t.harts;
  if t.shards > 1 then Format.fprintf ppf ", %d shards" t.shards
