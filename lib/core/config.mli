(** SoftCache configuration.

    Mirrors the knobs the paper's two prototypes differ on: chunk
    granularity (basic blocks on SPARC, procedures on ARM), the eviction
    policy, the interconnect, and the client-side cycle prices of the
    cache-controller operations. *)

type chunking =
  | Basic_block  (** SPARC prototype: translate one basic block at a time *)
  | Procedure
      (** ARM prototype: "code is chunked by procedures rather than by
          basic blocks" *)

type eviction =
  | Flush_all
      (** invalidate the whole tcache when full, the strategy of the
          dynamic rewriters the paper cites (Dynamo, Shade, Embra) *)
  | Fifo  (** evict oldest blocks in allocation order, one at a time *)
  | Lru
      (** evict the least-recently-*entered* block: recency is tracked
          over the block-entry events the controller already observes
          (translations, computed jumps, indirect calls, return stubs),
          so there is no per-instruction cost — the paper's "cache
          state encoded in the branches" *)
  | Rrip
      (** 2-bit re-reference interval prediction over the same observed
          entry events (in the spirit of TRRIP): blocks insert at RRPV
          2, reset to 0 on entry, and the victim is the max-RRPV block *)
  | Trrip
      (** temperature-aware RRIP: like [Rrip], but a profile-derived
          temperature oracle ([Controller.set_temperature_oracle]) sets
          the insertion RRPV per block — hot 0, warm 2, cold 3 — so
          profile-hot blocks survive the sweep before their first
          observed entry. With no oracle attached every block reads
          cold and the policy's decisions are exactly [Rrip]'s *)

val eviction_table : (string * eviction) list
(** The canonical name <-> policy mapping. The CLI [--eviction] enum,
    [pp], and the bench policy sweep are all generated from this table,
    so the valid-value set can never drift between them. *)

val eviction_name : eviction -> string
(** Flag-style name of a policy, per [eviction_table]. *)

val eviction_of_name : string -> eviction option

type granularity =
  | Block  (** cache units are chunker output (basic blocks / procedures) *)
  | Function
      (** cache units are whole functions: a CFG walk from the entry
          point closes over the contiguous body (fall-through closure),
          call sites are rewritten through a PLT-style indirection table
          owned by the controller, and returns need no patching. A
          function whose rewritten body cannot fit the tcache degrades
          to block granularity for that function only *)

val granularity_table : (string * granularity) list
(** Canonical name <-> granularity mapping, in the style of
    [eviction_table]: the CLI [--granularity] enum, [pp] and the bench
    gransweep grid are all generated from it. *)

val granularity_name : granularity -> string

val granularity_of_name : string -> granularity option

type t = {
  tcache_bytes : int;  (** CC translation-cache memory, bytes *)
  tcache_base : int;  (** physical base of the tcache region *)
  chunking : chunking;
  eviction : eviction;
  lookup_cycles : int;
      (** client cost of one tcache-map hash probe (ambiguous-pointer
          fallback) *)
  patch_cycles : int;  (** client cost of rewriting one code word *)
  miss_fixed_cycles : int;
      (** fixed client-side bookkeeping per miss, on top of network and
          per-word costs *)
  translate_cycles_per_word : int;
      (** MC-side rewriting work, charged per emitted word; "could
          easily be reduced to near zero by more powerful MC systems" *)
  scrub_cycles_per_word : int;
      (** cost per stack word scanned when evicting live landing pads *)
  bind_at_translate : bool;
      (** when the MC rewrites a chunk, bind exits whose targets are
          already resident directly (the paper's design); disabling it
          makes every exit trap once before being patched — an ablation
          of translate-time specialisation *)
  net : Netmodel.t;
  max_retries : int;
      (** how many times the CC re-requests a chunk after a dropped or
          corrupted frame before declaring it unavailable *)
  retry_backoff_cycles : int;
      (** base of the exponential backoff charged before retry [n]:
          [retry_backoff_cycles * 2^(n-1)] cycles *)
  timeout_cycles : int;
      (** cycles the CC waits before concluding a frame was dropped *)
  audit : bool;
      (** run the [Check.Audit] tcache invariant auditor after every
          controller event (installed via [Check.Audit.install_if_configured];
          off by default, enabled in tests and by [--audit]) *)
  engine : Machine.Cpu.engine;
      (** CPU dispatch engine for the cached run: [Decoded] (default)
          fetches through the memory-coherent predecode cache;
          [Interpretive] re-decodes every fetch — kept for differential
          testing of the decode cache against reference dispatch *)
  prefetch_degree : int;
      (** on a miss, how many predicted-next chunks the MC ships in the
          same frame as the demand chunk (0 = prefetch off); the demand
          response amortizes [latency_cycles] and the per-message
          overhead across the batch *)
  staging_chunks : int;
      (** bound on the CC staging buffer holding prefetched chunks that
          have not been touched yet; oldest entries are discarded when
          the bound is hit *)
  trace_limit : int;
      (** capacity of the structured-event trace ring when a tracer is
          attached ([Controller.attach_tracer] / CLI [--trace]); the
          oldest events are overwritten past this bound and reported as
          dropped *)
  chain : bool;
      (** eager branch chaining: whenever a chunk becomes resident, every
          unresolved exit branch of an already-resident block that
          targets it is patched tcache-direct immediately, instead of
          waiting for that branch to trap once (the paper's rewrite rule
          applied at install time). Off by default — the lazy
          patch-on-trap behaviour is the baseline the golden cycle
          numbers pin down *)
  superblock_threshold : int;
      (** edge-temperature threshold for superblock formation (0 = off;
          requires [chain]). On a miss, the controller consults the
          profile-derived chain oracle ([Controller.t.chain_oracle]) and
          fuses the chain of chunks whose successor edges were observed
          at least this many times into one contiguous group allocation,
          installing the members adjacently in chain order with all
          internal edges bound directly *)
  granularity : granularity;
      (** caching unit size: [Block] (default) caches chunker output;
          [Function] caches whole functions behind a PLT-style
          indirection table (see {!granularity}). Incompatible with
          [Procedure] chunking — function mode already subsumes it *)
  harts : int;
      (** CPU hart contexts sharing this controller's tcache (default
          1 = the solo single-threaded CC of the paper). With more, the
          run is driven by the shard layer ([Softcache.Shard]): a
          deterministic seeded scheduler interleaves the harts, misses
          go through the explicit fill state machine, and duplicate
          misses coalesce onto in-flight fills *)
  shards : int;
      (** tcache arenas (default 1 = one shared arena). [K > 1]
          partitions the tcache into K arenas with deterministic
          home-shard chunk routing and a global (cross-shard) lookup
          map. Incompatible with superblock formation, whose contiguous
          group reservations would break home-shard routing *)
  sched_seed : int;
      (** seed of the deterministic hart-interleaving scheduler; the
          same seed replays the same interleaving byte-identically *)
  quantum : int;
      (** scheduler quantum: cycles a hart may advance before the
          scheduler re-picks (smaller = finer interleaving) *)
}

val make :
  ?tcache_bytes:int ->
  ?tcache_base:int ->
  ?chunking:chunking ->
  ?eviction:eviction ->
  ?lookup_cycles:int ->
  ?patch_cycles:int ->
  ?miss_fixed_cycles:int ->
  ?translate_cycles_per_word:int ->
  ?scrub_cycles_per_word:int ->
  ?bind_at_translate:bool ->
  ?net:Netmodel.t ->
  ?max_retries:int ->
  ?retry_backoff_cycles:int ->
  ?timeout_cycles:int ->
  ?audit:bool ->
  ?engine:Machine.Cpu.engine ->
  ?prefetch_degree:int ->
  ?staging_chunks:int ->
  ?trace_limit:int ->
  ?chain:bool ->
  ?superblock_threshold:int ->
  ?granularity:granularity ->
  ?harts:int ->
  ?shards:int ->
  ?sched_seed:int ->
  ?quantum:int ->
  unit ->
  t
(** Defaults: 48 KiB tcache at [0x10000], basic-block chunking, FIFO
    eviction, lookup 12, patch 4, miss fixed 30, translate 2/word,
    scrub 2/word, local (SPARC-style) interconnect, 8 retries with a
    64-cycle backoff base and a 1000-cycle drop timeout, audit off,
    decoded dispatch, prefetch off with an 8-chunk staging buffer, a
    65536-event trace ring, chaining/superblocks off, block
    granularity, one hart, one shard, scheduler seed 1 with a 64-cycle
    quantum.
    @raise Invalid_argument on out-of-range values (including
    [trace_limit <= 0], [superblock_threshold > 0] without [chain],
    [Function] granularity combined with [Procedure] chunking, and
    [shards > 1] combined with superblock formation). *)

val sparc_prototype : ?tcache_bytes:int -> unit -> t
(** Basic-block chunking, local MC (no network), FIFO eviction. *)

val arm_prototype : ?tcache_bytes:int -> unit -> t
(** Procedure chunking and a 10 Mbps Ethernet MC link, as on the Skiff
    boards. *)

val pp : Format.formatter -> t -> unit
