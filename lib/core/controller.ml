type event =
  | Translated of int
  | Evicted of int
  | Flushed
  | Invalidated
  | Patched

type staged = { st_bytes : Bytes.t; st_crc : int }

type t = {
  cfg : Config.t;
  image : Isa.Image.t;
  cpu : Machine.Cpu.t;
  tc : Tcache.t;
  stats : Stats.t;
  staging : (int, staged) Hashtbl.t;
  staging_order : int Queue.t;
  mutable prefetch_ranker : (lo:int -> hi:int -> int) option;
  mutable stubs : Stub.t array;
  mutable nstubs : int;
  ret_stubs : (int, int * int) Hashtbl.t;
  stack_top : int;
  mutable next_block_id : int;
  mutable started : bool;
  mutable ra_regions : (int * int) list;
      (* registered non-stack storage holding return addresses *)
  mutable free_stubs : int list;
      (* recycled stub-table entries from evicted blocks *)
  mutable live_stubs : int;
  mutable on_event : (event -> unit) option;
  mutable tracer : Trace.t option;
  mutable chaos_drop_incoming : int;
      (* test hook: silently skip the next N incoming-pointer records,
         seeding the bookkeeping bug the auditor must catch *)
}

exception Chunk_too_large of int
exception Tcache_too_small
exception Chunk_unavailable of { vaddr : int; attempts : int }

let emit_event t ev =
  match t.on_event with Some f -> f ev | None -> ()

let trace t ev = match t.tracer with Some tr -> Trace.emit tr ev | None -> ()

let log_src =
  Logs.Src.create "softcache.controller"
    ~doc:"SoftCache cache-controller events"

module Log = (val Logs.src_log log_src)

let enc = Isa.Encode.encode

(* Every explicit client-side charge is labelled with its attribution
   category so an attached tracer can conserve: the labelled categories
   plus the execute residual sum exactly to [cpu.cycles]. *)
let charge t cat c =
  (match t.tracer with Some tr -> Trace.attribute tr cat c | None -> ());
  t.cpu.cycles <- t.cpu.cycles + c
let write_word t addr w = Machine.Memory.write32 t.cpu.mem addr w

let add_stub t make =
  t.live_stubs <- t.live_stubs + 1;
  match t.free_stubs with
  | k :: rest ->
    t.free_stubs <- rest;
    t.stubs.(k) <- make k;
    k
  | [] ->
    if t.nstubs = Array.length t.stubs then begin
      let bigger =
        Array.make (max 64 (2 * t.nstubs)) (Stub.Computed { rs = Isa.Reg.ra })
      in
      Array.blit t.stubs 0 bigger 0 t.nstubs;
      t.stubs <- bigger
    end;
    let k = t.nstubs in
    t.stubs.(k) <- make k;
    t.nstubs <- k + 1;
    k

(* A dead block's stub entries can never fire again (its memory is
   unreachable once the resume redirect has run), so they are recycled
   — this is what keeps CC metadata proportional to residency. *)
let free_block_stubs t victims =
  List.iter
    (fun (b : Tcache.block) ->
      List.iter
        (fun k ->
          t.free_stubs <- k :: t.free_stubs;
          t.live_stubs <- t.live_stubs - 1)
        b.stubs)
    victims

let record_incoming t (b : Tcache.block) ~from_block ~site_paddr ~revert_word
    =
  if t.chaos_drop_incoming > 0 then
    t.chaos_drop_incoming <- t.chaos_drop_incoming - 1
  else
    b.incoming <-
      { Tcache.from_block; site_paddr; revert_word } :: b.incoming

(* Allocate (or reuse) the persistent return stub for a return target.
   May evict blocks to grow the stub area; [on_evicted] handles them. *)
let rec persistent_ret_stub t ~on_evicted ret_vaddr =
  match Hashtbl.find_opt t.ret_stubs ret_vaddr with
  | Some (paddr, _) -> paddr
  | None -> (
    match Tcache.alloc_persistent t.tc ~words:1 with
    | Error `Too_large -> raise Tcache_too_small
    | Ok (paddr, victims) ->
      on_evicted victims;
      let k =
        add_stub t (fun _k ->
            Stub.Ret_stub { site_paddr = paddr; target = ret_vaddr })
      in
      write_word t paddr (enc (Isa.Instr.Trap k));
      Hashtbl.replace t.ret_stubs ret_vaddr (paddr, k);
      t.stats.ret_stubs <- t.stats.ret_stubs + 1;
      paddr)

(* Redirect any live landing-pad address held in [ra] or on the stack
   into a persistent return stub. [padtbl] maps pad paddr -> return
   vaddr for the pads that just died. *)
and scrub_stack t ~on_evicted padtbl =
  let fixup v =
    match Hashtbl.find_opt padtbl v with
    | Some ret_vaddr -> Some (persistent_ret_stub t ~on_evicted ret_vaddr)
    | None -> None
  in
  (match fixup (Machine.Cpu.reg t.cpu Isa.Reg.ra) with
  | Some p -> Machine.Cpu.set_reg t.cpu Isa.Reg.ra p
  | None -> ());
  let sp = Machine.Cpu.reg t.cpu Isa.Reg.sp in
  let scanned = ref 0 in
  let scan_range lo hi =
    let addr = ref (lo land lnot 3) in
    while !addr + 4 <= hi do
      incr scanned;
      (match fixup (Machine.Memory.read32 t.cpu.mem !addr) with
      | Some p -> write_word t !addr p
      | None -> ());
      addr := !addr + 4
    done
  in
  scan_range (max 0 sp) t.stack_top;
  (* "any non-stack storage (e.g. thread control blocks) must be
     registered with the runtime system" *)
  List.iter (fun (lo, hi) -> scan_range lo hi) t.ra_regions;
  t.stats.scrubbed_words <- t.stats.scrubbed_words + !scanned;
  charge t Trace.Scrub (t.cfg.scrub_cycles_per_word * !scanned)

and debug_check_stale t victims =
  (* SOFTCACHE_DEBUG: detect return addresses pointing into freed blocks *)
  let in_victim v =
    List.exists
      (fun (b : Tcache.block) ->
        v >= b.paddr && v < b.paddr + (4 * b.words))
      victims
  in
  let ra = Machine.Cpu.reg t.cpu Isa.Reg.ra in
  if in_victim ra then
    Printf.eprintf "STALE ra=0x%x after scrub! pc=0x%x\n%!" ra t.cpu.pc;
  let sp = max 0 (Machine.Cpu.reg t.cpu Isa.Reg.sp land lnot 3) in
  let addr = ref sp in
  while !addr + 4 <= t.stack_top do
    let v = Machine.Memory.read32 t.cpu.mem !addr in
    if in_victim v then
      Printf.eprintf "STALE stack[0x%x]=0x%x after scrub! pc=0x%x sp=0x%x\n%!"
        !addr v t.cpu.pc sp;
    addr := !addr + 4
  done

and revert_incoming t victims =
  (* unlink: revert every recorded incoming pointer whose own block
     still exists *)
  List.iter
    (fun (b : Tcache.block) ->
      List.iter
        (fun (inc : Tcache.incoming) ->
          if inc.from_block = -1 || Tcache.is_alive t.tc inc.from_block
          then begin
            write_word t inc.site_paddr inc.revert_word;
            t.stats.reverts <- t.stats.reverts + 1;
            charge t Trace.Patch t.cfg.patch_cycles
          end)
        b.incoming)
    victims

and process_evicted t victims =
  if victims <> [] then begin
    let n = List.length victims in
    Log.debug (fun m ->
        m "evict %d block(s): %s" n
          (String.concat ","
             (List.map
                (fun (b : Tcache.block) -> Printf.sprintf "v=0x%x" b.vaddr)
                victims)));
    t.stats.evicted_blocks <- t.stats.evicted_blocks + n;
    Stats.record_eviction t.stats ~cycle:t.cpu.cycles ~blocks:n;
    List.iter
      (fun (b : Tcache.block) ->
        trace t
          (Trace.Cc_evict
             {
               chunk = b.vaddr;
               base = b.paddr;
               bytes = 4 * b.words;
               incoming = List.length b.incoming;
             }))
      victims;
    revert_incoming t victims;
    (* recycle the victims' stub entries right away: once their
       incoming pointers are reverted nothing references them, and the
       scrubbing below can itself evict (persistent stub growth) —
       leaving them allocated across that nested eviction would expose
       a transiently inconsistent stub table to the event hook *)
    free_block_stubs t victims;
    (* landing pads that may be live in return addresses *)
    let padtbl = Hashtbl.create 16 in
    List.iter
      (fun (b : Tcache.block) ->
        List.iter (fun (p, rv) -> Hashtbl.replace padtbl p rv) b.pads)
      victims;
    if Hashtbl.length padtbl > 0 then
      scrub_stack t ~on_evicted:(process_evicted t) padtbl;
    (* if the CPU is parked inside a dead block (invalidate between
       runs), park it on a persistent stub for its resume address *)
    List.iter
      (fun (b : Tcache.block) ->
        let pc = t.cpu.pc in
        if pc >= b.paddr && pc < b.paddr + (4 * b.words) then
          let rv = b.resume.((pc - b.paddr) asr 2) in
          t.cpu.pc <-
            persistent_ret_stub t ~on_evicted:(process_evicted t) rv)
      victims;
    if Sys.getenv_opt "SOFTCACHE_DEBUG" <> None then
      debug_check_stale t victims;
    emit_event t (Evicted n)
  end

let do_flush t =
  (* collect live pad references before tearing everything down;
     pinned blocks survive, so their pads stay valid *)
  let padtbl = Hashtbl.create 64 in
  List.iter
    (fun (b : Tcache.block) ->
      if not (Tcache.is_pinned t.tc b.id) then
        List.iter (fun (p, rv) -> Hashtbl.replace padtbl p rv) b.pads)
    (Tcache.blocks t.tc);
  let ra_ref =
    Hashtbl.find_opt padtbl (Machine.Cpu.reg t.cpu Isa.Reg.ra)
  in
  (* where must the CPU resume if it is parked in doomed code?
     (persistent return stubs survive the flush, so a pc parked on one
     needs no fixing) *)
  let pc_resume =
    let pc = t.cpu.pc in
    let in_block =
      List.find_opt
        (fun (b : Tcache.block) ->
          pc >= b.paddr && pc < b.paddr + (4 * b.words))
        (Tcache.blocks t.tc)
    in
    match in_block with
    | Some b -> Some b.resume.((pc - b.paddr) asr 2)
    | None -> None
  in
  let stack_refs = ref [] in
  let sp = max 0 (Machine.Cpu.reg t.cpu Isa.Reg.sp land lnot 3) in
  let scanned = ref 0 in
  let scan_range lo hi =
    let addr = ref (lo land lnot 3) in
    while !addr + 4 <= hi do
      incr scanned;
      (match
         Hashtbl.find_opt padtbl (Machine.Memory.read32 t.cpu.mem !addr)
       with
      | Some rv -> stack_refs := (!addr, rv) :: !stack_refs
      | None -> ());
      addr := !addr + 4
    done
  in
  scan_range sp t.stack_top;
  List.iter (fun (lo, hi) -> scan_range lo hi) t.ra_regions;
  t.stats.scrubbed_words <- t.stats.scrubbed_words + !scanned;
  charge t Trace.Scrub (t.cfg.scrub_cycles_per_word * !scanned);
  Log.debug (fun m ->
      m "flush: %d resident blocks, pc=0x%x" (Tcache.resident_blocks t.tc)
        t.cpu.pc);
  let former = Tcache.reset t.tc in
  (* pinned survivors may have patched exits into flushed blocks *)
  revert_incoming t former;
  free_block_stubs t former;
  t.stats.evicted_blocks <- t.stats.evicted_blocks + List.length former;
  if former <> [] then
    Stats.record_eviction t.stats ~cycle:t.cpu.cycles
      ~blocks:(List.length former);
  t.stats.flushes <- t.stats.flushes + 1;
  List.iter
    (fun (b : Tcache.block) ->
      trace t
        (Trace.Cc_evict
           {
             chunk = b.vaddr;
             base = b.paddr;
             bytes = 4 * b.words;
             incoming = List.length b.incoming;
           }))
    former;
  trace t (Trace.Cc_flush { chunks = List.length former });
  (* persistent return stubs survive the flush, but any that had been
     specialised into direct jumps must trap again *)
  Hashtbl.iter
    (fun _rv (paddr, k) -> write_word t paddr (enc (Isa.Instr.Trap k)))
    t.ret_stubs;
  let no_evictions victims = assert (victims = []) in
  (match ra_ref with
  | Some rv ->
    Machine.Cpu.set_reg t.cpu Isa.Reg.ra
      (persistent_ret_stub t ~on_evicted:no_evictions rv)
  | None -> ());
  List.iter
    (fun (a, rv) ->
      write_word t a (persistent_ret_stub t ~on_evicted:no_evictions rv))
    !stack_refs;
  (match pc_resume with
  | Some rv ->
    t.cpu.pc <- persistent_ret_stub t ~on_evicted:no_evictions rv
  | None -> ());
  emit_event t Flushed

let resident_oracle t v =
  match Tcache.lookup t.tc v with
  | Some b -> Some (b.id, b.paddr)
  | None -> None

let bytes_of_words (words : int array) =
  let b = Bytes.create (4 * Array.length words) in
  Array.iteri (fun i w -> Bytes.set_int32_le b (4 * i) (Int32.of_int w)) words;
  b

let words_of_bytes b =
  Array.init (Bytes.length b / 4) (fun i ->
      Int32.to_int (Bytes.get_int32_le b (4 * i)) land 0xFFFFFFFF)

(* -- CC staging buffer for prefetched chunks ------------------------- *)

(* The queue tracks arrival order for bounded FIFO discard; consumed or
   invalidated entries leave stale vaddrs behind that are skipped here. *)
let rec make_staging_room t =
  if Hashtbl.length t.staging >= t.cfg.staging_chunks then
    match Queue.take_opt t.staging_order with
    | None -> ()
    | Some old ->
      if Hashtbl.mem t.staging old then begin
        Hashtbl.remove t.staging old;
        t.stats.prefetch_wasted <- t.stats.prefetch_wasted + 1
      end;
      make_staging_room t

let stage_chunk t vaddr st_bytes st_crc =
  if not (Hashtbl.mem t.staging vaddr) then begin
    make_staging_room t;
    Hashtbl.replace t.staging vaddr { st_bytes; st_crc };
    Queue.add vaddr t.staging_order;
    t.stats.prefetch_issued <- t.stats.prefetch_issued + 1
  end

let take_staged t v =
  match Hashtbl.find_opt t.staging v with
  | None -> None
  | Some s ->
    Hashtbl.remove t.staging v;
    Some s

let drop_staged_in t ~lo ~hi =
  let doomed =
    Hashtbl.fold
      (fun v (s : staged) acc ->
        if v < hi && v + Bytes.length s.st_bytes > lo then v :: acc else acc)
      t.staging []
  in
  List.iter
    (fun v ->
      Hashtbl.remove t.staging v;
      t.stats.prefetch_wasted <- t.stats.prefetch_wasted + 1)
    doomed

(* Ship a rewritten chunk from the MC to the CC through the (possibly
   faulty) interconnect, with up to [prefetch_degree] speculative chunk
   bodies riding in the same frame. The MC stamps each segment with a
   CRC32; the CC verifies the demand segment on receipt, waits out
   dropped frames, and re-requests with exponential backoff. Prefetched
   segments are staged unverified — their CRC is checked at install
   time. All waiting, wire time and backoff are charged through the
   cost model. *)
let fetch_chunk t ~vaddr ~(words : int array) ~prefetch =
  let payload = bytes_of_words words in
  let crc = Crc32.bytes payload in
  let pf_segments =
    List.map (fun (pv, pb) -> (pv, pb, Crc32.bytes pb)) prefetch
  in
  let payloads = payload :: List.map (fun (_, pb, _) -> pb) pf_segments in
  let rec attempt tries =
    if tries > t.cfg.max_retries then begin
      t.stats.chunk_failures <- t.stats.chunk_failures + 1;
      Log.warn (fun m ->
          m "chunk v=0x%x unavailable after %d attempts" vaddr tries);
      raise (Chunk_unavailable { vaddr; attempts = tries })
    end;
    if tries > 0 then begin
      t.stats.net_retries <- t.stats.net_retries + 1;
      t.stats.max_chunk_retries <- max t.stats.max_chunk_retries tries;
      trace t (Trace.Cc_retry { chunk = vaddr; attempt = tries });
      charge t Trace.Wire (t.cfg.retry_backoff_cycles * (1 lsl (tries - 1)))
    end;
    match Netmodel.transfer_batch t.cfg.net ~payloads with
    | Error (`Dropped wasted) ->
      charge t Trace.Wire (wasted + t.cfg.timeout_cycles);
      t.stats.net_timeouts <- t.stats.net_timeouts + 1;
      attempt (tries + 1)
    | Ok (cycles, received) ->
      charge t Trace.Wire cycles;
      let demand, rest =
        match received with d :: r -> (d, r) | [] -> assert false
      in
      if Crc32.bytes demand <> crc then begin
        t.stats.crc_failures <- t.stats.crc_failures + 1;
        attempt (tries + 1)
      end
      else begin
        if tries > 0 then t.stats.recoveries <- t.stats.recoveries + 1;
        (demand, rest)
      end
  in
  let demand, rest = attempt 0 in
  List.iter2
    (fun (pv, _, pcrc) received -> stage_chunk t pv received pcrc)
    pf_segments rest;
  if pf_segments <> [] then begin
    let n = 1 + List.length pf_segments in
    t.stats.batches <- t.stats.batches + 1;
    t.stats.batch_chunks <- t.stats.batch_chunks + n;
    t.stats.max_batch_chunks <- max t.stats.max_batch_chunks n
  end;
  words_of_bytes demand

(* Which chunks should ride along with this demand miss? Static
   successors of the chunk being translated, minus anything already
   resident or staged, ranked by the attached hotness oracle (profile
   samples over the chunk's source span) when there is one. *)
let prefetch_candidates t (chunk : Chunker.t) =
  if t.cfg.prefetch_degree = 0 || t.cfg.staging_chunks = 0 then []
  else begin
    let cands =
      Chunker.successors t.image chunk
      |> List.filter (fun a ->
             Tcache.lookup t.tc a = None && not (Hashtbl.mem t.staging a))
      |> List.filter_map (fun a ->
             match Chunker.chunk_at t.image t.cfg.chunking a with
             | c -> Some c
             | exception (Chunker.Bad_address _ | Chunker.Trap_in_source _) ->
               None)
    in
    let rank (c : Chunker.t) =
      match t.prefetch_ranker with
      | None -> 0
      | Some f -> f ~lo:c.vaddr ~hi:(c.vaddr + Chunker.span_bytes c)
    in
    let keyed = List.map (fun c -> (rank c, c)) cands in
    let ranked =
      List.stable_sort (fun (ka, _) (kb, _) -> compare kb ka) keyed
    in
    let rec take n = function
      | (_, c) :: rest when n > 0 -> c :: take (n - 1) rest
      | _ -> []
    in
    take t.cfg.prefetch_degree ranked
  end

(* Rebuild a [Chunker.t] from a staged chunk body: CRC-check then
   decode. [None] means the staged copy is unusable (corrupted in
   flight) and the miss must go back to the wire. *)
let chunk_of_staged v (s : staged) =
  if Crc32.bytes s.st_bytes <> s.st_crc then None
  else
    let words = words_of_bytes s.st_bytes in
    let n = Array.length words in
    let rec decode_all i acc =
      if i = n then Some (List.rev acc)
      else
        match Isa.Encode.decode words.(i) with
        | Some instr -> decode_all (i + 1) (instr :: acc)
        | None -> None
    in
    match decode_all 0 [] with
    | Some (_ :: _ as instrs) ->
      Some { Chunker.vaddr = v; instrs = Array.of_list instrs }
    | Some [] | None -> None

let translate t v =
  trace t (Trace.Cc_miss { pc = v });
  (* a staged prefetched copy of this chunk skips the wire entirely;
     a corrupted one is discarded and the miss pays the round trip *)
  let chunk, from_staging =
    match take_staged t v with
    | None -> (Chunker.chunk_at t.image t.cfg.chunking v, false)
    | Some s -> (
      match chunk_of_staged v s with
      | Some c ->
        t.stats.prefetch_installs <- t.stats.prefetch_installs + 1;
        trace t (Trace.Cc_staged_install { chunk = v });
        (c, true)
      | None ->
        t.stats.prefetch_crc_failures <- t.stats.prefetch_crc_failures + 1;
        (Chunker.chunk_at t.image t.cfg.chunking v, false))
  in
  let words_needed = Rewriter.layout_words chunk in
  let base =
    match t.cfg.eviction with
    | Config.Fifo ->
      (* processing the evictions can grow the persistent stub area
         down into the range we just reserved (stack scrubbing creates
         return stubs); re-allocate until the placement is clear *)
      let rec alloc_loop guard =
        if guard = 0 then raise Tcache_too_small
        else
          match Tcache.alloc_fifo t.tc ~words:words_needed with
          | Error `Too_large -> raise (Chunk_too_large v)
          | Error `Full -> raise Tcache_too_small
          | Ok (p, victims) ->
            process_evicted t victims;
            if p + (4 * words_needed) <= Tcache.persist_base t.tc then p
            else alloc_loop (guard - 1)
      in
      alloc_loop 64
    | Config.Flush_all -> (
      match Tcache.alloc_append t.tc ~words:words_needed with
      | Ok p -> p
      | Error `Too_large -> raise (Chunk_too_large v)
      | Error `Full -> (
        do_flush t;
        match Tcache.alloc_append t.tc ~words:words_needed with
        | Ok p -> p
        | Error `Too_large -> raise (Chunk_too_large v)
        | Error `Full ->
          (* post-flush only pinned blocks remain in the way: a chunk
             that fits the region's capacity is being crowded out *)
          raise Tcache_too_small))
  in
  trace t (Trace.Tc_alloc { chunk = v; base; bytes = 4 * words_needed });
  let id = t.next_block_id in
  t.next_block_id <- id + 1;
  let resident =
    if t.cfg.bind_at_translate then resident_oracle t else fun _ -> None
  in
  let allocated = ref [] in
  let alloc_stub make =
    let k = add_stub t make in
    allocated := k :: !allocated;
    k
  in
  let emission =
    Rewriter.translate chunk ~block_id:id ~base ~resident ~alloc_stub
  in
  (* the rewritten words travel MC -> CC over the link (unless a staged
     prefetch already delivered the chunk body); a chunk that cannot be
     delivered intact within the retry budget must leave the cache
     state exactly as it was (minus any evictions already done) *)
  let words =
    if from_staging then emission.words
    else
      let prefetch =
        List.map
          (fun (c : Chunker.t) ->
            (c.vaddr, bytes_of_words (Array.map enc c.instrs)))
          (prefetch_candidates t chunk)
      in
      match fetch_chunk t ~vaddr:v ~words:emission.words ~prefetch with
      | w -> w
      | exception (Chunk_unavailable _ as e) ->
        List.iter
          (fun k ->
            t.free_stubs <- k :: t.free_stubs;
            t.live_stubs <- t.live_stubs - 1)
          !allocated;
        raise e
  in
  Array.iteri (fun i w -> write_word t (base + (4 * i)) w) words;
  let emitted = Array.length emission.words in
  let block =
    {
      Tcache.id;
      vaddr = v;
      paddr = base;
      words = emitted;
      orig_words = Array.length chunk.instrs;
      incoming = [];
      pads = emission.pads;
      resume = emission.resume;
      stubs = !allocated;
    }
  in
  Tcache.register t.tc block;
  List.iter
    (fun (tb, site_paddr, revert_word) ->
      match Tcache.find_by_id t.tc tb with
      | Some target_block ->
        record_incoming t target_block ~from_block:id ~site_paddr
          ~revert_word
      | None -> assert false (* resident during this translation *))
    emission.bound;
  Log.debug (fun m ->
      m "translate v=0x%x -> @0x%x (%d words, id=%d)" v base emitted id);
  t.stats.translations <- t.stats.translations + 1;
  t.stats.translated_words <- t.stats.translated_words + emitted;
  t.stats.overhead_words <- t.stats.overhead_words + emission.overhead_words;
  t.stats.max_resident_blocks <-
    max t.stats.max_resident_blocks (Tcache.resident_blocks t.tc);
  t.stats.max_occupied_bytes <-
    max t.stats.max_occupied_bytes (Tcache.occupied_bytes t.tc);
  charge t Trace.Translate
    (t.cfg.miss_fixed_cycles + (t.cfg.translate_cycles_per_word * emitted));
  trace t (Trace.Cc_translated { chunk = v; base; words = emitted });
  emit_event t (Translated v);
  block

let ensure_resident t v =
  match Tcache.lookup t.tc v with Some b -> b | None -> translate t v

let patch_exit t k ~block ~site_paddr ~kind ~revert_word
    (target_block : Tcache.block) =
  if Tcache.is_alive t.tc block then begin
    let patched =
      match kind with
      | Stub.Patch_jmp ->
        write_word t site_paddr (enc (Isa.Instr.Jmp target_block.paddr));
        record_incoming t target_block ~from_block:block ~site_paddr
          ~revert_word;
        true
      | Stub.Patch_jal ->
        write_word t site_paddr (enc (Isa.Instr.Jal target_block.paddr));
        record_incoming t target_block ~from_block:block ~site_paddr
          ~revert_word;
        true
      | Stub.Patch_br -> (
        match
          Isa.Encode.decode (Machine.Memory.read32 t.cpu.mem site_paddr)
        with
        | Some (Isa.Instr.Br (c, r1, r2, _)) ->
          let d = (target_block.paddr - site_paddr) asr 2 in
          if Isa.Encode.branch_offset_fits d then begin
            write_word t site_paddr (enc (Isa.Instr.Br (c, r1, r2, d)));
            record_incoming t target_block ~from_block:block ~site_paddr
              ~revert_word;
            true
          end
          else begin
            (* out of reach: specialise the island (where we trapped)
               into a direct jump instead *)
            let island = t.cpu.pc in
            write_word t island (enc (Isa.Instr.Jmp target_block.paddr));
            record_incoming t target_block ~from_block:block
              ~site_paddr:island
              ~revert_word:(enc (Isa.Instr.Trap k));
            true
          end
        | Some _ | None -> false)
    in
    if patched then begin
      t.stats.patches <- t.stats.patches + 1;
      charge t Trace.Patch t.cfg.patch_cycles;
      trace t
        (Trace.Cc_backpatch
           { site = site_paddr; target = target_block.paddr });
      emit_event t Patched
    end
  end

let handle_trap t k =
  (* the CPU has already added [trap_dispatch] to the cycle counter
     before handing control to us *)
  (match t.tracer with
  | Some tr -> Trace.attribute_included tr Trace.Trap t.cpu.cost.trap_dispatch
  | None -> ());
  match t.stubs.(k) with
  | Stub.Exit { block; site_paddr; kind; target; revert_word } ->
    let b = ensure_resident t target in
    patch_exit t k ~block ~site_paddr ~kind ~revert_word b;
    t.cpu.pc <- b.paddr
  | Stub.Computed { rs } ->
    t.stats.lookups <- t.stats.lookups + 1;
    charge t Trace.Lookup t.cfg.lookup_cycles;
    let target = Machine.Cpu.reg t.cpu rs in
    let b = ensure_resident t target in
    t.cpu.pc <- b.paddr
  | Stub.Icall { rd; rs; pad_paddr } ->
    t.stats.lookups <- t.stats.lookups + 1;
    charge t Trace.Lookup t.cfg.lookup_cycles;
    let target = Machine.Cpu.reg t.cpu rs in
    Machine.Cpu.set_reg t.cpu rd pad_paddr;
    let b = ensure_resident t target in
    t.cpu.pc <- b.paddr
  | Stub.Ret_stub { site_paddr; target } ->
    t.stats.lookups <- t.stats.lookups + 1;
    charge t Trace.Lookup t.cfg.lookup_cycles;
    let b = ensure_resident t target in
    (* specialise this stub into a direct jump while the target lives,
       unless a flush has re-purposed the stub area in the meantime *)
    (match Hashtbl.find_opt t.ret_stubs target with
    | Some (p, _) when p = site_paddr ->
      write_word t site_paddr (enc (Isa.Instr.Jmp b.paddr));
      (match Tcache.find_by_id t.tc b.id with
      | Some tb ->
        record_incoming t tb ~from_block:(-1) ~site_paddr
          ~revert_word:(enc (Isa.Instr.Trap k));
        t.stats.patches <- t.stats.patches + 1;
        charge t Trace.Patch t.cfg.patch_cycles;
        trace t (Trace.Cc_backpatch { site = site_paddr; target = b.paddr });
        emit_event t Patched
      | None -> ())
    | Some _ | None -> ());
    t.cpu.pc <- b.paddr

let create ?cost ?(mem_bytes = 8 * 1024 * 1024) (cfg : Config.t) image =
  let data_end =
    image.Isa.Image.data_base + Bytes.length image.Isa.Image.data
  in
  let tcache_end = cfg.tcache_base + cfg.tcache_bytes in
  if
    cfg.tcache_base < data_end && tcache_end > image.Isa.Image.data_base
  then invalid_arg "Controller.create: tcache overlaps data segment";
  if tcache_end > mem_bytes then
    invalid_arg "Controller.create: tcache outside memory";
  let mem = Machine.Memory.create mem_bytes in
  Machine.Memory.load_data mem image;
  let cpu = Machine.Cpu.create ?cost ~engine:cfg.engine ~mem ~pc:0 () in
  let t =
    {
      cfg;
      image;
      cpu;
      tc = Tcache.create ~base:cfg.tcache_base ~bytes:cfg.tcache_bytes;
      stats = Stats.create ();
      staging = Hashtbl.create 16;
      staging_order = Queue.create ();
      prefetch_ranker = None;
      stubs = [||];
      nstubs = 0;
      ret_stubs = Hashtbl.create 64;
      stack_top = mem_bytes - 16;
      next_block_id = 0;
      started = false;
      ra_regions = [];
      free_stubs = [];
      live_stubs = 0;
      on_event = None;
      tracer = None;
      chaos_drop_incoming = 0;
    }
  in
  cpu.trap_handler <- Some (fun _cpu k -> handle_trap t k);
  t

(* Attach the observer last, after any pre-runs that share the config:
   the tracer clock reads this controller's cycle counter and the
   interconnect forwards its frame events to the same ring. Recording
   only ever appends to the ring — no cycle counter, statistic or rng
   draw is touched, so the traced run is identical to an untraced
   one. *)
let attach_tracer t tr =
  t.tracer <- Some tr;
  Trace.set_clock tr (fun () -> t.cpu.cycles);
  Netmodel.set_tracer t.cfg.net (Some tr)

let start t =
  let b = ensure_resident t t.image.Isa.Image.entry in
  t.cpu.pc <- b.paddr;
  t.started <- true

let run ?fuel t =
  if not t.started then start t;
  Machine.Cpu.run ?fuel t.cpu

let invalidate t ~lo ~hi =
  Log.info (fun m -> m "invalidate [0x%x, 0x%x)" lo hi);
  (* staged copies of invalidated source ranges are stale code *)
  drop_staged_in t ~lo ~hi;
  let victims =
    List.filter
      (fun (b : Tcache.block) ->
        b.vaddr < hi && b.vaddr + (4 * b.orig_words) > lo)
      (Tcache.blocks t.tc)
  in
  List.iter (Tcache.remove t.tc) victims;
  process_evicted t victims;
  trace t (Trace.Cc_invalidate { chunks = List.length victims });
  emit_event t Invalidated

let flush t = do_flush t

let register_ra_region t ~lo ~hi =
  if lo land 3 <> 0 || hi < lo then
    invalid_arg "Controller.register_ra_region";
  t.ra_regions <- (lo, hi) :: t.ra_regions

let pin t v =
  let b = ensure_resident t v in
  Tcache.pin t.tc b

let unpin t v =
  match Tcache.lookup t.tc v with
  | Some b -> Tcache.unpin t.tc b
  | None -> ()

let is_pinned t v =
  match Tcache.lookup t.tc v with
  | Some b -> Tcache.is_pinned t.tc b.id
  | None -> false

let preload t ~lo ~hi =
  let v = ref lo in
  while !v < hi do
    let b = ensure_resident t !v in
    v := !v + (4 * b.orig_words)
  done

let metadata_bytes t = (Tcache.map_entries t.tc * 12) + (t.live_stubs * 8)

let resident t v = Tcache.lookup t.tc v <> None
