(* The controller facade. The implementation lives in cohesive
   submodules — [Cc_state] (shared record + primitives), [Cc_evict]
   (eviction, scrubbing, flush), [Cc_staging] (prefetch staging +
   transport), [Cc_translate] (the miss path under a pluggable
   replacement policy) and [Cc_trap] (trap dispatch) — and this module
   re-exports the state types and stitches the public API together.
   The record equations ([type t = Cc_state.t = {...}]) keep every
   existing [t.field] access in tests, benches and tools valid. *)

type event = Cc_state.event =
  | Translated of int
  | Evicted of int
  | Flushed
  | Invalidated
  | Patched
  | Promoted of int

type staged = Cc_state.staged = { st_bytes : Bytes.t; st_crc : int }

type link = Cc_state.link = { l_site : int; l_target : int; l_stub : int }

type superblock = Cc_state.superblock = {
  sb_head : int;
  sb_members : int list;
}

type t = Cc_state.t = {
  cfg : Config.t;
  image : Isa.Image.t;
  mutable cpu : Machine.Cpu.t;
  mutable harts : Machine.Cpu.t array;
  tc : Tcache.t;
  stats : Stats.t;
  policy : Policy.t;
  install_cycle : (int, int) Hashtbl.t;
  staging : (int, staged) Hashtbl.t;
  staging_order : int Queue.t;
  mutable prefetch_ranker : (lo:int -> hi:int -> int) option;
  mutable chain_oracle : (int -> (int * int) option) option;
  mutable dynamic_text_hint : int option;
  links : (int, link list) Hashtbl.t;
  pending_exits : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  superblocks : (int, superblock) Hashtbl.t;
  sb_of_block : (int, int) Hashtbl.t;
  mutable next_sb_id : int;
  mutable stubs : Stub.t array;
  mutable nstubs : int;
  ret_stubs : (int, int * int) Hashtbl.t;
  plt : (int, int * int) Hashtbl.t;
  gran_degraded : (int, int) Hashtbl.t;
  stack_top : int;
  mutable next_block_id : int;
  mutable started : bool;
  mutable ra_regions : (int * int) list;
  mutable free_stubs : int list;
  mutable live_stubs : int;
  mutable on_event : (event -> unit) option;
  mutable tracer : Trace.t option;
  mutable alloc_guard : int;
  mutable chaos_drop_incoming : int;
  mutable chaos_evict_bound : bool;
  mutable mc_transport :
    (vaddr:int ->
    prefetch_vaddrs:int list ->
    payloads:Bytes.t list ->
    (int * Bytes.t list, Netmodel.error) result)
    option;
  mutable mc_crc : (Bytes.t -> int) option;
}

exception Chunk_too_large = Cc_state.Chunk_too_large
exception Tcache_too_small = Cc_state.Tcache_too_small
exception Chunk_unavailable = Cc_state.Chunk_unavailable
exception Alloc_guard_exhausted = Cc_state.Alloc_guard_exhausted
exception Internal_invariant_broken = Cc_state.Internal_invariant_broken

let ensure_resident = Cc_translate.ensure_resident

let create ?cost ?(mem_bytes = 8 * 1024 * 1024) (cfg : Config.t) image =
  let data_end =
    image.Isa.Image.data_base + Bytes.length image.Isa.Image.data
  in
  let tcache_end = cfg.tcache_base + cfg.tcache_bytes in
  if cfg.tcache_base < data_end && tcache_end > image.Isa.Image.data_base
  then invalid_arg "Controller.create: tcache overlaps data segment";
  if tcache_end > mem_bytes then
    invalid_arg "Controller.create: tcache outside memory";
  let mem = Machine.Memory.create mem_bytes in
  Machine.Memory.load_data mem image;
  let cpu = Machine.Cpu.create ?cost ~engine:cfg.engine ~mem ~pc:0 () in
  let t =
    {
      cfg;
      image;
      cpu;
      harts = [||];
      tc =
        Tcache.create_sharded ~shards:cfg.shards ~base:cfg.tcache_base
          ~bytes:cfg.tcache_bytes;
      stats = Stats.create ();
      policy = Policy.create cfg.eviction;
      install_cycle = Hashtbl.create 256;
      staging = Hashtbl.create 16;
      staging_order = Queue.create ();
      prefetch_ranker = None;
      chain_oracle = None;
      dynamic_text_hint = None;
      links = Hashtbl.create 64;
      pending_exits = Hashtbl.create 64;
      superblocks = Hashtbl.create 16;
      sb_of_block = Hashtbl.create 16;
      next_sb_id = 0;
      stubs = [||];
      nstubs = 0;
      ret_stubs = Hashtbl.create 64;
      plt = Hashtbl.create 64;
      gran_degraded = Hashtbl.create 8;
      stack_top = mem_bytes - 16;
      next_block_id = 0;
      started = false;
      ra_regions = [];
      free_stubs = [];
      live_stubs = 0;
      on_event = None;
      tracer = None;
      alloc_guard = 64;
      chaos_drop_incoming = 0;
      chaos_evict_bound = false;
      mc_transport = None;
      mc_crc = None;
    }
  in
  cpu.trap_handler <- Some (fun _cpu k -> Cc_trap.handle_trap t k);
  t

(* Attach the observer last, after any pre-runs that share the config:
   the tracer clock reads this controller's cycle counter and the
   interconnect forwards its frame events to the same ring. Recording
   only ever appends to the ring — no cycle counter, statistic or rng
   draw is touched, so the traced run is identical to an untraced
   one. *)
let attach_tracer t tr =
  t.tracer <- Some tr;
  Trace.set_clock tr (fun () -> t.cpu.cycles);
  Netmodel.set_tracer t.cfg.net (Some tr)

(* Temperature is profile data threaded in the same post-create way as
   [prefetch_ranker]: the profiler lives above lib/core, so the caller
   hands us a closure over its classifier. Only trrip listens. *)
let set_temperature_oracle t f =
  let module P = (val t.policy : Policy.S) in
  P.set_temperature_oracle f

let start t =
  let b = ensure_resident t t.image.Isa.Image.entry in
  t.cpu.pc <- b.paddr;
  t.started <- true

let run ?fuel t =
  if not t.started then start t;
  Machine.Cpu.run ?fuel t.cpu

let invalidate t ~lo ~hi =
  Cc_state.Log.info (fun m -> m "invalidate [0x%x, 0x%x)" lo hi);
  (* staged copies of invalidated source ranges are stale code *)
  Cc_staging.drop_staged_in t ~lo ~hi;
  let victims =
    List.filter
      (fun (b : Tcache.block) ->
        b.vaddr < hi && b.vaddr + (4 * b.orig_words) > lo)
      (Tcache.blocks t.tc)
  in
  List.iter (Tcache.remove t.tc) victims;
  Cc_evict.process_evicted t ~reason_of:(fun _ -> Policy.Invalidated) victims;
  Cc_state.trace t (Trace.Cc_invalidate { chunks = List.length victims });
  Cc_state.emit_event t Invalidated

let flush t = Cc_evict.do_flush t

let register_ra_region t ~lo ~hi =
  if lo land 3 <> 0 || hi < lo then
    invalid_arg "Controller.register_ra_region";
  t.ra_regions <- (lo, hi) :: t.ra_regions

let pin t v =
  let b = ensure_resident t v in
  Tcache.pin t.tc b

let unpin t v =
  match Tcache.lookup t.tc v with
  | Some b -> Tcache.unpin t.tc b
  | None -> ()

let is_pinned t v =
  match Tcache.lookup t.tc v with
  | Some b -> Tcache.is_pinned t.tc b.id
  | None -> false

let preload t ~lo ~hi =
  let v = ref lo in
  while !v < hi do
    let b = ensure_resident t !v in
    v := !v + (4 * b.orig_words)
  done

let metadata_bytes t =
  (Tcache.map_entries t.tc * 12) + (t.live_stubs * 8)
  + (Hashtbl.length t.plt * 12)

let resident t v = Tcache.lookup t.tc v <> None
