(** The SoftCache controller: CC (client) + MC (server) orchestration.

    Owns the simulated embedded client — an ERISC CPU whose memory holds
    the application's data segment and the tcache region, but none of
    its code — and the server-side memory controller, which holds the
    program image and rewrites chunks on demand.

    Execution starts by translating the entry chunk. Every [Trap] the
    rewriter planted lands here:
    - unresolved direct exits are translated (an MC round trip, charged
      through the interconnect model), backpatched to point at the
      in-cache copy, and recorded as incoming pointers on the target;
    - computed jumps and indirect calls do a tcache-map lookup each
      time (the paper's ambiguous-pointer fallback);
    - persistent return stubs re-translate evicted return targets.

    Eviction unlinks a block by reverting all recorded incoming
    pointers to miss stubs and scrubs the stack: live landing-pad
    addresses in [ra] or stack slots are redirected to persistent
    return stubs ("the runtime system must know the layout of all such
    data"). Flush-all resets the whole tcache, preserving return
    continuity the same way.

    Which block dies on a miss is decided by the replacement policy
    ([Policy.create cfg.eviction], held in the [policy] field) — the
    controller itself never branches on [Config.eviction]. The
    implementation is decomposed into [Cc_state] (shared record),
    [Cc_evict], [Cc_staging], [Cc_translate] and [Cc_trap]; this module
    re-exports the types and the public API. *)

type event = Cc_state.event =
  | Translated of int  (** a chunk at this vaddr became resident *)
  | Evicted of int  (** this many blocks were just unlinked *)
  | Flushed
  | Invalidated
  | Patched  (** an exit or return stub was specialised in place *)
  | Promoted of int
      (** a hot chain was fused into a superblock of this many members *)

type staged = Cc_state.staged = {
  st_bytes : Bytes.t;  (** encoded source instruction words of the chunk *)
  st_crc : int;  (** MC-side CRC32, verified at install time *)
}
(** A prefetched chunk body parked in the CC staging buffer, not yet
    rewritten or resident. *)

type link = Cc_state.link = {
  l_site : int;  (** paddr of the patched branch/jump word *)
  l_target : int;  (** id of the block the patch jumps into *)
  l_stub : int;  (** the Exit stub the site reverts to on unpatch *)
}
(** One edge of the reverse link map: a patched direct-exit site in the
    source block, pointing tcache-direct at the target. Keyed by the
    {e source} block id in [links]; the mirror image of the target's
    [incoming] records, and audited equal to them. *)

type superblock = Cc_state.superblock = {
  sb_head : int;  (** source vaddr of the head chunk *)
  sb_members : int list;  (** member block ids, layout order *)
}
(** A profile-hot chain fused into one contiguous group allocation.
    Members remain ordinary tcache blocks; the group exists so the
    whole chain can be de-promoted (dissolved) when any member dies. *)

type t = Cc_state.t = {
  cfg : Config.t;
  image : Isa.Image.t;
  mutable cpu : Machine.Cpu.t;
      (** the CPU currently advancing under this controller. Solo runs
          never reassign it; the multi-hart shard layer points it at
          the scheduled hart so cycle charges, stack scrubs and
          parked-pc redirects land on the active hart *)
  mutable harts : Machine.Cpu.t array;
      (** every hart sharing this controller ([[||]] in solo runs; set
          by [Shard.attach]). Tcache-region code writes are mirrored
          byte-identically into each hart's private memory *)
  tc : Tcache.t;
  stats : Stats.t;
  policy : Policy.t;
      (** the replacement policy's bookkeeping, built from
          [cfg.eviction] at [create]; observes installs, controller-
          mediated block entries, evictions and flushes, and picks
          victims — see {!Policy.S} for the invariants it keeps *)
  install_cycle : (int, int) Hashtbl.t;
      (** block id -> cycle counter at install, feeding the victim-age
          histogram in [Stats]; entries die with their block *)
  staging : (int, staged) Hashtbl.t;
      (** staged prefetched chunks keyed by source vaddr; bounded by
          [Config.staging_chunks], consumed on first touch *)
  staging_order : int Queue.t;
      (** staging arrival order for bounded FIFO discard; may hold
          stale vaddrs of consumed entries (skipped lazily) *)
  mutable prefetch_ranker : (lo:int -> hi:int -> int) option;
      (** optional hotness oracle over a source byte range (typically
          [Profiler.samples_in]); ranks prefetch candidates when set *)
  mutable chain_oracle : (int -> (int * int) option) option;
      (** optional profile oracle: chunk vaddr -> hottest successor
          chunk and its edge temperature (typically built by
          [Cc_chain.oracle_of_profile]); consulted by superblock
          formation when [cfg.superblock_threshold > 0] *)
  mutable dynamic_text_hint : int option;
      (** profile-measured distinct executed code bytes
          ([Profiler.dynamic_text_bytes]), set alongside [chain_oracle]
          by profile-guided callers; the promotion churn guard's
          working-set estimate. When the rewritten working set would
          marginally exceed the tcache (the knee), superblock
          reservations are suppressed — [None] (the default) never
          suppresses *)
  links : (int, link list) Hashtbl.t;
      (** reverse link map: source block id -> its patched exit sites.
          Maintained by [record_incoming]/eviction symmetrically with
          the targets' [incoming] lists, so evicting {e either} endpoint
          finds and reverts the patch — audited by the [links] section *)
  pending_exits : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (** target vaddr -> exit-stub indices still trapping for it; the
          eager-chaining work list consulted when a chunk installs *)
  superblocks : (int, superblock) Hashtbl.t;
      (** live superblocks by group id *)
  sb_of_block : (int, int) Hashtbl.t;
      (** member block id -> its superblock's group id *)
  mutable next_sb_id : int;
  mutable stubs : Stub.t array;
  mutable nstubs : int;
  ret_stubs : (int, int * int) Hashtbl.t;
      (** return vaddr -> (stub paddr, stub index); persistent across
          flushes because program stacks may hold the addresses *)
  plt : (int, int * int) Hashtbl.t;
      (** function vaddr -> (slot paddr, stub index); the PLT-style
          indirection table of function-granularity mode
          ([Config.granularity = Function]). One persistent one-word
          slot per called function: [Trap] while the function is
          absent, [Jmp paddr] while resident. Rewritten call sites jump
          through the slot, so installing or evicting a function
          patches exactly this word — byte-reversibly, through the same
          incoming-pointer discipline as chained exits *)
  gran_degraded : (int, int) Hashtbl.t;
      (** function entry vaddr -> extent end, for functions degraded to
          block granularity (whole-body unit too large for the tcache,
          or body not contiguously decodable); misses inside a recorded
          extent chunk as basic blocks. Sticky for the run *)
  stack_top : int;
  mutable next_block_id : int;
  mutable started : bool;
  mutable ra_regions : (int * int) list;
      (** registered non-stack return-address storage, scanned by the
          scrubber alongside the stack *)
  mutable free_stubs : int list;
      (** recycled stub-table entries from evicted blocks *)
  mutable live_stubs : int;
  mutable on_event : (event -> unit) option;
      (** fired after every state-changing controller operation, with
          the cache in a consistent state — the hook the [Check.Audit]
          invariant auditor attaches to *)
  mutable tracer : Trace.t option;
      (** structured event ring attached by [attach_tracer]; [None]
          (the default) records nothing *)
  mutable alloc_guard : int;
      (** rounds the miss path will re-allocate when processing the
          evictions grows the persistent stub area into the fresh
          placement (default 64, plenty: each round strictly consumes
          residents). Exhaustion raises {!Alloc_guard_exhausted}.
          Mutable as a test hook — lower it to make the exception
          reachable without a pathological workload. *)
  mutable chaos_drop_incoming : int;
      (** test hook: silently skip the next N incoming-pointer records.
          Seeds a real bookkeeping bug (an unlinked patched exit) so
          tests can prove the auditor's invariants are not vacuous.
          Leave at 0 in production. *)
  mutable chaos_evict_bound : bool;
      (** test hook: evict the first translate-time-bound exit target
          between translation and incoming-pointer recording, breaking
          the "bound targets stay resident through [translate_one]"
          invariant so the {!Internal_invariant_broken} raise path is
          testable. Leave [false] in production. *)
  mutable mc_transport :
    (vaddr:int ->
    prefetch_vaddrs:int list ->
    payloads:Bytes.t list ->
    (int * Bytes.t list, Netmodel.error) result)
    option;
      (** server-side transport interposition. When set (a fleet MC
          multiplexing a shared link across clients — see [Fleet]),
          every demand frame dispatches through it instead of calling
          [Netmodel.transfer_batch] on [cfg.net] directly; the hook is
          handed the demand chunk's vaddr, the prefetch riders' vaddrs
          and the MC-stamped payload segments, and returns the usual
          transfer result. A coalesced delivery may carry fewer
          segments than offered (the demand segment only). [None] (the
          default) is the direct single-client path, byte- and
          draw-identical to before the hook existed. *)
  mutable mc_crc : (Bytes.t -> int) option;
      (** server-side CRC stamping hook; a fleet MC memoizes through
          its shared content-addressed chunk cache so identical content
          requested by many clients is chunked and CRC-computed once.
          [None] (the default) computes [Crc32.bytes] directly. *)
}

exception Chunk_too_large of int
(** A single chunk does not fit the configured tcache (carries the
    chunk's virtual address). *)

exception Tcache_too_small
(** The persistent stub area cannot grow any further, or pinned blocks
    crowd out every placement for a chunk that would otherwise fit. *)

exception Chunk_unavailable of { vaddr : int; attempts : int }
(** The interconnect failed to deliver a chunk intact within
    [Config.max_retries] re-requests. The cache state remains
    consistent (allocated stubs are rolled back); [Runner.cached_robust]
    surfaces this as a clean outcome rather than a crash. *)

exception
  Alloc_guard_exhausted of {
    loops : int;  (** re-allocation rounds attempted ([alloc_guard]) *)
    base : int;  (** the code region was [base, persist_base) *)
    persist_base : int;  (** the stub region was [persist_base, top) *)
    top : int;
  }
(** The miss path re-allocated [loops] times and every round the
    persistent stub area grew back over the placement. Carries both
    region bounds at the moment of exhaustion so the failure is
    diagnosable (a stub region that has consumed the whole tcache shows
    up as [persist_base] ≈ [base]). *)

exception Internal_invariant_broken of { chunk : int; detail : string }
(** A controller bookkeeping invariant failed while processing the
    chunk at this virtual address — e.g. a translate-time-bound exit
    target vanished before its incoming pointer could be recorded.
    Replaces what used to be a bare assertion, so audit-off production
    runs fail with the failing chunk identified. *)

val create :
  ?cost:Machine.Cost.t -> ?mem_bytes:int -> Config.t -> Isa.Image.t -> t
(** Build the client machine (default 8 MiB of memory: data segment +
    tcache + stack) and wire the trap handler.
    @raise Invalid_argument if the tcache region overlaps the image's
    data segment. *)

val attach_tracer : t -> Trace.t -> unit
(** Attach a structured-event tracer: its clock is bound to this
    controller's cycle counter, the interconnect forwards frame and
    fault events into the same ring, and every subsequent client-side
    charge is labelled in the tracer's cycle-attribution ledger (so
    [Trace.conserved] holds against [cpu.cycles] — checked by
    [Check.Audit] when a tracer is present). Tracing is architecturally
    invisible: it never changes cycles, statistics, or the fault rng
    draw stream ([Check.Lockstep.trace] proves this). Attach before
    [start] so the ledger covers the whole run. *)

val set_temperature_oracle :
  t -> (lo:int -> hi:int -> Policy.temperature) option -> unit
(** Attach a profile-derived temperature oracle to the replacement
    policy — the [trrip] insertion prior. A no-op on every other
    policy, so callers may attach unconditionally. Like
    [prefetch_ranker], this threads profiling-pre-run data into the
    dependency-inverted core: build the classifier with
    [Profiler.temperature_classifier] and convert its temperature type
    to {!Policy.temperature} at the call site. Attach before [start] —
    the prior is sampled when a block installs. *)

val start : t -> unit
(** Translate the entry chunk and point the CPU at it. *)

val run : ?fuel:int -> t -> Machine.Cpu.outcome
(** [start] (if not already started) then run to completion. *)

val ensure_resident : t -> int -> Tcache.block
(** Translate (or find) the chunk at a virtual address — the miss
    path, also usable for prefetching. *)

val invalidate : t -> lo:int -> hi:int -> unit
(** Evict every translated block overlapping the virtual address range
    [lo, hi) — the contract self-modifying programs must follow. *)

val flush : t -> unit
(** Invalidate the entire tcache (keeps return continuity via
    persistent stubs). *)

val register_ra_region : t -> lo:int -> hi:int -> unit
(** Register a data region that may hold return addresses — the
    paper's thread-system interface: "the current return address is
    stored in a particular register and a particular place in the
    stack frame ... any non-stack storage (e.g. thread control blocks)
    must be registered with the runtime system. The interface to the
    thread system is the only new requirement (and we have not yet
    implemented it)." This reproduction implements it: registered
    regions are scanned during eviction scrubbing and flushes, so
    programs that park return addresses in thread control blocks stay
    correct under paging.
    @raise Invalid_argument on an unaligned or inverted range. *)

val pin : t -> int -> unit
(** Pin the chunk at a virtual address: translate it if needed and
    exempt it from eviction and flushes — Section 4's "more flexible
    version of data pinning ... we can pin or fix pages in memory and
    prevent their eviction without wasting space". [invalidate] and
    persistent-stub-area growth override pins (correctness beats the
    timing hint).
    @raise Chunk_too_large / Tcache_too_small as for any translation. *)

val unpin : t -> int -> unit
(** Release a pin. No-op if the chunk is absent or unpinned. *)

val is_pinned : t -> int -> bool

val preload : t -> lo:int -> hi:int -> unit
(** Translate every chunk in the virtual address range [lo, hi) —
    fetch a whole module ahead of a mode switch so that the switch
    itself runs without misses (the Figure 2 predictability story).
    @raise Chunk_too_large if a chunk cannot fit. *)

val metadata_bytes : t -> int
(** CC-side bookkeeping footprint: tcache map entries plus *live* stub
    table entries (12 bytes per map entry, 8 per stub) plus PLT table
    entries (12 bytes each: function vaddr, slot paddr, stub index).
    Stub entries are recycled when their block is evicted, so this
    stays proportional to residency — the paper's "adjustable
    tradeoff" — rather than growing with run length. *)

val resident : t -> int -> bool
(** Is the chunk at this virtual address in the tcache? *)
