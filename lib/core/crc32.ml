(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
   the CC verifies on every chunk the MC ships over the link. Any
   single-bit corruption is guaranteed to change the digest. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc b =
  let t = Lazy.force table in
  t.((crc lxor b) land 0xFF) lxor (crc lsr 8)

let bytes ?(pos = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - pos in
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := update !crc (Char.code (Bytes.unsafe_get b i))
  done;
  !crc lxor 0xFFFFFFFF

let string s = bytes (Bytes.unsafe_of_string s)
