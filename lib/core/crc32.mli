(** CRC-32 (IEEE 802.3) over byte buffers.

    The MC stamps every chunk it ships with the digest of the rewritten
    words; the CC recomputes it on receipt and requests a retransmit on
    mismatch. Digests are 32-bit values held in non-negative OCaml
    ints. *)

val bytes : ?pos:int -> ?len:int -> Bytes.t -> int
val string : string -> int
