type reason = Victim | Collateral | Stub_growth | Invalidated | Flushed

let reason_name = function
  | Victim -> "victim"
  | Collateral -> "collateral"
  | Stub_growth -> "stub_growth"
  | Invalidated -> "invalidated"
  | Flushed -> "flushed"

let reason_names =
  List.map reason_name [ Victim; Collateral; Stub_growth; Invalidated; Flushed ]

type temperature = Hot | Warm | Cold

let temperature_name = function Hot -> "hot" | Warm -> "warm" | Cold -> "cold"

(* The TRRIP insertion mapping: hot blocks insert protected, warm at
   the usual SRRIP "long re-reference", cold already distant. *)
let rrpv_of_temperature = function Hot -> 0 | Warm -> 2 | Cold -> 3

module type S = sig
  val name : string
  val kind : [ `Evict | `Flush_all ]
  val set_temperature_oracle : (lo:int -> hi:int -> temperature) option -> unit
  val on_install : Tcache.block -> unit
  val on_entry : Tcache.block -> unit
  val on_hart_entry : hart:int -> Tcache.block -> unit
  val on_evict : reason -> Tcache.block -> unit
  val on_flush : unit -> unit
  val on_superblock : int -> Tcache.block list -> unit
  val on_superblock_evict : int -> unit
  val victim : ?shard:int -> Tcache.t -> Tcache.block option
  val resident_ids : unit -> int list
  val hart_touches : unit -> (int * int) list
  val debug_state : unit -> string
end

type t = (module S)

(* Every policy keeps (block, meta) per resident id; the differences
   are only in what [meta] is, how the hooks update it, and how
   [victim] orders it. *)

let ids_of tbl = Hashtbl.fold (fun id _ acc -> id :: acc) tbl []

(* Per-hart touch bookkeeping, shared by every policy: the multi-hart
   controller announces which hart produced each observable entry, and
   the policy keeps a per-hart counter the shard audit (and
   debug_state) can read back. Purely observational — no eviction
   decision consults it, so solo decision streams are untouched. *)
let hart_counter () =
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let touch ~hart (_ : Tcache.block) =
    Hashtbl.replace tbl hart
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl hart))
  in
  let dump () =
    List.sort compare (Hashtbl.fold (fun h n acc -> (h, n) :: acc) tbl [])
  in
  (touch, dump)

(* A block is a legal victim only if nothing makes it immovable (pins
   and read leases both do) and, under a sharded tcache, it lives in
   the arena the allocation is headed for. *)
let eligible ?shard tc id (b : Tcache.block) =
  (not (Tcache.is_pinned tc id))
  && (not (Tcache.is_leased tc id))
  &&
  match shard with
  | None -> true
  | Some s -> Tcache.shard_of_paddr tc b.paddr = s

(* [victim] scans the policy's own table, not the tcache: both views
   are audited equal, and the scan is O(resident blocks) — the same
   order the allocation sweep already pays. Pinned and leased blocks
   are skipped; ties break on the smaller key, and exact key ties on
   the smaller block id — never on Hashtbl.fold visit order, which
   depends on table history rather than on any stable property of the
   blocks. *)
let pick_min ?shard tbl ~key tc =
  Hashtbl.fold
    (fun id (b, m) best ->
      if not (eligible ?shard tc id b) then best
      else
        let k = key m in
        match best with
        | Some (kb, (bb : Tcache.block))
          when compare kb k < 0 || (compare kb k = 0 && bb.id < id) ->
          best
        | _ -> Some (k, b))
    tbl None
  |> Option.map snd

(* Which block would the circular FIFO sweep reclaim next? The first
   unpinned block whose extent ends past the sweep pointer, lowest
   placement first; when the sweep is past every block it wraps, so
   fall back to the lowest-placed unpinned block. Recency policies use
   this to decide whether deviating from the sweep is worth it at all:
   block entries are only observable at trap granularity (transfers
   along patched direct branches are invisible — the cache state is
   encoded in the branches), so most of the time a recency policy has
   *no* evidence distinguishing the sweep's candidate from any other
   block. Deviating without evidence buys nothing and costs a lot:
   placements seeded away from the sweep point fragment the region,
   evict collateral neighbours and spill landing pads into persistent
   stubs. A policy therefore returns a victim only when the sweep is
   about to kill a block with a recent observed entry. *)
let sweep_candidate ?shard tbl tc =
  let ptr = Tcache.alloc_ptr ?shard tc in
  let ahead, wrapped =
    Hashtbl.fold
      (fun id ((b : Tcache.block), m) (ahead, wrapped) ->
        if not (eligible ?shard tc id b) then (ahead, wrapped)
        else
          let ends = b.paddr + (4 * b.words) in
          let better best =
            match best with
            | Some ((bb : Tcache.block), _)
              when bb.paddr < b.paddr || (bb.paddr = b.paddr && bb.id < b.id)
              ->
              best
            | _ -> Some (b, m)
          in
          if ends > ptr then (better ahead, wrapped)
          else (ahead, better wrapped))
      tbl (None, None)
  in
  match ahead with Some c -> Some c | None -> wrapped

let fifo_like name kind : t =
  (module struct
    let name = name
    let kind = kind
    let set_temperature_oracle _ = ()
    let tbl : (int, Tcache.block * unit) Hashtbl.t = Hashtbl.create 64
    let on_install (b : Tcache.block) = Hashtbl.replace tbl b.id (b, ())
    let on_entry _ = ()
    let on_hart_entry, hart_touches = hart_counter ()
    let on_evict _ (b : Tcache.block) = Hashtbl.remove tbl b.id
    let on_flush () = ()
    let on_superblock _ _ = ()
    let on_superblock_evict _ = ()
    let victim ?shard:_ _ = None
    let resident_ids () = ids_of tbl

    let debug_state () =
      Printf.sprintf "%s: %d resident, no per-block state" name
        (Hashtbl.length tbl)
  end)

type lru_meta = {
  mutable stamp : int;  (* last observed install-or-entry tick *)
  mutable entered : int option;  (* last observed *entry* tick *)
}

let lru () : t =
  (module struct
    let name = "lru"
    let kind = `Evict
    let set_temperature_oracle _ = ()

    (* Stamps come from a logical clock ticked on every observed
       install/entry; strictly increasing, so stamps are unique and
       the min-stamp victim is deterministic. [entered] tracks entries
       alone: an entry within the last ~two sweep laps is the evidence
       [victim] requires before overriding the sweep. *)
    let tbl : (int, Tcache.block * lru_meta) Hashtbl.t = Hashtbl.create 64
    let clock = ref 0

    let tick () =
      incr clock;
      !clock

    let on_install (b : Tcache.block) =
      Hashtbl.replace tbl b.id (b, { stamp = tick (); entered = None })

    let on_entry (b : Tcache.block) =
      match Hashtbl.find_opt tbl b.id with
      | Some (_, m) ->
        m.stamp <- tick ();
        m.entered <- Some m.stamp
      | None -> ()

    let on_hart_entry, hart_touches = hart_counter ()
    let on_evict _ (b : Tcache.block) = Hashtbl.remove tbl b.id
    let on_flush () = ()
    let on_superblock _ _ = ()
    let on_superblock_evict _ = ()

    (* The clock ticks once per install or entry, so [2 * residents]
       ticks is roughly two sweep laps: long enough that a block in
       active reuse re-arms its protection, short enough that a block
       whose entries have all been patched into direct branches falls
       back to cold and the policy stops vouching for it. *)
    let window () = 2 * (Hashtbl.length tbl + 2)

    let fresh m =
      match m.entered with
      | Some e -> !clock - e <= window ()
      | None -> false

    let victim ?shard tc =
      match sweep_candidate ?shard tbl tc with
      | None -> None
      | Some (sb, sm) ->
        if not (fresh sm) then None
        else
          let lru = pick_min ?shard tbl ~key:(fun m -> m.stamp) tc in
          (match lru with
          | Some b when b.Tcache.id <> sb.Tcache.id -> Some b
          | Some _ | None -> None)

    let resident_ids () = ids_of tbl

    let debug_state () =
      let stamps =
        Hashtbl.fold
          (fun id (_, m) acc ->
            Printf.sprintf "%d@%d%s" id m.stamp
              (match m.entered with
              | Some e -> Printf.sprintf "!%d" e
              | None -> "")
            :: acc)
          tbl []
      in
      Printf.sprintf "lru: clock=%d window=%d [%s]" !clock (window ())
        (String.concat " " (List.sort compare stamps))
  end)

type rrip_meta = {
  mutable rrpv : int;  (* 2-bit re-reference prediction value *)
  mutable last_entry : int option;  (* last observed entry tick *)
  seq : int;  (* insertion order, for deterministic ties *)
}

let rrip () : t =
  (module struct
    let name = "rrip"
    let kind = `Evict
    let set_temperature_oracle _ = ()

    (* 2-bit RRPV in the SRRIP mould: insert at 2 ("long re-reference
       interval"), promote to 0 on an observed entry, evict the block
       predicted most distant. Hardware SRRIP ages every RRPV until one
       saturates; here aging is by wall-clock window instead — an entry
       older than ~two sweep laps has expired and the block reads as
       distant (RRPV 3) again. The windowed read keeps [victim] a pure
       query (the auditor calls it freely) while still forgetting
       blocks whose entries have been patched into silent direct
       branches. Ties break by insertion order, oldest first. *)
    let tbl : (int, Tcache.block * rrip_meta) Hashtbl.t = Hashtbl.create 64
    let clock = ref 0

    let tick () =
      incr clock;
      !clock

    let on_install (b : Tcache.block) =
      let s = tick () in
      Hashtbl.replace tbl b.id (b, { rrpv = 2; last_entry = None; seq = s })

    let on_entry (b : Tcache.block) =
      match Hashtbl.find_opt tbl b.id with
      | Some (_, m) ->
        m.rrpv <- 0;
        m.last_entry <- Some (tick ())
      | None -> ()

    let on_hart_entry, hart_touches = hart_counter ()
    let on_evict _ (b : Tcache.block) = Hashtbl.remove tbl b.id
    let on_flush () = ()
    let on_superblock _ _ = ()
    let on_superblock_evict _ = ()
    let window () = 2 * (Hashtbl.length tbl + 2)

    (* the aged read: promotion decays once the entry leaves the window *)
    let effective m =
      match m.last_entry with
      | Some e when !clock - e <= window () -> m.rrpv
      | Some _ -> 3
      | None -> 3

    let victim ?shard tc =
      match sweep_candidate ?shard tbl tc with
      | None -> None
      | Some (sb, sm) ->
        if effective sm >= 3 then None
        else
          (* max effective RRPV first, oldest insertion on ties — and
             only a fully distant block is worth deviating to: the
             seeded allocation restarts the sweep at the victim, so
             evicting anything with expected reuse just teleports the
             pointer for no benefit *)
          let distant =
            pick_min ?shard tbl ~key:(fun m -> (-effective m, m.seq)) tc
          in
          (match distant with
          | Some b when b.Tcache.id <> sb.Tcache.id -> (
            match Hashtbl.find_opt tbl b.id with
            | Some (_, m) when effective m >= 3 -> Some b
            | Some _ | None -> None)
          | Some _ | None -> None)

    let resident_ids () = ids_of tbl

    let debug_state () =
      let rrpvs =
        Hashtbl.fold
          (fun id (_, m) acc ->
            Printf.sprintf "%d:rrpv=%d/eff=%d,seq=%d" id m.rrpv (effective m)
              m.seq
            :: acc)
          tbl []
      in
      Printf.sprintf "rrip: clock=%d window=%d [%s]" !clock (window ())
        (String.concat " " (List.sort compare rrpvs))
  end)

type trrip_meta = {
  mutable t_rrpv : int;
  mutable t_last_entry : int option;
  t_seq : int;
  t_prior : int;  (* profile prior: the RRPV this block decays back to *)
}

let trrip () : t =
  (module struct
    let name = "trrip"
    let kind = `Evict

    (* Temperature-aware RRIP: [rrip] with one twist. Plain rrip's
       insertion RRPV is inert — [effective] reads 3 for any block
       without an in-window entry, and an entry always resets the RRPV
       to 0, so the stored insertion value is never actually observed.
       The profile prior therefore has to replace the *fallback*, not
       just the insertion value: a block with no (or an expired) entry
       reads as its temperature prior — hot 0, warm 2, cold 3 —
       instead of a hard-coded 3. Hot blocks stay protected before
       their first observed entry and after their entries have been
       patched into silent direct branches, which is exactly where
       rrip is blind. With no oracle every prior is 3 and [effective]
       collapses to rrip's: the decision stream is identical. *)
    let tbl : (int, Tcache.block * trrip_meta) Hashtbl.t = Hashtbl.create 64
    let clock = ref 0
    let oracle : (lo:int -> hi:int -> temperature) option ref = ref None
    let set_temperature_oracle f = oracle := f

    let tick () =
      incr clock;
      !clock

    (* the prior is sampled once at install: the profile is static, and
       a fixed prior keeps [victim] a pure query *)
    let prior_of (b : Tcache.block) =
      match !oracle with
      | None -> 3
      | Some f ->
        rrpv_of_temperature
          (f ~lo:b.vaddr ~hi:(b.vaddr + (4 * b.orig_words)))

    let on_install (b : Tcache.block) =
      let s = tick () in
      let p = prior_of b in
      Hashtbl.replace tbl b.id
        (b, { t_rrpv = p; t_last_entry = None; t_seq = s; t_prior = p })

    let on_entry (b : Tcache.block) =
      match Hashtbl.find_opt tbl b.id with
      | Some (_, m) ->
        m.t_rrpv <- 0;
        m.t_last_entry <- Some (tick ())
      | None -> ()

    let on_hart_entry, hart_touches = hart_counter ()
    let on_evict _ (b : Tcache.block) = Hashtbl.remove tbl b.id
    let on_flush () = ()
    let on_superblock _ _ = ()
    let on_superblock_evict _ = ()
    let window () = 2 * (Hashtbl.length tbl + 2)

    (* aged read: an in-window entry speaks for itself; otherwise the
       block decays to its profile prior rather than to "distant" *)
    let effective m =
      match m.t_last_entry with
      | Some e when !clock - e <= window () -> m.t_rrpv
      | Some _ | None -> m.t_prior

    let victim ?shard tc =
      match sweep_candidate ?shard tbl tc with
      | None -> None
      | Some (sb, sm) ->
        if effective sm >= 3 then None
        else
          (* max effective RRPV first, oldest insertion on ties — and
             the victim must read strictly colder than the candidate,
             or the seeded sweep restart costs more than the candidate
             was worth. Without an oracle effective is two-valued
             ({0,3}) and "strictly colder than a protected candidate"
             is exactly rrip's "fully distant" condition. *)
          let distant =
            pick_min ?shard tbl ~key:(fun m -> (-effective m, m.t_seq)) tc
          in
          (match distant with
          | Some b when b.Tcache.id <> sb.Tcache.id -> (
            match Hashtbl.find_opt tbl b.id with
            | Some (_, m) when effective m > effective sm -> Some b
            | Some _ | None -> None)
          | Some _ | None -> None)

    let resident_ids () = ids_of tbl

    let debug_state () =
      let rrpvs =
        Hashtbl.fold
          (fun id (_, m) acc ->
            Printf.sprintf "%d:rrpv=%d/eff=%d/prior=%d,seq=%d" id m.t_rrpv
              (effective m) m.t_prior m.t_seq
            :: acc)
          tbl []
      in
      Printf.sprintf "trrip: clock=%d window=%d oracle=%s [%s]" !clock
        (window ())
        (match !oracle with Some _ -> "yes" | None -> "no")
        (String.concat " " (List.sort compare rrpvs))
  end)

let create = function
  | Config.Fifo -> fifo_like "fifo" `Evict
  | Config.Flush_all -> fifo_like "flush" `Flush_all
  | Config.Lru -> lru ()
  | Config.Rrip -> rrip ()
  | Config.Trrip -> trrip ()
