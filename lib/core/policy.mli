(** Pluggable tcache replacement policies.

    The controller never decides *which* block dies — it asks the
    policy. A policy is a first-class module holding its own mutable
    bookkeeping, created per controller from [Config.eviction], and fed
    the stream of cache events the controller already observes:

    - {b install}: a chunk was translated and registered;
    - {b entry}: control entered a resident block through a path the
      controller mediates — a computed jump, an indirect call, a return
      stub, or an exit-stub target lookup. Patched direct branches jump
      straight into the tcache and are invisible; this is the paper's
      "cache state is encoded in the branches" trade-off, and it is what
      keeps hit tracking free of per-instruction cost;
    - {b evict / flush}: blocks left the cache, with a {!reason}.

    In return the policy answers one question on the miss path:
    {!S.victim} — which resident block should the allocation sweep be
    seeded at. [None] means "no preference": the controller continues
    the circular FIFO sweep (this is exactly the pre-refactor FIFO
    behaviour, so the re-expressed policies are cycle-identical).

    {b Invariants} (enforced by the [Check.Audit] policy section):
    - the policy's resident view ({!S.resident_ids}) equals the set of
      blocks registered in the tcache, exactly, after every event;
    - {!S.victim} never returns a pinned block;
    - {!S.victim} is a pure query: the auditor and the allocation loop
      may call it any number of times without perturbing policy state. *)

type reason =
  | Victim  (** chosen by the policy (or swept by FIFO) to make room *)
  | Collateral
      (** overlapped by a placement seeded at another block's address *)
  | Stub_growth  (** run over by the growing persistent-stub area *)
  | Invalidated  (** [Controller.invalidate] — self-modifying code *)
  | Flushed  (** whole-tcache flush *)

val reason_name : reason -> string
(** Stable lowercase name, used by the [cc_evict] trace event and the
    per-reason statistics ("victim", "collateral", "stub_growth",
    "invalidated", "flushed"). *)

val reason_names : string list
(** All valid {!reason_name} values (for schema validation). *)

type temperature = Hot | Warm | Cold
(** Profile-derived block temperature, the TRRIP classification. The
    policy layer defines its own copy of this type (rather than using
    the profiler's) because [lib/core] must not depend on
    [lib/profiler]; the glue converting one to the other lives with
    whoever attaches the oracle (CLI, bench, tests). *)

val temperature_name : temperature -> string
(** "hot" / "warm" / "cold". *)

val rrpv_of_temperature : temperature -> int
(** The TRRIP insertion mapping: hot 0, warm 2, cold 3. *)

module type S = sig
  val name : string
  (** The [Config.eviction_name] this instance was created from. *)

  val kind : [ `Evict | `Flush_all ]
  (** [`Evict]: make room by evicting blocks ([victim] seeds the
      sweep). [`Flush_all]: never evict incrementally — the controller
      flushes the whole tcache when allocation fails. *)

  val set_temperature_oracle :
    (lo:int -> hi:int -> temperature) option -> unit
  (** Attach (or detach, with [None]) a profile temperature oracle
      classifying a source address range [\[lo, hi)]. Only [trrip]
      consults it — a no-op on every other policy. Attach it before
      execution starts (the prior is sampled at install time). *)

  val on_install : Tcache.block -> unit
  (** A freshly translated block became resident. *)

  val on_entry : Tcache.block -> unit
  (** Control observably entered a resident block (hit). *)

  val on_hart_entry : hart:int -> Tcache.block -> unit
  (** Multi-hart attribution of an observable entry: hart [hart]
      entered the block. Fired by the shard layer alongside the
      controller's own [on_entry]; purely observational — no eviction
      decision may consult it (solo and 1-hart decision streams must
      stay identical). *)

  val on_evict : reason -> Tcache.block -> unit
  (** The block left the tcache. Fired on every removal path,
      including flushes (once per unpinned former resident). *)

  val on_flush : unit -> unit
  (** The whole tcache was flushed (after the per-block [on_evict]
      calls; pinned blocks survive and stay in the resident view). *)

  val on_superblock : int -> Tcache.block list -> unit
  (** A hot chain was fused: superblock [id] now groups these member
      blocks (each already announced via [on_install]). Observational —
      the members remain ordinary residents in the policy's view. *)

  val on_superblock_evict : int -> unit
  (** Superblock [id] dissolved because a member was evicted (the
      member's own [on_evict] fires separately; surviving members stay
      resident as independent blocks). *)

  val victim : ?shard:int -> Tcache.t -> Tcache.block option
  (** Which resident block should the allocator reclaim first? [None]
      = no preference, continue the FIFO sweep. Must be pure and must
      never name a pinned or leased block. Under a sharded tcache the
      allocator passes the arena it is placing into and the victim
      must live there; without [shard] every arena is considered. *)

  val resident_ids : unit -> int list
  (** The policy's view of residency, unordered — audited against the
      tcache's own block set. *)

  val hart_touches : unit -> (int * int) list
  (** Per-hart observable-entry counts [(hart, touches)], ascending by
      hart — the read-back of {!on_hart_entry}. Empty in solo runs. *)

  val debug_state : unit -> string
  (** One-line dump of the policy's internal state (stamps, RRPVs) for
      audit failure messages. *)
end

type t = (module S)

val create : Config.eviction -> t
(** Fresh policy state for one controller. The returned module closes
    over its own tables; never share an instance between controllers. *)

(** {2 Selection primitives}

    Exposed so the tie-break discipline can be unit-tested directly:
    both must be deterministic in the *contents* of the table, never in
    [Hashtbl.fold]'s visit order (which depends on insertion history). *)

val pick_min :
  ?shard:int ->
  (int, Tcache.block * 'm) Hashtbl.t ->
  key:('m -> 'k) ->
  Tcache.t ->
  Tcache.block option
(** Unpinned, unleased resident with the smallest key ([compare]
    order); exact key ties break on the smaller block id. [None] if
    every resident is immovable (or the table is empty). [shard]
    restricts candidates to one arena of a sharded tcache. *)

val sweep_candidate :
  ?shard:int ->
  (int, Tcache.block * 'm) Hashtbl.t ->
  Tcache.t ->
  (Tcache.block * 'm) option
(** The block the shard's circular FIFO allocation sweep would reclaim
    next: the lowest-placed unpinned, unleased block whose extent ends
    past the sweep pointer, else (wrapped) the lowest-placed such
    block overall; placement ties break on the smaller block id. *)
