exception Rewrite_error of string

type emission = {
  words : int array;
  bound : (int * int * int * int) list;
  pads : (int * int) list;
  resume : int array;
  overhead_words : int;
}

let err fmt = Format.kasprintf (fun s -> raise (Rewrite_error s)) fmt

let inline_words : Isa.Instr.t -> int = function
  | Br _ -> 1
  | Jal _ -> 2 (* call + landing pad *)
  | Jalr _ -> 2 (* lookup trap + landing pad *)
  | _ -> 1

(* Chunks whose last instruction can fall off the end need a
   fall-through slot. Calls continue through their landing pad. *)
let needs_fall_slot : Isa.Instr.t -> bool = function
  | Jmp _ | Jr _ | Halt | Jal _ | Jalr _ -> false
  | Br _ | _ -> true

let is_internal (c : Chunker.t) tv =
  let len = Array.length c.instrs in
  tv >= c.vaddr && tv < c.vaddr + (4 * len) && (tv - c.vaddr) land 3 = 0

(* Offsets of each source instruction in the emission, plus the
   fall-slot offset (-1 if none) and the first island offset.
   [plt_of], when given, is the PLT slot map of function-granularity
   mode: an external [Jal] whose target has a slot calls through it
   directly and needs no island. *)
let layout ?(plt_of = fun _ -> None) (c : Chunker.t) =
  let len = Array.length c.instrs in
  let off = Array.make len 0 in
  let pos = ref 0 in
  for i = 0 to len - 1 do
    off.(i) <- !pos;
    pos := !pos + inline_words c.instrs.(i)
  done;
  let fall_off = if needs_fall_slot c.instrs.(len - 1) then !pos else -1 in
  if fall_off >= 0 then incr pos;
  let islands_start = !pos in
  (* islands: one per Br/Jal with an external target (minus PLT calls) *)
  let n_islands = ref 0 in
  Array.iteri
    (fun idx i ->
      let vi = c.vaddr + (4 * idx) in
      match (i : Isa.Instr.t) with
      | Br (_, _, _, boff) when not (is_internal c (vi + (4 * boff))) ->
        incr n_islands
      | Jal tv when (not (is_internal c tv)) && plt_of tv = None ->
        incr n_islands
      | _ -> ())
    c.instrs;
  (off, fall_off, islands_start, islands_start + !n_islands)

let layout_words ?plt_of c =
  let _, _, _, total = layout ?plt_of c in
  total

let fits = Isa.Encode.branch_offset_fits
let enc = Isa.Encode.encode

let translate ?(plt_of = fun _ -> None) (c : Chunker.t) ~block_id ~base
    ~resident ~alloc_stub =
  let len = Array.length c.instrs in
  let off, fall_off, islands_start, total = layout ~plt_of c in
  let words = Array.make total (enc Isa.Instr.Nop) in
  (* source vaddr at which execution can safely resume for each emitted
     word; pads resume at their return target, islands at the branch
     target control had already committed to *)
  let resume = Array.make total (c.vaddr + (4 * len)) in
  let bound = ref [] in
  let pads = ref [] in
  let next_island = ref islands_start in
  let off_of tv = off.((tv - c.vaddr) lsr 2) in
  let paddr_of o = base + (4 * o) in
  let internal_branch_off oi tv =
    let d = off_of tv - oi in
    if not (fits d) then err "internal branch offset %d does not fit" d;
    d
  in
  (* A word-slot exit (fall slots, pads, plain jumps): bind directly if
     the target is resident, otherwise plant a trap. *)
  let emit_word_slot o target =
    resume.(o) <- target;
    let site = paddr_of o in
    let k =
      alloc_stub (fun k ->
          Stub.Exit
            {
              block = block_id;
              site_paddr = site;
              kind = Stub.Patch_jmp;
              target;
              revert_word = enc (Isa.Instr.Trap k);
            })
    in
    match resident target with
    | Some (tb, tp) ->
      words.(o) <- enc (Isa.Instr.Jmp tp);
      bound := (tb, site, enc (Isa.Instr.Trap k), k) :: !bound
    | None -> words.(o) <- enc (Isa.Instr.Trap k)
  in
  let emit_pad o ret_vaddr ~ret_internal =
    pads := (paddr_of o, ret_vaddr) :: !pads;
    resume.(o) <- ret_vaddr;
    if ret_internal then
      words.(o) <- enc (Isa.Instr.Jmp (paddr_of (off_of ret_vaddr)))
    else emit_word_slot o ret_vaddr
  in
  Array.iteri
    (fun idx i ->
      let vi = c.vaddr + (4 * idx) in
      let oi = off.(idx) in
      resume.(oi) <- vi;
      let site = paddr_of oi in
      match (i : Isa.Instr.t) with
      | Trap _ -> assert false (* rejected by the chunker *)
      | Br (cond, r1, r2, boff) ->
        let tv = vi + (4 * boff) in
        if is_internal c tv then
          words.(oi) <-
            enc (Isa.Instr.Br (cond, r1, r2, internal_branch_off oi tv))
        else begin
          let io = !next_island in
          incr next_island;
          resume.(io) <- tv;
          let to_island = Isa.Instr.Br (cond, r1, r2, io - oi) in
          if not (fits (io - oi)) then err "island out of branch range";
          let k =
            alloc_stub (fun _k ->
                Stub.Exit
                  {
                    block = block_id;
                    site_paddr = site;
                    kind = Stub.Patch_br;
                    target = tv;
                    revert_word = enc to_island;
                  })
          in
          words.(io) <- enc (Isa.Instr.Trap k);
          match resident tv with
          | Some (tb, tp) when fits ((tp - site) asr 2) ->
            words.(oi) <-
              enc (Isa.Instr.Br (cond, r1, r2, (tp - site) asr 2));
            bound := (tb, site, enc to_island, k) :: !bound
          | Some _ | None -> words.(oi) <- enc to_island
        end
      | Jmp tv ->
        if is_internal c tv then
          words.(oi) <- enc (Isa.Instr.Jmp (paddr_of (off_of tv)))
        else emit_word_slot oi tv
      | Jal tv ->
        let rv = vi + 4 in
        let ret_internal = idx < len - 1 in
        if is_internal c tv then
          words.(oi) <- enc (Isa.Instr.Jal (paddr_of (off_of tv)))
        else begin
          match plt_of tv with
          | Some slot ->
            (* function-granularity call: link to the pad as usual, jump
               through the callee's PLT slot — the slot is the only word
               the controller patches, so this site never reverts *)
            words.(oi) <- enc (Isa.Instr.Jal slot)
          | None -> (
            let io = !next_island in
            incr next_island;
            resume.(io) <- tv;
            let to_island = Isa.Instr.Jal (paddr_of io) in
            let k =
              alloc_stub (fun _k ->
                  Stub.Exit
                    {
                      block = block_id;
                      site_paddr = site;
                      kind = Stub.Patch_jal;
                      target = tv;
                      revert_word = enc to_island;
                    })
            in
            words.(io) <- enc (Isa.Instr.Trap k);
            match resident tv with
            | Some (tb, tp) ->
              words.(oi) <- enc (Isa.Instr.Jal tp);
              bound := (tb, site, enc to_island, k) :: !bound
            | None -> words.(oi) <- enc to_island)
        end;
        emit_pad (oi + 1) rv ~ret_internal
      | Jalr (rd, rs) ->
        let rv = vi + 4 in
        let k =
          alloc_stub (fun _k ->
              Stub.Icall { rd; rs; pad_paddr = paddr_of (oi + 1) })
        in
        words.(oi) <- enc (Isa.Instr.Trap k);
        emit_pad (oi + 1) rv ~ret_internal:(idx < len - 1)
      | Jr rs when Isa.Reg.equal rs Isa.Reg.ra ->
        (* procedure return: [ra] holds a landing-pad physical address *)
        words.(oi) <- enc i
      | Jr rs ->
        let k = alloc_stub (fun _k -> Stub.Computed { rs }) in
        words.(oi) <- enc (Isa.Instr.Trap k)
      | Halt | Alu _ | Alui _ | Lui _ | Ld _ | St _ | Ldb _ | Stb _ | Out _
      | Nop ->
        words.(oi) <- enc i)
    c.instrs;
  if fall_off >= 0 then emit_word_slot fall_off (c.vaddr + (4 * len));
  assert (!next_island = total);
  { words; bound = !bound; pads = !pads; resume; overhead_words = total - len }
