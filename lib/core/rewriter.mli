(** The dynamic binary rewriter (MC side).

    Translates one chunk into tcache words, specialising the cache
    tag checks away: direct control transfers whose targets are already
    resident are bound straight to their in-cache copies; unresolved
    exits become [Trap] miss stubs that the controller patches on first
    use; ambiguous pointers (computed jumps, indirect calls) become
    permanent runtime-lookup traps.

    Emitted layout of a chunk with [n] source instructions:
    {v
    [ rewritten instructions, 1-2 words each ]
    [ fall-through slot, if the chunk can run off its end ]
    [ branch/call islands, one word per unresolved direct exit ]
    v}
    - a conditional branch keeps its own word; its island holds the
      miss trap the branch aims at until the taken target is bound;
    - [Jal] occupies two words: the call itself and the return landing
      pad directly after it (so the link register naturally points at
      the pad) — the ARM prototype's "redirector stub";
    - [Jalr] becomes a lookup trap plus a landing pad;
    - [Jr ra] is a procedure return and is copied verbatim: return
      addresses always hold pad addresses, so returns run at full speed
      with no tag check;
    - any other [Jr] becomes a permanent hash-lookup trap.

    The "two new instructions per translated basic block" of the
    SPARC prototype are the fall-through slot plus the island (or pad)
    of the block's terminator. *)

exception Rewrite_error of string
(** An intra-chunk branch offset does not fit its field (chunk too
    large) — translate at finer granularity instead. *)

type emission = {
  words : int array;  (** encoded tcache words, in placement order *)
  bound : (int * int * int * int) list;
      (** (target block id, site paddr, revert word, stub index) for
          every exit bound directly at translation time; the controller
          records these as incoming pointers on the target blocks and as
          links in the reverse link map *)
  pads : (int * int) list;  (** (pad paddr, return vaddr) *)
  resume : int array;
      (** for each emitted word, the source virtual address at which
          execution can correctly resume if the CPU is parked on that
          word when the block is invalidated *)
  overhead_words : int;  (** words beyond the source instruction count *)
}

val layout_words : ?plt_of:(int -> int option) -> Chunker.t -> int
(** Emitted size of a chunk, computable before placement (it does not
    depend on cache state). [plt_of] is the function-granularity PLT
    slot map: an external [Jal] whose target has a slot needs no call
    island, so it must be the same map later given to {!translate}. *)

val translate :
  ?plt_of:(int -> int option) ->
  Chunker.t ->
  block_id:int ->
  base:int ->
  resident:(int -> (int * int) option) ->
  alloc_stub:((int -> Stub.t) -> int) ->
  emission
(** Rewrite a chunk for placement at physical address [base].
    [resident v] returns [(block id, paddr)] for chunks already in the
    tcache. [alloc_stub make] allocates a stub-table index [k] and
    stores [make k]. [plt_of tv], when it returns a slot paddr, turns
    an external [Jal tv] into a direct call through that PLT slot: no
    island, no exit stub, and the call site itself is never patched —
    only the controller-owned slot word is.
    @raise Rewrite_error as above. *)
