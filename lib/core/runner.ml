type result = {
  outcome : Machine.Cpu.outcome;
  outputs : int list;
  cycles : int;
  retired : int;
}

let of_cpu outcome (cpu : Machine.Cpu.t) =
  {
    outcome;
    outputs = Machine.Cpu.outputs cpu;
    cycles = cpu.cycles;
    retired = cpu.retired;
  }

let native ?cost ?fuel img =
  let cpu = Machine.Cpu.of_image ?cost img in
  let outcome = Machine.Cpu.run ?fuel cpu in
  of_cpu outcome cpu

let cached ?cost ?fuel cfg img =
  let ctrl = Controller.create ?cost cfg img in
  let outcome = Controller.run ?fuel ctrl in
  (of_cpu outcome ctrl.cpu, ctrl)

let slowdown ~(native : result) ~(cached : result) =
  if native.cycles = 0 then nan
  else float_of_int cached.cycles /. float_of_int native.cycles

type status =
  | Finished of Machine.Cpu.outcome
  | Unavailable of { vaddr : int; attempts : int }

type robust = {
  status : status;
  outputs : int list;
  cycles : int;
  retired : int;
}

let cached_robust ?cost ?fuel ?(prepare = fun (_ : Controller.t) -> ()) cfg
    img =
  let ctrl = Controller.create ?cost cfg img in
  prepare ctrl;
  let status =
    match Controller.run ?fuel ctrl with
    | outcome -> Finished outcome
    | exception Controller.Chunk_unavailable { vaddr; attempts } ->
      Unavailable { vaddr; attempts }
  in
  ( {
      status;
      outputs = Machine.Cpu.outputs ctrl.cpu;
      cycles = ctrl.cpu.cycles;
      retired = ctrl.cpu.retired;
    },
    ctrl )

let pp_status ppf = function
  | Finished Machine.Cpu.Halted -> Format.pp_print_string ppf "halted"
  | Finished Machine.Cpu.Out_of_fuel ->
    Format.pp_print_string ppf "out of fuel"
  | Unavailable { vaddr; attempts } ->
    Format.fprintf ppf "chunk 0x%x unavailable after %d attempts" vaddr
      attempts
