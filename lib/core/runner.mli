(** Convenience drivers used by tests, examples and benches. *)

type result = {
  outcome : Machine.Cpu.outcome;
  outputs : int list;  (** the program's observable output *)
  cycles : int;
  retired : int;
}

val native : ?cost:Machine.Cost.t -> ?fuel:int -> Isa.Image.t -> result
(** Run the image directly, with no caching — the paper's "ideal"
    baseline. *)

val cached :
  ?cost:Machine.Cost.t ->
  ?fuel:int ->
  Config.t ->
  Isa.Image.t ->
  result * Controller.t
(** Run the image under the SoftCache; also returns the controller for
    statistics inspection. *)

val slowdown : native:result -> cached:result -> float
(** Relative execution time, cached cycles / native cycles — the Fig. 5
    metric. *)

type status =
  | Finished of Machine.Cpu.outcome
  | Unavailable of { vaddr : int; attempts : int }
      (** the interconnect never delivered this chunk intact within the
          retry budget; execution stopped cleanly *)

type robust = {
  status : status;
  outputs : int list;  (** outputs produced up to the stop point *)
  cycles : int;
  retired : int;
}

val cached_robust :
  ?cost:Machine.Cost.t ->
  ?fuel:int ->
  ?prepare:(Controller.t -> unit) ->
  Config.t ->
  Isa.Image.t ->
  robust * Controller.t
(** Like [cached], but a [Controller.Chunk_unavailable] raised by a
    faulty interconnect is surfaced as a clean [Unavailable] status
    instead of an exception. [prepare] runs on the fresh controller
    before execution starts (install an auditor, pin chunks, ...). *)

val pp_status : Format.formatter -> status -> unit
