(* The multi-hart execution layer: N CPU hart contexts advancing under
   a deterministic seeded interleaving scheduler, sharing one
   controller (and through it the tcache, sharded or not).

   Memory model. Each hart owns a private [Machine.Memory] — its own
   data segment and stack — while every write into the tcache region
   is mirrored byte-identically into all hart memories by
   [Cc_state.write_word] (through [Memory.write32], so per-hart decode
   caches invalidate). That simulates coherent shared code over
   private data, and makes "each hart's outputs equal the native run's
   outputs" a checkable invariant.

   Concurrency model. Simulated, not host-parallel: exactly one hart
   advances at a time, under quantum slices picked by the seeded
   scheduler — the same seed replays the same interleaving
   byte-identically. Controller work a hart triggers (translation,
   patching, scrubbing) is charged to that hart's own clock by
   pointing [ctrl.cpu] at it while it runs. The hart clocks stay
   mutually comparable because the scheduler favours the laggard
   (windowed min-clock), which is what makes cross-hart timestamps
   (fill completion, MC busy-until) meaningful as a virtual global
   time.

   Concurrent misses are an explicit state machine per chunk:

     Absent -> Requested(hart) -> Filling -> Resident

   A miss with no in-flight fill takes ownership ([Requested]), waits
   for the shared MC link if busy ([mc_free_at]), transitions to
   [Filling] for the wire fetch + translation, and stamps the fill
   [Resident] with its completion time. A duplicate miss from another
   hart whose clock is before that completion time *coalesces*: it
   waits until the fill lands and re-checks residency — no second wire
   request. Every fill has exactly one owner ([Audit.shards]).

   Lease discipline. Only *suspended* harts hold read leases — one per
   hart, on the resident block containing its parked pc — making those
   blocks immovable for the allocation sweep exactly like pins. The
   *active* hart holds no lease: it is the one mutating the cache, and
   its parked-pc safety is the controller's existing resume-redirect
   discipline. Flush and invalidation override leases (the writer
   takes the arenas by force; [Cc_evict] redirects every parked hart
   through its resume address). A 1-hart run therefore never has a
   lease alive while controller code runs, which is one half of the
   cycle-identity argument [Check.Lockstep.shards] proves; the other
   half is that a lone hart's fills always complete before its next
   miss ([f_done <= cycles]), so no wait is ever charged. *)

open Cc_state

type fill_state = Requested | Filling | Resident

type fill = {
  f_vaddr : int;
  f_owner : int;
  mutable f_state : fill_state;
  mutable f_done : int;
      (* owner-clock completion time; [max_int] while in flight *)
}

type hart = {
  h_id : int;
  h_cpu : Machine.Cpu.t;
  mutable h_lease : Tcache.block option;
      (* the block this hart's read lease is on, while suspended *)
  mutable h_run : int;  (* cycles spent running (incl. controller work) *)
  mutable h_wait_fill : int;  (* cycles suspended on other harts' fills *)
  mutable h_wait_mc : int;  (* cycles waiting for the MC link to free *)
  mutable h_fills : int;  (* fills this hart owned *)
  mutable h_joins : int;  (* fills this hart coalesced onto *)
}

type t = {
  ctrl : Cc_state.t;
  harts : hart array;
  sched : Machine.Sched.t;
  fills : (int, fill) Hashtbl.t;  (* chunk vaddr -> latest fill *)
  mutable mc_free_at : int;  (* virtual time the shared MC link frees *)
  mutable started : bool;
  mutable active : bool;
      (* a hart is being advanced under [start]/[run]'s own ledger
         bookkeeping; controller events arriving while this is false
         come from an external op (flush / invalidate / preload
         between runs) whose charge the ledger must fold in itself *)
}

let state_name = function
  | Requested -> "requested"
  | Filling -> "filling"
  | Resident -> "resident"

(* ---- hart construction ----------------------------------------- *)

let block_at (t : t) pc =
  List.find_opt
    (fun (b : Tcache.block) -> pc >= b.paddr && pc < b.paddr + (4 * b.words))
    (Tcache.blocks t.ctrl.tc)

(* Charge a wait by advancing the hart's clock to [until]. No trace
   category — waits are idle time, accounted by the per-hart ledger
   ([h_run + h_wait_fill + h_wait_mc = cycles]) rather than by the
   solo trace conservation (which Audit skips in multi-hart runs). *)
let wait_until (h : hart) until = h.h_cpu.cycles <- until

(* The miss front end: residency / in-flight-fill resolution for one
   target vaddr, before delegating to the ordinary trap path. Returns
   the fill this hart now owns, if any.

   Execution order and virtual time disagree here, deliberately: the
   simulation runs one hart at a time, so the owner's fill is already
   complete (and the chunk resident) by the time another hart's
   duplicate miss executes. Whether that later hart *coalesces* is
   decided in virtual time — if its clock is still before the fill's
   completion stamp, it arrived while the fill was in flight, joins
   it, and waits out the remainder; no second wire message. A hart
   arriving after the stamp simply hits. *)
let acquire t (h : hart) v =
  match Tcache.lookup t.ctrl.tc v with
  | Some _ ->
    (match Hashtbl.find_opt t.fills v with
    | Some f when f.f_done > h.h_cpu.cycles ->
      (* duplicate miss in virtual time: join the in-flight fill *)
      let wait = f.f_done - h.h_cpu.cycles in
      h.h_wait_fill <- h.h_wait_fill + wait;
      h.h_joins <- h.h_joins + 1;
      t.ctrl.stats.fills_coalesced <- t.ctrl.stats.fills_coalesced + 1;
      t.ctrl.stats.fill_wait_cycles <- t.ctrl.stats.fill_wait_cycles + wait;
      wait_until h f.f_done;
      trace t.ctrl (Trace.Sh_coalesce { hart = h.h_id; chunk = v; wait })
    | _ -> ());
    None
  | None ->
    (* genuinely absent (never filled, or evicted since): this hart
       owns a fresh fill *)
    let f =
      { f_vaddr = v; f_owner = h.h_id; f_state = Requested; f_done = max_int }
    in
    Hashtbl.replace t.fills v f;
    (* one MC, one link: a demand fetch serializes behind whatever the
       MC is still serving for another hart *)
    let mc_wait = max 0 (t.mc_free_at - h.h_cpu.cycles) in
    if mc_wait > 0 then begin
      h.h_wait_mc <- h.h_wait_mc + mc_wait;
      t.ctrl.stats.mc_wait_cycles <- t.ctrl.stats.mc_wait_cycles + mc_wait;
      wait_until h t.mc_free_at
    end;
    f.f_state <- Filling;
    h.h_fills <- h.h_fills + 1;
    t.ctrl.stats.fills <- t.ctrl.stats.fills + 1;
    trace t.ctrl (Trace.Sh_fill { hart = h.h_id; chunk = v; wait = mc_wait });
    Some f

let finish_fill t (h : hart) = function
  | None -> ()
  | Some f ->
    f.f_state <- Resident;
    f.f_done <- h.h_cpu.cycles;
    t.mc_free_at <- h.h_cpu.cycles

(* Which chunk a trap is about: derivable for every stub kind. The
   register-indirect kinds read the register before [Cc_trap] runs —
   [Icall] writes [rd] only afterwards, so the read is safe. *)
let stub_target t (h : hart) k =
  match t.ctrl.stubs.(k) with
  | Stub.Exit { target; _ } -> target
  | Stub.Computed { rs } -> Machine.Cpu.reg h.h_cpu rs
  | Stub.Icall { rs; _ } -> Machine.Cpu.reg h.h_cpu rs
  | Stub.Ret_stub { target; _ } -> target
  | Stub.Plt { target; _ } -> target

let on_trap t (h : hart) k =
  t.ctrl.cpu <- h.h_cpu;
  let v = stub_target t h k in
  let fill = acquire t h v in
  Cc_trap.handle_trap t.ctrl k;
  finish_fill t h fill;
  (* per-hart policy attribution of the entry (purely observational —
     solo and 1-hart decision streams must stay identical) *)
  match Tcache.lookup t.ctrl.tc v with
  | Some b ->
    let module P = (val t.ctrl.policy : Policy.S) in
    P.on_hart_entry ~hart:h.h_id b
  | None -> ()

let attach (ctrl : Cc_state.t) =
  if ctrl.started then
    invalid_arg "Shard.attach: attach before the controller starts";
  if Array.length ctrl.harts > 0 then
    invalid_arg "Shard.attach: controller already has harts attached";
  let n = ctrl.cfg.harts in
  let mem_bytes = Machine.Memory.size ctrl.cpu.mem in
  let harts =
    Array.init n (fun i ->
        let cpu =
          if i = 0 then ctrl.cpu (* hart 0 is the controller's own CPU *)
          else begin
            let mem = Machine.Memory.create mem_bytes in
            Machine.Memory.load_data mem ctrl.image;
            (* replicate whatever already landed in the tcache region
               (pre-attach preloads write through hart 0 only) *)
            let lo = ctrl.cfg.tcache_base in
            let hi = lo + ctrl.cfg.tcache_bytes in
            let addr = ref lo in
            while !addr < hi do
              let w = Machine.Memory.read32 ctrl.cpu.mem !addr in
              if w <> 0 then Machine.Memory.write32 mem !addr w;
              addr := !addr + 4
            done;
            Machine.Cpu.create ~cost:ctrl.cpu.cost ~engine:ctrl.cfg.engine
              ~mem ~pc:0 ()
          end
        in
        {
          h_id = i;
          h_cpu = cpu;
          h_lease = None;
          h_run = 0;
          h_wait_fill = 0;
          h_wait_mc = 0;
          h_fills = 0;
          h_joins = 0;
        })
  in
  ctrl.harts <- Array.map (fun h -> h.h_cpu) harts;
  let t =
    {
      ctrl;
      harts;
      sched =
        Machine.Sched.create ~window:ctrl.cfg.quantum ctrl.cfg.sched_seed;
      fills = Hashtbl.create 64;
      mc_free_at = 0;
      started = false;
      active = false;
    }
  in
  Array.iter
    (fun h -> h.h_cpu.trap_handler <- Some (fun _cpu k -> on_trap t h k))
    harts;
  (* blocks can die under a lease — flush, invalidation and persistent
     stub growth override it by design. The tcache entry and the parked
     pc are already fixed by [Cc_evict] when the event fires; here we
     drop the hart-side record so it never dangles on a dead block. *)
  let prev = ctrl.on_event in
  ctrl.on_event <-
    Some
      (fun ev ->
        (match prev with Some f -> f ev | None -> ());
        (* an external op charged cycles to the last active hart's
           counter outside any quantum: fold them into its run ledger
           so [h_run + waits = cycles] keeps conserving *)
        if not t.active then
          Array.iter
            (fun h ->
              if h.h_cpu == ctrl.cpu then
                h.h_run <- h.h_cpu.cycles - h.h_wait_fill - h.h_wait_mc)
            harts;
        match ev with
        | Evicted _ | Flushed | Invalidated ->
          Array.iter
            (fun h ->
              match h.h_lease with
              | Some b when not (Tcache.is_alive ctrl.tc b.Tcache.id) ->
                h.h_lease <- None
              | Some _ | None -> ())
            harts
        | Translated _ | Patched | Promoted _ -> ());
  t

(* ---- lease discipline at scheduling boundaries ------------------ *)

let suspend t (h : hart) =
  if not h.h_cpu.halted then
    match block_at t h.h_cpu.pc with
    | Some b ->
      Tcache.lease t.ctrl.tc b;
      h.h_lease <- Some b
    | None -> h.h_lease <- None

let resume t (h : hart) =
  (match h.h_lease with
  | Some b ->
    Tcache.release t.ctrl.tc b;
    h.h_lease <- None
  | None -> ());
  t.ctrl.cpu <- h.h_cpu

(* ---- the run loop ----------------------------------------------- *)

(* Bring every hart to the entry point, through the same fill state
   machine as any other miss: hart 0 (first in id order) owns the
   entry fill, the rest coalesce onto it at time 0. *)
let start t =
  if t.started then invalid_arg "Shard.start: already started";
  let entry = t.ctrl.image.Isa.Image.entry in
  t.active <- true;
  Array.iter
    (fun h ->
      t.ctrl.cpu <- h.h_cpu;
      let before = h.h_cpu.cycles in
      let before_wait = h.h_wait_fill + h.h_wait_mc in
      let fill = acquire t h entry in
      let b = Cc_translate.ensure_resident t.ctrl entry in
      finish_fill t h fill;
      h.h_cpu.pc <- b.Tcache.paddr;
      h.h_run <-
        h.h_run
        + (h.h_cpu.cycles - before)
        - (h.h_wait_fill + h.h_wait_mc - before_wait))
    t.harts;
  t.active <- false;
  t.ctrl.started <- true;
  t.started <- true;
  (* establish the suspension leases: from here on, outside [run]'s
     active quantum every parked hart holds its read lease *)
  Array.iter (fun h -> suspend t h) t.harts

let run ?(fuel = max_int) t =
  if not t.started then start t;
  let fuel_left = Array.map (fun _ -> fuel) t.harts in
  let runnable () =
    Array.fold_left
      (fun acc h ->
        if h.h_cpu.halted || fuel_left.(h.h_id) <= 0 then acc
        else (h.h_id, h.h_cpu.cycles) :: acc)
      [] t.harts
  in
  let quantum = t.ctrl.cfg.quantum in
  let rec loop () =
    match runnable () with
    | [] -> ()
    | rs ->
      let h = t.harts.(Machine.Sched.pick t.sched rs) in
      resume t h;
      t.active <- true;
      let before_ret = h.h_cpu.retired in
      let before_cyc = h.h_cpu.cycles in
      let before_wait = h.h_wait_fill + h.h_wait_mc in
      ignore
        (Machine.Cpu.run ~fuel:(min quantum fuel_left.(h.h_id)) h.h_cpu);
      fuel_left.(h.h_id) <-
        fuel_left.(h.h_id) - (h.h_cpu.retired - before_ret);
      h.h_run <-
        h.h_run
        + (h.h_cpu.cycles - before_cyc)
        - (h.h_wait_fill + h.h_wait_mc - before_wait);
      t.active <- false;
      suspend t h;
      loop ()
  in
  loop ();
  if Array.for_all (fun h -> h.h_cpu.halted) t.harts then Machine.Cpu.Halted
  else Machine.Cpu.Out_of_fuel

(* ---- introspection ---------------------------------------------- *)

let controller t = t.ctrl
let harts t = Array.to_list t.harts
let hart t i = t.harts.(i)
let mc_free_at t = t.mc_free_at

let fills t =
  List.sort
    (fun f1 f2 -> compare (f1.f_vaddr, f1.f_done) (f2.f_vaddr, f2.f_done))
    (Hashtbl.fold (fun _ f acc -> f :: acc) t.fills [])

let in_flight t =
  List.filter (fun f -> f.f_state <> Resident) (fills t)

let total_cycles t =
  Array.fold_left (fun acc h -> acc + h.h_cpu.cycles) 0 t.harts

let makespan t =
  Array.fold_left (fun acc h -> max acc h.h_cpu.cycles) 0 t.harts

let pp_hart ppf (h : hart) =
  Format.fprintf ppf
    "hart %d: cycles=%d retired=%d run=%d wait-fill=%d wait-mc=%d fills=%d \
     joins=%d%s"
    h.h_id h.h_cpu.cycles h.h_cpu.retired h.h_run h.h_wait_fill h.h_wait_mc
    h.h_fills h.h_joins
    (if h.h_cpu.halted then " halted" else "")

let pp ppf t =
  Format.fprintf ppf "%d harts, %d fills (%d coalesced), mc-free-at=%d"
    (Array.length t.harts) t.ctrl.stats.fills t.ctrl.stats.fills_coalesced
    t.mc_free_at;
  Array.iter (fun h -> Format.fprintf ppf "@.%a" pp_hart h) t.harts
