(** Multi-hart execution over one controller (the sharded CC).

    [attach] wraps a freshly created {!Controller} (before it starts)
    with [Config.harts] CPU hart contexts: hart 0 is the controller's
    own CPU; each further hart gets a private memory (own data segment
    and stack) whose tcache region is kept byte-identical with every
    other hart's by controller write mirroring — coherent shared code
    over private data. All harts run the same image from its entry
    (SPMD).

    [run] advances the harts in quantum slices under a deterministic
    seeded interleaving scheduler ([Config.sched_seed] /
    [Config.quantum]); the same seed replays the same interleaving
    byte-identically. Concurrent misses go through an explicit
    per-chunk fill state machine ([Absent -> Requested(hart) ->
    Filling -> Resident]) with single-owner fills, MC-link
    serialization, and duplicate misses coalescing onto in-flight
    fills instead of re-requesting over the wire. Suspended harts hold
    read leases on the tcache blocks their pc is parked in, which the
    allocation sweep treats as immovable; flush and invalidation
    override leases and redirect the parked harts.

    A 1-hart run is cycle-identical to the plain solo controller —
    the active hart holds no lease while controller code runs, and a
    lone hart's fills always complete before its next miss, so no wait
    is ever charged. [Check.Lockstep.shards] proves this registry-wide;
    [Check.Audit.shards] checks the fill/lease/ledger invariants. *)

type fill_state =
  | Requested  (** a hart owns the miss; request not yet on the wire *)
  | Filling  (** wire fetch + translation in progress *)
  | Resident  (** fill complete at [f_done] (owner's clock) *)

type fill = {
  f_vaddr : int;  (** the chunk being filled *)
  f_owner : int;  (** the single hart that owns this fill *)
  mutable f_state : fill_state;
  mutable f_done : int;
      (** completion stamp in virtual (owner-clock) time; [max_int]
          while in flight. A hart whose clock is before this stamp
          when it misses the same chunk coalesces instead of
          re-requesting *)
}

type hart = {
  h_id : int;
  h_cpu : Machine.Cpu.t;
  mutable h_lease : Tcache.block option;
      (** the block this hart's read lease covers while suspended;
          [None] while active, halted, or parked outside the tcache *)
  mutable h_run : int;
      (** cycles spent advancing (including controller work charged to
          this hart) — the ledger: [h_run + h_wait_fill + h_wait_mc =
          h_cpu.cycles], audited by [Check.Audit.shards] *)
  mutable h_wait_fill : int;
      (** cycles spent suspended on fills owned by other harts *)
  mutable h_wait_mc : int;
      (** cycles spent waiting for the shared MC link to free *)
  mutable h_fills : int;  (** fills this hart owned *)
  mutable h_joins : int;  (** fills this hart coalesced onto *)
}

type t

val state_name : fill_state -> string
(** "requested" / "filling" / "resident". *)

val attach : Controller.t -> t
(** Wrap a controller with [cfg.harts] hart contexts and install the
    multi-hart trap front end on each. Must be called before the
    controller starts (the harts replicate the pristine tcache
    region); a controller can only be attached once.
    @raise Invalid_argument otherwise. *)

val start : t -> unit
(** Bring every hart to the image entry through the fill machinery:
    the first hart owns the entry fill, the rest coalesce onto it.
    Implied by the first {!run}. @raise Invalid_argument if already
    started. *)

val run : ?fuel:int -> t -> Machine.Cpu.outcome
(** Interleave the harts until all halt or each has retired [fuel]
    instructions (default unbounded). [Halted] iff every hart halted.
    Resumable: leases are re-established at every suspension, so a
    fuel-bounded run can be continued. *)

val controller : t -> Controller.t
val harts : t -> hart list
(** In id order. *)

val hart : t -> int -> hart
val fills : t -> fill list
(** Every fill the state machine has processed, stably ordered. *)

val in_flight : t -> fill list
(** Fills not yet [Resident]. Empty whenever no hart is mid-trap —
    in particular at every audit point. *)

val mc_free_at : t -> int
(** Virtual time the shared MC link is busy until. *)

val total_cycles : t -> int
(** Sum of hart clocks (the work metric). *)

val makespan : t -> int
(** Max hart clock (the wall-clock metric the shardsweep bench
    grids). *)

val pp_hart : Format.formatter -> hart -> unit
val pp : Format.formatter -> t -> unit
