(* Dominant-block analytic tcache sizing.

   The paper sizes CC memory by running the full miss-rate sweep and
   eyeballing the knee (Fig. 7). This module predicts the knee without
   the sweep: walk the chunker's static CFG to enumerate every chunk
   the workload can reach, weight each chunk with a profiling pre-run,
   take the smallest hottest-first prefix covering [threshold] of the
   samples (the dominant set — the same 90% rule the paper's gprof
   sizing used, at chunk granularity), and price that set in *rewritten*
   bytes using the rewriter's own layout arithmetic. A tcache that
   holds the dominant set in rewritten form sits at the knee: smaller,
   and the steady-state working set thrashes; larger, and only the cold
   tail gains. [headroom] covers what the static model cannot see —
   persistent stubs growing down from the top, sweep fragmentation, and
   tail-duplicated chunks translated more than once. *)

type chunk_info = {
  ci_vaddr : int;
  ci_span_bytes : int;
  ci_tcache_bytes : int;
  ci_samples : int;
}

type estimate = {
  chunks_walked : int;
  dominant_chunks : int;
  dominant_source_bytes : int;
  dominant_tcache_bytes : int;
  predicted_bytes : int;
  predicted_knee : int option;
  chunks : chunk_info list;
}

(* Breadth-first over the unit graph, seeded at the image entry and
   every symbol start (computed-jump targets are statically unknowable,
   so symbol starts stand in for them — the same approximation the MC's
   prefetch predictor lives with). Chunks the chunker rejects are
   skipped: an unreachable data-looking successor must not sink the
   estimate.

   In function granularity the unit is the whole-function chunk and the
   edges are its external successors; a function the controller would
   degrade (oversized, or a body that is not cleanly decodable) is
   priced as its entry basic block, mirroring the runtime degradation
   rule one block at a time — the walk reaches the rest of the degraded
   extent through ordinary block successors. *)
let walk_units image chunking granularity =
  let visited = Hashtbl.create 256 in
  let acc = ref [] in
  let queue = Queue.create () in
  let seed v = if not (Hashtbl.mem visited v) then Queue.add v queue in
  seed image.Isa.Image.entry;
  List.iter
    (fun (s : Isa.Image.symbol) -> seed s.sym_addr)
    image.Isa.Image.symbols;
  let unit_at v =
    match granularity with
    | Config.Block -> (Chunker.chunk_at image chunking v, Config.Block)
    | Config.Function -> (
      let degraded () = (Chunker.chunk_at image Config.Basic_block v, Config.Block) in
      match Chunker.chunk_function image v with
      | c when Array.length c.instrs <= Chunker.max_function_instrs ->
        (c, Config.Function)
      | _ -> degraded ()
      | exception Chunker.Bad_address a when a > v -> degraded ()
      | exception Chunker.Trap_in_source a when a > v -> degraded ())
  in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if not (Hashtbl.mem visited v) then begin
      Hashtbl.replace visited v ();
      match unit_at v with
      | chunk, g ->
        acc := chunk :: !acc;
        let succs =
          match g with
          | Config.Function -> Chunker.external_successors image chunk
          | Config.Block -> Chunker.successors image chunk
        in
        List.iter seed succs
      | exception (Chunker.Bad_address _ | Chunker.Trap_in_source _) -> ()
    end
  done;
  List.rev !acc

let estimate ?(threshold = 0.9) ?(headroom = 1.4)
    ?(granularity = Config.Block) ~image ~chunking ~samples_in ~sizes () =
  if not (0.0 < threshold && threshold <= 1.0) then
    invalid_arg "Sizing.estimate: want 0 < threshold <= 1";
  if headroom < 1.0 then invalid_arg "Sizing.estimate: headroom < 1";
  (* in function mode the controller pre-allocates a PLT slot for every
     external call target, so the rewriter emits no trap island for
     those Jals; price layouts under the same assumption (the slot paddr
     itself is irrelevant to the word count) *)
  let plt_of =
    match granularity with
    | Config.Block -> fun _ -> None
    | Config.Function ->
      fun tv ->
        if tv land 3 = 0 && Isa.Image.contains_code image tv then Some 0
        else None
  in
  let chunks =
    List.map
      (fun (c : Chunker.t) ->
        let span = Chunker.span_bytes c in
        {
          ci_vaddr = c.vaddr;
          ci_span_bytes = span;
          ci_tcache_bytes = 4 * Rewriter.layout_words ~plt_of c;
          ci_samples = samples_in ~lo:c.vaddr ~hi:(c.vaddr + span);
        })
      (walk_units image chunking granularity)
  in
  (* hottest first; density would overweight tiny blocks — the tcache
     pays for whole chunks, so rank by total samples, ties on address *)
  let ranked =
    List.sort
      (fun a b ->
        match compare b.ci_samples a.ci_samples with
        | 0 -> compare a.ci_vaddr b.ci_vaddr
        | c -> c)
      chunks
  in
  let total = List.fold_left (fun a c -> a + c.ci_samples) 0 ranked in
  let need = max 1 (int_of_float (ceil (threshold *. float_of_int total))) in
  let dominant =
    if total = 0 then []
    else
      let rec take acc cum = function
        | [] -> List.rev acc
        | c :: rest ->
          if c.ci_samples = 0 then List.rev acc
          else
            let cum = cum + c.ci_samples in
            if cum >= need then List.rev (c :: acc)
            else take (c :: acc) cum rest
      in
      take [] 0 ranked
  in
  let dom_src = List.fold_left (fun a c -> a + c.ci_span_bytes) 0 dominant in
  let dom_tc = List.fold_left (fun a c -> a + c.ci_tcache_bytes) 0 dominant in
  let predicted_bytes =
    int_of_float (ceil (headroom *. float_of_int dom_tc))
  in
  let predicted_knee =
    List.find_opt (fun s -> s >= predicted_bytes) (List.sort compare sizes)
  in
  {
    chunks_walked = List.length chunks;
    dominant_chunks = List.length dominant;
    dominant_source_bytes = dom_src;
    dominant_tcache_bytes = dom_tc;
    predicted_bytes;
    predicted_knee;
    chunks = ranked;
  }

(* The transition zone around the knee is where a temperature prior
   backfires: the layout nearly fits, steady-state FIFO keeps it
   stable, and every prior-driven sweep deviation restarts the
   allocation sweep mid-layout — churn without protection. A full
   ladder step (2x) below the prediction the dominant set is hopelessly
   oversubscribed and protecting its hottest members is pure win. *)
let deep_thrash e ~tcache_bytes = e.predicted_bytes > 2 * tcache_bytes
