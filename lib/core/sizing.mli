(** Dominant-block analytic tcache sizing.

    Predicts the miss-rate knee of the Fig. 7 curve — the smallest
    acceptable tcache size — without running the sweep: a static CFG
    walk over the chunker enumerates every reachable chunk, a profiling
    pre-run weights them, and the smallest hottest-first prefix
    covering a threshold share of the samples (the {e dominant set},
    the paper's gprof 90% rule at chunk granularity) is priced in
    rewritten bytes via [Rewriter.layout_words]. A tcache holding the
    dominant set in rewritten form sits at the knee.

    Like the rest of [lib/core] this module never touches the profiler:
    the sample oracle arrives as a closure, exactly as
    [Controller.prefetch_ranker] does ([Profiler.samples_in] partially
    applied is the intended argument). *)

type chunk_info = {
  ci_vaddr : int;  (** chunk start in the source image *)
  ci_span_bytes : int;  (** source footprint *)
  ci_tcache_bytes : int;  (** rewritten footprint, [4 * layout_words] *)
  ci_samples : int;  (** profile samples attributed to the chunk *)
}

type estimate = {
  chunks_walked : int;  (** reachable chunks the CFG walk found *)
  dominant_chunks : int;
  dominant_source_bytes : int;
  dominant_tcache_bytes : int;
      (** the dominant set priced in rewritten (tcache) bytes *)
  predicted_bytes : int;
      (** [headroom *. dominant_tcache_bytes], rounded up — the
          predicted smallest acceptable tcache size *)
  predicted_knee : int option;
      (** smallest entry of [sizes] >= [predicted_bytes]; [None] when
          the prediction exceeds the whole ladder *)
  chunks : chunk_info list;  (** every walked chunk, hottest first *)
}

val estimate :
  ?threshold:float ->
  ?headroom:float ->
  ?granularity:Config.granularity ->
  image:Isa.Image.t ->
  chunking:Config.chunking ->
  samples_in:(lo:int -> hi:int -> int) ->
  sizes:int list ->
  unit ->
  estimate
(** [threshold] (default 0.9) is the dominant-set cumulative-sample
    share; [headroom] (default 1.4) inflates the rewritten footprint to
    cover what the static model cannot see — the persistent stub area
    growing down from the tcache top (including PLT slots in function
    mode), allocation-sweep fragmentation, and tail-duplicated chunks
    translated once per branch target. [granularity] (default [Block])
    selects the caching unit the walk enumerates and prices: under
    [Function] the units are whole-function chunks linked by external
    successors, layouts are priced assuming every external call goes
    through a PLT slot (no per-call trap island), and a function the
    controller would degrade is priced as basic blocks, mirroring the
    runtime rule. The walk seeds at the image entry and every symbol
    start (standing in for statically unknowable computed-jump targets)
    and skips addresses the chunker rejects. A zero-sample profile
    yields an empty dominant set and [predicted_bytes = 0].
    @raise Invalid_argument unless [0 < threshold <= 1] and
    [headroom >= 1]. *)

val deep_thrash : estimate -> tcache_bytes:int -> bool
(** Should a temperature prior be primed at this tcache size? True when
    [predicted_bytes] exceeds twice the tcache — at least a full
    power-of-two ladder step of oversubscription, where the dominant
    set cannot come close to fitting and protecting its hottest blocks
    is pure win. In the transition zone around the knee (within 2x of
    the prediction) the layout nearly fits and prior-driven sweep
    deviations churn more than they save, so [trrip] should run
    unprimed there — it then decides exactly like [rrip]. The CLI and
    the policysweep bench both consult this before attaching
    [Controller.set_temperature_oracle]. *)
