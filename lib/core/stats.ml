let eviction_capacity = 4096
let age_buckets = 32

type t = {
  mutable translations : int;
  mutable translated_words : int;
  mutable overhead_words : int;
  mutable lookups : int;
  mutable traps : int;
  mutable patches : int;
  mutable chained : int;
  mutable reverts : int;
  mutable superblocks : int;
  mutable superblock_blocks : int;
  mutable depromotions : int;
  mutable superblock_guard_skips : int;
  mutable superblock_collateral_reverts : int;
  mutable evicted_blocks : int;
  eviction_ring : (int * int) array;
  mutable eviction_count : int;
  mutable flushes : int;
  mutable scrubbed_words : int;
  mutable ret_stubs : int;
  mutable plt_slots : int;
  mutable plt_patches : int;
  mutable gran_degraded : int;
  mutable max_resident_blocks : int;
  mutable max_occupied_bytes : int;
  mutable net_retries : int;
  mutable net_timeouts : int;
  mutable crc_failures : int;
  mutable recoveries : int;
  mutable chunk_failures : int;
  mutable max_chunk_retries : int;
  mutable prefetch_issued : int;
  mutable prefetch_installs : int;
  mutable prefetch_wasted : int;
  mutable prefetch_crc_failures : int;
  mutable batches : int;
  mutable batch_chunks : int;
  mutable max_batch_chunks : int;
  mutable policy_entries : int;
  mutable evicted_victim : int;
  mutable evicted_collateral : int;
  mutable evicted_stub_growth : int;
  mutable evicted_invalidated : int;
  mutable evicted_flushed : int;
  mutable fills : int;
  mutable fills_coalesced : int;
  mutable fill_wait_cycles : int;
  mutable mc_wait_cycles : int;
  victim_age_hist : int array;
}

let create () =
  {
    translations = 0;
    translated_words = 0;
    overhead_words = 0;
    lookups = 0;
    traps = 0;
    patches = 0;
    chained = 0;
    reverts = 0;
    superblocks = 0;
    superblock_blocks = 0;
    depromotions = 0;
    superblock_guard_skips = 0;
    superblock_collateral_reverts = 0;
    evicted_blocks = 0;
    eviction_ring = Array.make eviction_capacity (0, 0);
    eviction_count = 0;
    flushes = 0;
    scrubbed_words = 0;
    ret_stubs = 0;
    plt_slots = 0;
    plt_patches = 0;
    gran_degraded = 0;
    max_resident_blocks = 0;
    max_occupied_bytes = 0;
    net_retries = 0;
    net_timeouts = 0;
    crc_failures = 0;
    recoveries = 0;
    chunk_failures = 0;
    max_chunk_retries = 0;
    prefetch_issued = 0;
    prefetch_installs = 0;
    prefetch_wasted = 0;
    prefetch_crc_failures = 0;
    batches = 0;
    batch_chunks = 0;
    max_batch_chunks = 0;
    policy_entries = 0;
    evicted_victim = 0;
    evicted_collateral = 0;
    evicted_stub_growth = 0;
    evicted_invalidated = 0;
    evicted_flushed = 0;
    fills = 0;
    fills_coalesced = 0;
    fill_wait_cycles = 0;
    mc_wait_cycles = 0;
    victim_age_hist = Array.make age_buckets 0;
  }

let reset t =
  t.translations <- 0;
  t.translated_words <- 0;
  t.overhead_words <- 0;
  t.lookups <- 0;
  t.traps <- 0;
  t.patches <- 0;
  t.chained <- 0;
  t.reverts <- 0;
  t.superblocks <- 0;
  t.superblock_blocks <- 0;
  t.depromotions <- 0;
  t.superblock_guard_skips <- 0;
  t.superblock_collateral_reverts <- 0;
  t.evicted_blocks <- 0;
  Array.fill t.eviction_ring 0 eviction_capacity (0, 0);
  t.eviction_count <- 0;
  t.flushes <- 0;
  t.scrubbed_words <- 0;
  t.ret_stubs <- 0;
  t.plt_slots <- 0;
  t.plt_patches <- 0;
  t.gran_degraded <- 0;
  t.max_resident_blocks <- 0;
  t.max_occupied_bytes <- 0;
  t.net_retries <- 0;
  t.net_timeouts <- 0;
  t.crc_failures <- 0;
  t.recoveries <- 0;
  t.chunk_failures <- 0;
  t.max_chunk_retries <- 0;
  t.prefetch_issued <- 0;
  t.prefetch_installs <- 0;
  t.prefetch_wasted <- 0;
  t.prefetch_crc_failures <- 0;
  t.batches <- 0;
  t.batch_chunks <- 0;
  t.max_batch_chunks <- 0;
  t.policy_entries <- 0;
  t.evicted_victim <- 0;
  t.evicted_collateral <- 0;
  t.evicted_stub_growth <- 0;
  t.evicted_invalidated <- 0;
  t.evicted_flushed <- 0;
  t.fills <- 0;
  t.fills_coalesced <- 0;
  t.fill_wait_cycles <- 0;
  t.mc_wait_cycles <- 0;
  Array.fill t.victim_age_hist 0 age_buckets 0

let miss_rate t ~retired =
  if retired = 0 then 0.0
  else float_of_int t.translations /. float_of_int retired

(* Victim ages land in log2 buckets: bucket k holds ages in
   [2^k, 2^(k+1)), bucket 0 also takes age <= 1, the last bucket
   saturates. Cheap enough for every eviction, wide enough for any
   plausible cycle count. *)
let record_victim_age t ~age =
  let k =
    if age <= 1 then 0 else min (age_buckets - 1) (Bitmath.floor_log2 age)
  in
  t.victim_age_hist.(k) <- t.victim_age_hist.(k) + 1

let victim_ages t =
  let rec go k acc =
    if k < 0 then acc
    else
      let n = t.victim_age_hist.(k) in
      go (k - 1) (if n = 0 then acc else (1 lsl k, n) :: acc)
  in
  go (age_buckets - 1) []

let record_eviction t ~cycle ~blocks =
  t.eviction_ring.(t.eviction_count mod eviction_capacity) <- (cycle, blocks);
  t.eviction_count <- t.eviction_count + 1

let eviction_recorded t = min t.eviction_count eviction_capacity

let eviction_dropped t =
  if t.eviction_count > eviction_capacity then
    t.eviction_count - eviction_capacity
  else 0

let eviction_series t =
  let len = eviction_recorded t in
  let first =
    if t.eviction_count > eviction_capacity then
      t.eviction_count mod eviction_capacity
    else 0
  in
  List.init len (fun i -> t.eviction_ring.((first + i) mod eviction_capacity))

let pp ppf t =
  Format.fprintf ppf
    "translations=%d words=%d (overhead %d), lookups=%d, patches=%d, \
     reverts=%d, evicted=%d, flushes=%d, scrubbed=%d, ret-stubs=%d, \
     peak=%d blocks/%d B"
    t.translations t.translated_words t.overhead_words t.lookups t.patches
    t.reverts t.evicted_blocks t.flushes t.scrubbed_words t.ret_stubs
    t.max_resident_blocks t.max_occupied_bytes;
  if eviction_dropped t > 0 then
    Format.fprintf ppf "@.eviction series: kept %d of %d events (%d dropped)"
      (eviction_recorded t) t.eviction_count (eviction_dropped t);
  if
    t.net_retries > 0 || t.net_timeouts > 0 || t.crc_failures > 0
    || t.chunk_failures > 0
  then
    Format.fprintf ppf
      "@.transport: retries=%d (max %d/chunk), timeouts=%d, crc-fail=%d, \
       recovered=%d, unavailable=%d"
      t.net_retries t.max_chunk_retries t.net_timeouts t.crc_failures
      t.recoveries t.chunk_failures;
  if t.prefetch_issued > 0 then
    Format.fprintf ppf
      "@.prefetch: issued=%d, installed=%d, wasted=%d, crc-fail=%d, \
       batches=%d (%d chunks, max %d)"
      t.prefetch_issued t.prefetch_installs t.prefetch_wasted
      t.prefetch_crc_failures t.batches t.batch_chunks t.max_batch_chunks;
  if t.chained > 0 || t.superblocks > 0 then
    Format.fprintf ppf
      "@.chaining: traps=%d, eager patches=%d, superblocks=%d (%d blocks), \
       de-promotions=%d"
      t.traps t.chained t.superblocks t.superblock_blocks t.depromotions;
  if t.plt_slots > 0 || t.gran_degraded > 0 then
    Format.fprintf ppf
      "@.plt: slots=%d, slot patches=%d, degraded functions=%d" t.plt_slots
      t.plt_patches t.gran_degraded;
  if t.evicted_blocks > 0 || t.policy_entries > 0 then
    Format.fprintf ppf
      "@.policy: entries=%d, evicted victim=%d collateral=%d stub-growth=%d \
       invalidated=%d flushed=%d"
      t.policy_entries t.evicted_victim t.evicted_collateral
      t.evicted_stub_growth t.evicted_invalidated t.evicted_flushed;
  if t.fills > 0 then
    Format.fprintf ppf
      "@.harts: fills=%d, coalesced=%d, fill-wait=%d, mc-wait=%d" t.fills
      t.fills_coalesced t.fill_wait_cycles t.mc_wait_cycles
