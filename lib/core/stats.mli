(** SoftCache statistics.

    [translations] is the paper's miss count: "the software miss rate is
    the number of basic blocks translated divided by the number of
    instructions executed" (Fig. 7). The eviction ring carries the
    cycle-stamped paging activity behind Fig. 8, bounded so CC-side
    metadata cannot grow with run length (the same bounded-by-residency
    discipline the tcache stub recycling follows): the most recent
    [eviction_capacity] events are retained and [eviction_dropped]
    counts the overwritten tail. *)

val eviction_capacity : int
(** Fixed bound on retained eviction events (4096). *)

val age_buckets : int
(** Number of log2 buckets in the victim-age histogram (32). *)

type t = {
  mutable translations : int;  (** chunks translated = misses *)
  mutable translated_words : int;  (** words emitted into the tcache *)
  mutable overhead_words : int;
      (** emitted words beyond the original instruction count (pads,
          islands, fall-through slots) *)
  mutable lookups : int;  (** runtime hash-table lookups *)
  mutable traps : int;
      (** stub traps dispatched — every controller-mediated control
          transfer (exit misses, computed jumps, indirect calls, return
          stubs); the trap-elimination metric chaining is gated on *)
  mutable patches : int;  (** words rewritten to point into the tcache *)
  mutable chained : int;
      (** eager chain patches: exits patched at target-install time
          rather than on their own first trap (subset of [patches]) *)
  mutable reverts : int;  (** words rewritten back to miss stubs (unpatches) *)
  mutable superblocks : int;  (** hot chains promoted to superblocks *)
  mutable superblock_blocks : int;
      (** total member blocks across all promotions *)
  mutable depromotions : int;
      (** superblocks dissolved because a member was evicted *)
  mutable superblock_guard_skips : int;
      (** promotions skipped by the churn guard because the profiled
          working set sits at the tcache knee, where group reservations
          mass-evict established blocks (see
          [Cc_translate.promotion_guarded]) *)
  mutable superblock_collateral_reverts : int;
      (** patched branches reverted while carving superblock
          reservations (subset of [reverts]); diagnostic for how much
          live chain linkage group reservations tear down *)
  mutable evicted_blocks : int;
  eviction_ring : (int * int) array;
      (** bounded ring of (cycle stamp, blocks evicted); use
          [record_eviction] / [eviction_series], not the raw array *)
  mutable eviction_count : int;
      (** total eviction events recorded, including overwritten ones *)
  mutable flushes : int;  (** whole-tcache invalidations *)
  mutable scrubbed_words : int;  (** stack words scanned for live pads *)
  mutable ret_stubs : int;  (** persistent return stubs created *)
  mutable plt_slots : int;  (** persistent PLT slots created (function mode) *)
  mutable plt_patches : int;
      (** PLT slot specialisations — slot words patched from trap to
          direct jump, at install time or on a slot trap (subset of
          [patches]) *)
  mutable gran_degraded : int;
      (** functions degraded from function to block granularity because
          their whole-body unit could not be cached *)
  mutable max_resident_blocks : int;
  mutable max_occupied_bytes : int;
  mutable net_retries : int;  (** chunk re-requests after a transport fault *)
  mutable net_timeouts : int;  (** dropped frames the CC waited out *)
  mutable crc_failures : int;  (** chunks rejected by the CRC32 check *)
  mutable recoveries : int;
      (** chunks eventually delivered intact after at least one retry *)
  mutable chunk_failures : int;
      (** chunks given up on after the retry budget was exhausted *)
  mutable max_chunk_retries : int;
      (** worst retry count any single chunk needed *)
  mutable prefetch_issued : int;
      (** chunks the MC shipped speculatively alongside demand misses *)
  mutable prefetch_installs : int;
      (** staged chunks later installed on first touch (useful prefetch) *)
  mutable prefetch_wasted : int;
      (** staged chunks discarded without ever being touched *)
  mutable prefetch_crc_failures : int;
      (** staged chunks rejected by the install-time CRC check *)
  mutable batches : int;  (** demand frames that carried ≥ 1 prefetch *)
  mutable batch_chunks : int;  (** total chunks shipped across batches *)
  mutable max_batch_chunks : int;  (** largest single batched frame *)
  mutable policy_entries : int;
      (** block-entry (hit) events the replacement policy observed —
          the controller-mediated entries only, never one per
          instruction *)
  mutable evicted_victim : int;
      (** blocks evicted because the policy (or the FIFO sweep) chose
          them *)
  mutable evicted_collateral : int;
      (** blocks overlapped by a placement seeded at another victim *)
  mutable evicted_stub_growth : int;
      (** blocks run over by the growing persistent-stub area *)
  mutable evicted_invalidated : int;  (** [Controller.invalidate] range hits *)
  mutable evicted_flushed : int;  (** unpinned residents of a flush *)
  mutable fills : int;
      (** multi-hart fill-state-machine activations: misses that owned
          a wire fetch ([Absent -> Requested -> Filling -> Resident]);
          0 in solo runs, where the fill machinery is bypassed *)
  mutable fills_coalesced : int;
      (** duplicate misses from other harts that joined an in-flight
          fill instead of re-requesting over the wire *)
  mutable fill_wait_cycles : int;
      (** cycles harts spent suspended on fills owned by other harts *)
  mutable mc_wait_cycles : int;
      (** cycles harts spent waiting for the shared MC link to free up
          before issuing their own fill *)
  victim_age_hist : int array;
      (** log2-bucketed cycles-resident-at-eviction; use
          [record_victim_age] / [victim_ages], not the raw array *)
}

val create : unit -> t
val reset : t -> unit

val miss_rate : t -> retired:int -> float
(** Translations per retired instruction — the Fig. 7 metric. *)

val record_victim_age : t -> age:int -> unit
(** Record one evicted block's residency span (cycles between install
    and eviction) into the log2 histogram; bucket [k] holds ages in
    [2^k, 2^(k+1)), the last bucket saturates. *)

val victim_ages : t -> (int * int) list
(** Non-empty histogram buckets as [(2^k, count)] pairs, ascending. *)

val record_eviction : t -> cycle:int -> blocks:int -> unit
(** Record one eviction event; overwrites the oldest retained event
    once [eviction_capacity] have been recorded. *)

val eviction_series : t -> (int * int) list
(** Retained eviction events in chronological order (at most
    [eviction_capacity]; the oldest are dropped first). *)

val eviction_recorded : t -> int
(** Events currently retained in the ring. *)

val eviction_dropped : t -> int
(** Eviction events lost to the bound — explicit, never silent. *)

val pp : Format.formatter -> t -> unit
