type site_kind = Patch_jmp | Patch_jal | Patch_br

type t =
  | Exit of {
      block : int;
      site_paddr : int;
      kind : site_kind;
      target : int;
      revert_word : int;
    }
  | Computed of { rs : Isa.Reg.t }
  | Icall of { rd : Isa.Reg.t; rs : Isa.Reg.t; pad_paddr : int }
  | Ret_stub of { site_paddr : int; target : int }
  | Plt of { slot_paddr : int; target : int }

let pp_kind ppf = function
  | Patch_jmp -> Format.pp_print_string ppf "jmp"
  | Patch_jal -> Format.pp_print_string ppf "jal"
  | Patch_br -> Format.pp_print_string ppf "br"

let pp ppf = function
  | Exit e ->
    Format.fprintf ppf "exit[%a] block=%d site=0x%x target=0x%x" pp_kind
      e.kind e.block e.site_paddr e.target
  | Computed c -> Format.fprintf ppf "computed[%a]" Isa.Reg.pp c.rs
  | Icall c ->
    Format.fprintf ppf "icall[%a,%a] pad=0x%x" Isa.Reg.pp c.rd Isa.Reg.pp c.rs
      c.pad_paddr
  | Ret_stub r ->
    Format.fprintf ppf "ret-stub site=0x%x target=0x%x" r.site_paddr r.target
  | Plt p ->
    Format.fprintf ppf "plt slot=0x%x target=0x%x" p.slot_paddr p.target
