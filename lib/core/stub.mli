(** Miss-stub descriptors.

    Every [Trap k] the rewriter plants in the translation cache indexes
    an entry in the controller's stub table. The entry tells the cache
    controller what the trap means: an unresolved direct exit to patch,
    an ambiguous pointer to look up through the tcache map, or a
    persistent return stub created by stack scrubbing.

    In the paper's terms, stub entries are the part of the cache state
    that could not be specialised into the instructions themselves. *)

type site_kind =
  | Patch_jmp  (** site word is rewritten to [Jmp paddr] *)
  | Patch_jal  (** site word is rewritten to [Jal paddr] *)
  | Patch_br
      (** site is a conditional branch whose offset field is rewritten
          to aim at the in-cache target; falls back to patching the
          branch island to a [Jmp] when the offset does not reach *)

type t =
  | Exit of {
      block : int;  (** id of the block containing the site *)
      site_paddr : int;  (** address of the word to patch *)
      kind : site_kind;
      target : int;  (** virtual address of the missing chunk *)
      revert_word : int;
          (** encoded word that un-patches the site when the target is
              evicted (a [Trap] back to this stub, or the original
              branch aimed at its island) *)
    }
  | Computed of { rs : Isa.Reg.t }
      (** computed jump: look the register's virtual address up in the
          tcache map at runtime — the paper's fallback strategy *)
  | Icall of { rd : Isa.Reg.t; rs : Isa.Reg.t; pad_paddr : int }
      (** indirect call: as [Computed], plus the link register receives
          the call site's return landing pad *)
  | Ret_stub of { site_paddr : int; target : int }
      (** persistent return stub planted by stack scrubbing when a
          block with live landing pads is evicted *)
  | Plt of { slot_paddr : int; target : int }
      (** function-granularity PLT slot: the one-word indirection every
          direct call to function [target] jumps through. Holds
          [Trap k] while the function is absent, [Jmp paddr] while it
          is resident; persistent like a return stub because rewritten
          call sites address it directly *)

val pp : Format.formatter -> t -> unit
