type incoming = { from_block : int; site_paddr : int; revert_word : int }

type block = {
  id : int;
  vaddr : int;
  paddr : int;
  words : int;
  orig_words : int;
  mutable incoming : incoming list;
  pads : (int * int) list;
  resume : int array;
  stubs : int list; (* stub-table entries owned by this block *)
}

type t = {
  base : int;
  top : int;  (* one past the region *)
  mutable alloc_ptr : int;  (* next candidate placement *)
  mutable persist_base : int;  (* persistent stubs occupy [persist_base, top) *)
  by_vaddr : (int, block) Hashtbl.t;
  by_id : (int, block) Hashtbl.t;
  pinned : (int, unit) Hashtbl.t;  (* block ids exempt from eviction *)
}

let create ~base ~bytes =
  if base land 3 <> 0 then invalid_arg "Tcache.create: unaligned base";
  if bytes < 16 then invalid_arg "Tcache.create: region too small";
  {
    base;
    top = base + (bytes land lnot 3);
    alloc_ptr = base;
    persist_base = base + (bytes land lnot 3);
    by_vaddr = Hashtbl.create 256;
    by_id = Hashtbl.create 256;
    pinned = Hashtbl.create 8;
  }

let base t = t.base
let top t = t.top
let lookup t vaddr = Hashtbl.find_opt t.by_vaddr vaddr
let find_by_id t id = Hashtbl.find_opt t.by_id id
let is_alive t id = Hashtbl.mem t.by_id id

let register t b =
  Hashtbl.replace t.by_vaddr b.vaddr b;
  Hashtbl.replace t.by_id b.id b

let pin t (b : block) =
  if Hashtbl.mem t.by_id b.id then Hashtbl.replace t.pinned b.id ()

let unpin t (b : block) = Hashtbl.remove t.pinned b.id
let is_pinned t id = Hashtbl.mem t.pinned id
let pinned_blocks t = Hashtbl.length t.pinned
let pinned_ids t = Hashtbl.fold (fun id () acc -> id :: acc) t.pinned []

let remove t b =
  Hashtbl.remove t.pinned b.id;
  (match Hashtbl.find_opt t.by_vaddr b.vaddr with
  | Some b' when b'.id = b.id -> Hashtbl.remove t.by_vaddr b.vaddr
  | Some _ | None -> ());
  Hashtbl.remove t.by_id b.id

let blocks t = Hashtbl.fold (fun _ b acc -> b :: acc) t.by_id []
let resident_blocks t = Hashtbl.length t.by_id

let occupied_bytes t =
  let code =
    Hashtbl.fold (fun _ b acc -> acc + (b.words * 4)) t.by_id 0
  in
  code + (t.top - t.persist_base)

let map_entries t = Hashtbl.length t.by_vaddr

let overlapping t lo hi =
  Hashtbl.fold
    (fun _ b acc ->
      let b_lo = b.paddr and b_hi = b.paddr + (b.words * 4) in
      if b_lo < hi && b_hi > lo then b :: acc else acc)
    t.by_id []

let evict_range t lo hi =
  let victims = overlapping t lo hi in
  List.iter (remove t) victims;
  victims

(* Pinned blocks are immovable obstacles for the sweep: when the
   candidate range would overlap one, skip past it. [budget] bounds the
   number of skips so a region crowded with pins terminates in
   [`Full] — the chunk would fit an empty region, the pins are what is
   in the way. *)
let rec place_skipping_pinned t ~bytes ~budget ~can_evict =
  if budget = 0 then Error `Full
  else if t.alloc_ptr + bytes > t.persist_base then
    if can_evict then begin
      t.alloc_ptr <- t.base;
      place_skipping_pinned t ~bytes ~budget:(budget - 1) ~can_evict
    end
    else Error `Full
  else
    let lo = t.alloc_ptr in
    let hi = lo + bytes in
    let overlapping = overlapping t lo hi in
    let pinned_overlap =
      List.filter (fun b -> is_pinned t b.id) overlapping
    in
    match pinned_overlap with
    | [] ->
      if overlapping <> [] && not can_evict then Error `Full
      else begin
        List.iter (remove t) overlapping;
        t.alloc_ptr <- hi;
        Ok (lo, overlapping)
      end
    | _ ->
      (* hop past the furthest pinned obstacle *)
      let skip_to =
        List.fold_left
          (fun acc b -> max acc (b.paddr + (b.words * 4)))
          lo pinned_overlap
      in
      t.alloc_ptr <- skip_to;
      place_skipping_pinned t ~bytes ~budget:(budget - 1) ~can_evict

let alloc_fifo t ~words =
  let bytes = words * 4 in
  if bytes > t.persist_base - t.base then Error `Too_large
  else
    match
      place_skipping_pinned t ~bytes
        ~budget:(2 * (Hashtbl.length t.pinned + 2))
        ~can_evict:true
    with
    | Ok _ as ok -> ok
    | Error `Full -> Error `Full

(* Seeded variant for victim-directed policies: restart the sweep at
   the policy's chosen block so that block (and only its immediate
   neighbourhood) is reclaimed. A seed outside the code area — possible
   when the persistent stub region grew over the victim between the
   choice and the placement — is ignored and the sweep just continues,
   which degrades gracefully to FIFO for this one allocation. *)
let alloc_seeded t ~seed ~words =
  let bytes = words * 4 in
  if bytes > t.persist_base - t.base then Error `Too_large
  else begin
    if seed >= t.base && seed < t.persist_base then t.alloc_ptr <- seed;
    place_skipping_pinned t ~bytes
      ~budget:(2 * (Hashtbl.length t.pinned + 2))
      ~can_evict:true
  end

let alloc_ptr t = t.alloc_ptr

let alloc_append t ~words =
  let bytes = words * 4 in
  if bytes > t.persist_base - t.base then Error `Too_large
  else
    match
      place_skipping_pinned t ~bytes
        ~budget:(Hashtbl.length t.pinned + 2)
        ~can_evict:false
    with
    | Ok (lo, victims) ->
      assert (victims = []);
      Ok lo
    | Error _ as e -> e

let persist_base t = t.persist_base

let alloc_persistent t ~words =
  let bytes = words * 4 in
  if bytes > t.persist_base - t.base then Error `Too_large
  else begin
    let lo = t.persist_base - bytes in
    let victims = evict_range t lo t.persist_base in
    t.persist_base <- lo;
    (* keep the FIFO sweep out of the shrunken code area *)
    if t.alloc_ptr > t.persist_base then t.alloc_ptr <- t.base;
    Ok (lo, victims)
  end

let reset t =
  (* pinned blocks survive the flush *)
  let former = List.filter (fun b -> not (is_pinned t b.id)) (blocks t) in
  List.iter
    (fun b ->
      Hashtbl.remove t.pinned b.id;
      (match Hashtbl.find_opt t.by_vaddr b.vaddr with
      | Some b' when b'.id = b.id -> Hashtbl.remove t.by_vaddr b.vaddr
      | Some _ | None -> ());
      Hashtbl.remove t.by_id b.id)
    former;
  t.alloc_ptr <- t.base;
  former

let pp ppf t =
  Format.fprintf ppf
    "tcache [0x%x,0x%x): %d blocks, ptr=0x%x, persist=0x%x" t.base t.top
    (resident_blocks t) t.alloc_ptr t.persist_base
