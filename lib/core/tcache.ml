type incoming = { from_block : int; site_paddr : int; revert_word : int }

type block = {
  id : int;
  vaddr : int;
  paddr : int;
  words : int;
  orig_words : int;
  mutable incoming : incoming list;
  pads : (int * int) list;
  resume : int array;
  stubs : int list; (* stub-table entries owned by this block *)
}

(* One allocation arena. The unsharded tcache is a single region
   spanning the whole [base, top) range; [--shards K] partitions the
   range into K equal regions, each with its own circular sweep pointer
   and its own persistent-stub area growing down from its top. *)
type region = {
  r_lo : int;
  r_top : int;  (* one past the region *)
  mutable r_alloc_ptr : int;  (* next candidate placement *)
  mutable r_persist_base : int;  (* stubs occupy [r_persist_base, r_top) *)
}

type t = {
  base : int;
  top : int;  (* one past the whole tcache *)
  regions : region array;
  span : int;  (* bytes per region *)
  by_vaddr : (int, block) Hashtbl.t;  (* global: cross-shard lookup *)
  by_id : (int, block) Hashtbl.t;
  pinned : (int, unit) Hashtbl.t;  (* block ids exempt from eviction *)
  leased : (int, int) Hashtbl.t;
      (* block id -> read-lease count. A leased block has a suspended
         hart executing inside it: the allocation sweep must hop over
         it exactly as it hops over pins. Unlike pins, leases do not
         survive flushes or invalidation — those writers take the
         region by force and the parked-pc redirect re-routes the
         reader (the lease is re-established on a live block when the
         hart next suspends). *)
}

let create_sharded ~shards ~base ~bytes =
  if base land 3 <> 0 then invalid_arg "Tcache.create: unaligned base";
  if shards < 1 then invalid_arg "Tcache.create: shards must be >= 1";
  if bytes < 16 * shards then invalid_arg "Tcache.create: region too small";
  let span = (bytes land lnot 3) / shards land lnot 3 in
  let regions =
    Array.init shards (fun i ->
        let lo = base + (i * span) in
        {
          r_lo = lo;
          r_top = lo + span;
          r_alloc_ptr = lo;
          r_persist_base = lo + span;
        })
  in
  {
    base;
    top = base + (shards * span);
    regions;
    span;
    by_vaddr = Hashtbl.create 256;
    by_id = Hashtbl.create 256;
    pinned = Hashtbl.create 8;
    leased = Hashtbl.create 8;
  }

let create ~base ~bytes = create_sharded ~shards:1 ~base ~bytes
let base t = t.base
let top t = t.top
let shards t = Array.length t.regions

(* Deterministic home routing: which shard's arena a chunk is placed
   in. Any pure function of the vaddr works; word-granularity modulo
   spreads consecutive chunks across shards. *)
let home_shard t vaddr = (vaddr lsr 2) mod Array.length t.regions

let shard_of_paddr t paddr =
  if paddr < t.base || paddr >= t.top then
    invalid_arg "Tcache.shard_of_paddr: outside the tcache"
  else min (Array.length t.regions - 1) ((paddr - t.base) / t.span)

let shard_bounds t i =
  let r = t.regions.(i) in
  (r.r_lo, r.r_top)

let lookup t vaddr = Hashtbl.find_opt t.by_vaddr vaddr
let find_by_id t id = Hashtbl.find_opt t.by_id id
let is_alive t id = Hashtbl.mem t.by_id id

let register t b =
  Hashtbl.replace t.by_vaddr b.vaddr b;
  Hashtbl.replace t.by_id b.id b

let pin t (b : block) =
  if Hashtbl.mem t.by_id b.id then Hashtbl.replace t.pinned b.id ()

let unpin t (b : block) = Hashtbl.remove t.pinned b.id
let is_pinned t id = Hashtbl.mem t.pinned id
let pinned_blocks t = Hashtbl.length t.pinned
let pinned_ids t = Hashtbl.fold (fun id () acc -> id :: acc) t.pinned []

let lease t (b : block) =
  if Hashtbl.mem t.by_id b.id then
    Hashtbl.replace t.leased b.id
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.leased b.id))

let release t (b : block) =
  match Hashtbl.find_opt t.leased b.id with
  | Some n when n > 1 -> Hashtbl.replace t.leased b.id (n - 1)
  | Some _ -> Hashtbl.remove t.leased b.id
  | None -> ()

let lease_count t id =
  Option.value ~default:0 (Hashtbl.find_opt t.leased id)

let is_leased t id = Hashtbl.mem t.leased id
let leased_blocks t = Hashtbl.length t.leased

let leased_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.leased []

(* sweep obstacles: blocks the allocator may never reclaim *)
let is_obstacle t id = Hashtbl.mem t.pinned id || Hashtbl.mem t.leased id
let obstacles t = Hashtbl.length t.pinned + Hashtbl.length t.leased

let remove t b =
  Hashtbl.remove t.pinned b.id;
  Hashtbl.remove t.leased b.id;
  (match Hashtbl.find_opt t.by_vaddr b.vaddr with
  | Some b' when b'.id = b.id -> Hashtbl.remove t.by_vaddr b.vaddr
  | Some _ | None -> ());
  Hashtbl.remove t.by_id b.id

let blocks t = Hashtbl.fold (fun _ b acc -> b :: acc) t.by_id []
let resident_blocks t = Hashtbl.length t.by_id

let occupied_bytes t =
  let code =
    Hashtbl.fold (fun _ b acc -> acc + (b.words * 4)) t.by_id 0
  in
  Array.fold_left (fun acc r -> acc + (r.r_top - r.r_persist_base)) code
    t.regions

let map_entries t = Hashtbl.length t.by_vaddr

let overlapping t lo hi =
  Hashtbl.fold
    (fun _ b acc ->
      let b_lo = b.paddr and b_hi = b.paddr + (b.words * 4) in
      if b_lo < hi && b_hi > lo then b :: acc else acc)
    t.by_id []

let evict_range t lo hi =
  let victims = overlapping t lo hi in
  List.iter (remove t) victims;
  victims

(* Pinned and leased blocks are immovable obstacles for the sweep: when
   the candidate range would overlap one, skip past it. [budget] bounds
   the number of skips so a region crowded with obstacles terminates in
   [`Full] — the chunk would fit an empty region, the obstacles are
   what is in the way. *)
let rec place_skipping_pinned t (r : region) ~bytes ~budget ~can_evict =
  if budget = 0 then Error `Full
  else if r.r_alloc_ptr + bytes > r.r_persist_base then
    if can_evict then begin
      r.r_alloc_ptr <- r.r_lo;
      place_skipping_pinned t r ~bytes ~budget:(budget - 1) ~can_evict
    end
    else Error `Full
  else
    let lo = r.r_alloc_ptr in
    let hi = lo + bytes in
    let overlapping = overlapping t lo hi in
    let obstacle_overlap =
      List.filter (fun b -> is_obstacle t b.id) overlapping
    in
    match obstacle_overlap with
    | [] ->
      if overlapping <> [] && not can_evict then Error `Full
      else begin
        List.iter (remove t) overlapping;
        r.r_alloc_ptr <- hi;
        Ok (lo, overlapping)
      end
    | _ ->
      (* hop past the furthest immovable obstacle *)
      let skip_to =
        List.fold_left
          (fun acc b -> max acc (b.paddr + (b.words * 4)))
          lo obstacle_overlap
      in
      r.r_alloc_ptr <- skip_to;
      place_skipping_pinned t r ~bytes ~budget:(budget - 1) ~can_evict

let region t shard =
  if shard < 0 || shard >= Array.length t.regions then
    invalid_arg "Tcache: shard out of range"
  else t.regions.(shard)

let alloc_fifo ?(shard = 0) t ~words =
  let r = region t shard in
  let bytes = words * 4 in
  if bytes > r.r_persist_base - r.r_lo then Error `Too_large
  else
    match
      place_skipping_pinned t r ~bytes
        ~budget:(2 * (obstacles t + 2))
        ~can_evict:true
    with
    | Ok _ as ok -> ok
    | Error `Full -> Error `Full

(* Seeded variant for victim-directed policies: restart the sweep at
   the policy's chosen block so that block (and only its immediate
   neighbourhood) is reclaimed. A seed outside the code area — possible
   when the persistent stub region grew over the victim between the
   choice and the placement — is ignored and the sweep just continues,
   which degrades gracefully to FIFO for this one allocation. *)
let alloc_seeded ?(shard = 0) t ~seed ~words =
  let r = region t shard in
  let bytes = words * 4 in
  if bytes > r.r_persist_base - r.r_lo then Error `Too_large
  else begin
    if seed >= r.r_lo && seed < r.r_persist_base then r.r_alloc_ptr <- seed;
    place_skipping_pinned t r ~bytes
      ~budget:(2 * (obstacles t + 2))
      ~can_evict:true
  end

let alloc_ptr ?(shard = 0) t = (region t shard).r_alloc_ptr

let alloc_append ?(shard = 0) t ~words =
  let r = region t shard in
  let bytes = words * 4 in
  if bytes > r.r_persist_base - r.r_lo then Error `Too_large
  else
    match
      place_skipping_pinned t r ~bytes
        ~budget:(obstacles t + 2)
        ~can_evict:false
    with
    | Ok (lo, victims) ->
      assert (victims = []);
      Ok lo
    | Error _ as e -> e

let persist_base ?(shard = 0) t = (region t shard).r_persist_base

let alloc_persistent ?(shard = 0) t ~words =
  let r = region t shard in
  let bytes = words * 4 in
  if bytes > r.r_persist_base - r.r_lo then Error `Too_large
  else begin
    let lo = r.r_persist_base - bytes in
    let victims = evict_range t lo r.r_persist_base in
    r.r_persist_base <- lo;
    (* keep the FIFO sweep out of the shrunken code area *)
    if r.r_alloc_ptr > r.r_persist_base then r.r_alloc_ptr <- r.r_lo;
    Ok (lo, victims)
  end

let reset t =
  (* pinned blocks survive the flush; leases do not — the flush writer
     takes every region by force and parked readers are redirected *)
  let former = List.filter (fun b -> not (is_pinned t b.id)) (blocks t) in
  List.iter
    (fun b ->
      Hashtbl.remove t.pinned b.id;
      Hashtbl.remove t.leased b.id;
      (match Hashtbl.find_opt t.by_vaddr b.vaddr with
      | Some b' when b'.id = b.id -> Hashtbl.remove t.by_vaddr b.vaddr
      | Some _ | None -> ());
      Hashtbl.remove t.by_id b.id)
    former;
  Array.iter (fun r -> r.r_alloc_ptr <- r.r_lo) t.regions;
  former

let pp ppf t =
  if Array.length t.regions = 1 then
    Format.fprintf ppf
      "tcache [0x%x,0x%x): %d blocks, ptr=0x%x, persist=0x%x" t.base t.top
      (resident_blocks t) t.regions.(0).r_alloc_ptr
      t.regions.(0).r_persist_base
  else
    Format.fprintf ppf "tcache [0x%x,0x%x): %d blocks, %d shards%s" t.base
      t.top (resident_blocks t)
      (Array.length t.regions)
      (if leased_blocks t > 0 then
         Printf.sprintf ", %d leased" (leased_blocks t)
       else "")
