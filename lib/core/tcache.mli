(** Translation-cache bookkeeping (the CC side's data structures).

    Tracks the tcache region of client memory: which translated blocks
    occupy it, the tcache map from virtual chunk addresses to physical
    tcache addresses (the paper's hash table, Figure 4), the FIFO
    allocation order, incoming patched pointers per block (recorded "at
    the time they are created" so that eviction can unlink a block), and
    the landing pads that may be live in return addresses.

    Each allocation arena is split in two: translated blocks are
    allocated upward from its base with a circular (FIFO) sweep;
    persistent return stubs grow downward from its top and survive
    block eviction. A sharded tcache ({!create_sharded}) partitions the
    region into [K] such arenas with a deterministic {!home_shard}
    routing of chunks to arenas; the tcache *map* stays global, so a
    lookup finds a block regardless of which shard holds it
    (cross-shard lookup). This module only does bookkeeping; the
    controller performs the actual memory writes.

    On top of pins, the multi-hart controller takes {e read leases} on
    blocks that suspended harts are executing inside: a leased block is
    an immovable obstacle for the allocation sweep exactly like a
    pinned one, but leases are dropped by flushes and invalidation
    (those writers assert exclusive hold and the parked harts are
    redirected through resume addresses). *)

type incoming = {
  from_block : int;  (** block id containing the site; -1 = persistent *)
  site_paddr : int;
  revert_word : int;  (** word restoring the site to its miss stub *)
}

type block = {
  id : int;
  vaddr : int;  (** chunk start in the original program *)
  paddr : int;  (** placement in the tcache *)
  words : int;  (** emitted size *)
  orig_words : int;  (** source footprint, for invalidation by range *)
  mutable incoming : incoming list;
  pads : (int * int) list;  (** (pad paddr, return vaddr) *)
  resume : int array;
      (** per emitted word: the source vaddr execution resumes at if a
          CPU is parked on that word when the block dies *)
  stubs : int list;
      (** stub-table indices allocated for this block's sites; recycled
          by the controller when the block is evicted, keeping CC
          metadata bounded by residency rather than by run length *)
}

type t

val create : base:int -> bytes:int -> t
(** A single-arena (unsharded) tcache — [create_sharded ~shards:1]. *)

val create_sharded : shards:int -> base:int -> bytes:int -> t
(** Partition [bytes] into [shards] equal arenas. Each arena has its
    own sweep pointer and persistent-stub area; the vaddr map is
    global.
    @raise Invalid_argument on [shards < 1], an unaligned base, or a
    region too small to give every shard a useful arena. *)

val base : t -> int
(** Physical base of the tcache region. *)

val top : t -> int
(** One past the end of the tcache region. *)

val shards : t -> int
(** Number of arenas (1 for an unsharded tcache). *)

val home_shard : t -> int -> int
(** [home_shard t vaddr] — the shard whose arena the chunk at [vaddr]
    is placed in. Deterministic pure routing. *)

val shard_of_paddr : t -> int -> int
(** Which shard's arena contains this physical tcache address.
    @raise Invalid_argument outside [\[base, top)]. *)

val shard_bounds : t -> int -> int * int
(** [\[lo, top)] extent of one shard's arena. *)

val lookup : t -> int -> block option
(** tcache-map probe by chunk virtual address (global across shards). *)

val find_by_id : t -> int -> block option
val is_alive : t -> int -> bool
val register : t -> block -> unit
val blocks : t -> block list
(** All resident blocks, unordered. *)

val resident_blocks : t -> int
val occupied_bytes : t -> int
(** Blocks plus persistent stubs, summed across shards. *)

val map_entries : t -> int

val alloc_fifo :
  ?shard:int ->
  t ->
  words:int ->
  (int * block list, [ `Full | `Too_large ]) result
(** Allocate with the circular FIFO sweep of [shard] (default 0).
    Returns the placement and the blocks that had to be evicted
    (already deregistered). [`Too_large] means the chunk exceeds the
    arena's capacity outright; [`Full] means it would fit an empty
    arena but pinned or leased blocks crowd out every placement. *)

val alloc_seeded :
  ?shard:int ->
  t ->
  seed:int ->
  words:int ->
  (int * block list, [ `Full | `Too_large ]) result
(** Like {!alloc_fifo}, but restart the circular sweep at [seed] — the
    physical address of a victim block chosen by a replacement policy —
    so the placement reclaims that block first. A [seed] outside the
    shard's current code area is ignored (the sweep continues where it
    was), degrading gracefully to FIFO for this allocation. *)

val alloc_ptr : ?shard:int -> t -> int
(** Current position of the shard's circular allocation sweep
    (diagnostic; also used by tests that emulate pathological stub
    growth). *)

val alloc_append : ?shard:int -> t -> words:int -> (int, [ `Full | `Too_large ]) result
(** Allocate without evicting (flush-all policy): fail when the sweep
    pointer cannot fit the block before the persistent region. Skips
    over pinned and leased blocks left behind by a flush. *)

val persist_base : ?shard:int -> t -> int
(** Lower bound of the shard's persistent stub area — block placements
    in that shard must end at or below it. *)

val alloc_persistent :
  ?shard:int -> t -> words:int -> (int * block list, [ `Too_large ]) result
(** Carve words off the top of the shard's arena for persistent return
    stubs, evicting any blocks the stub area grows over (leases do not
    protect against persistent growth — the writer holds the region
    exclusively and parked readers are redirected). *)

val pin : t -> block -> unit
(** Exempt a resident block from eviction and flushes. The allocator
    treats it as an immovable obstacle. No-op if not resident. *)

val unpin : t -> block -> unit
val is_pinned : t -> int -> bool
val pinned_blocks : t -> int

val pinned_ids : t -> int list
(** The raw pin set, for invariant auditing (every pinned id must name
    a resident block). *)

val lease : t -> block -> unit
(** Take one read lease on a resident block: a suspended hart is
    executing inside it, so the allocation sweep must not reclaim it.
    Counted — [lease] twice needs [release] twice. No-op if the block
    is not resident. *)

val release : t -> block -> unit
(** Drop one read lease (no-op below zero). *)

val lease_count : t -> int -> int
(** Outstanding read leases on a block id (0 when none). *)

val is_leased : t -> int -> bool
val leased_blocks : t -> int
(** Distinct block ids currently holding at least one lease. *)

val leased_ids : t -> int list
(** The raw lease set, for invariant auditing. *)

val remove : t -> block -> unit
(** Deregister one block (invalidation; also clears its pin and any
    leases). Its space is reclaimed when the FIFO sweep passes over
    it. *)

val reset : t -> block list
(** Flush: deregister every unpinned block, rewind every shard's FIFO
    sweep, and return the former residents. Pinned blocks and the
    persistent stub areas are preserved — return addresses saved on
    program stacks may reference the latter across flushes. All leases
    on flushed blocks are dropped (the flush holds every arena
    exclusively; parked harts are redirected by the controller). *)

val pp : Format.formatter -> t -> unit
