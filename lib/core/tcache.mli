(** Translation-cache bookkeeping (the CC side's data structures).

    Tracks the tcache region of client memory: which translated blocks
    occupy it, the tcache map from virtual chunk addresses to physical
    tcache addresses (the paper's hash table, Figure 4), the FIFO
    allocation order, incoming patched pointers per block (recorded "at
    the time they are created" so that eviction can unlink a block), and
    the landing pads that may be live in return addresses.

    The region is split in two: translated blocks are allocated upward
    from the base with a circular (FIFO) sweep; persistent return stubs
    grow downward from the top and survive block eviction. This module
    only does bookkeeping; the controller performs the actual memory
    writes. *)

type incoming = {
  from_block : int;  (** block id containing the site; -1 = persistent *)
  site_paddr : int;
  revert_word : int;  (** word restoring the site to its miss stub *)
}

type block = {
  id : int;
  vaddr : int;  (** chunk start in the original program *)
  paddr : int;  (** placement in the tcache *)
  words : int;  (** emitted size *)
  orig_words : int;  (** source footprint, for invalidation by range *)
  mutable incoming : incoming list;
  pads : (int * int) list;  (** (pad paddr, return vaddr) *)
  resume : int array;
      (** per emitted word: the source vaddr execution resumes at if the
          CPU is parked on that word when the block dies *)
  stubs : int list;
      (** stub-table indices allocated for this block's sites; recycled
          by the controller when the block is evicted, keeping CC
          metadata bounded by residency rather than by run length *)
}

type t

val create : base:int -> bytes:int -> t

val base : t -> int
(** Physical base of the tcache region. *)

val top : t -> int
(** One past the end of the tcache region. *)

val lookup : t -> int -> block option
(** tcache-map probe by chunk virtual address. *)

val find_by_id : t -> int -> block option
val is_alive : t -> int -> bool
val register : t -> block -> unit
val blocks : t -> block list
(** All resident blocks, unordered. *)

val resident_blocks : t -> int
val occupied_bytes : t -> int
(** Blocks plus persistent stubs. *)

val map_entries : t -> int

val alloc_fifo :
  t -> words:int -> (int * block list, [ `Full | `Too_large ]) result
(** Allocate with the circular FIFO sweep. Returns the placement and
    the blocks that had to be evicted (already deregistered).
    [`Too_large] means the chunk exceeds the region's capacity outright;
    [`Full] means it would fit an empty region but pinned blocks crowd
    out every placement. *)

val alloc_seeded :
  t -> seed:int -> words:int -> (int * block list, [ `Full | `Too_large ]) result
(** Like {!alloc_fifo}, but restart the circular sweep at [seed] — the
    physical address of a victim block chosen by a replacement policy —
    so the placement reclaims that block first. A [seed] outside the
    current code area is ignored (the sweep continues where it was),
    degrading gracefully to FIFO for this allocation. *)

val alloc_ptr : t -> int
(** Current position of the circular allocation sweep (diagnostic; also
    used by tests that emulate pathological stub growth). *)

val alloc_append : t -> words:int -> (int, [ `Full | `Too_large ]) result
(** Allocate without evicting (flush-all policy): fail when the sweep
    pointer cannot fit the block before the persistent region. Skips
    over pinned blocks left behind by a flush. *)

val persist_base : t -> int
(** Lower bound of the persistent stub area — block placements must end
    at or below it. *)

val alloc_persistent : t -> words:int -> (int * block list, [ `Too_large ]) result
(** Carve words off the top of the region for persistent return stubs,
    evicting any blocks the stub area grows over. *)

val pin : t -> block -> unit
(** Exempt a resident block from eviction and flushes. The allocator
    treats it as an immovable obstacle. No-op if not resident. *)

val unpin : t -> block -> unit
val is_pinned : t -> int -> bool
val pinned_blocks : t -> int

val pinned_ids : t -> int list
(** The raw pin set, for invariant auditing (every pinned id must name
    a resident block). *)

val remove : t -> block -> unit
(** Deregister one block (invalidation; also clears its pin). Its
    space is reclaimed when the FIFO sweep passes over it. *)

val reset : t -> block list
(** Flush: deregister every unpinned block, rewind the FIFO sweep, and
    return the former residents. Pinned blocks and the persistent stub
    region are preserved — return addresses saved on program stacks may
    reference the latter across flushes. *)

val pp : Format.formatter -> t -> unit
