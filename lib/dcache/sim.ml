type stats = {
  mutable const_hits : int;
  mutable fast_hits : int;
  mutable second_chance_hits : int;
  mutable slow_hits : int;
  mutable slow_probes : int;
  mutable misses : int;
  mutable deopts : int;
  mutable specialised_sites : int;
  mutable stack_accesses : int;
  mutable data_accesses : int;
  mutable scache_checks : int;
  mutable scache_spills : int;
  mutable scache_refills : int;
  mutable extra_cycles : int;
}

let create_stats () =
  {
    const_hits = 0;
    fast_hits = 0;
    second_chance_hits = 0;
    slow_hits = 0;
    slow_probes = 0;
    misses = 0;
    deopts = 0;
    specialised_sites = 0;
    stack_accesses = 0;
    data_accesses = 0;
    scache_checks = 0;
    scache_spills = 0;
    scache_refills = 0;
    extra_cycles = 0;
  }

type site = {
  mutable pred : int;
  mutable mono_addr : int;
  mutable mono_count : int;
  mutable specialised : bool;
  mutable dead : bool; (* deoptimised once; never specialise again *)
}

let log2_ceil = Bitmath.ceil_log2

let guaranteed_latency_cycles (cfg : Config.t) =
  let blocks = cfg.dcache_bytes / cfg.block_bytes in
  cfg.predicted_hit_cycles + (cfg.search_step_cycles * log2_ceil (max 2 blocks))

let tag_checks_avoided s =
  let total = s.stack_accesses + s.data_accesses in
  if total = 0 then 0.0
  else float_of_int (s.stack_accesses + s.const_hits) /. float_of_int total

let attach ?tracer (cfg : Config.t) (cpu : Machine.Cpu.t) =
  let stats = create_stats () in
  let trace ev =
    match tracer with Some tr -> Trace.emit tr ev | None -> ()
  in
  let assoc = Assoc.create ~blocks:(cfg.dcache_bytes / cfg.block_bytes) in
  let scache = Scache.create ~frames:cfg.scache_frames in
  let sites : (int, site) Hashtbl.t = Hashtbl.create 256 in
  let min_sp = ref (Machine.Cpu.reg cpu Isa.Reg.sp) in
  let charge c = stats.extra_cycles <- stats.extra_cycles + c in
  let site_for pc =
    match Hashtbl.find_opt sites pc with
    | Some s -> s
    | None ->
      let s =
        { pred = 0; mono_addr = -1; mono_count = 0; specialised = false;
          dead = false }
      in
      Hashtbl.add sites pc s;
      s
  in
  let track_mono s addr =
    if cfg.specialise_constants && not s.dead then
      if addr = s.mono_addr then begin
        s.mono_count <- s.mono_count + 1;
        if s.mono_count >= cfg.specialise_threshold then begin
          s.specialised <- true;
          stats.specialised_sites <- stats.specialised_sites + 1;
          trace (Trace.Dc_specialise { site = cpu.pc })
        end
      end
      else begin
        s.mono_addr <- addr;
        s.mono_count <- 1
      end
  in
  let data_access addr =
    stats.data_accesses <- stats.data_accesses + 1;
    let s = site_for cpu.pc in
    if s.specialised && addr = s.mono_addr then begin
      stats.const_hits <- stats.const_hits + 1;
      charge cfg.const_cycles
    end
    else begin
      if s.specialised then begin
        (* the rewritten constant was wrong: deoptimise the site *)
        s.specialised <- false;
        s.dead <- true;
        stats.deopts <- stats.deopts + 1;
        trace (Trace.Dc_deopt { site = cpu.pc })
      end;
      let tag = addr / cfg.block_bytes in
      (match Assoc.lookup assoc ~pred:s.pred ~tag with
      | Assoc.Fast_hit, idx ->
        stats.fast_hits <- stats.fast_hits + 1;
        charge cfg.predicted_hit_cycles;
        s.pred <- idx
      | Assoc.Slow_hit probes, idx ->
        if
          cfg.prediction = Config.Second_chance
          && Assoc.probe2 assoc ~pred:s.pred ~tag
        then begin
          stats.second_chance_hits <- stats.second_chance_hits + 1;
          charge (cfg.predicted_hit_cycles + 2)
        end
        else begin
          stats.slow_hits <- stats.slow_hits + 1;
          stats.slow_probes <- stats.slow_probes + probes;
          charge
            (cfg.predicted_hit_cycles + (cfg.search_step_cycles * probes))
        end;
        s.pred <- idx
      | Assoc.Miss, _ ->
        stats.misses <- stats.misses + 1;
        trace (Trace.Dc_miss { addr });
        let probes = log2_ceil (max 2 (Assoc.occupancy assoc)) in
        charge
          (cfg.predicted_hit_cycles
          + (cfg.search_step_cycles * probes)
          + cfg.miss_fixed_cycles
          + Netmodel.request cfg.net ~payload_bytes:cfg.block_bytes);
        let idx, _evicted = Assoc.insert assoc ~tag in
        s.pred <- idx);
      track_mono s addr
    end
  in
  let classify addr =
    (* the stack lives above the lowest stack pointer ever seen *)
    if addr >= !min_sp - 64 then begin
      stats.stack_accesses <- stats.stack_accesses + 1
    end
    else data_access addr
  in
  cpu.on_load <- Some classify;
  cpu.on_store <- Some classify;
  (* leaf procedures skip the exit check: track per depth whether the
     current frame has made a call *)
  let flags = ref (Bytes.make 64 '\000') in
  let flag_set d v =
    if d >= Bytes.length !flags then begin
      let bigger = Bytes.make (2 * (d + 1)) '\000' in
      Bytes.blit !flags 0 bigger 0 (Bytes.length !flags);
      flags := bigger
    end;
    Bytes.set !flags d (if v then '\001' else '\000')
  in
  let flag_get d =
    d < Bytes.length !flags && Bytes.get !flags d = '\001'
  in
  let prev_sp = ref (Machine.Cpu.reg cpu Isa.Reg.sp) in
  let on_sp_change now =
    if now < !prev_sp then begin
      (* procedure entry *)
      stats.scache_checks <- stats.scache_checks + 1;
      charge cfg.scache_check_cycles;
      (match Scache.enter scache with
      | Scache.Entered -> ()
      | Scache.Entered_spilling n ->
        stats.scache_spills <- stats.scache_spills + n;
        trace (Trace.Dc_spill { words = n });
        charge
          ((cfg.spill_refill_cycles * n)
          + Netmodel.request cfg.net ~payload_bytes:64)
      | Scache.Left | Scache.Left_refilling -> assert false);
      let d = Scache.depth scache in
      flag_set d false;
      if d > 0 then flag_set (d - 1) true
    end
    else if now > !prev_sp then begin
      (* procedure exit; leaves skip the presence check *)
      let d = Scache.depth scache in
      if flag_get d then begin
        stats.scache_checks <- stats.scache_checks + 1;
        charge cfg.scache_check_cycles
      end;
      match Scache.leave scache with
      | Scache.Left -> ()
      | Scache.Left_refilling ->
        stats.scache_refills <- stats.scache_refills + 1;
        trace (Trace.Dc_refill { words = 1 });
        charge
          (cfg.spill_refill_cycles
          + Netmodel.request cfg.net ~payload_bytes:64)
      | Scache.Entered | Scache.Entered_spilling _ -> assert false
    end;
    prev_sp := now;
    if now < !min_sp then min_sp := now
  in
  let after_step () =
    let now = Machine.Cpu.reg cpu Isa.Reg.sp in
    if now <> !prev_sp then on_sp_change now
  in
  (stats, after_step)

let run ?cost ?(fuel = max_int) ?tracer (cfg : Config.t) img =
  let cpu = Machine.Cpu.of_image ?cost img in
  (match tracer with
  | Some tr ->
    Trace.set_clock tr (fun () -> cpu.cycles);
    Netmodel.set_tracer cfg.net (Some tr)
  | None -> ());
  let stats, after_step = attach ?tracer cfg cpu in
  let steps = ref 0 in
  while not cpu.halted && !steps < fuel do
    Machine.Cpu.step cpu;
    incr steps;
    after_step ()
  done;
  (* the dcache model's charges are folded in at the end: label them as
     dcache overhead so the attribution ledger conserves against the
     final cycle counter *)
  (match tracer with
  | Some tr -> Trace.attribute tr Trace.Dcache stats.extra_cycles
  | None -> ());
  cpu.cycles <- cpu.cycles + stats.extra_cycles;
  ((if cpu.halted then Machine.Cpu.Halted else Machine.Cpu.Out_of_fuel),
   cpu, stats)

let pp_stats ppf s =
  Format.fprintf ppf
    "data=%d (const=%d fast=%d 2nd=%d slow=%d miss=%d), stack=%d, \
     sites-specialised=%d deopts=%d, scache checks=%d spills=%d refills=%d, \
     extra cycles=%d, tag checks avoided=%.1f%%"
    s.data_accesses s.const_hits s.fast_hits s.second_chance_hits s.slow_hits
    s.misses s.stack_accesses s.specialised_sites s.deopts s.scache_checks
    s.scache_spills s.scache_refills s.extra_cycles
    (100.0 *. tag_checks_avoided s)
