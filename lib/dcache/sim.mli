(** Driver for the software data cache design.

    Runs a program on the interpreter with the Section 3 memory system
    attached: every data access is classified as stack (served by the
    {!Scache} frame buffer) or general data (served by the fully
    associative {!Assoc} store through per-site predictions), and the
    Figure 10 cycle prices are charged on top of the machine's own
    memory costs. Procedure entries and exits are detected from stack
    pointer movement; leaf procedures skip the exit presence check, as
    the design allows.

    Per-site constant specialisation models the rewriter: a load or
    store whose address has been stable for [specialise_threshold]
    executions is rewritten into a direct access and deoptimised if the
    address ever changes. *)

type stats = {
  mutable const_hits : int;  (** specialised direct accesses *)
  mutable fast_hits : int;  (** prediction correct *)
  mutable second_chance_hits : int;
  mutable slow_hits : int;  (** found by binary search *)
  mutable slow_probes : int;  (** total search probes *)
  mutable misses : int;
  mutable deopts : int;  (** specialised sites torn down *)
  mutable specialised_sites : int;
  mutable stack_accesses : int;
  mutable data_accesses : int;
  mutable scache_checks : int;
  mutable scache_spills : int;
  mutable scache_refills : int;
  mutable extra_cycles : int;
      (** cycles charged on top of the baseline machine costs *)
}

val attach :
  ?tracer:Trace.t -> Config.t -> Machine.Cpu.t -> stats * (unit -> unit)
(** Install the data-cache model on an existing CPU: hooks classify
    every load and store, and the returned thunk must be invoked after
    each [Machine.Cpu.step] (it watches the stack pointer to detect
    procedure entry and exit). [stats.extra_cycles] accumulates the
    charges; the caller decides when to fold them into the CPU's cycle
    counter. Replaces any load/store hooks already installed — attach
    the data cache last. With [tracer], state transitions (site
    specialisation / deopt, misses, scache spills and refills) are
    recorded as structured events; recording never changes behaviour
    or cost. *)

val run :
  ?cost:Machine.Cost.t ->
  ?fuel:int ->
  ?tracer:Trace.t ->
  Config.t ->
  Isa.Image.t ->
  Machine.Cpu.outcome * Machine.Cpu.t * stats
(** Execute the image to completion under the software data cache.
    The observable results are unchanged (the design never alters
    values, only costs); the returned statistics and the CPU's cycle
    counter carry the measurements. With [tracer], its clock is bound
    to this run's CPU, the channel's frame events are forwarded into
    the ring, and [stats.extra_cycles] is labelled as dcache overhead
    in the attribution ledger when folded in, so [Trace.conserved]
    holds against the final cycle counter. *)

val tag_checks_avoided : stats -> float
(** Fraction of data accesses that paid no tag check at all (stack
    accesses within resident frames plus specialised constants) — the
    design's headline metric. *)

val guaranteed_latency_cycles : Config.t -> int
(** The worst on-chip latency: a slow hit through a full binary
    search — "the guaranteed memory latency is the speed of a slow
    hit". *)

val pp_stats : Format.formatter -> stats -> unit
