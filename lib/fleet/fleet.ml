(* Multi-client MC fleet service over one shared Netmodel link.

   The simulation is discrete-event in *virtual* time: every session
   carries its own cycle counter ([cpu.cycles]), and the shared link
   serializes frames with a single [link_free_at] horizon measured on
   the same axis. The scheduler interleaves sessions in bounded
   instruction slices, so clients' clocks drift past each other —
   which is exactly what creates the coalescing and piggybacking
   windows a real fleet MC would see.

   Determinism is load-bearing (the bench gate diffs two runs
   byte-for-byte): every iteration below is over arrays or queues in
   insertion order, never over hashtable bindings. *)

open Softcache

type fairness = Fifo | Round_robin

let fairness_table = [ ("fifo", Fifo); ("rr", Round_robin) ]

let fairness_name f =
  match List.find_opt (fun (_, v) -> v = f) fairness_table with
  | Some (n, _) -> n
  | None -> assert false

let fairness_of_name n =
  List.assoc_opt (String.lowercase_ascii n) fairness_table

type config = {
  clients : int;
  fairness : fairness;
  dedup : bool;
  batching : bool;
  cache_chunks : int;
  quantum : int;
}

let config ?(clients = 4) ?(fairness = Fifo) ?(dedup = true)
    ?(batching = true) ?(cache_chunks = 256) ?(quantum = 256) () =
  if clients < 1 then invalid_arg "Fleet.config: clients must be >= 1";
  if quantum < 1 then invalid_arg "Fleet.config: quantum must be >= 1";
  if cache_chunks < 0 then
    invalid_arg "Fleet.config: cache_chunks must be >= 0";
  { clients; fairness; dedup; batching; cache_chunks; quantum }

type outcome =
  | Running
  | Halted
  | Out_of_fuel
  | Unavailable of { vaddr : int; attempts : int }

let pp_outcome ppf = function
  | Running -> Format.fprintf ppf "running"
  | Halted -> Format.fprintf ppf "halted"
  | Out_of_fuel -> Format.fprintf ppf "out-of-fuel"
  | Unavailable { vaddr; attempts } ->
      Format.fprintf ppf "unavailable(0x%x after %d attempts)" vaddr attempts

type session = {
  s_id : int;
  s_ctrl : Controller.t;
  s_image : Isa.Image.t;
      (* the workload this client runs — under heterogeneous fleets the
         audit checks every cached chunk against *this* image's text
         segment, not just the request log *)
  s_shard : Shard.t option;
      (* multi-hart client: the controller is wrapped by the shard
         layer and advanced through its scheduler ([Config.harts > 1]) *)
  s_predicted : int option;
      (* [Sizing]-predicted tcache bytes fed into admission; [None]
         when auto-sizing was not requested for this client *)
  mutable s_outcome : outcome;
  s_requested : (int, unit) Hashtbl.t;
      (* every vaddr this session asked the MC for, demand or prefetch
         rider — the audit's isolation ground truth *)
  mutable s_stalls : int list;  (* reverse attempt order *)
  mutable s_fetches : int;
  mutable s_coalesced : int;
}

(* A frame in flight (or just landed) whose *delivered* demand content
   other clients may coalesce onto. Keyed by the demand payload's exact
   content; holds the received copy — possibly corrupted, so a joiner's
   CRC check stays honest and retries exactly as if it had fetched. *)
type window = { w_completes : int; w_content : Bytes.t }

type t = {
  fc : config;
  fnet : Netmodel.t;
  mutable sessions : session array;
  (* shared-link serialization, virtual cycles *)
  mutable now : int;  (* clock of the session currently being served *)
  mutable link_free_at : int;
  mutable frame_open_until : int;
      (* dispatch instant of the last *delivered* frame: a request whose
         clock is still before it arrived while the frame sat on the
         link, so its segments can ride along; -1 = nothing to ride *)
  (* content-addressed shared chunk cache (the mc_crc memoizer) *)
  cache : (string, int) Hashtbl.t;
  cache_order : string Queue.t;
  mutable f_cache_hits : int;
  mutable f_cache_misses : int;
  mutable f_cache_evictions : int;
  (* coalescing windows *)
  windows : (string, window) Hashtbl.t;
  window_order : (string * int) Queue.t;
  (* MC-side counters *)
  mutable f_attempts : int;
  mutable f_frames : int;
  mutable f_coalesced : int;
  mutable f_piggybacked : int;
  (* link counters at create, so every metric is a delta and a pre-used
     link (e.g. a profiling pre-run sharing the config) cannot skew the
     fleet's books *)
  base_messages : int;
  base_payload : int;
  base_total : int;
  base_duplicates : int;
  mutable rr_cursor : int;
  mutable tracer : Trace.t option;
}

let trace t ev =
  match t.tracer with Some tr -> Trace.emit tr ev | None -> ()

(* --- shared chunk cache ------------------------------------------- *)

let cache_evict_to_bound t =
  let rec drop () =
    if Hashtbl.length t.cache >= t.fc.cache_chunks then
      match Queue.take_opt t.cache_order with
      | None -> ()
      | Some old ->
          if Hashtbl.mem t.cache old then begin
            Hashtbl.remove t.cache old;
            t.f_cache_evictions <- t.f_cache_evictions + 1
          end;
          drop ()
  in
  drop ()

(* The dedup cache *is* the CRC-stamp memoizer: a hit means the MC
   already chunked and CRC-stamped this exact content for some client
   and serves the stamp from the shared cache; only misses chunk. The
   memoized value is what Crc32 would return, so installing the hook
   never changes what any client observes — only the MC's books. *)
let crc_stamp t payload =
  if (not t.fc.dedup) || t.fc.cache_chunks <= 0 then Crc32.bytes payload
  else
    let key = Bytes.to_string payload in
    match Hashtbl.find_opt t.cache key with
    | Some crc ->
        t.f_cache_hits <- t.f_cache_hits + 1;
        crc
    | None ->
        t.f_cache_misses <- t.f_cache_misses + 1;
        let crc = Crc32.bytes payload in
        cache_evict_to_bound t;
        Hashtbl.replace t.cache key crc;
        Queue.add key t.cache_order;
        crc

(* --- coalescing windows ------------------------------------------- *)

(* Windows may only be reclaimed once no session can still join them.
   Session clocks are not monotone across transport calls (a lagging
   client's [now] is legitimately earlier than a window another client
   opened), so pruning against the *current* requester's clock would
   drop joins. The safe horizon is the minimum clock over sessions that
   can still issue requests. *)
let horizon t =
  Array.fold_left
    (fun acc s ->
      if s.s_outcome = Running then min acc s.s_ctrl.cpu.cycles else acc)
    max_int t.sessions

let prune_windows t =
  let h = horizon t in
  let rec go () =
    match Queue.peek_opt t.window_order with
    | Some (key, completes) when completes <= h ->
        ignore (Queue.pop t.window_order);
        (match Hashtbl.find_opt t.windows key with
        | Some w when w.w_completes <= h -> Hashtbl.remove t.windows key
        | _ -> ());
        go ()
    | _ -> ()
  in
  go ()

let open_window t key ~completes ~content =
  if t.fc.dedup then begin
    Hashtbl.replace t.windows key { w_completes = completes; w_content = content };
    Queue.add (key, completes) t.window_order
  end

(* --- the MC transport --------------------------------------------- *)

(* Every stall sample also lands in the trace, so the exported timeline
   carries the same population the summary's percentiles are computed
   from. [trace] charges nothing — conservation is untouched. *)
let sample t s cycles =
  s.s_stalls <- cycles :: s.s_stalls;
  trace t (Trace.Fl_stall { client = s.s_id; cycles })

(* One demand frame from session [s]. [payloads] is the MC-stamped
   demand segment followed by its prefetch riders; whatever we return
   flows straight into the client's retry/CRC machinery, so faults are
   reported exactly as [Netmodel.transfer_batch] would. *)
let transport t s ~vaddr ~prefetch_vaddrs ~payloads =
  let now = s.s_ctrl.cpu.cycles in
  t.now <- now;
  t.f_attempts <- t.f_attempts + 1;
  s.s_fetches <- s.s_fetches + 1;
  Hashtbl.replace s.s_requested vaddr ();
  List.iter (fun pv -> Hashtbl.replace s.s_requested pv ()) prefetch_vaddrs;
  trace t (Trace.Fl_request { client = s.s_id; chunk = vaddr });
  let demand = List.hd payloads in
  let key = Bytes.to_string demand in
  prune_windows t;
  let joinable =
    if t.fc.dedup then
      match Hashtbl.find_opt t.windows key with
      | Some w when now < w.w_completes -> Some w
      | _ -> None
    else None
  in
  match joinable with
  | Some w ->
      (* Identical content is already on its way to another client: wait
         for that frame to land and read the same delivered bytes. No
         wire traffic, no rng draw. *)
      let wait = w.w_completes - now in
      t.f_coalesced <- t.f_coalesced + 1;
      s.s_coalesced <- s.s_coalesced + 1;
      sample t s wait;
      trace t (Trace.Fl_coalesce { client = s.s_id; chunk = vaddr; wait });
      Ok (wait, [ Bytes.copy w.w_content ])
  | None ->
      let dispatch_at = max now t.link_free_at in
      let queued = dispatch_at - now in
      if t.fc.batching && now < t.link_free_at && now <= t.frame_open_until
      then begin
        (* The frame occupying the link had not yet departed when this
           request arrived (in virtual time): append the segments to it
           at marginal per-byte cost — no second latency or header. *)
        let cost, segments = Netmodel.transfer_piggyback t.fnet ~payloads in
        t.f_piggybacked <- t.f_piggybacked + 1;
        t.link_free_at <- t.link_free_at + cost;
        let total_wait = t.link_free_at - now in
        (match segments with
        | received :: _ ->
            open_window t key ~completes:t.link_free_at ~content:received
        | [] -> ());
        sample t s total_wait;
        trace t
          (Trace.Fl_piggyback
             { client = s.s_id; bytes = Bytes.length demand });
        Ok (total_wait, segments)
      end
      else begin
        t.f_frames <- t.f_frames + 1;
        trace t
          (Trace.Fl_frame
             { client = s.s_id; segments = List.length payloads; queued });
        match Netmodel.transfer_batch t.fnet ~payloads with
        | Error (`Dropped wasted) ->
            (* the link was still burned for the wasted cycles; nothing
               landed, so nothing to coalesce onto *)
            t.link_free_at <- dispatch_at + wasted;
            t.frame_open_until <- -1;
            sample t s (queued + wasted);
            Error (`Dropped (queued + wasted))
        | Ok (cost, segments) ->
            t.link_free_at <- dispatch_at + cost;
            t.frame_open_until <- dispatch_at;
            (match segments with
            | received :: _ ->
                open_window t key ~completes:t.link_free_at ~content:received
            | [] -> ());
            sample t s (queued + cost);
            Ok (queued + cost, segments)
      end

(* --- construction -------------------------------------------------- *)

let default_config = config ()

(* [sizing] is the auto-size admission hook: for client [i] it returns
   the [Sizing.estimate]-predicted smallest acceptable tcache in bytes
   (the caller runs the analytic model — the profiler lives above this
   layer). An under-provisioned client is admitted at the predicted
   size instead of its configured one; the summary reports both. *)
let create ?cost ?(config = default_config) ?sizing ~net mk_cfg images =
  if Array.length images = 0 then invalid_arg "Fleet.create: no images";
  let t =
    {
      fc = config;
      fnet = net;
      sessions = [||];
      now = 0;
      link_free_at = 0;
      frame_open_until = -1;
      cache = Hashtbl.create 256;
      cache_order = Queue.create ();
      f_cache_hits = 0;
      f_cache_misses = 0;
      f_cache_evictions = 0;
      windows = Hashtbl.create 32;
      window_order = Queue.create ();
      f_attempts = 0;
      f_frames = 0;
      f_coalesced = 0;
      f_piggybacked = 0;
      base_messages = Netmodel.messages net;
      base_payload = Netmodel.payload_bytes net;
      base_total = Netmodel.total_bytes net;
      base_duplicates = Netmodel.duplicates net;
      rr_cursor = 0;
      tracer = None;
    }
  in
  (* the transport hooks close over [t], so the sessions are stitched in
     after the record exists *)
  t.sessions <-
    Array.init config.clients (fun i ->
        let cfg = { (mk_cfg i) with Config.net } in
        let predicted = match sizing with Some f -> f i | None -> None in
        let cfg =
          match predicted with
          | Some p when p > cfg.Config.tcache_bytes ->
              { cfg with Config.tcache_bytes = (p + 15) land lnot 15 }
          | Some _ | None -> cfg
        in
        let image = images.(i mod Array.length images) in
        let ctrl = Controller.create ?cost cfg image in
        let shard =
          if cfg.Config.harts > 1 then Some (Shard.attach ctrl) else None
        in
        let s =
          {
            s_id = i;
            s_ctrl = ctrl;
            s_image = image;
            s_shard = shard;
            s_predicted = predicted;
            s_outcome = Running;
            s_requested = Hashtbl.create 64;
            s_stalls = [];
            s_fetches = 0;
            s_coalesced = 0;
          }
        in
        ctrl.Controller.mc_crc <- Some (fun payload -> crc_stamp t payload);
        ctrl.Controller.mc_transport <-
          Some
            (fun ~vaddr ~prefetch_vaddrs ~payloads ->
              transport t s ~vaddr ~prefetch_vaddrs ~payloads);
        s);
  t

let attach_tracer t tr =
  t.tracer <- Some tr;
  Trace.set_clock tr (fun () -> t.now);
  Netmodel.set_tracer t.fnet (Some tr)

(* --- scheduling ----------------------------------------------------- *)

(* Binary min-heap of (virtual clock, session id) keys, compared
   lexicographically — the Fifo scheduler's pick structure. The old
   linear scan rescanned every session per quantum pick, O(N) each; the
   heap makes a pick O(log N). The lexicographic order is exactly the
   scan's fold (strict [<] on clocks, first-visited — i.e. lowest id —
   wins ties), so the two are pick-identical; the qcheck equivalence
   property in test_fleet drives both against random schedules. *)
module Clockheap = struct
  type t = { mutable keys : (int * int) array; mutable len : int }

  let create ?(capacity = 16) () =
    { keys = Array.make (max 1 capacity) (0, 0); len = 0 }

  let length h = h.len
  let is_empty h = h.len = 0
  let lt (c1, i1) (c2, i2) = c1 < c2 || (c1 = c2 && i1 < i2)

  let swap h i j =
    let tmp = h.keys.(i) in
    h.keys.(i) <- h.keys.(j);
    h.keys.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if lt h.keys.(i) h.keys.(p) then begin
        swap h i p;
        sift_up h p
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = if l < h.len && lt h.keys.(l) h.keys.(i) then l else i in
    let m = if r < h.len && lt h.keys.(r) h.keys.(m) then r else m in
    if m <> i then begin
      swap h i m;
      sift_down h m
    end

  let push h ~clock ~id =
    if h.len = Array.length h.keys then begin
      let bigger = Array.make (2 * h.len) (0, 0) in
      Array.blit h.keys 0 bigger 0 h.len;
      h.keys <- bigger
    end;
    h.keys.(h.len) <- (clock, id);
    h.len <- h.len + 1;
    sift_up h (h.len - 1)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.keys.(0) in
      h.len <- h.len - 1;
      h.keys.(0) <- h.keys.(h.len);
      if h.len > 0 then sift_down h 0;
      Some top
    end
end

let runnable s = s.s_outcome = Running

(* Multi-hart sessions retire instructions on several cpus; fuel
   accounting uses the furthest hart (the shard scheduler hands each
   hart the same per-call fuel, so the max is what bounds progress). *)
let session_retired s =
  match s.s_shard with
  | None -> s.s_ctrl.Controller.cpu.retired
  | Some sh ->
      List.fold_left
        (fun acc (h : Shard.hart) -> max acc h.h_cpu.retired)
        0 (Shard.harts sh)

let session_run ~fuel s =
  match s.s_shard with
  | None -> Controller.run ~fuel s.s_ctrl
  | Some sh -> Shard.run ~fuel sh

let pick_rr t =
  let n = Array.length t.sessions in
  let rec scan k =
    if k >= n then None
    else
      let s = t.sessions.((t.rr_cursor + k) mod n) in
      if runnable s then begin
        t.rr_cursor <- (t.rr_cursor + k + 1) mod n;
        Some s
      end
      else scan (k + 1)
  in
  scan 0

(* One quantum for session [s]. Returns true while the session should
   stay in the schedule. *)
let step ~fuel t s =
  let left = fuel - session_retired s in
  if left <= 0 then begin
    s.s_outcome <- Out_of_fuel;
    false
  end
  else begin
    let slice = min t.fc.quantum left in
    t.now <- s.s_ctrl.cpu.cycles;
    match session_run ~fuel:slice s with
    | Machine.Cpu.Halted ->
        s.s_outcome <- Halted;
        false
    | Machine.Cpu.Out_of_fuel ->
        if fuel - session_retired s <= 0 then begin
          s.s_outcome <- Out_of_fuel;
          false
        end
        else true
    | exception Controller.Chunk_unavailable { vaddr; attempts } ->
        s.s_outcome <- Unavailable { vaddr; attempts };
        false
  end

(* Fifo = serve the least-advanced virtual clock first (the shared-link
   arrival order a real MC would observe); ties break to the lowest
   session id so the schedule is total and deterministic. Heap keys
   cannot go stale while queued — a session's clock only advances when
   it is picked and run, and it is re-pushed with the fresh clock — but
   resumed [run] calls rebuild the heap, and the staleness check keeps
   the pick honest should a future hook ever move a waiting clock. *)
let run_fifo ~fuel t =
  let heap = Clockheap.create ~capacity:(Array.length t.sessions) () in
  Array.iter
    (fun s ->
      if runnable s then
        Clockheap.push heap ~clock:s.s_ctrl.cpu.cycles ~id:s.s_id)
    t.sessions;
  let rec loop () =
    match Clockheap.pop heap with
    | None -> ()
    | Some (clock, id) ->
        let s = t.sessions.(id) in
        if not (runnable s) then loop ()
        else if s.s_ctrl.cpu.cycles <> clock then begin
          Clockheap.push heap ~clock:s.s_ctrl.cpu.cycles ~id;
          loop ()
        end
        else begin
          if step ~fuel t s then
            Clockheap.push heap ~clock:s.s_ctrl.cpu.cycles ~id;
          loop ()
        end
  in
  loop ()

let run ?(fuel = 2_000_000) t =
  match t.fc.fairness with
  | Fifo -> run_fifo ~fuel t
  | Round_robin ->
      let rec loop () =
        match pick_rr t with
        | None -> ()
        | Some s ->
            let (_ : bool) = step ~fuel t s in
            loop ()
      in
      loop ()

(* --- introspection -------------------------------------------------- *)

let session_id s = s.s_id
let controller s = s.s_ctrl
let image s = s.s_image
let shard s = s.s_shard
let predicted_tcache s = s.s_predicted
let outcome s = s.s_outcome
let requested s v = Hashtbl.mem s.s_requested v
let fetches s = s.s_fetches
let session_coalesced s = s.s_coalesced
let stall_samples s = List.rev_map float_of_int s.s_stalls
let config_of t = t.fc
let net t = t.fnet
let sessions t = t.sessions
let attempts t = t.f_attempts
let frames t = t.f_frames
let coalesced t = t.f_coalesced
let piggybacked t = t.f_piggybacked
let cache_hits t = t.f_cache_hits
let cache_misses t = t.f_cache_misses
let cache_entries t = Hashtbl.length t.cache
let cache_evictions t = t.f_cache_evictions
let messages_delta t = Netmodel.messages t.fnet - t.base_messages
let duplicates_delta t = Netmodel.duplicates t.fnet - t.base_duplicates

(* --- metrics -------------------------------------------------------- *)

type client_stats = {
  c_id : int;
  c_outcome : outcome;
  c_cycles : int;
  c_retired : int;
  c_translations : int;
  c_traps : int;
  c_fetches : int;
  c_coalesced : int;
  c_workload : string;
  c_harts : int;
  c_tcache_bytes : int;  (* the size the client was admitted at *)
  c_predicted_bytes : int option;
      (** [Sizing]-predicted smallest acceptable tcache under
          [create ?sizing]; [None] when auto-sizing was off *)
  c_stall_p50 : float option;
      (** [None] when the client recorded no stall samples — e.g. every
          chunk arrived via another client's dedup window before this
          one ever touched the wire. Masking the empty case as 0.0
          would be indistinguishable from a genuinely stall-free
          population; [Report.percentile] itself stays strict. *)
  c_stall_p99 : float option;
}

type summary = {
  f_clients : int;
  f_fairness : fairness;
  f_dedup : bool;
  f_batching : bool;
  f_attempts : int;
  f_frames : int;
  f_coalesced : int;
  f_piggybacked : int;
  f_cache_hits : int;
  f_cache_misses : int;
  f_cache_entries : int;
  f_messages : int;
  f_payload_bytes : int;
  f_wire_bytes : int;
  f_per_client : client_stats list;
}

let client_stats s =
  let c = s.s_ctrl in
  let stalls = stall_samples s in
  let pct p = if stalls = [] then None else Some (Report.percentile p stalls) in
  (* a multi-hart client's wall clock is the shard makespan and its
     work is the sum over harts, not the scheduler-resident cpu *)
  let cycles, retired =
    match s.s_shard with
    | None -> (c.cpu.cycles, c.cpu.retired)
    | Some sh ->
        ( Shard.makespan sh,
          List.fold_left
            (fun acc (h : Shard.hart) -> acc + h.h_cpu.retired)
            0 (Shard.harts sh) )
  in
  {
    c_id = s.s_id;
    c_outcome = s.s_outcome;
    c_cycles = cycles;
    c_retired = retired;
    c_translations = c.stats.Stats.translations;
    c_traps = c.stats.Stats.traps;
    c_fetches = s.s_fetches;
    c_coalesced = s.s_coalesced;
    c_workload = s.s_image.Isa.Image.name;
    c_harts = c.cfg.Config.harts;
    c_tcache_bytes = c.cfg.Config.tcache_bytes;
    c_predicted_bytes = s.s_predicted;
    c_stall_p50 = pct 50.0;
    c_stall_p99 = pct 99.0;
  }

let summary t =
  {
    f_clients = t.fc.clients;
    f_fairness = t.fc.fairness;
    f_dedup = t.fc.dedup;
    f_batching = t.fc.batching;
    f_attempts = t.f_attempts;
    f_frames = t.f_frames;
    f_coalesced = t.f_coalesced;
    f_piggybacked = t.f_piggybacked;
    f_cache_hits = t.f_cache_hits;
    f_cache_misses = t.f_cache_misses;
    f_cache_entries = Hashtbl.length t.cache;
    f_messages = messages_delta t;
    f_payload_bytes = Netmodel.payload_bytes t.fnet - t.base_payload;
    f_wire_bytes = Netmodel.total_bytes t.fnet - t.base_total;
    f_per_client = Array.to_list (Array.map client_stats t.sessions);
  }

let stall_str = function
  | Some v -> Printf.sprintf "%.0f" v
  | None -> "n/a"

let summary_fields t =
  let s = summary t in
  let joined f =
    String.concat ";" (List.map f s.f_per_client)
  in
  let outcome_str c = Format.asprintf "%a" pp_outcome c.c_outcome in
  [
    ("clients", string_of_int s.f_clients);
    ("fairness", fairness_name s.f_fairness);
    ("dedup", string_of_bool s.f_dedup);
    ("batching", string_of_bool s.f_batching);
    ("attempts", string_of_int s.f_attempts);
    ("frames", string_of_int s.f_frames);
    ("coalesced", string_of_int s.f_coalesced);
    ("piggybacked", string_of_int s.f_piggybacked);
    ("cache_hits", string_of_int s.f_cache_hits);
    ("cache_misses", string_of_int s.f_cache_misses);
    ("cache_entries", string_of_int s.f_cache_entries);
    ("messages", string_of_int s.f_messages);
    ("payload_bytes", string_of_int s.f_payload_bytes);
    ("wire_bytes", string_of_int s.f_wire_bytes);
    ("outcomes", joined outcome_str);
    ("cycles", joined (fun c -> string_of_int c.c_cycles));
    ("retired", joined (fun c -> string_of_int c.c_retired));
    ("translations", joined (fun c -> string_of_int c.c_translations));
    ("traps", joined (fun c -> string_of_int c.c_traps));
    ("workloads", joined (fun c -> c.c_workload));
    ("harts", joined (fun c -> string_of_int c.c_harts));
    ("tcache_bytes", joined (fun c -> string_of_int c.c_tcache_bytes));
    ( "predicted_bytes",
      joined (fun c ->
          match c.c_predicted_bytes with
          | Some p -> string_of_int p
          | None -> "n/a") );
    ("stall_p50", joined (fun c -> stall_str c.c_stall_p50));
    ("stall_p99", joined (fun c -> stall_str c.c_stall_p99));
  ]

let print_summary t =
  List.iter (fun (k, v) -> Report.kv k v) (summary_fields t)
