(** Multi-client MC fleet service, as a deterministic discrete-event
    simulation.

    One memory controller serves [N] cache-controller clients — each a
    full [Softcache.Controller] session running its own workload —
    multiplexed over a single shared [Netmodel] link. The fleet layer
    owns what the paper's one-client MC never needed:

    - {b per-client sessions}: each client keeps its own tcache,
      statistics and virtual clock ([cpu.cycles]); the fleet advances
      them in bounded slices under a pluggable fairness policy;
    - {b a shared server-side chunk cache with content dedup}: CRC
      stamps are memoized by exact payload content, so identical chunks
      requested by many clients are chunked and CRC-computed once
      (wired into the controllers through [Controller.mc_crc]);
    - {b request coalescing}: a miss for content identical to a frame
      already in flight joins that frame — it waits until the frame
      lands and reads the same delivered bytes, putting nothing new on
      the wire;
    - {b frame batching}: a miss that (in virtual time) arrives before
      the frame occupying the link has departed rides it as piggyback
      segments at marginal per-byte cost — no latency, no per-message
      overhead ([Netmodel.transfer_piggyback]);
    - {b link serialization}: the shared link carries one frame at a
      time; a request finding the link busy queues until it frees, and
      the queueing wait is charged to the requesting client's clock.

    Everything is deterministic: same seed, same config, same workloads
    — same byte-for-byte summary. A 1-client fleet is {e cycle-identical}
    to the plain single-controller path ([Check.Lockstep.fleet] proves
    it): queueing wait is provably zero, coalescing and batching cannot
    trigger, and the dedup cache memoizes values it would have computed
    anyway. *)

(** {1 Scheduler pick structure} *)

(** Binary min-heap of [(virtual clock, session id)] keys in
    lexicographic order — the Fifo scheduler's O(log N) replacement for
    the old O(N) rescan-everything pick. Exposed so the qcheck
    equivalence property can drive it against the linear-scan reference
    over random schedules. *)
module Clockheap : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Empty heap; [capacity] (default 16) is a hint, the array grows. *)

  val length : t -> int
  val is_empty : t -> bool

  val push : t -> clock:int -> id:int -> unit

  val pop : t -> (int * int) option
  (** Remove and return the minimal [(clock, id)] key: lowest clock,
      ties to the lowest id — exactly the fold order of a linear scan
      keeping the strictly-smaller clock with first-visited wins. *)
end

(** {1 Fairness policies} *)

type fairness =
  | Fifo  (** least-advanced virtual clock runs next (ties: lowest id) *)
  | Round_robin  (** strict cyclic order over runnable sessions *)

val fairness_table : (string * fairness) list
(** The one place CLI flags, printers and sweeps draw the valid set
    from — the [Config.eviction_table] idiom. *)

val fairness_name : fairness -> string
val fairness_of_name : string -> fairness option

(** {1 Configuration} *)

type config = private {
  clients : int;  (** number of CC sessions (>= 1) *)
  fairness : fairness;
  dedup : bool;
      (** shared chunk cache + request coalescing; off = the baseline
          every dedup gate compares against *)
  batching : bool;  (** cross-client frame piggybacking *)
  cache_chunks : int;
      (** bound on shared chunk-cache entries (content-addressed,
          FIFO-evicted); 0 disables the cache even with [dedup] *)
  quantum : int;  (** instructions per scheduling slice *)
}

val config :
  ?clients:int ->
  ?fairness:fairness ->
  ?dedup:bool ->
  ?batching:bool ->
  ?cache_chunks:int ->
  ?quantum:int ->
  unit ->
  config
(** Defaults: 4 clients, [Fifo], dedup and batching on, 256 cache
    entries, 256-instruction quantum.
    @raise Invalid_argument on [clients < 1], [quantum < 1] or
    [cache_chunks < 0]. *)

(** {1 Sessions} *)

type outcome =
  | Running
  | Halted
  | Out_of_fuel
  | Unavailable of { vaddr : int; attempts : int }
      (** the shared link gave up on a chunk for this client; the other
          sessions keep running *)

val pp_outcome : Format.formatter -> outcome -> unit

type session

val session_id : session -> int
val controller : session -> Softcache.Controller.t

val image : session -> Isa.Image.t
(** The workload this session runs — under a heterogeneous fleet
    ([Fleet.create] with several images) each client's isolation is
    audited against {e its own} image's text segment. *)

val shard : session -> Softcache.Shard.t option
(** The multi-hart wrapper, when the session's [Config.harts > 1]; such
    sessions advance through [Shard.run] (their controller's cpu is only
    one hart among several). [None] for single-hart clients. *)

val predicted_tcache : session -> int option
(** The [Sizing]-predicted smallest acceptable tcache in bytes that the
    [?sizing] admission hook returned for this client; [None] when
    auto-sizing was off. *)

val outcome : session -> outcome

val requested : session -> int -> bool
(** Has this session ever requested the chunk at this vaddr (as a
    demand miss or as a prefetch rider on one of its own frames)? The
    isolation invariant [Check.Audit.fleet] enforces: every block
    resident or staged in a session maps to a requested vaddr. *)

val fetches : session -> int
(** Demand transport attempts this session made against the MC. *)

val session_coalesced : session -> int
(** How many of those attempts were served by joining an in-flight
    frame. *)

val stall_samples : session -> float list
(** Cycles this session stalled per transport attempt (queueing wait +
    wire time, or wait-until-landing for coalesced joins), in attempt
    order — the input to the p50/p99 metrics. *)

(** {1 The fleet} *)

type t

val create :
  ?cost:Machine.Cost.t ->
  ?config:config ->
  ?sizing:(int -> int option) ->
  net:Netmodel.t ->
  (int -> Softcache.Config.t) ->
  Isa.Image.t array ->
  t
(** [create ~net mk_cfg images] builds [config.clients] sessions;
    session [i] runs [images.(i mod length)] under [mk_cfg i] with its
    [Config.net] replaced by the shared link [net] (pass the net from
    one of the configs to share its fault schedule). The sessions'
    [mc_transport] and [mc_crc] hooks are pointed at the fleet MC; no
    session starts executing until {!run}.

    [sizing] is the auto-size admission hook: for client [i] it returns
    the [Sizing.estimate]-predicted smallest acceptable tcache in bytes
    (the caller runs the analytic model — the profiler lives above this
    layer). A client whose configured [tcache_bytes] falls below the
    prediction is admitted at the predicted size (rounded up to a
    16-byte boundary) instead; the per-client stats report both sizes.
    Sizing never shrinks a configured tcache.

    A client whose config asks for [harts > 1] is wrapped in a
    {!Softcache.Shard} and advanced through the shard scheduler; its
    fuel is measured on the furthest hart.
    @raise Invalid_argument if [images] is empty. *)

val run : ?fuel:int -> t -> unit
(** Drive every session to halt (or [fuel] retired instructions per
    client, default 2M; or chunk unavailability) in
    [config.quantum]-instruction slices ordered by the fairness
    policy. Deterministic; idempotent once every session has left
    [Running]. *)

val attach_tracer : t -> Trace.t -> unit
(** Attach a structured-event observer: fleet events (requests,
    coalesced joins, frames, piggybacks) and shared-link frame/fault
    events are recorded, stamped by the fleet's virtual clock (the
    clock of the session being served). Observational only. *)

(** {1 Introspection (audit surface)} *)

val config_of : t -> config
val net : t -> Netmodel.t
val sessions : t -> session array

val attempts : t -> int
(** Demand transport attempts that reached the MC, across sessions. *)

val frames : t -> int
(** Frames actually dispatched on the shared link (including dropped
    ones). *)

val coalesced : t -> int
(** Attempts served by joining an in-flight frame (no wire traffic). *)

val piggybacked : t -> int
(** Attempts that rode a frame still occupying the link. *)

val cache_hits : t -> int
val cache_misses : t -> int
val cache_entries : t -> int
val cache_evictions : t -> int

val messages_delta : t -> int
(** Shared-link messages accounted since {!create} — with the fleet as
    the link's only user this must equal [frames + duplicates_delta]
    (piggybacks account no message), the conservation law
    [Check.Audit.fleet] checks. *)

val duplicates_delta : t -> int

(** {1 Metrics} *)

type client_stats = {
  c_id : int;
  c_outcome : outcome;
  c_cycles : int;
      (** single-hart: the session cpu's cycle clock; multi-hart: the
          shard makespan (max over hart clocks) *)
  c_retired : int;  (** summed over harts for multi-hart sessions *)
  c_translations : int;
  c_traps : int;
  c_fetches : int;
  c_coalesced : int;
  c_workload : string;  (** [Isa.Image.name] of the session's image *)
  c_harts : int;
  c_tcache_bytes : int;  (** the size the client was admitted at *)
  c_predicted_bytes : int option;
      (** [Sizing]-predicted smallest acceptable tcache under
          [create ?sizing]; [None] when auto-sizing was off *)
  c_stall_p50 : float option;
      (** [None] when the session recorded no stall samples (it never
          touched the wire) — rendered as ["n/a"] by [summary_fields],
          never masked as 0 *)
  c_stall_p99 : float option;
}

type summary = {
  f_clients : int;
  f_fairness : fairness;
  f_dedup : bool;
  f_batching : bool;
  f_attempts : int;
  f_frames : int;
  f_coalesced : int;
  f_piggybacked : int;
  f_cache_hits : int;
  f_cache_misses : int;
  f_cache_entries : int;
  f_messages : int;  (** shared-link messages since [create] *)
  f_payload_bytes : int;  (** shared-link payload bytes since [create] *)
  f_wire_bytes : int;
      (** payload + per-message protocol overhead since [create] — the
          aggregate-wire-bytes fleet metric *)
  f_per_client : client_stats list;  (** ascending by [c_id] *)
}

val client_stats : session -> client_stats

val summary : t -> summary

val summary_fields : t -> (string * string) list
(** The summary as a stable, ordered key/value row — exactly what the
    fleetsweep bench writes to BENCH_fleet.json, and what the
    determinism test compares byte-for-byte across two runs.
    Per-client values are ";"-joined in session order. *)

val print_summary : t -> unit
(** Render {!summary} as [Report.kv] lines. *)
