type t = {
  size : int;
  block : int;
  ways : int;
  sets : int;
  block_shift : int;
  set_shift : int; (* log2 sets, fixed by the geometry at create time *)
  tags : int array; (* sets * ways; -1 = invalid *)
  stamps : int array; (* LRU timestamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let is_pow2 = Bitmath.is_pow2

let create ?(assoc = 1) ?(block_bytes = 16) ~size_bytes () =
  if not (is_pow2 size_bytes) then
    invalid_arg "Hwcache.create: size must be a power of two";
  if not (is_pow2 block_bytes) then
    invalid_arg "Hwcache.create: block size must be a power of two";
  if size_bytes < block_bytes then
    invalid_arg "Hwcache.create: size smaller than one block";
  let nblocks = size_bytes / block_bytes in
  let ways = if assoc = 0 then nblocks else assoc in
  if ways > nblocks || nblocks mod ways <> 0 then
    invalid_arg "Hwcache.create: associativity does not divide block count";
  let sets = nblocks / ways in
  if not (is_pow2 sets) then
    invalid_arg "Hwcache.create: set count must be a power of two";
  {
    size = size_bytes;
    block = block_bytes;
    ways;
    sets;
    block_shift = Bitmath.floor_log2 block_bytes;
    set_shift = Bitmath.floor_log2 sets;
    tags = Array.make nblocks (-1);
    stamps = Array.make nblocks 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let size_bytes t = t.size
let block_bytes t = t.block
let assoc t = t.ways

let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let blk = addr lsr t.block_shift in
  let set = blk land (t.sets - 1) in
  let tag = blk lsr t.set_shift in
  let base = set * t.ways in
  let rec find i =
    if i = t.ways then None
    else if t.tags.(base + i) = tag then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    t.stamps.(base + i) <- t.clock;
    true
  | None ->
    t.misses <- t.misses + 1;
    (* evict LRU way *)
    let victim = ref 0 in
    for i = 1 to t.ways - 1 do
      if t.stamps.(base + i) < t.stamps.(base + !victim) then victim := i
    done;
    t.tags.(base + !victim) <- tag;
    t.stamps.(base + !victim) <- t.clock;
    false

let accesses t = t.accesses
let misses t = t.misses

let miss_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0

let tag_overhead ?(addr_bits = 32) ?(valid_bits = 1) t =
  let tag_bits = addr_bits - t.set_shift - t.block_shift in
  float_of_int (tag_bits + valid_bits) /. float_of_int (8 * t.block)

let pp ppf t =
  Format.fprintf ppf "%dB cache, %dB blocks, %d-way, %d sets" t.size t.block
    t.ways t.sets
