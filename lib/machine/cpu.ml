type fault =
  | Invalid_opcode of int
  | Unaligned_fetch of int
  | Unaligned_access of int
  | Out_of_bounds of int
  | Division_by_zero
  | Unhandled_trap of int

exception Fault of fault * int

type outcome = Halted | Out_of_fuel

type engine = Decoded | Interpretive

type t = {
  mem : Memory.t;
  regs : int array;
  engine : engine;
  mutable pc : int;
  mutable cycles : int;
  mutable retired : int;
  cost : Cost.t;
  mutable halted : bool;
  mutable outputs_rev : int list;
  mutable trap_handler : (t -> int -> unit) option;
  mutable on_fetch : (int -> unit) option;
  mutable on_load : (int -> unit) option;
  mutable on_store : (int -> unit) option;
}

let create ?(cost = Cost.default) ?(engine = Decoded) ~mem ~pc () =
  let regs = Array.make Isa.Reg.count 0 in
  regs.(Isa.Reg.to_int Isa.Reg.sp) <- Memory.size mem - 16;
  {
    mem;
    regs;
    engine;
    pc;
    cycles = 0;
    retired = 0;
    cost;
    halted = false;
    outputs_rev = [];
    trap_handler = None;
    on_fetch = None;
    on_load = None;
    on_store = None;
  }

let of_image ?cost ?engine ?(mem_bytes = 8 * 1024 * 1024) img =
  let mem = Memory.create mem_bytes in
  Memory.load_image mem img;
  create ?cost ?engine ~mem ~pc:img.Isa.Image.entry ()

let reg t r = if Isa.Reg.to_int r = 0 then 0 else t.regs.(Isa.Reg.to_int r)

let set_reg t r v =
  let i = Isa.Reg.to_int r in
  if i <> 0 then t.regs.(i) <- v

(* Normalise to signed 32-bit represented as an OCaml int. *)
let norm v =
  let v = v land 0xFFFFFFFF in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let u32 v = v land 0xFFFFFFFF

let alu_op (op : Isa.Instr.aluop) a b =
  match op with
  | Add -> norm (a + b)
  | Sub -> norm (a - b)
  | Mul -> norm (a * b)
  | Div -> if b = 0 then raise Exit else norm (a / b)
  | And -> norm (a land b)
  | Or -> norm (a lor b)
  | Xor -> norm (a lxor b)
  | Sll -> norm (a lsl (b land 31))
  | Srl -> norm (u32 a lsr (b land 31))
  | Sra -> norm (a asr (b land 31))
  | Slt -> if a < b then 1 else 0
  | Sltu -> if u32 a < u32 b then 1 else 0

(* Bitwise immediates are zero-extended (MIPS andi/ori/xori); arithmetic
   and comparison immediates are sign-extended. *)
let imm_for (op : Isa.Instr.aluop) imm =
  match op with And | Or | Xor -> imm land 0xFFFF | _ -> imm

let cond_holds (c : Isa.Instr.cond) a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Ge -> a >= b
  | Ltu -> u32 a < u32 b
  | Geu -> u32 a >= u32 b

let fault t f = raise (Fault (f, t.pc))

(* Data-access helpers are top-level (not per-step closures): [step] is
   the hottest path in every experiment, and allocating six closures
   per retired instruction was a measurable share of its cost. *)

let mem_load32 t a =
  (match t.on_load with Some f -> f a | None -> ());
  try Memory.read32 t.mem a with
  | Memory.Out_of_bounds a -> fault t (Out_of_bounds a)
  | Memory.Unaligned a -> fault t (Unaligned_access a)

let mem_load8 t a =
  (match t.on_load with Some f -> f a | None -> ());
  try Memory.read8 t.mem a
  with Memory.Out_of_bounds a -> fault t (Out_of_bounds a)

let mem_store32 t a v =
  (match t.on_store with Some f -> f a | None -> ());
  try Memory.write32 t.mem a v with
  | Memory.Out_of_bounds a -> fault t (Out_of_bounds a)
  | Memory.Unaligned a -> fault t (Unaligned_access a)

let mem_store8 t a v =
  (match t.on_store with Some f -> f a | None -> ());
  try Memory.write8 t.mem a v
  with Memory.Out_of_bounds a -> fault t (Out_of_bounds a)

(* Execute one already-decoded instruction fetched from [pc]. Shared by
   both engines, so decoded dispatch differs from interpretive dispatch
   in nothing but how [instr] was obtained. *)
let exec t pc (instr : Isa.Instr.t) =
  let cost = t.cost in
  (match instr with
  | Alu (op, rd, rs1, rs2) ->
    let v =
      try alu_op op (reg t rs1) (reg t rs2)
      with Exit -> fault t Division_by_zero
    in
    set_reg t rd v;
    t.cycles <- t.cycles + cost.alu;
    t.pc <- pc + 4
  | Alui (op, rd, rs1, imm) ->
    let v =
      try alu_op op (reg t rs1) (imm_for op imm)
      with Exit -> fault t Division_by_zero
    in
    set_reg t rd v;
    t.cycles <- t.cycles + cost.alu;
    t.pc <- pc + 4
  | Lui (rd, imm) ->
    set_reg t rd (norm (imm lsl 16));
    t.cycles <- t.cycles + cost.alu;
    t.pc <- pc + 4
  | Ld (rd, rs, imm) ->
    set_reg t rd (mem_load32 t (reg t rs + imm));
    t.cycles <- t.cycles + cost.load;
    t.pc <- pc + 4
  | Ldb (rd, rs, imm) ->
    set_reg t rd (mem_load8 t (reg t rs + imm));
    t.cycles <- t.cycles + cost.load;
    t.pc <- pc + 4
  | St (rv, rs, imm) ->
    mem_store32 t (reg t rs + imm) (reg t rv);
    t.cycles <- t.cycles + cost.store;
    t.pc <- pc + 4
  | Stb (rv, rs, imm) ->
    mem_store8 t (reg t rs + imm) (reg t rv);
    t.cycles <- t.cycles + cost.store;
    t.pc <- pc + 4
  | Br (c, rs1, rs2, off) ->
    if cond_holds c (reg t rs1) (reg t rs2) then begin
      t.cycles <- t.cycles + cost.branch_taken;
      t.pc <- pc + (4 * off)
    end
    else begin
      t.cycles <- t.cycles + cost.branch_not_taken;
      t.pc <- pc + 4
    end
  | Jmp target ->
    t.cycles <- t.cycles + cost.jump;
    t.pc <- target
  | Jal target ->
    set_reg t Isa.Reg.ra (pc + 4);
    t.cycles <- t.cycles + cost.jump;
    t.pc <- target
  | Jr rs ->
    t.cycles <- t.cycles + cost.jump;
    t.pc <- reg t rs
  | Jalr (rd, rs) ->
    let target = reg t rs in
    set_reg t rd (pc + 4);
    t.cycles <- t.cycles + cost.jump;
    t.pc <- target
  | Trap k -> (
    t.cycles <- t.cycles + cost.trap_dispatch;
    match t.trap_handler with
    | Some h -> h t k
    | None -> fault t (Unhandled_trap k))
  | Out rs ->
    t.outputs_rev <- reg t rs :: t.outputs_rev;
    t.cycles <- t.cycles + cost.alu;
    t.pc <- pc + 4
  | Nop ->
    t.cycles <- t.cycles + cost.alu;
    t.pc <- pc + 4
  | Halt ->
    t.cycles <- t.cycles + cost.jump;
    t.halted <- true);
  t.retired <- t.retired + 1

let fetch_interpretive t pc =
  let word =
    try Memory.read32 t.mem pc with
    | Memory.Out_of_bounds a -> fault t (Out_of_bounds a)
    | Memory.Unaligned a -> fault t (Unaligned_fetch a)
  in
  match Isa.Encode.decode word with
  | Some i -> i
  | None -> fault t (Invalid_opcode word)

let step t =
  let pc = t.pc in
  (match t.on_fetch with Some f -> f pc | None -> ());
  match t.engine with
  | Decoded -> (
    match Memory.fetch_decoded t.mem pc with
    | i -> exec t pc i
    | exception Memory.Undecodable w -> fault t (Invalid_opcode w)
    | exception Memory.Out_of_bounds a -> fault t (Out_of_bounds a)
    | exception Memory.Unaligned a -> fault t (Unaligned_fetch a))
  | Interpretive -> exec t pc (fetch_interpretive t pc)

let run ?(fuel = max_int) t =
  let rec go remaining =
    if t.halted then Halted
    else if remaining <= 0 then Out_of_fuel
    else begin
      step t;
      go (remaining - 1)
    end
  in
  go fuel

let outputs t = List.rev t.outputs_rev

let pp_fault ppf = function
  | Invalid_opcode w -> Format.fprintf ppf "invalid opcode 0x%08x" w
  | Unaligned_fetch a -> Format.fprintf ppf "unaligned fetch 0x%x" a
  | Unaligned_access a -> Format.fprintf ppf "unaligned access 0x%x" a
  | Out_of_bounds a -> Format.fprintf ppf "out of bounds 0x%x" a
  | Division_by_zero -> Format.pp_print_string ppf "division by zero"
  | Unhandled_trap k -> Format.fprintf ppf "unhandled trap %d" k
