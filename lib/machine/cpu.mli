(** The ERISC interpreter.

    Executes encoded instructions out of {!Memory}, which is essential
    for the SoftCache: the rewriter patches encoded words in the
    translation cache while the program runs, and the CPU picks up the
    patched words on the next fetch, exactly as real hardware without
    an incoherent I-cache would.

    Two dispatch engines exist. {!Decoded} (the default) fetches
    through {!Memory.fetch_decoded}, the predecode cache whose lines
    are invalidated by the memory writes themselves — so runtime code
    rewriting is picked up on the next fetch exactly as under
    {!Interpretive}, which decodes every fetched word from scratch.
    The two are observationally identical by construction (they share
    the execute stage); [Check.Lockstep.engines] proves it per
    instruction, including across mid-run patches, evictions and
    flushes.

    Observable behaviour of a program = the sequence of [Out] values,
    the final register file and the final data memory. The equivalence
    property tests compare all three between native and softcached
    runs. *)

type fault =
  | Invalid_opcode of int  (** the undecodable word *)
  | Unaligned_fetch of int
  | Unaligned_access of int
  | Out_of_bounds of int
  | Division_by_zero
  | Unhandled_trap of int

exception Fault of fault * int
(** [(fault, pc)] — the machine stops; state is left as-is for
    inspection. *)

type outcome = Halted | Out_of_fuel

type engine =
  | Decoded
      (** fetch via the {!Memory} decode cache — the fast path, kept
          coherent with runtime code rewriting by write-driven
          invalidation inside {!Memory} *)
  | Interpretive
      (** decode every fetched word with [Isa.Encode.decode] — the
          reference the decoded engine is differentially tested
          against *)

type t = {
  mem : Memory.t;
  regs : int array;  (** 32 signed 32-bit values; index 0 reads as 0 *)
  engine : engine;
  mutable pc : int;
  mutable cycles : int;
  mutable retired : int;  (** instructions retired *)
  cost : Cost.t;
  mutable halted : bool;
  mutable outputs_rev : int list;
  mutable trap_handler : (t -> int -> unit) option;
      (** invoked on [Trap k] after charging [cost.trap_dispatch]; must
          set [pc] (and may add [cycles]) before returning *)
  mutable on_fetch : (int -> unit) option;
  mutable on_load : (int -> unit) option;  (** byte address of data loads *)
  mutable on_store : (int -> unit) option;
}

val create : ?cost:Cost.t -> ?engine:engine -> mem:Memory.t -> pc:int -> unit -> t
(** A CPU over existing memory. [sp] is initialised to 16 bytes below
    the top of memory; all other registers are zero. [engine] defaults
    to {!Decoded}. *)

val of_image : ?cost:Cost.t -> ?engine:engine -> ?mem_bytes:int -> Isa.Image.t -> t
(** Load an image into fresh memory (default 8 MiB) and point [pc] at
    its entry — the "native", cache-less execution the paper's Fig. 5
    normalises against. *)

val reg : t -> Isa.Reg.t -> int
val set_reg : t -> Isa.Reg.t -> int -> unit

val step : t -> unit
(** Execute one instruction. @raise Fault on machine faults. *)

val run : ?fuel:int -> t -> outcome
(** Run until [Halt] or until [fuel] instructions have retired
    (default [max_int]). @raise Fault on machine faults. *)

val outputs : t -> int list
(** [Out] values in emission order. *)

val pp_fault : Format.formatter -> fault -> unit
