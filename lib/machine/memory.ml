(* Flat byte memory plus the predecode cache.

   The decode cache is a direct-mapped, word-indexed array of
   predecoded instructions over the memory image. Coherence is enforced
   HERE, not by callers: the SoftCache controller rewrites code at
   runtime (backpatching, stub reverts, eviction unlinking, flushes),
   and every one of those edits arrives through [write32]/[write8],
   which invalidate the covering line. No "remember to invalidate"
   protocol exists above this layer, so the cache can never serve a
   stale instruction after a patch. *)

exception Out_of_bounds of int
exception Unaligned of int
exception Undecodable of int

type decode_stats = { hits : int; misses : int; invalidations : int }

type t = {
  bytes : Bytes.t;
  (* decode cache: line [i] holds the predecoded instruction for the
     word at byte address [dtags.(i)], or nothing when [dtags.(i) < 0].
     Tags are full word-aligned byte addresses, so aliased addresses
     (same index, different tag) simply miss and refill. *)
  dtags : int array;
  dinstrs : Isa.Instr.t array;
  dmask : int;
  mutable dhits : int;
  mutable dmisses : int;
  mutable dinvals : int;
}

(* 32K lines cover any working set the simulator runs; bigger memories
   just alias. Kept a power of two so the index is a mask. *)
let decode_lines_cap = 1 lsl 15

let create n =
  let words = max 1 ((n + 3) / 4) in
  let rec pow2 k = if k >= words || k >= decode_lines_cap then k else pow2 (k * 2) in
  let lines = pow2 1 in
  {
    bytes = Bytes.make n '\000';
    dtags = Array.make lines (-1);
    dinstrs = Array.make lines Isa.Instr.Nop;
    dmask = lines - 1;
    dhits = 0;
    dmisses = 0;
    dinvals = 0;
  }

let size t = Bytes.length t.bytes

let check32 t addr =
  if addr < 0 || addr + 4 > Bytes.length t.bytes then raise (Out_of_bounds addr);
  if addr land 3 <> 0 then raise (Unaligned addr)

let read32 t addr =
  check32 t addr;
  Int32.to_int (Bytes.get_int32_le t.bytes addr)

(* Drop the line covering the word at (4-aligned) [waddr], if cached. *)
let[@inline] invalidate_word t waddr =
  let idx = (waddr lsr 2) land t.dmask in
  if Array.unsafe_get t.dtags idx = waddr then begin
    Array.unsafe_set t.dtags idx (-1);
    t.dinvals <- t.dinvals + 1
  end

let write32 t addr v =
  check32 t addr;
  Bytes.set_int32_le t.bytes addr (Int32.of_int v);
  invalidate_word t addr

let read8 t addr =
  if addr < 0 || addr >= Bytes.length t.bytes then raise (Out_of_bounds addr);
  Char.code (Bytes.get t.bytes addr)

let write8 t addr v =
  if addr < 0 || addr >= Bytes.length t.bytes then raise (Out_of_bounds addr);
  Bytes.set t.bytes addr (Char.chr (v land 0xFF));
  invalidate_word t (addr land lnot 3)

let decode_flush t =
  Array.fill t.dtags 0 (Array.length t.dtags) (-1)

let fetch_decoded t addr =
  let idx = (addr lsr 2) land t.dmask in
  if Array.unsafe_get t.dtags idx = addr then begin
    (* a tag is only ever installed after [check32] passed for this
       exact address, so the hit path re-validates nothing *)
    t.dhits <- t.dhits + 1;
    Array.unsafe_get t.dinstrs idx
  end
  else begin
    t.dmisses <- t.dmisses + 1;
    let w = read32 t addr land 0xFFFFFFFF in
    match Isa.Encode.decode w with
    | Some i ->
      Array.unsafe_set t.dinstrs idx i;
      Array.unsafe_set t.dtags idx addr;
      i
    | None -> raise (Undecodable w)
  end

let decode_peek t addr =
  if addr < 0 || addr land 3 <> 0 || addr + 4 > Bytes.length t.bytes then None
  else
    let idx = (addr lsr 2) land t.dmask in
    if t.dtags.(idx) = addr then Some t.dinstrs.(idx) else None

let decode_stats t =
  { hits = t.dhits; misses = t.dmisses; invalidations = t.dinvals }

let decode_audit t =
  let stale = ref [] in
  Array.iteri
    (fun idx addr ->
      if addr >= 0 then
        let w = read32 t addr land 0xFFFFFFFF in
        if Isa.Encode.decode w <> Some t.dinstrs.(idx) then
          stale := addr :: !stale)
    t.dtags;
  List.rev !stale

let blit_code t ~addr (img : Isa.Image.t) =
  Array.iteri
    (fun i w -> write32 t (addr + (i * Isa.Instr.word_size)) w)
    img.code

let load_data t (img : Isa.Image.t) =
  let len = Bytes.length img.data in
  if len > 0 then begin
    if img.data_base < 0 || img.data_base + len > Bytes.length t.bytes then
      raise (Out_of_bounds img.data_base);
    Bytes.blit img.data 0 t.bytes img.data_base len;
    (* bulk write bypasses write32/write8 — drop everything *)
    decode_flush t
  end

let load_image t (img : Isa.Image.t) =
  blit_code t ~addr:img.code_base img;
  load_data t img

let hash t ~lo ~hi =
  let h = ref 0x811C9DC5 in
  for i = lo to hi - 1 do
    h :=
      (!h lxor Char.code (Bytes.get t.bytes i))
      * 0x01000193
      land 0x3FFFFFFFFFFFFFFF
  done;
  !h
