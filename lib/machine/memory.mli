(** Flat byte-addressed memory with a rewrite-coherent decode cache.

    Little-endian, fixed size. 32-bit reads return sign-extended values
    (the machine's registers hold signed 32-bit values represented as
    OCaml ints); byte reads are zero-extended.

    The decode cache predecodes instruction words so the interpreter
    does not re-decode on every fetch. Its coherence rule lives in this
    module and nowhere else: {b every} mutation of memory —
    [write32], [write8], and the bulk loaders — invalidates the
    covering decode-cache line(s). Code that patches instructions at
    runtime (the SoftCache controller backpatches, reverts stubs,
    unlinks evicted blocks, flushes) therefore needs no invalidation
    protocol of its own, and [fetch_decoded] can never return a stale
    instruction. *)

type t

exception Out_of_bounds of int
(** Raised with the offending byte address. *)

exception Unaligned of int
(** Raised by 32-bit accesses to addresses that are not 4-aligned. *)

exception Undecodable of int
(** Raised by [fetch_decoded] with the fetched word when it does not
    decode to an instruction. *)

val create : int -> t
(** [create n] is [n] bytes of zeroed memory with an empty decode
    cache. *)

val size : t -> int
val read32 : t -> int -> int
val write32 : t -> int -> int -> unit
val read8 : t -> int -> int
val write8 : t -> int -> int -> unit

val fetch_decoded : t -> int -> Isa.Instr.t
(** Predecoded instruction fetch: consult the decode cache, filling it
    from memory on a miss. Exactly [Isa.Encode.decode (read32 t addr)]
    observationally — the cache is invisible except for speed.
    @raise Out_of_bounds and @raise Unaligned as [read32] would.
    @raise Undecodable with the word when it has no decoding. *)

val decode_peek : t -> int -> Isa.Instr.t option
(** The decode-cache line currently covering [addr], without filling.
    [None] for invalid addresses, uncached words, and aliased lines.
    Introspection for tests and the coherence auditor. *)

type decode_stats = { hits : int; misses : int; invalidations : int }

val decode_stats : t -> decode_stats
val decode_flush : t -> unit
(** Drop every decode-cache line (the loaders call this after bulk
    blits; exposed for tests). *)

val decode_audit : t -> int list
(** Addresses of decode-cache lines whose cached instruction disagrees
    with what the underlying word currently decodes to. Always [[]]
    unless the write-driven invalidation rule has been broken — the
    coherence invariant checked by [Check.Audit]. *)

val load_image : t -> Isa.Image.t -> unit
(** Copy an image's text and data segments into memory. *)

val load_data : t -> Isa.Image.t -> unit
(** Copy only the data segment (the SoftCache CC has no native text). *)

val blit_code : t -> addr:int -> Isa.Image.t -> unit
(** Copy the text segment to an arbitrary 4-aligned address. *)

val hash : t -> lo:int -> hi:int -> int
(** FNV-1a hash of the byte range [lo, hi); used by equivalence tests. *)
