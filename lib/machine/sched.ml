(* Windowed min-clock hart scheduler over a self-contained xorshift64
   PRNG. No dependency on [Random] — the global generator's state is
   shared process-wide and would make replays depend on unrelated
   draws; determinism here must be a local property. *)

type t = {
  seed : int;
  window : int;
  mutable state : int64;
  mutable draws : int;
}

let create ?(window = 0) seed =
  let state =
    (* xorshift has no all-zero state; fold the seed over a golden-ratio
       constant so nearby seeds diverge immediately *)
    let s = Int64.logxor (Int64.of_int seed) 0x9E3779B97F4A7C15L in
    if Int64.equal s 0L then 0x2545F4914F6CDD1DL else s
  in
  { seed; window = max 0 window; state; draws = 0 }

let seed t = t.seed
let draws t = t.draws

let next t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  t.draws <- t.draws + 1;
  Int64.to_int (Int64.shift_right_logical x 2)

let pick t runnable =
  match runnable with
  | [] -> invalid_arg "Sched.pick: no runnable harts"
  | [ (id, _) ] ->
    (* single runnable hart: no draw, so a 1-hart run consumes no
       PRNG state and is seed-independent *)
    id
  | _ ->
    let sorted =
      List.sort
        (fun (i1, c1) (i2, c2) -> compare (c1, i1) (c2, i2))
        runnable
    in
    let cmin = match sorted with (_, c) :: _ -> c | [] -> assert false in
    let window =
      List.filter (fun (_, c) -> c <= cmin + t.window) sorted
    in
    let n = List.length window in
    let k = if n = 1 then 0 else next t mod n in
    fst (List.nth window k)
