(** Deterministic seeded hart-interleaving scheduler.

    Picks which hart advances next from the set of runnable harts and
    their local cycle clocks. The pick is a pure function of the seed
    and the pick history: the same seed over the same sequence of
    runnable sets replays the same interleaving byte-identically —
    the property [Check.Lockstep.shards]'s replay test pins down.

    The discipline is {e windowed min-clock}: the candidate set is
    every runnable hart whose clock is within [window] cycles of the
    laggard (the minimum clock), and the scheduler draws one of those
    pseudo-randomly. [window = 0] degenerates to strict min-clock
    (deterministic modulo id tie-break jitter), a large window to a
    free-for-all; a window around the scheduler quantum keeps hart
    clocks comparable as a global virtual time while still exploring
    interleavings. *)

type t

val create : ?window:int -> int -> t
(** [create ?window seed]. [window] defaults to [0]; negative windows
    are clamped to [0]. Any seed is valid (a zero seed is remapped
    internally — xorshift has no all-zero state). *)

val seed : t -> int
(** The creation seed (for replay and reporting). *)

val pick : t -> (int * int) list -> int
(** [pick t runnable] chooses a hart id from [runnable], a non-empty
    [(id, clock)] list. Candidates within [window] of the minimum
    clock are drawn from pseudo-randomly; ordering of the input list
    does not affect the choice (candidates are sorted internally).
    @raise Invalid_argument on an empty list. *)

val draws : t -> int
(** PRNG draws made so far (diagnostic). *)
