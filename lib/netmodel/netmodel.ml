(* Deterministic splitmix64: the fault schedule must be reproducible
   from the seed alone, independent of global Random state. *)
module Rng = struct
  type t = { mutable s : int64 }

  let golden = 0x9E3779B97F4A7C15L

  let create seed = { s = Int64.mul (Int64.of_int (seed + 1)) golden }

  let next t =
    t.s <- Int64.add t.s golden;
    let z = t.s in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  (* uniform in [0, 1) from the top 53 bits *)
  let float t =
    Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1p-53

  (* Rejection sampling over the top 63 bits: plain [Int64.rem] would
     bias non-power-of-two bounds toward low residues (the first
     [2^63 mod bound] values appear once more often than the rest). *)
  let int t bound =
    if bound <= 0 then invalid_arg "Rng.int";
    let b = Int64.of_int bound in
    (* largest v with the full [bound] residues below it *)
    let limit =
      Int64.sub Int64.max_int
        (Int64.rem (Int64.add (Int64.rem Int64.max_int b) 1L) b)
    in
    let rec draw () =
      let v = Int64.shift_right_logical (next t) 1 in
      if v > limit then draw () else Int64.to_int (Int64.rem v b)
    in
    draw ()
end

module Faults = struct
  type t = {
    seed : int;
    drop : float;  (* P(frame lost in flight) *)
    corrupt : float;  (* P(one payload bit flipped) *)
    duplicate : float;  (* P(frame retransmitted spuriously) *)
    delay_spike : float;  (* P(delivery delayed by [spike_cycles]) *)
    spike_cycles : int;
  }

  let none =
    { seed = 0; drop = 0.; corrupt = 0.; duplicate = 0.; delay_spike = 0.;
      spike_cycles = 0 }

  let check_prob name p =
    if p < 0. || p > 1. then
      invalid_arg (Printf.sprintf "Netmodel.Faults.make: %s not in [0,1]" name)

  let make ?(seed = 1) ?(drop = 0.) ?(corrupt = 0.) ?(duplicate = 0.)
      ?(delay_spike = 0.) ?(spike_cycles = 10_000) () =
    check_prob "drop" drop;
    check_prob "corrupt" corrupt;
    check_prob "duplicate" duplicate;
    check_prob "delay_spike" delay_spike;
    if spike_cycles < 0 then
      invalid_arg "Netmodel.Faults.make: negative spike_cycles";
    { seed; drop; corrupt; duplicate; delay_spike; spike_cycles }

  let is_none f =
    f.drop = 0. && f.corrupt = 0. && f.duplicate = 0. && f.delay_spike = 0.

  let pp ppf f =
    if is_none f then Format.pp_print_string ppf "no faults"
    else
      Format.fprintf ppf
        "faults seed=%d drop=%g corrupt=%g dup=%g spike=%g/%dcyc" f.seed
        f.drop f.corrupt f.duplicate f.delay_spike f.spike_cycles
end

type t = {
  latency_cycles : int;
  cycles_per_byte : int;
  overhead_bytes : int;
  faults : Faults.t;
  rng : Rng.t;
  mutable messages : int;
  mutable payload : int;
  mutable drops : int;
  mutable corruptions : int;
  mutable duplicates : int;
  mutable delay_spikes : int;
  mutable tracer : Trace.t option;
      (* observer only: emitting reads nothing back and never touches
         the rng draw stream or the counters above *)
}

let create ?(latency_cycles = 0) ?(cycles_per_byte = 0) ?(overhead_bytes = 0)
    ?(faults = Faults.none) () =
  {
    latency_cycles;
    cycles_per_byte;
    overhead_bytes;
    faults;
    rng = Rng.create faults.Faults.seed;
    messages = 0;
    payload = 0;
    drops = 0;
    corruptions = 0;
    duplicates = 0;
    delay_spikes = 0;
    tracer = None;
  }

let set_tracer t tr = t.tracer <- tr

let trace t ev = match t.tracer with Some tr -> Trace.emit tr ev | None -> ()

let local ?faults () = create ?faults ()

let ethernet_10mbps ?(cpu_mhz = 200) ?faults () =
  let cycles_per_byte = cpu_mhz * 1_000_000 * 8 / 10_000_000 in
  create ~latency_cycles:(cpu_mhz * 500) ~cycles_per_byte ~overhead_bytes:60
    ?faults ()

let wire_cost t bytes = t.cycles_per_byte * (bytes + t.overhead_bytes)

let request t ~payload_bytes =
  t.messages <- t.messages + 1;
  t.payload <- t.payload + payload_bytes;
  let cost = t.latency_cycles + wire_cost t payload_bytes in
  trace t (Trace.Net_send { bytes = payload_bytes; segments = 1 });
  trace t (Trace.Net_recv { bytes = payload_bytes; cycles = cost });
  cost

type error = [ `Dropped of int ]

(* One bit of [payload] flipped, chosen by the rng — in a copy; the
   sender's buffer is never touched. *)
let flip_one_bit t payload =
  let len = Bytes.length payload in
  let received = Bytes.copy payload in
  let bit = Rng.int t.rng (8 * len) in
  let byte = bit lsr 3 in
  Bytes.set received byte
    (Char.chr (Char.code (Bytes.get received byte) lxor (1 lsl (bit land 7))));
  received

(* Slice a received frame back into the per-segment view, one segment
   per original payload. *)
let slice_segments received payloads =
  List.fold_left
    (fun (off, acc) p ->
      let len = Bytes.length p in
      (off + len, Bytes.sub received off len :: acc))
    (0, []) payloads
  |> snd |> List.rev

(* [segments] only annotates the trace events; a batched frame is
   otherwise indistinguishable from a plain transfer. *)
let transfer_frame t ~segments ~payload =
  let len = Bytes.length payload in
  t.messages <- t.messages + 1;
  t.payload <- t.payload + len;
  trace t (Trace.Net_send { bytes = len; segments });
  let cost = ref (t.latency_cycles + wire_cost t len) in
  let f = t.faults in
  if Faults.is_none f then begin
    trace t (Trace.Net_recv { bytes = len; cycles = !cost });
    Ok (!cost, payload)
  end
  else begin
    let roll p = p > 0. && Rng.float t.rng < p in
    (* fixed roll order per message keeps the schedule deterministic *)
    let dropped = roll f.Faults.drop in
    let corrupted = roll f.Faults.corrupt in
    let duplicated = roll f.Faults.duplicate in
    let spiked = roll f.Faults.delay_spike in
    if spiked then begin
      t.delay_spikes <- t.delay_spikes + 1;
      trace t (Trace.Net_fault { fault = Trace.Delay_spike });
      cost := !cost + f.Faults.spike_cycles
    end;
    if duplicated && not dropped then begin
      (* spurious retransmission: a second copy burns wire time and is
         discarded by the receiver; a dropped frame's retransmission is
         lost with it, so only the drop is counted *)
      t.duplicates <- t.duplicates + 1;
      t.messages <- t.messages + 1;
      t.payload <- t.payload + len;
      trace t (Trace.Net_fault { fault = Trace.Duplicate });
      cost := !cost + wire_cost t len
    end;
    if dropped then begin
      t.drops <- t.drops + 1;
      trace t (Trace.Net_fault { fault = Trace.Drop });
      Error (`Dropped !cost)
    end
    else if corrupted && len > 0 then begin
      t.corruptions <- t.corruptions + 1;
      trace t (Trace.Net_fault { fault = Trace.Corrupt });
      let received = flip_one_bit t payload in
      trace t (Trace.Net_recv { bytes = len; cycles = !cost });
      Ok (!cost, received)
    end
    else begin
      trace t (Trace.Net_recv { bytes = len; cycles = !cost });
      Ok (!cost, payload)
    end
  end

let transfer t ~payload = transfer_frame t ~segments:1 ~payload

let transfer_batch t ~payloads =
  (* One frame carries every segment, so a batch pays latency and
     per-message overhead once; a fault hits the whole frame. Slicing
     the received bytes back out keeps the per-segment view while the
     rng draw stream stays identical to a single [transfer]. *)
  let frame = Bytes.concat Bytes.empty payloads in
  match transfer_frame t ~segments:(List.length payloads) ~payload:frame with
  | Error _ as e -> e
  | Ok (cost, received) -> Ok (cost, slice_segments received payloads)

(* Rider segments appended to a frame that is already occupying the
   link (fleet frame batching across clients). The host frame paid the
   round-trip latency and the per-message protocol overhead; the rider
   pays the marginal wire time of its own bytes only, and no new
   message is accounted. A rider shares its host frame's fate — the
   fleet only piggybacks onto frames known delivered, so there is no
   independent drop, duplicate or delay roll — but the rider's bytes
   take their own corruption roll (each extra byte on the wire is a
   fresh chance to flip). Deterministic given the seed and the call
   sequence, like every other transfer. *)
let transfer_piggyback t ~payloads =
  let frame = Bytes.concat Bytes.empty payloads in
  let len = Bytes.length frame in
  t.payload <- t.payload + len;
  trace t (Trace.Net_send { bytes = len; segments = List.length payloads });
  let cost = t.cycles_per_byte * len in
  let f = t.faults in
  let received =
    if f.Faults.corrupt > 0. && Rng.float t.rng < f.Faults.corrupt && len > 0
    then begin
      t.corruptions <- t.corruptions + 1;
      trace t (Trace.Net_fault { fault = Trace.Corrupt });
      flip_one_bit t frame
    end
    else frame
  in
  trace t (Trace.Net_recv { bytes = len; cycles = cost });
  (cost, slice_segments received payloads)

let faults t = t.faults
let messages t = t.messages
let payload_bytes t = t.payload
let total_bytes t = t.payload + (t.messages * t.overhead_bytes)
let overhead_bytes_per_message t = t.overhead_bytes
let drops t = t.drops
let corruptions t = t.corruptions
let duplicates t = t.duplicates
let delay_spikes t = t.delay_spikes

let reset_stats t =
  t.messages <- 0;
  t.payload <- 0;
  t.drops <- 0;
  t.corruptions <- 0;
  t.duplicates <- 0;
  t.delay_spikes <- 0

let pp ppf t =
  Format.fprintf ppf
    "net: %d msgs, %d payload B, %d total B (latency %d cyc, %d cyc/B)"
    t.messages t.payload (total_bytes t) t.latency_cycles t.cycles_per_byte;
  if not (Faults.is_none t.faults) then
    Format.fprintf ppf
      "@.     %a: %d dropped, %d corrupted, %d duplicated, %d delayed"
      Faults.pp t.faults t.drops t.corruptions t.duplicates t.delay_spikes
