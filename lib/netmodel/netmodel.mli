(** MC <-> CC interconnect model.

    The ARM prototype measured "60 application bytes (not counting
    Ethernet framing)" of protocol overhead per code chunk exchanged
    between cache controller and memory controller. This channel charges
    a fixed request/response latency plus a per-byte cost, and accounts
    messages, payload bytes and total bytes, so benches can report the
    paper's network-overhead numbers.

    A networked deployment also sees faults. [Faults] describes a
    deterministic, seedable per-message fault schedule — drop, payload
    corruption, spurious duplication, latency spikes — and [transfer]
    delivers real payload bytes through it, so the controller's CRC /
    retry / timeout machinery can be exercised reproducibly. *)

module Rng : sig
  (** Deterministic splitmix64 stream, independent of [Stdlib.Random]. *)

  type t

  val create : int -> t
  val float : t -> float  (** uniform in [0, 1) *)

  val int : t -> int -> int  (** uniform in [0, bound) *)
end

module Faults : sig
  type t = private {
    seed : int;
    drop : float;  (** P(frame lost in flight) *)
    corrupt : float;  (** P(one payload bit flipped) *)
    duplicate : float;  (** P(frame retransmitted spuriously) *)
    delay_spike : float;  (** P(delivery delayed by [spike_cycles]) *)
    spike_cycles : int;
  }

  val none : t
  (** The fault-free schedule (all probabilities zero). *)

  val make :
    ?seed:int ->
    ?drop:float ->
    ?corrupt:float ->
    ?duplicate:float ->
    ?delay_spike:float ->
    ?spike_cycles:int ->
    unit ->
    t
  (** @raise Invalid_argument if a probability is outside [0, 1]. *)

  val is_none : t -> bool
  val pp : Format.formatter -> t -> unit
end

type t

val create :
  ?latency_cycles:int ->
  ?cycles_per_byte:int ->
  ?overhead_bytes:int ->
  ?faults:Faults.t ->
  unit ->
  t
(** Defaults are the [local] preset (all zeros) with no faults. *)

val local : ?faults:Faults.t -> unit -> t
(** The SPARC prototype: MC and CC in the same address space —
    communication "by jumping back and forth", no network cost. *)

val ethernet_10mbps : ?cpu_mhz:int -> ?faults:Faults.t -> unit -> t
(** The ARM prototype's link: two Skiff boards on 10 Mbps Ethernet,
     200 MHz SA-110 by default. 10 Mbps = 1.25 MB/s = 160 cycles/byte at
    200 MHz; round-trip latency modelled as 0.5 ms = 100k cycles;
    60 bytes protocol overhead per chunk. *)

val request : t -> payload_bytes:int -> int
(** Cost in cycles of one MC round trip delivering [payload_bytes] of
    application data; accounts the message. Never faulted — the legacy
    pure-cost path used where payload content does not matter. *)

type error = [ `Dropped of int ]
(** The frame was lost; the payload carries the cycles already burned
    on the wire before the receiver could give up. *)

val transfer : t -> payload:Bytes.t -> (int * Bytes.t, error) result
(** One MC round trip carrying [payload] through the fault schedule.
    [Ok (cycles, received)] delivers the (possibly bit-flipped) frame;
    [Error (`Dropped cycles)] models a lost frame. Duplicates and delay
    spikes only add cost and accounting; a dropped frame's spurious
    retransmission is lost with it (only the drop is counted).
    Deterministic given the [Faults.seed] and the call sequence. *)

val transfer_batch :
  t -> payloads:Bytes.t list -> (int * Bytes.t list, error) result
(** One MC round trip carrying several payload segments in a single
    frame: latency and per-message overhead are paid once for the whole
    batch. Faults apply to the frame as a unit (a drop loses every
    segment; a corruption flips one bit somewhere in the concatenated
    payload). A single-segment batch is indistinguishable from
    [transfer], including the rng draw stream. *)

val transfer_piggyback : t -> payloads:Bytes.t list -> int * Bytes.t list
(** Rider segments appended to a frame already occupying the link
    (fleet frame batching across clients). The host frame paid latency
    and per-message overhead, so the rider costs only the marginal wire
    time of its own bytes and accounts {e no} new message — just
    payload. A rider shares its host frame's fate: there is no
    independent drop, duplicate or delay roll (callers only piggyback
    onto frames known delivered), but the rider's bytes take their own
    corruption roll. Cannot fail; returns [(cycles, segments)]. *)

val faults : t -> Faults.t
val messages : t -> int
val payload_bytes : t -> int
val total_bytes : t -> int
(** Payload plus per-message protocol overhead. *)

val overhead_bytes_per_message : t -> int

val drops : t -> int
val corruptions : t -> int
val duplicates : t -> int
val delay_spikes : t -> int

val reset_stats : t -> unit

val set_tracer : t -> Trace.t option -> unit
(** Attach (or detach) a structured-event observer: every frame put on
    the wire, every delivery and every scheduled fault that fires is
    recorded in the ring, cycle-stamped by the tracer's own clock.
    Purely observational — counters, costs and the rng draw stream are
    untouched, so a traced channel behaves identically to an untraced
    one. *)

val pp : Format.formatter -> t -> unit
