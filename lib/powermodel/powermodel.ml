module Strongarm = struct
  let icache_fraction = 0.27
  let dcache_fraction = 0.16
  let write_buffer_fraction = 0.02

  let cache_total_fraction =
    icache_fraction +. dcache_fraction +. write_buffer_fraction
end

module Tag_energy = struct
  type t = { tag_bits : int; data_bits : int }

  let log2 = Bitmath.floor_log2

  let of_cache ~size_bytes ~block_bytes ~assoc =
    if size_bytes <= 0 || block_bytes <= 0 || assoc <= 0 then
      invalid_arg "Tag_energy.of_cache";
    let sets = size_bytes / block_bytes / assoc in
    let tag = 32 - log2 sets - log2 block_bytes + 1 (* + valid *) in
    (* all ways probe their tags in parallel *)
    { tag_bits = tag * assoc; data_bits = 32 }

  let hw_energy t ~accesses =
    float_of_int accesses
    *. (1.0 +. (float_of_int t.tag_bits /. float_of_int t.data_bits))

  let sw_energy _t ~accesses ~overhead_instrs =
    float_of_int accesses +. float_of_int overhead_instrs

  let sw_saving t ~accesses ~overhead_instrs =
    let hw = hw_energy t ~accesses in
    if hw = 0.0 then 0.0
    else (hw -. sw_energy t ~accesses ~overhead_instrs) /. hw
end

module Banks = struct
  type t = { bank_bytes : int; banks : int; sleep_fraction : float }

  let make ?(sleep_fraction = 0.08) ~bank_bytes ~banks () =
    if bank_bytes <= 0 || banks <= 0 then invalid_arg "Banks.make";
    if sleep_fraction < 0.0 || sleep_fraction > 1.0 then
      invalid_arg "Banks.make: sleep fraction outside [0,1]";
    { bank_bytes; banks; sleep_fraction }

  let total_bytes t = t.bank_bytes * t.banks

  let active_banks t ~working_set =
    let needed = (max 1 working_set + t.bank_bytes - 1) / t.bank_bytes in
    min t.banks (max 1 needed)

  let memory_power_fraction t ~working_set =
    let active = active_banks t ~working_set in
    let sleeping = t.banks - active in
    (float_of_int active
    +. (float_of_int sleeping *. t.sleep_fraction))
    /. float_of_int t.banks

  let chip_saving t ~working_set =
    Strongarm.cache_total_fraction
    *. (1.0 -. memory_power_fraction t ~working_set)
end
