type entry = {
  name : string;
  addr : int;
  size_bytes : int;
  samples : int;
  fraction : float;
}

type t = {
  image : Isa.Image.t;
  counts : int array; (* per instruction word of the text segment *)
  edges : (int, (int, int) Hashtbl.t) Hashtbl.t;
      (* taken control transfers: source vaddr -> (target vaddr -> count)
         for every observed fetch pair where the successor is not the
         sequential next instruction *)
  mutable last : int; (* previous fetch address, -1 before the first *)
  mutable total : int;
  mutable unattributed : int;
}

let create (image : Isa.Image.t) =
  {
    image;
    counts = Array.make (Array.length image.code) 0;
    edges = Hashtbl.create 256;
    last = -1;
    total = 0;
    unattributed = 0;
  }

let record t addr =
  t.total <- t.total + 1;
  (if t.last >= 0 && addr <> t.last + 4 then
     match Hashtbl.find_opt t.edges t.last with
     | Some targets ->
       Hashtbl.replace targets addr
         (1 + Option.value ~default:0 (Hashtbl.find_opt targets addr))
     | None ->
       let targets = Hashtbl.create 4 in
       Hashtbl.replace targets addr 1;
       Hashtbl.replace t.edges t.last targets);
  t.last <- addr;
  if Isa.Image.contains_code t.image addr then begin
    let i = (addr - t.image.code_base) lsr 2 in
    t.counts.(i) <- t.counts.(i) + 1
  end
  else t.unattributed <- t.unattributed + 1

let attach t (cpu : Machine.Cpu.t) =
  let previous = cpu.on_fetch in
  cpu.on_fetch <-
    Some
      (match previous with
      | None -> record t
      | Some f ->
        fun addr ->
          f addr;
          record t addr)

let profile ?cost ?fuel img =
  let t = create img in
  let cpu = Machine.Cpu.of_image ?cost img in
  attach t cpu;
  (match Machine.Cpu.run ?fuel cpu with
  | Machine.Cpu.Halted | Machine.Cpu.Out_of_fuel -> ());
  (t, cpu)

let total_samples t = t.total

let edges_from t src =
  match Hashtbl.find_opt t.edges src with
  | None -> []
  | Some targets ->
    Hashtbl.fold (fun dst n acc -> (dst, n) :: acc) targets []
    |> List.sort (fun (a, an) (b, bn) ->
           match compare bn an with 0 -> compare a b | c -> c)

let edge_count t ~src ~dst =
  match Hashtbl.find_opt t.edges src with
  | None -> 0
  | Some targets -> Option.value ~default:0 (Hashtbl.find_opt targets dst)

let samples_in t ~lo ~hi =
  let base = t.image.code_base in
  let i0 = max 0 ((lo - base) asr 2) in
  (* round up: an unaligned [hi] still covers part of its final word *)
  let i1 = min (Array.length t.counts) ((hi - base + 3) asr 2) in
  let s = ref 0 in
  for i = i0 to i1 - 1 do
    s := !s + t.counts.(i)
  done;
  !s

let entries t =
  let syms = t.image.symbols in
  let covered = Hashtbl.create 64 in
  let sym_entries =
    List.filter_map
      (fun (s : Isa.Image.symbol) ->
        for
          i = (s.sym_addr - t.image.code_base) asr 2
          to ((s.sym_addr + s.sym_size - t.image.code_base) asr 2) - 1
        do
          Hashtbl.replace covered i ()
        done;
        let n = samples_in t ~lo:s.sym_addr ~hi:(s.sym_addr + s.sym_size) in
        if n = 0 then None
        else
          Some
            {
              name = s.sym_name;
              addr = s.sym_addr;
              size_bytes = s.sym_size;
              samples = n;
              fraction =
                (if t.total = 0 then 0.0
                 else float_of_int n /. float_of_int t.total);
            })
      syms
  in
  (* instructions executed outside any symbol *)
  let stray = ref t.unattributed in
  Array.iteri
    (fun i c -> if c > 0 && not (Hashtbl.mem covered i) then stray := !stray + c)
    t.counts;
  let all =
    if !stray = 0 then sym_entries
    else
      {
        name = "<unattributed>";
        addr = 0;
        size_bytes = 0;
        samples = !stray;
        fraction =
          (if t.total = 0 then 0.0
           else float_of_int !stray /. float_of_int t.total);
      }
      :: sym_entries
  in
  List.sort (fun a b -> compare b.samples a.samples) all

(* The cumulative cut is computed in integer samples, not accumulated
   float fractions: summing fractions can land at 0.999... for a
   threshold of 1.0 (returning a partial set) and a zero-sample profile
   would divide 0/0. [ceil] maps a threshold to the smallest sample
   count that covers it; a zero-sample profile has nothing hot. *)
let hot_set ?(threshold = 0.9) t =
  if t.total = 0 then []
  else
    let need =
      max 1 (int_of_float (ceil (threshold *. float_of_int t.total)))
    in
    let rec take acc cum = function
      | [] -> List.rev acc
      | e :: rest ->
        let cum = cum + e.samples in
        if cum >= need then List.rev (e :: acc)
        else take (e :: acc) cum rest
    in
    take [] 0 (entries t)

let hot_bytes ?threshold t =
  List.fold_left (fun a e -> a + e.size_bytes) 0 (hot_set ?threshold t)

type temperature = Hot | Warm | Cold

let temperature_name = function Hot -> "hot" | Warm -> "warm" | Cold -> "cold"

(* Cumulative-share bands over the per-word sample counts, the same
   machinery as [hot_set] but at word rather than symbol granularity:
   sort the executed words hottest first and find the per-word count at
   which the cumulative share crosses [hot] (and [warm]) — every word
   at or above that count is in the band. A range classifies [Hot]
   ([Warm]) when the majority of *its own* execution mass lives in
   hot-band (warm-band) words, so a basic block inside the loop nest
   reads hot even when the enclosing symbol dilutes it with a run-once
   prologue. All in integer samples — no float accumulation, no 0/0.

   Degenerate profiles rank nothing: with zero samples, or when every
   executed word has the same count (a flat profile has no contrast),
   the classifier is constantly [Cold] — the one prior that invents no
   information, so trrip built on it decides exactly like rrip. *)
let temperature_classifier ?(hot = 0.5) ?(warm = 0.9) t =
  if not (0.0 <= hot && hot <= warm && warm <= 1.0) then
    invalid_arg "Profiler.temperature_classifier: want 0 <= hot <= warm <= 1";
  let nonzero =
    Array.to_list t.counts
    |> List.filter (fun c -> c > 0)
    |> List.sort (fun a b -> compare b a)
  in
  match nonzero with
  | [] -> fun ~lo:_ ~hi:_ -> Cold
  | first :: rest when List.for_all (fun c -> c = first) rest ->
    fun ~lo:_ ~hi:_ -> Cold
  | _ ->
    let csum = List.fold_left ( + ) 0 nonzero in
    let cut share =
      let need = max 1 (int_of_float (ceil (share *. float_of_int csum))) in
      let rec go cum = function
        | [] -> 1
        | c :: rest ->
          let cum = cum + c in
          if cum >= need then c else go cum rest
      in
      go 0 nonzero
    in
    let hot_cut = cut hot and warm_cut = cut warm in
    let base = t.image.code_base in
    fun ~lo ~hi ->
      let i0 = max 0 ((lo - base) asr 2) in
      (* round up: an unaligned [hi] still covers part of its final word *)
      let i1 = min (Array.length t.counts) ((hi - base + 3) asr 2) in
      let s = ref 0 and s_hot = ref 0 and s_warm = ref 0 in
      for i = i0 to i1 - 1 do
        let c = t.counts.(i) in
        s := !s + c;
        if c >= hot_cut then s_hot := !s_hot + c;
        if c >= warm_cut then s_warm := !s_warm + c
      done;
      if !s = 0 then Cold
      else if 2 * !s_hot >= !s then Hot
      else if 2 * !s_warm >= !s then Warm
      else Cold

let dynamic_text_bytes t =
  Array.fold_left (fun a c -> if c > 0 then a + 4 else a) 0 t.counts

let touched_in t ~lo ~hi =
  let base = t.image.code_base in
  let i0 = max 0 ((lo - base) asr 2) in
  (* round up: an unaligned [hi] still covers part of its final word *)
  let i1 = min (Array.length t.counts) ((hi - base + 3) asr 2) in
  let s = ref 0 in
  for i = i0 to i1 - 1 do
    if t.counts.(i) > 0 then s := !s + 4
  done;
  !s

let pp ppf t =
  Format.fprintf ppf "flat profile of %s (%d samples):@." t.image.name t.total;
  List.iter
    (fun e ->
      Format.fprintf ppf "  %6.2f%%  %8d  %6d B  %s@." (100.0 *. e.fraction)
        e.samples e.size_bytes e.name)
    (entries t)
