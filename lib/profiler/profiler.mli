(** Flat execution profiler — the reproduction's gprof.

    The paper sized CC memory by profiling: "the hot code was initially
    identified by using gprof to determine which functions constituted
    at least 90% of the application run time" (§2.4). This profiler
    attaches to the interpreter's fetch hook during a native run, counts
    samples per procedure symbol, and extracts the hot set and the
    footprint numbers behind Table 1 and Figure 9. *)

type entry = {
  name : string;
  addr : int;
  size_bytes : int;  (** static size of the procedure *)
  samples : int;  (** instruction fetches attributed to it *)
  fraction : float;  (** samples / total samples *)
}

type t

val create : Isa.Image.t -> t

val attach : t -> Machine.Cpu.t -> unit
(** Install the fetch hook (chains any hook already present). *)

val profile :
  ?cost:Machine.Cost.t -> ?fuel:int -> Isa.Image.t -> t * Machine.Cpu.t
(** Run the image natively to completion with profiling attached. *)

val total_samples : t -> int

val entries : t -> entry list
(** Per-symbol flat profile, hottest first. Fetches outside any symbol
    are collected under the pseudo-entry ["<unattributed>"]. *)

val hot_set : ?threshold:float -> t -> entry list
(** Smallest prefix of the flat profile covering at least [threshold]
    (default 0.9) of all samples — the paper's 90% rule. The cut is
    computed in integer samples (never accumulated float fractions), so
    the edge cases are exact: a zero-sample profile yields [[]], and
    [threshold:1.0] yields every sample-bearing entry. *)

val hot_bytes : ?threshold:float -> t -> int
(** Static footprint of the hot set. *)

type temperature = Hot | Warm | Cold

val temperature_name : temperature -> string
(** "hot" / "warm" / "cold". *)

val temperature_classifier :
  ?hot:float -> ?warm:float -> t -> lo:int -> hi:int -> temperature
(** Classify source ranges by cumulative-share bands over the per-word
    sample counts ([samples_in] granularity, the [hot_set] machinery at
    word level): executed words are ranked hottest first, and the
    per-word counts at which the cumulative share crosses [hot]
    (default 0.5) and [warm] (default 0.9) delimit the hot and warm
    bands. A range is [Hot] ([Warm]) when the majority of its own
    execution mass lives in hot-band (warm-band) words — so a loop
    block reads hot even when the surrounding symbol dilutes it with
    run-once code — and [Cold] otherwise (including never-executed
    ranges). Degenerate profiles — zero samples, or every executed word
    equally hot — classify everything [Cold], the prior under which
    [trrip] decides exactly like [rrip]. Feeds
    [Controller.set_temperature_oracle] (convert to
    [Policy.temperature] at the call site).
    @raise Invalid_argument unless [0 <= hot <= warm <= 1]. *)

val dynamic_text_bytes : t -> int
(** Bytes of distinct instructions fetched at least once — Table 1's
    "dynamic .text". *)

val samples_in : t -> lo:int -> hi:int -> int
(** Fetch samples attributed to the address range [lo, hi). A final
    word only partially covered by an unaligned [hi] counts — the
    hotness oracle the prefetch ranker plugs into
    [Controller.prefetch_ranker]. *)

val touched_in : t -> lo:int -> hi:int -> int
(** Distinct instruction bytes executed within an address range. A
    partially covered final word counts, as for [samples_in]. *)

val edges_from : t -> int -> (int * int) list
(** Observed taken control transfers out of the instruction at a source
    vaddr, as [(target vaddr, count)] pairs, hottest first (ties by
    lower target). Sequential successors ([src + 4]) are not edges:
    fall-through temperature is [samples_in] at the source minus the
    taken counts. Feeds the superblock chain oracle
    ([Cc_chain.oracle_of_profile]). *)

val edge_count : t -> src:int -> dst:int -> int
(** Count for one specific taken edge (0 when never observed). *)

val pp : Format.formatter -> t -> unit
(** The flat profile, gprof-style. *)
