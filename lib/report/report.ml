(* RFC-4180 CSV quoting, shared by [Table.to_csv] and [Series.to_csv]:
   a cell containing a comma, quote or line break is quoted, with
   embedded quotes doubled. *)
let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

module Table = struct
  type t = {
    title : string;
    columns : string list;
    mutable rows : string list list; (* reversed *)
  }

  let create ~title ~columns = { title; columns; rows = [] }

  let add_row t cells =
    if List.length cells <> List.length t.columns then
      invalid_arg "Report.Table.add_row: wrong number of cells";
    t.rows <- cells :: t.rows

  let widths t =
    let all = t.columns :: List.rev t.rows in
    List.fold_left
      (fun acc row -> List.map2 (fun w c -> max w (String.length c)) acc row)
      (List.map (fun _ -> 0) t.columns)
      all

  let render t =
    let ws = widths t in
    let pad w s = s ^ String.make (w - String.length s) ' ' in
    let line row = "  " ^ String.concat "  " (List.map2 pad ws row) in
    let header = line t.columns in
    (* underline exactly the rendered header (minus its two-space
       indent), so the separator never over- or undershoots the rows *)
    let sep = "  " ^ String.make (String.length header - 2) '-' in
    String.concat "\n" (t.title :: header :: sep :: List.rev_map line t.rows)

  let print t =
    print_string (render t);
    print_newline ()

  let to_csv t =
    let row r = String.concat "," (List.map csv_escape r) in
    String.concat "\n" (row t.columns :: List.rev_map row t.rows)
end

module Series = struct
  type t = {
    title : string;
    xlabel : string;
    ylabel : string;
    mutable pts : (float * float) list; (* reversed *)
  }

  let create ~title ~xlabel ~ylabel = { title; xlabel; ylabel; pts = [] }
  let add t x y = t.pts <- (x, y) :: t.pts
  let points t = List.rev t.pts

  let print ?(bar_width = 40) t =
    Printf.printf "%s\n" t.title;
    let pts = points t in
    let ymax = List.fold_left (fun a (_, y) -> Float.max a y) 0.0 pts in
    Printf.printf "  %14s  %12s\n" t.xlabel t.ylabel;
    List.iter
      (fun (x, y) ->
        (* a negative point under a positive [ymax] yields a negative
           length; clamp — the bar is simply empty below zero *)
        let n =
          if ymax <= 0.0 then 0
          else
            max 0 (int_of_float (y /. ymax *. float_of_int bar_width +. 0.5))
        in
        Printf.printf "  %14.4g  %12.5g  |%s\n" x y (String.make n '#'))
      pts

  let to_csv t =
    (* labels are caller-supplied free text: quote them like
       [Table.to_csv] does, or a comma in [xlabel] corrupts the header *)
    String.concat "\n"
      (Printf.sprintf "%s,%s" (csv_escape t.xlabel) (csv_escape t.ylabel)
      :: List.map
           (fun (x, y) ->
             Printf.sprintf "%s,%s"
               (csv_escape (Printf.sprintf "%g" x))
               (csv_escape (Printf.sprintf "%g" y)))
           (points t))
end

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(* [log x] is -inf at 0 and nan below it, either of which silently
   poisons the whole summary row — so non-positive inputs are handled
   explicitly: rejected by default, or dropped on request. *)
let geomean ?(on_nonpositive = `Error) l =
  let usable =
    match on_nonpositive with
    | `Skip -> List.filter (fun x -> x > 0.0) l
    | `Error ->
      List.iter
        (fun x ->
          if x <= 0.0 then
            invalid_arg
              (Printf.sprintf "Report.geomean: non-positive value %g" x))
        l;
      l
  in
  match usable with
  | [] -> 0.0
  | l ->
    exp
      (List.fold_left (fun a x -> a +. log x) 0.0 l
      /. float_of_int (List.length l))

(* Exact nearest-rank percentile: sort, take element ceil(p/100 * n)
   (1-based), no interpolation — p50 of [1;2;3;4] is 2, not 2.5. The
   exactness matters for determinism gates: the same sample multiset
   always yields the same element, bit-for-bit. *)
let percentile p l =
  if l = [] then invalid_arg "Report.percentile: empty sample list";
  if p < 0.0 || p > 100.0 then
    invalid_arg (Printf.sprintf "Report.percentile: %g not in [0,100]" p);
  let sorted = List.sort compare l in
  let n = List.length sorted in
  let rank =
    max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int n)))
  in
  List.nth sorted (rank - 1)

let fmt_bytes n =
  if n < 1024 then Printf.sprintf "%d B" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1f KB" (float_of_int n /. 1024.)
  else Printf.sprintf "%.1f MB" (float_of_int n /. (1024. *. 1024.))

let section title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" bar title bar

let kv key value = Printf.printf "  %-28s : %s\n" key value

let transport ~injected ~drops ~corruptions ~duplicates ~delay_spikes
    ~retries ~max_chunk_retries ~timeouts ~crc_failures ~recoveries
    ~chunk_failures =
  if injected || drops + corruptions + duplicates + delay_spikes + retries
                 + timeouts + crc_failures + recoveries + chunk_failures
                 > 0
  then begin
    kv "faults injected"
      (Printf.sprintf "%d dropped, %d corrupted, %d duplicated, %d delayed"
         drops corruptions duplicates delay_spikes);
    kv "recovery"
      (Printf.sprintf "%d retries (max %d per chunk), %d timeouts, %d CRC rejects"
         retries max_chunk_retries timeouts crc_failures);
    kv "chunks recovered" (string_of_int recoveries);
    kv "chunks unavailable" (string_of_int chunk_failures)
  end

let prefetch ~issued ~installs ~wasted ~crc_failures ~batches ~batch_chunks
    ~max_batch_chunks =
  if issued + installs + wasted + crc_failures + batches > 0 then begin
    kv "prefetch"
      (Printf.sprintf "%d issued, %d installed, %d wasted, %d CRC rejects"
         issued installs wasted crc_failures);
    kv "batched frames"
      (Printf.sprintf "%d (%d chunks total, largest %d)" batches batch_chunks
         max_batch_chunks)
  end

let policy ~name ~entries ~victim ~collateral ~stub_growth ~invalidated
    ~flushed ~ages =
  let evicted = victim + collateral + stub_growth + invalidated + flushed in
  if entries + evicted > 0 then begin
    kv "replacement policy"
      (Printf.sprintf "%s (%d observed block entries)" name entries);
    kv "evictions by reason"
      (Printf.sprintf
         "%d victim, %d collateral, %d stub-growth, %d invalidated, %d \
          flushed"
         victim collateral stub_growth invalidated flushed);
    if ages <> [] then
      kv "victim age (cycles)"
        (String.concat ", "
           (List.map
              (fun (lo, n) -> Printf.sprintf "%d+:%d" lo n)
              ages))
  end

let trace_summary ~total ~execute ~translate ~wire ~trap ~dcache ~patch
    ~scrub ~lookup ~events ~dropped ~capacity =
  let pct c =
    if total = 0 then "0.0%"
    else Printf.sprintf "%.1f%%" (100.0 *. float_of_int c /. float_of_int total)
  in
  let row name c = kv name (Printf.sprintf "%d cycles (%s)" c (pct c)) in
  row "execute" execute;
  row "translate" translate;
  row "wire latency" wire;
  row "trap dispatch" trap;
  if dcache > 0 then row "dcache overhead" dcache;
  row "patch" patch;
  row "scrub" scrub;
  row "lookup" lookup;
  kv "attributed total"
    (Printf.sprintf "%d cycles%s"
       (execute + translate + wire + trap + dcache + patch + scrub + lookup)
       (if execute + translate + wire + trap + dcache + patch + scrub + lookup
           = total
        then " (conserved)"
        else Printf.sprintf " — DOES NOT CONSERVE against %d" total));
  kv "events"
    (Printf.sprintf "%d recorded%s (ring capacity %d)" events
       (if dropped > 0 then Printf.sprintf ", %d dropped on wrap" dropped
        else "")
       capacity)
