(** Result rendering for the benchmark harness.

    Plain-text tables, data series (the "figures"), ASCII bar charts
    and CSV output, plus the summary statistics the harness reports. *)

val csv_escape : string -> string
(** RFC-4180 CSV quoting: a cell containing a comma, double quote or
    CR/LF is double-quoted with embedded quotes doubled; anything else
    passes through. Shared by [Table.to_csv] and [Series.to_csv]. *)

module Table : sig
  type t

  val create : title:string -> columns:string list -> t

  val add_row : t -> string list -> unit
  (** @raise Invalid_argument if the cell count differs from the
      column count. *)

  val render : t -> string
  (** The aligned-column rendering as a string (no trailing newline);
      the header underline is exactly as wide as the rendered header
      line. *)

  val print : t -> unit
  (** [render] to stdout, newline-terminated. *)

  val to_csv : t -> string
  (** RFC-4180-style: cells containing commas, double quotes, or
      CR/LF are double-quoted with embedded quotes doubled. *)
end

module Series : sig
  type t

  val create : title:string -> xlabel:string -> ylabel:string -> t
  val add : t -> float -> float -> unit
  val points : t -> (float * float) list

  val print : ?bar_width:int -> t -> unit
  (** Render as an aligned x/y listing with proportional ASCII bars —
      the textual stand-in for the paper's figures. Bar lengths are
      clamped to zero for negative points (they render as an empty
      bar, never a crash). *)

  val to_csv : t -> string
  (** Header and cells quoted like [Table.to_csv] ([csv_escape]). *)
end

val mean : float list -> float
(** 0 on the empty list. *)

val geomean : ?on_nonpositive:[ `Error | `Skip ] -> float list -> float
(** Geometric mean; 0 on the empty list. Non-positive inputs have no
    logarithm, so they are never fed to [log]: with [`Error] (the
    default) they raise [Invalid_argument]; with [`Skip] they are
    dropped and the mean is taken over the remaining positive values
    (0 if none remain). *)

val percentile : float -> float list -> float
(** [percentile p samples] — the exact nearest-rank percentile: the
    element of rank [max 1 (ceil (p/100 * n))] (1-based) of the sorted
    samples. No interpolation, so the result is always a member of the
    input — p50 of [[1;2;3;4]] is [2.], p100 is the maximum, p0 the
    minimum. Deterministic: the same sample multiset yields the same
    element bit-for-bit, which the fleet-determinism gates rely on.
    @raise Invalid_argument on an empty list or [p] outside [0,100]. *)

val fmt_bytes : int -> string
(** "800 B", "24.0 KB", "1.5 MB". *)

val section : string -> unit
(** Print a banner separating experiments in the harness output. *)

val kv : string -> string -> unit
(** [kv key value] prints an aligned "  key : value" line. *)

val transport :
  injected:bool ->
  drops:int ->
  corruptions:int ->
  duplicates:int ->
  delay_spikes:int ->
  retries:int ->
  max_chunk_retries:int ->
  timeouts:int ->
  crc_failures:int ->
  recoveries:int ->
  chunk_failures:int ->
  unit
(** Interconnect fault and recovery summary as [kv] rows. Prints
    nothing when [injected] is false and every counter is zero, so
    fault-free runs stay unchanged. *)

val prefetch :
  issued:int ->
  installs:int ->
  wasted:int ->
  crc_failures:int ->
  batches:int ->
  batch_chunks:int ->
  max_batch_chunks:int ->
  unit
(** Prefetch and batching summary as [kv] rows. Prints nothing when
    every counter is zero, so prefetch-off runs stay unchanged. *)

val policy :
  name:string ->
  entries:int ->
  victim:int ->
  collateral:int ->
  stub_growth:int ->
  invalidated:int ->
  flushed:int ->
  ages:(int * int) list ->
  unit
(** Replacement-policy summary as [kv] rows: observed block entries,
    eviction counts broken down by reason, and the victim-age
    histogram ([Stats.victim_ages] pairs, printed as "lo+:count").
    Prints nothing when no entries were observed and nothing was
    evicted, so eviction-free runs stay unchanged. *)

val trace_summary :
  total:int ->
  execute:int ->
  translate:int ->
  wire:int ->
  trap:int ->
  dcache:int ->
  patch:int ->
  scrub:int ->
  lookup:int ->
  events:int ->
  dropped:int ->
  capacity:int ->
  unit
(** Cycle-attribution summary as [kv] rows: per-category cycles with
    their share of [total] (the CPU cycle counter), whether the
    categories conserve against it, and the event-ring occupancy
    including events dropped on wrap. *)
