type fault = Drop | Corrupt | Duplicate | Delay_spike

type event =
  | Cc_miss of { pc : int }
  | Cc_translated of { chunk : int; base : int; words : int }
  | Cc_backpatch of { site : int; target : int }
  | Cc_unpatch of { site : int; target : int }
  | Cc_promote of { head : int; members : int; bytes : int }
  | Cc_depromote of { head : int; members : int }
  | Cc_evict of {
      chunk : int;
      base : int;
      bytes : int;
      incoming : int;
      reason : string;
          (* why the block died: "victim" | "collateral" | "stub_growth"
             | "invalidated" | "flushed" — a string rather than
             [Policy.reason] because the trace layer sits below core *)
    }
  | Cc_flush of { chunks : int }
  | Cc_invalidate of { chunks : int }
  | Cc_staged_install of { chunk : int }
  | Cc_retry of { chunk : int; attempt : int }
  | Cc_degrade of { chunk : int; bytes : int }
    (* a function-granularity unit fell back to block granularity;
       [bytes] is the extent of the degraded function *)
  | Tc_alloc of { chunk : int; base : int; bytes : int }
  | Net_send of { bytes : int; segments : int }
  | Net_recv of { bytes : int; cycles : int }
  | Net_fault of { fault : fault }
  | Fl_request of { client : int; chunk : int }
  | Fl_coalesce of { client : int; chunk : int; wait : int }
  | Fl_frame of { client : int; segments : int; queued : int }
  | Fl_piggyback of { client : int; bytes : int }
  | Fl_stall of { client : int; cycles : int }
    (* one client-observed transport stall sample, emitted where the
       fleet records it for the stall percentiles *)
  | Sh_fill of { hart : int; chunk : int; wait : int }
    (* a hart owned a fill: Absent -> Requested -> Filling -> Resident;
       [wait] is the MC-serialization wait it paid before issuing *)
  | Sh_coalesce of { hart : int; chunk : int; wait : int }
    (* a duplicate miss joined another hart's in-flight fill instead of
       re-requesting over the wire; [wait] until that fill lands *)
  | Dc_specialise of { site : int }
  | Dc_deopt of { site : int }
  | Dc_miss of { addr : int }
  | Dc_spill of { words : int }
  | Dc_refill of { words : int }

let fault_name = function
  | Drop -> "drop"
  | Corrupt -> "corrupt"
  | Duplicate -> "duplicate"
  | Delay_spike -> "delay_spike"

let event_type = function
  | Cc_miss _ -> "cc_miss"
  | Cc_translated _ -> "cc_translated"
  | Cc_backpatch _ -> "cc_backpatch"
  | Cc_unpatch _ -> "cc_unpatch"
  | Cc_promote _ -> "cc_promote"
  | Cc_depromote _ -> "cc_depromote"
  | Cc_evict _ -> "cc_evict"
  | Cc_flush _ -> "cc_flush"
  | Cc_invalidate _ -> "cc_invalidate"
  | Cc_staged_install _ -> "cc_staged_install"
  | Cc_retry _ -> "cc_retry"
  | Cc_degrade _ -> "cc_degrade"
  | Tc_alloc _ -> "tc_alloc"
  | Net_send _ -> "net_send"
  | Net_recv _ -> "net_recv"
  | Net_fault _ -> "net_fault"
  | Fl_request _ -> "fl_request"
  | Fl_coalesce _ -> "fl_coalesce"
  | Fl_frame _ -> "fl_frame"
  | Fl_piggyback _ -> "fl_piggyback"
  | Fl_stall _ -> "fl_stall"
  | Sh_fill _ -> "sh_fill"
  | Sh_coalesce _ -> "sh_coalesce"
  | Dc_specialise _ -> "dc_specialise"
  | Dc_deopt _ -> "dc_deopt"
  | Dc_miss _ -> "dc_miss"
  | Dc_spill _ -> "dc_spill"
  | Dc_refill _ -> "dc_refill"

(* The JSONL schema: every event is its type tag plus these integer
   fields (faults carry a string). Exporters and the validator are both
   derived from this single description so they cannot drift. *)
let fields = function
  | Cc_miss { pc } -> [ ("pc", pc) ]
  | Cc_translated { chunk; base; words } ->
      [ ("chunk", chunk); ("base", base); ("words", words) ]
  | Cc_backpatch { site; target } -> [ ("site", site); ("target", target) ]
  | Cc_unpatch { site; target } -> [ ("site", site); ("target", target) ]
  | Cc_promote { head; members; bytes } ->
      [ ("head", head); ("members", members); ("bytes", bytes) ]
  | Cc_depromote { head; members } ->
      [ ("head", head); ("members", members) ]
  | Cc_evict { chunk; base; bytes; incoming; reason = _ } ->
      [ ("chunk", chunk); ("base", base); ("bytes", bytes);
        ("incoming", incoming) ]
  | Cc_flush { chunks } -> [ ("chunks", chunks) ]
  | Cc_invalidate { chunks } -> [ ("chunks", chunks) ]
  | Cc_staged_install { chunk } -> [ ("chunk", chunk) ]
  | Cc_retry { chunk; attempt } -> [ ("chunk", chunk); ("attempt", attempt) ]
  | Cc_degrade { chunk; bytes } -> [ ("chunk", chunk); ("bytes", bytes) ]
  | Tc_alloc { chunk; base; bytes } ->
      [ ("chunk", chunk); ("base", base); ("bytes", bytes) ]
  | Net_send { bytes; segments } ->
      [ ("bytes", bytes); ("segments", segments) ]
  | Net_recv { bytes; cycles } -> [ ("bytes", bytes); ("cycles", cycles) ]
  | Net_fault _ -> []
  | Fl_request { client; chunk } -> [ ("client", client); ("chunk", chunk) ]
  | Fl_coalesce { client; chunk; wait } ->
      [ ("client", client); ("chunk", chunk); ("wait", wait) ]
  | Fl_frame { client; segments; queued } ->
      [ ("client", client); ("segments", segments); ("queued", queued) ]
  | Fl_piggyback { client; bytes } ->
      [ ("client", client); ("bytes", bytes) ]
  | Fl_stall { client; cycles } ->
      [ ("client", client); ("cycles", cycles) ]
  | Sh_fill { hart; chunk; wait } ->
      [ ("hart", hart); ("chunk", chunk); ("wait", wait) ]
  | Sh_coalesce { hart; chunk; wait } ->
      [ ("hart", hart); ("chunk", chunk); ("wait", wait) ]
  | Dc_specialise { site } -> [ ("site", site) ]
  | Dc_deopt { site } -> [ ("site", site) ]
  | Dc_miss { addr } -> [ ("addr", addr) ]
  | Dc_spill { words } -> [ ("words", words) ]
  | Dc_refill { words } -> [ ("words", words) ]

let schema_fields = function
  | "cc_miss" -> Some [ "pc" ]
  | "cc_translated" -> Some [ "chunk"; "base"; "words" ]
  | "cc_backpatch" | "cc_unpatch" -> Some [ "site"; "target" ]
  | "cc_promote" -> Some [ "head"; "members"; "bytes" ]
  | "cc_depromote" -> Some [ "head"; "members" ]
  | "cc_evict" -> Some [ "chunk"; "base"; "bytes"; "incoming" ]
  | "cc_flush" | "cc_invalidate" -> Some [ "chunks" ]
  | "cc_staged_install" -> Some [ "chunk" ]
  | "cc_retry" -> Some [ "chunk"; "attempt" ]
  | "cc_degrade" -> Some [ "chunk"; "bytes" ]
  | "tc_alloc" -> Some [ "chunk"; "base"; "bytes" ]
  | "net_send" -> Some [ "bytes"; "segments" ]
  | "net_recv" -> Some [ "bytes"; "cycles" ]
  | "net_fault" -> Some []
  | "fl_request" -> Some [ "client"; "chunk" ]
  | "fl_coalesce" -> Some [ "client"; "chunk"; "wait" ]
  | "fl_frame" -> Some [ "client"; "segments"; "queued" ]
  | "fl_piggyback" -> Some [ "client"; "bytes" ]
  | "fl_stall" -> Some [ "client"; "cycles" ]
  | "sh_fill" | "sh_coalesce" -> Some [ "hart"; "chunk"; "wait" ]
  | "dc_specialise" | "dc_deopt" -> Some [ "site" ]
  | "dc_miss" -> Some [ "addr" ]
  | "dc_spill" | "dc_refill" -> Some [ "words" ]
  | _ -> None

let evict_reasons =
  [ "victim"; "collateral"; "stub_growth"; "invalidated"; "flushed" ]

let pp_event ppf ev =
  Format.fprintf ppf "%s" (event_type ev);
  (match ev with
  | Net_fault { fault } -> Format.fprintf ppf " fault=%s" (fault_name fault)
  | Cc_evict { reason; _ } -> Format.fprintf ppf " reason=%s" reason
  | _ -> ());
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%d" k v) (fields ev)

(* ---------------------------------------------------------------- *)

type t = {
  ring : (int * event) array;
  cap : int;
  mutable n : int;  (* total emitted, including overwritten *)
  mutable clock : unit -> int;
  mutable last_sync : int;
  mutable execute : int;
  mutable translate : int;
  mutable wire : int;
  mutable trap : int;
  mutable dcache : int;
  mutable patch : int;
  mutable scrub : int;
  mutable lookup : int;
}

let create ?(limit = 65536) () =
  if limit <= 0 then invalid_arg "Trace.create: limit must be positive";
  {
    ring = Array.make limit (0, Cc_flush { chunks = 0 });
    cap = limit;
    n = 0;
    clock = (fun () -> 0);
    last_sync = 0;
    execute = 0;
    translate = 0;
    wire = 0;
    trap = 0;
    dcache = 0;
    patch = 0;
    scrub = 0;
    lookup = 0;
  }

let set_clock t f =
  t.clock <- f;
  t.last_sync <- f ()

let emit t ev =
  t.ring.(t.n mod t.cap) <- (t.clock (), ev);
  t.n <- t.n + 1

let emitted t = t.n
let dropped t = if t.n > t.cap then t.n - t.cap else 0
let capacity t = t.cap

let events t =
  let len = min t.n t.cap in
  let first = if t.n > t.cap then t.n mod t.cap else 0 in
  List.init len (fun i -> t.ring.((first + i) mod t.cap))

(* ---- cycle attribution ----------------------------------------- *)

type category =
  | Execute
  | Translate
  | Wire
  | Trap
  | Dcache
  | Patch
  | Scrub
  | Lookup

let bump t cat c =
  match cat with
  | Execute -> t.execute <- t.execute + c
  | Translate -> t.translate <- t.translate + c
  | Wire -> t.wire <- t.wire + c
  | Trap -> t.trap <- t.trap + c
  | Dcache -> t.dcache <- t.dcache + c
  | Patch -> t.patch <- t.patch + c
  | Scrub -> t.scrub <- t.scrub + c
  | Lookup -> t.lookup <- t.lookup + c

let attribute t cat c =
  let now = t.clock () in
  t.execute <- t.execute + (now - t.last_sync);
  bump t cat c;
  t.last_sync <- now + c

let attribute_included t cat c =
  let now = t.clock () in
  t.execute <- t.execute + (now - c - t.last_sync);
  bump t cat c;
  t.last_sync <- now

let sync t =
  let now = t.clock () in
  t.execute <- t.execute + (now - t.last_sync);
  t.last_sync <- now

type summary = {
  s_execute : int;
  s_translate : int;
  s_wire : int;
  s_trap : int;
  s_dcache : int;
  s_patch : int;
  s_scrub : int;
  s_lookup : int;
  s_total : int;
  s_emitted : int;
  s_dropped : int;
  s_capacity : int;
}

let summary t =
  sync t;
  {
    s_execute = t.execute;
    s_translate = t.translate;
    s_wire = t.wire;
    s_trap = t.trap;
    s_dcache = t.dcache;
    s_patch = t.patch;
    s_scrub = t.scrub;
    s_lookup = t.lookup;
    s_total =
      t.execute + t.translate + t.wire + t.trap + t.dcache + t.patch
      + t.scrub + t.lookup;
    s_emitted = t.n;
    s_dropped = dropped t;
    s_capacity = t.cap;
  }

let conserved t ~total = (summary t).s_total = total

(* ---- exporters -------------------------------------------------- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_event_fields b ev =
  (match ev with
  | Net_fault { fault } ->
      Buffer.add_string b ",\"fault\":\"";
      json_escape b (fault_name fault);
      Buffer.add_string b "\""
  | Cc_evict { reason; _ } ->
      Buffer.add_string b ",\"reason\":\"";
      json_escape b reason;
      Buffer.add_string b "\""
  | _ -> ());
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf ",%S:%d" k v))
    (fields ev)

let to_jsonl t =
  let b = Buffer.create 4096 in
  List.iter
    (fun (cycle, ev) ->
      Buffer.add_string b
        (Printf.sprintf "{\"cycle\":%d,\"type\":%S" cycle (event_type ev));
      add_event_fields b ev;
      Buffer.add_string b "}\n")
    (events t);
  Buffer.contents b

(* Chrome trace-event rendering: one process, one thread per layer,
   instant events for every ring entry, and tcache residency as async
   spans keyed by chunk id. A single chronological pass keeps the
   timestamps nondecreasing across the whole file. *)

let tid_of_event ev =
  match ev with
  | Cc_miss _ | Cc_translated _ | Cc_backpatch _ | Cc_unpatch _
  | Cc_promote _ | Cc_depromote _ | Cc_evict _ | Cc_flush _
  | Cc_invalidate _ | Cc_staged_install _ | Cc_retry _ | Cc_degrade _ ->
      1
  | Tc_alloc _ -> 2
  | Net_send _ | Net_recv _ | Net_fault _ -> 3
  | Dc_specialise _ | Dc_deopt _ | Dc_miss _ | Dc_spill _ | Dc_refill _ -> 4
  | Fl_request _ | Fl_coalesce _ | Fl_frame _ | Fl_piggyback _ | Fl_stall _ ->
      6
  | Sh_fill _ | Sh_coalesce _ -> 7

let residency_tid = 5

let to_chrome t =
  let b = Buffer.create 8192 in
  let sep = ref "" in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b !sep;
        sep := ",\n";
        Buffer.add_string b s)
      fmt
  in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  List.iter
    (fun (tid, name) ->
      add
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":%S}}"
        tid name)
    [
      (1, "controller");
      (2, "tcache");
      (3, "network");
      (4, "dcache");
      (residency_tid, "tcache residency");
      (6, "fleet");
      (7, "harts");
    ];
  let open_spans = Hashtbl.create 64 in
  let span ph cycle chunk =
    add
      "{\"name\":\"chunk-%x\",\"cat\":\"residency\",\"ph\":%S,\"id\":%d,\"ts\":%d,\"pid\":1,\"tid\":%d}"
      chunk ph chunk cycle residency_tid
  in
  let open_span cycle chunk =
    if Hashtbl.mem open_spans chunk then span "e" cycle chunk;
    Hashtbl.replace open_spans chunk ();
    span "b" cycle chunk
  in
  let close_span cycle chunk =
    if Hashtbl.mem open_spans chunk then begin
      Hashtbl.remove open_spans chunk;
      span "e" cycle chunk
    end
  in
  let close_all cycle =
    let chunks = Hashtbl.fold (fun k () acc -> k :: acc) open_spans [] in
    List.iter (close_span cycle) (List.sort compare chunks)
  in
  let last_cycle = ref 0 in
  List.iter
    (fun (cycle, ev) ->
      last_cycle := cycle;
      let eb = Buffer.create 64 in
      add_event_fields eb ev;
      (* drop the leading comma of the field rendering *)
      let args = Buffer.contents eb in
      let args = if args = "" then "" else String.sub args 1 (String.length args - 1) in
      add
        "{\"name\":%S,\"ph\":\"i\",\"s\":\"t\",\"ts\":%d,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
        (event_type ev) cycle (tid_of_event ev) args;
      (* the controller emits a [Cc_evict] per victim on every path —
         FIFO eviction, invalidation and flush (where pinned blocks
         survive) — so eviction events alone delimit residency *)
      match ev with
      | Cc_translated { chunk; _ } -> open_span cycle chunk
      | Cc_evict { chunk; _ } -> close_span cycle chunk
      | _ -> ())
    (events t);
  close_all !last_cycle;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let export t ~format path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (match format with `Jsonl -> to_jsonl t | `Chrome -> to_chrome t))

(* ---- minimal JSON parser (no external deps available) ----------- *)

module Json = struct
  type value =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of value list
    | Obj of (string * value) list

  exception Fail of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" lit)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* enough for our ASCII-only exports *)
                   if code < 0x80 then Buffer.add_char b (Char.chr code)
                   else Buffer.add_string b (Printf.sprintf "\\u%s" hex)
               | c -> fail (Printf.sprintf "bad escape %C" c));
            go ()
        | c when Char.code c < 0x20 -> fail "control char in string"
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && numchar s.[!pos] do
        advance ()
      done;
      let lit = String.sub s start (!pos - start) in
      match float_of_string_opt lit with
      | Some f -> f
      | None -> fail (Printf.sprintf "bad number %S" lit)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (elements [])
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Fail msg -> Error msg

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None
end

(* ---- schema validation ------------------------------------------ *)

module Schema = struct
  let int_member k v =
    match Json.member k v with
    | Some (Json.Num f) when Float.is_integer f -> Some (int_of_float f)
    | _ -> None

  let validate_event_obj v =
    match v with
    | Json.Obj kvs -> (
        match int_member "cycle" v with
        | None -> Error "missing or non-integer \"cycle\""
        | Some c when c < 0 -> Error "negative \"cycle\""
        | Some _ -> (
            match Json.member "type" v with
            | Some (Json.Str ty) -> (
                match schema_fields ty with
                | None -> Error (Printf.sprintf "unknown event type %S" ty)
                | Some required ->
                    let missing =
                      List.filter
                        (fun f -> int_member f v = None)
                        required
                    in
                    let extra =
                      List.filter
                        (fun (k, _) ->
                          (not (List.mem k required))
                          && k <> "cycle" && k <> "type"
                          && not (ty = "net_fault" && k = "fault")
                          && not (ty = "cc_evict" && k = "reason"))
                        kvs
                    in
                    if missing <> [] then
                      Error
                        (Printf.sprintf "%s: missing field %S" ty
                           (List.hd missing))
                    else if extra <> [] then
                      Error
                        (Printf.sprintf "%s: unexpected field %S" ty
                           (fst (List.hd extra)))
                    else if
                      ty = "net_fault"
                      &&
                      match Json.member "fault" v with
                      | Some (Json.Str ("drop" | "corrupt" | "duplicate" | "delay_spike")) ->
                          false
                      | _ -> true
                    then Error "net_fault: bad \"fault\" value"
                    else if
                      ty = "cc_evict"
                      &&
                      match Json.member "reason" v with
                      | Some (Json.Str r) -> not (List.mem r evict_reasons)
                      | _ -> true
                    then Error "cc_evict: bad \"reason\" value"
                    else Ok ())
            | _ -> Error "missing or non-string \"type\""))
    | _ -> Error "event is not an object"

  let validate_jsonl_line line =
    match Json.parse line with
    | Error e -> Error (Printf.sprintf "malformed JSON: %s" e)
    | Ok v -> validate_event_obj v

  let validate_jsonl text =
    let lines = String.split_on_char '\n' text in
    let rec go i count = function
      | [] -> Ok count
      | "" :: rest -> go (i + 1) count rest
      | line :: rest -> (
          match validate_jsonl_line line with
          | Ok () -> go (i + 1) (count + 1) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" i e))
    in
    go 1 0 lines

  let validate_chrome text =
    match Json.parse text with
    | Error e -> Error (Printf.sprintf "malformed JSON: %s" e)
    | Ok v -> (
        match Json.member "traceEvents" v with
        | Some (Json.Arr evs) ->
            let last_ts = ref neg_infinity in
            let open_async = Hashtbl.create 16 in
            let rec go i count = function
              | [] ->
                  if Hashtbl.length open_async > 0 then
                    Error "unclosed async span"
                  else Ok count
              | e :: rest -> (
                  let str k =
                    match Json.member k e with
                    | Some (Json.Str s) -> Some s
                    | _ -> None
                  in
                  let num k =
                    match Json.member k e with
                    | Some (Json.Num f) -> Some f
                    | _ -> None
                  in
                  match (str "name", str "ph", num "pid", num "tid") with
                  | None, _, _, _ ->
                      Error (Printf.sprintf "event %d: missing name" i)
                  | _, None, _, _ ->
                      Error (Printf.sprintf "event %d: missing ph" i)
                  | _, _, None, _ ->
                      Error (Printf.sprintf "event %d: missing pid" i)
                  | _, _, _, None ->
                      Error (Printf.sprintf "event %d: missing tid" i)
                  | Some _, Some "M", Some _, Some _ ->
                      go (i + 1) (count + 1) rest
                  | Some _, Some ph, Some _, Some _ -> (
                      match num "ts" with
                      | None ->
                          Error (Printf.sprintf "event %d: missing ts" i)
                      | Some ts when ts < !last_ts ->
                          Error
                            (Printf.sprintf
                               "event %d: ts %g goes backwards (last %g)" i
                               ts !last_ts)
                      | Some ts -> (
                          last_ts := ts;
                          match ph with
                          | "b" -> (
                              match num "id" with
                              | None ->
                                  Error
                                    (Printf.sprintf
                                       "event %d: async begin without id" i)
                              | Some id ->
                                  if Hashtbl.mem open_async id then
                                    Error
                                      (Printf.sprintf
                                         "event %d: nested async begin id %g"
                                         i id)
                                  else begin
                                    Hashtbl.replace open_async id ();
                                    go (i + 1) (count + 1) rest
                                  end)
                          | "e" -> (
                              match num "id" with
                              | None ->
                                  Error
                                    (Printf.sprintf
                                       "event %d: async end without id" i)
                              | Some id ->
                                  if Hashtbl.mem open_async id then begin
                                    Hashtbl.remove open_async id;
                                    go (i + 1) (count + 1) rest
                                  end
                                  else
                                    Error
                                      (Printf.sprintf
                                         "event %d: async end without begin \
                                          (id %g)"
                                         i id))
                          | "i" -> go (i + 1) (count + 1) rest
                          | ph ->
                              Error
                                (Printf.sprintf "event %d: unexpected ph %S"
                                   i ph))))
            in
            go 0 0 evs
        | _ -> Error "missing \"traceEvents\" array")
end
