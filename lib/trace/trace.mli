(** Cycle-stamped structured event tracing.

    A bounded ring of typed events recorded from every layer of the
    simulator — controller (miss / translate / backpatch / evict /
    flush / invalidate / staged install), tcache placement, netmodel
    frames and faults, and dcache-sim transitions — plus an exact
    cycle-attribution ledger splitting [cpu.cycles] into execute,
    translate, wire, trap-dispatch, dcache-overhead, patch, scrub and
    lookup categories.

    The tracer is architecturally invisible: recording an event only
    appends to the ring and never touches cycle counters, statistics,
    or the netmodel rng draw stream, so a traced run is cycle- and
    counter-identical to an untraced one ([Check.Lockstep.trace] proves
    this across the workload registry). The attribution ledger
    conserves: the categories sum exactly to the CPU cycle counter
    ([conserved], enforced by [Check.Audit] when a tracer is
    attached).

    When the ring wraps, the oldest events are overwritten and
    [dropped] counts them — overflow is reported, never silent. *)

(** {1 Events} *)

type fault = Drop | Corrupt | Duplicate | Delay_spike

type event =
  | Cc_miss of { pc : int }  (** trap taken on a non-resident target *)
  | Cc_translated of { chunk : int; base : int; words : int }
      (** chunk [chunk] rewritten into the tcache at [base] *)
  | Cc_backpatch of { site : int; target : int }
      (** exit at [site] rewritten to jump straight to [target] *)
  | Cc_unpatch of { site : int; target : int }
      (** patched exit at [site] reverted to its miss stub because the
          block at [target] is being evicted *)
  | Cc_promote of { head : int; members : int; bytes : int }
      (** hot chain starting at chunk [head] fused into a contiguous
          superblock of [members] blocks occupying [bytes] *)
  | Cc_depromote of { head : int; members : int }
      (** superblock dissolved (a member was evicted); survivors revert
          to independent baseline blocks *)
  | Cc_evict of {
      chunk : int;
      base : int;
      bytes : int;
      incoming : int;
      reason : string;
    }
      (** block unlinked ([incoming] = inbound sites reverted).
          [reason] says why it died: ["victim"] (chosen by the
          replacement policy or the FIFO sweep), ["collateral"]
          (overlapped by a placement seeded at another victim),
          ["stub_growth"] (run over by the persistent-stub area),
          ["invalidated"], or ["flushed"]. A string rather than a
          policy type because the trace layer sits below core; see
          {!evict_reasons}. *)
  | Cc_flush of { chunks : int }  (** whole-tcache flush of [chunks] chunks *)
  | Cc_invalidate of { chunks : int }
      (** image-write invalidation dropping [chunks] chunks *)
  | Cc_staged_install of { chunk : int }
      (** prefetched chunk installed from the staging buffer *)
  | Cc_retry of { chunk : int; attempt : int }
      (** re-request after a dropped or corrupted frame *)
  | Cc_degrade of { chunk : int; bytes : int }
      (** the function at [chunk] fell back from function to block
          granularity — its whole-body unit of [bytes] could not be
          cached (oversized, non-contiguously decodable, or larger
          than the tcache can ever hold) *)
  | Tc_alloc of { chunk : int; base : int; bytes : int }
      (** tcache placement decision for a chunk body *)
  | Net_send of { bytes : int; segments : int }
      (** frame put on the wire ([segments] > 1 for a batched frame) *)
  | Net_recv of { bytes : int; cycles : int }
      (** frame delivered after [cycles] on the wire *)
  | Net_fault of { fault : fault }  (** scheduled fault fired *)
  | Fl_request of { client : int; chunk : int }
      (** a fleet session's demand fetch reached the shared MC *)
  | Fl_coalesce of { client : int; chunk : int; wait : int }
      (** the request joined an in-flight frame for identical content:
          no new wire traffic, [wait] cycles until that frame lands *)
  | Fl_frame of { client : int; segments : int; queued : int }
      (** a frame dispatched on the shared link for this client after
          [queued] cycles waiting for the link to free up *)
  | Fl_piggyback of { client : int; bytes : int }
      (** the request rode a frame still occupying the link, adding
          [bytes] of rider segments at marginal wire cost *)
  | Fl_stall of { client : int; cycles : int }
      (** one client-observed transport stall sample of [cycles],
          emitted exactly where the fleet records it for the per-client
          stall percentiles — the trace view of the summary's p50/p99 *)
  | Sh_fill of { hart : int; chunk : int; wait : int }
      (** a hart owned a fill through the multi-hart state machine
          ([Absent -> Requested -> Filling -> Resident]); [wait] is the
          MC-serialization wait paid before the request was issued *)
  | Sh_coalesce of { hart : int; chunk : int; wait : int }
      (** a duplicate miss joined another hart's in-flight fill
          instead of re-requesting over the wire *)
  | Dc_specialise of { site : int }  (** site rewritten to a direct access *)
  | Dc_deopt of { site : int }  (** specialised site torn down *)
  | Dc_miss of { addr : int }  (** software data cache miss *)
  | Dc_spill of { words : int }  (** scache frame spilled to memory *)
  | Dc_refill of { words : int }  (** scache frame refilled *)

val event_type : event -> string
(** Stable snake_case tag, e.g. ["cc_miss"] — the ["type"] field of the
    JSONL schema and the Chrome event name. *)

val evict_reasons : string list
(** The admissible [Cc_evict.reason] values, in no particular order;
    the schema validator rejects anything outside this set. *)

val pp_event : Format.formatter -> event -> unit

(** {1 Tracer} *)

type t

val create : ?limit:int -> unit -> t
(** Ring capacity [limit] (default 65536, must be > 0).
    @raise Invalid_argument if [limit <= 0]. *)

val set_clock : t -> (unit -> int) -> unit
(** Install the cycle source (normally [fun () -> cpu.cycles]); also
    re-bases the attribution ledger at the clock's current value. *)

val emit : t -> event -> unit
(** Record one event at the current clock. Never raises, never touches
    simulator state. *)

val events : t -> (int * event) list
(** Retained [(cycle, event)] pairs, chronological. At most [capacity]
    entries; the oldest are dropped first on overflow. *)

val emitted : t -> int
(** Total events recorded, including overwritten ones. *)

val dropped : t -> int
(** Events lost to ring overflow: [max 0 (emitted - capacity)]. *)

val capacity : t -> int

(** {1 Cycle attribution}

    The ledger splits the CPU cycle counter by cause. Explicit charges
    are labelled at the charge site ([attribute] before the charge
    lands, [attribute_included] after — used for the trap-dispatch cost
    the CPU adds itself); everything between two labelled charges is
    ordinary execution and is swept into [execute] as the residual.
    [sync] folds the residual up to the present; it is idempotent and
    called implicitly by [summary] and [conserved]. *)

type category =
  | Execute  (** instruction execution (the residual) *)
  | Translate  (** miss bookkeeping + per-word rewriting *)
  | Wire  (** interconnect latency, backoff, timeouts *)
  | Trap  (** trap dispatch into the CC *)
  | Dcache  (** software data-cache overhead *)
  | Patch  (** code-word rewrites: backpatch, unlink, stubs *)
  | Scrub  (** stack scans for live landing pads *)
  | Lookup  (** tcache-map hash probes *)

val attribute : t -> category -> int -> unit
(** [attribute t cat c]: charge of [c] cycles about to land on the CPU
    counter belongs to [cat]. *)

val attribute_included : t -> category -> int -> unit
(** Like [attribute], for a charge of [c] cycles that is already
    included in the current clock value. *)

val sync : t -> unit

type summary = {
  s_execute : int;
  s_translate : int;
  s_wire : int;
  s_trap : int;
  s_dcache : int;
  s_patch : int;
  s_scrub : int;
  s_lookup : int;
  s_total : int;  (** sum of all categories *)
  s_emitted : int;
  s_dropped : int;
  s_capacity : int;
}

val summary : t -> summary

val conserved : t -> total:int -> bool
(** [conserved t ~total] — do the attributed categories sum exactly to
    [total] (the CPU cycle counter)? The conservation law checked by
    [Check.Audit]. *)

(** {1 Exporters} *)

val to_jsonl : t -> string
(** One JSON object per line:
    [{"cycle":C,"type":"cc_miss","pc":N}]. *)

val to_chrome : t -> string
(** Chrome trace-event JSON (open in Perfetto / [chrome://tracing]):
    one instant event per ring entry on a per-layer thread, plus
    per-chunk tcache-residency intervals as async spans ([ph:"b"/"e"])
    reconstructed from translate / evict / flush events. Timestamps are
    cycles and are emitted in nondecreasing order. *)

val export : t -> format:[ `Jsonl | `Chrome ] -> string -> unit
(** Write the chosen rendering to a file. *)

(** {1 JSON utilities}

    A dependency-free JSON parser, enough to validate our own
    exports — the test suite and the bench smoke gate check every JSONL
    line against the event schema and the Chrome export for
    well-formedness and timestamp monotonicity. *)

module Json : sig
  type value =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of value list
    | Obj of (string * value) list

  val parse : string -> (value, string) result
  (** Parse a complete JSON document (trailing whitespace allowed). *)

  val member : string -> value -> value option
  (** Field lookup in an [Obj]. *)
end

module Schema : sig
  val validate_jsonl_line : string -> (unit, string) result
  (** Is this line a well-formed event object: a ["cycle"] >= 0, a
      known ["type"], exactly the fields that type requires? *)

  val validate_jsonl : string -> (int, string) result
  (** Validate every non-empty line; returns the number of events or
      the first error (prefixed with its line number). *)

  val validate_chrome : string -> (int, string) result
  (** Well-formed JSON, a ["traceEvents"] array whose entries carry
      [name]/[ph]/[pid]/[tid], with ["ts"] nondecreasing across the
      file and every async begin matched by an end. Returns the number
      of trace events. *)
end
