(* Branch chaining and superblock formation: the rewrite rules must be
   byte-exact and reversible. Patch/unpatch round-trips restore the
   original stub words, eviction of either endpoint of a chained edge
   unlinks it before the victim is reclaimed, superblock promotion
   honours the temperature threshold exactly, and — the property the
   whole link-map design hangs on — after every controller event every
   patched branch targets a live resident chunk and every evicted
   chunk has zero inbound patches, under randomised workload ×
   eviction × flush schedules. *)

let reg = Isa.Reg.r

let prog_sum n =
  let b = Isa.Builder.create "sum" in
  Isa.Builder.li b (reg 1) n;
  Isa.Builder.li b (reg 2) 0;
  let top = Isa.Builder.label b in
  Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 1));
  Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
  Isa.Builder.br b Ne (reg 1) Isa.Reg.zero top;
  Isa.Builder.ins b (Isa.Instr.Out (reg 2));
  Isa.Builder.ins b Isa.Instr.Halt;
  Isa.Builder.build b

let prog_fib n =
  let b = Isa.Builder.create "fib" in
  let fib = Isa.Builder.new_label b in
  let base = Isa.Builder.new_label b in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  Isa.Builder.func b "fib" fib (fun () ->
      Isa.Builder.li b (reg 3) 2;
      Isa.Builder.br b Lt (reg 1) (reg 3) base;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, -12));
      Isa.Builder.ins b (Isa.Instr.St (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.St (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.St (reg 2, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -2));
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 3, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 3));
      Isa.Builder.ins b (Isa.Instr.Ld (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, 12));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra);
      Isa.Builder.here b base;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 1, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.li b (reg 1) n;
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.Out (reg 2));
      Isa.Builder.ins b Isa.Instr.Halt);
  Isa.Builder.build b

let chain_cfg ?(tcache_bytes = 4096) ?(eviction = Softcache.Config.Fifo)
    ?(chain = true) ?(superblock_threshold = 0) () =
  Softcache.Config.make ~tcache_bytes
    ~chunking:Softcache.Config.Basic_block ~eviction ~chain
    ~superblock_threshold ()

let read32 (ctrl : Softcache.Controller.t) a =
  Machine.Memory.read32 ctrl.cpu.mem a

(* Every live chained edge, joined across both views: the source's
   reverse link plus the matching incoming record on the target (which
   carries the revert word the unpatch must restore). *)
let live_links (ctrl : Softcache.Controller.t) =
  List.concat_map
    (fun (b : Softcache.Tcache.block) ->
      List.filter_map
        (fun (l : Softcache.Controller.link) ->
          match Softcache.Tcache.find_by_id ctrl.tc l.l_target with
          | None -> None
          | Some tb ->
            let inc =
              List.find
                (fun (i : Softcache.Tcache.incoming) ->
                  i.from_block = b.id && i.site_paddr = l.l_site)
                tb.incoming
            in
            Some (b, tb, l, inc.revert_word))
        (Softcache.Cc_state.links_of ctrl b.id))
    (Softcache.Tcache.blocks ctrl.tc)

let stub_target (ctrl : Softcache.Controller.t) k =
  match ctrl.stubs.(k) with
  | Softcache.Stub.Exit { target; _ } -> target
  | _ -> Alcotest.fail "link stub is not an exit stub"

(* ------------------------------------------------------------------ *)
(* Eager chaining: correct outputs, fewer traps *)

let test_chain_reduces_traps () =
  (* needs a thrashing cache: with everything resident, translate-time
     binding already resolves every exit and chaining has nothing to
     add. Under churn, re-armed stubs get eagerly re-patched at target
     re-install instead of trapping again. *)
  let img = (Option.get (Workloads.Registry.find "cjpeg")).build () in
  let native = Softcache.Runner.native ~fuel:3_000_000 img in
  let run chain =
    Softcache.Runner.cached_robust ~fuel:3_000_000
      ~prepare:(fun c -> ignore (Check.Audit.install c))
      (chain_cfg ~tcache_bytes:2048 ~chain ())
      img
  in
  let off, coff = run false in
  let on_, con = run true in
  Alcotest.(check (list int)) "off outputs" native.outputs off.outputs;
  Alcotest.(check (list int)) "chained outputs" native.outputs on_.outputs;
  Alcotest.(check bool) "eager patches happened" true (con.stats.chained > 0);
  Alcotest.(check bool) "chained is a subset of patches" true
    (con.stats.patches >= con.stats.chained);
  Alcotest.(check bool) "baseline never chains" true (coff.stats.chained = 0);
  Alcotest.(check bool)
    (Printf.sprintf "chaining cuts traps (%d -> %d)" coff.stats.traps
       con.stats.traps)
    true
    (con.stats.traps < coff.stats.traps)

(* ------------------------------------------------------------------ *)
(* Patch/unpatch round-trip: evict the target, byte-compare the site *)

let test_evict_target_unpatches_and_rechains () =
  let img = prog_fib 12 in
  let ctrl = Softcache.Controller.create (chain_cfg ()) img in
  let _ = Check.Audit.install ctrl in
  let outcome = Softcache.Controller.run ctrl in
  Alcotest.(check bool) "halts" true (outcome = Machine.Cpu.Halted);
  (* pick a chained edge whose source does not overlap the target's
     source range, so invalidating the target leaves the source alive *)
  let b, tb, l, revert =
    match
      List.find_opt
        (fun ((b : Softcache.Tcache.block), (tb : Softcache.Tcache.block), _, _)
           ->
          b.id <> tb.id
          && not
               (tb.vaddr >= b.vaddr && tb.vaddr < b.vaddr + (4 * b.orig_words)))
        (live_links ctrl)
    with
    | Some x -> x
    | None -> Alcotest.fail "no chained edge survived to halt"
  in
  let target = stub_target ctrl l.l_stub in
  Alcotest.(check bool) "site is patched" true (read32 ctrl l.l_site <> revert);
  let reverts0 = ctrl.stats.reverts in
  Softcache.Controller.invalidate ctrl ~lo:tb.vaddr ~hi:(tb.vaddr + 4);
  Alcotest.(check bool) "source survived the invalidate" true
    (Softcache.Tcache.is_alive ctrl.tc b.id);
  Alcotest.(check int) "stub bytes restored" revert (read32 ctrl l.l_site);
  Alcotest.(check bool) "revert counted" true (ctrl.stats.reverts > reverts0);
  Alcotest.(check bool) "link removed" true
    (not
       (List.exists
          (fun (l' : Softcache.Controller.link) -> l'.l_site = l.l_site)
          (Softcache.Cc_state.links_of ctrl b.id)));
  Alcotest.(check bool) "pending re-armed" true
    (Softcache.Cc_state.pending_mem ctrl ~target l.l_stub);
  (* round-trip: re-installing the target must eagerly re-chain the
     re-armed stub *)
  let chained0 = ctrl.stats.chained in
  let tb' = Softcache.Controller.ensure_resident ctrl target in
  Alcotest.(check bool) "re-chained eagerly" true
    (ctrl.stats.chained > chained0);
  Alcotest.(check bool) "site re-patched" true (read32 ctrl l.l_site <> revert);
  Alcotest.(check bool) "pending cleared again" true
    (not (Softcache.Cc_state.pending_mem ctrl ~target l.l_stub));
  Alcotest.(check bool) "new link present" true
    (List.exists
       (fun (l' : Softcache.Controller.link) ->
         l'.l_site = l.l_site && l'.l_target = tb'.id)
       (Softcache.Cc_state.links_of ctrl b.id));
  Check.Audit.check_exn ctrl

(* ------------------------------------------------------------------ *)
(* Flush unpatches everything *)

let test_flush_unpatches_everything () =
  let img = prog_fib 12 in
  let ctrl = Softcache.Controller.create (chain_cfg ()) img in
  let _ = Check.Audit.install ctrl in
  (* pin the entry block so at least one patched source survives the
     flush; its sites must be byte-restored even though their targets
     die *)
  Softcache.Controller.pin ctrl img.Isa.Image.entry;
  let outcome = Softcache.Controller.run ctrl in
  Alcotest.(check bool) "halts" true (outcome = Machine.Cpu.Halted);
  let pinned =
    List.filter
      (fun ((b : Softcache.Tcache.block), _, _, _) ->
        Softcache.Tcache.is_pinned ctrl.tc b.id)
      (live_links ctrl)
  in
  Alcotest.(check bool) "pinned block has chained exits" true (pinned <> []);
  let expect =
    List.map
      (fun (_, _, (l : Softcache.Controller.link), revert) ->
        (l.l_site, revert, l.l_stub, stub_target ctrl l.l_stub))
      pinned
  in
  Softcache.Controller.flush ctrl;
  List.iter
    (fun (site, revert, k, target) ->
      Alcotest.(check int)
        (Printf.sprintf "site 0x%x restored" site)
        revert (read32 ctrl site);
      Alcotest.(check bool)
        (Printf.sprintf "stub %d re-armed" k)
        true
        (Softcache.Cc_state.pending_mem ctrl ~target k))
    expect;
  Alcotest.(check int) "reverse link map empty" 0 (Hashtbl.length ctrl.links);
  Check.Audit.check_exn ctrl

(* ------------------------------------------------------------------ *)
(* Superblock threshold edges (synthetic oracle) *)

let sum_entry_edge img =
  (* the entry chunk's taken branch back to the loop head, as the one
     hot edge a synthetic oracle reports *)
  let entry = img.Isa.Image.entry in
  let c = Softcache.Chunker.chunk_at img Softcache.Config.Basic_block entry in
  let fall = c.Softcache.Chunker.vaddr
             + (4 * Array.length c.Softcache.Chunker.instrs) in
  let taken =
    List.find (fun v -> v <> fall) (Softcache.Chunker.successors img c)
  in
  (entry, taken)

let test_superblock_threshold_edges () =
  let img = prog_sum 50 in
  let entry, taken = sum_entry_edge img in
  let oracle v = if v = entry then Some (taken, 10) else None in
  let native = Softcache.Runner.native img in
  let mk threshold =
    let ctrl =
      Softcache.Controller.create
        (chain_cfg ~superblock_threshold:threshold ())
        img
    in
    ctrl.chain_oracle <- Some oracle;
    let _ = Check.Audit.install ctrl in
    Softcache.Controller.start ctrl;
    ctrl
  in
  (* heat 10 < threshold 11: no promotion *)
  let cold = mk 11 in
  Alcotest.(check int) "heat below threshold: no superblock" 0
    cold.stats.superblocks;
  Alcotest.(check bool) "successor not pulled in" false
    (Softcache.Controller.resident cold taken);
  (* heat 10 >= threshold 10: the chain is fused, laid out contiguously *)
  let hot = mk 10 in
  Alcotest.(check int) "heat at threshold: one superblock" 1
    hot.stats.superblocks;
  Alcotest.(check int) "two members" 2 hot.stats.superblock_blocks;
  Alcotest.(check bool) "successor resident at install" true
    (Softcache.Controller.resident hot taken);
  let b0 = Option.get (Softcache.Tcache.lookup hot.tc entry) in
  let b1 = Option.get (Softcache.Tcache.lookup hot.tc taken) in
  Alcotest.(check int) "members are contiguous"
    (b0.paddr + (4 * b0.words))
    b1.paddr;
  (* de-promotion: evicting any member dissolves the group *)
  Softcache.Controller.invalidate hot ~lo:taken ~hi:(taken + 4);
  Alcotest.(check int) "group dissolved" 1 hot.stats.depromotions;
  Alcotest.(check int) "no superblock survives" 0
    (Hashtbl.length hot.superblocks);
  Alcotest.(check int) "membership map cleared" 0
    (Hashtbl.length hot.sb_of_block);
  (* both controllers still compute the right answer *)
  List.iter
    (fun ctrl ->
      let outcome = Softcache.Controller.run ctrl in
      Alcotest.(check bool) "halts" true (outcome = Machine.Cpu.Halted);
      Alcotest.(check (list int))
        "outputs" native.outputs
        (Machine.Cpu.outputs ctrl.cpu))
    [ cold; hot ]

(* ------------------------------------------------------------------ *)
(* Profile-driven end to end: a real workload, real oracle *)

let test_superblock_profile_e2e () =
  let img = (Option.get (Workloads.Registry.find "compress95")).build () in
  let prof, _ = Profiler.profile img in
  let oracle =
    Softcache.Cc_chain.oracle_of_profile ~image:img
      ~chunking:Softcache.Config.Basic_block
      ~edges_from:(Profiler.edges_from prof)
      ~samples_at:(fun a -> Profiler.samples_in prof ~lo:a ~hi:(a + 4))
  in
  let native = Softcache.Runner.native ~fuel:12_000_000 img in
  let run chain threshold =
    Softcache.Runner.cached_robust ~fuel:12_000_000
      ~prepare:(fun c ->
        c.Softcache.Controller.chain_oracle <- Some oracle;
        ignore (Check.Audit.install c))
      (chain_cfg ~tcache_bytes:16384 ~chain ~superblock_threshold:threshold ())
      img
  in
  let off, coff = run false 0 in
  let chn, cchn = run true 0 in
  let sb, csb = run true 64 in
  List.iter
    (fun (name, (r : Softcache.Runner.robust)) ->
      Alcotest.(check (list int)) (name ^ " outputs") native.outputs r.outputs)
    [ ("off", off); ("chain", chn); ("superblock", sb) ];
  Alcotest.(check bool)
    (Printf.sprintf "chain cuts traps (%d -> %d)" coff.stats.traps
       cchn.stats.traps)
    true
    (cchn.stats.traps < coff.stats.traps);
  Alcotest.(check bool)
    (Printf.sprintf "superblocks cut further (%d -> %d)" cchn.stats.traps
       csb.stats.traps)
    true
    (csb.stats.traps <= cchn.stats.traps);
  Alcotest.(check bool) "superblocks formed" true (csb.stats.superblocks > 0)

(* ------------------------------------------------------------------ *)
(* Satellite regression: collateral evictions fire the event hook and
   unpatch their chained predecessors *)

let test_collateral_eviction_unpatches () =
  (* a thrashing chained run. Pre-fix, the implicit FIFO sweep labelled
     every casualty a policy victim, so [evicted_collateral] stayed 0
     under Fifo; post-fix the overlapped blocks are labelled and,
     because the auditor re-checks the link map after every event,
     every collateral eviction of a chained target is proven to have
     unpatched its predecessors before the event was emitted. *)
  let img = (Option.get (Workloads.Registry.find "cjpeg")).build () in
  let native = Softcache.Runner.native ~fuel:3_000_000 img in
  let evicted_via_hook = ref 0 in
  let ctrl =
    Softcache.Controller.create (chain_cfg ~tcache_bytes:2048 ()) img
  in
  ctrl.on_event <-
    Some
      (function
      | Softcache.Controller.Evicted n -> evicted_via_hook := !evicted_via_hook + n
      | _ -> ());
  let _ = Check.Audit.install ctrl in
  let outcome = Softcache.Controller.run ~fuel:3_000_000 ctrl in
  Alcotest.(check bool) "halts" true (outcome = Machine.Cpu.Halted);
  Alcotest.(check (list int)) "outputs" native.outputs
    (Machine.Cpu.outputs ctrl.cpu);
  Alcotest.(check bool) "collateral evictions happened" true
    (ctrl.stats.evicted_collateral > 0);
  Alcotest.(check bool) "victim evictions happened" true
    (ctrl.stats.evicted_victim > 0);
  Alcotest.(check bool) "chained edges were unpatched" true
    (ctrl.stats.reverts > 0);
  Alcotest.(check int) "every eviction reached the event hook"
    ctrl.stats.evicted_blocks !evicted_via_hook;
  Alcotest.(check int) "labels conserve"
    ctrl.stats.evicted_blocks
    (ctrl.stats.evicted_victim + ctrl.stats.evicted_collateral
   + ctrl.stats.evicted_stub_growth + ctrl.stats.evicted_invalidated
   + ctrl.stats.evicted_flushed)

(* ------------------------------------------------------------------ *)
(* Mutation: a dropped link record must trip the links invariant *)

let test_audit_catches_dropped_link () =
  let ctrl = Softcache.Controller.create (chain_cfg ()) (prog_fib 12) in
  ignore (Check.Audit.install ctrl);
  ctrl.chaos_drop_incoming <- 1;
  match Softcache.Controller.run ctrl with
  | _ -> Alcotest.fail "auditor missed the dropped link record"
  | exception Check.Audit.Audit_failure vs ->
    Alcotest.(check bool) "names the links invariant" true
      (List.exists
         (fun (v : Check.Audit.violation) -> v.invariant = "links")
         vs)

(* ------------------------------------------------------------------ *)
(* The qcheck property: random workload x cache size x eviction policy
   x chaining mode x invalidate/flush schedule. After every controller
   event the auditor proves the link-map invariants (every patched
   branch targets a live resident chunk; every evicted chunk has zero
   inbound patches; stub bytes restored on unpatch), and the run must
   stay access-for-access equivalent to native execution. *)

let qcheck_cases_executed = ref 0

let schedule_gen =
  QCheck.Gen.(
    pair
      (triple (int_range 0 1) (* program family *)
         (int_range 8 13) (* size parameter *)
         (oneofl [ 768; 1024; 2048; 4096 ]) (* tcache bytes *))
      (triple
         (int_range 0 (List.length Softcache.Config.eviction_table - 1))
         (int_range 0 2) (* 0 = off, 1 = chain, 2 = chain + superblocks *)
         (list_size (int_range 0 3) (int_range 0 2) (* mid-run ops *))))

let schedule_print =
  QCheck.Print.(
    pair (triple int int int) (triple int int (list int)))

let schedule_prop ((family, n, tcache_bytes), (ev_i, mode, sched)) =
  incr qcheck_cases_executed;
  let img = if family = 0 then prog_sum (20 + (n * 17)) else prog_fib n in
  let eviction = snd (List.nth Softcache.Config.eviction_table ev_i) in
  let chain = mode > 0 in
  let superblock_threshold = if mode = 2 then 1 else 0 in
  let oracle =
    if mode = 2 then begin
      let prof, _ = Profiler.profile img in
      Some
        (Softcache.Cc_chain.oracle_of_profile ~image:img
           ~chunking:Softcache.Config.Basic_block
           ~edges_from:(Profiler.edges_from prof)
           ~samples_at:(fun a -> Profiler.samples_in prof ~lo:a ~hi:(a + 4)))
    end
    else None
  in
  let native = Softcache.Runner.native img in
  (* fuel sized to the run so the op schedule fires mid-execution *)
  let fuel = (2 * native.retired) + 4096 in
  let hi = 0x1000 + Isa.Image.static_text_bytes img in
  let ops =
    List.map
      (fun op ctrl ->
        match op with
        | 1 -> Softcache.Controller.invalidate ctrl ~lo:0 ~hi
        | 2 -> Softcache.Controller.flush ctrl
        | _ -> ())
      sched
  in
  let cfg =
    Softcache.Config.make ~tcache_bytes
      ~chunking:Softcache.Config.Basic_block ~eviction ~chain
      ~superblock_threshold ()
  in
  match
    Check.Lockstep.run ~fuel ~ops ~audit:true
      ~on_controller:(fun c -> c.Softcache.Controller.chain_oracle <- oracle)
      cfg img
  with
  | Check.Lockstep.Equivalent { events } -> events > 0
  | v ->
    QCheck.Test.fail_reportf "schedule property violated: %a"
      Check.Lockstep.pp_verdict v

let test_qcheck_schedules () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"chain/link-map schedule property"
       (QCheck.make ~print:schedule_print schedule_gen)
       schedule_prop);
  (* the suite must not silently shrink: 200 generated cases, every
     one executed (the counter lives inside the property) *)
  Alcotest.(check bool)
    (Printf.sprintf "qcheck executed %d cases (>= 200)"
       !qcheck_cases_executed)
    true
    (!qcheck_cases_executed >= 200)

(* ------------------------------------------------------------------ *)
(* Registry-wide: chaining on/off/superblocks observably equivalent *)

let test_chain_modes_registry () =
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let img = e.build () in
      let prof, _ = Profiler.profile ~fuel:12_000_000 img in
      let oracle =
        Softcache.Cc_chain.oracle_of_profile ~image:img
          ~chunking:Softcache.Config.Basic_block
          ~edges_from:(Profiler.edges_from prof)
          ~samples_at:(fun a -> Profiler.samples_in prof ~lo:a ~hi:(a + 4))
      in
      match
        Check.Lockstep.chain_modes ~fuel:12_000_000 ~oracle
          ~superblock_threshold:16
          (fun () -> chain_cfg ~tcache_bytes:4096 ~chain:false ())
          img
      with
      | Check.Lockstep.Modes_equivalent { modes; events } ->
        Alcotest.(check (list string))
          (e.name ^ " covers all modes")
          [ "off"; "chain"; "chain+superblock" ]
          modes;
        Alcotest.(check bool) (e.name ^ " compared something") true (events > 0)
      | v ->
        Alcotest.failf "%s: %a" e.name Check.Lockstep.pp_modes_verdict v)
    Workloads.Registry.all

let () =
  Alcotest.run "chain"
    [
      ( "chaining",
        [
          Alcotest.test_case "eager chaining reduces traps" `Quick
            test_chain_reduces_traps;
          Alcotest.test_case "evict target: unpatch, re-arm, re-chain" `Quick
            test_evict_target_unpatches_and_rechains;
          Alcotest.test_case "flush unpatches everything" `Quick
            test_flush_unpatches_everything;
        ] );
      ( "superblocks",
        [
          Alcotest.test_case "threshold edges" `Quick
            test_superblock_threshold_edges;
          Alcotest.test_case "profile-driven end to end" `Slow
            test_superblock_profile_e2e;
        ] );
      ( "eviction",
        [
          Alcotest.test_case "collateral evictions unpatch and hook" `Quick
            test_collateral_eviction_unpatches;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "catches a dropped link record" `Quick
            test_audit_catches_dropped_link;
        ] );
      ( "property",
        [
          Alcotest.test_case "random schedules, 200 cases" `Slow
            test_qcheck_schedules;
        ] );
      ( "lockstep",
        [
          Alcotest.test_case "registry-wide mode equivalence" `Slow
            test_chain_modes_registry;
        ] );
    ]
