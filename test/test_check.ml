(* Tests of the lib/check subsystem itself: the invariant auditor must
   pass on healthy runs, FAIL when a real bookkeeping bug is seeded
   (proving the invariants are not vacuous), and the lockstep
   differential runner must track native execution access-for-access —
   including across mid-run invalidations and flushes. *)

let reg = Isa.Reg.r

let prog_sum n =
  let b = Isa.Builder.create "sum" in
  Isa.Builder.li b (reg 1) n;
  Isa.Builder.li b (reg 2) 0;
  let top = Isa.Builder.label b in
  Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 1));
  Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
  Isa.Builder.br b Ne (reg 1) Isa.Reg.zero top;
  Isa.Builder.ins b (Isa.Instr.Out (reg 2));
  Isa.Builder.ins b Isa.Instr.Halt;
  Isa.Builder.build b

let prog_fib n =
  let b = Isa.Builder.create "fib" in
  let fib = Isa.Builder.new_label b in
  let base = Isa.Builder.new_label b in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  Isa.Builder.func b "fib" fib (fun () ->
      Isa.Builder.li b (reg 3) 2;
      Isa.Builder.br b Lt (reg 1) (reg 3) base;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, -12));
      Isa.Builder.ins b (Isa.Instr.St (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.St (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.St (reg 2, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -2));
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 3, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 3));
      Isa.Builder.ins b (Isa.Instr.Ld (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, 12));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra);
      Isa.Builder.here b base;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 1, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.li b (reg 1) n;
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.Out (reg 2));
      Isa.Builder.ins b Isa.Instr.Halt);
  Isa.Builder.build b

let small_cfg ?(tcache_bytes = 1024) ?(eviction = Softcache.Config.Fifo) ()
    =
  Softcache.Config.make ~tcache_bytes
    ~chunking:Softcache.Config.Basic_block ~eviction ()

(* ------------------------------------------------------------------ *)
(* Auditor on healthy runs *)

let test_audit_clean_thrashing () =
  (* a real workload in a 2 KB cache: evictions, scrubbing, persistent
     stubs — the auditor must stay silent through all of it *)
  let img = (Option.get (Workloads.Registry.find "cjpeg")).build () in
  List.iter
    (fun (pname, eviction) ->
      let ctrl =
        Softcache.Controller.create
          (small_cfg ~tcache_bytes:2048 ~eviction ())
          img
      in
      let audits = Check.Audit.install ctrl in
      let outcome = Softcache.Controller.run ~fuel:3_000_000 ctrl in
      Alcotest.(check bool) (pname ^ " halts") true
        (outcome = Machine.Cpu.Halted);
      Alcotest.(check bool) (pname ^ " auditor exercised") true
        (!audits > 100);
      Alcotest.(check bool) (pname ^ " cache actually thrashed") true
        (ctrl.stats.evicted_blocks > 0))
    Softcache.Config.eviction_table

let test_audit_counts_events () =
  let ctrl = Softcache.Controller.create (small_cfg ()) (prog_sum 50) in
  let audits = Check.Audit.install ctrl in
  ignore (Softcache.Controller.run ctrl);
  (* at minimum one Translated event per translation *)
  Alcotest.(check bool) "audits >= translations" true
    (!audits >= ctrl.stats.translations)

let test_install_if_configured () =
  let off = Softcache.Controller.create (small_cfg ()) (prog_sum 5) in
  Alcotest.(check bool) "off by default" true
    (Check.Audit.install_if_configured off = None);
  let cfg =
    Softcache.Config.make ~tcache_bytes:1024 ~audit:true
      ~chunking:Softcache.Config.Basic_block ()
  in
  let on = Softcache.Controller.create cfg (prog_sum 5) in
  Alcotest.(check bool) "on when configured" true
    (Check.Audit.install_if_configured on <> None)

(* ------------------------------------------------------------------ *)
(* Mutation test: seed a real bookkeeping bug, the auditor must object *)

let test_audit_catches_dropped_incoming () =
  (* chaos_drop_incoming silently skips the next incoming-pointer
     record — exactly the bug class the eviction protocol cannot
     tolerate. The auditor's completeness scan must flag it at the
     next consistent point. *)
  let ctrl = Softcache.Controller.create (small_cfg ()) (prog_fib 12) in
  ignore (Check.Audit.install ctrl);
  ctrl.chaos_drop_incoming <- 1;
  match Softcache.Controller.run ctrl with
  | _ -> Alcotest.fail "auditor missed the dropped incoming record"
  | exception Check.Audit.Audit_failure vs ->
    Alcotest.(check bool) "names the incoming invariant" true
      (List.exists (fun (v : Check.Audit.violation) ->
           v.invariant = "incoming") vs)

let test_audit_run_reports_without_raising () =
  (* Audit.run returns violations as data; only check_exn throws. Stop
     at the first violation — running on with a seeded bookkeeping bug
     would eventually execute through a stale pointer. *)
  let ctrl = Softcache.Controller.create (small_cfg ()) (prog_fib 12) in
  ctrl.chaos_drop_incoming <- 1;
  let saw = ref [] in
  ctrl.on_event <-
    Some
      (fun _ ->
        match Check.Audit.run ctrl with
        | [] -> ()
        | vs ->
          saw := vs;
          raise Exit);
  (match Softcache.Controller.run ctrl with
  | _ -> ()
  | exception Exit -> ());
  match !saw with
  | _ :: _ -> ()
  | [] -> Alcotest.fail "expected at least one violation"

(* ------------------------------------------------------------------ *)
(* Lockstep differential runner *)

let check_equiv name verdict =
  match verdict with
  | Check.Lockstep.Equivalent { events } ->
    Alcotest.(check bool) (name ^ " compared something") true (events > 0)
  | v ->
    Alcotest.failf "%s: expected equivalence, got %a" name
      Check.Lockstep.pp_verdict v

let test_lockstep_equivalent () =
  check_equiv "sum"
    (Check.Lockstep.run (small_cfg ~tcache_bytes:768 ()) (prog_sum 200));
  check_equiv "fib/fifo"
    (Check.Lockstep.run ~audit:true (small_cfg ()) (prog_fib 12));
  check_equiv "fib/flush"
    (Check.Lockstep.run
       (small_cfg ~eviction:Softcache.Config.Flush_all ())
       (prog_fib 12))

let test_lockstep_midrun_invalidate () =
  (* invalidate the whole image range twice mid-run: execution must
     still track the native access stream exactly *)
  let img = prog_fib 13 in
  let hi = 0x1000 + Isa.Image.static_text_bytes img in
  let inv ctrl = Softcache.Controller.invalidate ctrl ~lo:0 ~hi in
  check_equiv "invalidate mid-run"
    (Check.Lockstep.run ~audit:true ~ops:[ inv; inv ] (small_cfg ()) img)

let test_lockstep_midrun_flush () =
  let img = prog_fib 13 in
  check_equiv "flush mid-run"
    (Check.Lockstep.run ~audit:true
       ~ops:[ Softcache.Controller.flush; Softcache.Controller.flush ]
       (small_cfg ()) img)

let test_lockstep_unavailable () =
  (* a dead link: the verdict must be Unavailable, not an exception *)
  let faults = Netmodel.Faults.make ~seed:1 ~drop:1.0 () in
  let cfg =
    Softcache.Config.make ~tcache_bytes:1024
      ~chunking:Softcache.Config.Basic_block
      ~net:(Netmodel.local ~faults ()) ()
  in
  match Check.Lockstep.run cfg (prog_sum 10) with
  | Check.Lockstep.Unavailable _ -> ()
  | v ->
    Alcotest.failf "expected Unavailable, got %a" Check.Lockstep.pp_verdict v

let test_lockstep_native_fuel () =
  match Check.Lockstep.run ~fuel:10 (small_cfg ()) (prog_sum 1000) with
  | Check.Lockstep.Native_out_of_fuel -> ()
  | v ->
    Alcotest.failf "expected Native_out_of_fuel, got %a"
      Check.Lockstep.pp_verdict v

let test_lockstep_policies () =
  (* the whole replacement-policy registry against native, with the
     auditor (including its policy-view section) on each cached side *)
  match
    Check.Lockstep.policies ~audit:true (fun () -> small_cfg ()) (prog_fib 12)
  with
  | Check.Lockstep.Policies_equivalent { policies; events } ->
    Alcotest.(check (list string))
      "covers the registry"
      (List.map fst Softcache.Config.eviction_table)
      policies;
    Alcotest.(check bool) "compared something" true (events > 0)
  | v ->
    Alcotest.failf "expected policy equivalence, got %a"
      Check.Lockstep.pp_policies_verdict v

(* ------------------------------------------------------------------ *)
(* Decoded vs interpretive dispatch in lockstep *)

let check_engines_equiv name verdict =
  match verdict with
  | Check.Lockstep.Engines_equivalent { steps } ->
    Alcotest.(check bool) (name ^ " stepped something") true (steps > 0)
  | v ->
    Alcotest.failf "%s: expected engine equivalence, got %a" name
      Check.Lockstep.pp_engine_verdict v

let test_engines_equivalent () =
  check_engines_equiv "sum"
    (Check.Lockstep.engines
       (fun () -> small_cfg ~tcache_bytes:768 ())
       (prog_sum 200));
  check_engines_equiv "fib/fifo"
    (Check.Lockstep.engines ~audit:true (fun () -> small_cfg ()) (prog_fib 10));
  check_engines_equiv "fib/flush"
    (Check.Lockstep.engines
       (fun () -> small_cfg ~eviction:Softcache.Config.Flush_all ())
       (prog_fib 10))

let test_engines_midrun_ops () =
  (* tcache invalidation, a full flush and a decode-cache flush fired
     at identical instruction boundaries on both sides: the rewriting
     storm that follows must leave the engines in identical state at
     every subsequent step *)
  let img = prog_fib 12 in
  let native = Softcache.Runner.native img in
  let hi = 0x1000 + Isa.Image.static_text_bytes img in
  let inv c = Softcache.Controller.invalidate c ~lo:0 ~hi in
  let dflush (c : Softcache.Controller.t) =
    Machine.Memory.decode_flush c.cpu.mem
  in
  let fuel = native.retired in
  let slice = fuel / 4 in
  match
    Check.Lockstep.engines ~audit:true ~fuel
      ~ops:[ inv; Softcache.Controller.flush; dflush ]
      (fun () -> small_cfg ())
      img
  with
  | Check.Lockstep.Engines_equivalent { steps }
  | Check.Lockstep.Engines_out_of_fuel { steps } ->
    Alcotest.(check bool) "ops fired mid-run" true (steps >= slice)
  | v ->
    Alcotest.failf "mid-run ops: %a" Check.Lockstep.pp_engine_verdict v

let test_engines_registry () =
  (* every shipped workload, stepped under a thrashing 2 KB tcache;
     out-of-fuel counts as success — every compared step matched *)
  List.iter
    (fun (e : Workloads.Registry.entry) ->
      let img = e.build () in
      match
        Check.Lockstep.engines ~fuel:60_000
          (fun () -> small_cfg ~tcache_bytes:2048 ())
          img
      with
      | Check.Lockstep.Engines_equivalent { steps }
      | Check.Lockstep.Engines_out_of_fuel { steps } ->
        Alcotest.(check bool) (e.name ^ " stepped something") true (steps > 0)
      | v ->
        Alcotest.failf "%s: %a" e.name Check.Lockstep.pp_engine_verdict v)
    Workloads.Registry.all

let test_engines_detect_divergence () =
  (* mutation test: skew one register on the decoded side only; the
     very next comparison must object, proving the runner is not
     vacuously equivalent *)
  let skew (c : Softcache.Controller.t) =
    if c.cpu.engine = Machine.Cpu.Decoded then
      c.cpu.regs.(9) <- c.cpu.regs.(9) + 1
  in
  match
    Check.Lockstep.engines ~fuel:100 ~ops:[ skew ]
      (fun () -> small_cfg ())
      (prog_fib 12)
  with
  | Check.Lockstep.Engines_diverged _ -> ()
  | v ->
    Alcotest.failf "expected divergence, got %a"
      Check.Lockstep.pp_engine_verdict v

let test_engines_unavailable () =
  let mk () =
    let faults = Netmodel.Faults.make ~seed:1 ~drop:1.0 () in
    Softcache.Config.make ~tcache_bytes:1024
      ~chunking:Softcache.Config.Basic_block
      ~net:(Netmodel.local ~faults ()) ()
  in
  match Check.Lockstep.engines mk (prog_sum 10) with
  | Check.Lockstep.Engines_unavailable _ -> ()
  | v ->
    Alcotest.failf "expected Engines_unavailable, got %a"
      Check.Lockstep.pp_engine_verdict v

let () =
  Alcotest.run "check"
    [
      ( "audit",
        [
          Alcotest.test_case "clean under thrashing" `Quick
            test_audit_clean_thrashing;
          Alcotest.test_case "fires per event" `Quick test_audit_counts_events;
          Alcotest.test_case "wired behind Config.audit" `Quick
            test_install_if_configured;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "catches a dropped incoming record" `Quick
            test_audit_catches_dropped_incoming;
          Alcotest.test_case "run returns violations as data" `Quick
            test_audit_run_reports_without_raising;
        ] );
      ( "lockstep",
        [
          Alcotest.test_case "equivalent streams" `Quick
            test_lockstep_equivalent;
          Alcotest.test_case "invalidate mid-run" `Quick
            test_lockstep_midrun_invalidate;
          Alcotest.test_case "flush mid-run" `Quick test_lockstep_midrun_flush;
          Alcotest.test_case "unavailable surfaces cleanly" `Quick
            test_lockstep_unavailable;
          Alcotest.test_case "native fuel exhaustion" `Quick
            test_lockstep_native_fuel;
          Alcotest.test_case "policy registry equivalence" `Quick
            test_lockstep_policies;
        ] );
      ( "engines",
        [
          Alcotest.test_case "decoded = interpretive" `Quick
            test_engines_equivalent;
          Alcotest.test_case "mid-run invalidate/flush/decode-flush" `Quick
            test_engines_midrun_ops;
          Alcotest.test_case "every registry workload" `Quick
            test_engines_registry;
          Alcotest.test_case "detects seeded divergence" `Quick
            test_engines_detect_divergence;
          Alcotest.test_case "unavailable surfaces cleanly" `Quick
            test_engines_unavailable;
        ] );
    ]
