(* Golden tests of the CLI's fault/audit surface: exit codes and the
   transport/recovery rows printed by `softcache run`. The binary is a
   dune dependency, available next to the test as ../bin/. *)

let exe = Filename.concat (Filename.concat ".." "bin") "softcache_cli.exe"

let run_cli args =
  let out = Filename.temp_file "softcache_cli" ".out" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe)
         (String.concat " " args) (Filename.quote out))
  in
  let text = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  (code, text)

let contains text needle =
  let n = String.length needle and h = String.length text in
  let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
  go 0

let expect_contains text what needle =
  Alcotest.(check bool)
    (Printf.sprintf "output mentions %s (%S)" what needle)
    true (contains text needle)

let test_run_clean () =
  let code, out = run_cli [ "run"; "sensor_modes"; "--tcache"; "2048" ] in
  Alcotest.(check int) "exit code" 0 code;
  expect_contains out "match" "outputs match";
  expect_contains out "match value" ": true";
  (* fault-free runs must not grow fault rows *)
  Alcotest.(check bool) "no fault rows" false (contains out "faults injected")

let test_run_faults_audit () =
  let code, out =
    run_cli
      [
        "run"; "sensor_modes"; "--tcache"; "2048"; "--net"; "ethernet";
        "--faults"; "seed=7,drop=0.1,corrupt=0.05,dup=0.05,spike=0.1";
        "--audit";
      ]
  in
  Alcotest.(check int) "exit code" 0 code;
  expect_contains out "status row" "status";
  expect_contains out "status value" "halted";
  expect_contains out "fault row" "faults injected";
  expect_contains out "recovery row" "recovery";
  expect_contains out "retry detail" "retries (max";
  expect_contains out "recovered row" "chunks recovered";
  expect_contains out "unavailable row" "chunks unavailable";
  expect_contains out "audit row" "audits passed";
  expect_contains out "outputs" "outputs match"

let test_run_dead_link_exit_3 () =
  let code, out =
    run_cli
      [
        "run"; "sensor_modes"; "--tcache"; "2048";
        "--faults"; "seed=1,drop=1.0";
      ]
  in
  Alcotest.(check int) "exit code" 3 code;
  expect_contains out "status" "unavailable"

let test_run_traced () =
  (* --trace writes a schema-shaped JSONL file, prints the attribution
     summary, and the traced run still exits clean *)
  let out_file = Filename.temp_file "softcache_trace" ".jsonl" in
  let code, out =
    run_cli
      [
        "run"; "sensor_modes"; "--tcache"; "2048"; "--trace"; out_file;
        "--trace-limit"; "50000";
      ]
  in
  let trace_text = In_channel.with_open_text out_file In_channel.input_all in
  Sys.remove out_file;
  Alcotest.(check int) "exit code" 0 code;
  expect_contains out "trace row" "trace";
  expect_contains out "attribution rows" "execute";
  expect_contains out "conservation marker" "(conserved)";
  expect_contains out "ring occupancy" "ring capacity";
  Alcotest.(check bool) "file is non-empty jsonl" true
    (String.length trace_text > 0 && trace_text.[0] = '{');
  expect_contains trace_text "cycle stamps" "\"cycle\":";
  expect_contains trace_text "event types" "\"type\":\"cc_translated\""

let test_run_traced_chrome () =
  let out_file = Filename.temp_file "softcache_trace" ".json" in
  let code, _ =
    run_cli
      [
        "run"; "sensor_modes"; "--tcache"; "2048"; "--trace"; out_file;
        "--trace-format"; "chrome";
      ]
  in
  let trace_text = In_channel.with_open_text out_file In_channel.input_all in
  Sys.remove out_file;
  Alcotest.(check int) "exit code" 0 code;
  expect_contains trace_text "chrome envelope" "\"traceEvents\"";
  expect_contains trace_text "thread metadata" "\"thread_name\"";
  expect_contains trace_text "residency spans" "\"residency\""

let test_trace_is_invisible_in_output () =
  (* the cycle counts printed with and without --trace must be
     identical — the user-facing face of the zero-perturbation rule *)
  let file = Filename.temp_file "softcache_trace" ".jsonl" in
  let _, plain = run_cli [ "run"; "sensor_modes"; "--tcache"; "2048" ] in
  let _, traced =
    run_cli [ "run"; "sensor_modes"; "--tcache"; "2048"; "--trace"; file ]
  in
  Sys.remove file;
  let cycles_line text =
    List.find_opt
      (fun l -> contains l "softcache cycles")
      (String.split_on_char '\n' text)
  in
  match (cycles_line plain, cycles_line traced) with
  | Some a, Some b -> Alcotest.(check string) "identical cycle row" a b
  | _ -> Alcotest.fail "missing softcache cycles row"

let test_bad_trace_args_rejected () =
  let code, _ =
    run_cli [ "run"; "sensor_modes"; "--trace-format"; "xml" ]
  in
  Alcotest.(check bool) "unknown format rejected" true (code <> 0)

let test_dcache_traced () =
  let out_file = Filename.temp_file "softcache_dtrace" ".jsonl" in
  let code, out = run_cli [ "dcache"; "cjpeg"; "--trace"; out_file ] in
  let trace_text = In_channel.with_open_text out_file In_channel.input_all in
  Sys.remove out_file;
  Alcotest.(check int) "exit code" 0 code;
  expect_contains out "attribution row" "dcache overhead";
  expect_contains out "conservation marker" "(conserved)";
  Alcotest.(check bool) "file is non-empty" true (String.length trace_text > 0)

let test_eviction_flag_accepted () =
  (* every name in the policy registry is a valid --eviction value and
     shows up in the report's policy row; the list is intentionally a
     literal so a registry rename breaks a golden test *)
  List.iter
    (fun name ->
      let code, out =
        run_cli
          [ "run"; "sensor_modes"; "--tcache"; "2048"; "--eviction"; name ]
      in
      Alcotest.(check int) (name ^ " exit code") 0 code;
      expect_contains out "policy row" "replacement policy";
      expect_contains out (name ^ " policy name") name;
      expect_contains out "outputs" "outputs match")
    [ "fifo"; "flush"; "lru"; "rrip" ]

let test_eviction_flag_rejected () =
  let code, out =
    run_cli [ "run"; "sensor_modes"; "--eviction"; "clock" ]
  in
  Alcotest.(check bool) "unknown policy rejected" true (code <> 0);
  (* cmdliner's enum conv names the offending value and the valid set *)
  expect_contains out "offending value" "clock";
  expect_contains out "valid set mentions fifo" "fifo";
  expect_contains out "valid set mentions rrip" "rrip"

let test_bad_faults_spec_rejected () =
  let code, _ =
    run_cli [ "run"; "sensor_modes"; "--faults"; "drop=eleven" ]
  in
  Alcotest.(check bool) "cmdliner rejects the spec" true (code <> 0);
  let code2, _ =
    run_cli [ "run"; "sensor_modes"; "--faults"; "warp=0.5" ]
  in
  Alcotest.(check bool) "unknown key rejected" true (code2 <> 0)

(* ------------------------------------------------------------------ *)
(* sizing subcommand: golden rows, determinism, argument surface *)

let test_sizing_golden () =
  let code, out = run_cli [ "sizing"; "compress95" ] in
  Alcotest.(check int) "exit code" 0 code;
  expect_contains out "chunk walk row" "chunks walked";
  expect_contains out "dominant set row" "dominant chunks";
  expect_contains out "dominant share" "(90% of samples)";
  expect_contains out "source footprint row" "dominant source";
  expect_contains out "rewritten footprint row" "dominant rewritten";
  expect_contains out "prediction row" "predicted tcache need";
  expect_contains out "knee row" "predicted knee";
  expect_contains out "trrip coupling row" "trrip prior primed below";
  expect_contains out "hot chunk table" "hottest chunks";
  expect_contains out "table columns" "rewritten"

let test_sizing_deterministic () =
  (* the analytic model is a pure function of the image and profile:
     two invocations must emit byte-identical reports *)
  let _, a = run_cli [ "sizing"; "compress95" ] in
  let _, b = run_cli [ "sizing"; "compress95" ] in
  Alcotest.(check string) "byte-identical output" a b

let test_sizing_options () =
  let code, out =
    run_cli
      [ "sizing"; "cjpeg"; "--chunking"; "proc"; "--threshold"; "0.8";
        "--headroom"; "1.2" ]
  in
  Alcotest.(check int) "exit code" 0 code;
  expect_contains out "dominant share follows --threshold" "(80% of samples)"

let test_sizing_unknown_workload () =
  let code, out = run_cli [ "sizing"; "no_such_app" ] in
  Alcotest.(check int) "exit code" 1 code;
  expect_contains out "offending name" "no_such_app";
  expect_contains out "suggests the registry" "compress95"

(* ------------------------------------------------------------------ *)
(* sharded multi-hart run + heterogeneous auto-sized fleet *)

let test_run_harts () =
  let code, out =
    run_cli
      [ "run"; "sensor_modes"; "--tcache"; "2048"; "--harts"; "2";
        "--shards"; "2"; "--audit" ]
  in
  Alcotest.(check int) "exit code" 0 code;
  expect_contains out "hart row" "2 over 2 tcache shard(s)";
  expect_contains out "makespan row" "makespan";
  expect_contains out "outputs row" "outputs match (all harts)";
  expect_contains out "outputs value" ": true";
  expect_contains out "shard audit row" "shard audit";
  expect_contains out "shard audit value" "clean"

let test_fleet_workloads_autosize () =
  let code, out =
    run_cli
      [ "fleet"; "sensor_modes"; "--workloads"; "sensor_modes,adpcm_encode";
        "--auto-size"; "--clients"; "2"; "--tcache"; "2048";
        "--fuel"; "100000"; "--audit" ]
  in
  Alcotest.(check int) "exit code" 0 code;
  expect_contains out "per-client workloads row" "sensor_modes;adpcm_encode";
  expect_contains out "prediction row" "predicted_bytes";
  expect_contains out "audit row" "audit";
  expect_contains out "audit verdict" "clean"

let test_fleet_unknown_workload_rejected () =
  let code, out =
    run_cli
      [ "fleet"; "sensor_modes"; "--workloads"; "sensor_modes,bogus" ]
  in
  Alcotest.(check int) "exit code" 1 code;
  expect_contains out "offending name" "bogus"

let () =
  Alcotest.run "cli"
    [
      ( "run",
        [
          Alcotest.test_case "clean run, no fault rows" `Quick test_run_clean;
          Alcotest.test_case "faults + audit rows" `Quick
            test_run_faults_audit;
          Alcotest.test_case "dead link exits 3" `Quick
            test_run_dead_link_exit_3;
          Alcotest.test_case "bad --faults rejected" `Quick
            test_bad_faults_spec_rejected;
          Alcotest.test_case "--eviction accepts the registry" `Quick
            test_eviction_flag_accepted;
          Alcotest.test_case "--eviction rejects unknown policies" `Quick
            test_eviction_flag_rejected;
        ] );
      ( "trace",
        [
          Alcotest.test_case "--trace writes jsonl + summary" `Quick
            test_run_traced;
          Alcotest.test_case "--trace-format chrome" `Quick
            test_run_traced_chrome;
          Alcotest.test_case "cycle counts unchanged by --trace" `Quick
            test_trace_is_invisible_in_output;
          Alcotest.test_case "bad --trace-format rejected" `Quick
            test_bad_trace_args_rejected;
          Alcotest.test_case "dcache --trace" `Quick test_dcache_traced;
        ] );
      ( "sizing",
        [
          Alcotest.test_case "golden report rows" `Quick test_sizing_golden;
          Alcotest.test_case "deterministic output" `Quick
            test_sizing_deterministic;
          Alcotest.test_case "threshold/headroom/chunking flags" `Quick
            test_sizing_options;
          Alcotest.test_case "unknown workload rejected" `Quick
            test_sizing_unknown_workload;
        ] );
      ( "shard",
        [
          Alcotest.test_case "--harts multi-hart run" `Quick test_run_harts;
          Alcotest.test_case "fleet --workloads --auto-size" `Quick
            test_fleet_workloads_autosize;
          Alcotest.test_case "fleet unknown workload rejected" `Quick
            test_fleet_unknown_workload_rejected;
        ] );
    ]
