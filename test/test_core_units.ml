(* Unit tests of the SoftCache internals: the chunker, the rewriter's
   layout and emission rules, and the translation-cache bookkeeping. *)

let reg = Isa.Reg.r

let image_of instrs ?(symbols = []) () =
  Isa.Image.make ~name:"unit" ~code_base:0x1000
    ~code:(Array.of_list (List.map Isa.Encode.encode instrs))
    ~data_base:0x100000 ~data:Bytes.empty ~entry:0x1000 ~symbols

(* ------------------------------------------------------------------ *)
(* Chunker *)

let test_chunk_basic_block () =
  let img =
    image_of
      [
        Isa.Instr.Nop;
        Isa.Instr.Alui (Add, reg 1, reg 1, 1);
        Isa.Instr.Br (Eq, reg 1, reg 2, 4);
        Isa.Instr.Nop;
        Isa.Instr.Halt;
      ]
      ()
  in
  let c = Softcache.Chunker.chunk_at img Softcache.Config.Basic_block 0x1000 in
  Alcotest.(check int) "ends at branch" 3 (Array.length c.instrs);
  Alcotest.(check int) "span" 12 (Softcache.Chunker.span_bytes c);
  (* a chunk can start mid-block (tail duplication) *)
  let c2 = Softcache.Chunker.chunk_at img Softcache.Config.Basic_block 0x1004 in
  Alcotest.(check int) "tail chunk" 2 (Array.length c2.instrs);
  (* and right at the terminator *)
  let c3 = Softcache.Chunker.chunk_at img Softcache.Config.Basic_block 0x1008 in
  Alcotest.(check int) "terminator-only" 1 (Array.length c3.instrs)

let test_chunk_procedure () =
  let symbols =
    [
      { Isa.Image.sym_name = "f"; sym_addr = 0x1000; sym_size = 12 };
      { Isa.Image.sym_name = "g"; sym_addr = 0x100c; sym_size = 8 };
    ]
  in
  let img =
    image_of
      [
        Isa.Instr.Nop;
        Isa.Instr.Br (Eq, reg 1, reg 2, -1);
        Isa.Instr.Jr Isa.Reg.ra;
        Isa.Instr.Nop;
        Isa.Instr.Halt;
      ]
      ~symbols ()
  in
  let c = Softcache.Chunker.chunk_at img Softcache.Config.Procedure 0x1000 in
  Alcotest.(check int) "whole procedure" 3 (Array.length c.instrs);
  (* entering mid-procedure chunks to the procedure's end *)
  let c2 = Softcache.Chunker.chunk_at img Softcache.Config.Procedure 0x1004 in
  Alcotest.(check int) "rest of procedure" 2 (Array.length c2.instrs);
  let c3 = Softcache.Chunker.chunk_at img Softcache.Config.Procedure 0x100c in
  Alcotest.(check int) "next procedure" 2 (Array.length c3.instrs)

let test_chunk_bad_addresses () =
  let img = image_of [ Isa.Instr.Halt ] () in
  let expect_bad v =
    match Softcache.Chunker.chunk_at img Softcache.Config.Basic_block v with
    | exception Softcache.Chunker.Bad_address _ -> ()
    | _ -> Alcotest.failf "expected Bad_address for 0x%x" v
  in
  expect_bad 0x0FFC;
  expect_bad 0x1004;
  expect_bad 0x1001

let test_chunk_rejects_trap () =
  let img = image_of [ Isa.Instr.Nop; Isa.Instr.Trap 3; Isa.Instr.Halt ] () in
  match Softcache.Chunker.chunk_at img Softcache.Config.Basic_block 0x1000 with
  | exception Softcache.Chunker.Trap_in_source 0x1004 -> ()
  | _ -> Alcotest.fail "expected Trap_in_source"

(* ------------------------------------------------------------------ *)
(* Rewriter: layout rules *)

let layout instrs =
  Softcache.Rewriter.layout_words
    { Softcache.Chunker.vaddr = 0x1000; instrs = Array.of_list instrs }

let test_layout_sizes () =
  (* plain + halt: verbatim *)
  Alcotest.(check int) "straight-line + halt" 2
    (layout [ Isa.Instr.Nop; Isa.Instr.Halt ]);
  (* external conditional branch: word + fall slot + island *)
  Alcotest.(check int) "branch block" 3
    (layout [ Isa.Instr.Br (Eq, reg 1, reg 2, 100) ]);
  (* external jmp: single patched word, no extras *)
  Alcotest.(check int) "jmp block" 1 (layout [ Isa.Instr.Jmp 0x2000 ]);
  (* call: jal + pad + island *)
  Alcotest.(check int) "call block" 3 (layout [ Isa.Instr.Jal 0x2000 ]);
  (* return: verbatim *)
  Alcotest.(check int) "return" 1 (layout [ Isa.Instr.Jr Isa.Reg.ra ]);
  (* computed jump: one trap *)
  Alcotest.(check int) "computed jump" 1 (layout [ Isa.Instr.Jr (reg 5) ]);
  (* indirect call: trap + pad *)
  Alcotest.(check int) "indirect call" 2
    (layout [ Isa.Instr.Jalr (Isa.Reg.ra, reg 5) ]);
  (* chunk falling off its end gets a fall slot *)
  Alcotest.(check int) "fall-through slot" 2 (layout [ Isa.Instr.Nop ])

let test_layout_internal_branch () =
  (* a self-loop branch is internal: no island *)
  Alcotest.(check int) "self loop" 2
    (layout [ Isa.Instr.Br (Eq, reg 1, reg 2, 0) ])

(* ------------------------------------------------------------------ *)
(* Rewriter: emission *)

let translate ?(resident = fun _ -> None) instrs =
  let chunk =
    { Softcache.Chunker.vaddr = 0x1000; instrs = Array.of_list instrs }
  in
  let stubs = ref [] in
  let alloc make =
    let k = List.length !stubs in
    stubs := make k :: !stubs;
    k
  in
  let e =
    Softcache.Rewriter.translate chunk ~block_id:7 ~base:0x20000 ~resident
      ~alloc_stub:alloc
  in
  (e, List.rev !stubs)

let test_emit_verbatim_body () =
  let e, stubs =
    translate [ Isa.Instr.Alui (Add, reg 1, reg 1, 1); Isa.Instr.Halt ]
  in
  Alcotest.(check int) "2 words" 2 (Array.length e.words);
  Alcotest.(check int) "no stubs" 0 (List.length stubs);
  Alcotest.(check bool) "body verbatim" true
    (Isa.Encode.decode e.words.(0)
    = Some (Isa.Instr.Alui (Add, reg 1, reg 1, 1)));
  Alcotest.(check int) "no overhead beyond none" 0 e.overhead_words

let test_emit_unbound_jmp_is_trap () =
  let e, stubs = translate [ Isa.Instr.Jmp 0x3000 ] in
  (match Isa.Encode.decode e.words.(0) with
  | Some (Isa.Instr.Trap 0) -> ()
  | _ -> Alcotest.fail "expected trap in jmp slot");
  match stubs with
  | [ Softcache.Stub.Exit e ] ->
    Alcotest.(check int) "target" 0x3000 e.target;
    Alcotest.(check int) "site" 0x20000 e.site_paddr;
    Alcotest.(check bool) "kind" true (e.kind = Softcache.Stub.Patch_jmp)
  | _ -> Alcotest.fail "expected one exit stub"

let test_emit_bound_jmp_is_direct () =
  let resident v = if v = 0x3000 then Some (42, 0x21000) else None in
  let e, _ = translate ~resident [ Isa.Instr.Jmp 0x3000 ] in
  Alcotest.(check bool) "direct jmp" true
    (Isa.Encode.decode e.words.(0) = Some (Isa.Instr.Jmp 0x21000));
  match e.bound with
  | [ (42, 0x20000, _, _) ] -> ()
  | _ -> Alcotest.fail "expected bound record to block 42"

let test_emit_call_shape () =
  let e, stubs = translate [ Isa.Instr.Jal 0x3000 ] in
  Alcotest.(check int) "3 words" 3 (Array.length e.words);
  (* word 0: jal to the island (word 2) *)
  Alcotest.(check bool) "jal to island" true
    (Isa.Encode.decode e.words.(0) = Some (Isa.Instr.Jal (0x20000 + 8)));
  (* word 1: the landing pad, trapping until the return target exists *)
  (match Isa.Encode.decode e.words.(1) with
  | Some (Isa.Instr.Trap _) -> ()
  | _ -> Alcotest.fail "pad should trap");
  (* pad is registered for stack scrubbing with the return vaddr *)
  Alcotest.(check bool) "pad recorded" true
    (List.mem (0x20004, 0x1004) e.pads);
  (* two stubs: the call exit and the pad *)
  Alcotest.(check int) "stubs" 2 (List.length stubs)

let test_emit_branch_shape () =
  let e, _ = translate [ Isa.Instr.Br (Ne, reg 1, reg 2, 64) ] in
  (* [br -> island][fall slot][island trap] *)
  Alcotest.(check int) "3 words" 3 (Array.length e.words);
  (match Isa.Encode.decode e.words.(0) with
  | Some (Isa.Instr.Br (Ne, _, _, 2)) -> () (* island at +2 *)
  | i ->
    Alcotest.failf "branch aims at island, got %s"
      (match i with Some i -> Isa.Instr.to_string i | None -> "???"));
  (match Isa.Encode.decode e.words.(1) with
  | Some (Isa.Instr.Trap _) -> ()
  | _ -> Alcotest.fail "fall slot should trap");
  match Isa.Encode.decode e.words.(2) with
  | Some (Isa.Instr.Trap _) -> ()
  | _ -> Alcotest.fail "island should trap"

let test_emit_computed_jump () =
  let e, stubs = translate [ Isa.Instr.Jr (reg 9) ] in
  Alcotest.(check int) "1 word" 1 (Array.length e.words);
  match stubs with
  | [ Softcache.Stub.Computed { rs } ] ->
    Alcotest.(check bool) "register" true (Isa.Reg.equal rs (reg 9))
  | _ -> Alcotest.fail "expected computed stub" 

let test_emit_return_verbatim () =
  let e, stubs = translate [ Isa.Instr.Jr Isa.Reg.ra ] in
  Alcotest.(check bool) "jr ra verbatim" true
    (Isa.Encode.decode e.words.(0) = Some (Isa.Instr.Jr Isa.Reg.ra));
  Alcotest.(check int) "no stubs" 0 (List.length stubs)

let test_emit_resume_map () =
  let e, _ =
    translate [ Isa.Instr.Alui (Add, reg 1, reg 1, 1); Isa.Instr.Jal 0x3000 ]
  in
  (* [add][jal][pad][island] *)
  Alcotest.(check int) "body resumes at own vaddr" 0x1000 e.resume.(0);
  Alcotest.(check int) "jal resumes re-executing" 0x1004 e.resume.(1);
  Alcotest.(check int) "pad resumes at return point" 0x1008 e.resume.(2);
  Alcotest.(check int) "island resumes at target" 0x3000 e.resume.(3)

let test_emit_internal_jmp () =
  (* jmp back to the chunk's first instruction (proc-mode idiom) *)
  let chunk =
    {
      Softcache.Chunker.vaddr = 0x1000;
      instrs =
        [| Isa.Instr.Alui (Add, reg 1, reg 1, 1); Isa.Instr.Jmp 0x1000 |];
    }
  in
  let e =
    Softcache.Rewriter.translate chunk ~block_id:1 ~base:0x20000
      ~resident:(fun _ -> None)
      ~alloc_stub:(fun _ -> Alcotest.fail "no stubs for internal jmp")
  in
  Alcotest.(check bool) "internal jmp direct" true
    (Isa.Encode.decode e.words.(1) = Some (Isa.Instr.Jmp 0x20000))

(* Structural invariants over random chunks: the emission always
   matches the layout size, every word decodes, every stub site lies
   inside the block, and resume entries are plausible. *)
let gen_chunk_instr =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun k -> Isa.Instr.Alui (Add, Isa.Reg.r 1, Isa.Reg.r 2, k))
             (int_bound 100));
        (2, map (fun o -> Isa.Instr.Br (Eq, Isa.Reg.r 1, Isa.Reg.r 2, o - 8))
             (int_bound 16));
        (1, map (fun t -> Isa.Instr.Jmp (0x2000 + (4 * t))) (int_bound 64));
        (1, map (fun t -> Isa.Instr.Jal (0x2000 + (4 * t))) (int_bound 64));
        (1, return (Isa.Instr.Jr Isa.Reg.ra));
        (1, return (Isa.Instr.Jr (Isa.Reg.r 7)));
        (1, return (Isa.Instr.Jalr (Isa.Reg.ra, Isa.Reg.r 7)));
        (1, return Isa.Instr.Halt);
      ])

let test_rewriter_invariants =
  QCheck.Test.make ~count:300 ~name:"rewriter structural invariants"
    QCheck.(
      make
        ~print:(fun l ->
          String.concat "; " (List.map Isa.Instr.to_string l))
        Gen.(list_size (int_range 1 20) gen_chunk_instr))
    (fun instrs ->
      (* basic-block style: cut at the first terminator, keep at least
         one instruction *)
      let rec cut acc = function
        | [] -> List.rev acc
        | i :: rest ->
          if Isa.Instr.is_block_terminator i then List.rev (i :: acc)
          else cut (i :: acc) rest
      in
      let instrs = cut [] instrs in
      let chunk =
        { Softcache.Chunker.vaddr = 0x1000; instrs = Array.of_list instrs }
      in
      let expect = Softcache.Rewriter.layout_words chunk in
      let stubs = ref [] in
      let alloc make =
        let k = List.length !stubs in
        stubs := make k :: !stubs;
        k
      in
      let base = 0x20000 in
      let e =
        Softcache.Rewriter.translate chunk ~block_id:1 ~base
          ~resident:(fun v -> if v land 8 = 0 then Some (2, 0x30000) else None)
          ~alloc_stub:alloc
      in
      let total = Array.length e.words in
      let in_block a = a >= base && a < base + (4 * total) in
      total = expect
      && Array.for_all (fun w -> Isa.Encode.decode w <> None) e.words
      && Array.for_all (fun rv -> rv >= 0 && rv land 3 = 0) e.resume
      && List.for_all
           (fun s ->
             match (s : Softcache.Stub.t) with
             | Softcache.Stub.Exit x -> in_block x.site_paddr
             | Softcache.Stub.Icall x -> in_block x.pad_paddr
             | Softcache.Stub.Computed _ -> true
             | Softcache.Stub.Ret_stub _ | Softcache.Stub.Plt _ ->
               false (* never emitted here *))
           !stubs
      && List.for_all (fun (p, _) -> in_block p) e.pads
      && List.for_all (fun (tb, site, _, _) -> tb = 2 && in_block site) e.bound)

(* ------------------------------------------------------------------ *)
(* Tcache bookkeeping *)

let block ~id ~vaddr ~paddr ~words =
  {
    Softcache.Tcache.id;
    vaddr;
    paddr;
    words;
    orig_words = words;
    incoming = [];
    pads = [];
    resume = Array.make words vaddr;
    stubs = [];
  }

let test_tcache_register_lookup () =
  let tc = Softcache.Tcache.create ~base:0x20000 ~bytes:1024 in
  let b = block ~id:1 ~vaddr:0x1000 ~paddr:0x20000 ~words:4 in
  Softcache.Tcache.register tc b;
  Alcotest.(check bool) "found by vaddr" true
    (Softcache.Tcache.lookup tc 0x1000 <> None);
  Alcotest.(check bool) "found by id" true (Softcache.Tcache.is_alive tc 1);
  Softcache.Tcache.remove tc b;
  Alcotest.(check bool) "gone" true (Softcache.Tcache.lookup tc 0x1000 = None);
  Alcotest.(check bool) "id gone" false (Softcache.Tcache.is_alive tc 1)

let test_tcache_fifo_wrap_evicts () =
  let tc = Softcache.Tcache.create ~base:0x20000 ~bytes:64 in
  (* fill: 4 blocks x 4 words = 64 bytes *)
  for i = 0 to 3 do
    match Softcache.Tcache.alloc_fifo tc ~words:4 with
    | Ok (p, []) ->
      Softcache.Tcache.register tc
        (block ~id:i ~vaddr:(0x1000 + (16 * i)) ~paddr:p ~words:4)
    | _ -> Alcotest.fail "unexpected eviction while filling"
  done;
  (* the next allocation wraps and evicts the first block *)
  match Softcache.Tcache.alloc_fifo tc ~words:4 with
  | Ok (p, [ victim ]) ->
    Alcotest.(check int) "wraps to base" 0x20000 p;
    Alcotest.(check int) "evicts oldest" 0 victim.id
  | _ -> Alcotest.fail "expected one eviction"

(* Regression: pin crowding is [`Full], not [`Too_large] — a chunk
   that would fit an empty region but cannot be placed because pinned
   blocks obstruct every candidate position must not be reported as
   exceeding capacity. *)
let test_tcache_pin_crowding_full () =
  let tc = Softcache.Tcache.create ~base:0x20000 ~bytes:64 in
  for i = 0 to 3 do
    match Softcache.Tcache.alloc_fifo tc ~words:4 with
    | Ok (p, []) ->
      let b = block ~id:i ~vaddr:(0x1000 + (16 * i)) ~paddr:p ~words:4 in
      Softcache.Tcache.register tc b;
      Softcache.Tcache.pin tc b
    | _ -> Alcotest.fail "unexpected eviction while filling"
  done;
  (match Softcache.Tcache.alloc_fifo tc ~words:4 with
  | Error `Full -> ()
  | Error `Too_large ->
    Alcotest.fail "pin crowding misreported as Too_large"
  | Ok _ -> Alcotest.fail "allocated over pinned blocks");
  (* capacity overflow is still distinguished *)
  match Softcache.Tcache.alloc_fifo tc ~words:100 with
  | Error `Too_large -> ()
  | _ -> Alcotest.fail "expected Too_large for oversize chunk"

(* and at controller level: filling the tcache with pins must surface
   as Tcache_too_small, never Chunk_too_large *)
let test_controller_pin_crowding () =
  let b = Isa.Builder.create "pins" in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  let labels = List.init 32 (fun _ -> Isa.Builder.new_label b) in
  List.iteri
    (fun i l ->
      Isa.Builder.func b (Printf.sprintf "f%d" i) l (fun () ->
          for k = 1 to 6 do
            Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 2, reg 2, k))
          done;
          Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra)))
    labels;
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.ins b (Isa.Instr.Out (reg 2));
      Isa.Builder.ins b Isa.Instr.Halt);
  let img = Isa.Builder.build b in
  let cfg =
    Softcache.Config.make ~tcache_bytes:512
      ~chunking:Softcache.Config.Procedure ()
  in
  let ctrl = Softcache.Controller.create cfg img in
  Softcache.Controller.start ctrl;
  let addrs =
    List.filter_map
      (fun (s : Isa.Image.symbol) ->
        if String.length s.sym_name > 0 && s.sym_name.[0] = 'f' then
          Some s.sym_addr
        else None)
      img.symbols
  in
  let rec go = function
    | [] -> Alcotest.fail "32 pins never filled a 512-byte tcache"
    | a :: rest -> (
      match Softcache.Controller.pin ctrl a with
      | () -> go rest
      | exception Softcache.Controller.Tcache_too_small -> ()
      | exception Softcache.Controller.Chunk_too_large _ ->
        Alcotest.fail "pin crowding misreported as Chunk_too_large")
  in
  go addrs

let test_tcache_too_large () =
  let tc = Softcache.Tcache.create ~base:0x20000 ~bytes:64 in
  (match Softcache.Tcache.alloc_fifo tc ~words:100 with
  | Error `Too_large -> ()
  | _ -> Alcotest.fail "expected Too_large");
  match Softcache.Tcache.alloc_append tc ~words:100 with
  | Error `Too_large -> ()
  | _ -> Alcotest.fail "expected Too_large (append)"

let test_tcache_append_full () =
  let tc = Softcache.Tcache.create ~base:0x20000 ~bytes:64 in
  (match Softcache.Tcache.alloc_append tc ~words:12 with
  | Ok _ -> ()
  | _ -> Alcotest.fail "first append fits");
  match Softcache.Tcache.alloc_append tc ~words:8 with
  | Error `Full -> ()
  | _ -> Alcotest.fail "expected Full"

let test_tcache_persistent_shrinks_space () =
  let tc = Softcache.Tcache.create ~base:0x20000 ~bytes:64 in
  (match Softcache.Tcache.alloc_persistent tc ~words:2 with
  | Ok (p, []) ->
    Alcotest.(check int) "from the top" (0x20000 + 64 - 8) p;
    Alcotest.(check int) "persist_base moved" (0x20000 + 56)
      (Softcache.Tcache.persist_base tc)
  | _ -> Alcotest.fail "persistent alloc failed");
  (* a 16-word block no longer fits in the remaining 56 bytes *)
  match Softcache.Tcache.alloc_fifo tc ~words:16 with
  | Error `Too_large -> ()
  | _ -> Alcotest.fail "expected Too_large after persistent shrink"

let test_tcache_persistent_evicts_overlap () =
  let tc = Softcache.Tcache.create ~base:0x20000 ~bytes:64 in
  (match Softcache.Tcache.alloc_fifo tc ~words:16 with
  | Ok (p, []) ->
    Softcache.Tcache.register tc (block ~id:9 ~vaddr:0x1000 ~paddr:p ~words:16)
  | _ -> Alcotest.fail "fill failed");
  match Softcache.Tcache.alloc_persistent tc ~words:1 with
  | Ok (_, [ victim ]) -> Alcotest.(check int) "overlap evicted" 9 victim.id
  | _ -> Alcotest.fail "expected the resident block to be evicted"

let test_tcache_reset_keeps_persistent () =
  let tc = Softcache.Tcache.create ~base:0x20000 ~bytes:64 in
  ignore (Softcache.Tcache.alloc_persistent tc ~words:2);
  (match Softcache.Tcache.alloc_fifo tc ~words:4 with
  | Ok (p, _) ->
    Softcache.Tcache.register tc (block ~id:3 ~vaddr:0x1000 ~paddr:p ~words:4)
  | _ -> Alcotest.fail "alloc failed");
  let former = Softcache.Tcache.reset tc in
  Alcotest.(check int) "one former resident" 1 (List.length former);
  Alcotest.(check int) "persistent area survives flush" (0x20000 + 56)
    (Softcache.Tcache.persist_base tc);
  Alcotest.(check int) "empty" 0 (Softcache.Tcache.resident_blocks tc)

let test_tcache_occupancy () =
  let tc = Softcache.Tcache.create ~base:0x20000 ~bytes:1024 in
  ignore (Softcache.Tcache.alloc_persistent tc ~words:1);
  (match Softcache.Tcache.alloc_fifo tc ~words:10 with
  | Ok (p, _) ->
    Softcache.Tcache.register tc (block ~id:1 ~vaddr:0x1000 ~paddr:p ~words:10)
  | _ -> Alcotest.fail "alloc failed");
  Alcotest.(check int) "blocks + stub words" ((10 * 4) + 4)
    (Softcache.Tcache.occupied_bytes tc);
  Alcotest.(check int) "map entries" 1 (Softcache.Tcache.map_entries tc)

let () =
  Alcotest.run "core-units"
    [
      ( "chunker",
        [
          Alcotest.test_case "basic block extent" `Quick test_chunk_basic_block;
          Alcotest.test_case "procedure extent" `Quick test_chunk_procedure;
          Alcotest.test_case "bad addresses" `Quick test_chunk_bad_addresses;
          Alcotest.test_case "rejects traps" `Quick test_chunk_rejects_trap;
        ] );
      ( "rewriter-layout",
        [
          Alcotest.test_case "sizes per terminator" `Quick test_layout_sizes;
          Alcotest.test_case "internal branch" `Quick
            test_layout_internal_branch;
        ] );
      ( "rewriter-emission",
        [
          QCheck_alcotest.to_alcotest test_rewriter_invariants;
          Alcotest.test_case "verbatim body" `Quick test_emit_verbatim_body;
          Alcotest.test_case "unbound jmp traps" `Quick
            test_emit_unbound_jmp_is_trap;
          Alcotest.test_case "bound jmp direct" `Quick
            test_emit_bound_jmp_is_direct;
          Alcotest.test_case "call shape (jal+pad+island)" `Quick
            test_emit_call_shape;
          Alcotest.test_case "branch shape" `Quick test_emit_branch_shape;
          Alcotest.test_case "computed jump" `Quick test_emit_computed_jump;
          Alcotest.test_case "return verbatim" `Quick
            test_emit_return_verbatim;
          Alcotest.test_case "resume map" `Quick test_emit_resume_map;
          Alcotest.test_case "internal jmp" `Quick test_emit_internal_jmp;
        ] );
      ( "tcache",
        [
          Alcotest.test_case "register/lookup" `Quick
            test_tcache_register_lookup;
          Alcotest.test_case "fifo wrap evicts" `Quick
            test_tcache_fifo_wrap_evicts;
          Alcotest.test_case "too large" `Quick test_tcache_too_large;
          Alcotest.test_case "pin crowding is Full" `Quick
            test_tcache_pin_crowding_full;
          Alcotest.test_case "pin crowding raises Tcache_too_small" `Quick
            test_controller_pin_crowding;
          Alcotest.test_case "append full" `Quick test_tcache_append_full;
          Alcotest.test_case "persistent shrinks space" `Quick
            test_tcache_persistent_shrinks_space;
          Alcotest.test_case "persistent evicts overlap" `Quick
            test_tcache_persistent_evicts_overlap;
          Alcotest.test_case "reset keeps persistent" `Quick
            test_tcache_reset_keeps_persistent;
          Alcotest.test_case "occupancy accounting" `Quick
            test_tcache_occupancy;
        ] );
    ]
