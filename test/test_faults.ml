(* Fault-injection tests: the CRC32 checksum, the deterministic fault
   schedule, and the headline robustness property — under ANY fault
   schedule the SoftCache either produces exactly the native output or
   stops cleanly with Chunk_unavailable, never silently corrupts. *)

let reg = Isa.Reg.r

(* Recursive Fibonacci (deep stack, cross-chunk calls) — the program
   that exercises the most cache machinery per instruction. *)
let prog_fib n =
  let b = Isa.Builder.create "fib" in
  let fib = Isa.Builder.new_label b in
  let base = Isa.Builder.new_label b in
  let main = Isa.Builder.new_label b in
  Isa.Builder.entry b main;
  Isa.Builder.func b "fib" fib (fun () ->
      Isa.Builder.li b (reg 3) 2;
      Isa.Builder.br b Lt (reg 1) (reg 3) base;
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, -12));
      Isa.Builder.ins b (Isa.Instr.St (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.St (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -1));
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.St (reg 2, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Ld (reg 1, Isa.Reg.sp, 4));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, reg 1, reg 1, -2));
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.Ld (reg 3, Isa.Reg.sp, 8));
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 2, reg 3));
      Isa.Builder.ins b (Isa.Instr.Ld (Isa.Reg.ra, Isa.Reg.sp, 0));
      Isa.Builder.ins b (Isa.Instr.Alui (Add, Isa.Reg.sp, Isa.Reg.sp, 12));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra);
      Isa.Builder.here b base;
      Isa.Builder.ins b (Isa.Instr.Alu (Add, reg 2, reg 1, Isa.Reg.zero));
      Isa.Builder.ins b (Isa.Instr.Jr Isa.Reg.ra));
  Isa.Builder.func b "main" main (fun () ->
      Isa.Builder.li b (reg 1) n;
      Isa.Builder.jal b fib;
      Isa.Builder.ins b (Isa.Instr.Out (reg 2));
      Isa.Builder.ins b Isa.Instr.Halt);
  Isa.Builder.build b

(* ------------------------------------------------------------------ *)
(* CRC32 *)

let test_crc32_vector () =
  (* the IEEE 802.3 check value *)
  Alcotest.(check int)
    "crc32(\"123456789\")" 0xCBF43926
    (Softcache.Crc32.string "123456789");
  Alcotest.(check int) "crc32(\"\")" 0 (Softcache.Crc32.string "")

let test_crc32_bit_flip =
  QCheck.Test.make ~count:200 ~name:"crc32 detects any single bit flip"
    QCheck.(
      pair (string_of_size (QCheck.Gen.int_range 1 64)) (pair small_nat small_nat))
    (fun (s, (byte, bit)) ->
      let b = Bytes.of_string s in
      let i = byte mod Bytes.length b in
      let mask = 1 lsl (bit mod 8) in
      let orig = Softcache.Crc32.bytes b in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
      Softcache.Crc32.bytes b <> orig)

let test_crc32_range () =
  let b = Bytes.of_string "xx123456789yy" in
  Alcotest.(check int)
    "pos/len window" 0xCBF43926
    (Softcache.Crc32.bytes ~pos:2 ~len:9 b)

(* ------------------------------------------------------------------ *)
(* Fault schedule determinism *)

let drain net n =
  let payload = Bytes.of_string "deterministic-payload!" in
  List.init n (fun _ ->
      match Netmodel.transfer net ~payload with
      | Ok (cycles, bytes) -> (true, cycles, Bytes.to_string bytes)
      | Error (`Dropped cycles) -> (false, cycles, ""))

let test_schedule_deterministic () =
  let faults =
    Netmodel.Faults.make ~seed:99 ~drop:0.2 ~corrupt:0.2 ~duplicate:0.2
      ~delay_spike:0.2 ()
  in
  let a = drain (Netmodel.local ~faults ()) 200 in
  let b = drain (Netmodel.local ~faults ()) 200 in
  Alcotest.(check bool) "same seed, same outcomes" true (a = b);
  let c = drain (Netmodel.local ~faults:(Netmodel.Faults.make ~seed:100
                                           ~drop:0.2 ~corrupt:0.2
                                           ~duplicate:0.2 ~delay_spike:0.2 ())
                   ()) 200 in
  Alcotest.(check bool) "different seed, different outcomes" false (a = c)

(* Regression: a dropped frame's spurious retransmission is lost with
   it. With drop=1 and duplicate=1 every frame rolls both faults, and
   only the drop may be counted — no duplicate counter bumps, no ghost
   wire traffic for the retransmission. *)
let test_drop_duplicate_combined () =
  let len = 24 in
  let payload = Bytes.create len in
  let n = 50 in
  let net =
    Netmodel.local
      ~faults:(Netmodel.Faults.make ~seed:7 ~drop:1.0 ~duplicate:1.0 ())
      ()
  in
  for _ = 1 to n do
    match Netmodel.transfer net ~payload with
    | Ok _ -> Alcotest.fail "drop=1 delivered a frame"
    | Error (`Dropped _) -> ()
  done;
  Alcotest.(check int) "every frame dropped" n (Netmodel.drops net);
  Alcotest.(check int) "no duplicate survives a drop" 0
    (Netmodel.duplicates net);
  Alcotest.(check int) "one message per send" n (Netmodel.messages net);
  Alcotest.(check int) "no ghost payload" (n * len)
    (Netmodel.payload_bytes net);
  (* control: without drops the same duplicate schedule does count *)
  let net2 =
    Netmodel.local
      ~faults:(Netmodel.Faults.make ~seed:7 ~duplicate:1.0 ())
      ()
  in
  for _ = 1 to n do
    match Netmodel.transfer net2 ~payload with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "duplicate-only schedule dropped a frame"
  done;
  Alcotest.(check int) "delivered duplicates counted" n
    (Netmodel.duplicates net2);
  Alcotest.(check int) "each duplicate is an extra message" (2 * n)
    (Netmodel.messages net2)

(* Regression: Rng.int must not carry the modulo bias of a plain
   [rem]. With bound = 3*2^60, the biased scheme maps 3/4 of the raw
   63-bit space onto the bottom two thirds of the range; rejection
   sampling puts exactly 2/3 there. *)
let test_rng_no_modulo_bias () =
  let bound = 3 * (1 lsl 60) in
  let cut = 2 * (1 lsl 60) in
  let rng = Netmodel.Rng.create 2026 in
  let n = 3000 in
  let below = ref 0 in
  for _ = 1 to n do
    let v = Netmodel.Rng.int rng bound in
    Alcotest.(check bool) "in range" true (v >= 0 && v < bound);
    if v < cut then incr below
  done;
  let frac = float_of_int !below /. float_of_int n in
  (* unbiased: 2/3 (sigma ~ 0.009); the old modulo scheme gives 3/4 *)
  Alcotest.(check bool)
    (Printf.sprintf "fraction below 2/3 cut = %.3f, want ~0.667" frac)
    true
    (frac > 0.63 && frac < 0.70)

(* qcheck: the whole fault schedule and every counter is a pure
   function of the seed *)
let test_schedule_deterministic_q =
  QCheck.Test.make ~count:50 ~name:"per-seed schedule + counters deterministic"
    QCheck.(pair (int_range 0 10_000) (int_bound 255))
    (fun (seed, knobs) ->
      let mk () =
        Netmodel.local
          ~faults:
            (Netmodel.Faults.make ~seed
               ~drop:(float_of_int (knobs land 3) /. 4.0)
               ~corrupt:(float_of_int ((knobs lsr 2) land 3) /. 4.0)
               ~duplicate:(float_of_int ((knobs lsr 4) land 3) /. 4.0)
               ~delay_spike:(float_of_int ((knobs lsr 6) land 3) /. 4.0)
               ())
          ()
      in
      let n1 = mk () and n2 = mk () in
      let a = drain n1 100 and b = drain n2 100 in
      a = b
      && Netmodel.messages n1 = Netmodel.messages n2
      && Netmodel.payload_bytes n1 = Netmodel.payload_bytes n2
      && Netmodel.drops n1 = Netmodel.drops n2
      && Netmodel.corruptions n1 = Netmodel.corruptions n2
      && Netmodel.duplicates n1 = Netmodel.duplicates n2
      && Netmodel.delay_spikes n1 = Netmodel.delay_spikes n2)

(* qcheck: message/payload/drop/duplicate counters stay conserved under
   any combined-fault schedule — duplicates only on delivered frames,
   exactly one payload accounted per message *)
let test_counter_conservation_q =
  QCheck.Test.make ~count:50
    ~name:"counter conservation under combined faults"
    QCheck.(pair (int_range 0 10_000) (int_bound 255))
    (fun (seed, knobs) ->
      let len = 16 in
      let payload = Bytes.create len in
      let net =
        Netmodel.local
          ~faults:
            (Netmodel.Faults.make ~seed
               ~drop:(float_of_int (knobs land 3) /. 4.0)
               ~corrupt:(float_of_int ((knobs lsr 2) land 3) /. 4.0)
               ~duplicate:(float_of_int ((knobs lsr 4) land 3) /. 4.0)
               ~delay_spike:(float_of_int ((knobs lsr 6) land 3) /. 4.0)
               ())
          ()
      in
      let n = 200 in
      let delivered = ref 0 in
      for _ = 1 to n do
        match Netmodel.transfer net ~payload with
        | Ok _ -> incr delivered
        | Error (`Dropped _) -> ()
      done;
      Netmodel.drops net + !delivered = n
      && Netmodel.messages net = n + Netmodel.duplicates net
      && Netmodel.payload_bytes net = len * Netmodel.messages net
      && Netmodel.duplicates net <= !delivered
      && Netmodel.corruptions net <= !delivered)

let test_fault_free_transfer_matches_request () =
  (* without faults, [transfer] must charge exactly what [request]
     does and account messages identically *)
  let n1 = Netmodel.ethernet_10mbps () in
  let n2 = Netmodel.ethernet_10mbps () in
  let payload = Bytes.create 120 in
  let c1 = Netmodel.request n1 ~payload_bytes:120 in
  match Netmodel.transfer n2 ~payload with
  | Ok (c2, bytes) ->
    Alcotest.(check int) "cost" c1 c2;
    Alcotest.(check bytes) "payload intact" payload bytes;
    Alcotest.(check int) "messages" (Netmodel.messages n1)
      (Netmodel.messages n2);
    Alcotest.(check int) "payload bytes" (Netmodel.payload_bytes n1)
      (Netmodel.payload_bytes n2)
  | Error _ -> Alcotest.fail "fault-free transfer dropped"

(* ------------------------------------------------------------------ *)
(* End-to-end recovery *)

let run_faulted ~seed ~drop ~corrupt ~duplicate ~delay_spike ~tcache_bytes
    ~chunking ~eviction img =
  let faults =
    Netmodel.Faults.make ~seed ~drop ~corrupt ~duplicate ~delay_spike ()
  in
  let cfg =
    Softcache.Config.make ~tcache_bytes ~chunking ~eviction
      ~net:(Netmodel.local ~faults ()) ()
  in
  Softcache.Runner.cached_robust cfg img

(* The robustness property: any fault schedule, any chunking, any
   eviction policy, any (viable) tcache size — the run either matches
   native behaviour exactly or stops cleanly, and the retry ceiling is
   respected. *)
let test_random_fault_robustness =
  let print (seed, sz, knobs, (ch, ev)) =
    Printf.sprintf "seed=%d size=%d faults=%d chunking=%d eviction=%d" seed
      sz knobs ch ev
  in
  QCheck.Test.make ~count:60
    ~name:"faulted runs: native-equivalent or cleanly unavailable"
    QCheck.(
      make ~print
        Gen.(
          quad (int_range 1 10_000) (int_range 700 4096) (int_bound 80)
            (pair (int_bound 1) (int_bound 1))))
    (fun (seed, size, knobs, (ch, ev)) ->
      let img = prog_fib 11 in
      let native = Softcache.Runner.native img in
      (* derive three fault probabilities from one small int so the
         generator shrinks nicely *)
      let drop = float_of_int (knobs mod 5) /. 20.0 in
      let corrupt = float_of_int (knobs / 5 mod 4) /. 20.0 in
      let duplicate = float_of_int (knobs / 20 mod 4) /. 20.0 in
      let chunking =
        if ch = 0 then Softcache.Config.Basic_block
        else Softcache.Config.Procedure
      in
      let eviction =
        if ev = 0 then Softcache.Config.Fifo else Softcache.Config.Flush_all
      in
      match
        run_faulted ~seed ~drop ~corrupt ~duplicate ~delay_spike:0.1
          ~tcache_bytes:size ~chunking ~eviction img
      with
      | cached, ctrl -> (
        if ctrl.stats.max_chunk_retries > ctrl.cfg.max_retries then false
        else
          match cached.status with
          | Softcache.Runner.Finished Machine.Cpu.Halted ->
            cached.outputs = native.outputs
          | Softcache.Runner.Finished Machine.Cpu.Out_of_fuel -> false
          | Softcache.Runner.Unavailable { attempts; _ } ->
            attempts = ctrl.cfg.max_retries + 1)
      | exception Softcache.Controller.Chunk_too_large _ ->
        QCheck.assume_fail ())

let test_hopeless_link_unavailable () =
  (* a link that drops everything must give up after exactly
     max_retries re-requests, with the backoff charged *)
  let img = prog_fib 8 in
  let cached, ctrl =
    run_faulted ~seed:5 ~drop:1.0 ~corrupt:0.0 ~duplicate:0.0
      ~delay_spike:0.0 ~tcache_bytes:4096
      ~chunking:Softcache.Config.Basic_block ~eviction:Softcache.Config.Fifo
      img
  in
  (match cached.status with
  | Softcache.Runner.Unavailable { attempts; _ } ->
    Alcotest.(check int) "attempts" (ctrl.cfg.max_retries + 1) attempts
  | _ -> Alcotest.fail "expected Unavailable");
  Alcotest.(check int) "timeouts counted" (ctrl.cfg.max_retries + 1)
    ctrl.stats.net_timeouts;
  let backoff =
    (* sum of retry_backoff_cycles * 2^(n-1) for n = 1..max_retries *)
    ctrl.cfg.retry_backoff_cycles * ((1 lsl ctrl.cfg.max_retries) - 1)
  in
  let floor =
    backoff + ((ctrl.cfg.max_retries + 1) * ctrl.cfg.timeout_cycles)
  in
  Alcotest.(check bool)
    (Printf.sprintf "charged at least %d backoff+timeout cycles" floor)
    true (cached.cycles >= floor);
  Alcotest.(check int) "no translation completed" 0 ctrl.stats.translations

let test_corrupt_link_crc_rejects () =
  (* every frame corrupted: CRC must reject each one, never letting a
     bad chunk into the tcache *)
  let img = prog_fib 8 in
  let cached, ctrl =
    run_faulted ~seed:5 ~drop:0.0 ~corrupt:1.0 ~duplicate:0.0
      ~delay_spike:0.0 ~tcache_bytes:4096
      ~chunking:Softcache.Config.Basic_block ~eviction:Softcache.Config.Fifo
      img
  in
  (match cached.status with
  | Softcache.Runner.Unavailable _ -> ()
  | _ -> Alcotest.fail "expected Unavailable");
  Alcotest.(check int) "every attempt CRC-rejected"
    (ctrl.cfg.max_retries + 1) ctrl.stats.crc_failures;
  Alcotest.(check int) "nothing recovered" 0 ctrl.stats.recoveries;
  Alcotest.(check int) "no translation completed" 0 ctrl.stats.translations

let test_recovery_accounting () =
  (* a moderately lossy link: the run completes, outputs match, and
     every recovery is accounted *)
  let img = prog_fib 12 in
  let native = Softcache.Runner.native img in
  let cached, ctrl =
    run_faulted ~seed:11 ~drop:0.25 ~corrupt:0.15 ~duplicate:0.1
      ~delay_spike:0.1 ~tcache_bytes:1024
      ~chunking:Softcache.Config.Basic_block ~eviction:Softcache.Config.Fifo
      img
  in
  (match cached.status with
  | Softcache.Runner.Finished Machine.Cpu.Halted -> ()
  | s ->
    Alcotest.failf "expected clean finish, got %a" Softcache.Runner.pp_status
      s);
  Alcotest.(check (list int)) "outputs" native.outputs cached.outputs;
  Alcotest.(check bool) "faults actually fired" true
    (ctrl.stats.net_retries > 0);
  Alcotest.(check bool) "recoveries <= retries" true
    (ctrl.stats.recoveries <= ctrl.stats.net_retries);
  Alcotest.(check bool) "every drop timed out" true
    (Netmodel.drops ctrl.cfg.net = ctrl.stats.net_timeouts);
  Alcotest.(check int) "nothing permanently lost" 0
    ctrl.stats.chunk_failures

let test_retry_budget_config () =
  (* a larger retry budget turns an unavailable run into a finished
     one on a bad-but-not-hopeless link *)
  let img = prog_fib 8 in
  let faults = Netmodel.Faults.make ~seed:3 ~drop:0.7 () in
  let run max_retries =
    let cfg =
      Softcache.Config.make ~tcache_bytes:4096 ~max_retries
        ~net:(Netmodel.local ~faults ()) ()
    in
    Softcache.Runner.cached_robust cfg img
  in
  let small, _ = run 1 in
  let big, _ = run 30 in
  (match small.status with
  | Softcache.Runner.Unavailable _ -> ()
  | _ -> Alcotest.fail "expected tiny budget to fail");
  match big.status with
  | Softcache.Runner.Finished Machine.Cpu.Halted -> ()
  | s ->
    Alcotest.failf "expected big budget to finish, got %a"
      Softcache.Runner.pp_status s

let () =
  Alcotest.run "faults"
    [
      ( "crc32",
        [
          Alcotest.test_case "known vector" `Quick test_crc32_vector;
          Alcotest.test_case "window" `Quick test_crc32_range;
          QCheck_alcotest.to_alcotest test_crc32_bit_flip;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "deterministic in seed" `Quick
            test_schedule_deterministic;
          Alcotest.test_case "fault-free transfer = request" `Quick
            test_fault_free_transfer_matches_request;
          Alcotest.test_case "dropped frame swallows its duplicate" `Quick
            test_drop_duplicate_combined;
          Alcotest.test_case "Rng.int is bias-free" `Quick
            test_rng_no_modulo_bias;
          QCheck_alcotest.to_alcotest test_schedule_deterministic_q;
          QCheck_alcotest.to_alcotest test_counter_conservation_q;
        ] );
      ( "recovery",
        [
          QCheck_alcotest.to_alcotest test_random_fault_robustness;
          Alcotest.test_case "hopeless link gives up cleanly" `Quick
            test_hopeless_link_unavailable;
          Alcotest.test_case "corrupt link CRC-rejected" `Quick
            test_corrupt_link_crc_rejects;
          Alcotest.test_case "recovery accounting" `Quick
            test_recovery_accounting;
          Alcotest.test_case "retry budget is a config knob" `Quick
            test_retry_budget_config;
        ] );
    ]
