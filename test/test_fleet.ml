(* Fleet-service tests: the multi-client MC simulation (determinism,
   1-client lockstep identity, dedup effectiveness, invariant audit),
   the [Report.percentile] helper the fleet stall metrics ride on, the
   piggyback transport primitive, the transfer/transfer_batch fault
   equivalence pin, and the superblock working-set-knee regression. *)

(* ------------------------------------------------------------------ *)
(* Report.percentile — exact nearest-rank semantics *)

let pct = Report.percentile

let test_percentile_nearest_rank () =
  (* no interpolation: p50 of [1;2;3;4] is element ceil(0.5*4) = 2 *)
  Alcotest.(check (float 0.0)) "p50 even n" 2.0 (pct 50.0 [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check (float 0.0)) "p50 odd n" 2.0 (pct 50.0 [ 3.; 1.; 2. ]);
  Alcotest.(check (float 0.0)) "unsorted input" 2.0 (pct 50.0 [ 4.; 2.; 1.; 3. ])

let test_percentile_extremes () =
  let l = [ 7.; -2.; 99.; 4. ] in
  (* rank is clamped to >= 1, so p0 is the minimum *)
  Alcotest.(check (float 0.0)) "p0 = min" (-2.0) (pct 0.0 l);
  Alcotest.(check (float 0.0)) "p100 = max" 99.0 (pct 100.0 l);
  Alcotest.(check (float 0.0)) "singleton p1" 5.0 (pct 1.0 [ 5.0 ]);
  Alcotest.(check (float 0.0)) "singleton p99" 5.0 (pct 99.0 [ 5.0 ])

let test_percentile_known_distribution () =
  let l = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.0)) "p99 of 1..100" 99.0 (pct 99.0 l);
  Alcotest.(check (float 0.0)) "p50 of 1..100" 50.0 (pct 50.0 l);
  let l101 = List.init 101 (fun i -> float_of_int (i + 1)) in
  (* ceil(0.99 * 101) = 100 *)
  Alcotest.(check (float 0.0)) "p99 of 1..101" 100.0 (pct 99.0 l101);
  (* ties: sorted [1;5;5], rank ceil(0.5*3) = 2 *)
  Alcotest.(check (float 0.0)) "ties" 5.0 (pct 50.0 [ 5.; 5.; 1. ])

let test_percentile_invalid () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Report.percentile: empty sample list") (fun () ->
      ignore (pct 50.0 []));
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Report.percentile: 101 not in [0,100]") (fun () ->
      ignore (pct 101.0 [ 1.0 ]))

(* ------------------------------------------------------------------ *)
(* transfer vs single-segment transfer_batch: the combined drop x
   duplicate fault roll must be identical on both paths (both reduce
   to one transfer_frame call) — result, received bytes, and every
   counter, under any fault mix. Pins the batch-fault audit finding:
   there is exactly one roll per frame, not one per segment. *)

let mk_faulty_pair seed knobs =
  let faults () =
    Netmodel.Faults.make ~seed
      ~drop:(float_of_int (knobs land 3) /. 4.0)
      ~corrupt:(float_of_int ((knobs lsr 2) land 3) /. 4.0)
      ~duplicate:(float_of_int ((knobs lsr 4) land 3) /. 4.0)
      ~delay_spike:(float_of_int ((knobs lsr 6) land 3) /. 4.0)
      ()
  in
  (Netmodel.local ~faults:(faults ()) (), Netmodel.local ~faults:(faults ()) ())

let counters n =
  ( Netmodel.messages n,
    Netmodel.payload_bytes n,
    Netmodel.total_bytes n,
    Netmodel.drops n,
    Netmodel.corruptions n,
    Netmodel.duplicates n,
    Netmodel.delay_spikes n )

let test_transfer_batch_single_equiv_q =
  QCheck.Test.make ~count:60
    ~name:"transfer = 1-segment transfer_batch under combined faults"
    QCheck.(pair (int_range 0 10_000) (int_bound 255))
    (fun (seed, knobs) ->
      let n1, n2 = mk_faulty_pair seed knobs in
      let ok = ref true in
      for i = 1 to 150 do
        let payload =
          Bytes.init 24 (fun j -> Char.chr ((j + (i * 31) + seed) land 0xff))
        in
        let a = Netmodel.transfer n1 ~payload:(Bytes.copy payload) in
        let b = Netmodel.transfer_batch n2 ~payloads:[ Bytes.copy payload ] in
        (match (a, b) with
        | Ok (c1, r1), Ok (c2, [ r2 ]) ->
          if c1 <> c2 || not (Bytes.equal r1 r2) then ok := false
        | Error (`Dropped c1), Error (`Dropped c2) ->
          if c1 <> c2 then ok := false
        | _ -> ok := false)
      done;
      !ok && counters n1 = counters n2)

(* ------------------------------------------------------------------ *)
(* transfer_piggyback: riders charge marginal wire time only and
   account no message *)

let test_piggyback_marginal_cost () =
  let net =
    Netmodel.create ~latency_cycles:50_000 ~cycles_per_byte:100
      ~overhead_bytes:40 ()
  in
  (* occupy the link with a host frame first *)
  (match Netmodel.transfer net ~payload:(Bytes.create 32) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "fault-free transfer dropped");
  let m0 = Netmodel.messages net in
  let p0 = Netmodel.payload_bytes net in
  let w0 = Netmodel.total_bytes net in
  let payload = Bytes.init 24 (fun i -> Char.chr (i land 0xff)) in
  let cost, segs = Netmodel.transfer_piggyback net ~payloads:[ payload ] in
  (* marginal per-byte time only: no latency, no per-message overhead *)
  Alcotest.(check int) "cost = cycles_per_byte * len" (100 * 24) cost;
  Alcotest.(check int) "no new message" m0 (Netmodel.messages net);
  Alcotest.(check int) "payload accounted" (p0 + 24)
    (Netmodel.payload_bytes net);
  Alcotest.(check int) "no overhead bytes" (w0 + 24)
    (Netmodel.total_bytes net);
  match segs with
  | [ r ] -> Alcotest.(check bytes) "fault-free rider intact" payload r
  | _ -> Alcotest.fail "expected one rider segment"

let test_piggyback_deterministic () =
  let mk () =
    Netmodel.local
      ~faults:(Netmodel.Faults.make ~seed:42 ~corrupt:0.5 ())
      ()
  in
  let n1 = mk () and n2 = mk () in
  let drive n =
    List.init 20 (fun i ->
        let payloads = [ Bytes.make 16 (Char.chr (i land 0xff)) ] in
        Netmodel.transfer_piggyback n ~payloads)
  in
  Alcotest.(check bool) "same seed, same riders" true (drive n1 = drive n2);
  Alcotest.(check int) "same corruption count" (Netmodel.corruptions n1)
    (Netmodel.corruptions n2)

(* ------------------------------------------------------------------ *)
(* Clockheap: the Fifo scheduler's O(log N) pick structure. The pick
   must be indistinguishable from the old linear rescan — strictly
   smaller clock wins, ties to the first-visited (lowest) id — so the
   fleet's deterministic bench rows cannot move. *)

let test_clockheap_order () =
  let h = Fleet.Clockheap.create ~capacity:2 () in
  Alcotest.(check bool) "fresh heap empty" true (Fleet.Clockheap.is_empty h);
  Alcotest.(check (option (pair int int))) "pop on empty" None
    (Fleet.Clockheap.pop h);
  List.iter
    (fun (c, i) -> Fleet.Clockheap.push h ~clock:c ~id:i)
    [ (5, 2); (3, 7); (5, 1); (3, 4); (9, 0); (3, 9) ];
  Alcotest.(check int) "length counts pushes" 6 (Fleet.Clockheap.length h);
  let rec drain acc =
    match Fleet.Clockheap.pop h with
    | Some k -> drain (k :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list (pair int int)))
    "lexicographic (clock, id) order"
    [ (3, 4); (3, 7); (3, 9); (5, 1); (5, 2); (9, 0) ]
    (drain []);
  Alcotest.(check bool) "drained" true (Fleet.Clockheap.is_empty h)

let test_clockheap_grows () =
  (* past the initial capacity hint the array doubles transparently *)
  let h = Fleet.Clockheap.create ~capacity:2 () in
  for i = 99 downto 0 do
    Fleet.Clockheap.push h ~clock:(i * 7 mod 13) ~id:i
  done;
  Alcotest.(check int) "all pushed" 100 (Fleet.Clockheap.length h);
  let rec drain prev n =
    match Fleet.Clockheap.pop h with
    | None -> n
    | Some k ->
      Alcotest.(check bool) "non-decreasing keys" true (prev <= k);
      drain k (n + 1)
  in
  Alcotest.(check int) "all popped" 100 (drain (min_int, min_int) 0)

(* the old pick: one linear scan over the session array in id order,
   keeping the strictly smaller clock (first visited wins ties) *)
let linear_scan_pick clocks active =
  let best = ref None in
  Array.iteri
    (fun id c ->
      if active.(id) then
        match !best with
        | Some (bc, _) when bc <= c -> ()
        | _ -> best := Some (c, id))
    clocks;
  !best

let prop_clockheap_pick_identity =
  QCheck.Test.make ~count:400
    ~name:"Clockheap pick = linear-scan pick over random schedules"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 12) (int_bound 1_000))
        (small_list (pair (int_bound 500) bool)))
    (fun (init, ops) ->
      (* the run_fifo shape: pop the minimal session, advance its clock
         by a quantum's worth of cycles, re-push unless it left the
         schedule — checking every pick against the linear scan *)
      let clocks = Array.of_list init in
      let active = Array.make (Array.length clocks) true in
      let h = Fleet.Clockheap.create () in
      Array.iteri (fun id c -> Fleet.Clockheap.push h ~clock:c ~id) clocks;
      let ok = ref true in
      let rec drive ops =
        match Fleet.Clockheap.pop h with
        | None -> if linear_scan_pick clocks active <> None then ok := false
        | Some (clock, id) -> (
          (match linear_scan_pick clocks active with
          | Some (rc, rid) when rc = clock && rid = id -> ()
          | _ -> ok := false);
          match ops with
          | [] -> ()
          | (quantum_cycles, stays) :: rest ->
            clocks.(id) <- clocks.(id) + quantum_cycles;
            if stays then Fleet.Clockheap.push h ~clock:clocks.(id) ~id
            else active.(id) <- false;
            drive rest)
      in
      drive ops;
      !ok)

(* ------------------------------------------------------------------ *)
(* fleet behaviour *)

let compress_img =
  lazy ((Option.get (Workloads.Registry.find "compress95")).build ())

let shared_link () =
  Netmodel.create ~latency_cycles:100_000 ~cycles_per_byte:160
    ~overhead_bytes:60 ()

let mk_fleet ?(clients = 4) ?(dedup = true) ?faults () =
  let net =
    match faults with
    | Some f ->
      Netmodel.create ~latency_cycles:100_000 ~cycles_per_byte:160
        ~overhead_bytes:60 ~faults:f ()
    | None -> shared_link ()
  in
  let mk_cfg _ =
    Softcache.Config.make ~tcache_bytes:4096
      ~chunking:Softcache.Config.Basic_block ~net ()
  in
  Fleet.create
    ~config:(Fleet.config ~clients ~dedup ())
    ~net mk_cfg
    [| Lazy.force compress_img |]

let test_fleet_deterministic () =
  (* same seed, same config: byte-identical summary rows — the
     BENCH_fleet.json determinism gate in miniature *)
  let row () =
    let faults = Netmodel.Faults.make ~seed:9 ~drop:0.02 ~corrupt:0.01 () in
    let fl = mk_fleet ~faults () in
    Fleet.run ~fuel:300_000 fl;
    Fleet.summary_fields fl
  in
  let a = row () and b = row () in
  List.iter2
    (fun (ka, va) (kb, vb) ->
      Alcotest.(check string) (Printf.sprintf "key %s" ka) ka kb;
      Alcotest.(check string) (Printf.sprintf "value %s" ka) va vb)
    a b

let test_fleet_one_client_lockstep () =
  (* the 1-client fleet reduces exactly to the single-client path:
     cycle-for-cycle, draw-for-draw, even over a faulty link *)
  let faults = Netmodel.Faults.make ~seed:11 ~drop:0.02 ~corrupt:0.01 () in
  let mk_cfg () =
    Softcache.Config.make ~tcache_bytes:4096
      ~chunking:Softcache.Config.Basic_block
      ~net:(Netmodel.ethernet_10mbps ~faults ())
      ()
  in
  match
    Check.Lockstep.fleet ~fuel:800_000 mk_cfg (Lazy.force compress_img)
  with
  | Check.Lockstep.Engines_equivalent { steps }
  | Check.Lockstep.Engines_out_of_fuel { steps } ->
    Alcotest.(check bool) "compared steps" true (steps > 0)
  | v ->
    Alcotest.failf "1-client fleet diverged from solo: %a"
      Check.Lockstep.pp_engine_verdict v

let test_fleet_dedup_cuts_wire () =
  (* four identical clients: the shared chunk cache plus coalescing
     must cut aggregate wire traffic well below the dedup-off fleet *)
  let wire dedup =
    let fl = mk_fleet ~dedup () in
    Fleet.run ~fuel:400_000 fl;
    (Fleet.summary fl).Fleet.f_wire_bytes
  in
  let on = wire true and off = wire false in
  Alcotest.(check bool)
    (Printf.sprintf "dedup wire %d < no-dedup wire %d" on off)
    true
    (on < off)

let test_fleet_audit_clean () =
  let fl = mk_fleet () in
  Fleet.run ~fuel:400_000 fl;
  match Check.Audit.fleet fl with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "fleet audit violation: %a" Check.Audit.pp_violation v

(* ------------------------------------------------------------------ *)
(* auto-size admission, heterogeneous workloads, multi-hart sessions *)

let adpcm_img =
  lazy ((Option.get (Workloads.Registry.find "adpcm_encode")).build ())

let test_fleet_autosize_admission () =
  (* the sizing hook grows an under-provisioned client to the predicted
     need (rounded up to 16) and never shrinks an over-provisioned one *)
  let net = shared_link () in
  let mk_cfg _ =
    Softcache.Config.make ~tcache_bytes:4096
      ~chunking:Softcache.Config.Basic_block ~net ()
  in
  let sizing = function
    | 0 -> Some 10_001 (* above configured: grow, round to 10016 *)
    | 1 -> Some 2048 (* below configured: keep 4096 *)
    | _ -> None
  in
  let fl =
    Fleet.create
      ~config:(Fleet.config ~clients:3 ())
      ~sizing ~net mk_cfg
      [| Lazy.force compress_img |]
  in
  let stats =
    List.map Fleet.client_stats (Array.to_list (Fleet.sessions fl))
  in
  Alcotest.(check (list int))
    "admitted tcache sizes"
    [ 10_016; 4096; 4096 ]
    (List.map (fun c -> c.Fleet.c_tcache_bytes) stats);
  Alcotest.(check (list (option int)))
    "predicted sizes reported"
    [ Some 10_001; Some 2048; None ]
    (List.map (fun c -> c.Fleet.c_predicted_bytes) stats);
  (* and the admitted fleet still runs and audits clean *)
  Fleet.run ~fuel:200_000 fl;
  match Check.Audit.fleet fl with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "auto-sized fleet audit: %a" Check.Audit.pp_violation v

let test_fleet_heterogeneous_workloads () =
  (* mixed-workload fleet: images assigned round-robin, every client's
     cached chunks stay inside its own image's text segment, and the
     audit (which checks exactly that) is clean *)
  let net = shared_link () in
  let mk_cfg _ =
    Softcache.Config.make ~tcache_bytes:4096
      ~chunking:Softcache.Config.Basic_block ~net ()
  in
  let images = [| Lazy.force compress_img; Lazy.force adpcm_img |] in
  let fl =
    Fleet.create ~config:(Fleet.config ~clients:4 ()) ~net mk_cfg images
  in
  Fleet.run ~fuel:200_000 fl;
  Array.iteri
    (fun i s ->
      Alcotest.(check string)
        (Printf.sprintf "client %d image" i)
        images.(i mod 2).Isa.Image.name
        (Fleet.image s).Isa.Image.name)
    (Fleet.sessions fl);
  match Check.Audit.fleet fl with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "heterogeneous fleet audit: %a" Check.Audit.pp_violation v

let test_fleet_multihart_sessions () =
  (* clients configured with harts > 1 advance through the shard
     scheduler; the session exposes its shard, the summary reports the
     makespan, and the audit runs the full shard suite per client *)
  let net = shared_link () in
  let mk_cfg _ =
    Softcache.Config.make ~tcache_bytes:4096
      ~chunking:Softcache.Config.Basic_block ~harts:2 ~sched_seed:5 ~net ()
  in
  let fl =
    Fleet.create
      ~config:(Fleet.config ~clients:2 ())
      ~net mk_cfg
      [| Lazy.force compress_img |]
  in
  Fleet.run ~fuel:150_000 fl;
  Array.iter
    (fun s ->
      (match Fleet.shard s with
      | None -> Alcotest.fail "2-hart session exposes no shard"
      | Some sh ->
        Alcotest.(check int) "two harts" 2
          (List.length (Softcache.Shard.harts sh));
        let c = Fleet.client_stats s in
        Alcotest.(check int) "c_cycles is the shard makespan"
          (Softcache.Shard.makespan sh) c.Fleet.c_cycles;
        Alcotest.(check int) "c_harts" 2 c.Fleet.c_harts))
    (Fleet.sessions fl);
  match Check.Audit.fleet fl with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "multi-hart fleet audit: %a" Check.Audit.pp_violation v

(* ------------------------------------------------------------------ *)
(* superblock working-set-knee regression: at 16 KB mpeg2enc sits at
   the knee (profiled dynamic text ~0.8x the tcache; rewritten, it
   marginally overflows). Unguarded promotion churned the resident
   working set and pushed traps 66% past plain chaining; the
   profile-driven guard must hold chain+superblock at or below the
   chain-only trap count. *)

let test_superblock_knee_regression () =
  let img = (Option.get (Workloads.Registry.find "mpeg2enc")).build () in
  let prof, _ = Profiler.profile img in
  let oracle =
    Softcache.Cc_chain.oracle_of_profile ~image:img
      ~chunking:Softcache.Config.Basic_block
      ~edges_from:(Profiler.edges_from prof)
      ~samples_at:(fun a -> Profiler.samples_in prof ~lo:a ~hi:(a + 4))
  in
  let run ~superblock_threshold =
    let cfg =
      Softcache.Config.make ~tcache_bytes:16384
        ~chunking:Softcache.Config.Basic_block ~chain:true
        ~superblock_threshold ()
    in
    let ctrl = Softcache.Controller.create cfg img in
    ctrl.Softcache.Controller.chain_oracle <- Some oracle;
    ctrl.Softcache.Controller.dynamic_text_hint <-
      Some (Profiler.dynamic_text_bytes prof);
    (match Softcache.Controller.run ctrl with
    | Machine.Cpu.Halted -> ()
    | Machine.Cpu.Out_of_fuel -> Alcotest.fail "mpeg2enc ran out of fuel");
    ctrl.Softcache.Controller.stats
  in
  let chain = run ~superblock_threshold:0 in
  let sb = run ~superblock_threshold:32 in
  Alcotest.(check bool)
    (Printf.sprintf "chain+superblock traps (%d) <= chain traps (%d)"
       sb.Softcache.Stats.traps chain.Softcache.Stats.traps)
    true
    (sb.Softcache.Stats.traps <= chain.Softcache.Stats.traps);
  (* and the guard, not luck, is what held promotion back *)
  Alcotest.(check bool) "guard fired" true
    (sb.Softcache.Stats.superblock_guard_skips > 0)

let () =
  Alcotest.run "fleet"
    [
      ( "percentile",
        [
          Alcotest.test_case "nearest rank" `Quick test_percentile_nearest_rank;
          Alcotest.test_case "extremes" `Quick test_percentile_extremes;
          Alcotest.test_case "known distributions" `Quick
            test_percentile_known_distribution;
          Alcotest.test_case "invalid input" `Quick test_percentile_invalid;
        ] );
      ( "transport",
        [
          QCheck_alcotest.to_alcotest test_transfer_batch_single_equiv_q;
          Alcotest.test_case "piggyback marginal cost" `Quick
            test_piggyback_marginal_cost;
          Alcotest.test_case "piggyback deterministic" `Quick
            test_piggyback_deterministic;
        ] );
      ( "clockheap",
        [
          Alcotest.test_case "lexicographic pop order" `Quick
            test_clockheap_order;
          Alcotest.test_case "capacity growth" `Quick test_clockheap_grows;
          QCheck_alcotest.to_alcotest prop_clockheap_pick_identity;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "deterministic summary" `Quick
            test_fleet_deterministic;
          Alcotest.test_case "1-client lockstep identity" `Quick
            test_fleet_one_client_lockstep;
          Alcotest.test_case "dedup cuts wire bytes" `Quick
            test_fleet_dedup_cuts_wire;
          Alcotest.test_case "audit clean" `Quick test_fleet_audit_clean;
          Alcotest.test_case "auto-size admission" `Quick
            test_fleet_autosize_admission;
          Alcotest.test_case "heterogeneous workloads" `Quick
            test_fleet_heterogeneous_workloads;
          Alcotest.test_case "multi-hart sessions" `Quick
            test_fleet_multihart_sessions;
        ] );
      ( "superblock-knee",
        [
          Alcotest.test_case "mpeg2enc@16KB regression" `Slow
            test_superblock_knee_regression;
        ] );
    ]
